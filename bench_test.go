package crossbow

// One benchmark per table/figure of the paper's evaluation (§5). Each
// bench regenerates its experiment at reduced scale — fewer epochs, a
// subset of sweep points — and reports the figure's headline quantity as a
// custom metric, so `go test -bench=.` replays the whole evaluation in
// minutes. Paper-scale sweeps: `go run ./cmd/crossbow-bench -exp <id> -full`.

import (
	"testing"

	"crossbow/internal/autotune"
	"crossbow/internal/core"
	"crossbow/internal/engine"
	"crossbow/internal/metrics"
)

// BenchmarkTable1_ModelInventory regenerates Table 1 (model/dataset
// inventory) and reports ResNet-50's model size.
func BenchmarkTable1_ModelInventory(b *testing.B) {
	var rows []Table1Row
	for i := 0; i < b.N; i++ {
		rows = Table1()
	}
	for _, r := range rows {
		if r.Model == ResNet50 {
			b.ReportMetric(r.ModelMB, "resnet50-MB")
		}
	}
}

// BenchmarkFigure2_HardwareEfficiency regenerates the baseline scaling
// curves and reports the 8-GPU speed-up at constant per-GPU batch.
func BenchmarkFigure2_HardwareEfficiency(b *testing.B) {
	var rows []Fig2Row
	for i := 0; i < b.N; i++ {
		rows = Figure2()
	}
	for _, r := range rows {
		if r.AggregateBatch == 1024 && r.GPUs == 8 {
			b.ReportMetric(r.Speedup, "speedup-g8-b1024")
		}
		if r.AggregateBatch == 64 && r.GPUs == 8 {
			b.ReportMetric(r.Speedup, "speedup-g8-b64")
		}
	}
}

// statMicro runs a micro statistical experiment (few epochs) for benches.
func statMicro(b *testing.B, cfg core.TrainConfig) *core.Result {
	b.Helper()
	if cfg.MaxEpochs == 0 {
		cfg.MaxEpochs = 4
	}
	cfg.Momentum = 0.9
	cfg.Seed = 1
	return core.Train(cfg)
}

// BenchmarkFigure3_StatisticalEfficiency contrasts small-batch vs
// large-batch S-SGD convergence and reports the accuracy gap after the
// epoch budget (the statistical-efficiency effect behind Figure 3).
func BenchmarkFigure3_StatisticalEfficiency(b *testing.B) {
	var small, large *core.Result
	for i := 0; i < b.N; i++ {
		small = statMicro(b, core.TrainConfig{Model: ResNet32, Algo: core.AlgoSSGD, BatchPerLearner: 16})
		large = statMicro(b, core.TrainConfig{Model: ResNet32, Algo: core.AlgoSSGD, BatchPerLearner: 256})
	}
	b.ReportMetric(metrics.BestAccuracy(small.Series)*100, "acc-b16-%")
	b.ReportMetric(metrics.BestAccuracy(large.Series)*100, "acc-b256-%")
}

// BenchmarkFigure9_BaselineConvergence runs one baseline epoch budget per
// model and reports the best accuracies (the curves the TTA targets come
// from).
func BenchmarkFigure9_BaselineConvergence(b *testing.B) {
	accs := map[Model]float64{}
	for i := 0; i < b.N; i++ {
		for _, id := range Models {
			res := statMicro(b, core.TrainConfig{Model: id, Algo: core.AlgoSSGD, BatchPerLearner: 16, MaxEpochs: 3})
			accs[id] = metrics.BestAccuracy(res.Series)
		}
	}
	b.ReportMetric(accs[ResNet32]*100, "resnet32-acc-%")
	b.ReportMetric(accs[LeNet]*100, "lenet-acc-%")
}

// BenchmarkFigure10_TimeToAccuracy compares the three systems on ResNet-32
// at g=8 (micro scale) and reports the TTA ratio baseline/crossbow.
func BenchmarkFigure10_TimeToAccuracy(b *testing.B) {
	var tf, cb SystemRun
	for i := 0; i < b.N; i++ {
		tf = runSystem(ResNet32, SysTensorFlow, 8, 128, 1, 14, 0.78)
		cb = runSystem(ResNet32, SysCrossbowM1, 8, 64, 1, 14, 0.78)
	}
	if cb.TTASeconds > 0 {
		b.ReportMetric(tf.TTASeconds/cb.TTASeconds, "tta-ratio-tf/cb")
	}
}

// BenchmarkFigure11_Convergence regenerates accuracy-over-time curves for
// ResNet-32 at g=8 (micro) and reports Crossbow's final accuracy.
func BenchmarkFigure11_Convergence(b *testing.B) {
	var runs []SystemRun
	for i := 0; i < b.N; i++ {
		runs = []SystemRun{
			runSystem(ResNet32, SysCrossbowM1, 8, 64, 1, 5, 0.99),
			runSystem(ResNet32, SysCrossbow, 8, 64, 2, 5, 0.99),
		}
	}
	b.ReportMetric(metrics.BestAccuracy(runs[1].Series)*100, "cb-acc-%")
	b.ReportMetric(runs[1].EpochSeconds, "epoch-sec")
}

// BenchmarkFigure12_Tradeoff1GPU sweeps m on one GPU (micro) and reports
// the m=4 vs m=1 throughput gain — Figure 12a's hardware-efficiency effect.
func BenchmarkFigure12_Tradeoff1GPU(b *testing.B) {
	var t1, t4 float64
	for i := 0; i < b.N; i++ {
		t1 = engine.New(engine.Config{Model: ResNet32, GPUs: 1, LearnersPerGPU: 1, Batch: 64, Overlap: true}).Throughput(20)
		t4 = engine.New(engine.Config{Model: ResNet32, GPUs: 1, LearnersPerGPU: 4, Batch: 64, Overlap: true}).Throughput(20)
	}
	b.ReportMetric(t4/t1, "throughput-gain-m4/m1")
}

// BenchmarkFigure13_Tradeoff8GPU does the same at g=8 with the statistical
// side at micro scale, reporting the m=2 epochs-to-target.
func BenchmarkFigure13_Tradeoff8GPU(b *testing.B) {
	var r SystemRun
	for i := 0; i < b.N; i++ {
		r = runSystem(ResNet32, SysCrossbow, 8, 64, 2, 5, 0.70)
	}
	b.ReportMetric(float64(r.EpochsToTarget), "epochs-m2")
	b.ReportMetric(r.ThroughputImgSec, "imgs/s")
}

// BenchmarkFigure14_LearnerSweep sweeps m (hardware plane only — the TTA
// side is covered by Figures 12/13) and reports where throughput peaks,
// the quantity Algorithm 2 keys on.
func BenchmarkFigure14_LearnerSweep(b *testing.B) {
	bestM := 0
	for i := 0; i < b.N; i++ {
		best := 0.0
		for m := 1; m <= 5; m++ {
			tp := engine.New(engine.Config{Model: ResNet32, GPUs: 1, LearnersPerGPU: m, Batch: 16, Overlap: true}).Throughput(20)
			if tp > best {
				best, bestM = tp, m
			}
		}
	}
	b.ReportMetric(float64(bestM), "throughput-peak-m")
}

// BenchmarkFigure15_SMAvsEASGD contrasts SMA with EA-SGD at micro scale
// (8 learners) and reports the accuracy advantage of momentum on the
// central average model.
func BenchmarkFigure15_SMAvsEASGD(b *testing.B) {
	var sma, ea *core.Result
	for i := 0; i < b.N; i++ {
		sma = statMicro(b, core.TrainConfig{Model: ResNet32, Algo: core.AlgoSMA, GPUs: 4, LearnersPerGPU: 2, BatchPerLearner: 16, MaxEpochs: 5})
		ea = statMicro(b, core.TrainConfig{Model: ResNet32, Algo: core.AlgoEASGD, GPUs: 4, LearnersPerGPU: 2, BatchPerLearner: 16, MaxEpochs: 5})
	}
	b.ReportMetric(metrics.BestAccuracy(sma.Series)*100, "sma-acc-%")
	b.ReportMetric(metrics.BestAccuracy(ea.Series)*100, "easgd-acc-%")
}

// BenchmarkFigure16_SyncFrequencyTTA contrasts τ=1 and τ=4 statistically
// (micro) and reports the accuracy cost of infrequent synchronisation.
func BenchmarkFigure16_SyncFrequencyTTA(b *testing.B) {
	var t1, t4 *core.Result
	for i := 0; i < b.N; i++ {
		t1 = statMicro(b, core.TrainConfig{Model: ResNet32, Algo: core.AlgoSMA, GPUs: 4, LearnersPerGPU: 2, BatchPerLearner: 16, Tau: 1, MaxEpochs: 5})
		t4 = statMicro(b, core.TrainConfig{Model: ResNet32, Algo: core.AlgoSMA, GPUs: 4, LearnersPerGPU: 2, BatchPerLearner: 16, Tau: 4, MaxEpochs: 5})
	}
	b.ReportMetric(metrics.BestAccuracy(t1.Series)*100, "tau1-acc-%")
	b.ReportMetric(metrics.BestAccuracy(t4.Series)*100, "tau4-acc-%")
}

// BenchmarkFigure17_SyncOverhead regenerates the sync-overhead grid and
// reports the τ=1 vs no-sync throughput gap at m=1.
func BenchmarkFigure17_SyncOverhead(b *testing.B) {
	var rows []Fig17Row
	for i := 0; i < b.N; i++ {
		rows = Figure17()
	}
	var t1, tInf float64
	for _, r := range rows {
		if r.M == 1 && r.Tau == "1" {
			t1 = r.Throughput
		}
		if r.M == 1 && r.Tau == "inf" {
			tInf = r.Throughput
		}
	}
	b.ReportMetric(100*(tInf/t1-1), "nosync-gain-%")
}

// BenchmarkAblation_Autotune measures Algorithm 2's full decision loop.
func BenchmarkAblation_Autotune(b *testing.B) {
	var chosen int
	for i := 0; i < b.N; i++ {
		chosen = autotune.Tune(autotune.Config{Model: ResNet32, GPUs: 1, Batch: 16}).Chosen
	}
	b.ReportMetric(float64(chosen), "chosen-m")
}

// BenchmarkAblation_OverlapVsBarrier quantifies the §4.2 overlap design:
// iteration time with global sync overlapped vs a global barrier.
func BenchmarkAblation_OverlapVsBarrier(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		on = engine.New(engine.Config{Model: ResNet32, GPUs: 8, LearnersPerGPU: 2, Batch: 16, Overlap: true}).RunIterations(30)
		off = engine.New(engine.Config{Model: ResNet32, GPUs: 8, LearnersPerGPU: 2, Batch: 16, Overlap: false}).RunIterations(30)
	}
	b.ReportMetric(off/on, "barrier/overlap-time")
}

// BenchmarkAblation_SMAStep measures the raw cost of one SMA step over
// 8 replicas of a half-million-parameter model (the optimiser's hot path).
func BenchmarkAblation_SMAStep(b *testing.B) {
	const k, n = 8, 500_000
	ws := make([][]float32, k)
	gs := make([][]float32, k)
	for j := 0; j < k; j++ {
		ws[j] = make([]float32, n)
		gs[j] = make([]float32, n)
	}
	s := core.NewSMA(core.SMAConfig{LearnRate: 0.1, Momentum: 0.9, LocalMomentum: 0.9}, ws[0], k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(ws, gs)
	}
	b.SetBytes(int64(k * n * 4))
}
