package crossbow

import (
	"fmt"
	"strconv"

	"crossbow/internal/ckpt"
)

// SaveModel writes a training result's model (the central average model for
// SMA/EA-SGD, the global model for S-SGD) to path as an atomic, checksummed
// checkpoint. Cluster runs record their server count and interconnect in
// the checkpoint metadata.
func SaveModel(path string, model Model, res *Result) error {
	if res == nil || len(res.Series) == 0 {
		return fmt.Errorf("crossbow: empty result")
	}
	if res.Params == nil {
		return fmt.Errorf("crossbow: result carries no model parameters")
	}
	c := &ckpt.Checkpoint{
		Model:        string(model),
		Epoch:        res.Series[len(res.Series)-1].Epoch,
		BestAccuracy: res.BestAccuracy,
		Params:       res.Params,
	}
	if res.Servers > 1 {
		c.Meta = map[string]string{
			"servers":      strconv.Itoa(res.Servers),
			"interconnect": res.Interconnect.Name,
		}
	}
	return ckpt.Save(path, c)
}

// LoadModel reads a checkpoint from path, returning the model identity,
// parameters and recorded training context.
func LoadModel(path string) (Model, []float32, int, float64, error) {
	c, err := ckpt.Load(path)
	if err != nil {
		return "", nil, 0, 0, err
	}
	return Model(c.Model), c.Params, c.Epoch, c.BestAccuracy, nil
}

// Checkpoint is a loaded model snapshot with its recorded training
// context.
type Checkpoint struct {
	// Model names the architecture the parameters belong to.
	Model Model
	// Epoch is the number of completed epochs.
	Epoch int
	// BestAccuracy is the best test accuracy observed so far.
	BestAccuracy float64
	// Meta carries optional training context: cluster runs record
	// "servers" and "interconnect". Empty for single-server checkpoints
	// and files written by older versions.
	Meta map[string]string
	// SnapshotRound and SnapshotIter identify the published snapshot this
	// checkpoint carries (see Snapshot): the synchronisation-round version
	// of the central average model and the per-learner iteration count it
	// represents. Zero for end-of-training checkpoints (SaveModel) and
	// files written before format v3.
	SnapshotRound int64
	SnapshotIter  int64
	// Params is the flat model vector.
	Params []float32
}

// LoadCheckpoint reads a checkpoint with its full metadata (including the
// cluster context SaveModel records for multi-server runs). Checkpoints
// written by older versions load with empty metadata.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	c, err := ckpt.Load(path)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Model:         Model(c.Model),
		Epoch:         c.Epoch,
		BestAccuracy:  c.BestAccuracy,
		Meta:          c.Meta,
		SnapshotRound: c.SnapshotRound,
		SnapshotIter:  c.SnapshotIter,
		Params:        c.Params,
	}, nil
}

// SaveSnapshot writes a published training snapshot (Config.PublishEvery /
// OnSnapshot) to path as an atomic, checksummed checkpoint carrying the
// snapshot's round version — so a `crossbow-serve -ckpt` process serves the
// exact published model and reports its version with every prediction.
func SaveSnapshot(path string, s Snapshot) error {
	if len(s.Params) == 0 {
		return fmt.Errorf("crossbow: snapshot carries no parameters")
	}
	return ckpt.Save(path, &ckpt.Checkpoint{
		Model:         string(s.Model),
		Epoch:         s.Epoch,
		SnapshotRound: int64(s.Round),
		SnapshotIter:  int64(s.Iter),
		Params:        s.Params,
	})
}
