package crossbow

import (
	"fmt"

	"crossbow/internal/ckpt"
)

// SaveModel writes a training result's model (the central average model for
// SMA/EA-SGD, the global model for S-SGD) to path as an atomic, checksummed
// checkpoint.
func SaveModel(path string, model Model, res *Result) error {
	if res == nil || len(res.Series) == 0 {
		return fmt.Errorf("crossbow: empty result")
	}
	if res.Params == nil {
		return fmt.Errorf("crossbow: result carries no model parameters")
	}
	return ckpt.Save(path, &ckpt.Checkpoint{
		Model:        string(model),
		Epoch:        res.Series[len(res.Series)-1].Epoch,
		BestAccuracy: res.BestAccuracy,
		Params:       res.Params,
	})
}

// LoadModel reads a checkpoint from path, returning the model identity,
// parameters and recorded training context.
func LoadModel(path string) (Model, []float32, int, float64, error) {
	c, err := ckpt.Load(path)
	if err != nil {
		return "", nil, 0, 0, err
	}
	return Model(c.Model), c.Params, c.Epoch, c.BestAccuracy, nil
}
