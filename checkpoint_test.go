package crossbow

import (
	"path/filepath"
	"testing"

	"crossbow/internal/tensor"
)

func TestSaveLoadModelRoundTrip(t *testing.T) {
	res, err := Train(Config{Model: LeNet, GPUs: 1, LearnersPerGPU: 1, Batch: 8, MaxEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Params == nil {
		t.Fatal("result has no parameters")
	}
	path := filepath.Join(t.TempDir(), "lenet.ckpt")
	if err := SaveModel(path, LeNet, res); err != nil {
		t.Fatal(err)
	}
	model, params, epoch, best, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if model != LeNet {
		t.Fatalf("model = %s", model)
	}
	if epoch != 2 {
		t.Fatalf("epoch = %d", epoch)
	}
	if best != res.BestAccuracy {
		t.Fatalf("best = %v, want %v", best, res.BestAccuracy)
	}
	if tensor.MaxAbsDiff(params, res.Params) != 0 {
		t.Fatal("parameters corrupted")
	}
}

func TestSaveModelRejectsEmptyResult(t *testing.T) {
	if err := SaveModel(filepath.Join(t.TempDir(), "x.ckpt"), LeNet, &Result{}); err == nil {
		t.Fatal("expected error")
	}
}

// TestSaveLoadClusterModelRoundTrip covers checkpoints written under the
// cluster config fields: the trained model round-trips bit-exactly and the
// cluster context (server count, interconnect) is recorded as metadata.
func TestSaveLoadClusterModelRoundTrip(t *testing.T) {
	res, err := Train(Config{
		Model: LeNet, Servers: 2, GPUs: 1, LearnersPerGPU: 2,
		Batch: 8, MaxEpochs: 2, Interconnect: InfiniBand(),
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lenet-cluster.ckpt")
	if err := SaveModel(path, LeNet, res); err != nil {
		t.Fatal(err)
	}

	// The plain loader still works on cluster checkpoints.
	model, params, epoch, best, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if model != LeNet || epoch != 2 || best != res.BestAccuracy {
		t.Fatalf("context mismatch: %s epoch=%d best=%v", model, epoch, best)
	}
	if tensor.MaxAbsDiff(params, res.Params) != 0 {
		t.Fatal("parameters corrupted")
	}

	// The full loader surfaces the cluster metadata.
	c, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Meta["servers"] != "2" || c.Meta["interconnect"] != "IB-EDR" {
		t.Fatalf("cluster metadata missing: %v", c.Meta)
	}
}

// TestSingleServerCheckpointHasNoClusterMeta: single-server results write
// checkpoints indistinguishable in shape from pre-cluster ones.
func TestSingleServerCheckpointHasNoClusterMeta(t *testing.T) {
	res, err := Train(Config{Model: LeNet, GPUs: 1, LearnersPerGPU: 1, Batch: 8, MaxEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lenet.ckpt")
	if err := SaveModel(path, LeNet, res); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Meta) != 0 {
		t.Fatalf("unexpected metadata on single-server checkpoint: %v", c.Meta)
	}
}
