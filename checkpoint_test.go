package crossbow

import (
	"path/filepath"
	"testing"

	"crossbow/internal/tensor"
)

func TestSaveLoadModelRoundTrip(t *testing.T) {
	res, err := Train(Config{Model: LeNet, GPUs: 1, LearnersPerGPU: 1, Batch: 8, MaxEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Params == nil {
		t.Fatal("result has no parameters")
	}
	path := filepath.Join(t.TempDir(), "lenet.ckpt")
	if err := SaveModel(path, LeNet, res); err != nil {
		t.Fatal(err)
	}
	model, params, epoch, best, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if model != LeNet {
		t.Fatalf("model = %s", model)
	}
	if epoch != 2 {
		t.Fatalf("epoch = %d", epoch)
	}
	if best != res.BestAccuracy {
		t.Fatalf("best = %v, want %v", best, res.BestAccuracy)
	}
	if tensor.MaxAbsDiff(params, res.Params) != 0 {
		t.Fatal("parameters corrupted")
	}
}

func TestSaveModelRejectsEmptyResult(t *testing.T) {
	if err := SaveModel(filepath.Join(t.TempDir(), "x.ckpt"), LeNet, &Result{}); err == nil {
		t.Fatal("expected error")
	}
}
