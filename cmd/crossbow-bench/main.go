// Command crossbow-bench regenerates the tables and figures of the paper's
// evaluation (§5). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records the expected shapes.
//
// Usage:
//
//	crossbow-bench -exp all            # quick pass over every experiment
//	crossbow-bench -exp fig10 -model resnet32 -full
//	crossbow-bench -exp fig14 -model vgg16 -gpus 8
//	crossbow-bench -exp kernels        # kernel microbench -> BENCH_kernels.json
//	crossbow-bench -exp fig10 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"crossbow"
	"crossbow/internal/tensor"
)

func main() {
	// All work happens in run, so deferred profile finalizers execute even
	// on error exits (os.Exit would skip them).
	os.Exit(benchMain())
}

func benchMain() int {
	exp := flag.String("exp", "all", "experiment: table1, fig2, fig3, fig9, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, autotune, kernels, runtime, memory, serving, cluster-net, chaos, all")
	model := flag.String("model", "resnet32", "benchmark model (lenet, resnet32, vgg16, resnet50)")
	gpus := flag.Int("gpus", 8, "GPU count for per-g experiments")
	full := flag.Bool("full", false, "paper-scale parameter sweeps (slow); default is a quick pass")
	threads := flag.Int("threads", 0, "kernel worker pool size (0: NumCPU or $CROSSBOW_PARALLELISM)")
	kernelsOut := flag.String("out", "BENCH_kernels.json", "output path for the kernels experiment's JSON record")
	runtimeOut := flag.String("runtime-out", "BENCH_runtime.json", "output path for the runtime experiment's JSON record")
	memoryOut := flag.String("memory-out", "BENCH_memory.json", "output path for the memory experiment's JSON record")
	servingOut := flag.String("serving-out", "BENCH_serving.json", "output path for the serving experiment's JSON record")
	clusterOut := flag.String("cluster-out", "BENCH_cluster.json", "output path for the cluster-net experiment's JSON record")
	chaosOut := flag.String("chaos-out", "BENCH_chaos.json", "output path for the chaos experiment's JSON record")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *threads > 0 {
		tensor.SetParallelism(*threads)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	quick := !*full
	id := crossbow.Model(*model)
	known := false
	for _, m := range crossbow.Models {
		if m == id {
			known = true
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		return 2
	}

	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		fn()
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() { crossbow.PrintTable1(os.Stdout, crossbow.Table1()) })
	run("fig2", func() { crossbow.PrintFigure2(os.Stdout, crossbow.Figure2()) })
	run("fig3", func() { crossbow.PrintFigure3(os.Stdout, crossbow.Figure3(quick)) })
	run("fig9", func() { crossbow.PrintFigure9(os.Stdout, crossbow.Figure9(quick)) })
	run("fig10", func() {
		models := []crossbow.Model{id}
		if *exp == "all" {
			models = []crossbow.Model{crossbow.ResNet32}
		}
		for _, m := range models {
			crossbow.PrintFigure10(os.Stdout, m, crossbow.Figure10(m, quick))
		}
	})
	run("fig11", func() {
		crossbow.PrintFigure11(os.Stdout, id, *gpus, crossbow.Figure11(id, *gpus, quick))
	})
	run("fig12", func() { crossbow.PrintFigure1213(os.Stdout, 1, crossbow.Figure1213(1, quick)) })
	run("fig13", func() { crossbow.PrintFigure1213(os.Stdout, 8, crossbow.Figure1213(8, quick)) })
	run("fig14", func() {
		crossbow.PrintFigure14(os.Stdout, id, *gpus, crossbow.Figure14(id, *gpus, quick))
	})
	run("fig15", func() { crossbow.PrintFigure15(os.Stdout, crossbow.Figure15(quick)) })
	run("fig16", func() { crossbow.PrintFigure16(os.Stdout, crossbow.Figure16(quick)) })
	run("fig17", func() { crossbow.PrintFigure17(os.Stdout, crossbow.Figure17()) })
	// Kernel microbenchmarks run only on explicit request (not under
	// -exp all) so figure replays don't overwrite the committed baseline.
	if *exp == "kernels" {
		start := time.Now()
		rows := crossbow.KernelBench(quick)
		crossbow.PrintKernelBench(os.Stdout, rows)
		if err := crossbow.WriteKernelBenchJSON(*kernelsOut, rows); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *kernelsOut, err)
			return 1
		}
		fmt.Printf("recorded %s\n[kernels took %v]\n", *kernelsOut, time.Since(start).Round(time.Millisecond))
	}
	// The scheduler benchmark likewise runs only on explicit request, so
	// figure replays don't overwrite the committed baseline.
	if *exp == "runtime" {
		start := time.Now()
		rows := crossbow.RuntimeBench(quick)
		crossbow.PrintRuntimeBench(os.Stdout, rows)
		if err := crossbow.WriteRuntimeBenchJSON(*runtimeOut, rows, quick); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *runtimeOut, err)
			return 1
		}
		fmt.Printf("recorded %s\n[runtime took %v]\n", *runtimeOut, time.Since(start).Round(time.Millisecond))
	}
	// The memory-plane benchmark also runs only on explicit request, so
	// figure replays don't overwrite the committed baseline.
	if *exp == "memory" {
		start := time.Now()
		rows := crossbow.MemoryBench(quick)
		crossbow.PrintMemoryBench(os.Stdout, rows)
		if err := crossbow.WriteMemoryBenchJSON(*memoryOut, rows, quick); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *memoryOut, err)
			return 1
		}
		fmt.Printf("recorded %s\n[memory took %v]\n", *memoryOut, time.Since(start).Round(time.Millisecond))
	}
	// The serving benchmark also runs only on explicit request, so figure
	// replays don't overwrite the committed baseline.
	if *exp == "serving" {
		start := time.Now()
		rows := crossbow.ServingBench(quick)
		crossbow.PrintServingBench(os.Stdout, rows)
		if err := crossbow.WriteServingBenchJSON(*servingOut, rows, quick); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *servingOut, err)
			return 1
		}
		fmt.Printf("recorded %s\n[serving took %v]\n", *servingOut, time.Since(start).Round(time.Millisecond))
	}
	// The cluster-transport benchmark also runs only on explicit request:
	// it opens real localhost sockets, so figure replays stay hermetic.
	if *exp == "cluster-net" {
		start := time.Now()
		rows := crossbow.ClusterNetBench(quick)
		crossbow.PrintClusterNetBench(os.Stdout, rows)
		if err := crossbow.WriteClusterNetBenchJSON(*clusterOut, rows, quick); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *clusterOut, err)
			return 1
		}
		fmt.Printf("recorded %s\n[cluster-net took %v]\n", *clusterOut, time.Since(start).Round(time.Millisecond))
	}
	// The chaos benchmark also runs only on explicit request: it opens real
	// localhost sockets and injects seeded faults into live training runs.
	if *exp == "chaos" {
		start := time.Now()
		rows := crossbow.ChaosBench(quick)
		crossbow.PrintChaosBench(os.Stdout, rows)
		if err := crossbow.WriteChaosBenchJSON(*chaosOut, rows); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *chaosOut, err)
			return 1
		}
		fmt.Printf("recorded %s\n[chaos took %v]\n", *chaosOut, time.Since(start).Round(time.Millisecond))
	}
	run("autotune", func() {
		m, hist := crossbow.TuneLearners(id, *gpus, 16)
		fmt.Printf("Auto-tuner (Alg 2) for %s on %d GPUs, b=16\n", id, *gpus)
		for _, d := range hist {
			fmt.Printf("  m=%d -> %.0f images/s\n", d.M, d.Throughput)
		}
		fmt.Printf("chosen: m=%d\n", m)
	})
	return 0
}
