// Command crossbow-cluster drives the scale-out plane: it sweeps the
// simulated cluster size and reports throughput and scaling efficiency, or
// trains one cluster configuration end to end (both planes) when -train is
// set.
//
// Usage:
//
//	crossbow-cluster -model resnet32 -gpus 8 -m 2 -servers 1,2,4,8
//	crossbow-cluster -model resnet32 -net infiniband -tau-global 4
//	crossbow-cluster -train -model lenet -servers 2 -epochs 10 -target 0.9
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"crossbow"
)

func main() {
	model := flag.String("model", "resnet32", "benchmark model (lenet, resnet32, vgg16, resnet50)")
	gpus := flag.Int("gpus", 8, "GPUs per server")
	m := flag.String("m", "1", "learners per GPU, or 'auto' for Algorithm 2")
	batch := flag.Int("batch", 16, "batch size per learner")
	servers := flag.String("servers", "1,2,4,8", "comma-separated cluster sizes to sweep, or a single size with -train")
	net := flag.String("net", "ethernet", "interconnect: ethernet, ethernet25, infiniband")
	tauLocal := flag.Int("tau", 1, "intra-server synchronisation period")
	tauGlobal := flag.Int("tau-global", 1, "cross-server averaging period (in intra-server syncs)")
	train := flag.Bool("train", false, "train end to end instead of sweeping throughput")
	epochs := flag.Int("epochs", 30, "maximum epochs (with -train)")
	target := flag.Float64("target", 0, "TTA target accuracy (with -train)")
	seed := flag.Uint64("seed", 1, "random seed (with -train)")
	flag.Parse()

	learners := 1
	if *m == "auto" {
		learners = crossbow.AutoTune
	} else if _, err := fmt.Sscanf(*m, "%d", &learners); err != nil {
		fmt.Fprintf(os.Stderr, "bad -m %q\n", *m)
		os.Exit(2)
	}

	var ic crossbow.Interconnect
	switch *net {
	case "ethernet":
		ic = crossbow.Ethernet()
	case "ethernet25":
		ic = crossbow.Ethernet25G()
	case "infiniband":
		ic = crossbow.InfiniBand()
	default:
		fmt.Fprintf(os.Stderr, "unknown interconnect %q\n", *net)
		os.Exit(2)
	}

	var sizes []int
	for _, s := range strings.Split(*servers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -servers entry %q\n", s)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}

	cfg := crossbow.Config{
		Model:          crossbow.Model(*model),
		GPUs:           *gpus,
		LearnersPerGPU: learners,
		Batch:          *batch,
		Tau:            *tauLocal,
		TauGlobal:      *tauGlobal,
		Interconnect:   ic,
		MaxEpochs:      *epochs,
		TargetAccuracy: *target,
		Seed:           *seed,
	}

	if *train {
		cfg.Servers = sizes[0]
		res, err := crossbow.Train(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("model=%s servers=%d gpus=%d m=%d batch=%d net=%s\n",
			*model, res.Servers, *gpus, res.LearnersPerGPU, *batch, ic.Name)
		fmt.Printf("simulated throughput: %.0f images/s, epoch: %.1f s\n",
			res.ThroughputImgSec, res.EpochSeconds)
		fmt.Printf("%6s %10s %10s %8s\n", "epoch", "time(s)", "loss", "acc(%)")
		for _, p := range res.Series {
			fmt.Printf("%6d %10.1f %10.4f %8.2f\n", p.Epoch, p.TimeSec, p.Loss, p.TestAcc*100)
		}
		fmt.Printf("best accuracy: %.2f%%\n", res.BestAccuracy*100)
		if *target > 0 {
			if res.TTASeconds >= 0 {
				fmt.Printf("TTA(%.0f%%): %.1f s (%d epochs)\n", *target*100, res.TTASeconds, res.EpochsToTarget)
			} else {
				fmt.Printf("target %.0f%% not reached in %d epochs\n", *target*100, *epochs)
			}
		}
		return
	}

	pts, err := crossbow.ClusterSweep(cfg, sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Scale-out sweep: %s, %d GPUs/server, m=%s, b=%d, %s, tau=%d/%d\n",
		*model, *gpus, *m, *batch, ic.Name, *tauLocal, *tauGlobal)
	fmt.Printf("%8s %14s %10s %12s\n", "servers", "images/s", "epoch(s)", "efficiency")
	for _, p := range pts {
		fmt.Printf("%8d %14.0f %10.1f %11.0f%%\n",
			p.Servers, p.ThroughputImgSec, p.EpochSeconds, p.Efficiency*100)
	}
}
