// Command crossbow-cluster drives the scale-out plane: it sweeps the
// simulated cluster size and reports throughput and scaling efficiency,
// trains one cluster configuration end to end (both planes) when -train is
// set, or — with -tcp — launches a REAL cluster: one crossbow-node process
// per server on localhost, exchanging the average model over TCP.
//
// Usage:
//
//	crossbow-cluster -model resnet32 -gpus 8 -m 2 -servers 1,2,4,8
//	crossbow-cluster -model resnet32 -net infiniband -tau-global 4
//	crossbow-cluster -train -model lenet -servers 2 -epochs 10 -target 0.9
//	crossbow-cluster -tcp -servers 3 -model lenet -epochs 5
//	crossbow-cluster -tcp -servers 3 -node-bin ./crossbow-node -base-port 7200
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"crossbow"
)

func main() {
	model := flag.String("model", "resnet32", "benchmark model (lenet, resnet32, vgg16, resnet50)")
	gpus := flag.Int("gpus", 8, "GPUs per server")
	m := flag.String("m", "1", "learners per GPU, or 'auto' for Algorithm 2")
	batch := flag.Int("batch", 16, "batch size per learner")
	servers := flag.String("servers", "1,2,4,8", "comma-separated cluster sizes to sweep, or a single size with -train")
	net := flag.String("net", "ethernet", "interconnect: ethernet, ethernet25, infiniband")
	tauLocal := flag.Int("tau", 1, "intra-server synchronisation period")
	tauGlobal := flag.Int("tau-global", 1, "cross-server averaging period (in intra-server syncs)")
	train := flag.Bool("train", false, "train end to end instead of sweeping throughput")
	epochs := flag.Int("epochs", 30, "maximum epochs (with -train or -tcp)")
	target := flag.Float64("target", 0, "TTA target accuracy (with -train or -tcp)")
	seed := flag.Uint64("seed", 1, "random seed (with -train or -tcp)")
	tcp := flag.Bool("tcp", false, "launch a real TCP cluster: one crossbow-node process per server on localhost")
	nodeBin := flag.String("node-bin", "", "crossbow-node binary (with -tcp; default: next to this binary, then $PATH)")
	basePort := flag.Int("base-port", 7070, "first localhost port for the node mesh (with -tcp)")
	samples := flag.Int("samples", 0, "override training samples per epoch (with -tcp; 0: model default)")
	overlap := flag.Bool("overlap", false, "overlap the global exchange with computation on every node (with -tcp)")
	segments := flag.Int("segments", 0, "pipeline segments per collective transfer (with -tcp; 0: 4)")
	flag.Parse()

	learners := 1
	if *m == "auto" {
		learners = crossbow.AutoTune
	} else if _, err := fmt.Sscanf(*m, "%d", &learners); err != nil {
		fmt.Fprintf(os.Stderr, "bad -m %q\n", *m)
		os.Exit(2)
	}

	var ic crossbow.Interconnect
	switch *net {
	case "ethernet":
		ic = crossbow.Ethernet()
	case "ethernet25":
		ic = crossbow.Ethernet25G()
	case "infiniband":
		ic = crossbow.InfiniBand()
	default:
		fmt.Fprintf(os.Stderr, "unknown interconnect %q\n", *net)
		os.Exit(2)
	}

	var sizes []int
	for _, s := range strings.Split(*servers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -servers entry %q\n", s)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}

	cfg := crossbow.Config{
		Model:          crossbow.Model(*model),
		GPUs:           *gpus,
		LearnersPerGPU: learners,
		Batch:          *batch,
		Tau:            *tauLocal,
		TauGlobal:      *tauGlobal,
		Interconnect:   ic,
		MaxEpochs:      *epochs,
		TargetAccuracy: *target,
		Seed:           *seed,
	}

	if *tcp {
		os.Exit(runTCP(tcpOpts{
			servers: sizes[0], bin: *nodeBin, basePort: *basePort,
			model: *model, gpus: *gpus, m: *m, batch: *batch,
			tau: *tauLocal, tauGlobal: *tauGlobal,
			epochs: *epochs, target: *target, seed: *seed, samples: *samples,
			tree: ic.Tree, overlap: *overlap, segments: *segments,
		}))
	}

	if *train {
		cfg.Servers = sizes[0]
		res, err := crossbow.Train(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("model=%s servers=%d gpus=%d m=%d batch=%d net=%s\n",
			*model, res.Servers, *gpus, res.LearnersPerGPU, *batch, ic.Name)
		fmt.Printf("simulated throughput: %.0f images/s, epoch: %.1f s\n",
			res.ThroughputImgSec, res.EpochSeconds)
		fmt.Printf("%6s %10s %10s %8s\n", "epoch", "time(s)", "loss", "acc(%)")
		for _, p := range res.Series {
			fmt.Printf("%6d %10.1f %10.4f %8.2f\n", p.Epoch, p.TimeSec, p.Loss, p.TestAcc*100)
		}
		fmt.Printf("best accuracy: %.2f%%\n", res.BestAccuracy*100)
		if *target > 0 {
			if res.TTASeconds >= 0 {
				fmt.Printf("TTA(%.0f%%): %.1f s (%d epochs)\n", *target*100, res.TTASeconds, res.EpochsToTarget)
			} else {
				fmt.Printf("target %.0f%% not reached in %d epochs\n", *target*100, *epochs)
			}
		}
		return
	}

	pts, err := crossbow.ClusterSweep(cfg, sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Scale-out sweep: %s, %d GPUs/server, m=%s, b=%d, %s, tau=%d/%d\n",
		*model, *gpus, *m, *batch, ic.Name, *tauLocal, *tauGlobal)
	fmt.Printf("%8s %14s %10s %12s\n", "servers", "images/s", "epoch(s)", "efficiency")
	for _, p := range pts {
		fmt.Printf("%8d %14.0f %10.1f %11.0f%%\n",
			p.Servers, p.ThroughputImgSec, p.EpochSeconds, p.Efficiency*100)
	}
}

// tcpOpts carries the -tcp launcher's resolved flags.
type tcpOpts struct {
	servers  int
	bin      string
	basePort int
	model    string
	gpus     int
	m        string
	batch    int
	tau      int
	tauGlobal int
	epochs   int
	target   float64
	seed     uint64
	samples  int
	tree     bool
	overlap  bool
	segments int
}

// findNodeBin resolves the crossbow-node binary: explicit flag, then a
// sibling of this executable, then $PATH.
func findNodeBin(flagVal string) (string, error) {
	if flagVal != "" {
		return flagVal, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "crossbow-node")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	return exec.LookPath("crossbow-node")
}

// runTCP launches one crossbow-node process per server on localhost — the
// coordinator-less bootstrap: every process gets the same peer list and
// they dial each other. Node output is streamed with a [rank N] prefix;
// the exit status is the worst of the ranks'.
func runTCP(o tcpOpts) int {
	bin, err := findNodeBin(o.bin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crossbow-cluster: cannot find crossbow-node (build it, or pass -node-bin):", err)
		return 2
	}
	if o.servers < 1 || o.servers > 64 {
		fmt.Fprintf(os.Stderr, "crossbow-cluster: -tcp needs 1..64 servers, got %d\n", o.servers)
		return 2
	}
	peers := make([]string, o.servers)
	for r := range peers {
		peers[r] = fmt.Sprintf("127.0.0.1:%d", o.basePort+r)
	}
	fmt.Printf("launching %d crossbow-node processes (mesh %s)\n", o.servers, strings.Join(peers, ","))

	m := o.m
	if m == "auto" {
		// The offline tuner is deterministic, so every rank resolves the
		// same learner count; pass it through unchanged.
		m = "-1"
	}
	var wg sync.WaitGroup
	status := make([]int, o.servers)
	cmds := make([]*exec.Cmd, o.servers)
	for r := 0; r < o.servers; r++ {
		args := []string{
			"-rank", strconv.Itoa(r),
			"-peers", strings.Join(peers, ","),
			"-model", o.model,
			"-gpus", strconv.Itoa(o.gpus),
			"-m", m,
			"-batch", strconv.Itoa(o.batch),
			"-tau", strconv.Itoa(o.tau),
			"-tau-global", strconv.Itoa(o.tauGlobal),
			"-epochs", strconv.Itoa(o.epochs),
			"-target", strconv.FormatFloat(o.target, 'f', -1, 64),
			"-seed", strconv.FormatUint(o.seed, 10),
			"-quiet",
		}
		if o.samples > 0 {
			args = append(args, "-samples", strconv.Itoa(o.samples))
		}
		if o.tree {
			args = append(args, "-tree")
		}
		if o.overlap {
			args = append(args, "-overlap")
		}
		if o.segments > 0 {
			args = append(args, "-segments", strconv.Itoa(o.segments))
		}
		cmd := exec.Command(bin, args...)
		stdout, _ := cmd.StdoutPipe()
		stderr, _ := cmd.StderrPipe()
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "crossbow-cluster: start rank %d: %v\n", r, err)
			for _, c := range cmds[:r] {
				c.Process.Kill()
			}
			return 1
		}
		cmds[r] = cmd
		prefix := fmt.Sprintf("[rank %d] ", r)
		wg.Add(2)
		go relay(&wg, prefix, stdout, os.Stdout)
		go relay(&wg, prefix, stderr, os.Stderr)
	}
	worst := 0
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "crossbow-cluster: rank %d: %v\n", r, err)
			status[r] = 1
		}
		if status[r] > worst {
			worst = status[r]
		}
	}
	wg.Wait()
	if worst == 0 {
		fmt.Printf("all %d ranks finished cleanly\n", o.servers)
	}
	return worst
}

// relay copies one node's output stream line by line under a rank prefix.
func relay(wg *sync.WaitGroup, prefix string, r io.Reader, w io.Writer) {
	defer wg.Done()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	for sc.Scan() {
		fmt.Fprintf(w, "%s%s\n", prefix, sc.Text())
	}
}
