// Command crossbow-node runs ONE server of a real TCP crossbow cluster:
// it trains its local learners and all-reduces the server reference model
// with its peers over the wire (Config.Transport: TransportTCP). Launch one
// process per peer-list entry — there is no coordinator; the processes
// bootstrap by dialing each other, and a killed process can simply be
// relaunched: it reseeds itself from a live peer's latest snapshot and
// rejoins the averaging at the next global round.
//
// Usage:
//
//	crossbow-node -rank 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//	    -model resnet32 -gpus 1 -m 2 -epochs 10
//	crossbow-node -rank 1 -peers ... &   # each rank in its own process
//	crossbow-node -rank 2 -peers ... -save node2.ckpt
//
// `crossbow-cluster -tcp` spawns the whole mesh on localhost in one step.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crossbow"
)

func main() {
	os.Exit(nodeMain())
}

func nodeMain() int {
	rank := flag.Int("rank", 0, "this process's rank (index into -peers)")
	peers := flag.String("peers", "", "comma-separated listen addresses, one per rank (required)")
	model := flag.String("model", "resnet32", "benchmark model (lenet, resnet32, vgg16, resnet50)")
	gpus := flag.Int("gpus", 1, "simulated GPUs on this server")
	m := flag.Int("m", 1, "learners per GPU on this server")
	batch := flag.Int("batch", 16, "batch size per learner")
	epochs := flag.Int("epochs", 10, "maximum epochs")
	target := flag.Float64("target", 0, "stop at this test accuracy (0: train -epochs)")
	tau := flag.Int("tau", 1, "intra-server synchronisation period")
	tauGlobal := flag.Int("tau-global", 1, "cross-server averaging period (in intra-server syncs)")
	seed := flag.Uint64("seed", 1, "shared model seed (must match on every rank)")
	samples := flag.Int("samples", 0, "override training samples per epoch (0: model default)")
	testSamples := flag.Int("test-samples", 0, "override test samples (0: model default)")
	tree := flag.Bool("tree", false, "binomial-tree collective instead of the ring")
	save := flag.String("save", "", "write the final cluster average model to this checkpoint path")
	hb := flag.Duration("heartbeat", 100*time.Millisecond, "heartbeat period")
	peerTimeout := flag.Duration("peer-timeout", 0, "declare a silent peer dead after this long (0: 10x heartbeat)")
	roundTimeout := flag.Duration("round-timeout", 0, "abort a collective stalled this long by a live peer (0: 30s)")
	quarantine := flag.Duration("quarantine", 0, "bar a corrupting/stalling peer from reconnecting this long (0: peer-timeout)")
	exchangeRetries := flag.Int("exchange-retries", 0, "retries of a fault-aborted global exchange (0: 2, negative: none)")
	overlap := flag.Bool("overlap", false, "overlap the global exchange with the next iteration's computation (bit-identical to synchronous)")
	segments := flag.Int("segments", 0, "pipeline segments per collective transfer (0: 4)")
	bootstrap := flag.Duration("bootstrap", 10*time.Second, "wait this long for the full mesh before training")
	warm := flag.Duration("warm-start", 2*time.Second, "snapshot probe window at startup (rejoin seeding)")
	quiet := flag.Bool("quiet", false, "suppress per-epoch output")
	flag.Parse()

	if *peers == "" {
		fmt.Fprintln(os.Stderr, "crossbow-node: -peers is required")
		return 2
	}
	addrs := strings.Split(*peers, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	ic := crossbow.Ethernet()
	ic.Tree = *tree
	logf := func(string, ...any) {}
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[rank %d] "+format+"\n", append([]any{*rank}, args...)...)
		}
	}

	res, err := crossbow.Train(crossbow.Config{
		Model:          crossbow.Model(*model),
		Transport:      crossbow.TransportTCP,
		GPUs:           *gpus,
		LearnersPerGPU: *m,
		Batch:          *batch,
		Tau:            *tau,
		TauGlobal:      *tauGlobal,
		MaxEpochs:      *epochs,
		TargetAccuracy: *target,
		Seed:           *seed,
		TrainSamples:   *samples,
		TestSamples:    *testSamples,
		Interconnect:   ic,
		Node: crossbow.NodeConfig{
			Rank:            *rank,
			Peers:           addrs,
			BootstrapWait:   *bootstrap,
			WarmStartWait:   *warm,
			HeartbeatEvery:  *hb,
			PeerTimeout:     *peerTimeout,
			RoundTimeout:    *roundTimeout,
			Quarantine:      *quarantine,
			ExchangeRetries: *exchangeRetries,
			OverlapGlobal:   *overlap,
			Segments:        *segments,
			Logf:            logf,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crossbow-node rank %d: %v\n", *rank, err)
		return 1
	}

	if res.WarmStartRound > 0 {
		fmt.Printf("rank %d: warm-started from peer snapshot of round %d\n", *rank, res.WarmStartRound)
	}
	if !*quiet {
		fmt.Printf("rank %d/%d: model=%s m=%d batch=%d\n", *rank, len(addrs), *model, res.LearnersPerGPU, *batch)
		fmt.Printf("%6s %10s %8s\n", "epoch", "loss", "acc(%)")
		for _, p := range res.Series {
			fmt.Printf("%6d %10.4f %8.2f\n", p.Epoch, p.Loss, p.TestAcc*100)
		}
	}
	ts := res.TransportStats
	fmt.Printf("rank %d: best accuracy %.2f%%; rounds=%d restarts=%d aborts=%d reconnects=%d\n",
		*rank, res.BestAccuracy*100, ts.Rounds, ts.RestartRounds, ts.Aborts, ts.Reconnects)
	fmt.Printf("rank %d: wire %d B out / %d B in over %d frames; round p50=%v p99=%v (collective mean %v; simulated %s predicts %.0fus)\n",
		*rank, ts.BytesSent, ts.BytesRecv, ts.FramesSent+ts.FramesRecv,
		ts.RoundP50, ts.RoundP99, ts.CollectiveMean,
		res.Interconnect.Name, res.Interconnect.AllReduceUS(int64(len(res.Params))*4, res.Servers))
	if ts.AsyncRounds > 0 {
		total := ts.OverlapHiddenNs + ts.OverlapBlockedNs
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(ts.OverlapHiddenNs) / float64(total)
		}
		fmt.Printf("rank %d: overlapped %d rounds; hid %v of exchange time behind compute, %v exposed (%.0f%% hidden)\n",
			*rank, ts.AsyncRounds, time.Duration(ts.OverlapHiddenNs), time.Duration(ts.OverlapBlockedNs), pct)
	}

	if *save != "" {
		if err := crossbow.SaveModel(*save, crossbow.Model(*model), res); err != nil {
			fmt.Fprintf(os.Stderr, "crossbow-node rank %d: save: %v\n", *rank, err)
			return 1
		}
		fmt.Printf("rank %d: saved %s\n", *rank, *save)
	}
	return 0
}
