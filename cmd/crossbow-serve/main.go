// Command crossbow-serve exposes a trained Crossbow model over HTTP/JSON:
// a thin front end on crossbow.Serve's dynamically-batched prediction
// runtime (DESIGN.md §11).
//
// Usage:
//
//	crossbow-serve -ckpt model.ckpt -addr :8080 -replicas 2 -max-batch 16
//	crossbow-serve -ckpt model.ckpt -slo 5ms -autoscale 4       # fleet mode
//	crossbow-serve -follow 10.0.0.1:9090 -slo 5ms               # live feed
//	crossbow-serve -model resnet32 -train-epochs 2 -addr :8080   # demo mode
//
// Endpoints:
//
//	POST /v1/predict  {"instances": [[...f32...], ...]}
//	                  → {"model": "...", "version": N,
//	                     "predictions": [{"class": C, "confidence": P,
//	                                      "version": V}, ...]}
//	GET  /v1/stats    → metrics.ServingStats JSON
//	GET  /v1/feed     → metrics.FeedStats JSON (all-zero unless -follow)
//	GET  /healthz     → 200 "ok"
//
// With -ckpt the process serves the exact published model the checkpoint
// carries (its snapshot round is the reported version). With -follow it
// subscribes to a training run's model feed (crossbow-train -publish) and
// hot-swaps every published snapshot in as it arrives — combined with -ckpt
// the checkpoint is the feed's warm base, so a restarted replica resumes
// with deltas instead of a full snapshot. -slo enables SLO-driven adaptive
// batching and -autoscale replica autoscaling (DESIGN.md §16). Demo mode
// trains a small model first so the server can be tried without a
// checkpoint.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"crossbow"
)

func main() {
	os.Exit(serveMain())
}

func serveMain() int {
	ckptPath := flag.String("ckpt", "", "checkpoint to serve (SaveModel/SaveSnapshot output)")
	model := flag.String("model", "lenet", "demo mode: benchmark model to train and serve when -ckpt is unset")
	trainEpochs := flag.Int("train-epochs", 1, "demo mode: training epochs before serving")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	replicas := flag.Int("replicas", 1, "forward-only model replicas")
	maxBatch := flag.Int("max-batch", 8, "dynamic micro-batch ceiling")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "max straggler wait once a batch has an occupant")
	queueDepth := flag.Int("queue-depth", 0, "request queue bound (0: replicas*max-batch*4)")
	shedOnFull := flag.Bool("shed-on-full", false, "shed (fast 503) instead of blocking when the queue is full")
	admitDeadline := flag.Duration("admit-deadline", 0, "shed requests that cannot be answered within this budget (0: no deadline)")
	kmode := flag.String("kernel-mode", "deterministic", "replica GEMM kernel mode: deterministic or fast")
	quantized := flag.Bool("quantized", false, "serve int8 replicas when the top-1 agreement gate vs f32 passes")
	quantMinAgree := flag.Float64("quant-min-agreement", 0, "quantization gate threshold (0: 0.99)")
	follow := flag.String("follow", "", "subscribe to a model feed (crossbow-train -publish address); with -ckpt the checkpoint is the feed's warm base")
	followTimeout := flag.Duration("follow-timeout", 0, "cold-start wait for the feed's first snapshot (0: 30s)")
	slo := flag.Duration("slo", 0, "p99 latency target enabling SLO-driven adaptive batching (-max-batch becomes the ceiling, -max-delay is ignored)")
	autoscale := flag.Int("autoscale", 0, "with -slo: replica pool ceiling; -replicas becomes the floor (0: fixed pool)")
	flag.Parse()

	kernelMode, err := crossbow.ParseKernelMode(*kmode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cfg := crossbow.ServeConfig{
		Replicas:      *replicas,
		MaxBatch:      *maxBatch,
		MaxDelay:      *maxDelay,
		QueueDepth:    *queueDepth,
		ShedOnFull:    *shedOnFull,
		AdmitDeadline: *admitDeadline,

		KernelMode:        kernelMode,
		Quantize:          *quantized,
		QuantMinAgreement: *quantMinAgree,

		SLO:           *slo,
		AutoScale:     *autoscale,
		Follow:        *follow,
		FollowTimeout: *followTimeout,
	}
	switch {
	case *ckptPath != "":
		cfg.Checkpoint = *ckptPath
	case *follow != "":
		// Follow mode: the feed's first snapshot provides the model, no
		// local training needed.
		log.Printf("following model feed at %s", *follow)
	default:
		// Demo mode: train a small model so the server is self-contained.
		log.Printf("no -ckpt: training %s for %d epoch(s) first", *model, *trainEpochs)
		res, err := crossbow.Train(crossbow.Config{
			Model: crossbow.Model(*model), MaxEpochs: *trainEpochs,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "train: %v\n", err)
			return 1
		}
		cfg.Model, cfg.Params = crossbow.Model(*model), res.Params
	}

	p, err := crossbow.Serve(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 1
	}
	defer p.Close()

	if *slo > 0 {
		pool := fmt.Sprintf("%d replicas", *replicas)
		if *autoscale > 0 {
			pool = fmt.Sprintf("%d–%d replicas (autoscaled)", *replicas, *autoscale)
		}
		log.Printf("serving %s (version %d, %s, adaptive batching ≤%d under %v p99 SLO, kernels %s) on %s",
			p.Model(), p.Version(), pool, *maxBatch, *slo, kernelMode, *addr)
	} else {
		log.Printf("serving %s (version %d, %d replicas, max batch %d, max delay %v, kernels %s) on %s",
			p.Model(), p.Version(), *replicas, *maxBatch, *maxDelay, kernelMode, *addr)
	}
	if *quantized {
		if p.Quantized() {
			log.Printf("int8 path on: top-1 agreement vs f32 %.4f", p.QuantAgreement())
		} else {
			log.Printf("int8 path OFF: top-1 agreement %.4f below gate, serving f32", p.QuantAgreement())
		}
	}
	if err := http.ListenAndServe(*addr, newMux(p)); err != nil {
		fmt.Fprintf(os.Stderr, "http: %v\n", err)
		return 1
	}
	return 0
}

// predictRequest is the POST /v1/predict payload.
type predictRequest struct {
	// Instances are flat [C×H×W] samples (Predictor.SampleVol elements
	// each).
	Instances [][]float32 `json:"instances"`
}

// predictResponse is its reply. Version is the model version the service
// is currently on; each prediction additionally carries the version that
// actually computed it, which can trail during a hot swap mid-payload.
type predictResponse struct {
	Model       string       `json:"model"`
	Version     int64        `json:"version"`
	Predictions []prediction `json:"predictions"`
}

type prediction struct {
	Class      int     `json:"class"`
	Confidence float32 `json:"confidence"`
	Version    int64   `json:"version"`
}

// newMux builds the HTTP front end over a predictor. Split from serveMain
// so the request/response contract is testable without a listener.
func newMux(p *crossbow.Predictor) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p.Stats())
	})
	mux.HandleFunc("/v1/feed", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p.FeedStats())
	})
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		if len(req.Instances) == 0 {
			http.Error(w, "no instances", http.StatusBadRequest)
			return
		}
		vol := p.SampleVol()
		for i, inst := range req.Instances {
			if len(inst) != vol {
				http.Error(w, fmt.Sprintf("instance %d has %d values, want %d", i, len(inst), vol),
					http.StatusBadRequest)
				return
			}
		}
		// Submit concurrently so the engine's dispatcher can coalesce the
		// payload into as few micro-batches as possible — through a bounded
		// worker pool, so a huge payload costs queue time, not goroutines.
		resp := predictResponse{Model: string(p.Model())}
		resp.Predictions = make([]prediction, len(req.Instances))
		errs := make([]error, len(req.Instances))
		workers := len(req.Instances)
		if workers > 64 {
			workers = 64
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					pr, err := p.Predict(req.Instances[i])
					if err != nil {
						errs[i] = err
						continue
					}
					resp.Predictions[i] = prediction{
						Class: pr.Class, Confidence: pr.Confidence, Version: pr.Version,
					}
				}
			}()
		}
		for i := range req.Instances {
			idx <- i
		}
		close(idx)
		wg.Wait()
		resp.Version = p.Version()
		for _, err := range errs {
			if err != nil {
				if errors.Is(err, crossbow.ErrOverloaded) {
					// The shed path: the engine refused cheaply, so the 503
					// goes out fast instead of after a queue-drain wait.
					w.Header().Set("Retry-After", "1")
				}
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	return mux
}
