package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"crossbow"
)

// startTestServer stands up the full HTTP front end over a freshly trained
// tiny model — the request/response smoke CI runs.
func startTestServer(t *testing.T) (*httptest.Server, *crossbow.Predictor) {
	t.Helper()
	res, err := crossbow.Train(crossbow.Config{
		Model: crossbow.LeNet, MaxEpochs: 1, Seed: 3,
		TrainSamples: 64, TestSamples: 32, Batch: 8,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	p, err := crossbow.Serve(crossbow.ServeConfig{
		Model: crossbow.LeNet, Params: res.Params, Version: 11,
		Replicas: 2, MaxBatch: 4, MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	srv := httptest.NewServer(newMux(p))
	t.Cleanup(func() { srv.Close(); p.Close() })
	return srv, p
}

// TestPredictEndpoint POSTs one batch and asserts 200 plus a well-formed
// response — the serving smoke of the CI pipeline.
func TestPredictEndpoint(t *testing.T) {
	srv, p := startTestServer(t)

	instances := make([][]float32, 3)
	for i := range instances {
		inst := make([]float32, p.SampleVol())
		for j := range inst {
			inst[j] = float32((i+j)%5) * 0.25
		}
		instances[i] = inst
	}
	body, _ := json.Marshal(predictRequest{Instances: instances})
	resp, err := http.Post(srv.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var got predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if got.Model != "lenet" || got.Version != 11 {
		t.Fatalf("response header %q/%d, want lenet/11", got.Model, got.Version)
	}
	if len(got.Predictions) != len(instances) {
		t.Fatalf("%d predictions for %d instances", len(got.Predictions), len(instances))
	}
	for i, pr := range got.Predictions {
		if pr.Class < 0 || pr.Class >= 10 || pr.Confidence <= 0 || pr.Confidence > 1 {
			t.Fatalf("prediction %d implausible: %+v", i, pr)
		}
		if pr.Version != 11 {
			t.Fatalf("prediction %d computed under version %d, want 11", i, pr.Version)
		}
	}
}

// TestPredictEndpointRejectsBadInput pins the 4xx contract.
func TestPredictEndpointRejectsBadInput(t *testing.T) {
	srv, _ := startTestServer(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", `{"instances": []}`},
		{"wrong-size", `{"instances": [[1, 2, 3]]}`},
		{"malformed", `{"instances": [[1,`},
	} {
		resp, err := http.Post(srv.URL+"/v1/predict", "application/json", bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatalf("%s: POST: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if resp, err := http.Get(srv.URL + "/v1/predict"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/predict: status %d, want 405", resp.StatusCode)
		}
	}
}

// TestFollowModeEndToEnd stands up the HTTP front end over a follow-mode
// predictor (the crossbow-serve -follow path): a ModelPublisher feeds it a
// model and then an update, and /v1/feed shows the delta arriving.
func TestFollowModeEndToEnd(t *testing.T) {
	res, err := crossbow.Train(crossbow.Config{
		Model: crossbow.LeNet, MaxEpochs: 1, Seed: 3,
		TrainSamples: 64, TestSamples: 32, Batch: 8,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	mp, err := crossbow.NewModelPublisher("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewModelPublisher: %v", err)
	}
	defer mp.Close()
	if err := mp.Publish(crossbow.Snapshot{
		Model: crossbow.LeNet, Round: 1, Iter: 1, Epoch: 1, Params: res.Params,
	}); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	p, err := crossbow.Serve(crossbow.ServeConfig{
		Follow: mp.Addr(), FollowTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Serve(follow): %v", err)
	}
	srv := httptest.NewServer(newMux(p))
	defer func() { srv.Close(); p.Close() }()

	inst := make([]float32, p.SampleVol())
	body, _ := json.Marshal(predictRequest{Instances: [][]float32{inst}})
	resp, err := http.Post(srv.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var got predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	resp.Body.Close()
	if got.Model != "lenet" || got.Version != 1 {
		t.Fatalf("follow-mode response header %q/%d, want lenet/1", got.Model, got.Version)
	}

	// Publish an update and watch the server hot-swap to it.
	next := append([]float32(nil), res.Params...)
	for i := 0; i < 100 && i < len(next); i++ {
		next[i] += 0.001
	}
	if err := mp.Publish(crossbow.Snapshot{
		Model: crossbow.LeNet, Round: 2, Iter: 2, Epoch: 1, Params: next,
	}); err != nil {
		t.Fatalf("Publish update: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Version() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("server stuck on version %d after update", p.Version())
		}
		time.Sleep(5 * time.Millisecond)
	}
	fresp, err := http.Get(srv.URL + "/v1/feed")
	if err != nil {
		t.Fatalf("GET feed: %v", err)
	}
	defer fresp.Body.Close()
	var fs crossbow.FeedStats
	if err := json.NewDecoder(fresp.Body).Decode(&fs); err != nil {
		t.Fatalf("decoding feed stats: %v", err)
	}
	if fs.FullSent != 1 || fs.DeltaSent != 1 {
		t.Fatalf("feed stats report %d fulls / %d deltas, want 1 / 1 (%+v)",
			fs.FullSent, fs.DeltaSent, fs)
	}
}

// TestStatsAndHealthEndpoints checks the sidecar endpoints.
func TestStatsAndHealthEndpoints(t *testing.T) {
	srv, p := startTestServer(t)

	if _, err := p.Predict(make([]float32, p.SampleVol())); err != nil {
		t.Fatalf("Predict: %v", err)
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats crossbow.ServingStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if stats.Requests < 1 || stats.ModelVersion != 11 {
		t.Fatalf("implausible stats %+v", stats)
	}

	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", h.StatusCode)
	}
}
