// Command crossbow-train trains one benchmark model with a chosen
// algorithm and configuration, printing per-epoch test accuracy against
// simulated wall-clock time.
//
// Usage:
//
//	crossbow-train -model resnet32 -gpus 8 -m auto -batch 16 -target 0.85
//	crossbow-train -model lenet -algo ssgd -epochs 20
//	crossbow-train -model resnet32 -sched fcfs -m 2 -batch 4 -tau 2
//	crossbow-train -model lenet -publish :9090 -publish-every 100
//
// With -publish the run streams every published snapshot to serving
// replicas (crossbow-serve -follow) as deltas over TCP while it trains.
package main

import (
	"flag"
	"fmt"
	"os"

	"crossbow"
	"crossbow/internal/metrics"
)

func main() {
	model := flag.String("model", "resnet32", "benchmark model (lenet, resnet32, vgg16, resnet50)")
	algo := flag.String("algo", "sma", "algorithm: sma, sma-hier, ssgd, easgd, asgd")
	gpus := flag.Int("gpus", 1, "number of simulated GPUs")
	m := flag.String("m", "1", "learners per GPU, or 'auto' for Algorithm 2")
	batch := flag.Int("batch", 16, "batch size per learner")
	epochs := flag.Int("epochs", 30, "maximum epochs")
	target := flag.Float64("target", 0, "stop at this test accuracy (TTA target); 0 trains all epochs")
	lr := flag.Float64("lr", 0, "learning rate (0 = per-model default)")
	momentum := flag.Float64("momentum", 0.9, "momentum")
	tau := flag.Int("tau", 1, "synchronisation period")
	seed := flag.Uint64("seed", 1, "random seed")
	sched := flag.String("sched", "lockstep", "task-runtime scheduler: lockstep (barriered oracle) or fcfs (barrier-free)")
	prefetch := flag.Int("prefetch", 0, "staged batches per learner in the input pipeline, min 1 (0: double buffering)")
	kmode := flag.String("kernel-mode", "deterministic", "GEMM kernel mode: deterministic (bit-reproducible) or fast (FMA micro-kernels)")
	publish := flag.String("publish", "", "serve a model feed on this address while training (crossbow-serve -follow subscribes)")
	publishEvery := flag.Int("publish-every", 0, "publish a snapshot every N iterations (0 with -publish: 100)")
	flag.Parse()

	learners := 1
	if *m == "auto" {
		learners = crossbow.AutoTune
	} else if _, err := fmt.Sscanf(*m, "%d", &learners); err != nil {
		fmt.Fprintf(os.Stderr, "bad -m %q\n", *m)
		os.Exit(2)
	}
	kernelMode, err := crossbow.ParseKernelMode(*kmode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := crossbow.Config{
		Model:          crossbow.Model(*model),
		Algo:           crossbow.Algorithm(*algo),
		GPUs:           *gpus,
		LearnersPerGPU: learners,
		Batch:          *batch,
		LearnRate:      float32(*lr),
		Momentum:       float32(*momentum),
		Tau:            *tau,
		MaxEpochs:      *epochs,
		TargetAccuracy: *target,
		Seed:           *seed,
		Scheduler:      crossbow.Scheduler(*sched),
		Prefetch:       *prefetch,
		KernelMode:     kernelMode,
	}
	if *publish != "" {
		cfg.PublishAddr = *publish
		cfg.PublishEvery = *publishEvery
		if cfg.PublishEvery <= 0 {
			cfg.PublishEvery = 100
		}
	}
	res, err := crossbow.Train(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if len(res.TuneHistory) > 0 {
		fmt.Println("auto-tuner decisions:")
		for _, d := range res.TuneHistory {
			fmt.Printf("  m=%d -> %.0f images/s\n", d.M, d.Throughput)
		}
	}
	fmt.Printf("model=%s algo=%s gpus=%d m=%d batch=%d sched=%s kernels=%s\n",
		*model, *algo, *gpus, res.LearnersPerGPU, *batch, res.Scheduler, kernelMode)
	fmt.Printf("simulated throughput: %.0f images/s, epoch: %.1f s\n",
		res.ThroughputImgSec, res.EpochSeconds)
	if len(res.Wall) > 0 {
		fmt.Printf("wall-clock: %.0f images/s, median epoch %.3f s (rounds=%d waits=%d lead<=%d iters)\n",
			res.WallImagesPerSec, metrics.MedianEpochSec(res.Wall),
			res.RuntimeStats.Rounds, res.RuntimeStats.RoundWaits, res.RuntimeStats.MaxLeadIters)
	}
	fmt.Printf("%6s %10s %10s %8s\n", "epoch", "time(s)", "loss", "acc(%)")
	for _, p := range res.Series {
		fmt.Printf("%6d %10.1f %10.4f %8.2f\n", p.Epoch, p.TimeSec, p.Loss, p.TestAcc*100)
	}
	fmt.Printf("best accuracy: %.2f%%\n", res.BestAccuracy*100)
	if *target > 0 {
		if res.TTASeconds >= 0 {
			fmt.Printf("TTA(%.0f%%): %.1f s (%d epochs)\n", *target*100, res.TTASeconds, res.EpochsToTarget)
		} else {
			fmt.Printf("target %.0f%% not reached in %d epochs\n", *target*100, *epochs)
		}
	}
}
