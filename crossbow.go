// Package crossbow is a Go reproduction of "CROSSBOW: Scaling Deep Learning
// with Small Batch Sizes on Multi-GPU Servers" (Koliousis et al., VLDB
// 2019): synchronous model averaging (SMA) with independent learners, a
// concurrent task engine that trains multiple model replicas per GPU, and
// auto-tuning of the learner count to saturate hardware at small batch
// sizes.
//
// Since CUDA GPUs are not reachable from pure Go, the package composes two
// planes (see DESIGN.md): genuine gradient-descent training of scaled
// benchmark models measures statistical efficiency, while a discrete-event
// simulator of the paper's 8-GPU server measures hardware efficiency.
// Time-to-accuracy — the paper's headline metric — multiplies epochs-to-
// accuracy from the first plane by epoch duration from the second. A third
// plane (internal/cluster) scales the simulation out: Config.Servers > 1
// trains across N simulated servers connected by Config.Interconnect, with
// a two-level averaging schedule on top of the paper's hierarchical SMA.
//
// Quick start:
//
//	res, err := crossbow.Train(crossbow.Config{
//		Model:          crossbow.ResNet32,
//		GPUs:           8,
//		LearnersPerGPU: crossbow.AutoTune,
//		Batch:          16,
//		TargetAccuracy: 0.80,
//	})
package crossbow

import (
	"fmt"

	"crossbow/internal/autotune"
	"crossbow/internal/core"
	"crossbow/internal/engine"
	"crossbow/internal/metrics"
	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// Model identifies a benchmark model (paper Table 1).
type Model = nn.ModelID

// The four benchmark models.
const (
	LeNet    = nn.LeNet
	ResNet32 = nn.ResNet32
	VGG16    = nn.VGG16
	ResNet50 = nn.ResNet50
)

// Models lists the benchmark models in Table 1 order.
var Models = nn.AllModels

// Algorithm selects the synchronisation algorithm.
type Algorithm = core.Algorithm

// Available algorithms. SMA is Crossbow's synchronous model averaging
// (Algorithm 1); SSGD is the TensorFlow-style baseline; EASGD the elastic
// averaging comparator of §5.5; SMAHierarchical the two-level organisation
// of §3.3.
const (
	SMA             = core.AlgoSMA
	SMAHierarchical = core.AlgoSMAHier
	SSGD            = core.AlgoSSGD
	EASGD           = core.AlgoEASGD
	ASGD            = core.AlgoASGD
)

// KernelMode selects the compute kernels' numerical contract (DESIGN.md
// §14): Deterministic runs the bit-reproducible blocked kernels (the zero
// value and the default — every determinism guarantee in this package is
// stated under it), Fast dispatches FMA micro-kernels (AVX-512/AVX2 where
// the CPU has them) and fuses conv→BN→ReLU inference chains into GEMM
// epilogues. Fast stays run-to-run deterministic at any worker count but
// rounds differently than Deterministic (fused multiply-adds), so the two
// modes' training trajectories diverge bitwise while agreeing statistically.
type KernelMode = tensor.KernelMode

// Kernel modes.
const (
	Deterministic = tensor.Deterministic
	Fast          = tensor.Fast
)

// ParseKernelMode parses "deterministic" or "fast" (the CLI flag values).
func ParseKernelMode(s string) (KernelMode, error) { return tensor.ParseKernelMode(s) }

// AutoTune, used as LearnersPerGPU, lets Algorithm 2 choose the learner
// count that saturates training throughput. With the default scheduler the
// count is probed on the hardware simulator before the run; with
// Scheduler: FCFS the tuner runs online, adapting the learner count to
// measured wall-clock throughput while training.
const AutoTune = -1

// Scheduler selects the task runtime's scheduling mode (§4.3).
type Scheduler = core.SchedulerMode

// Scheduler modes. Lockstep joins every learner behind a per-iteration
// barrier (the baseline execution model; bit-deterministic given the
// config). FCFS is Crossbow's barrier-free schedule: learners bind staged
// input batches first-come-first-served, run ahead of the average model by
// up to τ iterations, and synchronisation overlaps the next iteration's
// compute. FCFS requires the SMA algorithm on a single server.
const (
	Lockstep = core.SchedLockstep
	FCFS     = core.SchedFCFS
)

// Config configures a training run.
type Config struct {
	// Model is the benchmark to train. Required.
	Model Model
	// Algo defaults to SMA.
	Algo Algorithm
	// Servers is the number of simulated multi-GPU servers (default 1).
	// Above 1 the cluster plane schedules cross-server average tasks over
	// Interconnect and trains with the two-level cluster SMA; Servers: 1
	// is exactly the paper's single-server system.
	Servers int
	// Interconnect is the cross-server network cost model (zero value:
	// 10 Gb/s Ethernet). Only meaningful with Servers > 1. On a TCP run
	// it doubles as the cost-model oracle reported next to the measured
	// transport statistics, and Interconnect.Tree selects the real
	// collective's topology too.
	Interconnect Interconnect
	// Transport selects the cross-server exchange plane with Servers > 1:
	// TransportSimulated (default) trains every server in this process
	// against the Interconnect cost model; TransportTCP runs one server
	// per OS process, exchanging the average model over real sockets.
	Transport Transport
	// Node describes this process's rank and the cluster's address list
	// with Transport: TransportTCP.
	Node NodeConfig
	// GPUs is the number of simulated GPUs g per server (default 1).
	GPUs int
	// LearnersPerGPU is m, the model replicas trained per GPU; AutoTune
	// selects it with Algorithm 2 (default 1).
	LearnersPerGPU int
	// Batch is the per-learner batch size b (default 16).
	Batch int
	// LearnRate γ (default: per-model calibration), Momentum µ (default
	// 0.9).
	LearnRate float32
	Momentum  float32
	// Tau is the synchronisation period (default 1; see §5.5).
	Tau int
	// TauGlobal is the cross-server averaging period in units of
	// intra-server synchronisations (default 1). Only meaningful with
	// Servers > 1.
	TauGlobal int
	// TargetAccuracy stops training once the median test accuracy of the
	// last 5 epochs reaches it (TTA's window). Zero trains MaxEpochs.
	TargetAccuracy float64
	// MaxEpochs bounds the run (default 30).
	MaxEpochs int
	// Seed makes the run reproducible (default 1).
	Seed uint64
	// Schedule optionally adapts the learning rate per epoch; Restart
	// applies the §3.2 SMA restart on learning-rate changes.
	Schedule core.Schedule
	Restart  bool
	// TrainSamples/TestSamples override the synthetic dataset sizes.
	TrainSamples, TestSamples int
	// KernelMode selects the GEMM kernel mode for every learner and the
	// evaluation network: Deterministic (default, bit-reproducible) or
	// Fast (FMA micro-kernels; opt-in, see the KernelMode type).
	KernelMode KernelMode
	// KernelThreads bounds the compute kernels' worker budget (process-
	// wide; see tensor.SetWorkerBudget). Zero keeps the current setting —
	// by default runtime.NumCPU(), overridable with CROSSBOW_PARALLELISM.
	// The budget is shared: k concurrent learners each get a pool of
	// max(1, budget/k) kernel workers, so learner- and kernel-level
	// parallelism never oversubscribe it. Results are bit-identical at any
	// value.
	KernelThreads int
	// Scheduler selects the task runtime's scheduling mode: Lockstep
	// (default, bit-deterministic) or FCFS (barrier-free; SMA only,
	// Servers == 1).
	Scheduler Scheduler
	// Prefetch is the staged-batch depth per learner in the input
	// pipeline's circular buffer; minimum 1 (default 2, double buffering
	// per §4.5).
	Prefetch int
	// MemoryBudget bounds the shared activation pool in bytes (§4.5):
	// every learning task executes against a planned arena checked out of
	// per-operator pools shared by all learners, and when granting another
	// arena would exceed the budget, learners wait for one to come back
	// instead of growing the footprint. One task is always admitted, so
	// any budget makes progress. Zero selects the default — enough arenas
	// to cover the kernel worker budget plus one — under which activation
	// memory grows with actual task concurrency, not learner count.
	MemoryBudget int64
	// PublishEvery, with OnSnapshot set, publishes a versioned snapshot of
	// the central average model every PublishEvery iterations, rounded up
	// to the enclosing synchronisation round — the boundary at which the
	// model is stable under both schedulers, so snapshots are never torn
	// (DESIGN.md §11). Zero disables publishing.
	PublishEvery int
	// OnSnapshot receives each published snapshot while training runs.
	// Typical consumers hand it to a Predictor's UpdateSnapshot (serving
	// the freshest model) or to SaveSnapshot (durable export). The
	// callback runs on runtime goroutines and must return quickly.
	OnSnapshot func(Snapshot)
	// PublishAddr, with PublishEvery set, additionally streams every
	// published snapshot to serving replicas over TCP (DESIGN.md §16): Train
	// runs a ModelPublisher on this address for the duration of the run, and
	// Predictors started with ServeConfig.Follow (or crossbow-serve -follow)
	// receive each snapshot as a delta against the model they already hold.
	// OnSnapshot may still be set; it runs after the feed send.
	PublishAddr string
}

// Snapshot is a versioned copy of the central average model cut at a
// synchronisation-round boundary — the servable artefact of a training run.
// See Config.PublishEvery, Serve and SaveSnapshot.
type Snapshot = core.Snapshot

// Result is the outcome of a training run.
type Result struct {
	// Series holds one point per epoch with simulated-time stamps.
	Series []metrics.EpochPoint
	// LearnersPerGPU is the effective m (after auto-tuning).
	LearnersPerGPU int
	// Servers is the effective cluster size (1 on single-server runs).
	Servers int
	// Interconnect is the network cost model the cluster run used (zero
	// value on single-server runs).
	Interconnect Interconnect
	// Transport is the exchange plane the run used (TransportSimulated on
	// single-process runs).
	Transport Transport
	// TransportStats reports the TCP transport's counters for this
	// process — bytes and frames on the wire, reconnects, membership
	// churn, and round synchronisation wall times (the measured
	// counterpart of Interconnect.AllReduceUS). Zero unless
	// Transport == TransportTCP.
	TransportStats metrics.TransportStats
	// WarmStartRound is the snapshot round this process resumed from when
	// it rejoined a running cluster (0 on cold starts).
	WarmStartRound int
	// ThroughputImgSec is the simulated training throughput.
	ThroughputImgSec float64
	// EpochSeconds is the simulated duration of one paper-scale epoch.
	EpochSeconds float64
	// EpochsToTarget is the ETA statistic (-1 if target unset/missed).
	EpochsToTarget int
	// TTASeconds is time-to-accuracy in simulated seconds (-1 if missed).
	TTASeconds float64
	// BestAccuracy is the highest test accuracy observed.
	BestAccuracy float64
	// TuneHistory holds Algorithm 2's decisions when auto-tuning was used.
	TuneHistory []autotune.Decision
	// Params is the trained model: the central average model for
	// SMA/EA-SGD, the global model for S-SGD/A-SGD. Pair with SaveModel
	// to checkpoint it.
	Params []float32
	// Scheduler is the task-runtime mode the statistical plane executed
	// with.
	Scheduler Scheduler
	// Wall records each epoch's measured wall-clock duration and training
	// throughput on this machine (the real-hardware complement of the
	// simulated ThroughputImgSec).
	Wall []metrics.WallPoint
	// WallImagesPerSec is the measured mean training throughput.
	WallImagesPerSec float64
	// RuntimeStats reports the task runtime's scheduling statistics
	// (rounds applied, straggler waits, FCFS run-ahead).
	RuntimeStats engine.RuntimeStats
	// Mem reports the live memory plane (§4.5): the planned per-task
	// arena vs the naive footprint, shared-pool allocation/peak/hit-rate,
	// and GC pause + allocation deltas over the training epochs.
	Mem metrics.MemoryStats
}

func (c *Config) fillDefaults() error {
	if c.Model == "" {
		return fmt.Errorf("crossbow: Config.Model is required")
	}
	if _, ok := nn.ScaledConfigs[c.Model]; !ok {
		return fmt.Errorf("crossbow: unknown model %q", c.Model)
	}
	if c.Algo == "" {
		c.Algo = SMA
	}
	if c.Servers <= 0 {
		c.Servers = 1
	}
	if c.GPUs <= 0 {
		c.GPUs = 1
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 30
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.KernelThreads > 0 {
		tensor.SetWorkerBudget(c.KernelThreads)
	}
	switch c.Scheduler {
	case "", Lockstep:
		c.Scheduler = Lockstep
	case FCFS:
		if c.Algo != SMA {
			return fmt.Errorf("crossbow: Scheduler FCFS requires Algo SMA (got %q)", c.Algo)
		}
		if c.Servers > 1 {
			return fmt.Errorf("crossbow: Scheduler FCFS is single-server (got Servers %d)", c.Servers)
		}
	default:
		return fmt.Errorf("crossbow: unknown scheduler %q", c.Scheduler)
	}
	switch c.Transport {
	case "", TransportSimulated:
		c.Transport = TransportSimulated
	case TransportTCP:
		// One process per server: Servers defaults to the peer count.
		if c.Servers <= 1 && len(c.Node.Peers) > 0 {
			c.Servers = len(c.Node.Peers)
		}
		if err := c.validateTCP(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("crossbow: unknown transport %q", c.Transport)
	}
	return nil
}

// Train runs the configured experiment end to end: optional learner
// auto-tuning, hardware-efficiency measurement on the simulated server, and
// genuine training of the scaled model for statistical efficiency.
func Train(cfg Config) (*Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if cfg.PublishAddr != "" {
		if cfg.PublishEvery <= 0 {
			return nil, fmt.Errorf("crossbow: PublishAddr requires PublishEvery")
		}
		mp, err := NewModelPublisher(cfg.PublishAddr)
		if err != nil {
			return nil, err
		}
		defer mp.Close()
		prev := cfg.OnSnapshot
		cfg.OnSnapshot = func(s Snapshot) {
			// A feed hiccup must not kill the run: Publish only errors on
			// contract violations the snapshot publisher upholds (monotone
			// rounds, stable shape); per-subscriber faults drop subscribers,
			// not snapshots.
			mp.Publish(s)
			if prev != nil {
				prev(s)
			}
		}
	}
	if cfg.Transport == TransportTCP {
		return trainNodeTCP(cfg)
	}
	if cfg.Servers > 1 {
		return trainCluster(cfg)
	}
	res := &Result{LearnersPerGPU: cfg.LearnersPerGPU, Servers: 1, Scheduler: cfg.Scheduler, Transport: TransportSimulated}

	// With the FCFS runtime, AutoTune means the *online* Algorithm 2: the
	// statistical plane below starts at one learner per GPU and resizes
	// against measured wall-clock throughput while training. Otherwise the
	// count is probed on the hardware simulator up front.
	tuneOnline := cfg.LearnersPerGPU == AutoTune && cfg.Scheduler == FCFS
	if tuneOnline {
		res.LearnersPerGPU = 1 // refined from TuneHistory after the run
	} else if cfg.LearnersPerGPU == AutoTune {
		tuned := autotune.Tune(autotune.Config{Model: cfg.Model, GPUs: cfg.GPUs, Batch: cfg.Batch})
		res.LearnersPerGPU = tuned.Chosen
		res.TuneHistory = tuned.History
	} else if cfg.LearnersPerGPU <= 0 {
		res.LearnersPerGPU = 1
	}

	// Hardware plane: throughput and epoch duration at paper scale.
	spec := nn.FullSpec(cfg.Model)
	var tau int
	if cfg.Tau > 1 {
		tau = cfg.Tau
	}
	var throughput float64
	if cfg.Algo == SSGD {
		eng := engine.NewSSGD(engine.SSGDConfig{
			Model: cfg.Model, GPUs: cfg.GPUs,
			AggregateBatch: cfg.Batch * cfg.GPUs * res.LearnersPerGPU,
		})
		throughput = eng.Throughput(30)
	} else {
		eng := engine.New(engine.Config{
			Model: cfg.Model, GPUs: cfg.GPUs, LearnersPerGPU: res.LearnersPerGPU,
			Batch: cfg.Batch, Tau: tau, Overlap: true,
		})
		throughput = eng.Throughput(30)
	}
	res.ThroughputImgSec = throughput
	if throughput > 0 {
		res.EpochSeconds = float64(spec.TrainSamples) / throughput
	}

	// Statistical plane: real training of the scaled model on the task
	// runtime.
	tr := core.Train(core.TrainConfig{
		Model:           cfg.Model,
		Algo:            cfg.Algo,
		GPUs:            cfg.GPUs,
		LearnersPerGPU:  res.LearnersPerGPU,
		BatchPerLearner: cfg.Batch,
		LearnRate:       cfg.LearnRate,
		Momentum:        cfg.Momentum,
		LocalMomentum:   cfg.Momentum, // solver momentum inside learners, as released

		Tau:               cfg.Tau,
		MaxEpochs:         cfg.MaxEpochs,
		TargetAcc:         cfg.TargetAccuracy,
		Seed:              cfg.Seed,
		Schedule:          cfg.Schedule,
		RestartOnLRChange: cfg.Restart,
		EpochSeconds:      res.EpochSeconds,
		TrainSamples:      cfg.TrainSamples,
		TestSamples:       cfg.TestSamples,
		Scheduler:         cfg.Scheduler,
		KernelMode:        cfg.KernelMode,
		Prefetch:          cfg.Prefetch,
		AutoTuneLearners:  tuneOnline,
		MemoryBudget:      cfg.MemoryBudget,
		PublishEvery:      cfg.PublishEvery,
		OnSnapshot:        cfg.OnSnapshot,
	})
	res.Series = tr.Series
	res.EpochsToTarget = tr.EpochsToTarget
	res.BestAccuracy = tr.FinalAccuracy
	res.Params = tr.Model
	res.Wall = tr.Wall
	res.WallImagesPerSec = metrics.MeanImagesPerSec(tr.Wall)
	res.RuntimeStats = tr.RuntimeStats
	res.Mem = tr.Mem
	if tuneOnline {
		res.LearnersPerGPU = tr.K / cfg.GPUs
		if res.LearnersPerGPU < 1 {
			res.LearnersPerGPU = 1
		}
		res.TuneHistory = tr.TuneHistory
	}
	res.TTASeconds = -1
	if cfg.TargetAccuracy > 0 {
		if t, ok := metrics.TTA(tr.Series, cfg.TargetAccuracy); ok {
			res.TTASeconds = t
		}
	}
	return res, nil
}

// Throughput measures simulated training throughput (images/s) for a
// configuration without running the statistical plane.
func Throughput(cfg Config) (float64, error) {
	if err := cfg.fillDefaults(); err != nil {
		return 0, err
	}
	m := cfg.LearnersPerGPU
	if m == AutoTune {
		m = autotune.Tune(autotune.Config{
			Model: cfg.Model, GPUs: cfg.GPUs, Batch: cfg.Batch,
			Servers: cfg.Servers, TauGlobal: cfg.TauGlobal, Net: cfg.Interconnect,
		}).Chosen
	} else if m <= 0 {
		m = 1
	}
	if cfg.Servers > 1 {
		if _, err := clusterAlgo(cfg.Algo); err != nil {
			return 0, err
		}
		return clusterThroughput(cfg, m, 30), nil
	}
	if cfg.Algo == SSGD {
		return engine.NewSSGD(engine.SSGDConfig{
			Model: cfg.Model, GPUs: cfg.GPUs, AggregateBatch: cfg.Batch * cfg.GPUs * m,
		}).Throughput(30), nil
	}
	var tau int
	if cfg.Tau > 1 {
		tau = cfg.Tau
	}
	return engine.New(engine.Config{
		Model: cfg.Model, GPUs: cfg.GPUs, LearnersPerGPU: m, Batch: cfg.Batch,
		Tau: tau, Overlap: true,
	}).Throughput(30), nil
}

// TuneLearners runs Algorithm 2 and returns the chosen learners-per-GPU
// with the decision history.
func TuneLearners(model Model, gpus, batch int) (int, []autotune.Decision) {
	r := autotune.Tune(autotune.Config{Model: model, GPUs: gpus, Batch: batch})
	return r.Chosen, r.History
}
