package crossbow

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crossbow/internal/chaos"
)

// fateLink keys a recorded fate sequence by its directed link and class.
type fateLink struct {
	from, to int
	class    chaos.Class
}

// fateLog records the injector's per-frame decisions during the faulted
// window of a soak so they can be replayed afterwards against a fresh
// injector with the same seed.
type fateLog struct {
	mu  sync.Mutex
	on  bool
	max int
	n   int
	evs map[fateLink][]chaos.Event
}

func newFateLog(max int) *fateLog {
	return &fateLog{on: true, max: max, evs: make(map[fateLink][]chaos.Event)}
}

func (l *fateLog) record(ev chaos.Event) {
	l.mu.Lock()
	if l.on && l.n < l.max {
		k := fateLink{ev.From, ev.To, ev.Class}
		l.evs[k] = append(l.evs[k], ev)
		l.n++
	}
	l.mu.Unlock()
}

// stop ends recording; every event traced after stop returns is discarded,
// so the log holds only decisions made under the original fault rates.
func (l *fateLog) stop() {
	l.mu.Lock()
	l.on = false
	l.mu.Unlock()
}

// replay feeds every recorded link's frame sequence into a fresh injector
// built from the same config and requires the identical fate for every
// frame — the "same seed replays the same fault schedule" guarantee, checked
// on the traffic a real training run actually produced. Events are ordered
// by their per-link sequence number; a link whose prefix has a gap (an
// event raced the stop flag) is truncated at the gap.
func (l *fateLog) replay(t *testing.T, cfg chaos.Config) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	re := chaos.NewInjector(cfg)
	total := 0
	for k, evs := range l.evs {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
		for i, ev := range evs {
			if ev.Seq != uint64(i) {
				evs = evs[:i]
				break
			}
		}
		for _, ev := range evs {
			got := re.Outgoing(ev.From, ev.To, ev.Class, ev.PayloadLen)
			if got != ev.Fate {
				t.Fatalf("replay diverged: link %d->%d class %d frame %d: got %+v, recorded %+v",
					k.from, k.to, k.class, ev.Seq, got, ev.Fate)
			}
		}
		total += len(evs)
	}
	if total < 100 {
		t.Fatalf("fate log replayed only %d events — the soak barely exercised the injector", total)
	}
}

// transportLog captures a node's transport debug lines so the test can
// check for membership events (e.g. a partitioned rank rejoining).
type transportLog struct {
	mu    sync.Mutex
	start time.Time
	lines []string
}

func (l *transportLog) logf(format string, args ...any) {
	l.mu.Lock()
	if l.start.IsZero() {
		l.start = time.Now()
	}
	l.lines = append(l.lines, fmt.Sprintf("%6.0fms ", time.Since(l.start).Seconds()*1e3)+fmt.Sprintf(format, args...))
	l.mu.Unlock()
}

func (l *transportLog) count(substr string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ln := range l.lines {
		if strings.Contains(ln, substr) {
			n++
		}
	}
	return n
}

// snapRing keeps a rank's most recent published central models. Under a
// fixed per-rank iteration budget, membership churn shears the survivors'
// call counts in wall time, so they rarely END on the same shared round —
// but the replication invariant says their models are bit-identical at
// every shared completed round. The ring holds enough of the stream's tail
// that the first finisher's final model must appear in it.
type snapRing struct {
	mu   sync.Mutex
	buf  [][]float32
	next int
}

func newSnapRing(n int) *snapRing { return &snapRing{buf: make([][]float32, n)} }

func (s *snapRing) push(p []float32) {
	s.mu.Lock()
	s.buf[s.next%len(s.buf)] = p // Snapshot.Params is already our copy
	s.next++
	s.mu.Unlock()
}

func (s *snapRing) contains(p []float32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
outer:
	for _, q := range s.buf {
		if len(q) != len(p) {
			continue
		}
		for i := range p {
			if math.Float32bits(p[i]) != math.Float32bits(q[i]) {
				continue outer
			}
		}
		return true
	}
	return false
}

// TestChaosSoak is the acceptance scenario for the chaos-hardened cluster
// plane: three ranks train together while a seeded injector drops and
// delays their collective frames, splits the cluster once (and heals it),
// and then cuts one rank off for good — a transport-level kill. At the end
// the survivors must agree bit-for-bit on the cluster average model, and
// the recorded fault schedule must replay exactly from the same seed.
//
// The fault schedule is driven by training progress (rank 0's snapshot
// stream, one per global round), and every rank's training loop is paced a
// few milliseconds per round: recovery is wall-clock work (failure
// detection, quarantine expiry, redial backoff), and an unpaced LeNet run
// on loopback finishes before any of it can happen. The deadlines below
// are tightened to match, so a partition is detected, blamed, healed and
// re-formed within a handful of rounds instead of outlasting the run.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	const servers = 3
	const pace = 10 * time.Millisecond
	faultCfg := chaos.Config{
		Seed: 20240807, Drop: 0.005,
		DelayRate: 0.1, MaxDelay: 2 * time.Millisecond,
	}
	inj := chaos.NewInjector(faultCfg)
	rec := newFateLog(200000)
	inj.SetTrace(rec.record)

	addrs, lns := tcpPeers(t, servers)
	base := Config{
		Model: LeNet, GPUs: 1, LearnersPerGPU: 2, Batch: 8,
		MaxEpochs: 12, Seed: 23, TrainSamples: 256, TestSamples: 64,
	}

	var logs [servers]transportLog

	// The stages wait for real progress before the next fault lands,
	// however slowly a starved CI core grinds through the recovery work in
	// between. The kill is adaptive: it waits until rank 0 has actually
	// seen the partitioned rank come back (reconnection is wall-clock work
	// against a capped dial backoff, so its round number varies), gives the
	// rejoined mesh a few shared rounds, and only then cuts rank 2 off.
	// Quiesce keeps the structural isolation but zeroes the rates, leaving
	// a clean tail of rounds for the Restart protocol to re-align the
	// survivors.
	var rounds atomic.Int64
	var quiesceRound, endRound atomic.Int64
	var rejoined atomic.Bool
	var upsAtHeal int
	var isolateAt, quiesceAt int64
	schedule := func(Snapshot) {
		time.Sleep(pace)
		n := rounds.Add(1)
		// The partition must outlive PeerTimeout (30 rounds at this pace)
		// or the failure detector never notices it.
		switch n {
		case 20:
			inj.Partition([]int{0, 1}) // rank 2 alone on the far side
		case 60:
			upsAtHeal = logs[0].count("peer 2 up")
			inj.Heal()
		}
		if n > 60 && isolateAt == 0 && logs[0].count("peer 2 up") > upsAtHeal {
			rejoined.Store(true)
			isolateAt = n + 5
			quiesceAt = isolateAt + 15
		}
		switch n {
		case isolateAt:
			inj.Isolate(2) // the kill: rank 2 never comes back
		case quiesceAt:
			rec.stop()
			inj.Tune(chaos.Config{Seed: faultCfg.Seed})
			quiesceRound.Store(n)
		}
	}

	// Each survivor's snapshot stream (one per round, publishEvery
	// defaults to one global round) feeds a ring for the final model
	// agreement check; churn shears call counts by a handful of rounds at
	// most, so a short tail suffices.
	rings := map[int]*snapRing{0: newSnapRing(64), 1: newSnapRing(64)}

	results := make([]*Result, servers)
	errs := make([]error, servers)
	var wg sync.WaitGroup
	for r := 0; r < servers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := base
			cfg.Servers = servers
			cfg.Transport = TransportTCP
			cfg.Node = fastNode(r, addrs, lns[r])
			cfg.Node.HeartbeatEvery = 10 * time.Millisecond
			cfg.Node.PeerTimeout = 300 * time.Millisecond
			cfg.Node.RoundTimeout = 150 * time.Millisecond
			cfg.Node.Quarantine = 200 * time.Millisecond
			cfg.Node.DialBackoff = 5 * time.Millisecond
			cfg.Node.ExchangeRetries = -1
			cfg.Node.Chaos = inj
			cfg.Node.Logf = logs[r].logf
			ring := rings[r]
			cfg.OnSnapshot = func(s Snapshot) {
				if ring != nil {
					ring.push(s.Params)
				}
				if r == 0 {
					schedule(s)
				} else {
					time.Sleep(pace)
				}
			}
			results[r], errs[r] = Train(cfg)
		}(r)
	}
	wg.Wait()
	endRound.Store(rounds.Load())

	// Graceful degradation, not graceful failure: every rank's Train must
	// return — the isolated rank degenerates to solo training, it does not
	// error out or hang.
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, res := range results {
		t.Logf("rank %d: %+v", r, res.TransportStats)
	}
	t.Logf("schedule: %d rounds, quiesced at %d; injector %+v", endRound.Load(), quiesceRound.Load(), inj.Stats())

	// The schedule must have completed with a clean tail: if training
	// outran the fault script the run proved nothing.
	if quiesceRound.Load() == 0 {
		t.Fatalf("run ended after %d rounds before the fault schedule quiesced (rejoined: %v) — raise MaxEpochs",
			endRound.Load(), rejoined.Load())
	}
	if tail := endRound.Load() - quiesceRound.Load(); tail < 20 {
		t.Fatalf("only %d clean rounds after quiesce — too little healing room, raise MaxEpochs", tail)
	}

	// The injector really fired: frames dropped and delayed by the rates,
	// frames cut by the partition and the isolation.
	is := inj.Stats()
	if is.Dropped < 1 || is.Delayed < 1 || is.Cut < 1 {
		t.Fatalf("fault schedule barely ran: %+v", is)
	}

	// The cluster noticed: dropped chunks stall rounds, and only the round
	// watchdog recovers those, so at least one rank must have fired it and
	// aborted a round; the partition and the kill force Restart rounds on
	// both survivors.
	var fires, aborts int64
	for _, res := range results {
		fires += res.TransportStats.WatchdogFires
		aborts += res.TransportStats.Aborts
	}
	if fires < 1 || aborts < 1 {
		t.Fatalf("faults were injected but never detected: fires %d aborts %d (injector %+v)", fires, aborts, is)
	}
	for _, r := range []int{0, 1} {
		if results[r].TransportStats.RestartRounds < 1 {
			t.Fatalf("survivor %d weathered a partition and a kill without a Restart round: %+v",
				r, results[r].TransportStats)
		}
	}

	// The partition healed: the schedule only fired the kill after rank 0
	// watched rank 2 reconnect, so reaching quiesce proves the rejoin.
	if !rejoined.Load() {
		t.Fatal("rank 2 never rejoined after the partition healed")
	}
	// And the failure detector did real work somewhere: the partition (or
	// the kill) starved at least one live link of heartbeats until the
	// timeout expelled the peer. Which rank notices first depends on which
	// links random drop-blame had already torn down, so count across all.
	hbTimeouts := 0
	for r := range logs {
		hbTimeouts += logs[r].count("heartbeat timeout")
	}
	if hbTimeouts < 1 {
		t.Fatal("no rank ever expelled a peer by heartbeat timeout")
	}

	// Nothing diverged numerically, on any rank — the isolated one
	// included.
	for r, res := range results {
		for i, v := range res.Params {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("rank %d param %d is non-finite after the soak", r, i)
			}
		}
	}

	// The replication invariant held through every fault: the survivors
	// derive bit-identical cluster average models at every shared completed
	// round. Each rank runs a fixed iteration budget, so churn windows
	// (a quarantined rank races through solo rounds) shear where in wall
	// time each survivor's budget runs out — the first to finish leaves and
	// the other's last few rounds degenerate to solo training. The
	// invariant therefore shows up as: the first finisher's final model is
	// bit-for-bit present in its peer's snapshot stream (and when no shear
	// happened, the two final models are simply identical).
	if !rings[1].contains(results[0].Params) && !rings[0].contains(results[1].Params) {
		t.Fatalf("survivors never agreed on a shared cluster model near the end: param 0 = %v vs %v",
			results[0].Params[0], results[1].Params[0])
	}

	// And the whole fault schedule was deterministic: a fresh injector
	// with the same seed hands every recorded frame the same fate.
	rec.replay(t, faultCfg)
}
