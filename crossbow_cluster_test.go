package crossbow

import "testing"

// TestTrainServersOneMatchesBaseline pins the degenerate case at the API
// boundary: Servers: 1 must take the exact single-server path (same
// throughput, same accuracy series) as a config that never mentions
// servers.
func TestTrainServersOneMatchesBaseline(t *testing.T) {
	base := Config{Model: LeNet, GPUs: 1, LearnersPerGPU: 2, Batch: 8, MaxEpochs: 2}
	one := base
	one.Servers = 1
	a, err := Train(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(one)
	if err != nil {
		t.Fatal(err)
	}
	if a.ThroughputImgSec != b.ThroughputImgSec {
		t.Errorf("throughput differs: %v vs %v", a.ThroughputImgSec, b.ThroughputImgSec)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series lengths differ: %d vs %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		if a.Series[i] != b.Series[i] {
			t.Errorf("epoch %d differs: %+v vs %+v", i, a.Series[i], b.Series[i])
		}
	}
	if b.Servers != 1 {
		t.Errorf("Result.Servers = %d, want 1", b.Servers)
	}
}

// TestTrainClusterScaleout runs the full cluster path end to end: both
// planes, two servers.
func TestTrainClusterScaleout(t *testing.T) {
	res, err := Train(Config{
		Model: LeNet, Servers: 2, GPUs: 1, LearnersPerGPU: 2,
		Batch: 8, MaxEpochs: 2, Interconnect: Ethernet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers != 2 {
		t.Fatalf("Result.Servers = %d, want 2", res.Servers)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series has %d epochs, want 2", len(res.Series))
	}
	if res.ThroughputImgSec <= 0 || res.EpochSeconds <= 0 {
		t.Fatalf("hardware plane missing: throughput %v, epoch %vs",
			res.ThroughputImgSec, res.EpochSeconds)
	}
	if res.Params == nil {
		t.Fatal("no trained model returned")
	}

	// LeNet's ~1 ms learning tasks cannot hide a 10GbE exchange (the
	// cluster-tier analogue of the paper's LeNet scheduler bottleneck,
	// §5.2), so a faster interconnect must pay off directly.
	ib, err := Throughput(Config{
		Model: LeNet, Servers: 2, GPUs: 1, LearnersPerGPU: 2, Batch: 8,
		Interconnect: InfiniBand(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ib <= res.ThroughputImgSec {
		t.Errorf("InfiniBand throughput %v <= 10GbE %v on LeNet", ib, res.ThroughputImgSec)
	}
}

// TestClusterSweepScaling checks the sweep helper: efficiency 1 at the
// baseline, monotone throughput, sub-linear efficiency beyond it.
func TestClusterSweepScaling(t *testing.T) {
	pts, err := ClusterSweep(Config{
		Model: ResNet32, GPUs: 2, LearnersPerGPU: 2, Batch: 16,
		Interconnect: Ethernet(),
	}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	if pts[0].Efficiency != 1 {
		t.Errorf("baseline efficiency %v, want 1", pts[0].Efficiency)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].ThroughputImgSec <= pts[i-1].ThroughputImgSec {
			t.Errorf("throughput not monotone at %d servers: %v <= %v",
				pts[i].Servers, pts[i].ThroughputImgSec, pts[i-1].ThroughputImgSec)
		}
		if pts[i].Efficiency >= 1 {
			t.Errorf("%d servers: efficiency %v, want sub-linear", pts[i].Servers, pts[i].Efficiency)
		}
	}
}

// TestClusterRejectsNonSMA: the cluster plane synchronises hierarchically;
// baseline algorithms must be refused, not silently misconfigured.
func TestClusterRejectsNonSMA(t *testing.T) {
	if _, err := Train(Config{Model: LeNet, Servers: 2, Algo: SSGD, MaxEpochs: 1}); err == nil {
		t.Error("Train with SSGD on 2 servers should fail")
	}
	if _, err := Throughput(Config{Model: LeNet, Servers: 2, Algo: EASGD}); err == nil {
		t.Error("Throughput with EASGD on 2 servers should fail")
	}
	if _, err := ClusterSweep(Config{Model: LeNet, Algo: ASGD}, []int{1, 2}); err == nil {
		t.Error("ClusterSweep with ASGD should fail")
	}
}
