package crossbow

import (
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Fleet-serving harness (DESIGN.md §16): a ModelPublisher streaming
// snapshots to Predictors that follow it, delta distribution with full
// fallback, warm rejoin, and the SLO-driven batching regression pin.

// fleetParams trains the smallest possible LeNet so the tests have a real
// parameter vector of the right shape (accuracy is irrelevant here).
func fleetParams(t *testing.T) []float32 {
	t.Helper()
	res, err := Train(Config{
		Model: LeNet, GPUs: 1, LearnersPerGPU: 1, Batch: 8,
		MaxEpochs: 1, Seed: 7, TrainSamples: 64, TestSamples: 16,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return res.Params
}

// perturb returns a copy of w with the first n elements nudged — the shape
// of a real incremental update: most of the model untouched.
func perturb(w []float32, n int, seed float32) []float32 {
	out := append([]float32(nil), w...)
	if n > len(out) {
		n = len(out)
	}
	for i := 0; i < n; i++ {
		out[i] += seed * 1e-3
	}
	return out
}

// waitVersion polls until the predictor serves at least version v.
func waitVersion(t *testing.T, p *Predictor, v int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for p.Version() < v {
		if time.Now().After(deadline) {
			t.Fatalf("predictor stuck at version %d, want >= %d (feed: %+v)",
				p.Version(), v, p.FeedStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// snapOf wraps a parameter vector as a publishable snapshot.
func snapOf(w []float32, round int) Snapshot {
	return Snapshot{Model: LeNet, Round: round, Iter: round, Epoch: 1, Params: w}
}

// TestFleetDeltaDistribution is the fleet smoke: a publisher and two cold
// followers converge over deltas after one full snapshot each; one replica
// is killed and rejoins warm (delta-only resync); a diverged replica is
// healed with a forced full snapshot.
func TestFleetDeltaDistribution(t *testing.T) {
	base := fleetParams(t)
	mp, err := NewModelPublisher("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewModelPublisher: %v", err)
	}
	defer mp.Close()

	rounds := [][]float32{base}
	if err := mp.Publish(snapOf(base, 1)); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	newFollower := func() *Predictor {
		p, err := Serve(ServeConfig{Follow: mp.Addr(), FollowTimeout: 10 * time.Second})
		if err != nil {
			t.Fatalf("Serve(follow): %v", err)
		}
		return p
	}
	p1, p2 := newFollower(), newFollower()
	defer p2.Close()
	if got := mp.WaitSubscribers(2, 5*time.Second); got < 2 {
		t.Fatalf("publisher sees %d subscribers, want 2", got)
	}
	if p1.Model() != LeNet || p1.Version() != 1 {
		t.Fatalf("cold follower starts at (%s, v%d), want (lenet, v1)", p1.Model(), p1.Version())
	}

	// Rounds 2–4 are incremental: every follower must take them as deltas.
	for r := 2; r <= 4; r++ {
		w := perturb(rounds[len(rounds)-1], 200, float32(r))
		rounds = append(rounds, w)
		if err := mp.Publish(snapOf(w, r)); err != nil {
			t.Fatalf("Publish round %d: %v", r, err)
		}
	}
	waitVersion(t, p1, 4, 5*time.Second)
	waitVersion(t, p2, 4, 5*time.Second)
	for i, p := range []*Predictor{p1, p2} {
		fs := p.FeedStats()
		if fs.FullSent != 1 || fs.DeltaSent != 3 {
			t.Errorf("follower %d received %d fulls / %d deltas, want 1 / 3", i, fs.FullSent, fs.DeltaSent)
		}
		if fs.Resyncs != 0 {
			t.Errorf("follower %d resynced %d times on a clean feed", i, fs.Resyncs)
		}
	}

	// Bit-identity: a followed replica answers exactly like a local replica
	// holding the same version.
	ref, err := Serve(ServeConfig{Model: LeNet, Params: append([]float32(nil), rounds[3]...), Version: 4})
	if err != nil {
		t.Fatalf("Serve(ref): %v", err)
	}
	defer ref.Close()
	sample := make([]float32, ref.SampleVol())
	for i := range sample {
		sample[i] = float32(i%17) / 17
	}
	want, err := ref.Predict(sample)
	if err != nil {
		t.Fatalf("ref Predict: %v", err)
	}
	for i, p := range []*Predictor{p1, p2} {
		got, err := p.Predict(sample)
		if err != nil {
			t.Fatalf("follower %d Predict: %v", i, err)
		}
		if got.Class != want.Class ||
			math.Float32bits(got.Confidence) != math.Float32bits(want.Confidence) {
			t.Errorf("follower %d answered (%d, %x), local replica (%d, %x)",
				i, got.Class, math.Float32bits(got.Confidence),
				want.Class, math.Float32bits(want.Confidence))
		}
	}

	// Kill one replica; the fleet moves on without it.
	p1.Close()
	for r := 5; r <= 6; r++ {
		w := perturb(rounds[len(rounds)-1], 200, float32(r))
		rounds = append(rounds, w)
		if err := mp.Publish(snapOf(w, r)); err != nil {
			t.Fatalf("Publish round %d: %v", r, err)
		}
	}
	waitVersion(t, p2, 6, 5*time.Second)

	// Warm rejoin: the killed replica comes back holding round 4 — still in
	// the publisher's history — and must be brought current by delta alone.
	p1b, err := Serve(ServeConfig{
		Model:  LeNet,
		Params: append([]float32(nil), rounds[3]...),
		Follow: mp.Addr(), Version: 4,
	})
	if err != nil {
		t.Fatalf("Serve(warm rejoin): %v", err)
	}
	defer p1b.Close()
	waitVersion(t, p1b, 6, 5*time.Second)
	if fs := p1b.FeedStats(); fs.FullSent != 0 || fs.DeltaSent < 1 {
		t.Errorf("warm rejoin received %d fulls / %d deltas, want delta-only resync", fs.FullSent, fs.DeltaSent)
	}

	// Diverged rejoin: a replica claiming round 5 with the WRONG bits must
	// be detected by the CRC handshake and healed with a full snapshot.
	diverged := perturb(rounds[4], 50, 99)
	resyncsBefore := mp.Stats().Resyncs
	p1c, err := Serve(ServeConfig{
		Model:  LeNet,
		Params: diverged,
		Follow: mp.Addr(), Version: 5,
	})
	if err != nil {
		t.Fatalf("Serve(diverged rejoin): %v", err)
	}
	defer p1c.Close()
	waitVersion(t, p1c, 6, 5*time.Second)
	if fs := p1c.FeedStats(); fs.FullSent != 1 {
		t.Errorf("diverged rejoin received %d fulls, want exactly 1 (forced resync)", fs.FullSent)
	}
	if got := mp.Stats().Resyncs; got <= resyncsBefore {
		t.Errorf("publisher Resyncs stayed at %d across a divergence heal", got)
	}
	got, err := p1c.Predict(sample)
	if err != nil {
		t.Fatalf("healed replica Predict: %v", err)
	}
	ref6, _ := Serve(ServeConfig{Model: LeNet, Params: append([]float32(nil), rounds[5]...), Version: 6})
	defer ref6.Close()
	want6, _ := ref6.Predict(sample)
	if got.Class != want6.Class ||
		math.Float32bits(got.Confidence) != math.Float32bits(want6.Confidence) {
		t.Errorf("healed replica diverges from the published round-6 model")
	}
}

// TestFleetTrainPublishServe is the end-to-end path: Config.PublishAddr
// streams a training run's snapshots into a following Predictor, which ends
// the run serving the final model bit-for-bit and survives the publisher
// going away.
func TestFleetTrainPublishServe(t *testing.T) {
	// Reserve a port for the in-Train publisher so the follower knows it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	// The tiny run trains in milliseconds — far faster than a TCP dial — so
	// the first snapshot callback holds training (and with it the in-Train
	// publisher) until the follower has attached. OnSnapshot runs after the
	// feed send, so the follower's hello finds this snapshot already
	// current.
	followed := make(chan struct{})
	done := make(chan struct{})
	var res *Result
	var trainErr error
	go func() {
		defer close(done)
		res, trainErr = Train(Config{
			Model: LeNet, GPUs: 1, LearnersPerGPU: 2, Batch: 8,
			MaxEpochs: 2, Seed: 5, TrainSamples: 128, TestSamples: 32,
			PublishEvery: 2, PublishAddr: addr,
			OnSnapshot:   func(Snapshot) { <-followed },
		})
	}()

	// Cold follower: redials until the publisher inside Train appears, then
	// blocks in Serve until the first snapshot lands.
	p, err := Serve(ServeConfig{Follow: addr, FollowTimeout: 30 * time.Second})
	close(followed)
	if err != nil {
		t.Fatalf("Serve(follow): %v", err)
	}
	defer p.Close()

	<-done
	if trainErr != nil {
		t.Fatalf("Train: %v", trainErr)
	}
	// 128 samples / 8 batch / 2 learners = 8 iters/epoch × 2 epochs = round 16.
	waitVersion(t, p, 16, 10*time.Second)
	if fs := p.FeedStats(); fs.DeltaSent == 0 {
		t.Errorf("follower took every snapshot as a full (%d fulls) — delta path never used", fs.FullSent)
	}

	ref, err := Serve(ServeConfig{Model: LeNet, Params: res.Params, Version: 16})
	if err != nil {
		t.Fatalf("Serve(ref): %v", err)
	}
	defer ref.Close()
	sample := make([]float32, ref.SampleVol())
	for i := range sample {
		sample[i] = float32((i*31)%23) / 23
	}
	want, _ := ref.Predict(sample)
	got, err := p.Predict(sample) // the publisher is gone; serving continues
	if err != nil {
		t.Fatalf("Predict after publisher shutdown: %v", err)
	}
	if got.Class != want.Class ||
		math.Float32bits(got.Confidence) != math.Float32bits(want.Confidence) {
		t.Errorf("followed replica's final model diverges from Result.Params")
	}
}

// TestFleetAdaptiveBeatsStaticBatch32 is the regression pin for the batch-32
// throughput falloff: under a closed-loop load whose concurrency cannot fill
// 32-sample batches, the SLO-driven service must out-serve a static
// max-batch-32 service, because it right-sizes its batches instead of
// padding every forward pass to 32.
func TestFleetAdaptiveBeatsStaticBatch32(t *testing.T) {
	params := fleetParams(t)
	run := func(cfg ServeConfig) float64 {
		cfg.Model, cfg.Params = LeNet, append([]float32(nil), params...)
		p, err := Serve(cfg)
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
		defer p.Close()
		sample := make([]float32, p.SampleVol())
		var served atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := p.Predict(sample); err == nil {
						served.Add(1)
					}
				}
			}()
		}
		time.Sleep(1200 * time.Millisecond)
		close(stop)
		wg.Wait()
		return float64(served.Load()) / 1.2
	}

	static := run(ServeConfig{MaxBatch: 32, MaxDelay: 2 * time.Millisecond})
	adaptive := run(ServeConfig{
		MaxBatch: 32,
		SLO:      100 * time.Millisecond,
		ControlEvery: 25 * time.Millisecond,
	})
	// Dominance with slack for CI noise: the static-32 engine pads 8-deep
	// batches to 32 and burns 4× the FLOPs, so a healthy adaptive engine
	// wins by far more than this margin.
	if adaptive < static {
		t.Errorf("adaptive served %.0f req/s, static max-batch-32 served %.0f — the batch-32 regression is back",
			adaptive, static)
	}
	t.Logf("adaptive %.0f req/s vs static-32 %.0f req/s", adaptive, static)
}
