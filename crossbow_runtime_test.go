package crossbow

import "testing"

// TestSchedulerAPI exercises the task-runtime surface of the public API:
// FCFS training end to end with wall-clock results, and the validation of
// scheduler/algorithm combinations.
func TestSchedulerAPI(t *testing.T) {
	res, err := Train(Config{
		Model:          ResNet32,
		Scheduler:      FCFS,
		LearnersPerGPU: 2,
		Batch:          8,
		Tau:            2,
		MaxEpochs:      2,
		TrainSamples:   128,
		TestSamples:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != FCFS {
		t.Fatalf("result scheduler %q, want %q", res.Scheduler, FCFS)
	}
	if len(res.Wall) != 2 {
		t.Fatalf("wall series has %d points, want 2", len(res.Wall))
	}
	for _, wp := range res.Wall {
		if wp.Sec <= 0 || wp.ImagesPerSec <= 0 {
			t.Fatalf("wall point not measured: %+v", wp)
		}
	}
	if res.WallImagesPerSec <= 0 {
		t.Fatalf("WallImagesPerSec = %v", res.WallImagesPerSec)
	}
	if res.RuntimeStats.Rounds == 0 {
		t.Fatal("runtime applied no synchronisation rounds")
	}
}

// TestSchedulerValidation: FCFS is rejected for non-SMA algorithms and for
// the simulated cluster plane, and unknown scheduler names error.
func TestSchedulerValidation(t *testing.T) {
	base := Config{Model: LeNet, MaxEpochs: 1, TrainSamples: 64, TestSamples: 32}

	cfg := base
	cfg.Scheduler = FCFS
	cfg.Algo = SSGD
	if _, err := Train(cfg); err == nil {
		t.Fatal("FCFS with S-SGD must be rejected")
	}

	cfg = base
	cfg.Scheduler = FCFS
	cfg.Servers = 2
	if _, err := Train(cfg); err == nil {
		t.Fatal("FCFS with Servers > 1 must be rejected")
	}

	cfg = base
	cfg.Scheduler = "round-robin"
	if _, err := Train(cfg); err == nil {
		t.Fatal("unknown scheduler must be rejected")
	}
}

// TestLockstepDefaultScheduler: a config that says nothing about scheduling
// runs the lockstep oracle, preserving pre-runtime behaviour.
func TestLockstepDefaultScheduler(t *testing.T) {
	res, err := Train(Config{
		Model: LeNet, MaxEpochs: 1, TrainSamples: 64, TestSamples: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != Lockstep {
		t.Fatalf("default scheduler %q, want %q", res.Scheduler, Lockstep)
	}
	if len(res.Wall) != 1 {
		t.Fatalf("wall series has %d points, want 1", len(res.Wall))
	}
}

// TestFCFSOnlineAutoTune: LearnersPerGPU: AutoTune under the FCFS runtime
// selects the learner count online from measured wall-clock throughput.
func TestFCFSOnlineAutoTune(t *testing.T) {
	res, err := Train(Config{
		Model:          ResNet32,
		Scheduler:      FCFS,
		LearnersPerGPU: AutoTune,
		Batch:          8,
		MaxEpochs:      4,
		TrainSamples:   128,
		TestSamples:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TuneHistory) == 0 {
		t.Fatal("online tuning recorded no decisions")
	}
	if res.LearnersPerGPU < 1 {
		t.Fatalf("tuned learner count %d", res.LearnersPerGPU)
	}
}
