package crossbow

import (
	"math"
	"path/filepath"
	"testing"
	"time"
)

// trainWithSnapshots runs a tiny training job publishing snapshots.
func trainWithSnapshots(t *testing.T, every int, sched Scheduler) (*Result, []Snapshot, Config) {
	t.Helper()
	var snaps []Snapshot
	cfg := Config{
		Model: LeNet, GPUs: 1, LearnersPerGPU: 2, Batch: 8,
		MaxEpochs: 2, Seed: 5, TrainSamples: 128, TestSamples: 32,
		Scheduler:    sched,
		PublishEvery: every,
		OnSnapshot:   func(s Snapshot) { snaps = append(snaps, s) },
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return res, snaps, cfg
}

// TestTrainPublishesSnapshots pins the publish contract at the public API:
// snapshots arrive with increasing round versions, the right cadence, and
// the final snapshot matches the run's final model bit for bit.
func TestTrainPublishesSnapshots(t *testing.T) {
	for _, sched := range []Scheduler{Lockstep, FCFS} {
		res, snaps, _ := trainWithSnapshots(t, 2, sched)
		if len(snaps) == 0 {
			t.Fatalf("%s: no snapshots published", sched)
		}
		for i := 1; i < len(snaps); i++ {
			if snaps[i].Round <= snaps[i-1].Round {
				t.Fatalf("%s: snapshot rounds not increasing: %d then %d",
					sched, snaps[i-1].Round, snaps[i].Round)
			}
		}
		// τ=1 ⇒ one round per iteration: the final round of the run is the
		// total iteration count, and the run's Params is z at that round.
		last := snaps[len(snaps)-1]
		if last.Round%2 != 0 {
			t.Fatalf("%s: PublishEvery 2 published round %d", sched, last.Round)
		}
		// 128 samples / 8 batch / 2 learners = 8 iterations per epoch, 2
		// epochs ⇒ 16 rounds: the last publication is the final model.
		if last.Round != 16 {
			t.Fatalf("%s: last round %d, want 16", sched, last.Round)
		}
		for i := range last.Params {
			if math.Float32bits(last.Params[i]) != math.Float32bits(res.Params[i]) {
				t.Fatalf("%s: final snapshot diverges from Result.Params at %d", sched, i)
			}
		}
	}
}

// TestServeTrainedModelEndToEnd trains, serves the result, hot-swaps a
// published snapshot, persists it, and serves it back from the checkpoint —
// the full serving-plane loop at the public API.
func TestServeTrainedModelEndToEnd(t *testing.T) {
	res, snaps, cfg := trainWithSnapshots(t, 4, Lockstep)

	p, err := Serve(ServeConfig{
		Model: cfg.Model, Params: res.Params, Version: int64(snaps[len(snaps)-1].Round),
		Replicas: 2, MaxBatch: 4, MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	sample := make([]float32, p.SampleVol())
	for i := range sample {
		sample[i] = float32(i%7) * 0.1
	}
	pred, err := p.Predict(sample)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if pred.Class < 0 || pred.Class >= 10 || pred.Confidence <= 0 || pred.Confidence > 1 {
		t.Fatalf("implausible prediction %+v", pred)
	}

	// Hot-swap to an earlier snapshot and confirm the version moves.
	if err := p.UpdateSnapshot(snaps[0]); err != nil {
		t.Fatalf("UpdateSnapshot: %v", err)
	}
	pred2, err := p.Predict(sample)
	if err != nil {
		t.Fatalf("Predict after swap: %v", err)
	}
	if pred2.Version != int64(snaps[0].Round) {
		t.Fatalf("prediction version %d, want snapshot round %d", pred2.Version, snaps[0].Round)
	}
	p.Close()

	// Persist the snapshot and serve it back from disk: the checkpointed
	// service must report the same version and the same answer.
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	if err := SaveSnapshot(path, snaps[0]); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	c, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if c.SnapshotRound != int64(snaps[0].Round) || c.SnapshotIter != int64(snaps[0].Iter) {
		t.Fatalf("checkpoint snapshot version %d/%d, want %d/%d",
			c.SnapshotRound, c.SnapshotIter, snaps[0].Round, snaps[0].Iter)
	}
	p2, err := Serve(ServeConfig{Checkpoint: path, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatalf("Serve from checkpoint: %v", err)
	}
	defer p2.Close()
	pred3, err := p2.Predict(sample)
	if err != nil {
		t.Fatalf("Predict from checkpoint: %v", err)
	}
	if pred3.Version != int64(snaps[0].Round) {
		t.Fatalf("checkpoint service version %d, want %d", pred3.Version, snaps[0].Round)
	}
	if pred3.Class != pred2.Class ||
		math.Float32bits(pred3.Confidence) != math.Float32bits(pred2.Confidence) {
		t.Fatalf("checkpoint service answers %+v, live swap answered %+v", pred3, pred2)
	}
}

// TestServeWhileTraining wires OnSnapshot straight into a live Predictor:
// the service keeps answering — with monotonically advancing versions —
// while the model trains underneath it.
func TestServeWhileTraining(t *testing.T) {
	init, err := Train(Config{
		Model: LeNet, GPUs: 1, LearnersPerGPU: 1, Batch: 8,
		MaxEpochs: 1, Seed: 5, TrainSamples: 64, TestSamples: 32,
	})
	if err != nil {
		t.Fatalf("warm-up Train: %v", err)
	}
	p, err := Serve(ServeConfig{Model: LeNet, Params: init.Params, MaxDelay: 0})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer p.Close()

	sample := make([]float32, p.SampleVol())
	stopServing := make(chan struct{})
	served := make(chan struct{})
	go func() {
		defer close(served)
		var last int64 = -1
		for {
			select {
			case <-stopServing:
				return
			default:
			}
			pred, err := p.Predict(sample)
			if err != nil {
				t.Errorf("Predict during training: %v", err)
				return
			}
			if pred.Version < last {
				t.Errorf("served version went backwards: %d after %d", pred.Version, last)
				return
			}
			last = pred.Version
		}
	}()

	_, err = Train(Config{
		Model: LeNet, GPUs: 1, LearnersPerGPU: 2, Batch: 8,
		MaxEpochs: 2, Seed: 6, TrainSamples: 128, TestSamples: 32,
		Scheduler: FCFS, PublishEvery: 2,
		OnSnapshot: func(s Snapshot) {
			if err := p.UpdateSnapshot(s); err != nil {
				t.Errorf("UpdateSnapshot: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	close(stopServing)
	<-served
	// The last published snapshot (round 16: 8 iterations/epoch × 2
	// epochs at τ=1) is now being served.
	pred, err := p.Predict(sample)
	if err != nil {
		t.Fatalf("Predict after training: %v", err)
	}
	if pred.Version != 16 {
		t.Errorf("post-training prediction carries version %d, want 16 (the last published round)", pred.Version)
	}
}
