package crossbow

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMain doubles this test binary as the crossbow node process for the
// kill-and-rejoin test: with CROSSBOW_TCP_NODE=1 it runs one TCP cluster
// rank instead of the test suite (the standard exec-helper pattern, so the
// multi-process test needs no separate build step).
func TestMain(m *testing.M) {
	if os.Getenv("CROSSBOW_TCP_NODE") == "1" {
		os.Exit(tcpNodeMain())
	}
	os.Exit(m.Run())
}

// tcpPeers binds n loopback listeners on ephemeral ports so in-process
// cluster tests never collide, returning the address list and listeners.
func tcpPeers(t *testing.T, n int) ([]string, []net.Listener) {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		addrs[i], lns[i] = ln.Addr().String(), ln
	}
	return addrs, lns
}

// fastNode returns node settings tuned for in-process tests: quick
// bootstrap and dialing, but a generous peer timeout — on a starved CI
// core, compute can stall heartbeat goroutines well past production
// deadlines, and a spurious death would silently shrink the view. (Real
// crashes are detected by connection reset, not by this timeout.)
func fastNode(rank int, addrs []string, ln net.Listener) NodeConfig {
	return NodeConfig{
		Rank: rank, Peers: addrs, Listener: ln,
		BootstrapWait:  5 * time.Second,
		WarmStartWait:  300 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
		PeerTimeout:    5 * time.Second,
		DialBackoff:    10 * time.Millisecond,
	}
}

// TestTrainTCPCluster runs the acceptance scenario in-process: three TCP
// nodes train ResNet-32 with Servers: 3 and must agree bit-for-bit on the
// final cluster average model while staying inside the single-server
// convergence envelope.
func TestTrainTCPCluster(t *testing.T) {
	const servers = 3
	base := Config{
		Model: ResNet32, GPUs: 1, LearnersPerGPU: 2, Batch: 8,
		MaxEpochs: 2, Seed: 42, TrainSamples: 128, TestSamples: 64,
	}

	// Single-server oracle for the convergence envelope.
	solo, err := Train(base)
	if err != nil {
		t.Fatal(err)
	}

	addrs, lns := tcpPeers(t, servers)
	results := make([]*Result, servers)
	errs := make([]error, servers)
	var wg sync.WaitGroup
	for r := 0; r < servers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := base
			cfg.Servers = servers
			cfg.Transport = TransportTCP
			cfg.Node = fastNode(r, addrs, lns[r])
			results[r], errs[r] = Train(cfg)
		}(r)
	}
	wg.Wait()

	for r, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", r, err)
		}
	}
	for r, res := range results {
		if res.Transport != TransportTCP || res.Servers != servers {
			t.Fatalf("node %d: transport %q servers %d", r, res.Transport, res.Servers)
		}
		if res.WarmStartRound != 0 {
			t.Fatalf("node %d: cold bootstrap reported warm start from round %d", r, res.WarmStartRound)
		}
		if res.TransportStats.Rounds < 1 {
			t.Fatalf("node %d: no transport rounds completed: %+v", r, res.TransportStats)
		}
		// PeerDeaths counts teardown leaves too, so the healthy-run check
		// is on the round ledger: no round aborted or re-aligned.
		if res.TransportStats.RestartRounds != 0 || res.TransportStats.Aborts != 0 {
			t.Fatalf("node %d: churn on a healthy cluster: %+v", r, res.TransportStats)
		}
		if res.TransportStats.BytesSent == 0 || res.TransportStats.FramesRecv == 0 {
			t.Fatalf("node %d: wire counters empty: %+v", r, res.TransportStats)
		}
		// Every global round all-reduces the full model across the mesh.
		minBytes := int64(res.TransportStats.Rounds) * int64(len(res.Params)) * 4 / int64(servers)
		if res.TransportStats.BytesSent < minBytes {
			t.Fatalf("node %d: sent %d bytes over %d rounds of a %d-param model",
				r, res.TransportStats.BytesSent, res.TransportStats.Rounds, len(res.Params))
		}
	}

	// Replication invariant: the cluster average model is bit-identical on
	// every node (never transmitted — each node derives it from the
	// fixed-order consensus sum).
	for r := 1; r < servers; r++ {
		for i := range results[0].Params {
			if math.Float32bits(results[0].Params[i]) != math.Float32bits(results[r].Params[i]) {
				t.Fatalf("param %d differs between node 0 and node %d: %v vs %v",
					i, r, results[0].Params[i], results[r].Params[i])
			}
		}
	}

	// Convergence envelope: 3 servers × 2 learners sees 3× the data of the
	// single server per epoch; its accuracy must stay in the same regime.
	if results[0].BestAccuracy < solo.BestAccuracy-0.25 {
		t.Fatalf("TCP cluster accuracy %.3f fell out of the single-server envelope (%.3f)",
			results[0].BestAccuracy, solo.BestAccuracy)
	}
	for _, p := range results[0].Series {
		if math.IsNaN(p.Loss) || math.IsInf(p.Loss, 0) {
			t.Fatalf("cluster training diverged: %+v", p)
		}
	}
}

// TestTrainTCPOverlapBitIdentical is the correctness pin of the overlapped
// global exchange: the SAME three-node ResNet-32 run, once synchronous and
// once with OverlapGlobal, must produce a bit-for-bit identical final
// cluster average model AND bit-identical published snapshots at every
// round. Overlap moves the all-reduce off the critical path — between
// launch and fold only forward/backward work runs, which never touches the
// reference model — so the folded bytes must match the synchronous
// schedule's exactly.
func TestTrainTCPOverlapBitIdentical(t *testing.T) {
	const servers = 3
	run := func(overlap bool) ([]*Result, [][]Snapshot) {
		addrs, lns := tcpPeers(t, servers)
		results := make([]*Result, servers)
		snaps := make([][]Snapshot, servers)
		errs := make([]error, servers)
		var wg sync.WaitGroup
		for r := 0; r < servers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				node := fastNode(r, addrs, lns[r])
				node.OverlapGlobal = overlap
				results[r], errs[r] = Train(Config{
					Model: ResNet32, GPUs: 1, LearnersPerGPU: 2, Batch: 8,
					MaxEpochs: 2, Seed: 42, TrainSamples: 128, TestSamples: 64,
					Servers: servers, Transport: TransportTCP,
					// Snapshots every 2 iterations: the pin covers not just the
					// final model but every intermediate published artefact.
					PublishEvery: 2,
					OnSnapshot:   func(s Snapshot) { snaps[r] = append(snaps[r], s) },
					Node:         node,
				})
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("overlap=%v node %d: %v", overlap, r, err)
			}
		}
		return results, snaps
	}

	syncRes, syncSnaps := run(false)
	overRes, overSnaps := run(true)

	for r := 0; r < servers; r++ {
		if syncRes[r].TransportStats.AsyncRounds != 0 {
			t.Fatalf("synchronous node %d used the async path: %+v", r, syncRes[r].TransportStats)
		}
		if overRes[r].TransportStats.AsyncRounds < 1 {
			t.Fatalf("overlap node %d never overlapped a round: %+v", r, overRes[r].TransportStats)
		}
		if overRes[r].TransportStats.Aborts != 0 || overRes[r].TransportStats.RestartRounds != 0 {
			t.Fatalf("overlap node %d saw churn on a healthy cluster: %+v", r, overRes[r].TransportStats)
		}
	}

	// Final model: byte-for-byte across modes (and, transitively, across
	// ranks — TestTrainTCPCluster pins rank agreement).
	for r := 0; r < servers; r++ {
		if len(syncRes[r].Params) != len(overRes[r].Params) {
			t.Fatalf("node %d: param count %d vs %d", r, len(syncRes[r].Params), len(overRes[r].Params))
		}
		for i := range syncRes[r].Params {
			if math.Float32bits(syncRes[r].Params[i]) != math.Float32bits(overRes[r].Params[i]) {
				t.Fatalf("node %d param %d: sync %v vs overlap %v — overlap changed the math",
					r, i, syncRes[r].Params[i], overRes[r].Params[i])
			}
		}
	}

	// Every published snapshot: same rounds, same bytes.
	for r := 0; r < servers; r++ {
		if len(syncSnaps[r]) == 0 || len(syncSnaps[r]) != len(overSnaps[r]) {
			t.Fatalf("node %d: %d sync snapshots vs %d overlap", r, len(syncSnaps[r]), len(overSnaps[r]))
		}
		for k := range syncSnaps[r] {
			s, o := syncSnaps[r][k], overSnaps[r][k]
			if s.Round != o.Round || s.Iter != o.Iter || len(s.Params) != len(o.Params) {
				t.Fatalf("node %d snapshot %d: (round %d iter %d, %d params) vs (round %d iter %d, %d params)",
					r, k, s.Round, s.Iter, len(s.Params), o.Round, o.Iter, len(o.Params))
			}
			for i := range s.Params {
				if math.Float32bits(s.Params[i]) != math.Float32bits(o.Params[i]) {
					t.Fatalf("node %d snapshot %d (round %d) param %d: sync %v vs overlap %v",
						r, k, s.Round, i, s.Params[i], o.Params[i])
				}
			}
		}
	}
}

// TestTrainTCPValidation pins the config errors of the TCP plane.
func TestTrainTCPValidation(t *testing.T) {
	peers := []string{"127.0.0.1:7101", "127.0.0.1:7102"}
	bad := []Config{
		{Model: LeNet, Transport: TransportTCP},                                                 // no peers
		{Model: LeNet, Transport: TransportTCP, Node: NodeConfig{Rank: 2, Peers: peers}},        // rank out of range
		{Model: LeNet, Transport: TransportTCP, Servers: 3, Node: NodeConfig{Peers: peers}},     // servers != peers
		{Model: LeNet, Transport: "carrier-pigeon"},                                             // unknown transport
		{Model: LeNet, Transport: TransportTCP, Algo: SSGD, Node: NodeConfig{Peers: peers}},     // non-SMA
		{Model: LeNet, Transport: TransportTCP, Scheduler: FCFS, Node: NodeConfig{Peers: peers}}, // FCFS is single-server
	}
	for i, cfg := range bad {
		if _, err := Train(cfg); err == nil {
			t.Errorf("config %d: Train accepted invalid TCP config %+v", i, cfg)
		}
	}
}

// nodeReport is the JSON line a helper node process prints on exit.
type nodeReport struct {
	Rank           int     `json:"rank"`
	BestAccuracy   float64 `json:"best_accuracy"`
	WarmStartRound int     `json:"warm_start_round"`
	ParamsHash     uint64  `json:"params_hash"`
	ParamsFinite   bool    `json:"params_finite"`
	Rounds         int64   `json:"rounds"`
	RestartRounds  int64   `json:"restart_rounds"`
	SnapFetched    int64   `json:"snapshots_fetched"`
	SnapServed     int64   `json:"snapshots_served"`
	PeerDeaths     int64   `json:"peer_deaths"`
}

// tcpNodeMain is the helper-process entry: one rank of a LeNet TCP cluster,
// configured entirely from the environment, reporting a JSON summary.
func tcpNodeMain() int {
	rank, _ := strconv.Atoi(os.Getenv("CROSSBOW_TCP_RANK"))
	peers := strings.Split(os.Getenv("CROSSBOW_TCP_PEERS"), ",")
	epochs, _ := strconv.Atoi(os.Getenv("CROSSBOW_TCP_EPOCHS"))
	samples, _ := strconv.Atoi(os.Getenv("CROSSBOW_TCP_SAMPLES"))
	res, err := Train(Config{
		Model: LeNet, Transport: TransportTCP,
		GPUs: 1, LearnersPerGPU: 2, Batch: 8,
		MaxEpochs: epochs, Seed: 7,
		TrainSamples: samples, TestSamples: 128,
		Node: NodeConfig{
			Rank: rank, Peers: peers,
			BootstrapWait: 5 * time.Second,
			WarmStartWait: 500 * time.Millisecond,
			// A SIGKILLed process is detected by connection reset, so the
			// heartbeat timeout can stay starvation-proof (see fastNode).
			HeartbeatEvery: 50 * time.Millisecond,
			PeerTimeout:    5 * time.Second,
			DialBackoff:    10 * time.Millisecond,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "node %d: %v\n", rank, err)
		return 1
	}
	h := fnv.New64a()
	finite := true
	var b [4]byte
	for _, v := range res.Params {
		bits := math.Float32bits(v)
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			finite = false
		}
		b[0], b[1], b[2], b[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
		h.Write(b[:])
	}
	json.NewEncoder(os.Stdout).Encode(nodeReport{
		Rank:           rank,
		BestAccuracy:   res.BestAccuracy,
		WarmStartRound: res.WarmStartRound,
		ParamsHash:     h.Sum64(),
		ParamsFinite:   finite,
		Rounds:         res.TransportStats.Rounds,
		RestartRounds:  res.TransportStats.RestartRounds,
		SnapFetched:    res.TransportStats.SnapshotsFetched,
		SnapServed:     res.TransportStats.SnapshotsServed,
		PeerDeaths:     res.TransportStats.PeerDeaths,
	})
	return 0
}

// spawnNode launches one helper node process.
func spawnNode(t *testing.T, rank int, peers []string, epochs, samples int) (*exec.Cmd, *strings.Builder, *strings.Builder) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"CROSSBOW_TCP_NODE=1",
		"CROSSBOW_TCP_RANK="+strconv.Itoa(rank),
		"CROSSBOW_TCP_PEERS="+strings.Join(peers, ","),
		"CROSSBOW_TCP_EPOCHS="+strconv.Itoa(epochs),
		"CROSSBOW_TCP_SAMPLES="+strconv.Itoa(samples),
	)
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn rank %d: %v", rank, err)
	}
	return cmd, &out, &errb
}

// TestTCPKillRejoin is the churn scenario at full process granularity:
// three OS processes train together, one is SIGKILLed mid-run and
// relaunched, and the replacement must seed itself from a live peer's
// checkpoint-v3 snapshot, rejoin the averaging (its first round is
// Restart-flagged, within one τ_global of coming back), and finish with a
// finite, converging cluster average — while the survivors never abort the
// run and still agree bit-for-bit with each other.
func TestTCPKillRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	const servers, epochs, samples = 3, 10, 2048
	addrs, lns := tcpPeers(t, servers)
	for _, ln := range lns {
		ln.Close() // ports picked; the node processes bind them themselves
	}

	type proc struct {
		cmd      *exec.Cmd
		out, err *strings.Builder
	}
	procs := make([]*proc, servers)
	for r := 0; r < servers; r++ {
		cmd, out, errb := spawnNode(t, r, addrs, epochs, samples)
		procs[r] = &proc{cmd: cmd, out: out, err: errb}
	}

	// Let the cluster get through its first rounds (and publish rejoin
	// snapshots), then crash rank 2 the hard way.
	time.Sleep(1500 * time.Millisecond)
	victim := procs[2]
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill rank 2: %v", err)
	}
	victim.cmd.Wait()
	time.Sleep(300 * time.Millisecond) // survivors detect the death

	// Relaunch the rank: same address, no shared state but the network.
	cmd, out, errb := spawnNode(t, 2, addrs, epochs, samples)
	reborn := &proc{cmd: cmd, out: out, err: errb}

	reports := make(map[int]nodeReport)
	collect := func(p *proc, label string) {
		t.Helper()
		if err := p.cmd.Wait(); err != nil {
			t.Fatalf("%s exited: %v\nstderr: %s", label, err, p.err.String())
		}
		var rep nodeReport
		if err := json.Unmarshal([]byte(strings.TrimSpace(p.out.String())), &rep); err != nil {
			t.Fatalf("%s report %q: %v", label, p.out.String(), err)
		}
		reports[rep.Rank] = rep
	}
	collect(procs[0], "rank 0")
	collect(procs[1], "rank 1")
	collect(reborn, "reborn rank 2")

	for rank, rep := range reports {
		if !rep.ParamsFinite {
			t.Fatalf("rank %d: non-finite cluster average model", rank)
		}
		if rep.BestAccuracy <= 0.12 {
			t.Fatalf("rank %d: accuracy %.3f did not converge above chance", rank, rep.BestAccuracy)
		}
		if rep.Rounds < 1 {
			t.Fatalf("rank %d: no global rounds ran", rank)
		}
	}

	// Survivors weathered the death (and the rejoin) through Restart-
	// flagged rounds, never aborting the whole run, and still agree.
	for _, rank := range []int{0, 1} {
		if reports[rank].PeerDeaths < 1 {
			t.Errorf("rank %d: never observed the crash (deaths %d)", rank, reports[rank].PeerDeaths)
		}
		if reports[rank].RestartRounds < 1 {
			t.Errorf("rank %d: no restart round after churn", rank)
		}
	}
	if reports[0].ParamsHash != reports[1].ParamsHash {
		t.Fatalf("survivors disagree on the final model: %x vs %x",
			reports[0].ParamsHash, reports[1].ParamsHash)
	}

	// The replacement seeded from a peer snapshot (checkpoint v3 carries
	// the round it resumed from) and re-entered the averaging: its first
	// successful round was Restart-flagged — the protocol folds a returned
	// rank back in at the next τ_global boundary.
	reb := reports[2]
	if reb.SnapFetched != 1 || reb.WarmStartRound < 1 {
		t.Fatalf("reborn rank 2 did not warm-start from a peer snapshot: %+v", reb)
	}
	if reb.RestartRounds < 1 {
		t.Fatalf("reborn rank 2 never ran its re-alignment round: %+v", reb)
	}
	if reports[0].SnapServed+reports[1].SnapServed < 1 {
		t.Fatalf("no survivor served the rejoin snapshot: %+v %+v", reports[0], reports[1])
	}
}
