package crossbow

import (
	"bytes"
	"strings"
	"testing"

	"crossbow/internal/metrics"
)

func TestTrainPublicAPI(t *testing.T) {
	res, err := Train(Config{
		Model:          LeNet,
		GPUs:           1,
		LearnersPerGPU: 2,
		Batch:          8,
		MaxEpochs:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d epochs", len(res.Series))
	}
	if res.ThroughputImgSec <= 0 || res.EpochSeconds <= 0 {
		t.Fatalf("hardware plane missing: %v img/s, %v s/epoch", res.ThroughputImgSec, res.EpochSeconds)
	}
	// Time axis is simulated hardware time.
	if res.Series[0].TimeSec != res.EpochSeconds {
		t.Fatalf("epoch 1 time %v, want %v", res.Series[0].TimeSec, res.EpochSeconds)
	}
}

func TestTrainRequiresModel(t *testing.T) {
	if _, err := Train(Config{}); err == nil {
		t.Fatal("expected error for missing model")
	}
	if _, err := Train(Config{Model: Model("bogus")}); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestTrainAutoTune(t *testing.T) {
	res, err := Train(Config{
		Model:          LeNet,
		GPUs:           1,
		LearnersPerGPU: AutoTune,
		Batch:          4,
		MaxEpochs:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LearnersPerGPU < 1 {
		t.Fatalf("auto-tune chose m=%d", res.LearnersPerGPU)
	}
	if len(res.TuneHistory) == 0 {
		t.Fatal("no tuning history recorded")
	}
}

func TestThroughputAPI(t *testing.T) {
	cb, err := Throughput(Config{Model: ResNet32, GPUs: 4, LearnersPerGPU: 2, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	tf, err := Throughput(Config{Model: ResNet32, Algo: SSGD, GPUs: 4, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if cb <= 0 || tf <= 0 {
		t.Fatalf("throughputs %v / %v", cb, tf)
	}
}

func TestTuneLearnersAPI(t *testing.T) {
	m, hist := TuneLearners(ResNet32, 1, 16)
	if m < 1 || len(hist) == 0 {
		t.Fatalf("m=%d history=%v", m, hist)
	}
}

func TestTable1ShapeAgainstPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		ratio := r.ModelMB / r.PaperMB
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s: model %.2f MB vs paper %.2f MB", r.Model, r.ModelMB, r.PaperMB)
		}
		opsRatio := float64(r.Ops) / float64(r.PaperOps)
		if opsRatio < 0.5 || opsRatio > 2 {
			t.Errorf("%s: %d ops vs paper %d", r.Model, r.Ops, r.PaperOps)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "ILSVRC") {
		t.Fatal("printed table missing dataset names")
	}
}

func TestFigure2Shape(t *testing.T) {
	rows := Figure2()
	sp := map[[2]int]float64{}
	for _, r := range rows {
		sp[[2]int{r.AggregateBatch, r.GPUs}] = r.Speedup
	}
	// Constant per-GPU batch (aggregate 1024 = 128/GPU at g=8) must scale
	// much better than constant aggregate 64 (8/GPU at g=8).
	if sp[[2]int{1024, 8}] < 2*sp[[2]int{64, 8}] {
		t.Fatalf("speedup(1024,g8)=%v should dwarf speedup(64,g8)=%v",
			sp[[2]int{1024, 8}], sp[[2]int{64, 8}])
	}
	if sp[[2]int{1024, 8}] < 4 {
		t.Fatalf("near-linear case only reached %vx at 8 GPUs", sp[[2]int{1024, 8}])
	}
	for _, b := range []int{64, 128, 256, 512, 1024} {
		if s := sp[[2]int{b, 1}]; s != 1 {
			t.Fatalf("baseline speed-up at g=1 is %v for batch %d", s, b)
		}
	}
}

func TestFigure17Shape(t *testing.T) {
	rows := Figure17()
	tp := map[[2]string]float64{}
	for _, r := range rows {
		tp[[2]string{string(rune('0' + r.M)), r.Tau}] = r.Throughput
	}
	t1, tInf := tp[[2]string{"1", "1"}], tp[[2]string{"1", "inf"}]
	if t1 <= 0 || tInf <= t1 {
		t.Fatalf("no-sync %v should exceed τ=1 %v", tInf, t1)
	}
	gain := tInf/t1 - 1
	// §5.6: removing synchronisation buys only ~20%; accept 5-60%.
	if gain < 0.05 || gain > 0.6 {
		t.Fatalf("no-sync gain %.0f%% outside the paper's modest range", gain*100)
	}
}

func TestRunSystemComposesPlanes(t *testing.T) {
	r := runSystem(LeNet, SysCrossbow, 1, 4, 2, 2, 0.99)
	if r.ThroughputImgSec <= 0 || r.EpochSeconds <= 0 {
		t.Fatal("hardware plane missing")
	}
	if len(r.Series) == 0 {
		t.Fatal("statistical plane missing")
	}
	if r.StatBatch != 4 {
		t.Fatalf("stat batch %d for paper batch 4", r.StatBatch)
	}
	if r.TTASeconds != float64(r.EpochsToTarget)*r.EpochSeconds {
		t.Fatal("TTA must compose epochs × epoch time")
	}
}

func TestStatBatchMapping(t *testing.T) {
	cases := map[int]int{512: 128, 64: 16, 16: 4, 4: 4, 2: 4}
	for paper, want := range cases {
		if got := statBatch(paper); got != want {
			t.Fatalf("statBatch(%d) = %d, want %d", paper, got, want)
		}
	}
}

func TestAccuracyTargetsCoverAllModels(t *testing.T) {
	for _, id := range Models {
		tgt, ok := AccuracyTargets[id]
		if !ok || tgt <= 0 || tgt >= 1 {
			t.Fatalf("%s: bad target %v", id, tgt)
		}
	}
}

func TestFig10ConfigsConsistent(t *testing.T) {
	for id, cfg := range fig10Configs {
		for _, g := range cfg.gpus {
			if cfg.tf[g] == 0 || cfg.cb1[g] == 0 {
				t.Fatalf("%s g=%d missing batch config", id, g)
			}
			bm := cfg.cbB[g]
			if bm[0] == 0 || bm[1] == 0 {
				t.Fatalf("%s g=%d missing best-m config", id, g)
			}
		}
	}
}

func TestMetricsTTAOnSyntheticSeries(t *testing.T) {
	series := []metrics.EpochPoint{
		{Epoch: 1, TimeSec: 5, TestAcc: 0.5},
		{Epoch: 2, TimeSec: 10, TestAcc: 0.9},
		{Epoch: 3, TimeSec: 15, TestAcc: 0.91},
	}
	// Epoch 2's window {0.5, 0.9} has median 0.7 < 0.85; epoch 3's
	// {0.5, 0.9, 0.91} has median 0.9, so TTA is epoch 3's time.
	tt, ok := metrics.TTA(series, 0.85)
	if !ok || tt != 15 {
		t.Fatalf("TTA = %v, %v", tt, ok)
	}
}
