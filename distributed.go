package crossbow

import (
	"fmt"
	"net"
	"sync"
	"time"

	"crossbow/internal/autotune"
	"crossbow/internal/chaos"
	"crossbow/internal/ckpt"
	"crossbow/internal/core"
	"crossbow/internal/metrics"
	"crossbow/internal/nn"
	"crossbow/internal/transport"
)

// Transport selects how the cross-server tier of a cluster run exchanges
// the central average model.
type Transport string

const (
	// TransportSimulated (the default) trains every server in one process
	// and charges the Interconnect cost model for each exchange — the
	// original cluster plane, useful as a deterministic oracle.
	TransportSimulated Transport = "simulated"
	// TransportTCP runs ONE server per process: this process trains its
	// local learners and all-reduces the server reference model with its
	// peers over real TCP connections (Config.Node describes the mesh).
	// Launch one process per entry of Node.Peers; every process must use
	// the same Config apart from Node.Rank.
	TransportTCP Transport = "tcp"
)

// NodeConfig describes this process's place in a TCP cluster
// (Config.Transport: TransportTCP).
type NodeConfig struct {
	// Rank is this process's index into Peers.
	Rank int
	// Peers lists every member's listen address, indexed by rank
	// (Peers[Rank] is this process's own listen address).
	Peers []string
	// Listener optionally supplies a pre-bound listener for Peers[Rank]
	// (tests bind :0 listeners first so ports are collision-free).
	Listener net.Listener
	// BootstrapWait bounds the wait for the full mesh to come up before
	// training starts (default 10s). A partial mesh trains with whoever
	// arrived; stragglers join at the next synchronisation round.
	BootstrapWait time.Duration
	// WarmStartWait bounds the snapshot probe at startup (default 2s): a
	// rejoining process pulls the latest published cluster model from a
	// live peer and resumes from it; on a cold bootstrap no peer holds a
	// snapshot and every rank initialises from the shared seed.
	WarmStartWait time.Duration
	// HeartbeatEvery / PeerTimeout / DialBackoff tune the failure
	// detector (defaults 100ms / 10× / 25ms; see transport.Config).
	HeartbeatEvery time.Duration
	PeerTimeout    time.Duration
	DialBackoff    time.Duration
	// RoundTimeout is the collective watchdog: a peer that owes this node
	// a chunk and stays silent this long — even with heartbeats flowing —
	// is declared stalled; the round aborts and membership re-forms
	// without it (default 30s; see transport.Config.RoundTimeout).
	RoundTimeout time.Duration
	// Quarantine bars a peer caught corrupting frames or stalling rounds
	// from reconnecting for this long (default PeerTimeout).
	Quarantine time.Duration
	// ExchangeRetries bounds back-to-back retries of a fault-aborted
	// global exchange before the update is skipped until the next
	// τ_global boundary (0 → 2, negative → no retries).
	ExchangeRetries int
	// OverlapGlobal launches each global exchange asynchronously at the
	// τ_global boundary and folds the completed sum in one iteration
	// later, hiding the network round-trip behind computation. The
	// trajectory stays bit-identical to the synchronous default (see
	// core.TrainConfig.OverlapGlobal).
	OverlapGlobal bool
	// Segments is the collectives' pipelining factor: each per-link
	// transfer is split into this many fixed-boundary segments so sends
	// overlap receive+sum (0 → 4; see transport.Config.Segments).
	// Bit-identity across participants holds for any value.
	Segments int
	// Chaos, when set, interposes a deterministic fault injector on every
	// frame this process sends (tests and soaks only).
	Chaos *chaos.Injector
	// Logf receives transport debug lines (nil: silent).
	Logf func(format string, args ...any)
}

// nodeExchanger adapts transport.Node to the core trainer's network
// interface (core redeclares the round report so it never imports the
// transport package). It satisfies core.AsyncGlobalExchanger, so the
// trainer's OverlapGlobal mode can launch rounds without blocking.
type nodeExchanger struct{ n *transport.Node }

func coreRound(r transport.Round) core.ExchangeRound {
	return core.ExchangeRound{
		Seq:          r.Seq,
		Participants: r.Participants,
		Restart:      r.Restart,
		Aborted:      r.Aborted,
	}
}

func (e nodeExchanger) AllReduce(buf []float32) (core.ExchangeRound, error) {
	r, err := e.n.AllReduce(buf)
	if err != nil {
		return core.ExchangeRound{}, err
	}
	return coreRound(r), nil
}

func (e nodeExchanger) BeginAllReduce(buf []float32) (core.PendingExchange, error) {
	p, err := e.n.BeginAllReduce(buf)
	if err != nil {
		return nil, err
	}
	return pendingRound{p}, nil
}

// pendingRound adapts transport.PendingRound to core.PendingExchange.
type pendingRound struct{ p *transport.PendingRound }

func (w pendingRound) Poll() bool { return w.p.Poll() }

func (w pendingRound) Wait() (core.ExchangeRound, error) {
	r, err := w.p.Wait()
	if err != nil {
		return core.ExchangeRound{}, err
	}
	return coreRound(r), nil
}

// snapshotHolder retains the latest published training snapshot and serves
// it to rejoining peers as a checkpoint-v3 document. It chains to the
// user's OnSnapshot callback, so serving rejoin does not displace serving
// predictions.
type snapshotHolder struct {
	mu    sync.Mutex
	last  Snapshot
	valid bool
	next  func(Snapshot)
}

func (h *snapshotHolder) onSnapshot(s Snapshot) {
	h.mu.Lock()
	h.last = s
	h.valid = true
	h.mu.Unlock()
	if h.next != nil {
		h.next(s)
	}
}

// checkpoint converts the held snapshot for the transport's rejoin
// protocol. Snapshot params are immutable after publication, so the slice
// is shared, not copied.
func (h *snapshotHolder) checkpoint() *ckpt.Checkpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.valid {
		return nil
	}
	return &ckpt.Checkpoint{
		Model:         string(h.last.Model),
		Epoch:         h.last.Epoch,
		SnapshotRound: int64(h.last.Round),
		SnapshotIter:  int64(h.last.Iter),
		Params:        h.last.Params,
	}
}

// shuffleSeedFor derives a per-rank input-pipeline seed: every process must
// stream a DIFFERENT batch sequence (they are different servers of one
// cluster), while the model seed stays shared so cold starts boot with a
// replicated w0. Always non-zero, so it overrides the trainer's default.
func shuffleSeedFor(seed uint64, rank int) uint64 {
	s := seed + 21 + 1_000_003*uint64(rank+1)
	if s == 0 {
		s = 1
	}
	return s
}

// validateTCP checks the TCP-plane knobs after fillDefaults.
func (c *Config) validateTCP() error {
	n := len(c.Node.Peers)
	if n < 1 || n > 64 {
		return fmt.Errorf("crossbow: TransportTCP needs 1..64 Node.Peers, got %d", n)
	}
	if c.Node.Rank < 0 || c.Node.Rank >= n {
		return fmt.Errorf("crossbow: Node.Rank %d outside peer list of %d", c.Node.Rank, n)
	}
	if c.Servers != n {
		return fmt.Errorf("crossbow: Servers (%d) must equal len(Node.Peers) (%d) on a TCP run", c.Servers, n)
	}
	if c.Scheduler != Lockstep {
		return fmt.Errorf("crossbow: TransportTCP requires the Lockstep scheduler (got %q)", c.Scheduler)
	}
	return nil
}

// trainNodeTCP is Train's path for Transport: TransportTCP. It runs ONE
// server of the cluster: bring up the transport mesh, warm-start from a
// peer snapshot when one exists (a rejoin), then train with the networked
// two-level SMA. The returned Result is this process's view; the central
// average model in Params is bit-identical across processes that finished
// the same rounds together.
func trainNodeTCP(cfg Config) (*Result, error) {
	algo, err := clusterAlgo(cfg.Algo)
	if err != nil {
		return nil, err
	}
	if cfg.Interconnect == (Interconnect{}) {
		cfg.Interconnect = Ethernet()
	}
	res := &Result{
		LearnersPerGPU: cfg.LearnersPerGPU,
		Servers:        cfg.Servers,
		Interconnect:   cfg.Interconnect,
		Transport:      TransportTCP,
	}

	// The learner count must agree across processes. The offline tuner is
	// deterministic in (model, gpus, batch, cluster shape), so AutoTune
	// resolves to the same m on every rank.
	if cfg.LearnersPerGPU == AutoTune {
		tuned := autotune.Tune(autotune.Config{
			Model: cfg.Model, GPUs: cfg.GPUs, Batch: cfg.Batch,
			Servers: cfg.Servers, TauGlobal: cfg.TauGlobal, Net: cfg.Interconnect,
		})
		res.LearnersPerGPU = tuned.Chosen
		res.TuneHistory = tuned.History
	} else if cfg.LearnersPerGPU <= 0 {
		res.LearnersPerGPU = 1
	}

	// Hardware plane: the simulated cluster stays the cost-model oracle —
	// the simulated throughput/epoch duration published next to the
	// measured transport stats (Result.TransportStats) so runs can compare
	// predicted and real exchange costs.
	spec := nn.FullSpec(cfg.Model)
	res.ThroughputImgSec = clusterThroughput(cfg, res.LearnersPerGPU, 30)
	if res.ThroughputImgSec > 0 {
		res.EpochSeconds = float64(spec.TrainSamples) / res.ThroughputImgSec
	}

	// Snapshots feed two consumers: the user's OnSnapshot and the rejoin
	// protocol (peers seed from the latest published cluster model). With
	// publishing off, default to one snapshot per global round so a
	// rejoining peer always finds a fresh model to resume from.
	holder := &snapshotHolder{next: cfg.OnSnapshot}
	publishEvery := cfg.PublishEvery
	if publishEvery <= 0 {
		publishEvery = max(1, cfg.Tau) * max(1, cfg.TauGlobal)
	}

	node, err := transport.Listen(transport.Config{
		Rank:           cfg.Node.Rank,
		Peers:          cfg.Node.Peers,
		Listener:       cfg.Node.Listener,
		Tree:           cfg.Interconnect.Tree,
		HeartbeatEvery: cfg.Node.HeartbeatEvery,
		PeerTimeout:    cfg.Node.PeerTimeout,
		DialBackoff:    cfg.Node.DialBackoff,
		RoundTimeout:   cfg.Node.RoundTimeout,
		Quarantine:     cfg.Node.Quarantine,
		Segments:       cfg.Node.Segments,
		Chaos:          cfg.Node.Chaos,
		Snapshot:       holder.checkpoint,
		Logf:           cfg.Node.Logf,
	})
	if err != nil {
		return nil, err
	}
	defer node.Close()

	bootstrap := cfg.Node.BootstrapWait
	if bootstrap <= 0 {
		bootstrap = 10 * time.Second
	}
	node.WaitPeers(bootstrap)

	// Warm start: a rejoining process resumes from the cluster's latest
	// published model; its first (Restart-flagged) round re-aligns every
	// participant bit-exactly. Cold bootstraps find no snapshot and fall
	// through to the shared-seed w0.
	warmWait := cfg.Node.WarmStartWait
	if warmWait <= 0 {
		warmWait = 2 * time.Second
	}
	var initModel []float32
	if len(cfg.Node.Peers) > 1 {
		if snap, err := node.FetchSnapshot(warmWait); err == nil && snap != nil {
			if snap.Model != string(cfg.Model) {
				return nil, fmt.Errorf("crossbow: peer snapshot is for model %q, this run trains %q", snap.Model, cfg.Model)
			}
			initModel = snap.Params
			res.WarmStartRound = int(snap.SnapshotRound)
		}
	}

	tr := core.Train(core.TrainConfig{
		Model:           cfg.Model,
		Algo:            algo,
		Servers:         cfg.Servers,
		GPUs:            cfg.GPUs,
		LearnersPerGPU:  res.LearnersPerGPU,
		BatchPerLearner: cfg.Batch,
		LearnRate:       cfg.LearnRate,
		Momentum:        cfg.Momentum,
		LocalMomentum:   cfg.Momentum,

		Tau:               cfg.Tau,
		TauGlobal:         cfg.TauGlobal,
		MaxEpochs:         cfg.MaxEpochs,
		TargetAcc:         cfg.TargetAccuracy,
		Seed:              cfg.Seed,
		Schedule:          cfg.Schedule,
		RestartOnLRChange: cfg.Restart,
		EpochSeconds:      res.EpochSeconds,
		TrainSamples:      cfg.TrainSamples,
		TestSamples:       cfg.TestSamples,
		Scheduler:         cfg.Scheduler,
		KernelMode:        cfg.KernelMode,
		Prefetch:          cfg.Prefetch,
		MemoryBudget:      cfg.MemoryBudget,
		PublishEvery:      publishEvery,
		OnSnapshot:        holder.onSnapshot,

		ExchangeRetries: cfg.Node.ExchangeRetries,
		GlobalExchange:  nodeExchanger{node},
		OverlapGlobal:   cfg.Node.OverlapGlobal,
		InitModel:       initModel,
		ShuffleSeed:     shuffleSeedFor(cfg.Seed, cfg.Node.Rank),
	})
	res.Series = tr.Series
	res.EpochsToTarget = tr.EpochsToTarget
	res.BestAccuracy = tr.FinalAccuracy
	res.Params = tr.Model
	res.Scheduler = tr.Sched
	res.Wall = tr.Wall
	res.WallImagesPerSec = metrics.MeanImagesPerSec(tr.Wall)
	res.RuntimeStats = tr.RuntimeStats
	res.Mem = tr.Mem
	res.TTASeconds = -1
	if cfg.TargetAccuracy > 0 {
		if t, ok := metrics.TTA(tr.Series, cfg.TargetAccuracy); ok {
			res.TTASeconds = t
		}
	}

	// A graceful leave: peers stop waiting for this rank at the next
	// barrier instead of suffering a heartbeat timeout. Stats are cut
	// before the teardown so LivePeers reflects the training mesh.
	res.TransportStats = node.Stats()
	node.Close()
	return res, nil
}
