// Auto-tuning demonstration: Algorithm 2 selects the learners-per-GPU that
// saturates training throughput, per model and batch size, bounded by GPU
// memory (§3.4, §4.4, Figure 14). Small batches admit (and benefit from)
// more learners; large models are memory-capped.
package main

import (
	"fmt"

	"crossbow"
	"crossbow/internal/autotune"
	"crossbow/internal/nn"
)

func main() {
	fmt.Println("Algorithm 2 across models and batch sizes (1 GPU):")
	fmt.Printf("%-10s %6s %8s %10s %14s\n", "model", "batch", "chosen m", "mem cap", "per-learner")
	for _, id := range crossbow.Models {
		for _, b := range []int{4, 16, 64} {
			r := autotune.Tune(autotune.Config{Model: id, GPUs: 1, Batch: b})
			fmt.Printf("%-10s %6d %8d %10d %11.2f GB\n",
				id, b, r.Chosen, r.MemoryCap, float64(r.PerLearnerBytes)/1e9)
		}
	}

	fmt.Println("\nDecision trace for ResNet-50 at b=16 (memory-capped):")
	r := autotune.Tune(autotune.Config{Model: nn.ResNet50, GPUs: 1, Batch: 16})
	for _, d := range r.History {
		fmt.Printf("  m=%d -> %.0f images/s\n", d.M, d.Throughput)
	}
	fmt.Printf("chosen m=%d (memory admits at most %d learners)\n", r.Chosen, r.MemoryCap)
}
