// Cluster scale-out demonstration: the paper's 8-GPU server (§5) scaled
// out to 8 such servers. The sweep shows where scale-out pays: ResNet-32's
// small model rides even commodity Ethernet to near-linear throughput,
// while the interconnect choice and the cross-server averaging period
// τ_global decide how much of that throughput survives on bigger models.
package main

import (
	"fmt"

	"crossbow"
)

func main() {
	sizes := []int{1, 2, 4, 8}

	fmt.Println("ResNet-32, 8 GPUs/server, m=2, b=16 — 1 to 8 servers over 10GbE:")
	fmt.Printf("%8s %14s %10s %12s\n", "servers", "images/s", "epoch(s)", "efficiency")
	pts, err := crossbow.ClusterSweep(crossbow.Config{
		Model: crossbow.ResNet32, GPUs: 8, LearnersPerGPU: 2, Batch: 16,
		Interconnect: crossbow.Ethernet(),
	}, sizes)
	if err != nil {
		panic(err)
	}
	for _, p := range pts {
		fmt.Printf("%8d %14.0f %10.1f %11.0f%%\n",
			p.Servers, p.ThroughputImgSec, p.EpochSeconds, p.Efficiency*100)
	}

	fmt.Println("\nInterconnects at 8 servers (VGG-16, the bandwidth-hungry model):")
	for _, ic := range []crossbow.Interconnect{
		crossbow.Ethernet(), crossbow.Ethernet25G(), crossbow.InfiniBand(),
	} {
		tp, err := crossbow.Throughput(crossbow.Config{
			Model: crossbow.VGG16, Servers: 8, GPUs: 8, LearnersPerGPU: 1,
			Batch: 16, Interconnect: ic,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-8s %12.0f images/s\n", ic.Name, tp)
	}

	fmt.Println("\nRelaxing tau_global on VGG-16 over 10GbE (8 servers):")
	for _, tg := range []int{1, 2, 4, 8} {
		tp, err := crossbow.Throughput(crossbow.Config{
			Model: crossbow.VGG16, Servers: 8, GPUs: 8, LearnersPerGPU: 1,
			Batch: 16, TauGlobal: tg, Interconnect: crossbow.Ethernet(),
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  tau_global=%d %12.0f images/s\n", tg, tp)
	}

	fmt.Println("\nEnd-to-end cluster training (LeNet, 2 servers, both planes):")
	res, err := crossbow.Train(crossbow.Config{
		Model: crossbow.LeNet, Servers: 2, GPUs: 1, LearnersPerGPU: 2,
		Batch: 8, MaxEpochs: 5, Interconnect: crossbow.InfiniBand(),
	})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Series {
		fmt.Printf("  epoch %2d  t=%6.1fs  acc=%5.2f%%\n", p.Epoch, p.TimeSec, p.TestAcc*100)
	}
	fmt.Printf("  throughput %.0f images/s across %d servers\n", res.ThroughputImgSec, res.Servers)
}
