// Real TCP cluster demonstration: three OS processes train LeNet together,
// exchanging the cross-server central average over localhost TCP
// (Config.Transport: TransportTCP) instead of the simulated scale-out
// plane. There is no coordinator — every process gets the same peer list
// and they bootstrap by dialing each other; synchronous model averaging
// (SMA, §3.2) keeps the cluster average bit-identical on every rank, which
// the parent verifies by comparing the model hashes the ranks print.
//
// Run with no arguments: the process picks three free ports and re-executes
// itself once per rank.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"crossbow"
)

const servers = 3

func main() {
	rank := flag.Int("rank", -1, "internal: worker rank (set by the launcher)")
	peers := flag.String("peers", "", "internal: worker peer list (set by the launcher)")
	flag.Parse()
	if *rank >= 0 {
		os.Exit(worker(*rank, strings.Split(*peers, ",")))
	}
	os.Exit(launch())
}

// launch picks free localhost ports, spawns one copy of this binary per
// rank, and relays their output.
func launch() int {
	addrs := make([]string, servers)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		addrs[i] = ln.Addr().String()
		ln.Close() // the worker rebinds; localhost port churn is negligible
	}
	fmt.Printf("launching %d processes: %s\n\n", servers, strings.Join(addrs, " "))

	var wg sync.WaitGroup
	cmds := make([]*exec.Cmd, servers)
	for r := 0; r < servers; r++ {
		cmd := exec.Command(os.Args[0],
			"-rank", strconv.Itoa(r), "-peers", strings.Join(addrs, ","))
		stdout, _ := cmd.StdoutPipe()
		stderr, _ := cmd.StderrPipe()
		if err := cmd.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cmds[r] = cmd
		wg.Add(2)
		go relay(&wg, stdout, os.Stdout)
		go relay(&wg, stderr, os.Stderr)
	}
	status := 0
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "rank %d: %v\n", r, err)
			status = 1
		}
	}
	wg.Wait()
	if status == 0 {
		fmt.Println("\nall ranks finished; identical model hashes above = bit-replicated cluster average")
	}
	return status
}

// worker is one rank: an ordinary crossbow.Train call with the TCP
// transport plane selected.
func worker(rank int, peers []string) int {
	res, err := crossbow.Train(crossbow.Config{
		Model:          crossbow.LeNet,
		Transport:      crossbow.TransportTCP,
		GPUs:           1,
		LearnersPerGPU: 2,
		Batch:          8,
		MaxEpochs:      2,
		Seed:           42, // identical on every rank: replicated initial model
		TrainSamples:   512,
		TestSamples:    256,
		Node: crossbow.NodeConfig{
			Rank:          rank,
			Peers:         peers,
			BootstrapWait: 10 * time.Second,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rank %d: %v\n", rank, err)
		return 1
	}

	h := fnv.New64a()
	var b [4]byte
	for _, p := range res.Params {
		bits := math.Float32bits(p)
		b[0], b[1], b[2], b[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
		h.Write(b[:])
	}
	ts := res.TransportStats
	fmt.Printf("rank %d/%d: acc %.2f%%  model hash %016x  (%d rounds, %d KiB on the wire, round p50 %v)\n",
		rank, res.Servers, res.BestAccuracy*100, h.Sum64(),
		ts.Rounds, ts.BytesSent>>10, ts.RoundP50.Round(10*time.Microsecond))
	return 0
}

func relay(wg *sync.WaitGroup, r io.Reader, w io.Writer) {
	defer wg.Done()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	for sc.Scan() {
		fmt.Fprintln(w, sc.Text())
	}
}
