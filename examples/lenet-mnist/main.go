// LeNet on the MNIST-shaped synthetic benchmark: the paper's small-model
// case (Figure 10d), where learning tasks take ~1 ms and the task engine's
// dispatch cost decides who wins. Compares the S-SGD baseline against
// Crossbow's SMA under identical hyper-parameters.
package main

import (
	"fmt"
	"log"

	"crossbow"
)

func main() {
	for _, algo := range []crossbow.Algorithm{crossbow.SSGD, crossbow.SMA} {
		res, err := crossbow.Train(crossbow.Config{
			Model:          crossbow.LeNet,
			Algo:           algo,
			GPUs:           1,
			LearnersPerGPU: 2,
			Batch:          8,
			TargetAccuracy: 0.60,
			MaxEpochs:      30,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s: throughput %7.0f img/s, best accuracy %5.1f%%",
			algo, res.ThroughputImgSec, res.BestAccuracy*100)
		if res.TTASeconds >= 0 {
			fmt.Printf(", TTA(60%%) %.1fs (%d epochs)\n", res.TTASeconds, res.EpochsToTarget)
		} else {
			fmt.Printf(", target not reached\n")
		}
	}
}
