// Example live-runtime demonstrates the wall-clock task runtime: the same
// multi-learner SMA training executed under the two scheduling modes —
// Lockstep (every iteration joins all learners behind a barrier, the
// bit-deterministic oracle) and FCFS (Crossbow's barrier-free schedule:
// learners bind staged batches first-come-first-served and run ahead of
// the central average model by up to τ iterations) — followed by an FCFS
// run whose learner count is tuned online by Algorithm 2 against measured
// wall-clock throughput.
package main

import (
	"fmt"
	"log"

	"crossbow"
	"crossbow/internal/metrics"
)

func main() {
	base := crossbow.Config{
		Model:          crossbow.ResNet32,
		Algo:           crossbow.SMA,
		LearnersPerGPU: 2,
		Batch:          8,
		Tau:            2,
		MaxEpochs:      3,
		Seed:           7,
		TrainSamples:   512,
		TestSamples:    128,
	}

	fmt.Println("== Lockstep (barriered oracle) vs FCFS (barrier-free) ==")
	for _, sched := range []crossbow.Scheduler{crossbow.Lockstep, crossbow.FCFS} {
		cfg := base
		cfg.Scheduler = sched
		res, err := crossbow.Train(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %.0f images/s wall-clock, median epoch %.3fs, best acc %.1f%%\n",
			sched, res.WallImagesPerSec, metrics.MedianEpochSec(res.Wall), res.BestAccuracy*100)
		for _, wp := range res.Wall {
			fmt.Printf("  epoch %d: %.3fs (%.0f images/s)\n", wp.Epoch, wp.Sec, wp.ImagesPerSec)
		}
		st := res.RuntimeStats
		fmt.Printf("  runtime: %d rounds applied, %d straggler waits, run-ahead <= %d iterations\n",
			st.Rounds, st.RoundWaits, st.MaxLeadIters)
	}

	fmt.Println("\n== FCFS with online Algorithm 2 (learner count from measured throughput) ==")
	cfg := base
	cfg.Scheduler = crossbow.FCFS
	cfg.LearnersPerGPU = crossbow.AutoTune
	cfg.MaxEpochs = 6
	res, err := crossbow.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range res.TuneHistory {
		fmt.Printf("  m=%d -> %.0f images/s measured\n", d.M, d.Throughput)
	}
	fmt.Printf("settled on m=%d, best acc %.1f%%\n", res.LearnersPerGPU, res.BestAccuracy*100)
}
