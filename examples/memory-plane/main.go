// Example memory-plane demonstrates the live §4.5 memory planner: every
// learning task executes against a planned arena (operator outputs,
// lowering scratch and gradients laid out with reference-count reuse)
// drawn from buffer pools shared by all learners, so activation memory
// grows with task concurrency, not learner count. The second run applies a
// deliberately tight MemoryBudget: training still completes — surplus
// learners wait for task buffers instead of growing the footprint — and
// the pool's peak stays under the cap.
package main

import (
	"fmt"
	"log"

	"crossbow"
)

func report(label string, res *crossbow.Result) {
	m := res.Mem
	fmt.Printf("\n%s\n", label)
	fmt.Printf("  task arena: %.2f MB planned vs %.2f MB naive (%.0f%% §4.5 saving)\n",
		float64(m.ArenaBytesPerTask)/(1<<20), float64(m.NaiveBytesPerTask)/(1<<20),
		100*m.PlanSavings())
	fmt.Printf("  shared pool: %.2f MB allocated for %d learners (peak %.2f MB, hit rate %.0f%%, %d budget waits)\n",
		float64(m.PoolAllocatedBytes)/(1<<20), m.Learners,
		float64(m.PoolPeakBytes)/(1<<20), 100*m.PoolHitRate(), m.PoolBudgetWaits)
	fmt.Printf("  steady state: %.1f heap allocs/iteration, %.2f ms GC pause over the run\n",
		m.AllocsPerIter, float64(m.GCPauseNs)/1e6)
	fmt.Printf("  best accuracy %.1f%%\n", res.BestAccuracy*100)
}

func main() {
	base := crossbow.Config{
		Model:          crossbow.ResNet32,
		Algo:           crossbow.SMA,
		LearnersPerGPU: 4,
		Batch:          8,
		MaxEpochs:      2,
		Seed:           7,
		TrainSamples:   512,
		TestSamples:    128,
		Scheduler:      crossbow.FCFS,
	}

	res, err := crossbow.Train(base)
	if err != nil {
		log.Fatal(err)
	}
	report("== 4 learners over learner-shared buffer pools ==", res)

	// Cap the activation pool at roughly one planned arena: learners share
	// a single task allocation, trading waits for footprint.
	tight := base
	tight.MemoryBudget = res.Mem.ArenaBytesPerTask + res.Mem.ArenaBytesPerTask/2
	res2, err := crossbow.Train(tight)
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("== same run under MemoryBudget = %.2f MB ==",
		float64(tight.MemoryBudget)/(1<<20)), res2)

	if res2.Mem.PoolPeakBytes > tight.MemoryBudget {
		log.Fatalf("pool peak %d exceeded the budget %d", res2.Mem.PoolPeakBytes, tight.MemoryBudget)
	}
	fmt.Println("\nbudget respected: activation memory bounded while all 4 learners trained")
}
