// Quickstart: train a ResNet-32-family model with Crossbow's SMA on one
// simulated GPU, letting the auto-tuner pick the number of learners.
package main

import (
	"fmt"
	"log"

	"crossbow"
)

func main() {
	res, err := crossbow.Train(crossbow.Config{
		Model:          crossbow.ResNet32,
		GPUs:           1,
		LearnersPerGPU: crossbow.AutoTune,
		Batch:          16,
		TargetAccuracy: 0.80,
		MaxEpochs:      20,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Auto-tuner (Algorithm 2) decisions:")
	for _, d := range res.TuneHistory {
		fmt.Printf("  m=%d -> %.0f images/s\n", d.M, d.Throughput)
	}
	fmt.Printf("chose m=%d learners per GPU\n\n", res.LearnersPerGPU)

	fmt.Printf("simulated throughput: %.0f images/s (epoch = %.1fs at CIFAR-10 scale)\n\n",
		res.ThroughputImgSec, res.EpochSeconds)

	fmt.Println("epoch  time(s)  test accuracy")
	for _, p := range res.Series {
		fmt.Printf("%5d %8.1f  %6.2f%%\n", p.Epoch, p.TimeSec, p.TestAcc*100)
	}
	if res.TTASeconds >= 0 {
		fmt.Printf("\nTTA(80%%) = %.1f simulated seconds (%d epochs)\n",
			res.TTASeconds, res.EpochsToTarget)
	} else {
		fmt.Println("\ntarget not reached; try more epochs")
	}
}
