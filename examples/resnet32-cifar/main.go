// ResNet-32 on the CIFAR-10-shaped synthetic benchmark across a simulated
// 8-GPU server: the paper's main scalability scenario (Figures 10a, 13).
// Trains with SMA at a small per-learner batch and reports convergence
// against simulated wall-clock time.
package main

import (
	"fmt"
	"log"

	"crossbow"
)

func main() {
	for _, m := range []int{1, 2} {
		res, err := crossbow.Train(crossbow.Config{
			Model:          crossbow.ResNet32,
			GPUs:           8,
			LearnersPerGPU: m,
			Batch:          16,
			TargetAccuracy: 0.85,
			MaxEpochs:      25,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("g=8 m=%d (k=%d learners): %.0f img/s\n", m, 8*m, res.ThroughputImgSec)
		for _, p := range res.Series {
			fmt.Printf("  epoch %2d  t=%6.1fs  acc=%5.1f%%\n", p.Epoch, p.TimeSec, p.TestAcc*100)
		}
		if res.TTASeconds >= 0 {
			fmt.Printf("  TTA(85%%) = %.1fs\n\n", res.TTASeconds)
		} else {
			fmt.Printf("  target not reached in %d epochs\n\n", len(res.Series))
		}
	}
}
