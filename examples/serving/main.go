// Example serving walks the full serving-plane loop (DESIGN.md §11):
// train a model, serve it with the dynamically-batched prediction runtime,
// keep training while publishing consistent snapshots of the central
// average model straight into the live service (hot swap, no dropped
// requests), then persist the final snapshot and serve it back from the
// checkpoint — the exact published model, version and all.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"crossbow"
)

func main() {
	// 1. Warm start: one quick epoch gives us a model worth serving.
	base := crossbow.Config{
		Model:        crossbow.ResNet32,
		Batch:        8,
		Seed:         7,
		TrainSamples: 512,
		TestSamples:  128,
	}
	warm := base
	warm.MaxEpochs = 1
	res, err := crossbow.Train(warm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm start: %.1f%% accuracy after 1 epoch\n", res.BestAccuracy*100)

	// 2. Serve it: 2 replicas, micro-batches of up to 16, 2ms straggler wait.
	p, err := crossbow.Serve(crossbow.ServeConfig{
		Model: base.Model, Params: res.Params,
		Replicas: 2, MaxBatch: 16, MaxDelay: 2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// Clients hammer the service while training continues underneath.
	sample := make([]float32, p.SampleVol())
	for i := range sample {
		sample[i] = float32(i%11) * 0.1
	}
	var stop atomic.Bool
	served := make(chan int)
	for c := 0; c < 4; c++ {
		go func() {
			n := 0
			for !stop.Load() {
				if _, err := p.Predict(sample); err != nil {
					break
				}
				n++
			}
			served <- n
		}()
	}

	// 3. Keep training, publishing a snapshot every 32 iterations; each one
	// hot-swaps into the live service with its round version.
	cont := base
	cont.MaxEpochs = 2
	cont.LearnersPerGPU = 2
	cont.Scheduler = crossbow.FCFS
	cont.PublishEvery = 32
	var lastSnap crossbow.Snapshot
	cont.OnSnapshot = func(s crossbow.Snapshot) {
		lastSnap = s
		if err := p.UpdateSnapshot(s); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := crossbow.Train(cont); err != nil {
		log.Fatal(err)
	}
	stop.Store(true)
	total := 0
	for c := 0; c < 4; c++ {
		total += <-served
	}

	st := p.Stats()
	fmt.Printf("served %d requests during training: %.1f req/batch occupancy, p50 %.2fms, p99 %.2fms\n",
		total, st.BatchOccupancy, st.P50Ms, st.P99Ms)
	fmt.Printf("service now at model version %d after %d hot swaps\n", p.Version(), st.ModelSwaps)

	// 4. Persist the last snapshot and serve the exact published model back.
	dir, err := os.MkdirTemp("", "crossbow-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckptPath := filepath.Join(dir, "snapshot.ckpt")
	if err := crossbow.SaveSnapshot(ckptPath, lastSnap); err != nil {
		log.Fatal(err)
	}
	p2, err := crossbow.Serve(crossbow.ServeConfig{Checkpoint: ckptPath, MaxDelay: 0})
	if err != nil {
		log.Fatal(err)
	}
	defer p2.Close()
	pred, err := p2.Predict(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed service answers class %d (confidence %.2f) at version %d — the round it was cut at\n",
		pred.Class, pred.Confidence, pred.Version)
}
