// VGG-16 on the CIFAR-100-shaped synthetic benchmark with the paper's
// online hyper-parameter adaptation: the learning rate halves periodically
// (§5.1) and SMA restarts from the central average model on each change
// (§3.2), preserving statistical efficiency across schedule steps.
package main

import (
	"fmt"
	"log"

	"crossbow"
	"crossbow/internal/core"
)

func main() {
	res, err := crossbow.Train(crossbow.Config{
		Model:          crossbow.VGG16,
		Algo:           crossbow.SMA,
		GPUs:           4,
		LearnersPerGPU: 2,
		Batch:          16,
		MaxEpochs:      30,
		Schedule:       core.PeriodicDecay(0.5, 10), // halve γ every 10 epochs
		Restart:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VGG-16, g=4, m=2, periodic decay + SMA restart\n")
	fmt.Printf("throughput %.0f img/s, epoch %.1fs\n", res.ThroughputImgSec, res.EpochSeconds)
	for _, p := range res.Series {
		marker := ""
		if p.Epoch%10 == 1 && p.Epoch > 1 {
			marker = "  <- learning rate halved, SMA restarted"
		}
		fmt.Printf("epoch %2d  t=%7.1fs  loss=%.3f  acc=%5.1f%%%s\n",
			p.Epoch, p.TimeSec, p.Loss, p.TestAcc*100, marker)
	}
	fmt.Printf("best accuracy: %.1f%%\n", res.BestAccuracy*100)
}
