package crossbow

import (
	"fmt"
	"io"

	"crossbow/internal/engine"
	"crossbow/internal/nn"
)

// This file and its siblings implement the reproduction harness: one
// exported function per table/figure of the paper's evaluation (§5),
// returning the same rows/series the paper plots. cmd/crossbow-bench and
// the root bench_test.go drive them.
//
// Scale mapping (see EXPERIMENTS.md): the hardware plane always uses the
// paper's full-scale models and batch sizes on the simulated 8-GPU server;
// the statistical plane trains the scaled models on the synthetic datasets
// with batch sizes reduced 4× (minimum 4) so that the batch-to-dataset
// ratio stays in the paper's regime. TTA composes the two planes.

// AccuracyTargets holds the per-model test-accuracy target x of TTA(x),
// derived — as in the paper §5.1 — from the highest accuracy the baseline
// reaches in our Figure 9 reproduction.
var AccuracyTargets = map[Model]float64{
	LeNet:    0.70,
	ResNet32: 0.85,
	VGG16:    0.35,
	ResNet50: 0.65,
}

// statBatch maps a paper batch size to the statistical plane's batch.
func statBatch(paperBatch int) int {
	b := paperBatch / 4
	if b < 4 {
		b = 4
	}
	return b
}

// Table1Row is one row of Table 1: the benchmark inventory.
type Table1Row struct {
	Model    Model
	Dataset  string
	InputMB  float64
	Ops      int
	ModelMB  float64
	PaperOps int     // the paper's reported operator count
	PaperMB  float64 // the paper's reported model size
}

// Table1 reproduces Table 1 from the full-scale model specs.
func Table1() []Table1Row {
	paper := map[Model]struct {
		ops int
		mb  float64
	}{
		LeNet:    {24, 4.24},
		ResNet32: {267, 1.79},
		VGG16:    {121, 57.37},
		ResNet50: {384, 97.49},
	}
	var rows []Table1Row
	for _, id := range Models {
		s := nn.FullSpec(id)
		rows = append(rows, Table1Row{
			Model:    id,
			Dataset:  s.Dataset,
			InputMB:  s.InputMB(),
			Ops:      s.NumOps(),
			ModelMB:  s.ModelMB(),
			PaperOps: paper[id].ops,
			PaperMB:  paper[id].mb,
		})
	}
	return rows
}

// PrintTable1 writes the table in the paper's layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-10s %-12s %14s %6s %12s   (paper: ops, MB)\n",
		"Model", "Dataset", "Input (MB)", "# Ops", "Model (MB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-12s %14.2f %6d %12.2f   (%d, %.2f)\n",
			r.Model, r.Dataset, r.InputMB, r.Ops, r.ModelMB, r.PaperOps, r.PaperMB)
	}
}

// Fig2Row is one point of Figure 2: baseline speed-up over one GPU as the
// GPU count grows, for a fixed aggregate batch size.
type Fig2Row struct {
	AggregateBatch int
	GPUs           int
	Speedup        float64
}

// Figure2 reproduces the hardware-efficiency scaling plot: S-SGD
// (TensorFlow-style) throughput speed-up vs number of GPUs for aggregate
// batch sizes 64…1024 on ResNet-32.
func Figure2() []Fig2Row {
	gpus := []int{1, 2, 4, 8}
	batches := []int{64, 128, 256, 512, 1024}
	var rows []Fig2Row
	for _, b := range batches {
		base := 0.0
		for _, g := range gpus {
			tp := engine.NewSSGD(engine.SSGDConfig{
				Model: ResNet32, GPUs: g, AggregateBatch: b,
			}).Throughput(25)
			if g == 1 {
				base = tp
			}
			rows = append(rows, Fig2Row{AggregateBatch: b, GPUs: g, Speedup: tp / base})
		}
	}
	return rows
}

// PrintFigure2 writes the speed-up series per batch size.
func PrintFigure2(w io.Writer, rows []Fig2Row) {
	fmt.Fprintf(w, "Figure 2 — S-SGD speed-up vs #GPUs (ResNet-32)\n")
	fmt.Fprintf(w, "%-10s %5s %8s\n", "agg.batch", "gpus", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %5d %8.2f\n", r.AggregateBatch, r.GPUs, r.Speedup)
	}
}

// Fig17Row is one point of Figure 17: Crossbow throughput vs learner count
// for synchronisation periods τ ∈ {1, 2, 3, ∞}.
type Fig17Row struct {
	M          int
	Tau        string
	Throughput float64 // images/s
}

// Figure17 reproduces the synchronisation-efficiency experiment: ResNet-32
// on 8 GPUs; reducing sync frequency buys only a modest throughput gain
// because the implementation overlaps synchronisation with learning.
func Figure17() []Fig17Row {
	var rows []Fig17Row
	taus := []struct {
		v    int
		name string
	}{{1, "1"}, {2, "2"}, {3, "3"}, {engine.TauNever, "inf"}}
	for _, m := range []int{1, 2, 4} {
		for _, tau := range taus {
			tp := engine.New(engine.Config{
				Model: ResNet32, GPUs: 8, LearnersPerGPU: m, Batch: 64,
				Tau: tau.v, Overlap: true,
			}).Throughput(30)
			rows = append(rows, Fig17Row{M: m, Tau: tau.name, Throughput: tp})
		}
	}
	return rows
}

// PrintFigure17 writes the throughput grid.
func PrintFigure17(w io.Writer, rows []Fig17Row) {
	fmt.Fprintf(w, "Figure 17 — throughput vs sync frequency (ResNet-32, g=8)\n")
	fmt.Fprintf(w, "%3s %5s %12s\n", "m", "tau", "images/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%3d %5s %12.0f\n", r.M, r.Tau, r.Throughput)
	}
}

// Fig14Row is one point of Figure 14: TTA and throughput improvement vs
// the number of learners per GPU.
type Fig14Row struct {
	M                 int
	ThroughputImgSec  float64
	ThroughputGainPct float64 // vs m=1
	TTASeconds        float64
	EpochsToTarget    int
}

// AutotuneDecisionRow mirrors Algorithm 2's trace for reporting.
type AutotuneDecisionRow struct {
	M          int
	Throughput float64
}
