package crossbow

// Chaos-resilience benchmark (DESIGN.md §13): the same small training
// cluster converging over localhost TCP while a seeded injector drops a
// growing fraction of its collective Data frames. Each row records what the
// faults cost — wall-clock, aborted and Restart rounds, watchdog fires —
// against the 0% baseline. The point is the degradation CURVE: drops are
// repaired by round-watchdog aborts plus dirty-Restart healing, so
// throughput degrades by bounded recovery stalls instead of the run hanging
// or diverging.
//
// `crossbow-bench -exp chaos` records the result in BENCH_chaos.json so
// robustness PRs can show their effect.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"crossbow/internal/chaos"
)

// ChaosBenchRow is one drop-rate measurement: a full k-rank training run
// under seeded frame loss.
type ChaosBenchRow struct {
	DropPct float64 `json:"drop_pct"` // Data-frame drop probability, percent
	Servers int     `json:"servers"`
	Rounds  int64   `json:"rounds"` // completed collective rounds, summed over ranks

	// Fault and recovery counters, summed over ranks.
	Dropped       int64 `json:"dropped_frames"`
	WatchdogFires int64 `json:"watchdog_fires"`
	Aborts        int64 `json:"aborts"`
	RestartRounds int64 `json:"restart_rounds"`

	WallMS float64 `json:"wall_ms"`
	// SlowdownX is this row's wall-clock over the 0% row's.
	SlowdownX float64 `json:"slowdown_x"`
	// Finite reports the survivors' final models stayed numerically sane.
	Finite bool `json:"finite"`
}

// ChaosBenchReport is the JSON document written to BENCH_chaos.json.
type ChaosBenchReport struct {
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	CPUs      int             `json:"cpus"`
	Generated string          `json:"generated"`
	Note      string          `json:"note"`
	Rows      []ChaosBenchRow `json:"rows"`
}

type chaosBenchEnv struct {
	servers int
	drops   []float64
	epochs  int
	samples int
}

func chaosBenchSetup(quick bool) chaosBenchEnv {
	env := chaosBenchEnv{
		servers: 3,
		drops:   []float64{0, 0.01, 0.05},
		epochs:  8,
		samples: 256,
	}
	if quick {
		env.epochs = 4
		env.samples = 128
	}
	return env
}

// ChaosBench trains the cluster once per drop rate and returns the
// degradation rows.
func ChaosBench(quick bool) []ChaosBenchRow {
	env := chaosBenchSetup(quick)
	rows := make([]ChaosBenchRow, 0, len(env.drops))
	for _, drop := range env.drops {
		rows = append(rows, chaosBenchPoint(env, drop))
	}
	if len(rows) > 0 && rows[0].WallMS > 0 {
		for i := range rows {
			rows[i].SlowdownX = rows[i].WallMS / rows[0].WallMS
		}
	}
	return rows
}

// benchPeers binds k loopback listeners so every rank knows the full
// address list before any node starts dialing.
func benchPeers(k int) ([]string, []net.Listener, error) {
	addrs := make([]string, k)
	lns := make([]net.Listener, k)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return addrs, lns, nil
}

func chaosBenchPoint(env chaosBenchEnv, drop float64) ChaosBenchRow {
	inj := chaos.NewInjector(chaos.Config{Seed: 0xC4A05, Drop: drop})
	addrs, lns, err := benchPeers(env.servers)
	if err != nil {
		panic(err)
	}

	results := make([]*Result, env.servers)
	errs := make([]error, env.servers)
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < env.servers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := Config{
				Model: LeNet, GPUs: 1, LearnersPerGPU: 2, Batch: 8,
				MaxEpochs: env.epochs, Seed: 31,
				TrainSamples: env.samples, TestSamples: 32,
				Servers: env.servers, Transport: TransportTCP,
			}
			cfg.Node = NodeConfig{
				Rank: r, Peers: addrs, Listener: lns[r],
				BootstrapWait: 5 * time.Second,
				WarmStartWait: 200 * time.Millisecond,
				// A dropped chunk is repaired by the round watchdog, so its
				// timeout IS the per-fault recovery cost; keep it short so
				// the bench measures the protocol, not the timer.
				HeartbeatEvery: 10 * time.Millisecond,
				PeerTimeout:    2 * time.Second,
				RoundTimeout:   50 * time.Millisecond,
				Quarantine:     50 * time.Millisecond,
				DialBackoff:    5 * time.Millisecond,
				Chaos:          inj,
			}
			results[r], errs[r] = Train(cfg)
		}(r)
	}
	wg.Wait()
	wall := time.Since(start)

	row := ChaosBenchRow{
		DropPct: drop * 100,
		Servers: env.servers,
		WallMS:  float64(wall.Nanoseconds()) / 1e6,
		Finite:  true,
	}
	for r, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("chaos bench: rank %d at %.0f%% drop: %v", r, drop*100, err))
		}
		ts := results[r].TransportStats
		row.Rounds += ts.Rounds
		row.WatchdogFires += ts.WatchdogFires
		row.Aborts += ts.Aborts
		row.RestartRounds += ts.RestartRounds
		for _, v := range results[r].Params {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				row.Finite = false
			}
		}
	}
	row.Dropped = inj.Stats().Dropped
	return row
}

// PrintChaosBench renders the degradation table.
func PrintChaosBench(w io.Writer, rows []ChaosBenchRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Training under seeded Data-frame loss (%d servers, localhost TCP)\n", rows[0].Servers)
	fmt.Fprintf(w, "%7s %8s %8s %7s %7s %9s %9s %10s %7s\n",
		"drop%", "rounds", "dropped", "fires", "aborts", "restarts", "wall(ms)", "slowdown", "finite")
	for _, row := range rows {
		fmt.Fprintf(w, "%7.1f %8d %8d %7d %7d %9d %9.0f %9.2fx %7v\n",
			row.DropPct, row.Rounds, row.Dropped, row.WatchdogFires, row.Aborts,
			row.RestartRounds, row.WallMS, row.SlowdownX, row.Finite)
	}
	fmt.Fprintln(w, "each dropped chunk stalls one round until the watchdog aborts it; dirty-Restart heals the skip")
}

// WriteChaosBenchJSON records the result (plus environment) at path.
func WriteChaosBenchJSON(path string, rows []ChaosBenchRow) error {
	rep := ChaosBenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Generated: time.Now().UTC().Format(time.RFC3339),
		Note: "seeded fault injection on localhost loopback; wall-clock grows with the " +
			"drop rate by bounded watchdog recovery stalls, it does not hang or diverge",
		Rows: rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
