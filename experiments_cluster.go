package crossbow

// Cluster-transport benchmark (DESIGN.md §12): measured all-reduce times of
// the REAL TCP transport on localhost next to the simulated Interconnect
// cost model's predictions, for both collective topologies. The point is not
// that loopback matches a modelled NIC (it never will — no real wire, no
// NIC serialisation) but that the two planes disagree only by a link-speed
// factor: the structural costs — chunking, step counts, per-rank byte
// volumes — come from the same algorithm, and the recorded rows let a
// reader line the two up.
//
// `crossbow-bench -exp cluster-net` records the result in BENCH_cluster.json
// so transport PRs can show their effect.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"crossbow/internal/cluster"
	"crossbow/internal/transport"
)

// ClusterNetBenchRow is one (topology, tensor size) measurement: k real
// processes-worth of transport nodes all-reducing over localhost TCP.
type ClusterNetBenchRow struct {
	Topology string `json:"topology"`
	Servers  int    `json:"servers"`
	Floats   int    `json:"floats"`
	Bytes    int64  `json:"bytes"`
	Rounds   int    `json:"rounds"`

	// Collective times are the slowest rank's data phase per round —
	// exactly the quantity Interconnect.AllReduceUS models.
	CollectiveP50US  float64 `json:"collective_p50_us"`
	CollectiveMeanUS float64 `json:"collective_mean_us"`
	CollectiveMaxUS  float64 `json:"collective_max_us"`
	// WireBytesPerNode is the mean payload+header traffic one node sent
	// for the whole run (structural check: ring ≈ 2(k−1)/k of the tensor
	// per round, tree ≈ the full tensor).
	WireBytesPerNode int64 `json:"wire_bytes_per_node"`

	// Per-phase means, per round per node: time at the round barrier, in
	// the reduce-scatter half (tree: reduce) and in the all-gather half
	// (tree: broadcast).
	BarrierUS       float64 `json:"barrier_us"`
	ReduceScatterUS float64 `json:"reduce_scatter_us"`
	AllGatherUS     float64 `json:"all_gather_us"`

	// Overlap marks rows measured through the asynchronous BeginAllReduce
	// path, with a computation window (the matching synchronous row's mean
	// collective time) between launch and Wait — the τ_global overlap a
	// training node sees. ExposedUS is the mean time per round the caller
	// still blocked in Wait (the exchange cost the overlap failed to
	// hide); HiddenPct is the share of exchange wall time that ran
	// concurrently with the computation window.
	Overlap   bool    `json:"overlap"`
	ExposedUS float64 `json:"exposed_us"`
	HiddenPct float64 `json:"hidden_pct"`

	// PredictedUS maps each cluster.Presets() cost model (at this row's
	// topology) to its AllReduceUS prediction for the same bytes/servers.
	PredictedUS map[string]float64 `json:"predicted_us"`
}

// ClusterNetBenchReport is the JSON document written to BENCH_cluster.json.
type ClusterNetBenchReport struct {
	GOOS      string               `json:"goos"`
	GOARCH    string               `json:"goarch"`
	CPUs      int                  `json:"cpus"`
	Generated string               `json:"generated"`
	Servers   int                  `json:"servers"`
	Note      string               `json:"note"`
	Rows      []ClusterNetBenchRow `json:"rows"`
}

type clusterNetEnv struct {
	servers int
	floats  []int
	rounds  int
}

func clusterNetSetup(quick bool) clusterNetEnv {
	env := clusterNetEnv{
		servers: 3,
		floats:  []int{16 << 10, 256 << 10, 1 << 20},
		rounds:  30,
	}
	if quick {
		env.floats = []int{16 << 10, 256 << 10}
		env.rounds = 12
	}
	return env
}

// ClusterNetBench runs the real localhost all-reduce for every
// (topology × tensor size) point and pairs each measurement with the
// simulated predictions. Every point is measured twice: synchronously
// (AllReduce blocks the caller for the whole round) and overlapped
// (BeginAllReduce launches the round, a computation window equal to the
// synchronous mean runs concurrently, then Wait folds the result) — the
// pair shows how much of the exchange the async path hides behind one
// iteration's compute.
func ClusterNetBench(quick bool) []ClusterNetBenchRow {
	env := clusterNetSetup(quick)
	var rows []ClusterNetBenchRow
	for _, tree := range []bool{false, true} {
		for _, floats := range env.floats {
			sync := clusterNetPoint(env.servers, floats, env.rounds, tree, false, 0)
			rows = append(rows, sync)
			rows = append(rows, clusterNetPoint(env.servers, floats, env.rounds, tree, true, sync.CollectiveMeanUS))
		}
	}
	return rows
}

func clusterNetPoint(k, floats, rounds int, tree, overlap bool, computeUS float64) ClusterNetBenchRow {
	lns := make([]net.Listener, k)
	addrs := make([]string, k)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*transport.Node, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			n, err := transport.Listen(transport.Config{
				Rank: r, Peers: addrs, Listener: lns[r], Tree: tree,
				HeartbeatEvery: 50 * time.Millisecond,
				// Generous liveness window: the bench shares one machine
				// across all ranks, and real crashes surface as connection
				// resets anyway.
				PeerTimeout: 5 * time.Second,
			})
			if err != nil {
				panic(err)
			}
			nodes[r] = n
		}(r)
	}
	wg.Wait()
	for _, n := range nodes {
		n.WaitPeers(10 * time.Second)
	}

	bufs := make([][]float32, k)
	for r := range bufs {
		bufs[r] = make([]float32, floats)
		for i := range bufs[r] {
			bufs[r][i] = 1
		}
	}

	compute := time.Duration(computeUS * float64(time.Microsecond))
	samples := make([]float64, 0, rounds)
	exposed := make([]float64, 0, rounds)
	for round := 0; round < rounds; round++ {
		// Keep magnitudes bounded across rounds: every rank contributes 1s,
		// so the sum is exactly k everywhere and we reset it each round.
		for r := range bufs {
			for i := range bufs[r] {
				bufs[r][i] = 1
			}
		}
		res := make([]transport.Round, k)
		blocked := make([]int64, k)
		var rw sync.WaitGroup
		for r := 0; r < k; r++ {
			rw.Add(1)
			go func(r int) {
				defer rw.Done()
				var rr transport.Round
				var err error
				if overlap {
					// The training node's schedule: launch the exchange,
					// run one compute window's worth of work against the
					// old reference, then fold. Only the Wait is on the
					// critical path.
					var p *transport.PendingRound
					p, err = nodes[r].BeginAllReduce(bufs[r])
					if err == nil {
						time.Sleep(compute)
						w0 := time.Now()
						rr, err = p.Wait()
						blocked[r] = time.Since(w0).Nanoseconds()
					}
				} else {
					rr, err = nodes[r].AllReduce(bufs[r])
				}
				if err != nil {
					panic(err)
				}
				res[r] = rr
			}(r)
		}
		rw.Wait()
		var worst, worstBlocked int64
		for r, rr := range res {
			if rr.Aborted || rr.Participants != k {
				panic(fmt.Sprintf("cluster-net bench: rank %d round %d: %+v", r, round, rr))
			}
			if rr.CollectiveNs > worst {
				worst = rr.CollectiveNs
			}
			if blocked[r] > worstBlocked {
				worstBlocked = blocked[r]
			}
		}
		samples = append(samples, float64(worst)/1e3)
		exposed = append(exposed, float64(worstBlocked)/1e3)
	}

	var wire, barrierNs, rsNs, agNs, hiddenNs, blockedNs int64
	for _, n := range nodes {
		s := n.Stats()
		wire += s.BytesSent
		barrierNs += s.BarrierWaitNs
		rsNs += s.ReduceScatterNs
		agNs += s.AllGatherNs
		hiddenNs += s.OverlapHiddenNs
		blockedNs += s.OverlapBlockedNs
	}
	for _, n := range nodes {
		n.Close()
	}

	sort.Float64s(samples)
	var mean float64
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))

	perRound := 1e3 * float64(k) * float64(rounds) // ns totals -> us per round per node
	bytes := int64(floats) * 4
	row := ClusterNetBenchRow{
		Topology: "ring", Servers: k, Floats: floats, Bytes: bytes, Rounds: rounds,
		CollectiveP50US:  samples[len(samples)/2],
		CollectiveMeanUS: mean,
		CollectiveMaxUS:  samples[len(samples)-1],
		WireBytesPerNode: wire / int64(k),
		BarrierUS:        float64(barrierNs) / perRound,
		ReduceScatterUS:  float64(rsNs) / perRound,
		AllGatherUS:      float64(agNs) / perRound,
		Overlap:          overlap,
		PredictedUS:      map[string]float64{},
	}
	if tree {
		row.Topology = "tree"
	}
	if overlap {
		sort.Float64s(exposed)
		var expMean float64
		for _, e := range exposed {
			expMean += e
		}
		row.ExposedUS = expMean / float64(len(exposed))
		if total := hiddenNs + blockedNs; total > 0 {
			row.HiddenPct = 100 * float64(hiddenNs) / float64(total)
		}
	}
	for _, ic := range cluster.Presets() {
		ic.Tree = tree
		row.PredictedUS[ic.Name] = ic.AllReduceUS(bytes, k)
	}
	return row
}

// PrintClusterNetBench renders the real-vs-simulated table.
func PrintClusterNetBench(w io.Writer, rows []ClusterNetBenchRow) {
	if len(rows) == 0 {
		return
	}
	var names []string
	for name := range rows[0].PredictedUS {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "Real TCP all-reduce on localhost vs simulated cost models (%d servers)\n", rows[0].Servers)
	fmt.Fprintf(w, "%5s %8s %9s %7s %9s %9s %8s %8s %8s %9s %7s",
		"topo", "mode", "floats", "MiB", "p50(us)", "mean(us)", "rs(us)", "ag(us)", "bar(us)", "expos(us)", "hidden")
	for _, name := range names {
		fmt.Fprintf(w, " %10s", name)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		mode, exposed, hidden := "sync", "-", "-"
		if row.Overlap {
			mode = "overlap"
			exposed = fmt.Sprintf("%.0f", row.ExposedUS)
			hidden = fmt.Sprintf("%.0f%%", row.HiddenPct)
		}
		fmt.Fprintf(w, "%5s %8s %9d %7.2f %9.0f %9.0f %8.0f %8.0f %8.0f %9s %7s",
			row.Topology, mode, row.Floats, float64(row.Bytes)/(1<<20),
			row.CollectiveP50US, row.CollectiveMeanUS,
			row.ReduceScatterUS, row.AllGatherUS, row.BarrierUS,
			exposed, hidden)
		for _, name := range names {
			fmt.Fprintf(w, " %10.0f", row.PredictedUS[name])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "rs/ag/bar: per-round per-node reduce-scatter (tree: reduce), all-gather (tree:")
	fmt.Fprintln(w, "broadcast) and barrier-wait time; overlap rows launch the round asynchronously,")
	fmt.Fprintln(w, "run a compute window equal to the sync row's mean, then Wait — expos(us) is the")
	fmt.Fprintln(w, "exchange time left on the critical path, hidden the share absorbed by compute.")
	fmt.Fprintln(w, "predicted columns are the simulated Interconnect's AllReduceUS for the modelled NIC")
}

// WriteClusterNetBenchJSON records the result (plus environment) at path.
func WriteClusterNetBenchJSON(path string, rows []ClusterNetBenchRow, quick bool) error {
	env := clusterNetSetup(quick)
	rep := ClusterNetBenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Generated: time.Now().UTC().Format(time.RFC3339),
		Servers:   env.servers,
		Note: "measured on localhost loopback; predicted_us models real NICs, " +
			"so compare shapes (topology and size scaling), not absolutes",
		Rows: rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
