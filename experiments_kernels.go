package crossbow

// Kernel microbenchmark experiment: times the compute-substrate kernels at
// the shapes the scaled benchmark models actually run plus one end-to-end
// statistical-plane epoch, so perf PRs can demonstrate their effect with
// `crossbow-bench -exp kernels` and compare against the committed
// BENCH_kernels.json baseline.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"crossbow/internal/core"
	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// KernelBenchRow is one timed kernel at one shape.
type KernelBenchRow struct {
	Kernel string `json:"kernel"`
	Shape  string `json:"shape"`
	// Mode is the kernel mode the row ran under ("deterministic" or
	// "fast") for mode-dispatched kernels, empty for mode-independent ones.
	Mode    string  `json:"mode,omitempty"`
	NsPerOp float64 `json:"ns_per_op"`
	// GFLOPs is the achieved rate for kernels with a meaningful FLOP count
	// (2·m·k·n for GEMM), zero otherwise.
	GFLOPs float64 `json:"gflops,omitempty"`
}

// KernelBenchReport is the JSON document written to BENCH_kernels.json.
type KernelBenchReport struct {
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	CPUs        int              `json:"cpus"`
	Parallelism int              `json:"kernel_parallelism"`
	Generated   string           `json:"generated"`
	Rows        []KernelBenchRow `json:"rows"`
}

// benchIt runs fn repeatedly until the measurement window is filled and
// returns nanoseconds per call.
func benchIt(quick bool, fn func()) float64 {
	window := 300 * time.Millisecond
	if quick {
		window = 60 * time.Millisecond
	}
	fn() // warm caches and scratch pools
	var n int
	start := time.Now()
	for {
		fn()
		n++
		if e := time.Since(start); e >= window {
			return float64(e.Nanoseconds()) / float64(n)
		}
	}
}

// KernelBench times the compute substrate. quick shrinks measurement
// windows and the end-to-end epoch for the smoke path.
func KernelBench(quick bool) []KernelBenchRow {
	var rows []KernelBenchRow
	r := tensor.NewRNG(1)
	norm := func(n int) []float32 {
		s := make([]float32, n)
		for i := range s {
			s[i] = float32(r.NormFloat64())
		}
		return s
	}

	// GEMM at the ResNet-32 stages' batched forward shapes (b=16), LeNet's
	// classifier gradient, and a square blocking stressor.
	gemmShapes := []struct {
		name    string
		m, k, n int
	}{
		{"resnet32-s1", 8, 72, 1024},
		{"resnet32-s2", 16, 144, 256},
		{"resnet32-s3", 32, 288, 64},
		{"dense-bwd", 32, 144, 16},
		{"sq256", 256, 256, 256},
	}
	for _, s := range gemmShapes {
		a, at := norm(s.m*s.k), norm(s.k*s.m)
		b, bt := norm(s.k*s.n), norm(s.n*s.k)
		c := make([]float32, s.m*s.n)
		flops := float64(2 * s.m * s.k * s.n)
		shape := fmt.Sprintf("m=%d k=%d n=%d", s.m, s.k, s.n)
		for _, mode := range []tensor.KernelMode{tensor.Deterministic, tensor.Fast} {
			mode := mode
			ms := mode.String()
			ns := benchIt(quick, func() { tensor.GemmMode(mode, 1, a, s.m, s.k, b, s.n, 0, c) })
			rows = append(rows, KernelBenchRow{Kernel: "Gemm", Shape: shape, Mode: ms, NsPerOp: ns, GFLOPs: flops / ns})
			ns = benchIt(quick, func() { tensor.GemmTAMode(mode, 1, at, s.k, s.m, b, s.n, 0, c) })
			rows = append(rows, KernelBenchRow{Kernel: "GemmTA", Shape: shape, Mode: ms, NsPerOp: ns, GFLOPs: flops / ns})
			ns = benchIt(quick, func() { tensor.GemmTBMode(mode, 1, a, s.m, s.k, bt, s.n, 0, c) })
			rows = append(rows, KernelBenchRow{Kernel: "GemmTB", Shape: shape, Mode: ms, NsPerOp: ns, GFLOPs: flops / ns})
		}
	}

	// Batched conv lowering at the ResNet-32 stage geometries, b=16.
	geoms := []tensor.ConvGeom{
		{InC: 8, InH: 8, InW: 8, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 16, InH: 4, InW: 4, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 32, InH: 2, InW: 2, OutC: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
	}
	const batch = 16
	for _, g := range geoms {
		shape := fmt.Sprintf("c%dh%d b%d", g.InC, g.InH, batch)
		x := norm(batch * g.InVol())
		col := make([]float32, g.ColRows()*batch*g.ColCols())
		tensor.Im2colBatch(g, batch, x, col, false)
		ns := benchIt(quick, func() { tensor.Im2colBatch(g, batch, x, col, true) })
		rows = append(rows, KernelBenchRow{Kernel: "Im2colBatch", Shape: shape, NsPerOp: ns})
		dcol := norm(g.ColRows() * batch * g.ColCols())
		dx := make([]float32, batch*g.InVol())
		ns = benchIt(quick, func() { tensor.Col2imBatch(g, batch, dcol, dx) })
		rows = append(rows, KernelBenchRow{Kernel: "Col2imBatch", Shape: shape, NsPerOp: ns})
	}

	// Flat vector kernels at model-vector sizes (scaled ResNet-32 ≈ 20k
	// parameters; 500k matches the optimiser-path benchmark). Dot's result
	// is accumulated into a sink so the call cannot be hollowed out.
	var dotSink float64
	for _, n := range []int{20_000, 500_000} {
		x, y := norm(n), norm(n)
		shape := fmt.Sprintf("n=%d", n)
		ns := benchIt(quick, func() { tensor.Axpy(0.5, x, y) })
		rows = append(rows, KernelBenchRow{Kernel: "Axpy", Shape: shape, NsPerOp: ns, GFLOPs: 2 * float64(n) / ns})
		ns = benchIt(quick, func() { dotSink += tensor.Dot(x, y) })
		rows = append(rows, KernelBenchRow{Kernel: "Dot", Shape: shape, NsPerOp: ns, GFLOPs: 2 * float64(n) / ns})
	}
	if dotSink == math.Inf(1) {
		fmt.Fprintln(os.Stderr, "kernel bench: dot overflow")
	}

	// End-to-end: one ResNet-32 statistical-plane epoch (the §5 hot path),
	// in both kernel modes so the fast path's end-to-end effect is on
	// record next to the per-kernel rates.
	for _, mode := range []tensor.KernelMode{tensor.Deterministic, tensor.Fast} {
		cfg := core.TrainConfig{
			Model: nn.ResNet32, Algo: core.AlgoSMA, Momentum: 0.9,
			MaxEpochs: 1, Seed: 1, KernelMode: mode,
		}
		if quick {
			cfg.TrainSamples, cfg.TestSamples = 512, 128
		}
		samples := cfg.TrainSamples
		if samples == 0 {
			samples = 2048 // data.ForModel's default training-set size
		}
		start := time.Now()
		core.Train(cfg)
		rows = append(rows, KernelBenchRow{
			Kernel: "EpochResNet32", Shape: fmt.Sprintf("samples=%d", samples),
			Mode: mode.String(), NsPerOp: float64(time.Since(start).Nanoseconds()),
		})
	}
	return rows
}

// PrintKernelBench renders the kernel table.
func PrintKernelBench(w io.Writer, rows []KernelBenchRow) {
	fmt.Fprintf(w, "Kernel microbenchmarks (parallelism=%d)\n", tensor.Parallelism())
	fmt.Fprintf(w, "%-14s %-18s %-13s %14s %10s\n", "kernel", "shape", "mode", "ns/op", "GFLOP/s")
	for _, r := range rows {
		g := ""
		if r.GFLOPs > 0 {
			g = fmt.Sprintf("%10.2f", r.GFLOPs)
		}
		fmt.Fprintf(w, "%-14s %-18s %-13s %14.0f %s\n", r.Kernel, r.Shape, r.Mode, r.NsPerOp, g)
	}
}

// WriteKernelBenchJSON records the rows (plus environment) at path.
func WriteKernelBenchJSON(path string, rows []KernelBenchRow) error {
	rep := KernelBenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs: runtime.NumCPU(), Parallelism: tensor.Parallelism(),
		Generated: time.Now().UTC().Format(time.RFC3339),
		Rows:      rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
