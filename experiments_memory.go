package crossbow

// Live memory-plane benchmark (§4.5): what training actually allocates once
// every learning task executes against a planned arena drawn from the
// learner-shared online pools. For each scheduler (lockstep, FCFS) and
// learner count m ∈ {1, 2, 4} the benchmark trains one ResNet-32 epoch and
// records, from the run's MemoryStats: steady-state heap allocations per
// joined iteration (the ~0 claim), the planned per-task arena vs the naive
// no-reuse footprint (the offline planner's saving), the shared pool's
// allocated and peak bytes (the activation-memory-vs-m curve — sub-linear,
// because pools are sized by task concurrency and the budget, not by m),
// GC pauses and the live heap.
//
// `crossbow-bench -exp memory` records the result in BENCH_memory.json so
// memory-plane PRs can show their effect.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"crossbow/internal/core"
	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// MemoryBenchRow is one (scheduler, learner count) measurement.
type MemoryBenchRow struct {
	Scheduler string `json:"scheduler"`
	Learners  int    `json:"learners"`
	Batch     int    `json:"batch"`

	// Per-task plan.
	ArenaBytesPerTask int64   `json:"arena_bytes_per_task"`
	NaiveBytesPerTask int64   `json:"naive_bytes_per_task"`
	PlanSavings       float64 `json:"plan_savings"`

	// Shared-pool behaviour (the activation footprint).
	PoolAllocatedBytes int64   `json:"pool_allocated_bytes"`
	PoolPeakBytes      int64   `json:"pool_peak_bytes"`
	PoolHitRate        float64 `json:"pool_hit_rate"`
	PoolBudgetWaits    int     `json:"pool_budget_waits"`

	// Runtime cost.
	AllocsPerIter float64 `json:"allocs_per_iter"`
	GCPauseMs     float64 `json:"gc_pause_ms"`
	NumGC         uint32  `json:"num_gc"`
	HeapAllocMB   float64 `json:"heap_alloc_mb"`
	EpochSec      float64 `json:"epoch_sec"`
	ImagesPerSec  float64 `json:"images_per_sec"`
}

// MemoryBenchReport is the JSON document written to BENCH_memory.json.
type MemoryBenchReport struct {
	GOOS         string           `json:"goos"`
	GOARCH       string           `json:"goarch"`
	CPUs         int              `json:"cpus"`
	WorkerBudget int              `json:"worker_budget"`
	Generated    string           `json:"generated"`
	Model        string           `json:"model"`
	TrainSamples int              `json:"train_samples"`
	Rows         []MemoryBenchRow `json:"rows"`
	// ActivationGrowth maps "m=N" to pool_allocated_bytes(m=N) relative to
	// m=1 for each scheduler ("sched/m=N"): < N means sub-linear growth —
	// the §4.5 sharing effect.
	ActivationGrowth map[string]float64 `json:"activation_growth_vs_m1"`
}

type memoryBenchEnv struct {
	samples int
	batch   int
}

func memoryBenchSetup(quick bool) memoryBenchEnv {
	if quick {
		return memoryBenchEnv{samples: 512, batch: 4}
	}
	return memoryBenchEnv{samples: 2048, batch: 4}
}

// MemoryBenchResult carries the rows plus the growth summary.
type MemoryBenchResult struct {
	Rows   []MemoryBenchRow
	Growth map[string]float64
}

// MemoryBench trains one ResNet-32 epoch per (scheduler, m ∈ {1,2,4}) and
// reports the memory plane's behaviour.
func MemoryBench(quick bool) *MemoryBenchResult {
	env := memoryBenchSetup(quick)
	out := &MemoryBenchResult{Growth: map[string]float64{}}

	for _, sched := range []core.SchedulerMode{core.SchedLockstep, core.SchedFCFS} {
		var base int64
		for _, m := range []int{1, 2, 4} {
			res := core.Train(core.TrainConfig{
				Model: nn.ResNet32, Algo: core.AlgoSMA,
				GPUs: 1, LearnersPerGPU: m, BatchPerLearner: env.batch,
				Momentum: 0.9, LocalMomentum: 0.9, Tau: 1,
				MaxEpochs: 1, Seed: 1,
				TrainSamples: env.samples, TestSamples: 64,
				Scheduler: sched,
			})
			mem := res.Mem
			row := MemoryBenchRow{
				Scheduler: string(sched), Learners: m, Batch: env.batch,
				ArenaBytesPerTask:  mem.ArenaBytesPerTask,
				NaiveBytesPerTask:  mem.NaiveBytesPerTask,
				PlanSavings:        mem.PlanSavings(),
				PoolAllocatedBytes: mem.PoolAllocatedBytes,
				PoolPeakBytes:      mem.PoolPeakBytes,
				PoolHitRate:        mem.PoolHitRate(),
				PoolBudgetWaits:    mem.PoolBudgetWaits,
				AllocsPerIter:      mem.AllocsPerIter,
				GCPauseMs:          float64(mem.GCPauseNs) / 1e6,
				NumGC:              mem.NumGC,
				HeapAllocMB:        float64(mem.HeapAllocBytes) / (1 << 20),
				EpochSec:           res.Wall[0].Sec,
				ImagesPerSec:       res.Wall[0].ImagesPerSec,
			}
			out.Rows = append(out.Rows, row)
			if m == 1 {
				base = mem.PoolAllocatedBytes
			}
			if base > 0 {
				out.Growth[fmt.Sprintf("%s/m=%d", sched, m)] =
					float64(mem.PoolAllocatedBytes) / float64(base)
			}
		}
	}
	return out
}

// PrintMemoryBench renders the memory-plane table.
func PrintMemoryBench(w io.Writer, r *MemoryBenchResult) {
	fmt.Fprintf(w, "Live memory plane, ResNet-32 one epoch (budget=%d workers)\n", tensor.WorkerBudget())
	fmt.Fprintf(w, "%-9s %3s %10s %10s %7s %10s %10s %6s %8s %8s %7s %9s\n",
		"sched", "m", "arena", "naive", "saving", "pool", "peak", "hit", "allocs/i", "gc(ms)", "heap", "img/s")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-9s %3d %9.2fM %9.2fM %6.1f%% %9.2fM %9.2fM %5.0f%% %8.1f %8.2f %6.1fM %9.0f\n",
			row.Scheduler, row.Learners,
			float64(row.ArenaBytesPerTask)/(1<<20), float64(row.NaiveBytesPerTask)/(1<<20),
			100*row.PlanSavings,
			float64(row.PoolAllocatedBytes)/(1<<20), float64(row.PoolPeakBytes)/(1<<20),
			100*row.PoolHitRate, row.AllocsPerIter, row.GCPauseMs, row.HeapAllocMB,
			row.ImagesPerSec)
	}
	for _, sched := range []core.SchedulerMode{core.SchedLockstep, core.SchedFCFS} {
		g4, ok := r.Growth[fmt.Sprintf("%s/m=4", sched)]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%s activation growth m=1→4: %.2fx (linear would be 4.00x)\n", sched, g4)
	}
}

// WriteMemoryBenchJSON records the result (plus environment) at path.
func WriteMemoryBenchJSON(path string, r *MemoryBenchResult, quick bool) error {
	env := memoryBenchSetup(quick)
	rep := MemoryBenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs: runtime.NumCPU(), WorkerBudget: tensor.WorkerBudget(),
		Generated:        time.Now().UTC().Format(time.RFC3339),
		Model:            string(nn.ResNet32),
		TrainSamples:     env.samples,
		Rows:             r.Rows,
		ActivationGrowth: r.Growth,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
