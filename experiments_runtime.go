package crossbow

// Wall-clock scheduler benchmark: lockstep vs FCFS epoch time on the real
// task runtime, at the paper's small-batch regime. This is the experiment
// behind the §4 claim that a barrier-free FCFS schedule uses hardware
// better than barriered execution: per iteration, lockstep pays k dispatch
// hand-offs and a k-way join regardless of τ, while FCFS learners
// self-drive and synchronise only at τ-boundaries, overlapping the
// exchange with other learners' compute. The benchmark runs at b=2 —
// deep in the small-batch regime the paper's title is about, where
// per-iteration scheduling overhead is a real fraction of the epoch — and
// τ=2 (§5.5 sweeps τ; SMA's statistical efficiency is robust to small τ),
// where the scheduling disciplines differ while the optimiser work stays
// identical. At τ=1 on a single-CPU host the two schedulers are within
// measurement noise of each other, which the README discusses.
//
// Methodology: machine noise on shared hosts dwarfs scheduler effects, so
// each learner count is measured as N interleaved (lockstep, FCFS) pairs
// of single-epoch runs with alternating order, and the headline statistic
// is the median of per-pair time ratios — drift cancels within a pair,
// outliers fall to the median. `crossbow-bench -exp runtime` records the
// result in BENCH_runtime.json so scheduler PRs can show their effect.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"crossbow/internal/core"
	"crossbow/internal/metrics"
	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// runtimeBenchTau is the synchronisation period the scheduler comparison
// runs at (see the package comment above).
const runtimeBenchTau = 2

// RuntimeBenchRow is one (scheduler, learner count) measurement.
type RuntimeBenchRow struct {
	Scheduler string `json:"scheduler"`
	Learners  int    `json:"learners"`
	Batch     int    `json:"batch"`
	Tau       int    `json:"tau"`
	// EpochSecMedian/Min aggregate every timed epoch across pairs.
	EpochSecMedian float64 `json:"epoch_sec_median"`
	EpochSecMin    float64 `json:"epoch_sec_min"`
	ImagesPerSec   float64 `json:"images_per_sec"`
	Rounds         int     `json:"rounds"`
	RoundWaits     int     `json:"round_waits"`
	MaxLeadIters   int     `json:"max_lead_iters"`
}

// RuntimeBenchReport is the JSON document written to BENCH_runtime.json.
type RuntimeBenchReport struct {
	GOOS         string            `json:"goos"`
	GOARCH       string            `json:"goarch"`
	CPUs         int               `json:"cpus"`
	WorkerBudget int               `json:"worker_budget"`
	Generated    string            `json:"generated"`
	Model        string            `json:"model"`
	TrainSamples int               `json:"train_samples"`
	Pairs        int               `json:"interleaved_pairs"`
	Rows         []RuntimeBenchRow `json:"rows"`
	// Speedup is the median over interleaved pairs of the
	// lockstep/FCFS epoch-time ratio, per learner count (> 1 means FCFS
	// is faster; the pairwise median is the drift-robust estimator).
	Speedup map[string]float64 `json:"speedup_fcfs_over_lockstep"`
}

type runtimeBenchEnv struct {
	samples int
	pairs   int
	batch   int
}

func runtimeBenchSetup(quick bool) runtimeBenchEnv {
	if quick {
		return runtimeBenchEnv{samples: 512, pairs: 3, batch: 2}
	}
	return runtimeBenchEnv{samples: 2048, pairs: 15, batch: 2}
}

// RuntimeBenchResult carries the rows plus the pairwise speedups.
type RuntimeBenchResult struct {
	Rows    []RuntimeBenchRow
	Speedup map[string]float64
}

// RuntimeBench times lockstep vs FCFS single-epoch runs on ResNet-32 at
// m ∈ {1,2,4} learners, b=2, τ=2 (see the package comment for why), as
// interleaved pairs.
func RuntimeBench(quick bool) *RuntimeBenchResult {
	env := runtimeBenchSetup(quick)

	oneEpoch := func(sched core.SchedulerMode, m int) (float64, *core.Result) {
		res := core.Train(core.TrainConfig{
			Model: nn.ResNet32, Algo: core.AlgoSMA,
			GPUs: 1, LearnersPerGPU: m, BatchPerLearner: env.batch,
			Momentum: 0.9, LocalMomentum: 0.9, Tau: runtimeBenchTau,
			MaxEpochs: 1, Seed: 1,
			TrainSamples: env.samples, TestSamples: 64,
			Scheduler: sched,
		})
		return res.Wall[0].Sec, res
	}

	// Per-scheduler accumulators: epoch times pool across pairs; runtime
	// stats aggregate too (rounds is config-determined and identical every
	// run, waits take the median run, lead the maximum observed), so every
	// column of a row describes all pairs, not the last one.
	type agg struct {
		secs, waits []float64
		rounds      int
		maxLead     int
	}
	observe := func(a *agg, sec float64, res *core.Result) {
		a.secs = append(a.secs, sec)
		a.waits = append(a.waits, float64(res.RuntimeStats.RoundWaits))
		a.rounds = res.RuntimeStats.Rounds
		if res.RuntimeStats.MaxLeadIters > a.maxLead {
			a.maxLead = res.RuntimeStats.MaxLeadIters
		}
	}

	out := &RuntimeBenchResult{Speedup: map[string]float64{}}
	for _, m := range []int{1, 2, 4} {
		var lock, fcfs agg
		var ratios []float64
		for pair := 0; pair < env.pairs; pair++ {
			var l, f float64
			var lr, fr *core.Result
			if pair%2 == 0 {
				l, lr = oneEpoch(core.SchedLockstep, m)
				f, fr = oneEpoch(core.SchedFCFS, m)
			} else {
				f, fr = oneEpoch(core.SchedFCFS, m)
				l, lr = oneEpoch(core.SchedLockstep, m)
			}
			observe(&lock, l, lr)
			observe(&fcfs, f, fr)
			ratios = append(ratios, l/f)
		}
		out.Speedup[fmt.Sprintf("m=%d", m)] = metrics.Median(ratios)

		images := float64((env.samples / env.batch / m) * m * env.batch)
		row := func(sched string, a agg) RuntimeBenchRow {
			med := metrics.Median(a.secs)
			return RuntimeBenchRow{
				Scheduler: sched, Learners: m, Batch: env.batch, Tau: runtimeBenchTau,
				EpochSecMedian: med, EpochSecMin: metrics.Min(a.secs),
				ImagesPerSec: images / med,
				Rounds:       a.rounds,
				RoundWaits:   int(metrics.Median(a.waits)),
				MaxLeadIters: a.maxLead,
			}
		}
		out.Rows = append(out.Rows,
			row(string(core.SchedLockstep), lock),
			row(string(core.SchedFCFS), fcfs))
	}
	return out
}

// PrintRuntimeBench renders the scheduler comparison table.
func PrintRuntimeBench(w io.Writer, r *RuntimeBenchResult) {
	fmt.Fprintf(w, "Task-runtime schedulers, ResNet-32 wall-clock (tau=%d, budget=%d)\n",
		runtimeBenchTau, tensor.WorkerBudget())
	fmt.Fprintf(w, "%-9s %3s %3s %12s %12s %10s %8s %7s %6s\n",
		"sched", "m", "b", "epoch med(s)", "epoch min(s)", "img/s", "rounds", "waits", "lead")
	for _, r := range r.Rows {
		fmt.Fprintf(w, "%-9s %3d %3d %12.3f %12.3f %10.0f %8d %7d %6d\n",
			r.Scheduler, r.Learners, r.Batch, r.EpochSecMedian, r.EpochSecMin,
			r.ImagesPerSec, r.Rounds, r.RoundWaits, r.MaxLeadIters)
	}
	for _, m := range []int{1, 2, 4} {
		if s, ok := r.Speedup[fmt.Sprintf("m=%d", m)]; ok {
			fmt.Fprintf(w, "fcfs speedup m=%d: %.3fx (median of interleaved pairs)\n", m, s)
		}
	}
}

// WriteRuntimeBenchJSON records the result (plus environment) at path.
func WriteRuntimeBenchJSON(path string, r *RuntimeBenchResult, quick bool) error {
	env := runtimeBenchSetup(quick)
	rep := RuntimeBenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs: runtime.NumCPU(), WorkerBudget: tensor.WorkerBudget(),
		Generated:    time.Now().UTC().Format(time.RFC3339),
		Model:        string(nn.ResNet32),
		TrainSamples: env.samples, Pairs: env.pairs,
		Rows:    r.Rows,
		Speedup: r.Speedup,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
