package crossbow

// Serving-plane benchmark (DESIGN.md §11): throughput and latency of the
// dynamically-batched prediction runtime across replica counts and
// micro-batch ceilings. Closed-loop clients (one outstanding request each)
// drive the engine at its natural capacity, so the two claims the design
// makes are directly visible in the record:
//
//   - throughput scales with the replica count until compute saturates, and
//     grows with MaxBatch as the per-batch fixed costs amortise;
//   - p99 request latency stays bounded by MaxDelay plus one batch service
//     time (plus queueing when clients outnumber capacity).
//
// `crossbow-bench -exp serving` records the result in BENCH_serving.json so
// serving PRs can show their effect.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"crossbow/internal/nn"
	"crossbow/internal/serve"
	"crossbow/internal/tensor"
)

// ServingBenchRow is one (replicas, maxBatch) measurement.
type ServingBenchRow struct {
	Replicas int `json:"replicas"`
	MaxBatch int `json:"max_batch"`
	Clients  int `json:"clients"`

	Requests   int64   `json:"requests"`
	Throughput float64 `json:"requests_per_sec"`
	Occupancy  float64 `json:"batch_occupancy"`

	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
	ServiceP99Ms float64 `json:"service_p99_ms"`
	MaxDelayMs   float64 `json:"max_delay_ms"`
	// P99BoundMs is the design bound: MaxDelay + one (p99) batch service
	// time; WithinBound reports whether the measured p99 honoured it.
	P99BoundMs  float64 `json:"p99_bound_ms"`
	WithinBound bool    `json:"p99_within_bound"`
}

// ServingBenchReport is the JSON document written to BENCH_serving.json.
type ServingBenchReport struct {
	GOOS         string            `json:"goos"`
	GOARCH       string            `json:"goarch"`
	CPUs         int               `json:"cpus"`
	WorkerBudget int               `json:"worker_budget"`
	Generated    string            `json:"generated"`
	Model        string            `json:"model"`
	Rows         []ServingBenchRow `json:"rows"`
	// ThroughputGrowth maps "b=N/r=R" to throughput at R replicas
	// relative to 1 replica at the same MaxBatch: > 1 shows replica
	// scaling.
	ThroughputGrowth map[string]float64 `json:"throughput_growth_vs_r1"`
}

type servingBenchEnv struct {
	model    nn.ModelID
	requests int
	replicas []int
	batches  []int
	maxDelay time.Duration
}

func servingBenchSetup(quick bool) servingBenchEnv {
	env := servingBenchEnv{
		model:    nn.ResNet32,
		requests: 2000,
		replicas: []int{1, 2, 4},
		batches:  []int{1, 8, 32},
		maxDelay: 2 * time.Millisecond,
	}
	if quick {
		env.requests = 500
	}
	return env
}

// ServingBenchResult carries the rows plus the replica-scaling summary.
type ServingBenchResult struct {
	Rows   []ServingBenchRow
	Growth map[string]float64
}

// ServingBench drives the prediction runtime with closed-loop clients for
// every (replicas × maxBatch) point and reports throughput and latency.
func ServingBench(quick bool) *ServingBenchResult {
	env := servingBenchSetup(quick)
	out := &ServingBenchResult{Growth: map[string]float64{}}

	// One forward-only model for all points: serving benchmarks measure
	// the runtime, not the weights.
	probe := nn.BuildScaled(env.model, 1, tensor.NewRNG(1))
	params := probe.Init(tensor.NewRNG(2))
	vol := tensor.Volume(probe.InShape)
	sample := make([]float32, vol)
	r := tensor.NewRNG(3)
	for i := range sample {
		sample[i] = float32(r.NormFloat64())
	}

	base := map[int]float64{} // maxBatch → throughput at 1 replica
	for _, replicas := range env.replicas {
		for _, maxBatch := range env.batches {
			row := servingBenchPoint(env, params, sample, replicas, maxBatch)
			out.Rows = append(out.Rows, row)
			if replicas == 1 {
				base[maxBatch] = row.Throughput
			}
			if b := base[maxBatch]; b > 0 {
				out.Growth[fmt.Sprintf("b=%d/r=%d", maxBatch, replicas)] = row.Throughput / b
			}
		}
	}
	return out
}

func servingBenchPoint(env servingBenchEnv, params, sample []float32, replicas, maxBatch int) ServingBenchRow {
	eng, err := serve.New(serve.Config{
		Model:    env.model,
		Params:   append([]float32(nil), params...),
		Replicas: replicas,
		MaxBatch: maxBatch,
		MaxDelay: env.maxDelay,
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	// Closed-loop load at capacity: one client per replica batch slot.
	clients := replicas * maxBatch
	perClient := env.requests / clients
	if perClient < 1 {
		perClient = 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := eng.Predict(sample); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	s := eng.Stats()
	row := ServingBenchRow{
		Replicas: replicas, MaxBatch: maxBatch, Clients: clients,
		Requests:     s.Requests,
		Occupancy:    s.BatchOccupancy,
		P50Ms:        s.P50Ms,
		P99Ms:        s.P99Ms,
		MaxMs:        s.MaxMs,
		ServiceP99Ms: s.ServiceP99Ms,
		MaxDelayMs:   float64(env.maxDelay) / 1e6,
	}
	if wall > 0 {
		row.Throughput = float64(s.Requests) / wall
	}
	// The design bound on p99: a request waits at most MaxDelay for its
	// batch to close, then one batch service time. Closed-loop clients at
	// capacity can additionally queue behind at most one in-flight batch
	// per replica, so the bound includes one more service time.
	row.P99BoundMs = row.MaxDelayMs + 2*row.ServiceP99Ms
	row.WithinBound = row.P99Ms <= row.P99BoundMs
	return row
}

// PrintServingBench renders the serving table.
func PrintServingBench(w io.Writer, r *ServingBenchResult) {
	fmt.Fprintf(w, "Serving plane, ResNet-32 forward (budget=%d workers)\n", tensor.WorkerBudget())
	fmt.Fprintf(w, "%3s %5s %7s %9s %6s %8s %8s %8s %9s %7s\n",
		"r", "batch", "clients", "req/s", "occ", "p50(ms)", "p99(ms)", "svc99", "bound(ms)", "ok")
	for _, row := range r.Rows {
		ok := "yes"
		if !row.WithinBound {
			ok = "NO"
		}
		fmt.Fprintf(w, "%3d %5d %7d %9.0f %6.1f %8.2f %8.2f %8.2f %9.2f %7s\n",
			row.Replicas, row.MaxBatch, row.Clients, row.Throughput, row.Occupancy,
			row.P50Ms, row.P99Ms, row.ServiceP99Ms, row.P99BoundMs, ok)
	}
	// Summarise scaling at the largest swept replica count, per batch size
	// actually present in the rows (not a hardcoded list).
	maxR, batches, seen := 0, []int(nil), map[int]bool{}
	for _, row := range r.Rows {
		if row.Replicas > maxR {
			maxR = row.Replicas
		}
		if !seen[row.MaxBatch] {
			seen[row.MaxBatch] = true
			batches = append(batches, row.MaxBatch)
		}
	}
	for _, b := range batches {
		if g, ok := r.Growth[fmt.Sprintf("b=%d/r=%d", b, maxR)]; ok && maxR > 1 {
			fmt.Fprintf(w, "throughput growth r=1→%d at batch %d: %.2fx\n", maxR, b, g)
		}
	}
}

// WriteServingBenchJSON records the result (plus environment) at path.
func WriteServingBenchJSON(path string, r *ServingBenchResult, quick bool) error {
	env := servingBenchSetup(quick)
	rep := ServingBenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs: runtime.NumCPU(), WorkerBudget: tensor.WorkerBudget(),
		Generated:        time.Now().UTC().Format(time.RFC3339),
		Model:            string(env.model),
		Rows:             r.Rows,
		ThroughputGrowth: r.Growth,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
