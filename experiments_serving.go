package crossbow

// Serving-plane benchmark (DESIGN.md §11): throughput and latency of the
// dynamically-batched prediction runtime across replica counts and
// micro-batch ceilings. Closed-loop clients (one outstanding request each)
// drive the engine at its natural capacity, so the two claims the design
// makes are directly visible in the record:
//
//   - throughput scales with the replica count until compute saturates, and
//     grows with MaxBatch as the per-batch fixed costs amortise;
//   - p99 request latency stays bounded by MaxDelay plus one batch service
//     time (plus queueing when clients outnumber capacity).
//
// `crossbow-bench -exp serving` records the result in BENCH_serving.json so
// serving PRs can show their effect.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"crossbow/internal/ckpt"
	"crossbow/internal/nn"
	"crossbow/internal/serve"
	"crossbow/internal/tensor"
	"crossbow/internal/transport"
)

// ServingBenchRow is one (replicas, maxBatch) measurement.
type ServingBenchRow struct {
	Replicas int `json:"replicas"`
	MaxBatch int `json:"max_batch"`
	Clients  int `json:"clients"`

	Requests   int64   `json:"requests"`
	Throughput float64 `json:"requests_per_sec"`
	Occupancy  float64 `json:"batch_occupancy"`

	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
	ServiceP99Ms float64 `json:"service_p99_ms"`
	MaxDelayMs   float64 `json:"max_delay_ms"`
	// P99BoundMs is the design bound: MaxDelay + one (p99) batch service
	// time; WithinBound reports whether the measured p99 honoured it.
	P99BoundMs  float64 `json:"p99_bound_ms"`
	WithinBound bool    `json:"p99_within_bound"`
}

// ServingPolicyRow is one open-loop measurement of a batching policy at an
// offered load: a fixed MaxBatch/MaxDelay configuration or the SLO-driven
// adaptive controller (DESIGN.md §16). The sweep is the record behind the
// batch-32 regression fix: the adaptive policy must serve at least what the
// best fixed policy serves at every load point, while holding its p99 SLO
// wherever it admits the load.
type ServingPolicyRow struct {
	Policy      string  `json:"policy"` // "fixed-8", "fixed-32", "adaptive-slo"
	OfferedRate float64 `json:"offered_req_per_sec"`
	Throughput  float64 `json:"served_req_per_sec"`
	Shed        int64   `json:"shed"`
	P99Ms       float64 `json:"p99_ms"`
	SLOMs       float64 `json:"slo_ms"`
	// SettledMaxBatch is the adaptive controller's final batch ceiling
	// (zero on fixed-policy rows).
	SettledMaxBatch int  `json:"settled_max_batch,omitempty"`
	SLOMet          bool `json:"p99_within_slo"`
}

// ServingDeltaStats records delta snapshot distribution economics over a
// real loopback feed: a one-layer update must ship a small fraction of the
// full snapshot's bytes.
type ServingDeltaStats struct {
	FullBytes  int64   `json:"full_snapshot_bytes"`
	DeltaBytes int64   `json:"one_layer_delta_bytes"`
	Ratio      float64 `json:"delta_to_full_ratio"`
}

// ServingBenchReport is the JSON document written to BENCH_serving.json.
type ServingBenchReport struct {
	GOOS         string            `json:"goos"`
	GOARCH       string            `json:"goarch"`
	CPUs         int               `json:"cpus"`
	WorkerBudget int               `json:"worker_budget"`
	Generated    string            `json:"generated"`
	Model        string            `json:"model"`
	Rows         []ServingBenchRow `json:"rows"`
	// ThroughputGrowth maps "b=N/r=R" to throughput at R replicas
	// relative to 1 replica at the same MaxBatch: > 1 shows replica
	// scaling.
	ThroughputGrowth map[string]float64 `json:"throughput_growth_vs_r1"`
	// PolicyRows is the adaptive-vs-fixed open-loop load sweep;
	// AdaptiveDominatesFixed8 summarises it: at every load point the
	// adaptive policy served at least (within 2% of) what fixed batch-8 —
	// the best static point on this machine — served.
	PolicyRows              []ServingPolicyRow `json:"policy_rows,omitempty"`
	AdaptiveDominatesFixed8 bool               `json:"adaptive_dominates_fixed8"`
	// Delta records delta snapshot distribution economics.
	Delta *ServingDeltaStats `json:"delta_distribution,omitempty"`
}

type servingBenchEnv struct {
	model    nn.ModelID
	requests int
	replicas []int
	batches  []int
	maxDelay time.Duration
}

func servingBenchSetup(quick bool) servingBenchEnv {
	env := servingBenchEnv{
		model:    nn.ResNet32,
		requests: 2000,
		replicas: []int{1, 2, 4},
		batches:  []int{1, 8, 32},
		maxDelay: 2 * time.Millisecond,
	}
	if quick {
		env.requests = 500
	}
	return env
}

// ServingBenchResult carries the rows plus the replica-scaling summary.
type ServingBenchResult struct {
	Rows       []ServingBenchRow
	Growth     map[string]float64
	PolicyRows []ServingPolicyRow
	Dominates  bool
	Delta      *ServingDeltaStats
}

// ServingBench drives the prediction runtime with closed-loop clients for
// every (replicas × maxBatch) point and reports throughput and latency.
func ServingBench(quick bool) *ServingBenchResult {
	env := servingBenchSetup(quick)
	out := &ServingBenchResult{Growth: map[string]float64{}}

	// One forward-only model for all points: serving benchmarks measure
	// the runtime, not the weights.
	probe := nn.BuildScaled(env.model, 1, tensor.NewRNG(1))
	params := probe.Init(tensor.NewRNG(2))
	vol := tensor.Volume(probe.InShape)
	sample := make([]float32, vol)
	r := tensor.NewRNG(3)
	for i := range sample {
		sample[i] = float32(r.NormFloat64())
	}

	base := map[int]float64{} // maxBatch → throughput at 1 replica
	for _, replicas := range env.replicas {
		for _, maxBatch := range env.batches {
			row := servingBenchPoint(env, params, sample, replicas, maxBatch)
			out.Rows = append(out.Rows, row)
			if replicas == 1 {
				base[maxBatch] = row.Throughput
			}
			if b := base[maxBatch]; b > 0 {
				out.Growth[fmt.Sprintf("b=%d/r=%d", maxBatch, replicas)] = row.Throughput / b
			}
		}
	}

	// Policy sweep: adaptive vs fixed under open-loop load. The fixed
	// batch-8 closed-loop row above is this machine's best static capacity;
	// the sweep offers fractions of it (and one overload point) to each
	// policy and records who serves what.
	cap8 := base[8]
	if cap8 > 0 {
		dur := 1600 * time.Millisecond
		if quick {
			dur = 900 * time.Millisecond
		}
		const sweepSLO = 10 * time.Millisecond
		out.Dominates = true
		for _, frac := range []float64{0.2, 0.5, 0.8, 1.1} {
			rate := cap8 * frac
			f8 := servingPolicyPoint("fixed-8", env, params, sample, rate, dur, sweepSLO, 8, false)
			f32 := servingPolicyPoint("fixed-32", env, params, sample, rate, dur, sweepSLO, 32, false)
			ad := servingPolicyPoint("adaptive-slo", env, params, sample, rate, dur, sweepSLO, 32, true)
			out.PolicyRows = append(out.PolicyRows, f8, f32, ad)
			if ad.Throughput < f8.Throughput*0.98 {
				out.Dominates = false
			}
		}
	}
	out.Delta = servingDeltaPoint(env.model, params)
	return out
}

// servingPolicyPoint offers rate req/s to a fresh engine for dur and
// records what it served. Requests arrive open-loop (token-paced, shed when
// the service cannot keep up), so overload shows as shed volume and bounded
// admitted latency rather than client backpressure.
func servingPolicyPoint(policy string, env servingBenchEnv, params, sample []float32,
	rate float64, dur time.Duration, slo time.Duration, maxBatch int, adaptive bool) ServingPolicyRow {
	cfg := serve.Config{
		Model:      env.model,
		Params:     append([]float32(nil), params...),
		MaxBatch:   maxBatch,
		MaxDelay:   env.maxDelay,
		ShedOnFull: true,
	}
	if adaptive {
		cfg.MaxDelay = 0
		cfg.SLO = slo
		cfg.ControlEvery = 40 * time.Millisecond
	}
	eng, err := serve.New(cfg)
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	tokens := make(chan struct{}, 256)
	var completed, shed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range tokens {
				if _, err := eng.Predict(sample); err != nil {
					shed.Add(1)
				} else {
					completed.Add(1)
				}
			}
		}()
	}
	// Token-paced generator: every tick it tops the emitted count up to the
	// schedule, dropping (as a shed) when all workers are stuck — the
	// open-loop client's impatience.
	start := time.Now()
	emitted := 0.0
	for {
		elapsed := time.Since(start)
		if elapsed >= dur {
			break
		}
		for want := rate * elapsed.Seconds(); emitted < want; emitted++ {
			select {
			case tokens <- struct{}{}:
			default:
				shed.Add(1)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(tokens)
	wg.Wait()
	wall := time.Since(start).Seconds()

	s := eng.Stats()
	row := ServingPolicyRow{
		Policy:      policy,
		OfferedRate: rate,
		Shed:        shed.Load(),
		P99Ms:       s.P99Ms,
		SLOMs:       float64(slo) / 1e6,
	}
	if wall > 0 {
		row.Throughput = float64(completed.Load()) / wall
	}
	if adaptive {
		row.SettledMaxBatch = s.CurMaxBatch
	}
	row.SLOMet = row.P99Ms <= row.SLOMs
	return row
}

// servingDeltaPoint measures delta distribution economics on a real
// loopback feed: one cold follower takes the base as a full snapshot, then
// a one-layer update (a contiguous 5% of the vector) as a delta.
func servingDeltaPoint(model nn.ModelID, params []float32) *ServingDeltaStats {
	pub, err := transport.NewPublisher(transport.PublisherConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		return nil
	}
	defer pub.Close()
	fol, err := transport.Follow(transport.FollowerConfig{Addr: pub.Addr()})
	if err != nil {
		return nil
	}
	defer fol.Close()

	// The follower must be attached before the base is published, or its
	// hello would find round 2 current and take it as a full — measuring
	// nothing.
	pub.WaitSubscribers(1, 5*time.Second)
	base := append([]float32(nil), params...)
	if err := pub.Publish(&ckpt.Checkpoint{
		Model: string(model), SnapshotRound: 1, Params: base,
	}); err != nil {
		return nil
	}
	fol.WaitRound(1, 5*time.Second)

	next := append([]float32(nil), params...)
	lo, n := len(next)/2, len(next)/20
	for i := lo; i < lo+n && i < len(next); i++ {
		next[i] += 0.5
	}
	if err := pub.Publish(&ckpt.Checkpoint{
		Model: string(model), SnapshotRound: 2, Params: next,
	}); err != nil {
		return nil
	}
	fol.WaitRound(2, 5*time.Second)

	fs := fol.Stats()
	d := &ServingDeltaStats{FullBytes: fs.FullBytes, DeltaBytes: fs.DeltaBytes}
	if d.FullBytes > 0 {
		d.Ratio = float64(d.DeltaBytes) / float64(d.FullBytes)
	}
	return d
}

func servingBenchPoint(env servingBenchEnv, params, sample []float32, replicas, maxBatch int) ServingBenchRow {
	eng, err := serve.New(serve.Config{
		Model:    env.model,
		Params:   append([]float32(nil), params...),
		Replicas: replicas,
		MaxBatch: maxBatch,
		MaxDelay: env.maxDelay,
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	// Closed-loop load at capacity: one client per replica batch slot.
	clients := replicas * maxBatch
	perClient := env.requests / clients
	if perClient < 1 {
		perClient = 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := eng.Predict(sample); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	s := eng.Stats()
	row := ServingBenchRow{
		Replicas: replicas, MaxBatch: maxBatch, Clients: clients,
		Requests:     s.Requests,
		Occupancy:    s.BatchOccupancy,
		P50Ms:        s.P50Ms,
		P99Ms:        s.P99Ms,
		MaxMs:        s.MaxMs,
		ServiceP99Ms: s.ServiceP99Ms,
		MaxDelayMs:   float64(env.maxDelay) / 1e6,
	}
	if wall > 0 {
		row.Throughput = float64(s.Requests) / wall
	}
	// The design bound on p99: a request waits at most MaxDelay for its
	// batch to close, then one batch service time. Closed-loop clients at
	// capacity can additionally queue behind at most one in-flight batch
	// per replica, so the bound includes one more service time.
	row.P99BoundMs = row.MaxDelayMs + 2*row.ServiceP99Ms
	row.WithinBound = row.P99Ms <= row.P99BoundMs
	return row
}

// PrintServingBench renders the serving table.
func PrintServingBench(w io.Writer, r *ServingBenchResult) {
	fmt.Fprintf(w, "Serving plane, ResNet-32 forward (budget=%d workers)\n", tensor.WorkerBudget())
	fmt.Fprintf(w, "%3s %5s %7s %9s %6s %8s %8s %8s %9s %7s\n",
		"r", "batch", "clients", "req/s", "occ", "p50(ms)", "p99(ms)", "svc99", "bound(ms)", "ok")
	for _, row := range r.Rows {
		ok := "yes"
		if !row.WithinBound {
			ok = "NO"
		}
		fmt.Fprintf(w, "%3d %5d %7d %9.0f %6.1f %8.2f %8.2f %8.2f %9.2f %7s\n",
			row.Replicas, row.MaxBatch, row.Clients, row.Throughput, row.Occupancy,
			row.P50Ms, row.P99Ms, row.ServiceP99Ms, row.P99BoundMs, ok)
	}
	// Summarise scaling at the largest swept replica count, per batch size
	// actually present in the rows (not a hardcoded list).
	maxR, batches, seen := 0, []int(nil), map[int]bool{}
	for _, row := range r.Rows {
		if row.Replicas > maxR {
			maxR = row.Replicas
		}
		if !seen[row.MaxBatch] {
			seen[row.MaxBatch] = true
			batches = append(batches, row.MaxBatch)
		}
	}
	for _, b := range batches {
		if g, ok := r.Growth[fmt.Sprintf("b=%d/r=%d", b, maxR)]; ok && maxR > 1 {
			fmt.Fprintf(w, "throughput growth r=1→%d at batch %d: %.2fx\n", maxR, b, g)
		}
	}
	if len(r.PolicyRows) > 0 {
		fmt.Fprintf(w, "\nBatching policies under open-loop load (SLO %.0fms)\n", r.PolicyRows[0].SLOMs)
		fmt.Fprintf(w, "%-13s %9s %9s %7s %8s %6s %4s\n",
			"policy", "offered/s", "served/s", "shed", "p99(ms)", "batch", "slo")
		for _, row := range r.PolicyRows {
			slo := "ok"
			if !row.SLOMet {
				slo = "NO"
			}
			batch := "-"
			if row.SettledMaxBatch > 0 {
				batch = fmt.Sprintf("%d", row.SettledMaxBatch)
			}
			fmt.Fprintf(w, "%-13s %9.0f %9.0f %7d %8.2f %6s %4s\n",
				row.Policy, row.OfferedRate, row.Throughput, row.Shed, row.P99Ms, batch, slo)
		}
		verdict := "dominates"
		if !r.Dominates {
			verdict = "DOES NOT dominate"
		}
		fmt.Fprintf(w, "adaptive %s fixed batch-8 across the sweep\n", verdict)
	}
	if r.Delta != nil {
		fmt.Fprintf(w, "delta distribution: one-layer update %d B vs full %d B (%.1f%%)\n",
			r.Delta.DeltaBytes, r.Delta.FullBytes, 100*r.Delta.Ratio)
	}
}

// WriteServingBenchJSON records the result (plus environment) at path.
func WriteServingBenchJSON(path string, r *ServingBenchResult, quick bool) error {
	env := servingBenchSetup(quick)
	rep := ServingBenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs: runtime.NumCPU(), WorkerBudget: tensor.WorkerBudget(),
		Generated:        time.Now().UTC().Format(time.RFC3339),
		Model:            string(env.model),
		Rows:             r.Rows,
		ThroughputGrowth: r.Growth,

		PolicyRows:              r.PolicyRows,
		AdaptiveDominatesFixed8: r.Dominates,
		Delta:                   r.Delta,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
