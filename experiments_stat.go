package crossbow

import (
	"fmt"
	"io"

	"crossbow/internal/core"
	"crossbow/internal/metrics"
)

// Fig3Row is one point of Figure 3: statistical efficiency of the baseline
// as the batch size grows.
type Fig3Row struct {
	ImagesPerUpdate int // the aggregate batch size
	Epochs          int // epochs to the accuracy target
	Reached         bool
}

// Figure3 reproduces the statistical-efficiency experiment: S-SGD on
// ResNet-32, epochs to the target accuracy as a function of images
// processed per model update. Larger batches need more epochs, super-
// linearly beyond a threshold. quick sweeps fewer batch sizes with a lower
// epoch cap.
func Figure3(quick bool) []Fig3Row {
	batches := []int{16, 32, 64, 128, 256}
	maxEpochs := 60
	if quick {
		batches = []int{16, 64, 256}
		maxEpochs = 40
	}
	target := AccuracyTargets[ResNet32]
	var rows []Fig3Row
	for _, b := range batches {
		// One learner; aggregate batch = per-learner batch.
		res := core.Train(core.TrainConfig{
			Model: ResNet32, Algo: core.AlgoSSGD,
			GPUs: 1, LearnersPerGPU: 1, BatchPerLearner: b,
			Momentum: 0.9, MaxEpochs: maxEpochs, TargetAcc: target, Seed: 1,
		})
		rows = append(rows, Fig3Row{
			ImagesPerUpdate: b,
			Epochs:          epochsOr(res.EpochsToTarget, maxEpochs),
			Reached:         res.EpochsToTarget > 0,
		})
	}
	return rows
}

func epochsOr(e, cap int) int {
	if e > 0 {
		return e
	}
	return cap
}

// PrintFigure3 writes the batch-size/epochs series.
func PrintFigure3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintf(w, "Figure 3 — epochs to %.0f%% accuracy vs images per update (ResNet-32, S-SGD)\n",
		AccuracyTargets[ResNet32]*100)
	fmt.Fprintf(w, "%-16s %7s %8s\n", "images/update", "epochs", "reached")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16d %7d %8v\n", r.ImagesPerUpdate, r.Epochs, r.Reached)
	}
}

// Fig9Curve is one model's baseline convergence series (Figure 9), used to
// derive the accuracy targets of every TTA experiment.
type Fig9Curve struct {
	Model  Model
	Target float64
	Series []metrics.EpochPoint
	Best   float64
}

// Figure9 reproduces the baseline convergence study: S-SGD per model with
// the §5.1 hyper-parameters (step-decay learning-rate schedules included),
// reporting test accuracy over epochs. The per-model targets in
// AccuracyTargets are calibrated from these curves, mirroring how the
// paper picks thresholds from TensorFlow's best accuracy.
func Figure9(quick bool) []Fig9Curve {
	epochs := map[Model]int{LeNet: 30, ResNet32: 30, VGG16: 40, ResNet50: 30}
	if quick {
		epochs = map[Model]int{LeNet: 12, ResNet32: 12, VGG16: 15, ResNet50: 12}
	}
	var out []Fig9Curve
	for _, id := range Models {
		cfg := core.TrainConfig{
			Model: id, Algo: core.AlgoSSGD,
			GPUs: 1, LearnersPerGPU: 1, BatchPerLearner: 16,
			Momentum: 0.9, MaxEpochs: epochs[id], Seed: 1,
		}
		// §5.1 schedules, scaled to our shorter runs: ResNet-32 drops the
		// rate ×0.1 at 2/3 and 9/10 of training; VGG halves it periodically.
		switch id {
		case ResNet32:
			cfg.Schedule = core.StepDecay(0.1, epochs[id]*2/3, epochs[id]*9/10)
		case VGG16:
			cfg.Schedule = core.PeriodicDecay(0.5, epochs[id]/3)
		}
		res := core.Train(cfg)
		out = append(out, Fig9Curve{
			Model:  id,
			Target: AccuracyTargets[id],
			Series: res.Series,
			Best:   res.FinalAccuracy,
		})
	}
	return out
}

// PrintFigure9 writes each model's accuracy-over-epochs series.
func PrintFigure9(w io.Writer, curves []Fig9Curve) {
	fmt.Fprintf(w, "Figure 9 — baseline convergence over epochs (S-SGD)\n")
	for _, c := range curves {
		fmt.Fprintf(w, "%s (target %.0f%%, best %.1f%%):", c.Model, c.Target*100, c.Best*100)
		for _, p := range c.Series {
			fmt.Fprintf(w, " %.2f", p.TestAcc)
		}
		fmt.Fprintln(w)
	}
}
