package crossbow

import (
	"fmt"
	"io"

	"crossbow/internal/core"
	"crossbow/internal/engine"
	"crossbow/internal/metrics"
	"crossbow/internal/nn"
)

// System names the three configurations Figure 10 compares.
type System string

// The compared systems.
const (
	SysTensorFlow System = "tensorflow" // S-SGD baseline
	SysCrossbowM1 System = "crossbow-m1"
	SysCrossbow   System = "crossbow" // best m per GPU
)

// SystemRun is one (system, g) measurement composing both planes.
type SystemRun struct {
	System           System
	Model            Model
	GPUs             int
	PaperBatch       int // per-GPU/per-learner batch at paper scale (hardware plane)
	StatBatch        int // per-learner batch in the statistical plane
	M                int
	ThroughputImgSec float64
	EpochSeconds     float64
	EpochsToTarget   int
	Reached          bool
	TTASeconds       float64
	Series           []metrics.EpochPoint
}

// runSystem executes one system configuration end to end.
func runSystem(model Model, sys System, g, paperBatch, m, maxEpochs int, target float64) SystemRun {
	spec := nn.FullSpec(model)
	run := SystemRun{
		System: sys, Model: model, GPUs: g,
		PaperBatch: paperBatch, StatBatch: statBatch(paperBatch), M: m,
	}
	// Hardware plane at paper scale.
	if sys == SysTensorFlow {
		run.ThroughputImgSec = engine.NewSSGD(engine.SSGDConfig{
			Model: model, GPUs: g, AggregateBatch: paperBatch * g,
		}).Throughput(25)
	} else {
		run.ThroughputImgSec = engine.New(engine.Config{
			Model: model, GPUs: g, LearnersPerGPU: m, Batch: paperBatch, Overlap: true,
		}).Throughput(25)
	}
	if run.ThroughputImgSec > 0 {
		run.EpochSeconds = float64(spec.TrainSamples) / run.ThroughputImgSec
	}

	// Statistical plane on the scaled model.
	algo := core.AlgoSMA
	if sys == SysTensorFlow {
		algo = core.AlgoSSGD
	}
	k := g * m
	samples := 2048
	if need := 8 * k * run.StatBatch; need > samples {
		samples = need
		if samples > 8192 {
			samples = 8192
		}
	}
	res := core.Train(core.TrainConfig{
		Model: model, Algo: algo,
		GPUs: g, LearnersPerGPU: m, BatchPerLearner: run.StatBatch,
		Momentum: 0.9, LocalMomentum: 0.9, // the released system's solver momentum
		MaxEpochs: maxEpochs, TargetAcc: target, Seed: 1,
		TrainSamples: samples, EpochSeconds: run.EpochSeconds,
	})
	run.Series = res.Series
	run.Reached = res.EpochsToTarget > 0
	run.EpochsToTarget = epochsOr(res.EpochsToTarget, maxEpochs)
	run.TTASeconds = float64(run.EpochsToTarget) * run.EpochSeconds
	return run
}

// fig10Config holds the per-model batch/m settings the paper annotates on
// Figure 10's bars (per-GPU batch for TensorFlow; per-learner batch and
// best m for Crossbow).
type fig10Config struct {
	gpus []int
	tf   map[int]int
	cb1  map[int]int
	cbB  map[int][2]int // g → {batch, m}
}

var fig10Configs = map[Model]fig10Config{
	ResNet32: {
		gpus: []int{1, 2, 4, 8},
		tf:   map[int]int{1: 512, 2: 256, 4: 256, 8: 128},
		cb1:  map[int]int{1: 256, 2: 256, 4: 256, 8: 64},
		cbB:  map[int][2]int{1: {64, 4}, 2: {64, 3}, 4: {64, 2}, 8: {64, 2}},
	},
	VGG16: {
		gpus: []int{1, 2, 4, 8},
		tf:   map[int]int{1: 256, 2: 128, 4: 64, 8: 32},
		cb1:  map[int]int{1: 256, 2: 256, 4: 256, 8: 256},
		cbB:  map[int][2]int{1: {256, 3}, 2: {256, 2}, 4: {128, 2}, 8: {256, 2}},
	},
	ResNet50: {
		gpus: []int{8},
		tf:   map[int]int{8: 32},
		cb1:  map[int]int{8: 32},
		cbB:  map[int][2]int{8: {16, 2}},
	},
	LeNet: {
		gpus: []int{1},
		tf:   map[int]int{1: 4},
		cb1:  map[int]int{1: 4},
		cbB:  map[int][2]int{1: {2, 2}},
	},
}

// Figure10 reproduces the headline time-to-accuracy comparison for one
// benchmark model: TensorFlow vs Crossbow (m=1) vs Crossbow (best m) over
// the GPU counts the paper evaluates, with the paper's annotated batch
// sizes.
func Figure10(model Model, quick bool) []SystemRun {
	cfg := fig10Configs[model]
	maxEpochs := 60
	if quick {
		maxEpochs = 25
	}
	target := AccuracyTargets[model]
	var out []SystemRun
	for _, g := range cfg.gpus {
		out = append(out, runSystem(model, SysTensorFlow, g, cfg.tf[g], 1, maxEpochs, target))
		out = append(out, runSystem(model, SysCrossbowM1, g, cfg.cb1[g], 1, maxEpochs, target))
		bm := cfg.cbB[g]
		out = append(out, runSystem(model, SysCrossbow, g, bm[0], bm[1], maxEpochs, target))
	}
	return out
}

// PrintFigure10 writes the TTA bars with the paper's annotations.
func PrintFigure10(w io.Writer, model Model, runs []SystemRun) {
	fmt.Fprintf(w, "Figure 10 — TTA(%.0f%%) for %s\n", AccuracyTargets[model]*100, model)
	fmt.Fprintf(w, "%4s %-12s %6s %3s %10s %8s %12s %8s\n",
		"gpus", "system", "batch", "m", "TTA(s)", "epochs", "imgs/s", "reached")
	for _, r := range runs {
		fmt.Fprintf(w, "%4d %-12s %6d %3d %10.1f %8d %12.0f %8v\n",
			r.GPUs, r.System, r.PaperBatch, r.M, r.TTASeconds, r.EpochsToTarget,
			r.ThroughputImgSec, r.Reached)
	}
}

// Figure11 reproduces the accuracy-over-time curves for a model at a given
// GPU count: the three systems' convergence against simulated wall-clock.
func Figure11(model Model, gpus int, quick bool) []SystemRun {
	cfg := fig10Configs[model]
	maxEpochs := 40
	if quick {
		maxEpochs = 20
	}
	target := AccuracyTargets[model]
	bm := cfg.cbB[gpus]
	return []SystemRun{
		runSystem(model, SysTensorFlow, gpus, cfg.tf[gpus], 1, maxEpochs, target),
		runSystem(model, SysCrossbowM1, gpus, cfg.cb1[gpus], 1, maxEpochs, target),
		runSystem(model, SysCrossbow, gpus, bm[0], bm[1], maxEpochs, target),
	}
}

// PrintFigure11 writes accuracy-vs-time series.
func PrintFigure11(w io.Writer, model Model, gpus int, runs []SystemRun) {
	fmt.Fprintf(w, "Figure 11 — test accuracy over time (%s, g=%d)\n", model, gpus)
	for _, r := range runs {
		fmt.Fprintf(w, "%-12s:", r.System)
		for _, p := range r.Series {
			fmt.Fprintf(w, " (%.0fs, %.2f)", p.TimeSec, p.TestAcc)
		}
		fmt.Fprintln(w)
	}
}

// Fig1213Row is one bar group of Figures 12/13: hardware efficiency,
// statistical efficiency and TTA for Crossbow m ∈ {1,2,4} and the baseline.
type Fig1213Row struct {
	Label            string
	ThroughputImgSec float64
	EpochsToTarget   int
	TTASeconds       float64
	Reached          bool
}

// Figure1213 reproduces the efficiency trade-off study on ResNet-32 with
// the paper's b=64 (statistical plane: b=16): gpus=1 gives Figure 12,
// gpus=8 Figure 13.
func Figure1213(gpus int, quick bool) []Fig1213Row {
	maxEpochs := 50
	if quick {
		maxEpochs = 25
	}
	target := AccuracyTargets[ResNet32]
	var rows []Fig1213Row
	for _, m := range []int{1, 2, 4} {
		r := runSystem(ResNet32, SysCrossbow, gpus, 64, m, maxEpochs, target)
		rows = append(rows, Fig1213Row{
			Label:            fmt.Sprintf("crossbow m=%d", m),
			ThroughputImgSec: r.ThroughputImgSec,
			EpochsToTarget:   r.EpochsToTarget,
			TTASeconds:       r.TTASeconds,
			Reached:          r.Reached,
		})
	}
	tf := runSystem(ResNet32, SysTensorFlow, gpus, 64, 1, maxEpochs, target)
	rows = append(rows, Fig1213Row{
		Label:            "tensorflow",
		ThroughputImgSec: tf.ThroughputImgSec,
		EpochsToTarget:   tf.EpochsToTarget,
		TTASeconds:       tf.TTASeconds,
		Reached:          tf.Reached,
	})
	return rows
}

// PrintFigure1213 writes the three-panel summary.
func PrintFigure1213(w io.Writer, gpus int, rows []Fig1213Row) {
	fig := 12
	if gpus == 8 {
		fig = 13
	}
	fmt.Fprintf(w, "Figure %d — hardware vs statistical efficiency (ResNet-32, g=%d, b=64)\n", fig, gpus)
	fmt.Fprintf(w, "%-14s %12s %8s %10s %8s\n", "config", "imgs/s", "epochs", "TTA(s)", "reached")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12.0f %8d %10.1f %8v\n",
			r.Label, r.ThroughputImgSec, r.EpochsToTarget, r.TTASeconds, r.Reached)
	}
}

// Figure14 reproduces the learner-sweep validation of auto-tuning: TTA and
// throughput improvement against m, showing the throughput plateau predicts
// the TTA optimum. model is ResNet-32 (b=64) or VGG (b=256) in the paper.
func Figure14(model Model, gpus int, quick bool) []Fig14Row {
	paperBatch := 64
	if model == VGG16 {
		paperBatch = 256
	}
	maxM := 5
	maxEpochs := 50
	if quick {
		maxM = 4
		maxEpochs = 25
	}
	target := AccuracyTargets[model]
	var rows []Fig14Row
	var base float64
	for m := 1; m <= maxM; m++ {
		r := runSystem(model, SysCrossbow, gpus, paperBatch, m, maxEpochs, target)
		if m == 1 {
			base = r.ThroughputImgSec
		}
		rows = append(rows, Fig14Row{
			M:                 m,
			ThroughputImgSec:  r.ThroughputImgSec,
			ThroughputGainPct: 100 * (r.ThroughputImgSec/base - 1),
			TTASeconds:        r.TTASeconds,
			EpochsToTarget:    r.EpochsToTarget,
		})
	}
	return rows
}

// PrintFigure14 writes the m-sweep.
func PrintFigure14(w io.Writer, model Model, gpus int, rows []Fig14Row) {
	fmt.Fprintf(w, "Figure 14 — TTA and throughput vs learners per GPU (%s, g=%d)\n", model, gpus)
	fmt.Fprintf(w, "%3s %12s %10s %10s %8s\n", "m", "imgs/s", "gain(%)", "TTA(s)", "epochs")
	for _, r := range rows {
		fmt.Fprintf(w, "%3d %12.0f %10.1f %10.1f %8d\n",
			r.M, r.ThroughputImgSec, r.ThroughputGainPct, r.TTASeconds, r.EpochsToTarget)
	}
}

// Fig15Row compares SMA against EA-SGD at one GPU count.
type Fig15Row struct {
	GPUs            int
	M               int
	SMATTASeconds   float64
	EASGDTTASeconds float64
	SMAEpochs       int
	EASGDEpochs     int
	SMABestAcc      float64
	EASGDBestAcc    float64
}

// Figure15 reproduces the synchronisation-model ablation: SMA vs EA-SGD on
// ResNet-32 with the paper's best m per GPU count; the gap grows with the
// number of learners because momentum on the central average model keeps it
// moving as per-learner variance shrinks. To isolate that momentum term —
// the only difference between the two algorithms — both run with plain-SGD
// learners here (with solver momentum enabled the effect is masked on the
// smoother synthetic task; see EXPERIMENTS.md).
func Figure15(quick bool) []Fig15Row {
	gpus := []int{1, 2, 4, 8}
	if quick {
		gpus = []int{1, 8}
	}
	bestM := map[int]int{1: 4, 2: 3, 4: 2, 8: 2}
	maxEpochs := 60
	if quick {
		maxEpochs = 40
	}
	// Plain-SGD learners converge more slowly than the momentum-solver
	// configuration of the other figures, so this ablation uses a lower
	// target that both algorithms can reach within the epoch budget.
	target := 0.65
	var rows []Fig15Row
	for _, g := range gpus {
		m := bestM[g]
		b := statBatch(64)
		k := g * m
		samples := 2048
		if need := 8 * k * b; need > samples {
			samples = need
			if samples > 8192 {
				samples = 8192
			}
		}
		epochSec := engine.New(engine.Config{
			Model: ResNet32, GPUs: g, LearnersPerGPU: m, Batch: 64, Overlap: true,
		}).EpochSeconds(nn.FullSpec(ResNet32).TrainSamples, 25)
		row := Fig15Row{GPUs: g, M: m}
		for _, algo := range []core.Algorithm{core.AlgoSMA, core.AlgoEASGD} {
			res := core.Train(core.TrainConfig{
				Model: ResNet32, Algo: algo,
				GPUs: g, LearnersPerGPU: m, BatchPerLearner: b,
				Momentum: 0.9, LocalMomentum: 0, // isolate the z-momentum term
				MaxEpochs: maxEpochs, TargetAcc: target, Seed: 1,
				TrainSamples: samples, EpochSeconds: epochSec,
			})
			e := epochsOr(res.EpochsToTarget, maxEpochs)
			if algo == core.AlgoSMA {
				row.SMAEpochs, row.SMATTASeconds = e, float64(e)*epochSec
				row.SMABestAcc = res.FinalAccuracy
			} else {
				row.EASGDEpochs, row.EASGDTTASeconds = e, float64(e)*epochSec
				row.EASGDBestAcc = res.FinalAccuracy
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintFigure15 writes the SMA/EA-SGD comparison.
func PrintFigure15(w io.Writer, rows []Fig15Row) {
	fmt.Fprintf(w, "Figure 15 — SMA vs EA-SGD (ResNet-32, plain-SGD learners)\n")
	fmt.Fprintf(w, "%4s %3s %12s %12s %8s %8s %9s %9s\n",
		"gpus", "m", "SMA TTA(s)", "EASGD TTA(s)", "SMA ep.", "EA ep.", "SMA best", "EA best")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %3d %12.1f %12.1f %8d %8d %8.1f%% %8.1f%%\n",
			r.GPUs, r.M, r.SMATTASeconds, r.EASGDTTASeconds,
			r.SMAEpochs, r.EASGDEpochs, r.SMABestAcc*100, r.EASGDBestAcc*100)
	}
}

// Fig16Row is one synchronisation-period measurement.
type Fig16Row struct {
	Tau              int
	TTASeconds       float64
	EpochsToTarget   int
	ThroughputImgSec float64
	Reached          bool
}

// Figure16 reproduces the synchronisation-frequency trade-off: ResNet-32,
// g=8, m=2; larger τ raises throughput but hurts convergence, so TTA is
// minimised at τ=1.
func Figure16(quick bool) []Fig16Row {
	taus := []int{1, 2, 3, 4}
	maxEpochs := 50
	if quick {
		maxEpochs = 25
	}
	target := AccuracyTargets[ResNet32]
	var rows []Fig16Row
	for _, tau := range taus {
		tp := engine.New(engine.Config{
			Model: ResNet32, GPUs: 8, LearnersPerGPU: 2, Batch: 64,
			Tau: tau, Overlap: true,
		}).Throughput(30)
		epochSec := float64(nn.FullSpec(ResNet32).TrainSamples) / tp
		res := core.Train(core.TrainConfig{
			Model: ResNet32, Algo: core.AlgoSMA,
			GPUs: 8, LearnersPerGPU: 2, BatchPerLearner: statBatch(64),
			Momentum: 0.9, LocalMomentum: 0.9,
			Tau: tau, MaxEpochs: maxEpochs, TargetAcc: target, Seed: 1,
			TrainSamples: 4096, EpochSeconds: epochSec,
		})
		e := epochsOr(res.EpochsToTarget, maxEpochs)
		rows = append(rows, Fig16Row{
			Tau:              tau,
			TTASeconds:       float64(e) * epochSec,
			EpochsToTarget:   e,
			ThroughputImgSec: tp,
			Reached:          res.EpochsToTarget > 0,
		})
	}
	return rows
}

// PrintFigure16 writes the τ trade-off.
func PrintFigure16(w io.Writer, rows []Fig16Row) {
	fmt.Fprintf(w, "Figure 16 — TTA vs synchronisation period (ResNet-32, g=8, m=2)\n")
	fmt.Fprintf(w, "%4s %10s %8s %12s %8s\n", "tau", "TTA(s)", "epochs", "imgs/s", "reached")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %10.1f %8d %12.0f %8v\n",
			r.Tau, r.TTASeconds, r.EpochsToTarget, r.ThroughputImgSec, r.Reached)
	}
}
