package crossbow

import (
	"time"

	"crossbow/internal/ckpt"
	"crossbow/internal/metrics"
	"crossbow/internal/transport"
)

// FeedStats counts a model feed's traffic from one end's point of view —
// full snapshots vs deltas, their payload bytes, and divergence resyncs. See
// ModelPublisher.Stats and Predictor.FeedStats.
type FeedStats = metrics.FeedStats

// ModelPublisher streams published training snapshots to serving replicas
// over TCP (DESIGN.md §16): each Publish fans out to every connected
// follower as a versioned delta against the round the follower already
// holds, falling back to a full snapshot for cold or diverged followers.
// Followers are Predictors started with ServeConfig.Follow (or
// crossbow-serve -follow).
//
// The training side is one callback:
//
//	mp, _ := crossbow.NewModelPublisher(":9090")
//	defer mp.Close()
//	cfg.PublishEvery = 100
//	cfg.OnSnapshot = func(s crossbow.Snapshot) { mp.Publish(s) }
//
// or, equivalently, Config.PublishAddr which wires exactly this up inside
// Train.
type ModelPublisher struct {
	pub *transport.Publisher
}

// NewModelPublisher starts a model feed listening on addr (host:port; an
// empty host binds all interfaces, port 0 picks one — read it back with
// Addr).
func NewModelPublisher(addr string) (*ModelPublisher, error) {
	pub, err := transport.NewPublisher(transport.PublisherConfig{Addr: addr})
	if err != nil {
		return nil, err
	}
	return &ModelPublisher{pub: pub}, nil
}

// Addr returns the listen address, with the real port when 0 was asked for.
func (mp *ModelPublisher) Addr() string { return mp.pub.Addr() }

// Publish fans a snapshot out to every connected follower. Snapshots must
// arrive in strictly increasing Round order (Config.OnSnapshot delivers them
// that way). The snapshot's params are copied; the caller keeps ownership.
func (mp *ModelPublisher) Publish(s Snapshot) error {
	return mp.pub.Publish(&ckpt.Checkpoint{
		Model:         string(s.Model),
		Epoch:         s.Epoch,
		SnapshotRound: int64(s.Round),
		SnapshotIter:  int64(s.Iter),
		Params:        append([]float32(nil), s.Params...),
	})
}

// WaitSubscribers blocks until at least n followers are connected or the
// timeout passes, returning the count seen; handy in tests and scripted
// rollouts that must not publish into the void.
func (mp *ModelPublisher) WaitSubscribers(n int, timeout time.Duration) int {
	return mp.pub.WaitSubscribers(n, timeout)
}

// Stats reports feed traffic so far: snapshots published, deltas vs fulls
// sent, payload bytes of each, live subscriber count, and resyncs.
func (mp *ModelPublisher) Stats() FeedStats { return mp.pub.Stats() }

// Close disconnects all followers and stops the feed. Followers keep
// serving their last applied model and redial with backoff, so a publisher
// restart (with History rounds of overlap) resumes delta service.
func (mp *ModelPublisher) Close() { mp.pub.Close() }
