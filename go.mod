module crossbow

go 1.21
