package autotune

import (
	"sync"

	"crossbow/internal/cluster"
	"crossbow/internal/engine"
	"crossbow/internal/memplan"
	"crossbow/internal/nn"
)

// Config configures a tuning run.
type Config struct {
	Model nn.ModelID
	GPUs  int // per server
	Batch int
	// Servers extends tuning to the cluster plane: above 1, candidate
	// learner counts are measured on the cluster engine, so the chosen m
	// accounts for cross-server synchronisation pressure — a slow
	// interconnect lengthens the synchronised iteration and shifts where
	// the marginal learner stops paying off. Zero or 1 tunes the paper's
	// single-server setting.
	Servers int
	// TauGlobal is the cluster's inter-server averaging period (0 → 1).
	TauGlobal int
	// Net is the cross-server interconnect cost model (zero value selects
	// the cluster default).
	Net cluster.Interconnect
	// Threshold is Alg 2's τ as a fractional throughput improvement: a
	// new learner is kept only if throughput grows by more than this
	// fraction. Zero selects 0.05.
	Threshold float64
	// WindowIters is the number of iterations measured per decision.
	WindowIters int
	// MemoryBytes is per-GPU memory; zero selects 12 GB (the paper's
	// Titan X).
	MemoryBytes int64
	// MaxLearners bounds the search; zero selects 8.
	MaxLearners int
}

func (c *Config) fillDefaults() {
	if c.GPUs == 0 {
		c.GPUs = 1
	}
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.Threshold == 0 {
		c.Threshold = 0.05
	}
	if c.WindowIters == 0 {
		c.WindowIters = 20
	}
	if c.MemoryBytes == 0 {
		c.MemoryBytes = 12 << 30
	}
	if c.MaxLearners == 0 {
		c.MaxLearners = 8
	}
}

// Decision records one Alg 2 step: the learner count tried and the
// throughput observed (images/s).
type Decision struct {
	M          int
	Throughput float64
}

// Result is the outcome of a tuning run.
type Result struct {
	// Chosen is the selected learners-per-GPU.
	Chosen int
	// MemoryCap is the maximum learner count device memory admits.
	MemoryCap int
	// PerLearnerBytes is the memory footprint of one learner (replica +
	// gradient + planned output buffers).
	PerLearnerBytes int64
	// History lists the decisions in order.
	History []Decision
}

// SpecOps converts a full-scale model spec into the planner's neutral
// operator list — the coarse, synthetic §4.5 model (one output buffer per
// operator, no scratch), kept for comparison studies against the live plan.
func SpecOps(spec *nn.ModelSpec) []memplan.SpecOp {
	ops := make([]memplan.SpecOp, len(spec.Ops))
	for i, op := range spec.Ops {
		ops[i] = memplan.SpecOp{Kind: op.Kind, OutElems: op.OutElems}
	}
	return ops
}

// SpecGraph lowers a full-scale spec through the synthetic training-graph
// model (forward chain + backward chain).
func SpecGraph(spec *nn.ModelSpec, batch int) *memplan.Graph {
	return memplan.TrainingGraph(SpecOps(spec), spec.SampleBytes(), batch)
}

// Per-model cache of live footprints: planning a full-scale network is
// cheap but not free, and Tune probes several batch sizes repeatedly.
var (
	footMu    sync.Mutex
	footCache = map[footKey]int64{}
)

type footKey struct {
	model nn.ModelID
	batch int
}

// LearnerFootprint returns the per-learner GPU memory demand for a model at
// a batch size: model weights + gradients (contiguous, §4.4) plus the
// planned task arena (§4.5). The arena size comes from the *live* memory
// plan — the layer library's real dataflow at full scale, conv lowering
// scratch and all — not from the synthetic per-operator graph, so the
// memory cap reflects what a learner actually allocates.
func LearnerFootprint(spec *nn.ModelSpec, batch int) int64 {
	key := footKey{spec.Model, batch}
	footMu.Lock()
	if f, ok := footCache[key]; ok {
		footMu.Unlock()
		return f
	}
	footMu.Unlock()
	net := nn.BuildFull(spec.Model, batch)
	f := 2*int64(net.ParamSize())*4 + net.MemPlan().ArenaBytes()
	footMu.Lock()
	footCache[key] = f
	footMu.Unlock()
	return f
}

// MemoryCap returns how many learners fit in memBytes of device memory,
// reserving one model-sized allocation for the GPU's average model copy.
func MemoryCap(spec *nn.ModelSpec, batch int, memBytes int64) int {
	per := LearnerFootprint(spec, batch)
	avail := memBytes - spec.ParamCount()*4
	if avail < per {
		return 1 // the engine cannot run with zero learners
	}
	return int(avail / per)
}

// Tune runs Algorithm 2 to convergence and returns the chosen learner
// count. Each candidate m is measured over a fresh simulated window (the
// paper resizes the running system; measuring windows on the simulator is
// equivalent and keeps runs independent).
func Tune(cfg Config) *Result {
	cfg.fillDefaults()
	spec := nn.FullSpec(cfg.Model)
	res := &Result{
		MemoryCap:       MemoryCap(spec, cfg.Batch, cfg.MemoryBytes),
		PerLearnerBytes: LearnerFootprint(spec, cfg.Batch),
	}
	maxM := cfg.MaxLearners
	if res.MemoryCap < maxM {
		maxM = res.MemoryCap
	}

	measure := func(m int) float64 {
		if cfg.Servers > 1 {
			return cluster.New(cluster.Config{
				Model: cfg.Model, Servers: cfg.Servers,
				GPUsPerServer: cfg.GPUs, LearnersPerGPU: m,
				Batch: cfg.Batch, TauGlobal: cfg.TauGlobal,
				Overlap: true, Net: cfg.Net,
			}).Throughput(cfg.WindowIters)
		}
		e := engine.New(engine.Config{
			Model: cfg.Model, GPUs: cfg.GPUs, LearnersPerGPU: m,
			Batch: cfg.Batch, Overlap: true,
		})
		return e.Throughput(cfg.WindowIters)
	}

	m := 1
	prev := measure(m)
	res.History = append(res.History, Decision{M: m, Throughput: prev})
	for m < maxM {
		next := measure(m + 1)
		res.History = append(res.History, Decision{M: m + 1, Throughput: next})
		if next-prev > cfg.Threshold*prev {
			// Significant improvement: keep the extra learner (line 6).
			m++
			prev = next
			continue
		}
		// No significant improvement (or a decrease): revert to the
		// previous count (line 7) and stop at the peak.
		break
	}
	res.Chosen = m
	return res
}
