package autotune

import (
	"testing"

	"crossbow/internal/nn"
)

func TestTuneFindsThroughputPeak(t *testing.T) {
	// ResNet-32 at small batch on one GPU: the sweep in the engine tests
	// peaks around m≈4; Alg 2 must land near it (within the tolerance
	// threshold's slack).
	res := Tune(Config{Model: nn.ResNet32, GPUs: 1, Batch: 16})
	if res.Chosen < 2 || res.Chosen > 6 {
		t.Fatalf("chosen m = %d, want the saturation point (2-6); history %v", res.Chosen, res.History)
	}
	// The chosen configuration's throughput must be within a whisker of
	// the best measured.
	var best, chosen float64
	for _, d := range res.History {
		if d.Throughput > best {
			best = d.Throughput
		}
		if d.M == res.Chosen {
			chosen = d.Throughput
		}
	}
	if chosen < 0.85*best {
		t.Fatalf("chosen m=%d throughput %v far below best %v", res.Chosen, chosen, best)
	}
}

func TestTuneLargerBatchNeedsFewerLearners(t *testing.T) {
	small := Tune(Config{Model: nn.ResNet32, GPUs: 1, Batch: 8})
	large := Tune(Config{Model: nn.ResNet32, GPUs: 1, Batch: 128})
	if large.Chosen > small.Chosen {
		t.Fatalf("b=128 chose m=%d > b=8 m=%d; bigger batches should saturate with fewer learners",
			large.Chosen, small.Chosen)
	}
}

func TestTuneHistoryStartsAtOne(t *testing.T) {
	res := Tune(Config{Model: nn.LeNet, GPUs: 1, Batch: 4})
	if len(res.History) == 0 || res.History[0].M != 1 {
		t.Fatalf("history must start at m=1: %v", res.History)
	}
	if res.Chosen < 1 {
		t.Fatalf("chosen = %d", res.Chosen)
	}
}

func TestMemoryCapsLearners(t *testing.T) {
	// ResNet-50 at batch 32 needs several GB per learner (§4.5: ~7.5 GB
	// of outputs before planning); 12 GB fits very few learners.
	spec := nn.FullSpec(nn.ResNet50)
	cap32 := MemoryCap(spec, 32, 12<<30)
	if cap32 > 4 {
		t.Fatalf("ResNet-50 b=32 memory cap = %d, want ≤ 4", cap32)
	}
	cap2 := MemoryCap(spec, 2, 12<<30)
	if cap2 <= cap32 {
		t.Fatalf("smaller batches must fit more learners: b=2 cap %d vs b=32 cap %d", cap2, cap32)
	}
}

func TestMemoryCapAtLeastOne(t *testing.T) {
	if c := MemoryCap(nn.FullSpec(nn.ResNet50), 64, 1<<30); c != 1 {
		t.Fatalf("cap = %d, want 1 (engine cannot run without a learner)", c)
	}
}

func TestLearnerFootprintGrowsWithBatch(t *testing.T) {
	spec := nn.FullSpec(nn.VGG16)
	f8 := LearnerFootprint(spec, 8)
	f64 := LearnerFootprint(spec, 64)
	if f64 <= f8 {
		t.Fatalf("footprint must grow with batch: %d vs %d", f8, f64)
	}
}

func TestTuneRespectsMemoryLimit(t *testing.T) {
	// With a tiny memory budget the tuner must not exceed the cap even if
	// throughput would keep improving.
	spec := nn.FullSpec(nn.ResNet32)
	per := LearnerFootprint(spec, 16)
	budget := spec.ParamCount()*4 + 2*per + per/2 // fits exactly 2 learners
	res := Tune(Config{Model: nn.ResNet32, GPUs: 1, Batch: 16, MemoryBytes: budget})
	if res.MemoryCap != 2 {
		t.Fatalf("memory cap = %d, want 2", res.MemoryCap)
	}
	if res.Chosen > 2 {
		t.Fatalf("chosen m = %d exceeds memory cap 2", res.Chosen)
	}
}

func TestTuneUnderClusterSyncPressure(t *testing.T) {
	// Tuning on a 4-server cluster must run the cluster engine and still
	// land on a valid peak; the single-server and cluster measurements are
	// different schedules, so the histories must differ.
	single := Tune(Config{Model: nn.ResNet32, GPUs: 1, Batch: 16})
	clustered := Tune(Config{Model: nn.ResNet32, GPUs: 1, Batch: 16, Servers: 4})
	if clustered.Chosen < 1 || clustered.Chosen > clustered.MemoryCap {
		t.Fatalf("cluster-tuned m = %d outside [1, %d]", clustered.Chosen, clustered.MemoryCap)
	}
	if len(clustered.History) == 0 || clustered.History[0].M != 1 {
		t.Fatalf("cluster history must start at m=1: %v", clustered.History)
	}
	// A 4-server cluster processes ~4× the images of one server per
	// iteration; the measured throughputs cannot coincide.
	if clustered.History[0].Throughput == single.History[0].Throughput {
		t.Fatal("cluster tuning measured single-server throughput")
	}
}

func TestTuneClusterDeterministic(t *testing.T) {
	cfg := Config{Model: nn.ResNet32, GPUs: 2, Batch: 16, Servers: 2}
	a, b := Tune(cfg), Tune(cfg)
	if a.Chosen != b.Chosen || len(a.History) != len(b.History) {
		t.Fatalf("cluster tuning not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a.History[i], b.History[i])
		}
	}
}
