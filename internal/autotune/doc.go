// Package autotune implements Crossbow's learner auto-tuning (Algorithm 2,
// §3.4/§4.4; DESIGN.md §5): starting from one learner per GPU, it observes
// training throughput and adds learners while throughput keeps improving
// beyond a tolerance threshold, backing off once it decreases — settling
// on the learner count that saturates the hardware, which the paper shows
// coincides with the lowest time-to-accuracy (Figure 14).
//
// Two tuners share the policy: the offline tuner probes throughput on the
// hardware simulator before a run, while Online adapts the learner count
// to measured wall-clock throughput between epochs of a live FCFS run
// (DESIGN.md §9). Learner counts are additionally capped by device memory
// — each learner needs its replica, gradients and planned task buffers, so
// large models admit only a few learners per GPU (§4.5); the cap derives
// from the live memory plan (DESIGN.md §10).
package autotune
