package autotune

import (
	"testing"

	"crossbow/internal/memplan"
	"crossbow/internal/nn"
)

func TestSpecGraphSavings(t *testing.T) {
	// §4.5: the offline plan reduces a learner's footprint by up to 50%
	// because outputs are mostly reused during the backward phase. This is
	// the synthetic spec-level model (one buffer per operator).
	for _, id := range nn.AllModels {
		spec := nn.FullSpec(id)
		g := SpecGraph(spec, 32)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		p, err := memplan.PlanOffline(g)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := memplan.CheckNoLiveOverlap(g, p); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		s := p.Savings(g)
		if s < 0.2 || s > 0.7 {
			t.Errorf("%s: savings = %.2f, want roughly the paper's ≤50%% scale", id, s)
		}
	}
}

func TestSpecGraphResNet50FootprintScale(t *testing.T) {
	// §4.5: ResNet-50 at batch 32 consumes ~7.5 GB for operator outputs.
	g := SpecGraph(nn.FullSpec(nn.ResNet50), 32)
	gb := float64(g.TotalOutBytes()) / 1e9
	if gb < 2 || gb > 20 {
		t.Fatalf("ResNet-50 naive output footprint = %.1f GB, want the ~7.5 GB scale", gb)
	}
}

func TestLearnerFootprintUsesLivePlan(t *testing.T) {
	// The live plan sees the conv lowering scratch (col/dcol/packs) the
	// synthetic per-operator graph cannot, so the real footprint must
	// exceed the synthetic activation estimate — and still stay far below
	// the naive no-reuse layout of the same live graph.
	spec := nn.FullSpec(nn.ResNet32)
	live := LearnerFootprint(spec, 32)

	g := SpecGraph(spec, 32)
	p, err := memplan.PlanOffline(g)
	if err != nil {
		t.Fatal(err)
	}
	synthetic := 2*spec.ParamCount()*4 + p.PlannedBytes()
	if live <= synthetic {
		t.Fatalf("live footprint %d ≤ synthetic %d: lowering scratch missing from the plan", live, synthetic)
	}

	m := nn.BuildFull(spec.Model, 32).MemPlan()
	if m.ArenaBytes() >= m.NaiveBytes() {
		t.Fatalf("live plan does not save: arena %d vs naive %d", m.ArenaBytes(), m.NaiveBytes())
	}
}

func TestLearnerFootprintCached(t *testing.T) {
	spec := nn.FullSpec(nn.LeNet)
	a := LearnerFootprint(spec, 16)
	b := LearnerFootprint(spec, 16)
	if a != b || a <= 0 {
		t.Fatalf("footprint unstable: %d vs %d", a, b)
	}
}
