package autotune

// Online is Algorithm 2 running against *measured* wall-clock throughput:
// instead of probing candidate learner counts on the simulator (Tune), the
// controller is embedded in a real training run and fed one observation per
// measurement window (an epoch of the wall-clock runtime). Starting from
// one learner, it proposes adding a learner while throughput keeps
// improving beyond the tolerance threshold, and reverts to the previous
// count once it stops — the paper's online form, which resizes the running
// system (§3.4/§4.4).
type Online struct {
	threshold float64
	max       int
	warmup    int

	m       int     // learner count currently running
	best    float64 // accepted throughput at m-1 learners (line 5's t_prev)
	probing bool    // true while m is a candidate under measurement
	settled bool
	history []Decision
}

// OnlineConfig configures the online controller.
type OnlineConfig struct {
	// Start is the initial learner count (0 → 1, Alg 2 line 1).
	Start int
	// Max bounds the search (0 → 8, like Tune).
	Max int
	// Threshold is the fractional throughput improvement required to keep
	// a learner (0 → 0.05).
	Threshold float64
	// Warmup is the number of leading observations to discard while caches
	// and the data pipeline fill (0 → 1).
	Warmup int
}

// NewOnline creates the controller; the run must start with M() learners.
func NewOnline(cfg OnlineConfig) *Online {
	if cfg.Start < 1 {
		cfg.Start = 1
	}
	if cfg.Max < 1 {
		cfg.Max = 8
	}
	if cfg.Max < cfg.Start {
		cfg.Max = cfg.Start
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.05
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 1
	}
	return &Online{
		threshold: cfg.Threshold,
		max:       cfg.Max,
		warmup:    cfg.Warmup,
		m:         cfg.Start,
	}
}

// M returns the learner count the run should currently use.
func (o *Online) M() int { return o.m }

// Settled reports whether the search has converged; after that Observe
// keeps returning the chosen count.
func (o *Online) Settled() bool { return o.settled }

// History lists the (learner count, throughput) decisions so far.
func (o *Online) History() []Decision { return o.history }

// Observe feeds the throughput (images/s) measured over the last window at
// M() learners and returns the learner count for the next window. The
// caller resizes the running system whenever the return value differs from
// the count it measured with.
func (o *Online) Observe(throughput float64) int {
	if o.settled {
		return o.m
	}
	if o.warmup > 0 {
		o.warmup--
		return o.m
	}
	o.history = append(o.history, Decision{M: o.m, Throughput: throughput})
	if !o.probing {
		// Baseline measured; propose the first extra learner (line 4).
		o.best = throughput
		if o.m < o.max {
			o.m++
			o.probing = true
		} else {
			o.settled = true
		}
		return o.m
	}
	if throughput-o.best > o.threshold*o.best {
		// Significant improvement: keep the learner, probe the next
		// (line 6).
		o.best = throughput
		if o.m < o.max {
			o.m++
		} else {
			o.settled = true
		}
		return o.m
	}
	// No significant improvement (or a decrease): revert and stop at the
	// peak (line 7).
	o.m--
	o.settled = true
	return o.m
}
