package autotune

import "testing"

// drive feeds the controller a throughput curve indexed by learner count
// and returns the settled count and the number of resizes performed.
func drive(t *testing.T, o *Online, curve map[int]float64, maxWindows int) (chosen, resizes int) {
	t.Helper()
	m := o.M()
	for w := 0; w < maxWindows; w++ {
		next := o.Observe(curve[m])
		if next != m {
			resizes++
			m = next
		}
		if o.Settled() {
			return m, resizes
		}
	}
	t.Fatalf("controller did not settle within %d windows (m=%d)", maxWindows, m)
	return 0, 0
}

// TestOnlineClimbsToPeak: throughput improves through m=3 then regresses;
// the controller must keep 3 learners and report the probe history.
func TestOnlineClimbsToPeak(t *testing.T) {
	o := NewOnline(OnlineConfig{Max: 8, Warmup: 1})
	curve := map[int]float64{1: 100, 2: 150, 3: 190, 4: 185}
	chosen, _ := drive(t, o, curve, 20)
	if chosen != 3 {
		t.Fatalf("chose m=%d, want 3", chosen)
	}
	hist := o.History()
	if len(hist) != 4 {
		t.Fatalf("history has %d decisions, want 4 (1,2,3,4): %+v", len(hist), hist)
	}
	for i, wantM := range []int{1, 2, 3, 4} {
		if hist[i].M != wantM || hist[i].Throughput != curve[wantM] {
			t.Fatalf("decision %d = %+v, want m=%d thr=%v", i, hist[i], wantM, curve[wantM])
		}
	}
	// Settled: further observations do not move the count.
	if next := o.Observe(1); next != 3 {
		t.Fatalf("settled controller moved to %d", next)
	}
}

// TestOnlineFlatCurveStaysAtOne: no extra learner pays off, so the
// controller reverts to a single learner after one probe.
func TestOnlineFlatCurveStaysAtOne(t *testing.T) {
	o := NewOnline(OnlineConfig{Max: 8, Warmup: 1})
	curve := map[int]float64{1: 100, 2: 101}
	chosen, resizes := drive(t, o, curve, 20)
	if chosen != 1 {
		t.Fatalf("chose m=%d, want 1", chosen)
	}
	if resizes != 2 { // 1→2 probe, 2→1 revert
		t.Fatalf("resizes = %d, want 2", resizes)
	}
}

// TestOnlineWarmupDiscarded: warm-up windows produce no decisions, so a
// cold first epoch cannot poison the baseline.
func TestOnlineWarmupDiscarded(t *testing.T) {
	o := NewOnline(OnlineConfig{Max: 4, Warmup: 2})
	if next := o.Observe(1); next != 1 { // cold window, discarded
		t.Fatalf("warm-up observation resized to %d", next)
	}
	if next := o.Observe(2); next != 1 { // second cold window
		t.Fatalf("warm-up observation resized to %d", next)
	}
	if len(o.History()) != 0 {
		t.Fatalf("warm-up recorded decisions: %+v", o.History())
	}
	if next := o.Observe(100); next != 2 { // real baseline → probe m=2
		t.Fatalf("baseline observation moved to %d, want 2", next)
	}
}

// TestOnlineRespectsMax: the search stops at the cap instead of probing
// beyond it.
func TestOnlineRespectsMax(t *testing.T) {
	o := NewOnline(OnlineConfig{Max: 2, Warmup: 1})
	curve := map[int]float64{1: 100, 2: 200}
	chosen, _ := drive(t, o, curve, 10)
	if chosen != 2 {
		t.Fatalf("chose m=%d, want 2 (the cap)", chosen)
	}
}
