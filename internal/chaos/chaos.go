package chaos

import (
	"sync"
	"sync/atomic"
	"time"
)

// Class classifies a frame for fault targeting: most experiments want to
// break the data plane (collective tensor chunks) while leaving liveness
// beacons and the barrier protocol intact — that is exactly the hardest
// failure mode for a collective, a peer that looks alive but stalls.
type Class int

const (
	// Control covers handshake, barrier (Ready/Begin/Abort) and Leave
	// frames.
	Control Class = iota
	// Heartbeat is the liveness beacon.
	Heartbeat
	// Data is a collective tensor chunk.
	Data
	// Snapshot covers the rejoin snapshot request/response pair.
	Snapshot
)

// Op is the fate of one outgoing frame.
type Op int

const (
	// Pass delivers the frame unharmed.
	Pass Op = iota
	// Drop makes the frame vanish on the wire; the sender believes it was
	// delivered.
	Drop
	// Dup delivers the frame twice back to back.
	Dup
	// Corrupt flips one payload bit on the wire (after the checksum was
	// computed), so the receiver's CRC check must catch it.
	Corrupt
	// Truncate writes a partial frame and then resets the connection —
	// a peer dying mid-write.
	Truncate
	// Reset closes the connection instead of writing.
	Reset
)

// Fate is the injector's decision for one outgoing frame.
type Fate struct {
	Op Op
	// Delay is slept before the write. Because frames on one link are
	// serialised, a delay holds back everything queued behind it — a slow
	// link, not per-frame reordering.
	Delay time.Duration
	// Arg parameterises the op: the payload bit to flip for Corrupt, the
	// payload bytes to keep for Truncate.
	Arg int
}

// Config sets the per-frame fault rates. All rates are probabilities in
// [0, 1], evaluated independently per frame in the order Drop, Corrupt,
// Truncate, Reset, Dup (first match wins); Delay composes with any op.
// By default only Data frames are at risk — the control plane stays
// healthy so faults surface as stalls, not as clean disconnects.
type Config struct {
	// Seed makes every per-frame decision deterministic: the fate of the
	// i-th frame on a (from, to, class) link is a pure function of
	// (Seed, from, to, class, i), so a run with the same seed and the
	// same per-link frame counts replays the same faults.
	Seed uint64

	Drop     float64
	Corrupt  float64
	Truncate float64
	Reset    float64
	Dup      float64

	// DelayRate delays a frame by a uniform duration in (0, MaxDelay].
	DelayRate float64
	MaxDelay  time.Duration

	// AllClasses extends the rates beyond Data frames to the control
	// plane and heartbeats too.
	AllClasses bool
}

// Stats counts the faults an injector has actually delivered.
type Stats struct {
	Frames    int64 `json:"frames"` // frames inspected
	Dropped   int64 `json:"dropped"`
	Corrupted int64 `json:"corrupted"`
	Truncated int64 `json:"truncated"`
	Resets    int64 `json:"resets"`
	Duped     int64 `json:"duped"`
	Delayed   int64 `json:"delayed"`
	// Stalled counts Data frames swallowed because their sender was
	// frozen; Cut counts frames dropped by a partition or isolation.
	Stalled int64 `json:"stalled"`
	Cut     int64 `json:"cut"`
}

// Injector decides the fate of every outgoing frame of a cluster,
// deterministically from a seed. One injector is shared by all ranks of a
// test cluster (decisions key on the sending rank), and it is safe for
// concurrent use from every rank's transport goroutines.
//
// Besides the per-frame rate faults it models three structural ones:
//
//   - Freeze(r): rank r's Data frames stall while its control plane and
//     heartbeats keep flowing — the "live but stuck" peer a heartbeat
//     failure detector can never catch.
//   - Partition(groups...): frames crossing group boundaries vanish, so
//     heartbeats time out and the membership splits; Heal reconnects.
//   - Isolate(r): everything to or from rank r vanishes permanently — a
//     transport-level process kill.
type Injector struct {
	mu     sync.Mutex
	cfg    Config
	links  map[linkKey]uint64 // per-(from,to,class) frame counters
	frozen uint64             // rank bitmap: outgoing Data stalled
	cut    uint64             // rank bitmap: isolated ranks
	groups map[int]int        // rank → partition group (nil: no partition)
	trace  func(Event)        // optional per-decision observer

	stats struct {
		frames, dropped, corrupted, truncated atomic.Int64
		resets, duped, delayed, stalled, cut  atomic.Int64
	}
}

type linkKey struct {
	from, to int
	class    Class
}

// NewInjector creates a deterministic injector with the given rates.
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg, links: make(map[linkKey]uint64)}
}

// Tune swaps the per-frame rates (e.g. to quiesce the fault window at the
// end of a soak so the cluster converges cleanly). Structural faults
// (freeze/partition/isolate) are not touched.
func (in *Injector) Tune(cfg Config) {
	in.mu.Lock()
	in.cfg = cfg
	in.mu.Unlock()
}

// Freeze stalls rank's outgoing Data frames: heartbeats and barrier
// traffic keep flowing, so the cluster sees a live peer that never
// delivers its collective chunks.
func (in *Injector) Freeze(rank int) {
	in.mu.Lock()
	in.frozen |= 1 << uint(rank)
	in.mu.Unlock()
}

// Unfreeze lifts a Freeze.
func (in *Injector) Unfreeze(rank int) {
	in.mu.Lock()
	in.frozen &^= 1 << uint(rank)
	in.mu.Unlock()
}

// Partition splits the cluster: frames between ranks in different groups
// (or between a listed and an unlisted rank) are dropped, heartbeats
// included, until Heal. Later calls replace earlier ones.
func (in *Injector) Partition(groups ...[]int) {
	m := make(map[int]int)
	for g, ranks := range groups {
		for _, r := range ranks {
			m[r] = g + 1
		}
	}
	in.mu.Lock()
	in.groups = m
	in.mu.Unlock()
}

// Heal lifts the partition (isolated ranks stay isolated).
func (in *Injector) Heal() {
	in.mu.Lock()
	in.groups = nil
	in.mu.Unlock()
}

// Isolate permanently cuts rank off from the cluster — a process kill at
// the transport layer: no frame reaches it or leaves it.
func (in *Injector) Isolate(rank int) {
	in.mu.Lock()
	in.cut |= 1 << uint(rank)
	in.mu.Unlock()
}

// Event reports one rate-path decision to the Trace hook: the link, the
// frame's per-link sequence number, its payload size and the fate chosen.
// Structural faults (freeze/partition/isolation) are NOT reported — they
// are absolute link cuts that consume no per-link sequence number, so they
// are not part of the seed-replayable schedule.
type Event struct {
	From, To   int
	Class      Class
	Seq        uint64
	PayloadLen int
	Fate       Fate
}

// SetTrace installs fn as an observer of every rate-path decision (nil
// removes it). The callback runs outside the injector's lock, so events
// from different links may arrive interleaved and — on the rare link with
// concurrent senders, such as a crossed dial/accept handshake — slightly
// out of order; Event.Seq is the authoritative per-link position. A soak
// records events through this hook and replays them against a fresh
// injector with the same seed to prove the fault schedule is reproducible.
func (in *Injector) SetTrace(fn func(Event)) {
	in.mu.Lock()
	in.trace = fn
	in.mu.Unlock()
}

// Stats snapshots the injector's fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Frames:    in.stats.frames.Load(),
		Dropped:   in.stats.dropped.Load(),
		Corrupted: in.stats.corrupted.Load(),
		Truncated: in.stats.truncated.Load(),
		Resets:    in.stats.resets.Load(),
		Duped:     in.stats.duped.Load(),
		Delayed:   in.stats.delayed.Load(),
		Stalled:   in.stats.stalled.Load(),
		Cut:       in.stats.cut.Load(),
	}
}

// Outgoing decides the fate of one frame about to be written from rank
// `from` to rank `to`. payloadLen is the frame's payload size in bytes
// (0 for control frames). Called on the sender's write path with the
// link's write lock held, so per-link decisions see a serialised frame
// sequence — which is what makes the per-link counters deterministic.
func (in *Injector) Outgoing(from, to int, class Class, payloadLen int) Fate {
	in.stats.frames.Add(1)
	in.mu.Lock()
	// Structural faults first: they are absolute, not probabilistic.
	if in.cut&(1<<uint(from)) != 0 || in.cut&(1<<uint(to)) != 0 {
		in.mu.Unlock()
		in.stats.cut.Add(1)
		return Fate{Op: Drop}
	}
	if in.groups != nil && in.groups[from] != in.groups[to] {
		in.mu.Unlock()
		in.stats.cut.Add(1)
		return Fate{Op: Drop}
	}
	if class == Data && in.frozen&(1<<uint(from)) != 0 {
		in.mu.Unlock()
		in.stats.stalled.Add(1)
		return Fate{Op: Drop}
	}
	cfg := in.cfg
	trace := in.trace
	key := linkKey{from, to, class}
	seq := in.links[key]
	in.links[key] = seq + 1
	in.mu.Unlock()

	if !cfg.AllClasses && class != Data {
		if trace != nil {
			trace(Event{From: from, To: to, Class: class, Seq: seq, PayloadLen: payloadLen})
		}
		return Fate{}
	}
	// One hash per decision dimension, all derived from the same
	// (seed, link, seq) identity, so a frame's fate is reproducible.
	id := mix(cfg.Seed, uint64(from)<<40|uint64(to)<<20|uint64(class), seq)
	fate := Fate{}
	switch {
	case pick(id, 1) < cfg.Drop:
		fate.Op = Drop
		in.stats.dropped.Add(1)
	case pick(id, 2) < cfg.Corrupt && payloadLen > 0:
		fate.Op = Corrupt
		fate.Arg = int(mix(id, 3, seq) % uint64(payloadLen*8))
		in.stats.corrupted.Add(1)
	case pick(id, 4) < cfg.Truncate && payloadLen > 1:
		fate.Op = Truncate
		fate.Arg = int(mix(id, 5, seq) % uint64(payloadLen))
		in.stats.truncated.Add(1)
	case pick(id, 6) < cfg.Reset:
		fate.Op = Reset
		in.stats.resets.Add(1)
	case pick(id, 7) < cfg.Dup:
		fate.Op = Dup
		in.stats.duped.Add(1)
	}
	if cfg.MaxDelay > 0 && pick(id, 8) < cfg.DelayRate {
		fate.Delay = time.Duration(1 + mix(id, 9, seq)%uint64(cfg.MaxDelay))
		in.stats.delayed.Add(1)
	}
	if trace != nil {
		trace(Event{From: from, To: to, Class: class, Seq: seq, PayloadLen: payloadLen, Fate: fate})
	}
	return fate
}

// mix is a splitmix64-style hash combining three words; it drives every
// probabilistic decision so the injector needs no mutable RNG state
// beyond the per-link counters.
func mix(a, b, c uint64) uint64 {
	z := a ^ b*0x9e3779b97f4a7c15 ^ c*0xbf58476d1ce4e5b9
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// pick maps (id, dim) to a uniform float64 in [0, 1).
func pick(id uint64, dim uint64) float64 {
	return float64(mix(id, dim, 0)>>11) / float64(1<<53)
}
