package chaos

import (
	"testing"
	"time"
)

// sequence records the fates of the first n frames on one link.
func sequence(in *Injector, from, to int, class Class, payloadLen, n int) []Fate {
	fates := make([]Fate, n)
	for i := range fates {
		fates[i] = in.Outgoing(from, to, class, payloadLen)
	}
	return fates
}

func TestSameSeedReplaysSameFates(t *testing.T) {
	cfg := Config{
		Seed: 42, Drop: 0.1, Corrupt: 0.1, Truncate: 0.05, Reset: 0.05,
		Dup: 0.1, DelayRate: 0.2, MaxDelay: time.Millisecond,
	}
	a := sequence(NewInjector(cfg), 0, 1, Data, 4096, 500)
	b := sequence(NewInjector(cfg), 0, 1, Data, 4096, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d: fate %+v != replay %+v", i, a[i], b[i])
		}
	}
}

func TestFatesIndependentAcrossLinks(t *testing.T) {
	// Interleaving traffic on other links must not perturb a link's fate
	// sequence — that is what makes a multi-rank soak replayable even
	// though goroutine scheduling reorders the global frame stream.
	cfg := Config{Seed: 7, Drop: 0.2, Dup: 0.2}
	solo := sequence(NewInjector(cfg), 0, 1, Data, 128, 200)

	in := NewInjector(cfg)
	mixed := make([]Fate, 200)
	for i := range mixed {
		in.Outgoing(1, 0, Data, 128)  // reverse direction
		in.Outgoing(0, 2, Data, 128)  // different peer
		in.Outgoing(0, 1, Control, 0) // same link, different class
		mixed[i] = in.Outgoing(0, 1, Data, 128)
	}
	for i := range solo {
		if solo[i] != mixed[i] {
			t.Fatalf("frame %d: solo %+v != interleaved %+v", i, solo[i], mixed[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := Config{Drop: 0.3, Dup: 0.3}
	cfg.Seed = 1
	a := sequence(NewInjector(cfg), 0, 1, Data, 128, 300)
	cfg.Seed = 2
	b := sequence(NewInjector(cfg), 0, 1, Data, 128, 300)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 1 and 2 produced identical 300-frame fate sequences")
	}
}

func TestZeroRatesPassEverything(t *testing.T) {
	in := NewInjector(Config{Seed: 9})
	for i := 0; i < 100; i++ {
		if f := in.Outgoing(0, 1, Data, 64); f != (Fate{}) {
			t.Fatalf("frame %d: zero-rate injector returned %+v", i, f)
		}
	}
	s := in.Stats()
	if s.Frames != 100 || s.Dropped+s.Corrupted+s.Truncated+s.Resets+s.Duped+s.Delayed != 0 {
		t.Fatalf("zero-rate stats: %+v", s)
	}
}

func TestRatesRoughlyHold(t *testing.T) {
	in := NewInjector(Config{Seed: 3, Drop: 0.2})
	const n = 5000
	dropped := 0
	for i := 0; i < n; i++ {
		if in.Outgoing(0, 1, Data, 64).Op == Drop {
			dropped++
		}
	}
	if got := float64(dropped) / n; got < 0.15 || got > 0.25 {
		t.Fatalf("20%% drop rate delivered %.1f%% over %d frames", got*100, n)
	}
	if s := in.Stats(); s.Dropped != int64(dropped) {
		t.Fatalf("stats.Dropped = %d, counted %d", s.Dropped, dropped)
	}
}

func TestDataOnlyByDefault(t *testing.T) {
	in := NewInjector(Config{Seed: 5, Drop: 1})
	for i := 0; i < 50; i++ {
		for _, c := range []Class{Control, Heartbeat, Snapshot} {
			if f := in.Outgoing(0, 1, c, 32); f.Op != Pass {
				t.Fatalf("class %d harmed without AllClasses: %+v", c, f)
			}
		}
		if f := in.Outgoing(0, 1, Data, 32); f.Op != Drop {
			t.Fatalf("Data frame not dropped at rate 1: %+v", f)
		}
	}

	in = NewInjector(Config{Seed: 5, Drop: 1, AllClasses: true})
	if f := in.Outgoing(0, 1, Heartbeat, 0); f.Op != Drop {
		t.Fatalf("AllClasses heartbeat not dropped: %+v", f)
	}
}

func TestCorruptAndTruncateArgsInRange(t *testing.T) {
	in := NewInjector(Config{Seed: 11, Corrupt: 0.5, Truncate: 0.5})
	const payload = 96
	for i := 0; i < 2000; i++ {
		f := in.Outgoing(0, 1, Data, payload)
		switch f.Op {
		case Corrupt:
			if f.Arg < 0 || f.Arg >= payload*8 {
				t.Fatalf("corrupt bit %d out of range [0,%d)", f.Arg, payload*8)
			}
		case Truncate:
			if f.Arg < 0 || f.Arg >= payload {
				t.Fatalf("truncate keep %d out of range [0,%d)", f.Arg, payload)
			}
		}
	}
	// Corrupt needs a payload bit to flip; Truncate needs a byte to cut.
	if f := in.Outgoing(0, 1, Data, 0); f.Op == Corrupt || f.Op == Truncate {
		t.Fatalf("empty payload got %+v", f)
	}
}

func TestFreezeStallsDataOnly(t *testing.T) {
	in := NewInjector(Config{Seed: 1})
	in.Freeze(2)
	if f := in.Outgoing(2, 0, Data, 64); f.Op != Drop {
		t.Fatalf("frozen rank's Data frame passed: %+v", f)
	}
	if f := in.Outgoing(2, 0, Heartbeat, 0); f.Op != Pass {
		t.Fatalf("frozen rank's heartbeat harmed: %+v", f)
	}
	if f := in.Outgoing(2, 0, Control, 0); f.Op != Pass {
		t.Fatalf("frozen rank's control frame harmed: %+v", f)
	}
	if f := in.Outgoing(0, 2, Data, 64); f.Op != Pass {
		t.Fatalf("Data frame TO a frozen rank harmed: %+v", f)
	}
	in.Unfreeze(2)
	if f := in.Outgoing(2, 0, Data, 64); f.Op != Pass {
		t.Fatalf("unfrozen rank's Data frame still stalled: %+v", f)
	}
	if s := in.Stats(); s.Stalled != 1 {
		t.Fatalf("Stalled = %d, want 1", s.Stalled)
	}
}

func TestPartitionCutsCrossGroupOnly(t *testing.T) {
	in := NewInjector(Config{Seed: 1})
	in.Partition([]int{0, 1}) // rank 2 implicitly in the other side
	if f := in.Outgoing(0, 1, Data, 64); f.Op != Pass {
		t.Fatalf("intra-group frame cut: %+v", f)
	}
	if f := in.Outgoing(0, 2, Heartbeat, 0); f.Op != Drop {
		t.Fatalf("cross-partition heartbeat passed: %+v", f)
	}
	if f := in.Outgoing(2, 1, Control, 0); f.Op != Drop {
		t.Fatalf("cross-partition control frame passed: %+v", f)
	}
	in.Heal()
	if f := in.Outgoing(0, 2, Heartbeat, 0); f.Op != Pass {
		t.Fatalf("healed partition still cutting: %+v", f)
	}
}

func TestIsolateCutsBothDirections(t *testing.T) {
	in := NewInjector(Config{Seed: 1})
	in.Isolate(1)
	if f := in.Outgoing(1, 0, Heartbeat, 0); f.Op != Drop {
		t.Fatalf("isolated rank's outgoing frame passed: %+v", f)
	}
	if f := in.Outgoing(0, 1, Control, 0); f.Op != Drop {
		t.Fatalf("frame to isolated rank passed: %+v", f)
	}
	if f := in.Outgoing(0, 2, Data, 64); f.Op != Pass {
		t.Fatalf("unrelated link cut: %+v", f)
	}
	in.Heal() // Heal lifts partitions, not isolation
	if f := in.Outgoing(0, 1, Data, 64); f.Op != Drop {
		t.Fatalf("Heal lifted an isolation: %+v", f)
	}
	if s := in.Stats(); s.Cut != 3 {
		t.Fatalf("Cut = %d, want 3", s.Cut)
	}
}

func TestTuneKeepsStructuralFaults(t *testing.T) {
	in := NewInjector(Config{Seed: 1, Drop: 1})
	in.Freeze(0)
	in.Tune(Config{Seed: 1}) // quiesce rates
	if f := in.Outgoing(1, 2, Data, 64); f.Op != Pass {
		t.Fatalf("tuned-to-zero injector still dropping: %+v", f)
	}
	if f := in.Outgoing(0, 1, Data, 64); f.Op != Drop {
		t.Fatalf("Tune lifted a Freeze: %+v", f)
	}
}
