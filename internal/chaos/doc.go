// Package chaos is the deterministic fault-injection layer behind the
// transport's robustness tests (DESIGN.md §13): a seeded Injector that the
// transport consults for every outgoing frame and that can drop, delay,
// duplicate, bit-flip, or truncate frames, reset connections, partition
// rank subsets, and freeze a peer mid-collective while its heartbeats keep
// flowing — the failure a liveness detector cannot see.
//
// Determinism is the point. The fate of the i-th frame on a
// (from, to, class) link is a pure hash of (Seed, from, to, class, i), so
// the injector carries no RNG state beyond per-link counters: a run with
// the same seed and the same per-link frame sequence replays the same
// fault schedule, which turns "the cluster survived random faults" into a
// reproducible, debuggable test — the chaos soak pins bit-identical
// survivor parameters under a fixed seed, and a failure can be replayed at
// will.
//
// The injector sits at the sender's frame boundary only (inside
// peer.send, under the link's write lock). That placement keeps decisions
// serialised per link and covers both directions of every in-process test
// cluster, but it also means chaos runs are single-process by
// construction: the Injector is a shared pointer, not a wire protocol.
package chaos
