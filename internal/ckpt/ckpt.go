package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Magic identifies a Crossbow checkpoint file.
const Magic = "CBOWCKPT"

// Version is the current format version. Version 2 adds the Meta section
// (the cluster plane's configuration context); version 3 adds the snapshot
// section (SnapshotRound/SnapshotIter — the serving plane's model version,
// DESIGN.md §11). Files written by older versions still load, with the
// missing sections zero.
const Version = 3

// Checkpoint is a model snapshot with its training context.
type Checkpoint struct {
	// Model names the architecture the parameters belong to.
	Model string
	// Epoch is the number of completed epochs.
	Epoch int
	// BestAccuracy is the best test accuracy observed so far.
	BestAccuracy float64
	// Meta carries optional training-context strings (e.g. the cluster
	// plane's server count and interconnect). Nil and empty are
	// equivalent; entries are written sorted by key, so serialisation is
	// deterministic.
	Meta map[string]string
	// SnapshotRound is the synchronisation-round version of the central
	// average model this checkpoint carries (core.Snapshot.Round), and
	// SnapshotIter the per-learner iteration count the round represents.
	// Both are zero for end-of-training checkpoints and for files written
	// before format version 3. A serving process started from a snapshot
	// checkpoint reports SnapshotRound as its model version, so a
	// prediction can always be traced to the exact published model that
	// produced it.
	SnapshotRound int64
	SnapshotIter  int64
	// Params is the flat model vector (weights, including batch-norm
	// statistics — a Crossbow model is fully described by it).
	Params []float32
}

// Write serialises the checkpoint to w.
func Write(w io.Writer, c *Checkpoint) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(Version)); err != nil {
		return err
	}
	name := []byte(c.Model)
	if len(name) > 255 {
		return fmt.Errorf("ckpt: model name too long")
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(c.Epoch)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, c.BestAccuracy); err != nil {
		return err
	}
	keys := make([]string, 0, len(c.Meta))
	for k := range c.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if err := writeString(bw, k); err != nil {
			return err
		}
		if err := writeString(bw, c.Meta[k]); err != nil {
			return err
		}
	}
	// Snapshot section (v3).
	if err := binary.Write(bw, binary.LittleEndian, uint64(c.SnapshotRound)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(c.SnapshotIter)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(c.Params))); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	buf := make([]byte, 4)
	for _, v := range c.Params {
		binary.LittleEndian.PutUint32(buf, floatBits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		crc.Write(buf)
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a checkpoint from r, verifying magic, version and checksum.
func Read(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ckpt: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version < 1 || version > Version {
		return nil, fmt.Errorf("ckpt: unsupported version %d", version)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	c := &Checkpoint{Model: string(name)}
	var epoch uint64
	if err := binary.Read(br, binary.LittleEndian, &epoch); err != nil {
		return nil, err
	}
	c.Epoch = int(epoch)
	if err := binary.Read(br, binary.LittleEndian, &c.BestAccuracy); err != nil {
		return nil, err
	}
	if version >= 2 {
		var metaCount uint32
		if err := binary.Read(br, binary.LittleEndian, &metaCount); err != nil {
			return nil, err
		}
		const maxMeta = 1 << 16
		if metaCount > maxMeta {
			return nil, fmt.Errorf("ckpt: implausible metadata count %d", metaCount)
		}
		if metaCount > 0 {
			c.Meta = make(map[string]string, metaCount)
			for i := uint32(0); i < metaCount; i++ {
				k, err := readString(br)
				if err != nil {
					return nil, fmt.Errorf("ckpt: reading metadata: %w", err)
				}
				v, err := readString(br)
				if err != nil {
					return nil, fmt.Errorf("ckpt: reading metadata: %w", err)
				}
				c.Meta[k] = v
			}
		}
	}
	if version >= 3 {
		var round, iter uint64
		if err := binary.Read(br, binary.LittleEndian, &round); err != nil {
			return nil, fmt.Errorf("ckpt: reading snapshot section: %w", err)
		}
		if err := binary.Read(br, binary.LittleEndian, &iter); err != nil {
			return nil, fmt.Errorf("ckpt: reading snapshot section: %w", err)
		}
		c.SnapshotRound, c.SnapshotIter = int64(round), int64(iter)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	const maxParams = 1 << 30
	if n > maxParams {
		return nil, fmt.Errorf("ckpt: implausible parameter count %d", n)
	}
	c.Params = make([]float32, n)
	crc := crc32.NewIEEE()
	buf := make([]byte, 4)
	for i := range c.Params {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("ckpt: truncated parameters: %w", err)
		}
		crc.Write(buf)
		c.Params[i] = floatFrom(binary.LittleEndian.Uint32(buf))
	}
	var sum uint32
	if err := binary.Read(br, binary.LittleEndian, &sum); err != nil {
		return nil, fmt.Errorf("ckpt: missing checksum: %w", err)
	}
	if sum != crc.Sum32() {
		return nil, fmt.Errorf("ckpt: checksum mismatch")
	}
	return c, nil
}

// Save writes the checkpoint to path atomically (write to a temporary file
// in the same directory, then rename).
func Save(path string, c *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, c); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads a checkpoint from path.
func Load(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func writeString(w *bufio.Writer, s string) error {
	if len(s) > 1<<16-1 {
		return fmt.Errorf("ckpt: metadata string too long (%d bytes)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func floatFrom(u uint32) float32 { return math.Float32frombits(u) }
