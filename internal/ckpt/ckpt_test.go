package ckpt

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"crossbow/internal/tensor"
)

func sample() *Checkpoint {
	return &Checkpoint{
		Model:        "resnet32",
		Epoch:        42,
		BestAccuracy: 0.883,
		Params:       []float32{1.5, -2.25, 0, 3.14159, -0.0001},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if got.Model != want.Model || got.Epoch != want.Epoch || got.BestAccuracy != want.BestAccuracy {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if tensor.MaxAbsDiff(got.Params, want.Params) != 0 {
		t.Fatalf("params mismatch: %v", got.Params)
	}
}

func TestRoundTripEmptyParams(t *testing.T) {
	var buf bytes.Buffer
	c := &Checkpoint{Model: "m"}
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Params) != 0 {
		t.Fatalf("params = %v", got.Params)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("NOTACKPTxxxxxxxxxxxx")); err == nil {
		t.Fatal("expected error")
	}
}

func TestTruncationRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(Magic) - 1, len(Magic) + 2, len(data) / 2, len(data) - 2} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCorruptionDetectedByChecksum(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one bit inside the parameter payload.
	data[len(data)-10] ^= 0x40
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("corruption went undetected")
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	if err := Save(path, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 42 {
		t.Fatalf("epoch = %d", got.Epoch)
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries", len(entries))
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("expected error")
	}
}

// Property: any parameter vector round-trips bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, epoch uint16) bool {
		r := tensor.NewRNG(seed)
		n := int(nRaw % 2000)
		c := &Checkpoint{Model: "m", Epoch: int(epoch), Params: make([]float32, n)}
		for i := range c.Params {
			c.Params[i] = float32(r.NormFloat64())
		}
		var buf bytes.Buffer
		if Write(&buf, c) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Epoch != c.Epoch || len(got.Params) != n {
			return false
		}
		for i := range c.Params {
			if got.Params[i] != c.Params[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripMeta(t *testing.T) {
	c := sample()
	c.Meta = map[string]string{"servers": "8", "interconnect": "10GbE"}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Meta) != 2 || got.Meta["servers"] != "8" || got.Meta["interconnect"] != "10GbE" {
		t.Fatalf("meta mismatch: %v", got.Meta)
	}
}

func TestMetaWriteDeterministic(t *testing.T) {
	c := sample()
	c.Meta = map[string]string{"b": "2", "a": "1", "c": "3"}
	var one, two bytes.Buffer
	if err := Write(&one, c); err != nil {
		t.Fatal(err)
	}
	if err := Write(&two, c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("meta serialisation not deterministic")
	}
}

// writeV1 serialises a checkpoint in the pre-cluster version-1 layout (no
// metadata section), byte for byte as the old writer produced it.
func writeV1(c *Checkpoint) []byte {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	binary.Write(&buf, binary.LittleEndian, uint32(1))
	buf.WriteByte(byte(len(c.Model)))
	buf.WriteString(c.Model)
	binary.Write(&buf, binary.LittleEndian, uint64(c.Epoch))
	binary.Write(&buf, binary.LittleEndian, c.BestAccuracy)
	binary.Write(&buf, binary.LittleEndian, uint64(len(c.Params)))
	crc := crc32.NewIEEE()
	b4 := make([]byte, 4)
	for _, v := range c.Params {
		binary.LittleEndian.PutUint32(b4, floatBits(v))
		buf.Write(b4)
		crc.Write(b4)
	}
	binary.Write(&buf, binary.LittleEndian, crc.Sum32())
	return buf.Bytes()
}

// TestLegacyV1Loads pins backward compatibility: checkpoints written
// before the cluster config fields existed must still load.
func TestLegacyV1Loads(t *testing.T) {
	want := sample()
	got, err := Read(bytes.NewReader(writeV1(want)))
	if err != nil {
		t.Fatalf("v1 checkpoint rejected: %v", err)
	}
	if got.Model != want.Model || got.Epoch != want.Epoch || got.BestAccuracy != want.BestAccuracy {
		t.Fatalf("v1 metadata mismatch: %+v", got)
	}
	if got.Meta != nil {
		t.Fatalf("v1 checkpoint has meta %v, want none", got.Meta)
	}
	if tensor.MaxAbsDiff(got.Params, want.Params) != 0 {
		t.Fatalf("v1 params mismatch: %v", got.Params)
	}
}

// writeV2 serialises a checkpoint in the pre-serving version-2 layout
// (metadata section, no snapshot section), byte for byte as the old writer
// produced it.
func writeV2(c *Checkpoint) []byte {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	binary.Write(&buf, binary.LittleEndian, uint32(2))
	buf.WriteByte(byte(len(c.Model)))
	buf.WriteString(c.Model)
	binary.Write(&buf, binary.LittleEndian, uint64(c.Epoch))
	binary.Write(&buf, binary.LittleEndian, c.BestAccuracy)
	keys := make([]string, 0, len(c.Meta))
	for k := range c.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	binary.Write(&buf, binary.LittleEndian, uint32(len(keys)))
	for _, k := range keys {
		binary.Write(&buf, binary.LittleEndian, uint16(len(k)))
		buf.WriteString(k)
		binary.Write(&buf, binary.LittleEndian, uint16(len(c.Meta[k])))
		buf.WriteString(c.Meta[k])
	}
	binary.Write(&buf, binary.LittleEndian, uint64(len(c.Params)))
	crc := crc32.NewIEEE()
	b4 := make([]byte, 4)
	for _, v := range c.Params {
		binary.LittleEndian.PutUint32(b4, floatBits(v))
		buf.Write(b4)
		crc.Write(b4)
	}
	binary.Write(&buf, binary.LittleEndian, crc.Sum32())
	return buf.Bytes()
}

// TestLegacyV2Loads pins backward compatibility across the v3 snapshot
// section: version-2 files (written before the serving plane existed) load
// with a zero snapshot version.
func TestLegacyV2Loads(t *testing.T) {
	want := sample()
	want.Meta = map[string]string{"servers": "4", "interconnect": "IB"}
	got, err := Read(bytes.NewReader(writeV2(want)))
	if err != nil {
		t.Fatalf("v2 checkpoint rejected: %v", err)
	}
	if got.Model != want.Model || got.Epoch != want.Epoch || got.BestAccuracy != want.BestAccuracy {
		t.Fatalf("v2 metadata mismatch: %+v", got)
	}
	if len(got.Meta) != 2 || got.Meta["servers"] != "4" {
		t.Fatalf("v2 meta mismatch: %v", got.Meta)
	}
	if got.SnapshotRound != 0 || got.SnapshotIter != 0 {
		t.Fatalf("v2 checkpoint carries snapshot version %d/%d, want 0/0",
			got.SnapshotRound, got.SnapshotIter)
	}
	if tensor.MaxAbsDiff(got.Params, want.Params) != 0 {
		t.Fatalf("v2 params mismatch: %v", got.Params)
	}
}

// TestRoundTripSnapshotVersion pins the v3 snapshot section.
func TestRoundTripSnapshotVersion(t *testing.T) {
	c := sample()
	c.SnapshotRound, c.SnapshotIter = 1234, 2468
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SnapshotRound != 1234 || got.SnapshotIter != 2468 {
		t.Fatalf("snapshot version %d/%d, want 1234/2468", got.SnapshotRound, got.SnapshotIter)
	}
}

func TestFutureVersionRejected(t *testing.T) {
	data := writeV1(sample())
	// Patch the version field (right after the magic) to a future version.
	binary.LittleEndian.PutUint32(data[len(Magic):], Version+1)
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("future version accepted")
	}
}
