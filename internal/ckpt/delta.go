package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Delta distribution (DESIGN.md §16): a training run that feeds a fleet of
// serving replicas should ship bytes proportional to what changed between
// snapshots, not full-tensor copies. A Delta is the difference between two
// published rounds of the same model, expressed as the set of fixed-size
// parameter chunks whose contents changed. Chunk boundaries are a pure
// function of (parameter count, ChunkElems), so publisher and replica always
// agree on them, and chunks are shipped verbatim — applying a delta is a
// plain copy into the base vector, which makes the result byte-for-byte
// identical to the full target snapshot (pinned by TestDeltaBitIdentity).
//
// Safety is CRC-anchored at both ends: BaseCRC must match the replica's
// current parameters before any chunk is written (a diverged replica rejects
// the delta instead of silently corrupting its model), and FullCRC must
// match the patched result after. A publisher whose subscriber has diverged
// — or whose history no longer holds the subscriber's round — falls back to
// a full snapshot.

// DeltaMagic identifies a serialized model delta.
const DeltaMagic = "CBOWDLTA"

// DeltaVersion is the delta format version.
const DeltaVersion = 1

// DefaultChunkElems is the default delta chunk size in float32 elements
// (16 KiB per chunk). Small enough that touching one layer of a small model
// ships a small fraction of the snapshot, large enough that the per-chunk
// index overhead stays negligible.
const DefaultChunkElems = 4096

// ErrDeltaBase is returned by Delta.Apply when the target vector does not
// match the delta's base (length or BaseCRC): the replica has diverged from
// the round the delta was computed against and needs a full resync.
var ErrDeltaBase = fmt.Errorf("ckpt: delta base mismatch (replica diverged; full resync required)")

// Delta is the difference between two published snapshots of one model.
type Delta struct {
	// Model names the architecture, like Checkpoint.Model.
	Model string
	// FromRound is the snapshot round the delta applies to; ToRound (and
	// ToIter) identify the round it produces — the versions a serving
	// replica reports before and after applying it.
	FromRound int64
	ToRound   int64
	ToIter    int64
	// NumParams is the full model vector length; a delta only applies to a
	// vector of exactly this length.
	NumParams int
	// ChunkElems is the chunk granularity the vectors were diffed at.
	ChunkElems int
	// BaseCRC / FullCRC checksum the complete base and target parameter
	// vectors (little-endian float32 bytes, the checkpoint encoding).
	BaseCRC uint32
	FullCRC uint32
	// Chunks lists the changed chunks, ascending by index. Each carries the
	// target's verbatim contents for [Index*ChunkElems, ...+len(Data)).
	Chunks []DeltaChunk
}

// DeltaChunk is one changed chunk of the model vector.
type DeltaChunk struct {
	Index int
	Data  []float32
}

// ParamsCRC returns the checksum of a parameter vector in its checkpoint
// wire encoding (little-endian float32 bytes) — the anchor Delta.Apply and
// the snapshot feed's divergence detection compare against.
func ParamsCRC(params []float32) uint32 {
	crc := crc32.NewIEEE()
	var buf [4096]byte
	i := 0
	for i < len(params) {
		n := 0
		for ; n < len(buf)/4 && i < len(params); n++ {
			binary.LittleEndian.PutUint32(buf[n*4:], floatBits(params[i]))
			i++
		}
		crc.Write(buf[:n*4])
	}
	return crc.Sum32()
}

// ComputeDelta diffs two rounds of one model at chunk granularity
// (chunkElems <= 0 selects DefaultChunkElems). base and next must be the
// same length; the returned delta carries next's contents for every chunk
// whose bytes differ. The delta references base and next only during the
// call; chunk data aliases next, so next must stay unmodified while the
// delta is in use (Write serialises it out; callers handing params to a
// publisher already give up ownership).
func ComputeDelta(model string, base, next []float32, fromRound, toRound, toIter int64, chunkElems int) (*Delta, error) {
	if len(base) != len(next) {
		return nil, fmt.Errorf("ckpt: delta between %d and %d parameters", len(base), len(next))
	}
	if chunkElems <= 0 {
		chunkElems = DefaultChunkElems
	}
	d := &Delta{
		Model:      model,
		FromRound:  fromRound,
		ToRound:    toRound,
		ToIter:     toIter,
		NumParams:  len(next),
		ChunkElems: chunkElems,
		BaseCRC:    ParamsCRC(base),
		FullCRC:    ParamsCRC(next),
	}
	for off, idx := 0, 0; off < len(next); off, idx = off+chunkElems, idx+1 {
		end := off + chunkElems
		if end > len(next) {
			end = len(next)
		}
		if !chunkEqual(base[off:end], next[off:end]) {
			d.Chunks = append(d.Chunks, DeltaChunk{Index: idx, Data: next[off:end]})
		}
	}
	return d, nil
}

// chunkEqual compares two chunks bit-wise (NaN-safe: a float compare would
// call NaN != NaN and ship unchanged chunks forever).
func chunkEqual(a, b []float32) bool {
	for i := range a {
		if floatBits(a[i]) != floatBits(b[i]) {
			return false
		}
	}
	return true
}

// Apply patches params in place, turning the FromRound vector into the
// ToRound vector. It verifies the base (length and BaseCRC) before touching
// anything — returning ErrDeltaBase on divergence — and the result against
// FullCRC after, so a successful Apply guarantees byte-identity with the
// full ToRound snapshot.
func (d *Delta) Apply(params []float32) error {
	if len(params) != d.NumParams {
		return fmt.Errorf("%w: have %d parameters, delta takes %d", ErrDeltaBase, len(params), d.NumParams)
	}
	if ParamsCRC(params) != d.BaseCRC {
		return ErrDeltaBase
	}
	for _, c := range d.Chunks {
		off := c.Index * d.ChunkElems
		if off < 0 || off+len(c.Data) > len(params) {
			return fmt.Errorf("ckpt: delta chunk %d out of range", c.Index)
		}
		copy(params[off:off+len(c.Data)], c.Data)
	}
	if ParamsCRC(params) != d.FullCRC {
		return fmt.Errorf("ckpt: delta application checksum mismatch at round %d", d.ToRound)
	}
	return nil
}

// WireSize returns the serialized size of the delta in bytes — what a
// publisher compares against the full snapshot to report savings.
func (d *Delta) WireSize() int {
	n := len(DeltaMagic) + 4 + 1 + len(d.Model) + 8*3 + 8 + 4 + 4 + 4 + 4 // header
	for _, c := range d.Chunks {
		n += 8 + 4*len(c.Data)
	}
	return n + 4 // trailing CRC
}

// WriteDelta serialises the delta to w.
func WriteDelta(w io.Writer, d *Delta) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(DeltaMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(DeltaVersion)); err != nil {
		return err
	}
	name := []byte(d.Model)
	if len(name) > 255 {
		return fmt.Errorf("ckpt: model name too long")
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(d.FromRound), uint64(d.ToRound), uint64(d.ToIter), uint64(d.NumParams)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, v := range []uint32{uint32(d.ChunkElems), d.BaseCRC, d.FullCRC, uint32(len(d.Chunks))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	crc := crc32.NewIEEE()
	buf := make([]byte, 4)
	for _, c := range d.Chunks {
		if err := binary.Write(bw, binary.LittleEndian, uint32(c.Index)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(c.Data))); err != nil {
			return err
		}
		for _, v := range c.Data {
			binary.LittleEndian.PutUint32(buf, floatBits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			crc.Write(buf)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadDelta parses a delta from r, verifying magic, version, bounds and the
// chunk-data checksum.
func ReadDelta(r io.Reader) (*Delta, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(DeltaMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ckpt: reading delta magic: %w", err)
	}
	if string(magic) != DeltaMagic {
		return nil, fmt.Errorf("ckpt: bad delta magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version < 1 || version > DeltaVersion {
		return nil, fmt.Errorf("ckpt: unsupported delta version %d", version)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	d := &Delta{Model: string(name)}
	var from, to, iter, n uint64
	for _, p := range []*uint64{&from, &to, &iter, &n} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	const maxParams = 1 << 30
	if n > maxParams {
		return nil, fmt.Errorf("ckpt: implausible delta parameter count %d", n)
	}
	d.FromRound, d.ToRound, d.ToIter, d.NumParams = int64(from), int64(to), int64(iter), int(n)
	var chunkElems, nchunks uint32
	for _, p := range []*uint32{&chunkElems, &d.BaseCRC, &d.FullCRC, &nchunks} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if chunkElems == 0 || int(chunkElems) > maxParams {
		return nil, fmt.Errorf("ckpt: implausible delta chunk size %d", chunkElems)
	}
	d.ChunkElems = int(chunkElems)
	maxChunks := (d.NumParams + d.ChunkElems - 1) / d.ChunkElems
	if int(nchunks) > maxChunks {
		return nil, fmt.Errorf("ckpt: delta claims %d chunks, vector holds %d", nchunks, maxChunks)
	}
	crc := crc32.NewIEEE()
	buf := make([]byte, 4)
	d.Chunks = make([]DeltaChunk, nchunks)
	for i := range d.Chunks {
		var idx, elems uint32
		if err := binary.Read(br, binary.LittleEndian, &idx); err != nil {
			return nil, fmt.Errorf("ckpt: truncated delta chunk header: %w", err)
		}
		if err := binary.Read(br, binary.LittleEndian, &elems); err != nil {
			return nil, fmt.Errorf("ckpt: truncated delta chunk header: %w", err)
		}
		if int(idx) >= maxChunks || int(elems) > d.ChunkElems {
			return nil, fmt.Errorf("ckpt: delta chunk %d/%d elements out of range", idx, elems)
		}
		data := make([]float32, elems)
		for j := range data {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("ckpt: truncated delta chunk data: %w", err)
			}
			crc.Write(buf)
			data[j] = floatFrom(binary.LittleEndian.Uint32(buf))
		}
		d.Chunks[i] = DeltaChunk{Index: int(idx), Data: data}
	}
	var sum uint32
	if err := binary.Read(br, binary.LittleEndian, &sum); err != nil {
		return nil, fmt.Errorf("ckpt: missing delta checksum: %w", err)
	}
	if sum != crc.Sum32() {
		return nil, fmt.Errorf("ckpt: delta checksum mismatch")
	}
	return d, nil
}
