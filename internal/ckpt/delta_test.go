package ckpt

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randParams(n int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	p := make([]float32, n)
	for i := range p {
		p[i] = float32(r.NormFloat64())
	}
	return p
}

// TestDeltaBitIdentity is the distribution correctness pin: applying a delta
// stream to a round-r replica yields byte-for-byte the same model as loading
// the full round-r+k snapshot — across several hops, odd tail chunks, and a
// forced full-fallback resync in the middle.
func TestDeltaBitIdentity(t *testing.T) {
	const n = 4096*3 + 137 // deliberately not a chunk multiple
	base := randParams(n, 1)
	replica := append([]float32(nil), base...)

	cur := base
	r := rand.New(rand.NewSource(2))
	for round := int64(2); round <= 6; round++ {
		next := append([]float32(nil), cur...)
		// Touch a few scattered regions, including the tail chunk.
		for k := 0; k < 3; k++ {
			off := r.Intn(n - 10)
			for j := 0; j < 10; j++ {
				next[off+j] += float32(r.NormFloat64())
			}
		}
		next[n-1] *= 1.5

		d, err := ComputeDelta("resnet32", cur, next, round-1, round, round*10, 0)
		if err != nil {
			t.Fatalf("ComputeDelta: %v", err)
		}

		// Round-trip the wire encoding, as the transport does.
		var buf bytes.Buffer
		if err := WriteDelta(&buf, d); err != nil {
			t.Fatalf("WriteDelta: %v", err)
		}
		got, err := ReadDelta(&buf)
		if err != nil {
			t.Fatalf("ReadDelta: %v", err)
		}
		if got.Model != "resnet32" || got.FromRound != round-1 || got.ToRound != round {
			t.Fatalf("round %d: decoded header %q %d→%d", round, got.Model, got.FromRound, got.ToRound)
		}

		if round == 4 {
			// Forced full-fallback resync: the replica diverges (a stray
			// write), the delta must refuse, and a full snapshot heals it.
			replica[7] += 1
			if err := got.Apply(replica); !errors.Is(err, ErrDeltaBase) {
				t.Fatalf("diverged replica: Apply returned %v, want ErrDeltaBase", err)
			}
			copy(replica, next) // the full-resync path ships next verbatim
		} else if err := got.Apply(replica); err != nil {
			t.Fatalf("round %d: Apply: %v", round, err)
		}

		for i := range replica {
			if math.Float32bits(replica[i]) != math.Float32bits(next[i]) {
				t.Fatalf("round %d: replica[%d] = %x, full snapshot has %x",
					round, i, math.Float32bits(replica[i]), math.Float32bits(next[i]))
			}
		}
		cur = next
	}
}

// TestDeltaOneLayerBytes pins the acceptance bound: a 1-layer-touched update
// ships < 25% of the full snapshot's bytes.
func TestDeltaOneLayerBytes(t *testing.T) {
	const n = 1 << 19 // ~0.5M params, resnet32-scale
	base := randParams(n, 3)
	next := append([]float32(nil), base...)
	// "One layer": a contiguous 5% slice of the vector.
	for i := n / 2; i < n/2+n/20; i++ {
		next[i] += 0.5
	}
	d, err := ComputeDelta("m", base, next, 1, 2, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := 4 * n
	if got := d.WireSize(); got >= full/4 {
		t.Fatalf("one-layer delta is %d bytes, full snapshot %d — want < 25%%", got, full)
	}
	// And an untouched model produces an (almost) empty delta.
	d2, _ := ComputeDelta("m", base, base, 1, 2, 20, 0)
	if len(d2.Chunks) != 0 {
		t.Fatalf("identical vectors produced %d changed chunks", len(d2.Chunks))
	}
}

// TestDeltaNaNChunks pins bit-wise (not float) comparison: NaN-carrying
// chunks must not be re-shipped forever.
func TestDeltaNaNChunks(t *testing.T) {
	base := randParams(8192, 4)
	base[10] = float32(math.NaN())
	same := append([]float32(nil), base...)
	d, err := ComputeDelta("m", base, same, 1, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Chunks) != 0 {
		t.Fatalf("NaN chunk reported as changed: %d chunks", len(d.Chunks))
	}
}

// TestDeltaDecodeRejects fuzz-lite: corrupted wire bytes must error, never
// yield a delta that would patch garbage into a model.
func TestDeltaDecodeRejects(t *testing.T) {
	base := randParams(10000, 5)
	next := append([]float32(nil), base...)
	next[5000] = 42
	d, _ := ComputeDelta("m", base, next, 1, 2, 0, 256)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, d); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"bad magic":   append([]byte("XXXXXXXX"), good[8:]...),
		"truncated":   good[:len(good)-9],
		"flipped bit": flipBit(good, len(good)/2),
	}
	for name, raw := range cases {
		if _, err := ReadDelta(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: ReadDelta accepted corrupted input", name)
		}
	}
	if _, err := ReadDelta(bytes.NewReader(good)); err != nil {
		t.Fatalf("clean bytes rejected: %v", err)
	}
}

func flipBit(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0x10
	return c
}
