// Package ckpt persists trained models and training state (DESIGN.md §7).
// Checkpoints are a small binary format (magic, version, metadata, raw
// little-endian float32 parameters, CRC) written atomically, so long
// training runs can resume after interruption and trained central average
// models can ship to downstream users. Format v2 added the cluster
// metadata section; v3 adds the snapshot section — the published model's
// round version (DESIGN.md §11) — so a serving process can report exactly
// which training snapshot answers each prediction. Older versions still
// load, with the missing sections zero.
package ckpt
