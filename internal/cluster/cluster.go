package cluster

import (
	"fmt"

	"crossbow/internal/engine"
	"crossbow/internal/gpusim"
	"crossbow/internal/nn"
)

// Config describes a simulated multi-server training configuration.
type Config struct {
	Model nn.ModelID
	// Servers is the number of servers n (default 1, the paper's setting).
	Servers int
	// GPUsPerServer is g per server (default 1).
	GPUsPerServer int
	// LearnersPerGPU is m (default 1).
	LearnersPerGPU int
	// Batch is b, per learner (default 16).
	Batch int
	// TauLocal is the intra-server synchronisation period in iterations
	// (the engine's τ; 0 → 1, engine.TauNever disables).
	TauLocal int
	// TauGlobal is the cross-server averaging period in units of
	// intra-server synchronisations: servers exchange reference models
	// every TauGlobal-th global synchronisation (0 → 1). Looser τ_global
	// trades statistical efficiency for less network traffic, mirroring
	// how §5.5 relaxes τ within a server.
	TauGlobal int
	// Overlap lets synchronisation tasks of iteration N run concurrently
	// with learning tasks of iteration N+1, at both the intra-server tier
	// (Figure 8 f) and the cross-server tier.
	Overlap bool
	// Cost and Topo (per server) default to the paper-calibrated models.
	Cost gpusim.CostModel
	Topo gpusim.Topology
	// Net is the cross-server interconnect (default Ethernet10G).
	Net Interconnect
}

func (c *Config) fillDefaults() {
	if c.Servers == 0 {
		c.Servers = 1
	}
	if c.GPUsPerServer == 0 {
		c.GPUsPerServer = 1
	}
	if c.LearnersPerGPU == 0 {
		c.LearnersPerGPU = 1
	}
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.TauLocal == 0 {
		c.TauLocal = 1
	}
	if c.TauGlobal == 0 {
		c.TauGlobal = 1
	}
	if c.Cost == (gpusim.CostModel{}) {
		c.Cost = gpusim.DefaultCostModel()
	}
	if c.Topo == (gpusim.Topology{}) {
		c.Topo = gpusim.DefaultTopology(c.GPUsPerServer)
	}
	if c.Net == (Interconnect{}) {
		c.Net = Ethernet10G()
	}
}

// Engine executes hierarchical SMA iterations on the simulated cluster: one
// engine.Engine per server, all sharing a single discrete-event clock, plus
// per-server network streams carrying the cross-server average tasks.
type Engine struct {
	cfg     Config
	sim     *gpusim.Sim
	servers []*engine.Engine
	// netStreams[s] lives on server s's first device and plays the role of
	// the NIC: staging DMA, the network collective, and the broadcast of
	// the refreshed cluster average model. Empty on single-server runs.
	netStreams []*gpusim.Stream

	modelElems int64
	iter       int
	localSyncs int
}

// New builds a cluster engine. With Servers=1 it schedules exactly the work
// of a plain engine.Engine — the degenerate case the tests pin down.
func New(cfg Config) *Engine {
	cfg.fillDefaults()
	spec := nn.FullSpec(cfg.Model)
	c := &Engine{
		cfg:        cfg,
		sim:        gpusim.NewSim(cfg.Servers*cfg.GPUsPerServer, cfg.Cost.SMsPerDevice),
		modelElems: spec.ParamCount(),
	}
	for s := 0; s < cfg.Servers; s++ {
		c.servers = append(c.servers, engine.New(engine.Config{
			Model: cfg.Model, GPUs: cfg.GPUsPerServer,
			LearnersPerGPU: cfg.LearnersPerGPU, Batch: cfg.Batch,
			Tau: cfg.TauLocal, Overlap: cfg.Overlap,
			Cost: cfg.Cost, Topo: cfg.Topo,
			Sim: c.sim, DeviceOffset: s * cfg.GPUsPerServer,
		}))
	}
	if cfg.Servers > 1 {
		for s := 0; s < cfg.Servers; s++ {
			dev := c.sim.Device(s * cfg.GPUsPerServer)
			c.netStreams = append(c.netStreams, dev.NewStream(fmt.Sprintf("server%d/net", s)))
		}
	}
	return c
}

// Sim exposes the shared simulator (for utilisation inspection).
func (c *Engine) Sim() *gpusim.Sim { return c.sim }

// Config returns the engine's effective configuration.
func (c *Engine) Config() Config { return c.cfg }

// Server returns server s's engine.
func (c *Engine) Server(s int) *engine.Engine { return c.servers[s] }

// K returns the total learner count n×g×m.
func (c *Engine) K() int { return c.cfg.Servers * c.cfg.GPUsPerServer * c.cfg.LearnersPerGPU }

func (c *Engine) modelBytes() int64 { return c.modelElems * 4 }

// ScheduleIteration wires one cluster iteration: every server schedules its
// own SMA iteration; when the iteration carried an intra-server global
// synchronisation and the τ_global period has elapsed, cross-server average
// tasks follow — per server, the network stream waits for the server's
// reference model to become consistent, stages it to the NIC, joins the
// cross-server all-reduce, and broadcasts the refreshed cluster average
// back; each server's next read of its average model gates on that
// completion, so with Overlap the exchange hides behind the next
// iteration's learning tasks.
func (c *Engine) ScheduleIteration() {
	c.iter++
	synced := false
	for _, srv := range c.servers {
		if srv.ScheduleIteration() {
			synced = true
		}
	}
	if !synced || c.cfg.Servers <= 1 {
		return
	}
	c.localSyncs++
	if c.localSyncs%max(1, c.cfg.TauGlobal) != 0 {
		return
	}

	// Stage each server's reference model onto its NIC once the server's
	// global synchronisation finished.
	staged := make([]*gpusim.Event, c.cfg.Servers)
	for s, srv := range c.servers {
		ns := c.netStreams[s]
		for _, ev := range srv.GlobalSyncDone() {
			ns.Wait(ev)
		}
		ns.Kernel("d2h_server_model", 1, c.cfg.Cost.TransferUS(c.modelBytes()))
		staged[s] = c.sim.NewEvent()
		ns.Record(staged[s])
	}
	// The collective cannot start before every server staged its model.
	xferUS := c.cfg.Net.AllReduceUS(c.modelBytes(), c.cfg.Servers)
	for s, srv := range c.servers {
		ns := c.netStreams[s]
		for _, ev := range staged {
			ns.Wait(ev)
		}
		if xferUS > 0 {
			ns.Kernel("xserver_allreduce", 1, xferUS)
		}
		ns.Kernel("h2d_cluster_avg", 1, c.cfg.Cost.TransferUS(c.modelBytes()))
		ns.Kernel("update_server_avg", 2, c.cfg.Cost.VectorKernelUS(c.modelElems))
		done := c.sim.NewEvent()
		ns.Record(done)
		srv.Gate(done)
	}
}

// RunIterations schedules and executes n cluster iterations, returning the
// elapsed virtual time in microseconds.
func (c *Engine) RunIterations(n int) float64 {
	start := c.sim.Now()
	for i := 0; i < n; i++ {
		c.ScheduleIteration()
	}
	c.sim.Run()
	return c.sim.Now() - start
}

// Throughput runs n iterations and returns training throughput in images
// per second across the whole cluster.
func (c *Engine) Throughput(n int) float64 {
	us := c.RunIterations(n)
	if us <= 0 {
		return 0
	}
	images := float64(n * c.K() * c.cfg.Batch)
	return images / (us / 1e6)
}

// EpochSeconds returns the virtual duration of one epoch over nSamples at
// the cluster's measured throughput.
func (c *Engine) EpochSeconds(nSamples, measureIters int) float64 {
	tp := c.Throughput(measureIters)
	if tp <= 0 {
		return 0
	}
	return float64(nSamples) / tp
}
