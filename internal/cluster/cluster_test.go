package cluster

import (
	"testing"

	"crossbow/internal/engine"
	"crossbow/internal/nn"
)

// TestSingleServerDegenerate pins the acceptance criterion that the cluster
// plane reproduces single-server results exactly: with Servers=1 no
// cross-server task is scheduled, so the cluster engine's virtual timeline
// — and therefore its throughput — must be bit-identical to the plain
// engine's.
func TestSingleServerDegenerate(t *testing.T) {
	cases := []struct {
		model nn.ModelID
		gpus  int
		m     int
		tau   int
	}{
		{nn.LeNet, 1, 1, 1},
		{nn.ResNet32, 2, 2, 1},
		{nn.ResNet32, 4, 2, 4},
		{nn.VGG16, 2, 1, 1},
	}
	for _, tc := range cases {
		single := engine.New(engine.Config{
			Model: tc.model, GPUs: tc.gpus, LearnersPerGPU: tc.m,
			Batch: 16, Tau: tc.tau, Overlap: true,
		}).Throughput(20)
		clustered := New(Config{
			Model: tc.model, Servers: 1, GPUsPerServer: tc.gpus,
			LearnersPerGPU: tc.m, Batch: 16, TauLocal: tc.tau, Overlap: true,
		}).Throughput(20)
		if single != clustered {
			t.Errorf("%s g=%d m=%d tau=%d: cluster(1 server)=%v images/s, engine=%v — degenerate case must be identical",
				tc.model, tc.gpus, tc.m, tc.tau, clustered, single)
		}
		if single <= 0 {
			t.Errorf("%s: throughput %v, want > 0", tc.model, single)
		}
	}
}

// TestScalingMonotoneSubLinear is the acceptance sweep: an 8-server
// ResNet-32 cluster under the Ethernet cost model must gain throughput with
// every doubling of servers, but at sub-linear efficiency (the interconnect
// is not free).
func TestScalingMonotoneSubLinear(t *testing.T) {
	tp := make(map[int]float64)
	for _, n := range []int{1, 2, 4, 8} {
		tp[n] = New(Config{
			Model: nn.ResNet32, Servers: n, GPUsPerServer: 8,
			LearnersPerGPU: 2, Batch: 16, Overlap: true,
			Net: Ethernet10G(),
		}).Throughput(20)
		if tp[n] <= 0 {
			t.Fatalf("servers=%d: throughput %v, want > 0", n, tp[n])
		}
	}
	for _, n := range []int{2, 4, 8} {
		if tp[n] <= tp[n/2] {
			t.Errorf("throughput not monotone: %d servers %v <= %d servers %v",
				n, tp[n], n/2, tp[n/2])
		}
		eff := tp[n] / (float64(n) * tp[1])
		if eff >= 1 {
			t.Errorf("servers=%d: scaling efficiency %v, want sub-linear (< 1)", n, eff)
		}
		t.Logf("servers=%d: %.0f images/s, efficiency %.2f", n, tp[n], eff)
	}
}

// TestInterconnectPressure: a faster network must never lose throughput,
// and on the bandwidth-hungry VGG-16 it must win outright.
func TestInterconnectPressure(t *testing.T) {
	run := func(net Interconnect) float64 {
		return New(Config{
			Model: nn.VGG16, Servers: 4, GPUsPerServer: 2,
			LearnersPerGPU: 1, Batch: 16, Overlap: true, Net: net,
		}).Throughput(20)
	}
	eth := run(Ethernet10G())
	ib := run(InfiniBandEDR())
	if ib <= eth {
		t.Errorf("InfiniBand %v images/s <= 10GbE %v — faster interconnect must help VGG-16", ib, eth)
	}
}

// TestTauGlobalRelaxation: averaging across servers less often must not
// slow the cluster down, and under a slow interconnect it should speed it
// up (the τ trade-off of §5.5, one tier up).
func TestTauGlobalRelaxation(t *testing.T) {
	run := func(tauG int) float64 {
		return New(Config{
			Model: nn.ResNet32, Servers: 4, GPUsPerServer: 2,
			LearnersPerGPU: 1, Batch: 16, TauGlobal: tauG, Overlap: true,
			Net: Ethernet10G(),
		}).Throughput(24)
	}
	if t1, t4 := run(1), run(4); t4 < t1 {
		t.Errorf("tau_global=4 throughput %v < tau_global=1 %v — relaxing sync must not cost", t4, t1)
	}
}

// TestOverlapHidesCrossServerSync: overlapping synchronisation with the
// next iteration's learning tasks (Figure 8, extended to the cluster tier)
// must beat the execution-barrier schedule.
func TestOverlapHidesCrossServerSync(t *testing.T) {
	run := func(overlap bool) float64 {
		return New(Config{
			Model: nn.ResNet32, Servers: 2, GPUsPerServer: 2,
			LearnersPerGPU: 2, Batch: 16, Overlap: overlap,
			Net: Ethernet10G(),
		}).Throughput(20)
	}
	on, off := run(true), run(false)
	if on <= off {
		t.Errorf("overlap %v images/s <= barrier %v — overlap must hide sync", on, off)
	}
}

// TestClusterUtilisation sanity-checks the shared clock: every server's
// devices must see work.
func TestClusterUtilisation(t *testing.T) {
	c := New(Config{
		Model: nn.ResNet32, Servers: 2, GPUsPerServer: 2,
		LearnersPerGPU: 2, Batch: 16, Overlap: true,
	})
	c.RunIterations(10)
	for d := 0; d < c.Sim().NumDevices(); d++ {
		if u := c.Sim().Device(d).Utilisation(); u <= 0 {
			t.Errorf("device %d idle for the whole run (utilisation %v)", d, u)
		}
	}
	if got := c.K(); got != 2*2*2 {
		t.Errorf("K() = %d, want 8", got)
	}
}
