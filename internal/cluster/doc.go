// Package cluster is the scale-out plane of the reproduction (DESIGN.md
// §4): a discrete-event simulation of N multi-GPU servers — each an
// internal/engine instance over its own slice of a shared internal/gpusim
// simulator — connected by a configurable network interconnect. It extends
// the paper's two-tier synchronisation (intra-GPU, inter-GPU; §3.3) with a
// third tier: cross-server average tasks that exchange each server's
// reference model over the network, overlapping the next iteration's
// intra-server work exactly as Figure 8 overlaps global synchronisation
// with the next iteration's learning tasks.
//
// The paper scopes Crossbow to a single server, where communication rides
// PCIe/NVLink; across servers the interconnect is orders of magnitude
// slower, so the cluster plane models it explicitly (latency + bandwidth +
// collective algorithm) rather than treating communication as free — the
// modelling stance that makes scale-out claims credible.
package cluster
