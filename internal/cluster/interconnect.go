package cluster

import "math"

// Interconnect is the cost model of the cross-server network: a flat
// latency/bandwidth link model plus the collective algorithm used for the
// cross-server average.
type Interconnect struct {
	// Name labels the preset (for reports).
	Name string
	// LatencyUS is the one-way message latency per collective step.
	LatencyUS float64
	// BytesPerUS is effective point-to-point bandwidth per server NIC.
	BytesPerUS float64
	// Tree selects a binomial-tree reduce+broadcast instead of the default
	// bandwidth-optimal ring all-reduce: fewer, larger steps — better on
	// high-latency links with small models, worse on large models.
	Tree bool
}

// Ethernet10G returns the commodity-cluster default: 10 Gb/s Ethernet
// (~1.25 GB/s) with kernel-stack latency.
func Ethernet10G() Interconnect {
	return Interconnect{Name: "10GbE", LatencyUS: 50, BytesPerUS: 1_250}
}

// Ethernet25G returns a 25 Gb/s Ethernet model with lighter (DPDK-class)
// latency.
func Ethernet25G() Interconnect {
	return Interconnect{Name: "25GbE", LatencyUS: 20, BytesPerUS: 3_125}
}

// InfiniBandEDR returns a 100 Gb/s EDR InfiniBand model with RDMA latency.
func InfiniBandEDR() Interconnect {
	return Interconnect{Name: "IB-EDR", LatencyUS: 2, BytesPerUS: 12_500}
}

// Presets returns every named interconnect cost model, in
// slowest-to-fastest order. Sweeps and validation harnesses (the real TCP
// transport reports its measured all-reduce time next to each preset's
// AllReduceUS prediction) iterate this list instead of hard-coding the
// constructors.
func Presets() []Interconnect {
	return []Interconnect{Ethernet10G(), Ethernet25G(), InfiniBandEDR()}
}

// AllReduceUS returns the duration of all-reducing n bytes across servers
// server nodes.
//
// Ring: 2(k−1) pipeline steps of n/k bytes each — the same collective the
// paper uses across GPUs (§4.2), bandwidth-optimal but latency-heavy.
// Tree: reduce then broadcast over a binomial tree, 2⌈log2 k⌉ steps of the
// full n bytes.
func (ic Interconnect) AllReduceUS(bytes int64, servers int) float64 {
	if servers <= 1 || bytes <= 0 {
		return 0
	}
	if ic.Tree {
		steps := 2 * int(math.Ceil(math.Log2(float64(servers))))
		return float64(steps) * (ic.LatencyUS + float64(bytes)/ic.BytesPerUS)
	}
	steps := 2 * (servers - 1)
	chunk := float64(bytes) / float64(servers)
	return float64(steps) * (ic.LatencyUS + chunk/ic.BytesPerUS)
}
