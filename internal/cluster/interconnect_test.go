package cluster

import "testing"

func TestAllReduceDegenerate(t *testing.T) {
	for _, ic := range Presets() {
		if d := ic.AllReduceUS(1<<20, 1); d != 0 {
			t.Errorf("%s: all-reduce over 1 server costs %v µs, want 0", ic.Name, d)
		}
		if d := ic.AllReduceUS(0, 8); d != 0 {
			t.Errorf("%s: all-reduce of 0 bytes costs %v µs, want 0", ic.Name, d)
		}
	}
}

func TestAllReduceGrowsWithBytesAndServers(t *testing.T) {
	ic := Ethernet10G()
	if ic.AllReduceUS(2<<20, 4) <= ic.AllReduceUS(1<<20, 4) {
		t.Error("all-reduce duration not monotone in bytes")
	}
	if ic.AllReduceUS(1<<20, 8) <= ic.AllReduceUS(1<<20, 2) {
		t.Error("ring all-reduce duration not monotone in server count")
	}
}

func TestBandwidthOrdering(t *testing.T) {
	// For a large model the faster links must win regardless of algorithm.
	bytes := int64(64 << 20)
	eth10 := Ethernet10G().AllReduceUS(bytes, 4)
	eth25 := Ethernet25G().AllReduceUS(bytes, 4)
	ib := InfiniBandEDR().AllReduceUS(bytes, 4)
	if !(ib < eth25 && eth25 < eth10) {
		t.Errorf("want IB < 25GbE < 10GbE, got %v, %v, %v", ib, eth25, eth10)
	}
}

func TestTreeBeatsRingOnLatencyBoundTransfers(t *testing.T) {
	// Tiny model on a high-latency link: the ring's 2(k−1) latency charges
	// dominate, so the tree's 2·log2(k) steps must be cheaper.
	ring := Interconnect{LatencyUS: 500, BytesPerUS: 1_250}
	tree := Interconnect{LatencyUS: 500, BytesPerUS: 1_250, Tree: true}
	if tree.AllReduceUS(1024, 8) >= ring.AllReduceUS(1024, 8) {
		t.Error("tree all-reduce should beat ring on latency-bound transfers")
	}
	// Large model on the same link: ring's bandwidth-optimality wins.
	if ring.AllReduceUS(256<<20, 8) >= tree.AllReduceUS(256<<20, 8) {
		t.Error("ring all-reduce should beat tree on bandwidth-bound transfers")
	}
}
