package core

import (
	"fmt"

	"crossbow/internal/tensor"
)

// SSGD is parallel synchronous SGD with momentum — the algorithm behind
// the paper's TensorFlow baseline (§2.3). Each worker computes a partial
// gradient over its batch partition; the aggregate (averaged) gradient
// updates a single global model with momentum (Eq. 3), and every replica
// is reset to the global model before the next iteration.
type SSGD struct {
	LearnRate float32
	Momentum  float32
	// StateRanges marks the non-learnable state segments of the model
	// (batch-norm running statistics). Their gradients are identically
	// zero, so the global model carries them by averaging the replicas'
	// self-updated values each iteration.
	StateRanges [][2]int

	w   []float32 // the single global model
	vel []float32 // momentum velocity
	agg []float32 // scratch: aggregated gradient
}

// NewSSGD creates the optimiser from initial model w0.
func NewSSGD(lr, momentum float32, w0 []float32) *SSGD {
	return &SSGD{
		LearnRate: lr, Momentum: momentum,
		w:   append([]float32(nil), w0...),
		vel: make([]float32, len(w0)),
		agg: make([]float32, len(w0)),
	}
}

// Model returns the global model.
func (s *SSGD) Model() []float32 { return s.w }

// Step aggregates the workers' partial gradients (gs[j] from partition j),
// applies the momentum update to the global model, and copies the new
// model into every replica ws[j] — the §2.3 lockstep: "all replicas are
// the same after each iteration".
func (s *SSGD) Step(ws, gs [][]float32) {
	if len(gs) == 0 {
		panic("core: SSGD.Step with no gradients")
	}
	tensor.AverageInto(s.agg, gs...)
	for i := range s.w {
		s.vel[i] = s.Momentum*s.vel[i] - s.LearnRate*s.agg[i]
		s.w[i] += s.vel[i]
	}
	carryState(s.StateRanges, s.w, ws)
	for _, w := range ws {
		tensor.Copy(w, s.w)
	}
}

// carryState writes the replica-average of each state segment into the
// global model, so layer-maintained state (batch-norm statistics) survives
// the per-iteration replica reset.
func carryState(ranges [][2]int, global []float32, ws [][]float32) {
	if len(ranges) == 0 || len(ws) == 0 {
		return
	}
	inv := 1 / float32(len(ws))
	for _, rg := range ranges {
		for i := rg[0]; i < rg[1]; i++ {
			var s float32
			for _, w := range ws {
				s += w[i]
			}
			global[i] = s * inv
		}
	}
}

// EASGD is elastic averaging SGD (Zhang et al., the paper's §5.5
// comparator): identical to SMA's correction mechanics but without
// momentum on the central average model, and typically synchronising only
// every τ iterations to save communication.
type EASGD struct {
	LearnRate float32
	Alpha     float32
	Tau       int
	// LocalMomentum applies momentum inside each learner's gradient step,
	// mirroring SMA's learners so Figure 15's comparison isolates the
	// central-model momentum.
	LocalMomentum float32

	z     []float32
	delta []float32
	vel   [][]float32
	iter  int
}

// NewEASGD creates the optimiser for k learners from initial model w0.
// alpha zero selects 1/k.
func NewEASGD(lr, alpha float32, tau, k int, w0 []float32) *EASGD {
	if tau < 1 {
		tau = 1
	}
	if alpha == 0 {
		alpha = 1 / float32(k)
	}
	e := &EASGD{
		LearnRate: lr, Alpha: alpha, Tau: tau,
		z:     append([]float32(nil), w0...),
		delta: make([]float32, len(w0)),
		vel:   make([][]float32, k),
	}
	for j := range e.vel {
		e.vel[j] = make([]float32, len(w0))
	}
	return e
}

func (e *EASGD) localStep(j int, w, g []float32) {
	v := e.vel[j]
	for i := range w {
		v[i] = e.LocalMomentum*v[i] - e.LearnRate*g[i]
		w[i] += v[i]
	}
}

// Average returns the central average model.
func (e *EASGD) Average() []float32 { return e.z }

// Step performs one EA-SGD iteration over all learners.
func (e *EASGD) Step(ws, gs [][]float32) {
	e.iter++
	sync := e.iter%e.Tau == 0
	if !sync {
		for j := range ws {
			e.localStep(j, ws[j], gs[j])
		}
		return
	}
	tensor.ZeroSlice(e.delta)
	for j := range ws {
		w := ws[j]
		for i := range w {
			c := e.Alpha * (w[i] - e.z[i])
			e.delta[i] += c
			w[i] -= c
		}
		e.localStep(j, w, gs[j])
	}
	// No momentum term: this is the ablation Figure 15 isolates.
	tensor.Axpy(1, e.delta, e.z)
}

// SetLearnRate updates γ.
func (e *EASGD) SetLearnRate(lr float32) { e.LearnRate = lr }

// ASGD is asynchronous SGD (§2.3, Hogwild-style): each worker applies its
// gradient — computed from a stale snapshot of the shared model — directly
// to the shared model without waiting for the others. The staleness model
// here is one iteration: all gradients in a Step were computed against the
// model as it stood when the iteration began, and workers apply them
// sequentially, each seeing the partial updates of earlier workers.
// Included as the §6 comparison point; Crossbow itself is synchronous.
type ASGD struct {
	LearnRate float32
	// StateRanges: see SSGD.StateRanges.
	StateRanges [][2]int

	w []float32
}

// NewASGD creates the optimiser from initial model w0.
func NewASGD(lr float32, w0 []float32) *ASGD {
	return &ASGD{LearnRate: lr, w: append([]float32(nil), w0...)}
}

// Model returns the shared model.
func (a *ASGD) Model() []float32 { return a.w }

// Step applies each worker's (stale) gradient to the shared model in turn,
// then refreshes every replica with the current shared model — the
// snapshot the next iteration's gradients will be computed against.
func (a *ASGD) Step(ws, gs [][]float32) {
	if len(ws) != len(gs) {
		panic(fmt.Sprintf("core: ASGD.Step with %d replicas, %d gradients", len(ws), len(gs)))
	}
	for _, g := range gs {
		tensor.Axpy(-a.LearnRate, g, a.w)
	}
	carryState(a.StateRanges, a.w, ws)
	for _, w := range ws {
		tensor.Copy(w, a.w)
	}
}
