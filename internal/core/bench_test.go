package core

import (
	"testing"

	"crossbow/internal/nn"
)

// benchTrain runs one statistical-plane training epoch per iteration — the
// quantity the paper's TTA sweeps and `go test -bench=.` replays bottom out
// in. Keeping it as a benchmark lets kernel PRs demonstrate wall-clock wins
// on the real training path rather than on isolated kernels.
func benchTrain(b *testing.B, cfg TrainConfig) {
	b.Helper()
	cfg.MaxEpochs = 1
	cfg.Seed = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(cfg)
	}
}

// BenchmarkEpochResNet32 is the headline statistical-plane number: one
// ResNet-32 epoch with a single learner (128 iterations at b=16 over the
// default 2048-sample synthetic training set).
func BenchmarkEpochResNet32(b *testing.B) {
	benchTrain(b, TrainConfig{Model: nn.ResNet32, Algo: AlgoSMA, Momentum: 0.9})
}

// BenchmarkEpochResNet32_K4 exercises the multi-learner path (4 replicas on
// one simulated GPU), where learner goroutines and the kernel worker pool
// share the machine.
func BenchmarkEpochResNet32_K4(b *testing.B) {
	benchTrain(b, TrainConfig{
		Model: nn.ResNet32, Algo: AlgoSMA, Momentum: 0.9,
		GPUs: 1, LearnersPerGPU: 4,
	})
}

// BenchmarkEpochLeNet covers the conv+pool+dense mix.
func BenchmarkEpochLeNet(b *testing.B) {
	benchTrain(b, TrainConfig{Model: nn.LeNet, Algo: AlgoSMA, Momentum: 0.9})
}
