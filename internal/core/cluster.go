package core

import (
	"fmt"

	"crossbow/internal/tensor"
)

// ClusterSMAConfig extends SMAConfig with the inter-server tier of the
// cluster plane's two-level averaging schedule.
type ClusterSMAConfig struct {
	SMAConfig // intra-server tier: LearnRate, Momentum, LocalMomentum, Alpha, Tau (τ_local), StateRanges

	// TauGlobal is the inter-server averaging period in units of
	// intra-server synchronisations: server reference models exchange
	// corrections every TauGlobal-th local synchronisation (0 → 1).
	TauGlobal int
	// AlphaGlobal is the inter-server correction constant ≈ 1/n for n
	// servers. Zero selects 1/n.
	AlphaGlobal float32
	// GlobalMomentum is µ applied to the cluster average model's update;
	// zero selects Momentum.
	GlobalMomentum float32
	// ExchangeRetries bounds how many times a fault-aborted global
	// exchange is retried back-to-back before the update is skipped until
	// the next τ_global boundary (0 → 2, negative → no retries). Retrying
	// is sound: the round that eventually succeeds after churn carries
	// Restart and re-derives z, so a missed attempt never corrupts state —
	// retries just keep the averaging schedule on cadence under faults.
	ExchangeRetries int
	// OverlapGlobal, with an exchanger that supports AsyncGlobalExchanger,
	// launches the global all-reduce at the τ_global boundary and keeps
	// local iterations running while the sum is in flight; the completed
	// sum is folded in at the next deterministic boundary every rank
	// reaches identically (see DistClusterSMA.Drain). Ignored by the
	// in-process ClusterSMA (its exchange is a memory copy) and by
	// exchangers without an asynchronous path.
	OverlapGlobal bool
}

// ClusterSMA generalises the hierarchical SMA of §3.3 by one level: the
// learners of each server run flat SMA against their server's reference
// model every τ_local iterations (cheap, intra-server scope), and every
// τ_global local synchronisations the server reference models themselves
// run an SMA exchange against the cluster average model (expensive,
// network scope). With a single server the global tier vanishes and the
// optimiser is exactly SMA — the degenerate case the tests pin down.
type ClusterSMA struct {
	cfg     ClusterSMAConfig
	servers [][]int // learner indices per server
	smas    []*SMA  // one intra-server optimiser per server

	z      []float32 // cluster average model (nil with one server)
	zPrev  []float32
	delta  []float32
	state  []bool
	alphaG float32
	muG    float32

	wViews, gViews [][][]float32 // reusable per-server slice views

	iter       int
	localSyncs int
}

// NewClusterSMA creates the optimiser. servers assigns each learner index
// to a server; the groups must partition 0..k-1.
func NewClusterSMA(cfg ClusterSMAConfig, w0 []float32, servers [][]int) *ClusterSMA {
	if len(servers) == 0 {
		panic("core: cluster SMA needs at least one server")
	}
	if cfg.Tau < 1 {
		cfg.Tau = 1
	}
	if cfg.TauGlobal < 1 {
		cfg.TauGlobal = 1
	}
	alphaG := cfg.AlphaGlobal
	if alphaG == 0 {
		alphaG = 1 / float32(len(servers))
	}
	muG := cfg.GlobalMomentum
	if muG == 0 {
		muG = cfg.Momentum
	}
	c := &ClusterSMA{cfg: cfg, alphaG: alphaG, muG: muG}
	k := 0
	for _, s := range servers {
		if len(s) == 0 {
			panic("core: empty server group")
		}
		c.servers = append(c.servers, append([]int(nil), s...))
		k += len(s)
	}
	validateGroups(servers, k)
	for _, s := range c.servers {
		c.smas = append(c.smas, NewSMA(cfg.SMAConfig, w0, len(s)))
		c.wViews = append(c.wViews, make([][]float32, len(s)))
		c.gViews = append(c.gViews, make([][]float32, len(s)))
	}
	if len(c.servers) > 1 {
		c.z = append([]float32(nil), w0...)
		c.zPrev = append([]float32(nil), w0...)
		c.delta = make([]float32, len(w0))
		if len(cfg.StateRanges) > 0 {
			c.state = make([]bool, len(w0))
			for _, rg := range cfg.StateRanges {
				for i := rg[0]; i < rg[1] && i < len(w0); i++ {
					c.state[i] = true
				}
			}
		}
	}
	return c
}

// Average returns the model the cluster trains: the cluster average model,
// or the single server's average model in the degenerate case. The slice
// is live — do not modify.
func (c *ClusterSMA) Average() []float32 {
	if len(c.smas) == 1 {
		return c.smas[0].Average()
	}
	return c.z
}

// SetLearnRate updates γ on every server.
func (c *ClusterSMA) SetLearnRate(lr float32) {
	for _, s := range c.smas {
		s.SetLearnRate(lr)
	}
}

// Servers returns the learner grouping (for tests and the engine).
func (c *ClusterSMA) Servers() [][]int { return c.servers }

func (c *ClusterSMA) fillViews(ws, gs [][]float32) {
	for si, s := range c.servers {
		for i, j := range s {
			c.wViews[si][i] = ws[j]
			if gs != nil {
				c.gViews[si][i] = gs[j]
			}
		}
	}
}

// Step performs one cluster iteration: every server runs its own SMA step
// (local gradient steps, and on τ_local boundaries the intra-server
// exchange with the server's reference model); every τ_global-th local
// synchronisation, the reference models run the same exchange one tier up
// against the cluster average model, which follows the cross-server
// consensus with its own momentum.
func (c *ClusterSMA) Step(ws, gs [][]float32) {
	c.iter++
	c.fillViews(ws, gs)
	for si := range c.smas {
		c.smas[si].Step(c.wViews[si], c.gViews[si])
	}
	if c.iter%c.cfg.Tau != 0 {
		return
	}
	c.localSyncs++
	if len(c.smas) == 1 || c.localSyncs%c.cfg.TauGlobal != 0 {
		return
	}
	// Inter-server tier: the same consensus exchange one level up — the
	// server reference models play the replicas, the cluster average
	// model plays z (Alg 1 lines 8-13 with servers as the replicas).
	refs := make([][]float32, len(c.smas))
	for si, s := range c.smas {
		refs[si] = s.Average()
	}
	smaExchange(refs, c.z, c.zPrev, c.delta, c.state, c.alphaG, c.muG)
}

// Restart re-initialises the averaging process from the cluster average
// model (§3.2): server reference models and replicas reset to it, momentum
// history cleared.
func (c *ClusterSMA) Restart(ws [][]float32) {
	if len(ws) != c.numLearners() {
		panic(fmt.Sprintf("core: ClusterSMA.Restart with %d replicas, want %d", len(ws), c.numLearners()))
	}
	c.fillViews(ws, nil)
	if len(c.smas) > 1 {
		copy(c.zPrev, c.z)
		for _, s := range c.smas {
			tensor.Copy(s.z, c.z)
			tensor.Copy(s.zPrev, c.z)
		}
	}
	for si, s := range c.smas {
		s.Restart(c.wViews[si])
	}
	c.iter = 0
	c.localSyncs = 0
}

func (c *ClusterSMA) numLearners() int {
	k := 0
	for _, s := range c.servers {
		k += len(s)
	}
	return k
}
