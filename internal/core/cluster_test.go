package core

import (
	"math"
	"testing"

	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// fakeGrads fills gs with deterministic pseudo-gradients that differ per
// learner and per iteration.
func fakeGrads(gs [][]float32, iter int) {
	for j := range gs {
		for i := range gs[j] {
			gs[j][i] = float32(math.Sin(float64(iter)*0.7+float64(j)*1.3+float64(i)*0.11)) * 0.1
		}
	}
}

func makeReplicas(k, dim int) (ws, gs [][]float32, w0 []float32) {
	w0 = make([]float32, dim)
	for i := range w0 {
		w0[i] = float32(math.Cos(float64(i) * 0.3))
	}
	for j := 0; j < k; j++ {
		ws = append(ws, append([]float32(nil), w0...))
		gs = append(gs, make([]float32, dim))
	}
	return ws, gs, w0
}

// TestClusterSMASingleServerEqualsSMA pins the statistical-plane degenerate
// case: with one server the two-level schedule is exactly Algorithm 1,
// step for step, including τ>1, local momentum, state ranges and restarts.
func TestClusterSMASingleServerEqualsSMA(t *testing.T) {
	const k, dim = 4, 32
	cfg := SMAConfig{
		LearnRate: 0.05, Momentum: 0.9, LocalMomentum: 0.6,
		Tau: 2, StateRanges: [][2]int{{28, 32}},
	}
	wsA, gsA, w0 := makeReplicas(k, dim)
	wsB, gsB, _ := makeReplicas(k, dim)
	flat := NewSMA(cfg, w0, k)
	clustered := NewClusterSMA(ClusterSMAConfig{SMAConfig: cfg, TauGlobal: 3}, w0, GroupsFor(1, k))

	for iter := 1; iter <= 12; iter++ {
		fakeGrads(gsA, iter)
		fakeGrads(gsB, iter)
		flat.Step(wsA, gsA)
		clustered.Step(wsB, gsB)
		if iter == 7 {
			flat.Restart(wsA)
			clustered.Restart(wsB)
		}
		for j := 0; j < k; j++ {
			if d := tensor.MaxAbsDiff(wsA[j], wsB[j]); d != 0 {
				t.Fatalf("iter %d: replica %d diverges by %v", iter, j, d)
			}
		}
		if d := tensor.MaxAbsDiff(flat.Average(), clustered.Average()); d != 0 {
			t.Fatalf("iter %d: average models diverge by %v", iter, d)
		}
	}
}

// TestClusterSMAGlobalTierPullsServersTogether: servers receiving opposing
// gradients drift apart; a tighter τ_global must keep their reference
// models closer.
func TestClusterSMAGlobalTierPullsServersTogether(t *testing.T) {
	const dim = 16
	run := func(tauGlobal int) float64 {
		ws, gs, w0 := makeReplicas(4, dim) // 2 servers × 2 learners
		c := NewClusterSMA(ClusterSMAConfig{
			SMAConfig: SMAConfig{LearnRate: 0.1, Momentum: 0.5},
			TauGlobal: tauGlobal,
		}, w0, GroupsFor(2, 2))
		for iter := 1; iter <= 8; iter++ {
			for j := range gs {
				sign := float32(1)
				if j >= 2 {
					sign = -1
				}
				for i := range gs[j] {
					gs[j][i] = sign
				}
			}
			c.Step(ws, gs)
		}
		return float64(tensor.MaxAbsDiff(c.smas[0].Average(), c.smas[1].Average()))
	}
	tight, loose := run(1), run(8)
	if tight >= loose {
		t.Errorf("server drift with tau_global=1 (%v) not below tau_global=8 (%v)", tight, loose)
	}
	if loose == 0 {
		t.Error("opposing gradients should make unsynchronised servers drift")
	}
}

// TestClusterSMAStateCarriesServerMean: state entries (batch-norm
// statistics) are exempt from corrections; the cluster average model must
// carry the mean of the server reference models there.
func TestClusterSMAStateCarriesServerMean(t *testing.T) {
	const dim = 8
	ws, gs, w0 := makeReplicas(2, dim)
	cfg := ClusterSMAConfig{
		SMAConfig: SMAConfig{LearnRate: 0.1, StateRanges: [][2]int{{6, 8}}},
	}
	c := NewClusterSMA(cfg, w0, GroupsFor(2, 1))
	fakeGrads(gs, 1)
	c.Step(ws, gs)
	for i := 6; i < 8; i++ {
		want := (c.smas[0].Average()[i] + c.smas[1].Average()[i]) / 2
		if got := c.Average()[i]; got != want {
			t.Errorf("state entry %d: cluster average %v, want server mean %v", i, got, want)
		}
	}
}

// TestTrainClusterSMA exercises the full trainer loop on the cluster
// algorithm: it must learn, stay deterministic, and report the right K.
func TestTrainClusterSMA(t *testing.T) {
	cfg := TrainConfig{
		Model: nn.LeNet, Algo: AlgoSMACluster,
		Servers: 2, GPUs: 1, LearnersPerGPU: 2, BatchPerLearner: 8,
		Momentum: 0.9, MaxEpochs: 4, Seed: 1,
	}
	res := Train(cfg)
	if res.K != 4 {
		t.Fatalf("K = %d, want 4 (2 servers × 1 GPU × 2 learners)", res.K)
	}
	if res.FinalAccuracy <= 0.12 {
		t.Fatalf("accuracy %.3f barely above chance", res.FinalAccuracy)
	}
	again := Train(cfg)
	if tensor.MaxAbsDiff(res.Model, again.Model) != 0 {
		t.Fatal("cluster training not deterministic")
	}
}
