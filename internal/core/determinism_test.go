package core

import (
	"math"
	"runtime"
	"testing"

	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// determinismCfg is a small but real multi-learner ResNet-32 run exercising
// the batched conv kernels, the worker pool and the parallel SMA exchange.
func determinismCfg() TrainConfig {
	return TrainConfig{
		Model: nn.ResNet32, Algo: AlgoSMA,
		GPUs: 1, LearnersPerGPU: 2,
		BatchPerLearner: 8, Momentum: 0.9,
		MaxEpochs: 2, Seed: 42,
		TrainSamples: 128, TestSamples: 64,
	}
}

func resultsBitIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Series) != len(b.Series) {
		t.Fatalf("%s: series length %d != %d", label, len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		if a.Series[i] != b.Series[i] {
			t.Fatalf("%s: epoch point %d differs: %+v vs %+v", label, i, a.Series[i], b.Series[i])
		}
	}
	if len(a.Model) != len(b.Model) {
		t.Fatalf("%s: model length %d != %d", label, len(a.Model), len(b.Model))
	}
	for i := range a.Model {
		if math.Float32bits(a.Model[i]) != math.Float32bits(b.Model[i]) {
			t.Fatalf("%s: model weight %d differs: %v vs %v", label, i, a.Model[i], b.Model[i])
		}
	}
}

// TestTrainBitIdenticalAcrossWorkerCounts is the determinism contract at the
// training level: the kernel worker pool partitions outputs disjointly, so
// the full training trajectory is bit-identical at any parallelism level.
func TestTrainBitIdenticalAcrossWorkerCounts(t *testing.T) {
	prev := tensor.Parallelism()
	defer tensor.SetParallelism(prev)

	tensor.SetParallelism(1)
	base := Train(determinismCfg())
	for _, workers := range []int{2, 5, 16} {
		tensor.SetParallelism(workers)
		res := Train(determinismCfg())
		resultsBitIdentical(t, "workers", base, res)
	}
}

// TestTrainBitIdenticalAcrossGOMAXPROCS re-runs the same training at
// GOMAXPROCS 1 vs N (learner goroutines plus kernel pool under real
// preemption) and requires identical results.
func TestTrainBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	prevP := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevP)

	runtime.GOMAXPROCS(1)
	one := Train(determinismCfg())
	n := runtime.NumCPU() * 2 // oversubscribe even on single-core runners
	runtime.GOMAXPROCS(n)
	many := Train(determinismCfg())
	resultsBitIdentical(t, "gomaxprocs", one, many)
}
