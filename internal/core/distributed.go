package core

import (
	"fmt"

	"crossbow/internal/tensor"
)

// ExchangeRound reports one global all-reduce from the cluster transport's
// point of view (a subset of transport.Round, redeclared here so core does
// not depend on the transport package).
type ExchangeRound struct {
	// Seq is the cluster-wide round number.
	Seq uint64
	// Participants is the number of servers whose reference models were
	// summed.
	Participants int
	// Restart marks a round whose participant view differs from the
	// previous round's (a server died, left, or rejoined since).
	Restart bool
	// Aborted marks a collective cut short by a membership change; the
	// buffer contents are undefined and the exchange must be skipped.
	Aborted bool
}

// GlobalExchanger is the cluster plane's network: it sums a model vector
// element-wise across every live server, in place, returning bit-identical
// bytes on all participants (the transport's collectives reduce in a fixed
// rank order to guarantee exactly that). transport.Node satisfies it
// through a one-line adapter in the root package.
type GlobalExchanger interface {
	AllReduce(buf []float32) (ExchangeRound, error)
}

// PendingExchange is an in-flight asynchronous global exchange: Poll
// reports completion without blocking, Wait blocks for the result. The
// buffer handed to BeginAllReduce belongs to the exchanger until Wait
// returns.
type PendingExchange interface {
	Poll() bool
	Wait() (ExchangeRound, error)
}

// AsyncGlobalExchanger is implemented by exchangers that can run the
// all-reduce in the background while the caller keeps computing — the
// transport's non-blocking round API. A completed asynchronous round is
// byte-for-byte the synchronous round's result.
type AsyncGlobalExchanger interface {
	GlobalExchanger
	BeginAllReduce(buf []float32) (PendingExchange, error)
}

// DistClusterSMA is the multi-process form of ClusterSMA: this process
// runs ONE server's learners (a flat intra-server SMA), and the
// inter-server tier exchanges the server reference model over a real
// network instead of iterating sibling servers in memory.
//
// The mathematics mirror ClusterSMA.Step's global tier. There, with all n
// reference models in hand, the cluster average model z accumulates
// per-server corrections: z ← z + Σ_s α_G(ref_s − z) + µ_G(z − z_prev).
// Here each process holds only its own ref, but the all-reduce delivers
// sum = Σ_s ref_s, and Σ_s α_G(ref_s − z) = α_G(sum − n·z), so every node
// can apply the identical update. Because z starts replicated (same seed,
// same w0), the sum is bit-identical on every node (fixed reduction
// order), and the update reads only replicated values, z stays bit-for-bit
// replicated across the cluster without ever being transmitted — each node
// also folds its own correction α_G(ref − z) into its local reference
// model, exactly as the simulated exchange does.
//
// Churn breaks the replication invariant (an aborted round updates z on
// some nodes and not others; a rejoining node carries a stale or
// snapshot-seeded z). Healing is the transport's Restart flag: any round
// whose membership view changed re-derives z = sum/n on every participant
// and clears the momentum history (z_prev ← z) — the §3.2 restart applied
// at the membership boundary. One successful restart round later the
// cluster is replicated again, whatever state the members arrived in.
type DistClusterSMA struct {
	cfg ClusterSMAConfig
	sma *SMA // this server's intra-server tier
	ex  GlobalExchanger

	// async is non-nil when OverlapGlobal is on and the exchanger supports
	// it: the τ_global boundary then launches the round and keeps
	// training; pending is the in-flight handle until the next fold
	// boundary (see Drain).
	async   AsyncGlobalExchanger
	pending PendingExchange

	z, zPrev []float32 // cluster average model, replicated across nodes
	buf      []float32 // all-reduce scratch
	state    []bool
	alphaG   float32 // 0 → 1/participants, resolved per round
	muG      float32

	iter       int
	localSyncs int

	rounds     int64 // successful global exchanges
	aborted    int64 // aborted collectives observed (including retried ones)
	retried    int64 // exchanges rescued by a retry after an abort
	overlapped int64 // exchanges launched asynchronously
	lastRnd    ExchangeRound
}

// NewDistClusterSMA creates the optimiser for this server's k local
// learners. w0 must be identical on every cold-started node (same seed) —
// a node warm-started from a peer snapshot gets healed by its first
// (restart) round instead. ex is the cluster network.
func NewDistClusterSMA(cfg ClusterSMAConfig, w0 []float32, k int, ex GlobalExchanger) *DistClusterSMA {
	if ex == nil {
		panic("core: DistClusterSMA needs a GlobalExchanger")
	}
	if cfg.Tau < 1 {
		cfg.Tau = 1
	}
	if cfg.TauGlobal < 1 {
		cfg.TauGlobal = 1
	}
	muG := cfg.GlobalMomentum
	if muG == 0 {
		muG = cfg.Momentum
	}
	d := &DistClusterSMA{
		cfg:    cfg,
		sma:    NewSMA(cfg.SMAConfig, w0, k),
		ex:     ex,
		z:      append([]float32(nil), w0...),
		zPrev:  append([]float32(nil), w0...),
		buf:    make([]float32, len(w0)),
		alphaG: cfg.AlphaGlobal,
		muG:    muG,
	}
	if cfg.OverlapGlobal {
		// Degrade silently when the exchanger has no asynchronous path:
		// the synchronous exchange computes the identical result, just
		// without hiding it behind computation.
		if a, ok := ex.(AsyncGlobalExchanger); ok {
			d.async = a
		}
	}
	if len(cfg.StateRanges) > 0 {
		d.state = make([]bool, len(w0))
		for _, rg := range cfg.StateRanges {
			for i := rg[0]; i < rg[1] && i < len(w0); i++ {
				d.state[i] = true
			}
		}
	}
	return d
}

// Average returns the cluster average model z — the model the cluster
// trains, bit-identical on every node after each successful round. Live
// slice; do not modify.
func (d *DistClusterSMA) Average() []float32 { return d.z }

// Ref returns this server's reference model (the intra-server tier's
// average model). Live slice; tests compare it against z.
func (d *DistClusterSMA) Ref() []float32 { return d.sma.Average() }

// SetLearnRate updates γ on the local learners.
func (d *DistClusterSMA) SetLearnRate(lr float32) { d.sma.SetLearnRate(lr) }

// Rounds returns the number of successful global exchanges folded into z.
func (d *DistClusterSMA) Rounds() int64 { return d.rounds }

// AbortedRounds returns the number of aborted collectives observed.
func (d *DistClusterSMA) AbortedRounds() int64 { return d.aborted }

// RetriedExchanges returns the number of exchanges that aborted at least
// once but were rescued by a retry within the same τ_global boundary.
func (d *DistClusterSMA) RetriedExchanges() int64 { return d.retried }

// LastRound returns the most recent exchange's report.
func (d *DistClusterSMA) LastRound() ExchangeRound { return d.lastRnd }

// OverlappedExchanges returns the number of exchanges launched
// asynchronously (OverlapGlobal with an async-capable exchanger).
func (d *DistClusterSMA) OverlappedExchanges() int64 { return d.overlapped }

// Step performs one local iteration, and on every TauGlobal-th local
// synchronisation runs the cross-server exchange over the network.
//
// With OverlapGlobal the boundary only *launches* the round: the exchange
// proceeds on the transport's exchange goroutine while the next
// iteration's forward/backward passes run, and the completed sum is folded
// in at Step's entry one iteration later (or at an earlier snapshot /
// evaluation boundary — see Drain). Between launch and fold nothing reads
// or writes the optimiser state the fold touches — the intervening
// computation only reads replica weights and writes gradients — so the
// folded state is bit-for-bit the synchronous path's, merely computed
// while the network round-trip was hidden behind useful work.
func (d *DistClusterSMA) Step(ws, gs [][]float32) {
	d.Drain()
	d.iter++
	d.sma.Step(ws, gs)
	if d.iter%d.cfg.Tau != 0 {
		return
	}
	d.localSyncs++
	if d.localSyncs%d.cfg.TauGlobal != 0 {
		return
	}
	if d.async != nil {
		d.launch()
	} else {
		d.exchangeFrom(0)
	}
}

// launch starts the asynchronous global round: snapshot the reference
// model into the scratch buffer and hand it to the exchange goroutine.
// The reference model itself is not mutated again until the fold, so the
// bytes summed are exactly those the synchronous exchange would have sent.
func (d *DistClusterSMA) launch() {
	copy(d.buf, d.sma.Average())
	p, err := d.async.BeginAllReduce(d.buf)
	if err != nil {
		// Transport closed (shutdown); train on locally.
		d.aborted++
		return
	}
	d.overlapped++
	d.pending = p
}

// Drain folds any in-flight asynchronous exchange into z, blocking until
// the collective completes. It runs wherever the synchronous path would
// already have folded before state is read: at the next Step's entry,
// before a snapshot is published, before evaluation, and before a restart.
// Every rank reaches these boundaries at the same logical point of the
// lockstep schedule, so z stays bit-replicated across the cluster. A
// fault-aborted round is retried synchronously here under the ordinary
// retry budget — the reference model is unchanged since launch, so the
// retry sums the same bytes the aborted attempt carried.
func (d *DistClusterSMA) Drain() {
	p := d.pending
	if p == nil {
		return
	}
	d.pending = nil
	rr, err := p.Wait()
	if err != nil {
		d.aborted++
		return
	}
	d.lastRnd = rr
	if rr.Aborted || rr.Participants < 1 {
		d.aborted++
		if d.retryBudget() > 0 {
			d.exchangeFrom(1)
		}
		return
	}
	d.apply(rr)
}

func (d *DistClusterSMA) retryBudget() int {
	retries := d.cfg.ExchangeRetries
	if retries == 0 {
		retries = 2
	} else if retries < 0 {
		retries = 0
	}
	return retries
}

// exchangeFrom runs one global round synchronously, starting at the given
// attempt number: all-reduce the server reference model, then apply the
// replicated z update (or the restart re-derivation). A fault-aborted
// collective is retried a bounded number of times — the post-churn round
// carries Restart and re-derives z, so a retry can never double-apply
// anything; only after the budget is spent is the update skipped until the
// next τ_global boundary. Drain enters at attempt 1, charging the aborted
// asynchronous attempt against the same budget.
func (d *DistClusterSMA) exchangeFrom(attempt int) {
	retries := d.retryBudget()
	ref := d.sma.Average()
	var r ExchangeRound
	for ; ; attempt++ {
		copy(d.buf, ref)
		rr, err := d.ex.AllReduce(d.buf)
		if err != nil {
			// The transport is closed (shutdown); train on locally.
			d.aborted++
			return
		}
		d.lastRnd = rr
		if rr.Aborted || rr.Participants < 1 {
			d.aborted++
			if attempt < retries {
				continue
			}
			return
		}
		if attempt > 0 {
			d.retried++
		}
		r = rr
		break
	}
	d.apply(r)
}

// apply folds a completed round's consensus sum into the cluster average
// model and the local reference model.
func (d *DistClusterSMA) apply(r ExchangeRound) {
	ref := d.sma.Average()
	n := float32(r.Participants)
	alphaG := d.alphaG
	if alphaG == 0 {
		alphaG = 1 / n
	}
	sum := d.buf
	if r.Restart {
		// Membership changed: z may not be replicated across the
		// participants any more (an aborted round updated some nodes, a
		// rejoiner carries a snapshot-seeded model), so re-derive it from
		// the one value that is — the consensus sum — and clear the
		// momentum history. Then pull the local reference model toward
		// the fresh consensus with a plain correction. Cold starts never
		// come through here: all nodes boot with z = w0 from the shared
		// seed, so the incremental update below is already replicated.
		for i := range d.z {
			zn := sum[i] / n
			d.z[i] = zn
			d.zPrev[i] = zn
			if d.state == nil || !d.state[i] {
				ref[i] -= alphaG * (ref[i] - zn)
			}
		}
		d.rounds++
		return
	}
	// Steady state: the ClusterSMA global tier, factored through the sum.
	zv, zp := d.z, d.zPrev
	st, mu := d.state, d.muG
	apply := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			zOld := zv[i]
			if st != nil && st[i] {
				// State (batch-norm statistics): the cluster average model
				// carries the server average, no corrections.
				zv[i] = sum[i] / n
				zp[i] = zOld
				continue
			}
			ref[i] -= alphaG * (ref[i] - zOld)
			zv[i] = zOld + alphaG*(sum[i]-n*zOld) + mu*(zOld-zp[i])
			zp[i] = zOld
		}
	}
	if tensor.Parallelism() == 1 {
		apply(0, len(zv))
	} else {
		tensor.ParallelFor(len(zv), 16384, apply)
	}
	d.rounds++
}

// Restart re-initialises the averaging process from the cluster average
// model (§3.2): the server reference model and all local replicas reset to
// z, momentum history cleared. Every node restarts at the same epoch with
// a replicated z, so the cluster stays replicated.
func (d *DistClusterSMA) Restart(ws [][]float32) {
	if len(ws) != d.sma.K() {
		panic(fmt.Sprintf("core: DistClusterSMA.Restart with %d replicas, want %d", len(ws), d.sma.K()))
	}
	d.Drain()
	copy(d.zPrev, d.z)
	tensor.Copy(d.sma.z, d.z)
	tensor.Copy(d.sma.zPrev, d.z)
	d.sma.Restart(ws)
	d.iter = 0
	d.localSyncs = 0
}
