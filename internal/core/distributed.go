package core

import (
	"fmt"

	"crossbow/internal/tensor"
)

// ExchangeRound reports one global all-reduce from the cluster transport's
// point of view (a subset of transport.Round, redeclared here so core does
// not depend on the transport package).
type ExchangeRound struct {
	// Seq is the cluster-wide round number.
	Seq uint64
	// Participants is the number of servers whose reference models were
	// summed.
	Participants int
	// Restart marks a round whose participant view differs from the
	// previous round's (a server died, left, or rejoined since).
	Restart bool
	// Aborted marks a collective cut short by a membership change; the
	// buffer contents are undefined and the exchange must be skipped.
	Aborted bool
}

// GlobalExchanger is the cluster plane's network: it sums a model vector
// element-wise across every live server, in place, returning bit-identical
// bytes on all participants (the transport's collectives reduce in a fixed
// rank order to guarantee exactly that). transport.Node satisfies it
// through a one-line adapter in the root package.
type GlobalExchanger interface {
	AllReduce(buf []float32) (ExchangeRound, error)
}

// DistClusterSMA is the multi-process form of ClusterSMA: this process
// runs ONE server's learners (a flat intra-server SMA), and the
// inter-server tier exchanges the server reference model over a real
// network instead of iterating sibling servers in memory.
//
// The mathematics mirror ClusterSMA.Step's global tier. There, with all n
// reference models in hand, the cluster average model z accumulates
// per-server corrections: z ← z + Σ_s α_G(ref_s − z) + µ_G(z − z_prev).
// Here each process holds only its own ref, but the all-reduce delivers
// sum = Σ_s ref_s, and Σ_s α_G(ref_s − z) = α_G(sum − n·z), so every node
// can apply the identical update. Because z starts replicated (same seed,
// same w0), the sum is bit-identical on every node (fixed reduction
// order), and the update reads only replicated values, z stays bit-for-bit
// replicated across the cluster without ever being transmitted — each node
// also folds its own correction α_G(ref − z) into its local reference
// model, exactly as the simulated exchange does.
//
// Churn breaks the replication invariant (an aborted round updates z on
// some nodes and not others; a rejoining node carries a stale or
// snapshot-seeded z). Healing is the transport's Restart flag: any round
// whose membership view changed re-derives z = sum/n on every participant
// and clears the momentum history (z_prev ← z) — the §3.2 restart applied
// at the membership boundary. One successful restart round later the
// cluster is replicated again, whatever state the members arrived in.
type DistClusterSMA struct {
	cfg ClusterSMAConfig
	sma *SMA // this server's intra-server tier
	ex  GlobalExchanger

	z, zPrev []float32 // cluster average model, replicated across nodes
	buf      []float32 // all-reduce scratch
	state    []bool
	alphaG   float32 // 0 → 1/participants, resolved per round
	muG      float32

	iter       int
	localSyncs int

	rounds  int64 // successful global exchanges
	aborted int64 // aborted collectives observed (including retried ones)
	retried int64 // exchanges rescued by a retry after an abort
	lastRnd ExchangeRound
}

// NewDistClusterSMA creates the optimiser for this server's k local
// learners. w0 must be identical on every cold-started node (same seed) —
// a node warm-started from a peer snapshot gets healed by its first
// (restart) round instead. ex is the cluster network.
func NewDistClusterSMA(cfg ClusterSMAConfig, w0 []float32, k int, ex GlobalExchanger) *DistClusterSMA {
	if ex == nil {
		panic("core: DistClusterSMA needs a GlobalExchanger")
	}
	if cfg.Tau < 1 {
		cfg.Tau = 1
	}
	if cfg.TauGlobal < 1 {
		cfg.TauGlobal = 1
	}
	muG := cfg.GlobalMomentum
	if muG == 0 {
		muG = cfg.Momentum
	}
	d := &DistClusterSMA{
		cfg:    cfg,
		sma:    NewSMA(cfg.SMAConfig, w0, k),
		ex:     ex,
		z:      append([]float32(nil), w0...),
		zPrev:  append([]float32(nil), w0...),
		buf:    make([]float32, len(w0)),
		alphaG: cfg.AlphaGlobal,
		muG:    muG,
	}
	if len(cfg.StateRanges) > 0 {
		d.state = make([]bool, len(w0))
		for _, rg := range cfg.StateRanges {
			for i := rg[0]; i < rg[1] && i < len(w0); i++ {
				d.state[i] = true
			}
		}
	}
	return d
}

// Average returns the cluster average model z — the model the cluster
// trains, bit-identical on every node after each successful round. Live
// slice; do not modify.
func (d *DistClusterSMA) Average() []float32 { return d.z }

// Ref returns this server's reference model (the intra-server tier's
// average model). Live slice; tests compare it against z.
func (d *DistClusterSMA) Ref() []float32 { return d.sma.Average() }

// SetLearnRate updates γ on the local learners.
func (d *DistClusterSMA) SetLearnRate(lr float32) { d.sma.SetLearnRate(lr) }

// Rounds returns the number of successful global exchanges folded into z.
func (d *DistClusterSMA) Rounds() int64 { return d.rounds }

// AbortedRounds returns the number of aborted collectives observed.
func (d *DistClusterSMA) AbortedRounds() int64 { return d.aborted }

// RetriedExchanges returns the number of exchanges that aborted at least
// once but were rescued by a retry within the same τ_global boundary.
func (d *DistClusterSMA) RetriedExchanges() int64 { return d.retried }

// LastRound returns the most recent exchange's report.
func (d *DistClusterSMA) LastRound() ExchangeRound { return d.lastRnd }

// Step performs one local iteration, and on every TauGlobal-th local
// synchronisation runs the cross-server exchange over the network.
func (d *DistClusterSMA) Step(ws, gs [][]float32) {
	d.iter++
	d.sma.Step(ws, gs)
	if d.iter%d.cfg.Tau != 0 {
		return
	}
	d.localSyncs++
	if d.localSyncs%d.cfg.TauGlobal != 0 {
		return
	}
	d.exchange()
}

// exchange runs one global round: all-reduce the server reference model,
// then apply the replicated z update (or the restart re-derivation). A
// fault-aborted collective is retried a bounded number of times — the
// post-churn round carries Restart and re-derives z, so a retry can never
// double-apply anything; only after the budget is spent is the update
// skipped until the next τ_global boundary.
func (d *DistClusterSMA) exchange() {
	retries := d.cfg.ExchangeRetries
	if retries == 0 {
		retries = 2
	} else if retries < 0 {
		retries = 0
	}
	ref := d.sma.Average()
	var r ExchangeRound
	for attempt := 0; ; attempt++ {
		copy(d.buf, ref)
		rr, err := d.ex.AllReduce(d.buf)
		if err != nil {
			// The transport is closed (shutdown); train on locally.
			d.aborted++
			return
		}
		d.lastRnd = rr
		if rr.Aborted || rr.Participants < 1 {
			d.aborted++
			if attempt < retries {
				continue
			}
			return
		}
		if attempt > 0 {
			d.retried++
		}
		r = rr
		break
	}
	n := float32(r.Participants)
	alphaG := d.alphaG
	if alphaG == 0 {
		alphaG = 1 / n
	}
	sum := d.buf
	if r.Restart {
		// Membership changed: z may not be replicated across the
		// participants any more (an aborted round updated some nodes, a
		// rejoiner carries a snapshot-seeded model), so re-derive it from
		// the one value that is — the consensus sum — and clear the
		// momentum history. Then pull the local reference model toward
		// the fresh consensus with a plain correction. Cold starts never
		// come through here: all nodes boot with z = w0 from the shared
		// seed, so the incremental update below is already replicated.
		for i := range d.z {
			zn := sum[i] / n
			d.z[i] = zn
			d.zPrev[i] = zn
			if d.state == nil || !d.state[i] {
				ref[i] -= alphaG * (ref[i] - zn)
			}
		}
		d.rounds++
		return
	}
	// Steady state: the ClusterSMA global tier, factored through the sum.
	zv, zp := d.z, d.zPrev
	st, mu := d.state, d.muG
	apply := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			zOld := zv[i]
			if st != nil && st[i] {
				// State (batch-norm statistics): the cluster average model
				// carries the server average, no corrections.
				zv[i] = sum[i] / n
				zp[i] = zOld
				continue
			}
			ref[i] -= alphaG * (ref[i] - zOld)
			zv[i] = zOld + alphaG*(sum[i]-n*zOld) + mu*(zOld-zp[i])
			zp[i] = zOld
		}
	}
	if tensor.Parallelism() == 1 {
		apply(0, len(zv))
	} else {
		tensor.ParallelFor(len(zv), 16384, apply)
	}
	d.rounds++
}

// Restart re-initialises the averaging process from the cluster average
// model (§3.2): the server reference model and all local replicas reset to
// z, momentum history cleared. Every node restarts at the same epoch with
// a replicated z, so the cluster stays replicated.
func (d *DistClusterSMA) Restart(ws [][]float32) {
	if len(ws) != d.sma.K() {
		panic(fmt.Sprintf("core: DistClusterSMA.Restart with %d replicas, want %d", len(ws), d.sma.K()))
	}
	copy(d.zPrev, d.z)
	tensor.Copy(d.sma.z, d.z)
	tensor.Copy(d.sma.zPrev, d.z)
	d.sma.Restart(ws)
	d.iter = 0
	d.localSyncs = 0
}
