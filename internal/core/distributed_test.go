package core

import (
	"sync"
	"testing"

	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// memExchange is an in-memory GlobalExchanger for tests: n handles barrier
// per round, the contributions are summed in rank order (the same
// fixed-order contract the TCP transport provides), and the sum is copied
// back into every buffer.
type memExchange struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	bufs    [][]float32
	arrived int
	seq     uint64

	// Fault injection for the next round.
	forceRestart bool
	forceAbort   bool
}

func newMemExchange(n int) *memExchange {
	m := &memExchange{n: n, bufs: make([][]float32, n)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// handle returns rank r's GlobalExchanger view.
func (m *memExchange) handle(rank int) GlobalExchanger { return &memHandle{m: m, rank: rank} }

type memHandle struct {
	m    *memExchange
	rank int
}

func (h *memHandle) AllReduce(buf []float32) (ExchangeRound, error) {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	my := m.seq
	// Injected faults are set between rounds and stable during one, so
	// every participant reads them on entry.
	restart, abort := m.forceRestart, m.forceAbort
	m.bufs[h.rank] = buf
	m.arrived++
	if m.arrived == m.n {
		sum := make([]float32, len(buf))
		for _, b := range m.bufs { // rank order: deterministic reduction
			for i := range sum {
				sum[i] += b[i]
			}
		}
		for _, b := range m.bufs {
			copy(b, sum)
		}
		m.arrived = 0
		m.seq++
		m.forceRestart, m.forceAbort = false, false
		m.cond.Broadcast()
	} else {
		for m.seq == my {
			m.cond.Wait()
		}
	}
	return ExchangeRound{Seq: my + 1, Participants: m.n, Restart: restart, Aborted: abort}, nil
}

// memPending adapts memHandle.AllReduce to the async API the same way the
// TCP transport's exchange goroutine does: the blocking collective runs on
// its own goroutine and the handle resolves when it returns.
type memPending struct {
	done chan struct{}
	r    ExchangeRound
	err  error
}

func (p *memPending) Poll() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

func (p *memPending) Wait() (ExchangeRound, error) { <-p.done; return p.r, p.err }

func (h *memHandle) BeginAllReduce(buf []float32) (PendingExchange, error) {
	p := &memPending{done: make(chan struct{})}
	go func() { p.r, p.err = h.AllReduce(buf); close(p.done) }()
	return p, nil
}

// stepDist drives n DistClusterSMA nodes through one iteration each,
// concurrently (the exchanger barriers them on τ_global boundaries).
func stepDist(nodes []*DistClusterSMA, ws, gs [][][]float32) {
	var wg sync.WaitGroup
	for s := range nodes {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			nodes[s].Step(ws[s], gs[s])
		}(s)
	}
	wg.Wait()
}

// TestDistClusterMatchesSimulated compares the networked cluster plane
// against the in-process ClusterSMA oracle on the same gradient schedule:
// two servers with two learners each, τ=2, τ_global=2, momentum and state
// ranges on. The distributed form computes Σα(ref−z) as α(sum − n·z), so
// floating-point rounding may differ from the simulated per-server
// accumulation — trajectories must agree to tight tolerance, and the
// distributed z must be bit-identical across nodes at every step.
func TestDistClusterMatchesSimulated(t *testing.T) {
	const servers, perServer, dim = 2, 2, 32
	cfg := ClusterSMAConfig{
		SMAConfig: SMAConfig{
			LearnRate: 0.05, Momentum: 0.9, LocalMomentum: 0.6,
			Tau: 2, StateRanges: [][2]int{{28, 32}},
		},
		TauGlobal: 2,
	}

	// Simulated oracle: all four learners in one process.
	wsSim, gsSim, w0 := makeReplicas(servers*perServer, dim)
	sim := NewClusterSMA(cfg, w0, GroupsFor(servers, perServer))

	// Distributed: one node per server, each holding its two learners.
	ex := newMemExchange(servers)
	nodes := make([]*DistClusterSMA, servers)
	wsD := make([][][]float32, servers)
	gsD := make([][][]float32, servers)
	for s := 0; s < servers; s++ {
		ws, gs, _ := makeReplicas(perServer, dim)
		wsD[s], gsD[s] = ws, gs
		nodes[s] = NewDistClusterSMA(cfg, w0, perServer, ex.handle(s))
	}

	for iter := 1; iter <= 12; iter++ {
		fakeGrads(gsSim, iter)
		for s := 0; s < servers; s++ {
			// Learner j of server s is global learner s*perServer+j.
			for j := 0; j < perServer; j++ {
				copy(gsD[s][j], gsSim[s*perServer+j])
			}
		}
		sim.Step(wsSim, gsSim)
		stepDist(nodes, wsD, gsD)

		// Replication invariant: z bit-identical across nodes.
		if d := tensor.MaxAbsDiff(nodes[0].Average(), nodes[1].Average()); d != 0 {
			t.Fatalf("iter %d: distributed z diverges across nodes by %v", iter, d)
		}
		// Against the oracle: tight tolerance (operand-order rounding only).
		if d := tensor.MaxAbsDiff(sim.Average(), nodes[0].Average()); d > 2e-6 {
			t.Fatalf("iter %d: distributed z off the simulated oracle by %v", iter, d)
		}
		for s := 0; s < servers; s++ {
			if d := tensor.MaxAbsDiff(sim.smas[s].Average(), nodes[s].Ref()); d > 2e-6 {
				t.Fatalf("iter %d: server %d reference model off oracle by %v", iter, s, d)
			}
			for j := 0; j < perServer; j++ {
				if d := tensor.MaxAbsDiff(wsSim[s*perServer+j], wsD[s][j]); d > 2e-6 {
					t.Fatalf("iter %d: replica %d/%d off oracle by %v", iter, s, j, d)
				}
			}
		}
	}
	if nodes[0].Rounds() == 0 {
		t.Fatal("no global rounds ran")
	}
}

// TestDistClusterRestartHeals corrupts one node's cluster average model —
// standing in for any churn-induced divergence (missed round, stale
// rejoiner) — and checks a Restart-flagged round restores bit-exact
// replication from the consensus sum.
func TestDistClusterRestartHeals(t *testing.T) {
	const servers, dim = 2, 16
	cfg := ClusterSMAConfig{SMAConfig: SMAConfig{LearnRate: 0.1, Momentum: 0.9}}
	ex := newMemExchange(servers)
	nodes := make([]*DistClusterSMA, servers)
	wsD := make([][][]float32, servers)
	gsD := make([][][]float32, servers)
	var w0 []float32
	for s := 0; s < servers; s++ {
		ws, gs, w := makeReplicas(1, dim)
		wsD[s], gsD[s], w0 = ws, gs, w
		nodes[s] = NewDistClusterSMA(cfg, w0, 1, ex.handle(s))
	}

	// A clean round, then corruption on node 1.
	for s := range nodes {
		fakeGrads(gsD[s], 1)
	}
	stepDist(nodes, wsD, gsD)
	for i := range nodes[1].z {
		nodes[1].z[i] += float32(i) * 0.01
		nodes[1].zPrev[i] -= 0.5
	}
	if tensor.MaxAbsDiff(nodes[0].Average(), nodes[1].Average()) == 0 {
		t.Fatal("corruption did not take")
	}

	// Without a restart the nodes would now walk different trajectories;
	// the flagged round re-derives z = sum/n everywhere.
	ex.forceRestart = true
	for s := range nodes {
		fakeGrads(gsD[s], 2)
	}
	stepDist(nodes, wsD, gsD)
	if d := tensor.MaxAbsDiff(nodes[0].Average(), nodes[1].Average()); d != 0 {
		t.Fatalf("restart round did not re-replicate z (diff %v)", d)
	}
	if d := tensor.MaxAbsDiff(nodes[0].z, nodes[0].zPrev); d != 0 {
		t.Fatalf("restart round must clear momentum history (z−zPrev %v)", d)
	}

	// And the cluster keeps training normally afterwards, still replicated.
	for iter := 3; iter <= 6; iter++ {
		for s := range nodes {
			fakeGrads(gsD[s], iter)
		}
		stepDist(nodes, wsD, gsD)
		if d := tensor.MaxAbsDiff(nodes[0].Average(), nodes[1].Average()); d != 0 {
			t.Fatalf("iter %d: z diverged after heal by %v", iter, d)
		}
	}
}

// TestDistClusterAbortSkipsUpdate pins the abort semantics with retries
// disabled: an aborted collective leaves z and zPrev untouched and counts
// the abort; training continues on the next round.
func TestDistClusterAbortSkipsUpdate(t *testing.T) {
	const dim = 8
	cfg := ClusterSMAConfig{SMAConfig: SMAConfig{LearnRate: 0.1}, ExchangeRetries: -1}
	ex := newMemExchange(1)
	ws, gs, w0 := makeReplicas(1, dim)
	d := NewDistClusterSMA(cfg, w0, 1, ex.handle(0))

	fakeGrads(gs, 1)
	d.Step(ws, gs) // seeds z (first round)
	zBefore := append([]float32(nil), d.Average()...)

	ex.forceAbort = true
	fakeGrads(gs, 2)
	d.Step(ws, gs)
	if tensor.MaxAbsDiff(d.Average(), zBefore) != 0 {
		t.Fatal("aborted round must not touch z")
	}
	if d.AbortedRounds() != 1 || d.Rounds() != 1 {
		t.Fatalf("counters: rounds %d aborted %d, want 1/1", d.Rounds(), d.AbortedRounds())
	}

	fakeGrads(gs, 3)
	d.Step(ws, gs)
	if d.Rounds() != 2 {
		t.Fatalf("post-abort round did not run (rounds %d)", d.Rounds())
	}
	if tensor.MaxAbsDiff(d.Average(), zBefore) == 0 {
		t.Fatal("post-abort round must move z again")
	}
}

// TestDistClusterRetryRescuesExchange pins the bounded retry: with the
// default budget, a collective that aborts once is retried within the same
// τ_global boundary, and the rescued round still updates z. The retry is
// sound because a post-churn round carries Restart and re-derives z — a
// missed first attempt never double-applies anything.
func TestDistClusterRetryRescuesExchange(t *testing.T) {
	const dim = 8
	cfg := ClusterSMAConfig{SMAConfig: SMAConfig{LearnRate: 0.1}}
	ex := newMemExchange(1)
	ws, gs, w0 := makeReplicas(1, dim)
	d := NewDistClusterSMA(cfg, w0, 1, ex.handle(0))

	fakeGrads(gs, 1)
	d.Step(ws, gs) // seeds z (first round)
	zBefore := append([]float32(nil), d.Average()...)

	// The exchanger clears the injected fault once the faulted round
	// completes, so the immediate retry succeeds.
	ex.forceAbort = true
	fakeGrads(gs, 2)
	d.Step(ws, gs)
	if tensor.MaxAbsDiff(d.Average(), zBefore) == 0 {
		t.Fatal("retried exchange must still update z")
	}
	if d.Rounds() != 2 || d.AbortedRounds() != 1 || d.RetriedExchanges() != 1 {
		t.Fatalf("counters: rounds %d aborted %d retried %d, want 2/1/1",
			d.Rounds(), d.AbortedRounds(), d.RetriedExchanges())
	}
}

// TestDistClusterOverlapBitIdentical pins the tentpole invariant at the
// optimiser level: the SAME two-server gradient schedule, run once with
// synchronous exchanges and once with OverlapGlobal, must produce
// bit-identical z trajectories. Between launch and fold only local
// iterations run, and they never read or write z, so folding one Step
// later consumes exactly the bytes the synchronous path would have.
func TestDistClusterOverlapBitIdentical(t *testing.T) {
	const servers, perServer, dim = 2, 2, 32
	mk := func(overlap bool) ([]*DistClusterSMA, [][][]float32, [][][]float32) {
		cfg := ClusterSMAConfig{
			SMAConfig: SMAConfig{
				LearnRate: 0.05, Momentum: 0.9, LocalMomentum: 0.6,
				Tau: 2, StateRanges: [][2]int{{28, 32}},
			},
			TauGlobal:     2,
			OverlapGlobal: overlap,
		}
		ex := newMemExchange(servers)
		nodes := make([]*DistClusterSMA, servers)
		ws := make([][][]float32, servers)
		gs := make([][][]float32, servers)
		for s := 0; s < servers; s++ {
			w, g, w0 := makeReplicas(perServer, dim)
			ws[s], gs[s] = w, g
			nodes[s] = NewDistClusterSMA(cfg, w0, perServer, ex.handle(s))
		}
		return nodes, ws, gs
	}

	syncN, syncW, syncG := mk(false)
	overN, overW, overG := mk(true)

	for iter := 1; iter <= 16; iter++ {
		for s := 0; s < servers; s++ {
			fakeGrads(syncG[s], iter*servers+s)
			for j := range overG[s] {
				copy(overG[s][j], syncG[s][j])
			}
		}
		stepDist(syncN, syncW, syncG)
		stepDist(overN, overW, overG)
		// The overlapped node may still have the round in flight — fold it
		// at a deterministic boundary before comparing, exactly as the
		// trainer does before evaluating or publishing.
		for s := 0; s < servers; s++ {
			overN[s].Drain()
		}
		for s := 0; s < servers; s++ {
			if d := tensor.MaxAbsDiff(syncN[s].Average(), overN[s].Average()); d != 0 {
				t.Fatalf("iter %d server %d: overlapped z off the synchronous run by %v", iter, s, d)
			}
			if d := tensor.MaxAbsDiff(syncN[s].Ref(), overN[s].Ref()); d != 0 {
				t.Fatalf("iter %d server %d: reference model diverged by %v", iter, s, d)
			}
			for j := range syncW[s] {
				if d := tensor.MaxAbsDiff(syncW[s][j], overW[s][j]); d != 0 {
					t.Fatalf("iter %d replica %d/%d diverged by %v", iter, s, j, d)
				}
			}
		}
	}
	for s := 0; s < servers; s++ {
		if overN[s].OverlappedExchanges() < 1 {
			t.Fatalf("server %d never overlapped an exchange", s)
		}
		if syncN[s].Rounds() != overN[s].Rounds() {
			t.Fatalf("round counts differ: sync %d vs overlap %d", syncN[s].Rounds(), overN[s].Rounds())
		}
	}
}

// TestTrainDistCluster runs the full trainer on two networked nodes (via
// the in-memory exchanger): both processes must finish with the identical
// cluster average model, learn above chance, and report per-process K.
func TestTrainDistCluster(t *testing.T) {
	const servers = 2
	ex := newMemExchange(servers)
	results := make([]*Result, servers)
	var wg sync.WaitGroup
	for s := 0; s < servers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s] = Train(TrainConfig{
				Model: nn.LeNet, Algo: AlgoSMACluster,
				Servers: servers, GPUs: 1, LearnersPerGPU: 2, BatchPerLearner: 8,
				Momentum: 0.9, MaxEpochs: 3, Seed: 1,
				GlobalExchange: ex.handle(s),
				ShuffleSeed:    uint64(101 + s), // distinct batch streams
			})
		}(s)
	}
	wg.Wait()

	for s, res := range results {
		if res.K != 2 {
			t.Fatalf("node %d: K = %d, want 2 local learners", s, res.K)
		}
		if res.FinalAccuracy <= 0.12 {
			t.Fatalf("node %d: accuracy %.3f barely above chance", s, res.FinalAccuracy)
		}
	}
	if d := tensor.MaxAbsDiff(results[0].Model, results[1].Model); d != 0 {
		t.Fatalf("final cluster average models differ across nodes by %v", d)
	}
}
