// Package core is the statistical plane of the reproduction (DESIGN.md §2)
// and the training driver over the wall-clock task runtime (§9): it
// implements the paper's primary contribution — synchronous model averaging
// (SMA, Algorithm 1) with independent learners — plus the algorithms
// Crossbow is evaluated against (parallel synchronous SGD, elastic
// averaging SGD, asynchronous SGD) and the trainer that drives them over
// the scaled benchmark models to measure statistical efficiency.
//
// All algorithms operate on flat model vectors (paper §4.4: weights and
// gradients live in contiguous memory), so one package covers both the
// scaled trainable models and any other contiguous parameterisation.
// Train is a thin driver: scheduling belongs to internal/engine's Runtime,
// task memory to internal/memplan, and the optimiser math lives here as
// the closures the runtime's two modes need. Versioned snapshots of the
// central average model (Snapshot, TrainConfig.PublishEvery) feed the
// serving plane (internal/serve, DESIGN.md §11); ReplayFCFS re-executes a
// barrier-free run bit-identically from its assignment log.
package core
