package core

import (
	"math"
	"testing"
	"time"

	"crossbow/internal/tensor"
)

func fcfsCfg() TrainConfig {
	cfg := determinismCfg()
	cfg.Scheduler = SchedFCFS
	cfg.GPUs, cfg.LearnersPerGPU = 1, 3
	cfg.Tau = 2
	return cfg
}

// TestFCFSReplayBitIdentical is the barrier-free determinism contract: a
// live FCFS run's trajectory is fully determined by its assignment log.
// Replaying the log sequentially reproduces the losses, accuracies and
// final weights bit for bit, even though the live run's learners raced for
// staged batches and synchronised without a barrier.
func TestFCFSReplayBitIdentical(t *testing.T) {
	cfg := fcfsCfg()
	live := Train(cfg)

	if len(live.SeqLog) != cfg.K() {
		t.Fatalf("assignment log covers %d learners, want %d", len(live.SeqLog), cfg.K())
	}
	replay := ReplayFCFS(cfg, live.SeqLog)
	resultsBitIdentical(t, "fcfs-replay", live, replay)
}

// TestFCFSConsumesEveryBatchOnce: the FCFS binding hands each staged batch
// to exactly one learner, and every learner runs the same iteration count.
func TestFCFSConsumesEveryBatchOnce(t *testing.T) {
	cfg := fcfsCfg()
	res := Train(cfg)

	iters := len(res.SeqLog[0])
	seen := map[int]bool{}
	for j, l := range res.SeqLog {
		if len(l) != iters {
			t.Fatalf("learner %d ran %d iterations, want %d", j, len(l), iters)
		}
		for _, s := range l {
			if seen[s] {
				t.Fatalf("batch seq %d consumed twice", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != iters*cfg.K() {
		t.Fatalf("consumed %d distinct batches, want %d", len(seen), iters*cfg.K())
	}
}

// TestFCFSLearnsLikeLockstep: barrier-free execution changes the batch
// binding, not the algorithm — an FCFS run must reach an accuracy in the
// same range as the lockstep oracle on the same problem.
func TestFCFSLearnsLikeLockstep(t *testing.T) {
	cfg := determinismCfg()
	cfg.GPUs, cfg.LearnersPerGPU = 1, 2
	cfg.MaxEpochs = 4
	lock := Train(cfg)

	cfg.Scheduler = SchedFCFS
	fcfs := Train(cfg)

	if fcfs.FinalAccuracy < lock.FinalAccuracy-0.10 {
		t.Fatalf("fcfs accuracy %.3f far below lockstep %.3f", fcfs.FinalAccuracy, lock.FinalAccuracy)
	}
	if fcfs.RuntimeStats.Rounds == 0 {
		t.Fatal("fcfs run applied no synchronisation rounds")
	}
}

// TestContributeApplyMatchesExchange: the barrier-free τ-boundary path —
// per-learner fused correction+step (ContributeStep) plus an index-ordered
// fold (ApplyContributions) — is bit-identical to the lockstep Step
// (exchange then local steps) when both run against the same average
// model. This is the property that lets the two schedulers share one
// optimiser.
func TestContributeApplyMatchesExchange(t *testing.T) {
	const k, n = 3, 4097 // odd size to cross ParallelFor chunk boundaries
	r := tensor.NewRNG(11)
	w0 := make([]float32, n)
	for i := range w0 {
		w0[i] = float32(r.NormFloat64())
	}
	state := [][2]int{{100, 140}, {n - 7, n}}
	mk := func(seed uint64) (*SMA, [][]float32, [][]float32) {
		s := NewSMA(SMAConfig{
			LearnRate: 0.1, Momentum: 0.9, LocalMomentum: 0.6, StateRanges: state,
		}, w0, k)
		ws := make([][]float32, k)
		gs := make([][]float32, k)
		rr := tensor.NewRNG(seed)
		for j := range ws {
			ws[j] = make([]float32, n)
			gs[j] = make([]float32, n)
			for i := range ws[j] {
				ws[j][i] = w0[i] + float32(rr.NormFloat64())*0.01
			}
		}
		return s, ws, gs
	}

	// Several rounds so momentum history (z_prev, velocities) participates.
	const rounds = 3
	a, wsA, gsA := mk(23)
	b, wsB, gsB := mk(23)
	gr := tensor.NewRNG(37)
	corr := make([][]float32, k)
	for j := range corr {
		corr[j] = make([]float32, n)
	}
	for round := 0; round < rounds; round++ {
		// Fresh identical gradients each round.
		for j := 0; j < k; j++ {
			for i := 0; i < n; i++ {
				g := float32(gr.NormFloat64())
				gsA[j][i], gsB[j][i] = g, g
			}
		}

		a.Step(wsA, gsA) // lockstep: exchange, then local steps

		for j := 0; j < k; j++ {
			b.ContributeStep(j, wsB[j], gsB[j], corr[j])
		}
		b.ApplyContributions(corr)

		for i := range a.z {
			if math.Float32bits(a.z[i]) != math.Float32bits(b.z[i]) {
				t.Fatalf("round %d: z[%d] diverges: %v vs %v", round, i, a.z[i], b.z[i])
			}
		}
		for j := range wsA {
			for i := range wsA[j] {
				if math.Float32bits(wsA[j][i]) != math.Float32bits(wsB[j][i]) {
					t.Fatalf("round %d: w[%d][%d] diverges: %v vs %v", round, j, i, wsA[j][i], wsB[j][i])
				}
			}
		}
	}
}

// TestFCFSReplayOfEarlyStoppedRun: a live FCFS run that stops on
// TargetAcc leaves a shorter assignment log; replaying it must cover
// exactly the epochs the log records and reproduce them bit for bit.
func TestFCFSReplayOfEarlyStoppedRun(t *testing.T) {
	cfg := fcfsCfg()
	cfg.MaxEpochs = 6
	cfg.TargetAcc = 0.01 // reached immediately: the run stops after epoch 1
	live := Train(cfg)
	if len(live.Series) >= cfg.MaxEpochs {
		t.Fatalf("run did not stop early (%d epochs)", len(live.Series))
	}
	replay := ReplayFCFS(cfg, live.SeqLog)
	resultsBitIdentical(t, "fcfs-replay-early-stop", live, replay)
	if replay.EpochsToTarget != live.EpochsToTarget {
		t.Fatalf("EpochsToTarget %d vs %d", replay.EpochsToTarget, live.EpochsToTarget)
	}
}

// TestLockstepOnlineAutotuneResizes: online tuning under the lockstep
// scheduler resizes the replica pool mid-run over the shared pipeline —
// the reorder buffer's position and held slots must carry over to the
// rebuilt runtime (a dropped handoff deadlocks this test).
func TestLockstepOnlineAutotuneResizes(t *testing.T) {
	done := make(chan *Result, 1)
	go func() {
		cfg := determinismCfg()
		cfg.GPUs, cfg.LearnersPerGPU = 1, 1
		cfg.Scheduler = SchedLockstep
		cfg.AutoTuneLearners = true
		cfg.MaxLearnersPerGPU = 3
		cfg.MaxEpochs = 6
		done <- Train(cfg)
	}()
	select {
	case res := <-done:
		if len(res.TuneHistory) == 0 {
			t.Fatal("online tuner recorded no decisions")
		}
		if len(res.Series) != 6 {
			t.Fatalf("run covered %d epochs, want 6", len(res.Series))
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("lockstep auto-tune run hung (pipeline position lost across resize?)")
	}
}

// TestOnlineAutotuneRuns: an AutoTuneLearners run completes, records
// Algorithm 2 decisions, and still trains (accuracy above chance).
func TestOnlineAutotuneRuns(t *testing.T) {
	cfg := determinismCfg()
	cfg.GPUs, cfg.LearnersPerGPU = 1, 1
	cfg.Scheduler = SchedFCFS
	cfg.AutoTuneLearners = true
	cfg.MaxLearnersPerGPU = 3
	cfg.MaxEpochs = 6
	res := Train(cfg)

	if len(res.TuneHistory) == 0 {
		t.Fatal("online tuner recorded no decisions")
	}
	if res.K < 1 || res.K > 3 {
		t.Fatalf("final learner count %d outside [1, 3]", res.K)
	}
	// Above the 10-class chance level (0.1); the bar is loose because
	// resizes are timing-dependent and each restarts the averaging (§3.2),
	// so accuracy at this tiny scale varies run to run.
	if res.FinalAccuracy < 0.15 {
		t.Fatalf("auto-tuned run failed to train: accuracy %.3f", res.FinalAccuracy)
	}
	if len(res.Wall) != cfg.MaxEpochs {
		t.Fatalf("wall series has %d points, want %d", len(res.Wall), cfg.MaxEpochs)
	}
}
