package core

import (
	"fmt"

	"crossbow/internal/tensor"
)

// HierarchicalSMA is the synchronisation organisation of §3.3 (Figure 6):
// learners that share a GPU synchronise cheaply against a local reference
// model through direct application of model differences, while only the
// reference models (one per GPU) take part in the global SMA exchange —
// turning the flat all-learner barrier into a two-level tree whose
// inter-GPU traffic is independent of the learners-per-GPU count.
type HierarchicalSMA struct {
	cfg    SMAConfig
	groups [][]int // learner indices per GPU; groups[g][0] is the reference
	// alphaLocal is the intra-GPU correction constant (≈ 1/m for m
	// learners on the GPU).
	alphaLocal []float32

	z     []float32
	zPrev []float32
	delta []float32
	vel   [][]float32 // per-learner local momentum velocity (indexed by learner)
	iter  int
	alpha float32 // global correction constant (≈ 1/numGroups)
}

// NewHierarchicalSMA creates the optimiser. groups assigns each learner
// index to a GPU; the first learner of each group manages the GPU's
// reference model.
func NewHierarchicalSMA(cfg SMAConfig, w0 []float32, groups [][]int) *HierarchicalSMA {
	if len(groups) == 0 {
		panic("core: hierarchical SMA needs at least one group")
	}
	if cfg.Tau < 1 {
		cfg.Tau = 1
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 1 / float32(len(groups))
	}
	h := &HierarchicalSMA{
		cfg: cfg, alpha: alpha,
		z:     append([]float32(nil), w0...),
		zPrev: append([]float32(nil), w0...),
		delta: make([]float32, len(w0)),
	}
	k := 0
	for _, g := range groups {
		if len(g) == 0 {
			panic("core: empty learner group")
		}
		h.groups = append(h.groups, append([]int(nil), g...))
		h.alphaLocal = append(h.alphaLocal, 1/float32(len(g)))
		k += len(g)
	}
	validateGroups(groups, k)
	h.vel = make([][]float32, k)
	for j := range h.vel {
		h.vel[j] = make([]float32, len(w0))
	}
	return h
}

func (h *HierarchicalSMA) localStep(j int, w, g []float32) {
	v := h.vel[j]
	lr, mu := h.cfg.LearnRate, h.cfg.LocalMomentum
	for i := range w {
		v[i] = mu*v[i] - lr*g[i]
		w[i] += v[i]
	}
}

// Average returns the central average model.
func (h *HierarchicalSMA) Average() []float32 { return h.z }

// SetLearnRate updates γ.
func (h *HierarchicalSMA) SetLearnRate(lr float32) { h.cfg.LearnRate = lr }

// Step performs one hierarchical iteration: every learner applies its
// gradient; learners then synchronise with their GPU's reference model
// (intra-GPU, shared-memory scope); finally the reference models run the
// global SMA update against the central average model (inter-GPU,
// all-reduce scope).
func (h *HierarchicalSMA) Step(ws, gs [][]float32) {
	h.iter++
	if h.iter%h.cfg.Tau != 0 {
		for j := range ws {
			h.localStep(j, ws[j], gs[j])
		}
		return
	}
	// Local synchronisation: non-reference learners fuse their gradient
	// step with a correction toward the GPU's reference model, whose
	// counterpart difference is applied to the reference model directly
	// (Figure 6, right). As in Alg 1, corrections are computed on the
	// replicas as they stood at the start of the iteration.
	for gi, g := range h.groups {
		ref := ws[g[0]]
		aL := h.alphaLocal[gi]
		for _, j := range g[1:] {
			w := ws[j]
			for i := range w {
				c := aL * (w[i] - ref[i])
				w[i] -= c
				ref[i] += c
			}
			h.localStep(j, w, gs[j])
		}
	}
	// Global synchronisation: SMA over the reference models (Alg 1 lines
	// 8-13 with the reference models as the replicas w_j). Each reference
	// learner's own gradient applies here.
	tensor.ZeroSlice(h.delta)
	for _, g := range h.groups {
		ref := ws[g[0]]
		for i := range ref {
			c := h.alpha * (ref[i] - h.z[i])
			h.delta[i] += c
			ref[i] -= c
		}
		h.localStep(g[0], ref, gs[g[0]])
	}
	mu := h.cfg.Momentum
	for i := range h.z {
		zOld := h.z[i]
		h.z[i] = zOld + h.delta[i] + mu*(zOld-h.zPrev[i])
		h.zPrev[i] = zOld
	}
}

// Restart re-seeds all replicas from the central average model and clears
// the momentum history (§3.2 restart on learning-rate changes).
func (h *HierarchicalSMA) Restart(ws [][]float32) {
	copy(h.zPrev, h.z)
	for j, w := range ws {
		tensor.Copy(w, h.z)
		tensor.ZeroSlice(h.vel[j])
	}
	h.iter = 0
}

// Groups returns the learner grouping (for tests and the engine).
func (h *HierarchicalSMA) Groups() [][]int { return h.groups }

// validateGroups panics if groups do not partition 0..k-1.
func validateGroups(groups [][]int, k int) {
	seen := make([]bool, k)
	count := 0
	for _, g := range groups {
		for _, j := range g {
			if j < 0 || j >= k || seen[j] {
				panic(fmt.Sprintf("core: invalid learner grouping %v for k=%d", groups, k))
			}
			seen[j] = true
			count++
		}
	}
	if count != k {
		panic(fmt.Sprintf("core: grouping covers %d of %d learners", count, k))
	}
}

// GroupsFor builds the canonical grouping of k = gpus×perGPU learners:
// learner g*perGPU+i lives on GPU g.
func GroupsFor(gpus, perGPU int) [][]int {
	groups := make([][]int, gpus)
	for g := 0; g < gpus; g++ {
		for i := 0; i < perGPU; i++ {
			groups[g] = append(groups[g], g*perGPU+i)
		}
	}
	validateGroups(groups, gpus*perGPU)
	return groups
}
