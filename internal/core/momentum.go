package core

// MomentumKind selects the momentum method applied to the central average
// model's update. §3.2 argues for Polyak's method over Nesterov's
// accelerated gradient: with model averaging, the update to the central
// average model is computed by all learners from their *current* positions,
// not from an estimated look-ahead position, which is exactly the
// information Polyak's heavy-ball update consumes.
type MomentumKind int

// Momentum methods for the average-model update.
const (
	// Polyak is the heavy-ball method (Alg 1 line 12):
	// z ← z + Σc + µ(z − z_prev).
	Polyak MomentumKind = iota
	// Nesterov applies the correction sum at the extrapolated point:
	// z ← z_la + Σc evaluated against z_la = z + µ(z − z_prev), i.e. the
	// corrections are recomputed at the look-ahead position. Offered for
	// the §3.2 ablation.
	Nesterov
)

func (k MomentumKind) String() string {
	if k == Nesterov {
		return "nesterov"
	}
	return "polyak"
}

// StepNesterov performs one SMA iteration using Nesterov-style momentum on
// the central average model: the look-ahead position z_la = z + µ(z−z_prev)
// is computed first, corrections are taken against z_la, and the new z is
// z_la plus the correction sum. Learner-side mechanics match Step.
func (s *SMA) StepNesterov(ws, gs [][]float32) {
	if len(ws) != s.k || len(gs) != s.k {
		panic("core: StepNesterov with wrong vector counts")
	}
	s.iter++
	if s.iter%s.cfg.Tau != 0 {
		for j := range ws {
			s.localStep(j, ws[j], gs[j])
		}
		return
	}
	mu := s.cfg.Momentum
	// Look-ahead position overwrites delta as scratch first.
	la := s.delta
	for i := range s.z {
		la[i] = s.z[i] + mu*(s.z[i]-s.zPrev[i])
	}
	// Corrections against the look-ahead; replicas updated as usual. zNew
	// is struct-owned scratch so the steady-state loop does not allocate.
	zNew := s.zNew
	copy(zNew, la)
	for j := range ws {
		w := ws[j]
		for i := range w {
			c := s.alpha * (w[i] - la[i])
			zNew[i] += c
			w[i] -= c
		}
		s.localStep(j, w, gs[j])
	}
	copy(s.zPrev, s.z)
	copy(s.z, zNew)
}
