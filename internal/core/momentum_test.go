package core

import (
	"testing"

	"crossbow/internal/tensor"
)

func TestMomentumKindString(t *testing.T) {
	if Polyak.String() != "polyak" || Nesterov.String() != "nesterov" {
		t.Fatal("bad names")
	}
}

func TestNesterovMatchesPolyakWithoutMomentum(t *testing.T) {
	// With µ = 0 the look-ahead equals z, so both steps coincide.
	k, n := 3, 6
	ws1, gs := vecs(k, n, 41)
	ws2 := make([][]float32, k)
	for j := range ws1 {
		ws2[j] = append([]float32(nil), ws1[j]...)
		for i := range gs[j] {
			gs[j][i] = float32(i) * 0.01
		}
	}
	w0 := make([]float32, n)
	a := NewSMA(SMAConfig{LearnRate: 0.05}, w0, k)
	b := NewSMA(SMAConfig{LearnRate: 0.05}, w0, k)
	for step := 0; step < 5; step++ {
		a.Step(ws1, gs)
		b.StepNesterov(ws2, gs)
	}
	if tensor.MaxAbsDiff(a.Average(), b.Average()) > 1e-6 {
		t.Fatal("µ=0 Polyak and Nesterov should coincide")
	}
}

func TestNesterovDivergesFromPolyakWithMomentum(t *testing.T) {
	k, n := 2, 4
	ws1, gs := vecs(k, n, 43)
	ws2 := make([][]float32, k)
	for j := range ws1 {
		ws2[j] = append([]float32(nil), ws1[j]...)
		for i := range gs[j] {
			gs[j][i] = 0.1
		}
	}
	w0 := make([]float32, n)
	a := NewSMA(SMAConfig{LearnRate: 0.05, Momentum: 0.9}, w0, k)
	b := NewSMA(SMAConfig{LearnRate: 0.05, Momentum: 0.9}, w0, k)
	for step := 0; step < 5; step++ {
		a.Step(ws1, gs)
		b.StepNesterov(ws2, gs)
	}
	if tensor.MaxAbsDiff(a.Average(), b.Average()) == 0 {
		t.Fatal("µ>0 Polyak and Nesterov should differ")
	}
}

func TestNesterovConvergesOnQuadratic(t *testing.T) {
	target := []float32{2, -1}
	k := 2
	ws, gs := vecs(k, 2, 47)
	s := NewSMA(SMAConfig{LearnRate: 0.1, Momentum: 0.5}, make([]float32, 2), k)
	for step := 0; step < 400; step++ {
		for j := range ws {
			for i := range ws[j] {
				gs[j][i] = ws[j][i] - target[i]
			}
		}
		s.StepNesterov(ws, gs)
	}
	if d := tensor.MaxAbsDiff(s.Average(), target); d > 0.05 {
		t.Fatalf("Nesterov SMA distance to optimum = %v", d)
	}
}
