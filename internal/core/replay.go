package core

import (
	"fmt"

	"crossbow/internal/data"
	"crossbow/internal/metrics"
	"crossbow/internal/tensor"
)

// ReplayFCFS re-executes a barrier-free training run from its assignment
// log, sequentially and deterministically. This is the FCFS determinism
// contract made executable: a live FCFS run's only timing-dependent
// artefact is which learner consumed which staged batch (Result.SeqLog) —
// corrections are computed against a round-versioned average model and
// folded in learner-index order, so replaying the same log reproduces the
// live trajectory bit for bit (losses, accuracies and weights).
//
// cfg must be the live run's config (flat SMA, fixed learner count).
// seqLog is the live run's Result.SeqLog; a log shorter than MaxEpochs —
// a run that stopped early on TargetAcc — replays the epochs it covers,
// and the replayed run stops at the same point by the same rule.
func ReplayFCFS(cfg TrainConfig, seqLog [][]int) *Result {
	cfg.fillDefaults()
	cfg.Scheduler = SchedFCFS
	cfg.validate()
	if cfg.AutoTuneLearners {
		panic("core: ReplayFCFS requires a fixed learner count")
	}
	k := cfg.K()
	if len(seqLog) != k {
		panic(fmt.Sprintf("core: assignment log covers %d learners, want %d", len(seqLog), k))
	}

	// The run is rebuilt through the same constructor as the live one, so
	// replica/eval RNG streams and build order cannot diverge.
	e := newTrainEnv(&cfg, k)
	sma := buildOpt(&cfg, e.w0, k, e.nets[0].StateRanges()).(*SMA)
	corr := make([][]float32, k)
	for j := range corr {
		corr[j] = make([]float32, len(e.w0))
	}

	// Epochs covered by the log: every learner runs the same per-epoch
	// iteration count, so a log from an early-stopped run replays the
	// epochs it recorded.
	iterPerEpoch := e.iterPerEpoch(k)
	epochs := cfg.MaxEpochs
	for j := 0; j < k; j++ {
		if got := len(seqLog[j]) / iterPerEpoch; got < epochs {
			epochs = got
		}
	}
	if epochs == 0 {
		panic(fmt.Sprintf("core: assignment log covers less than one epoch (%d iterations, want %d)",
			len(seqLog[0]), iterPerEpoch))
	}

	// Reconstruct the staged-batch draw sequence: seq s is the s-th index
	// set the pipeline's batcher yields.
	maxSeq := 0
	for _, l := range seqLog {
		for _, s := range l {
			if s > maxSeq {
				maxSeq = s
			}
		}
	}
	batcher := data.NewBatcher(e.train.Len(), cfg.BatchPerLearner, cfg.Seed+21)
	batches := make([][]int, maxSeq+1)
	for s := range batches {
		batches[s] = append([]int(nil), batcher.Next()...)
	}

	x := tensor.New(append([]int{cfg.BatchPerLearner}, e.train.Shape...)...)
	labels := make([]int, cfg.BatchPerLearner)
	losses := make([]float64, k)

	// Replayed runs publish snapshots at the same round boundaries as the
	// live run they re-execute: round r's model is bit-identical to the
	// live round-r model, so the snapshot stream is reproducible too.
	pub := newSnapshotPublisher(&cfg)

	res := &Result{K: k, EpochsToTarget: -1, Sched: SchedFCFS, SeqLog: seqLog}
	lr := cfg.LearnRate
	done := 0
	for epoch := 1; epoch <= epochs; epoch++ {
		if cfg.Schedule != nil {
			nlr := cfg.Schedule(epoch, cfg.LearnRate)
			if nlr != lr {
				lr = nlr
				setLearnRate(sma, lr)
				if cfg.RestartOnLRChange {
					restart(sma, e.ws)
				}
			}
		}
		pub.setEpoch(epoch)
		perLearner := make([]float64, k)
		for t := 1; t <= iterPerEpoch; t++ {
			i := done + t // lifetime iteration, uniform across learners
			// Gradients first: every learner's τ-boundary gradient is
			// computed on the replica as it stood before the exchange,
			// matching both Alg 1 and the live runtime's task order.
			for j := 0; j < k; j++ {
				e.train.Gather(batches[seqLog[j][i-1]], x, labels)
				tensor.ZeroSlice(e.gs[j])
				losses[j] = e.nets[j].LossAndGrad(x, labels)
				perLearner[j] += losses[j]
			}
			if i%cfg.Tau == 0 {
				// τ-boundary: fused correction + gradient step per learner,
				// then the index-ordered fold — the live runtime's op
				// sequence, serialised.
				for j := 0; j < k; j++ {
					sma.ContributeStep(j, e.ws[j], e.gs[j], corr[j])
				}
				sma.ApplyContributions(corr)
				if pub != nil {
					if r := i / cfg.Tau; r%pub.everyRnds == 0 {
						pub.publish(sma, r)
					}
				}
			} else {
				for j := 0; j < k; j++ {
					sma.LocalStep(j, e.ws[j], e.gs[j])
				}
			}
		}
		done += iterPerEpoch

		// Epoch loss folds per-learner sums in index order, as the live
		// runtime does at the epoch join.
		var lossSum float64
		for j := 0; j < k; j++ {
			lossSum += perLearner[j]
		}
		acc := evaluate(e.evalNet, sma.Average(), e.evalGrad, e.test, e.evalBatch, e.es)
		res.Series = append(res.Series, metrics.EpochPoint{
			Epoch:   epoch,
			TimeSec: float64(epoch) * cfg.EpochSeconds,
			TestAcc: acc,
			Loss:    lossSum / float64(max(1, iterPerEpoch*k)),
		})
		if cfg.TargetAcc > 0 {
			if ep, ok := metrics.EpochsToAccuracy(res.Series, cfg.TargetAcc); ok {
				res.EpochsToTarget = ep
				break
			}
		}
	}
	if res.EpochsToTarget < 0 && cfg.TargetAcc > 0 {
		if ep, ok := metrics.EpochsToAccuracy(res.Series, cfg.TargetAcc); ok {
			res.EpochsToTarget = ep
		}
	}
	res.FinalAccuracy = metrics.BestAccuracy(res.Series)
	res.Model = append([]float32(nil), sma.Average()...)
	return res
}
