package core

import (
	"fmt"

	"crossbow/internal/tensor"
)

// SMAConfig are the hyper-parameters of Algorithm 1.
type SMAConfig struct {
	// LearnRate is γ, applied to every learner's gradient.
	LearnRate float32
	// Momentum is µ, Polyak's momentum applied to the central average
	// model's update (§3.2): directions of persistent descent are kept.
	Momentum float32
	// LocalMomentum is the momentum each learner applies to its own
	// gradient steps (Eq. 3), as in the released Crossbow system; the
	// paper's §5.1 trains both systems with the same momentum setting.
	// Alg 1's µ concerns the average model only, so this is configured
	// separately; zero disables local momentum.
	LocalMomentum float32
	// Alpha is the correction constant α ≈ 1/k (line 9). Zero selects
	// 1/k automatically.
	Alpha float32
	// Tau synchronises replicas with the central average model every Tau
	// iterations (τ in §5.5-5.6; the paper shows τ=1 is optimal, but the
	// sweep needs τ>1 support). Zero means 1.
	Tau int
	// StateRanges marks non-learnable state segments (batch-norm running
	// statistics) inside the model vector. Corrections do not apply to
	// state — each replica keeps its own statistics — and the central
	// average model carries the replica average instead, mirroring how
	// the system treats solver state separately from weights.
	StateRanges [][2]int
}

// SMA is the synchronous-model-averaging optimiser: k learners train their
// own replicas; a central average model z consolidates their corrections
// and follows the consensus trajectory with momentum (Figure 5).
type SMA struct {
	cfg   SMAConfig
	k     int
	alpha float32

	z      []float32   // central average model
	zPrev  []float32   // z at the beginning of the previous iteration
	delta  []float32   // scratch: Σ corrections + momentum term
	zNew   []float32   // scratch: next z during Nesterov steps
	vel    [][]float32 // per-learner local momentum velocity
	state  []bool      // state mask: true entries are exempt from corrections
	iter   int
	rounds int // consensus exchanges folded into z (z's version)
}

// NewSMA creates the optimiser for k learners from initial model w0. The
// central average model starts as a copy of w0 (Alg 1 line 1).
func NewSMA(cfg SMAConfig, w0 []float32, k int) *SMA {
	if k < 1 {
		panic("core: SMA needs at least one learner")
	}
	if cfg.Tau < 1 {
		cfg.Tau = 1
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 1 / float32(k)
	}
	s := &SMA{
		cfg: cfg, k: k, alpha: alpha,
		z:     append([]float32(nil), w0...),
		zPrev: append([]float32(nil), w0...),
		delta: make([]float32, len(w0)),
		zNew:  make([]float32, len(w0)),
		vel:   make([][]float32, k),
	}
	for j := range s.vel {
		s.vel[j] = make([]float32, len(w0))
	}
	if len(cfg.StateRanges) > 0 {
		s.state = make([]bool, len(w0))
		for _, rg := range cfg.StateRanges {
			for i := rg[0]; i < rg[1] && i < len(w0); i++ {
				s.state[i] = true
			}
		}
	}
	return s
}

// localStep applies learner j's gradient with local momentum:
// v ← µL·v − γ·g; w ← w + v. With µL = 0 this is the plain step of Alg 1
// line 8/10. The serial fast path avoids materialising the chunk closure —
// learner steps run every iteration, and with one kernel worker the hot
// loop stays allocation-free (same body, same bits).
func (s *SMA) localStep(j int, w, g []float32) {
	lr, mu := s.cfg.LearnRate, s.cfg.LocalMomentum
	v := s.vel[j]
	if tensor.Parallelism() == 1 {
		localStepRange(v, w, g, lr, mu, 0, len(w))
		return
	}
	tensor.ParallelFor(len(w), 16384, func(lo, hi int) {
		localStepRange(v, w, g, lr, mu, lo, hi)
	})
}

func localStepRange(v, w, g []float32, lr, mu float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		v[i] = mu*v[i] - lr*g[i]
		w[i] += v[i]
	}
}

// K returns the learner count.
func (s *SMA) K() int { return s.k }

// Alpha returns the effective correction constant.
func (s *SMA) Alpha() float32 { return s.alpha }

// Average returns the central average model z (the model SMA trains; Alg 1
// returns it on termination). The returned slice is live — do not modify.
func (s *SMA) Average() []float32 { return s.z }

// Rounds returns the number of consensus exchanges folded into the central
// average model so far — z's version. Every lockstep τ-boundary Step and
// every ApplyContributions advances it by one; the counter is monotone
// across §3.2 restarts, so a larger round number always identifies a more
// recent model.
func (s *SMA) Rounds() int { return s.rounds }

// SnapshotCentral copies the central average model into dst (len(dst) must
// match the model size) and returns the round version the copy represents.
// The copy is lock-cheap — one memcpy, no locks, no learner pause — because
// consistency comes from the caller's position in the synchronisation
// protocol, not from mutual exclusion: z is only ever written during a
// consensus exchange (Step's τ-boundary branch, ApplyContributions), so any
// call site that is ordered after one exchange and before the next observes
// a stable, fully-folded z. The task runtime's Publish hook provides exactly
// that window in both scheduling modes (lockstep: after the joined step, on
// the stepping goroutine; FCFS: inside the round-completion critical
// section, before the next round opens); at quiescence any goroutine
// qualifies.
func (s *SMA) SnapshotCentral(dst []float32) (round int) {
	if len(dst) != len(s.z) {
		panic(fmt.Sprintf("core: SnapshotCentral into %d values, want %d", len(dst), len(s.z)))
	}
	copy(dst, s.z)
	return s.rounds
}

// Step performs one iteration of Algorithm 1 (lines 4-13). ws[j] is learner
// j's replica and gs[j] the raw loss gradient ∇ℓ_Bj(wj) the learner just
// computed; Step applies the learning rate internally. On non-sync
// iterations (iter % τ ≠ 0) replicas take pure gradient steps and the
// average model is left untouched — the τ>1 relaxation of §5.5.
func (s *SMA) Step(ws, gs [][]float32) {
	if len(ws) != s.k || len(gs) != s.k {
		panic(fmt.Sprintf("core: SMA.Step with %d/%d vectors, want %d", len(ws), len(gs), s.k))
	}
	s.iter++
	sync := s.iter%s.cfg.Tau == 0
	if !sync {
		for j := range ws {
			s.localStep(j, ws[j], gs[j])
		}
		return
	}
	// Corrections are computed on the replicas as they stood at the
	// iteration start (line 9), so the exchange runs before the gradient
	// steps; each replica takes correction and gradient in one iteration
	// (line 10).
	smaExchange(ws, s.z, s.zPrev, s.delta, s.state, s.alpha, s.cfg.Momentum)
	s.rounds++
	for j := range ws {
		s.localStep(j, ws[j], gs[j])
	}
}

// smaExchange is the SMA consensus update of Alg 1 lines 8-13, shared by
// every averaging tier (learner replicas against an average model, server
// reference models against the cluster average model): each replica's
// correction c_j = α(w_j − z) accumulates into delta (line 12's first
// component) and applies to the replica, then z follows the summed
// corrections with momentum, z ← z + Σ c_j + µ (z − z_prev) (lines
// 11-13). State entries (batch-norm statistics) are exempt from
// corrections and carry the replica average instead.
func smaExchange(ws [][]float32, z, zPrev, delta []float32, state []bool, alpha, mu float32) {
	// Every index is independent of the others, so the exchange is
	// partitioned over disjoint index ranges: per-index operations keep
	// their replica-order (j) accumulation, making the result bit-identical
	// at any worker count. Serial fast path: no chunk closure.
	if tensor.Parallelism() == 1 {
		smaExchangeRange(ws, z, zPrev, delta, state, alpha, mu, 0, len(z))
		return
	}
	tensor.ParallelFor(len(z), 16384, func(lo, hi int) {
		smaExchangeRange(ws, z, zPrev, delta, state, alpha, mu, lo, hi)
	})
}

func smaExchangeRange(ws [][]float32, z, zPrev, delta []float32, state []bool, alpha, mu float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		delta[i] = 0
	}
	for _, w := range ws {
		if state == nil {
			for i := lo; i < hi; i++ {
				c := alpha * (w[i] - z[i])
				delta[i] += c
				w[i] -= c
			}
		} else {
			for i := lo; i < hi; i++ {
				if state[i] {
					continue
				}
				c := alpha * (w[i] - z[i])
				delta[i] += c
				w[i] -= c
			}
		}
	}
	for i := lo; i < hi; i++ {
		zOld := z[i]
		if state != nil && state[i] {
			var sum float32
			for j := range ws {
				sum += ws[j][i]
			}
			z[i] = sum / float32(len(ws))
			zPrev[i] = zOld
			continue
		}
		z[i] = zOld + delta[i] + mu*(zOld-zPrev[i])
		zPrev[i] = zOld
	}
}

// LocalStep applies learner j's gradient to its replica with local momentum
// (Alg 1 line 8/10). It touches only learner j's state, so distinct
// learners may step concurrently — the barrier-free runtime's contract.
func (s *SMA) LocalStep(j int, w, g []float32) { s.localStep(j, w, g) }

// ContributeStep is learner j's τ-boundary update, fused into one pass
// over the replica: the correction c_j = α(w_j − z) against the current
// central average model is computed on the replica as it stood at the
// iteration start, applied to it, and stored in out (len(out) == len(w));
// then the iteration's gradient step w ← (w − c) + (v ← µ_L·v − γ·g)
// follows (Alg 1 line 10: replicas take correction and gradient in one
// iteration). The arithmetic and its order are exactly those of the
// lockstep exchange followed by LocalStep — fusing only removes a second
// traversal of w — so the two schedulers stay numerically interchangeable.
// State entries are exempt from corrections; out carries the replica's
// pre-step value there so ApplyContributions can average it.
//
// ContributeStep reads z and touches only learner j's state otherwise, so
// all learners of one round may contribute concurrently as long as no
// ApplyContributions runs in between — the runtime's round protocol
// guarantees exactly that.
func (s *SMA) ContributeStep(j int, w, g, out []float32) {
	alpha, z, state := s.alpha, s.z, s.state
	lr, mu := s.cfg.LearnRate, s.cfg.LocalMomentum
	v := s.vel[j]
	if tensor.Parallelism() == 1 {
		contributeStepRange(w, g, out, v, z, state, alpha, lr, mu, 0, len(w))
		return
	}
	tensor.ParallelFor(len(w), 16384, func(lo, hi int) {
		contributeStepRange(w, g, out, v, z, state, alpha, lr, mu, lo, hi)
	})
}

func contributeStepRange(w, g, out, v, z []float32, state []bool, alpha, lr, mu float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		wi := w[i]
		if state == nil || !state[i] {
			c := alpha * (wi - z[i])
			out[i] = c
			wi -= c
		} else {
			out[i] = wi
		}
		v[i] = mu*v[i] - lr*g[i]
		w[i] = wi + v[i]
	}
}

// ApplyContributions folds one round of corrections into the central
// average model: delta[i] = Σ_j corr[j][i] accumulated in learner-index
// order, then z ← z + delta + µ(z − z_prev) (Alg 1 lines 11-13), exactly
// the arithmetic and accumulation order of the lockstep exchange — so for
// corrections computed against the same z, lockstep and barrier-free
// synchronisation produce bit-identical average models. State entries
// carry the replica average. corr must hold one ContributeStep result per
// learner.
func (s *SMA) ApplyContributions(corr [][]float32) {
	if len(corr) != s.k {
		panic(fmt.Sprintf("core: ApplyContributions with %d vectors, want %d", len(corr), s.k))
	}
	z, zPrev, state, mu := s.z, s.zPrev, s.state, s.cfg.Momentum
	s.rounds++
	if tensor.Parallelism() == 1 {
		applyContributionsRange(corr, z, zPrev, state, mu, 0, len(z))
		return
	}
	tensor.ParallelFor(len(z), 16384, func(lo, hi int) {
		applyContributionsRange(corr, z, zPrev, state, mu, lo, hi)
	})
}

func applyContributionsRange(corr [][]float32, z, zPrev []float32, state []bool, mu float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		zOld := z[i]
		if state != nil && state[i] {
			var sum float32
			for j := range corr {
				sum += corr[j][i]
			}
			z[i] = sum / float32(len(corr))
			zPrev[i] = zOld
			continue
		}
		var delta float32
		for j := range corr {
			delta += corr[j][i]
		}
		z[i] = zOld + delta + mu*(zOld-zPrev[i])
		zPrev[i] = zOld
	}
}

// Restart re-initialises the averaging process from the current central
// average model (§3.2: when a learning-rate change does not improve
// accuracy, Alg 1 is executed again with the latest z as the new w0).
// Replicas are reset to z and the momentum history is cleared.
func (s *SMA) Restart(ws [][]float32) {
	copy(s.zPrev, s.z)
	for j, w := range ws {
		tensor.Copy(w, s.z)
		tensor.ZeroSlice(s.vel[j])
	}
	s.iter = 0
}

// SetLearnRate updates γ (online hyper-parameter adaptation, §3.2).
func (s *SMA) SetLearnRate(lr float32) { s.cfg.LearnRate = lr }

// LearnRate returns the current γ.
func (s *SMA) LearnRate() float32 { return s.cfg.LearnRate }
