package core

import (
	"math"
	"testing"
	"testing/quick"

	"crossbow/internal/tensor"
)

func vecs(k, n int, seed uint64) ([][]float32, [][]float32) {
	r := tensor.NewRNG(seed)
	ws := make([][]float32, k)
	gs := make([][]float32, k)
	for j := 0; j < k; j++ {
		ws[j] = make([]float32, n)
		gs[j] = make([]float32, n)
		for i := 0; i < n; i++ {
			ws[j][i] = float32(r.NormFloat64())
		}
	}
	return ws, gs
}

func TestSMAFixedPoint(t *testing.T) {
	// Replicas equal to z, zero gradients, zero momentum: nothing moves.
	w0 := []float32{1, -2, 3}
	s := NewSMA(SMAConfig{LearnRate: 0.1}, w0, 2)
	ws := [][]float32{append([]float32(nil), w0...), append([]float32(nil), w0...)}
	gs := [][]float32{make([]float32, 3), make([]float32, 3)}
	s.Step(ws, gs)
	if tensor.MaxAbsDiff(s.Average(), w0) != 0 {
		t.Fatal("z moved at fixed point")
	}
	for _, w := range ws {
		if tensor.MaxAbsDiff(w, w0) != 0 {
			t.Fatal("replica moved at fixed point")
		}
	}
}

func TestSMAZeroGradConvergesToMean(t *testing.T) {
	// With zero gradients and α = 1/k, one sync step moves z exactly to
	// the replica mean (line 12: z + Σ α(w_j − z) = mean(w)).
	k, n := 4, 8
	ws, gs := vecs(k, n, 3)
	w0 := make([]float32, n) // z starts at 0
	s := NewSMA(SMAConfig{LearnRate: 0.1}, w0, k)
	want := make([]float32, n)
	tensor.AverageInto(want, ws...)
	s.Step(ws, gs)
	if d := tensor.MaxAbsDiff(s.Average(), want); d > 1e-5 {
		t.Fatalf("z after one step differs from replica mean by %v", d)
	}
}

func TestSMACorrectionPullsReplicasTowardAverage(t *testing.T) {
	k, n := 2, 4
	ws, gs := vecs(k, n, 5)
	z0 := make([]float32, n)
	s := NewSMA(SMAConfig{LearnRate: 0}, z0, k)
	before := make([]float64, k)
	for j := range ws {
		before[j] = tensor.MaxAbsDiff(ws[j], z0)
	}
	s.Step(ws, gs)
	for j := range ws {
		after := tensor.MaxAbsDiff(ws[j], z0)
		if after >= before[j] {
			t.Fatalf("replica %d not pulled toward z: %v -> %v", j, before[j], after)
		}
	}
}

func TestSMAMomentumAcceleratesAverage(t *testing.T) {
	// Drive replicas with a constant offset from z; with momentum the
	// average model must travel further than without over several steps.
	run := func(mu float32) float64 {
		const n = 4
		z0 := make([]float32, n)
		s := NewSMA(SMAConfig{LearnRate: 0, Momentum: mu}, z0, 1)
		w := make([]float32, n)
		g := make([]float32, n)
		for step := 0; step < 10; step++ {
			for i := range w {
				w[i] = s.Average()[i] + 1 // stay one unit ahead of z
			}
			s.Step([][]float32{w}, [][]float32{g})
		}
		return float64(s.Average()[0])
	}
	plain := run(0)
	accel := run(0.9)
	if accel <= plain {
		t.Fatalf("momentum should accelerate: µ=0 → %v, µ=0.9 → %v", plain, accel)
	}
}

func TestSMATauSkipsSync(t *testing.T) {
	z0 := []float32{1, 1, 1}
	s := NewSMA(SMAConfig{LearnRate: 0.5, Tau: 3}, z0, 1)
	w := []float32{1, 1, 1}
	g := []float32{1, 0, 0}
	// Iterations 1 and 2 are pure gradient steps: z untouched.
	s.Step([][]float32{w}, [][]float32{g})
	s.Step([][]float32{w}, [][]float32{g})
	if tensor.MaxAbsDiff(s.Average(), z0) != 0 {
		t.Fatal("z must not move on non-sync iterations")
	}
	if w[0] != 0 {
		t.Fatalf("w[0] = %v, want 0 after two lr=0.5 steps on unit gradient", w[0])
	}
	// Iteration 3 synchronises.
	s.Step([][]float32{w}, [][]float32{g})
	if tensor.MaxAbsDiff(s.Average(), z0) == 0 {
		t.Fatal("z should move on the sync iteration")
	}
}

func TestSMARestart(t *testing.T) {
	k, n := 3, 5
	ws, gs := vecs(k, n, 7)
	for j := range gs {
		for i := range gs[j] {
			gs[j][i] = float32(j + 1)
		}
	}
	s := NewSMA(SMAConfig{LearnRate: 0.1, Momentum: 0.9}, make([]float32, n), k)
	s.Step(ws, gs)
	s.Step(ws, gs)
	s.Restart(ws)
	for j := range ws {
		if tensor.MaxAbsDiff(ws[j], s.Average()) != 0 {
			t.Fatal("restart must reset replicas to z")
		}
	}
	// After restart the momentum history is cleared: a zero-gradient step
	// from the fixed point stays put.
	zero := make([][]float32, k)
	for j := range zero {
		zero[j] = make([]float32, n)
	}
	zBefore := append([]float32(nil), s.Average()...)
	s.Step(ws, zero)
	if d := tensor.MaxAbsDiff(s.Average(), zBefore); d > 1e-6 {
		t.Fatalf("z moved by %v after restart at fixed point (stale momentum?)", d)
	}
}

func TestSMAAlphaDefault(t *testing.T) {
	s := NewSMA(SMAConfig{LearnRate: 0.1}, make([]float32, 1), 8)
	if math.Abs(float64(s.Alpha())-0.125) > 1e-9 {
		t.Fatalf("alpha = %v, want 1/8", s.Alpha())
	}
}

// Property: with µ=0 and identical inputs, SMA and EA-SGD (τ=1) produce
// identical replicas and central models — momentum is the only difference
// (the ablation behind Figure 15).
func TestSMAEquivalentToEASGDWithoutMomentum(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%4) + 1
		n := 6
		ws1, gs := vecs(k, n, seed)
		ws2 := make([][]float32, k)
		for j := range ws1 {
			ws2[j] = append([]float32(nil), ws1[j]...)
			for i := range gs[j] {
				gs[j][i] = float32(j) - 1
			}
		}
		w0 := make([]float32, n)
		sma := NewSMA(SMAConfig{LearnRate: 0.05}, w0, k)
		ea := NewEASGD(0.05, 0, 1, k, w0)
		for step := 0; step < 5; step++ {
			sma.Step(ws1, gs)
			ea.Step(ws2, gs)
		}
		if tensor.MaxAbsDiff(sma.Average(), ea.Average()) > 1e-6 {
			return false
		}
		for j := range ws1 {
			if tensor.MaxAbsDiff(ws1[j], ws2[j]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSSGDKeepsReplicasConsistent(t *testing.T) {
	k, n := 4, 6
	ws, gs := vecs(k, n, 11)
	for j := range gs {
		for i := range gs[j] {
			gs[j][i] = float32(tensor.NewRNG(uint64(j*100 + i)).NormFloat64())
		}
	}
	s := NewSSGD(0.1, 0.9, make([]float32, n))
	s.Step(ws, gs)
	for j := 1; j < k; j++ {
		if tensor.MaxAbsDiff(ws[0], ws[j]) != 0 {
			t.Fatal("S-SGD must keep all replicas identical after each iteration")
		}
	}
	if tensor.MaxAbsDiff(ws[0], s.Model()) != 0 {
		t.Fatal("replicas must equal the global model")
	}
}

func TestSSGDMatchesEq3ByHand(t *testing.T) {
	// One worker, w0 = 0, g = 1, γ = 0.1, µ = 0.5:
	// step1: v = −0.1, w = −0.1
	// step2: v = 0.5·(−0.1) − 0.1 = −0.15, w = −0.25
	s := NewSSGD(0.1, 0.5, []float32{0})
	w := [][]float32{{0}}
	g := [][]float32{{1}}
	s.Step(w, g)
	if math.Abs(float64(w[0][0])+0.1) > 1e-7 {
		t.Fatalf("after step1 w = %v, want -0.1", w[0][0])
	}
	s.Step(w, g)
	if math.Abs(float64(w[0][0])+0.25) > 1e-7 {
		t.Fatalf("after step2 w = %v, want -0.25", w[0][0])
	}
}

func TestASGDAppliesAllGradients(t *testing.T) {
	a := NewASGD(1, []float32{0, 0})
	ws := [][]float32{{0, 0}, {0, 0}}
	gs := [][]float32{{1, 0}, {0, 2}}
	a.Step(ws, gs)
	if a.Model()[0] != -1 || a.Model()[1] != -2 {
		t.Fatalf("model = %v", a.Model())
	}
	for _, w := range ws {
		if tensor.MaxAbsDiff(w, a.Model()) != 0 {
			t.Fatal("replicas must see the shared model")
		}
	}
}

// Property: hierarchical SMA with one learner per GPU equals flat SMA.
func TestHierarchicalReducesToFlat(t *testing.T) {
	f := func(seed uint64, gRaw uint8) bool {
		g := int(gRaw%4) + 1
		n := 5
		ws1, gs := vecs(g, n, seed)
		ws2 := make([][]float32, g)
		for j := range ws1 {
			ws2[j] = append([]float32(nil), ws1[j]...)
			for i := range gs[j] {
				gs[j][i] = float32(i) * 0.1
			}
		}
		w0 := make([]float32, n)
		cfg := SMAConfig{LearnRate: 0.05, Momentum: 0.6}
		flat := NewSMA(cfg, w0, g)
		hier := NewHierarchicalSMA(cfg, w0, GroupsFor(g, 1))
		for step := 0; step < 4; step++ {
			flat.Step(ws1, gs)
			hier.Step(ws2, gs)
		}
		if tensor.MaxAbsDiff(flat.Average(), hier.Average()) > 1e-5 {
			return false
		}
		for j := range ws1 {
			if tensor.MaxAbsDiff(ws1[j], ws2[j]) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalLocalSyncPullsGroupTogether(t *testing.T) {
	// Two learners on one GPU: after a sync step their replicas must be
	// closer to each other than before.
	ws, gs := vecs(2, 6, 17)
	before := tensor.MaxAbsDiff(ws[0], ws[1])
	h := NewHierarchicalSMA(SMAConfig{LearnRate: 0}, make([]float32, 6), GroupsFor(1, 2))
	h.Step(ws, gs)
	after := tensor.MaxAbsDiff(ws[0], ws[1])
	if after >= before {
		t.Fatalf("group not pulled together: %v -> %v", before, after)
	}
}

func TestGroupsFor(t *testing.T) {
	g := GroupsFor(2, 3)
	if len(g) != 2 || len(g[0]) != 3 {
		t.Fatalf("groups = %v", g)
	}
	if g[1][0] != 3 || g[1][2] != 5 {
		t.Fatalf("groups = %v", g)
	}
}

// Property: all optimisers drive a quadratic loss toward its minimum.
// Gradient of ½‖w−w*‖² is (w−w*), computed per replica.
func TestOptimisersConvergeOnQuadratic(t *testing.T) {
	target := []float32{1, -2, 0.5}
	n := len(target)
	k := 3
	build := func(name string, w0 []float32) stepper {
		switch name {
		case "sma":
			return NewSMA(SMAConfig{LearnRate: 0.1, Momentum: 0.5}, w0, k)
		case "easgd":
			return NewEASGD(0.1, 0, 1, k, w0)
		case "ssgd":
			return NewSSGD(0.1, 0.5, w0)
		case "asgd":
			return NewASGD(0.1, w0)
		case "hier":
			return NewHierarchicalSMA(SMAConfig{LearnRate: 0.1}, w0, [][]int{{0, 1}, {2}})
		}
		panic("bad name")
	}
	for _, name := range []string{"sma", "easgd", "ssgd", "asgd", "hier"} {
		w0 := make([]float32, n)
		opt := build(name, w0)
		ws, gs := vecs(k, n, 23)
		for step := 0; step < 300; step++ {
			for j := range ws {
				for i := range ws[j] {
					gs[j][i] = ws[j][i] - target[i]
				}
			}
			opt.Step(ws, gs)
		}
		model := centralModel(opt)
		if d := tensor.MaxAbsDiff(model, target); d > 0.05 {
			t.Errorf("%s: final distance to optimum = %v", name, d)
		}
	}
}
