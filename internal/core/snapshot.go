package core

import "crossbow/internal/nn"

// Snapshot is a versioned, self-contained copy of the central average model
// cut at a synchronisation-round boundary — the servable artefact of an SMA
// training run (the whole point of the central average model is that it is
// the model one would deploy; see DESIGN.md §11).
//
// Consistency contract: Params is copied inside the task runtime's Publish
// window, where the average model is guaranteed stable in both scheduling
// modes, so a snapshot is always the exact, fully-folded model of round
// Round — never a torn mixture of two rounds, even when learners keep
// training barrier-free while the copy happens.
type Snapshot struct {
	// Model names the architecture Params belongs to.
	Model nn.ModelID
	// Round is the snapshot's version: the number of synchronisation
	// rounds folded into the central average model when it was cut.
	// Monotone over a run (including across online-autotuning resizes,
	// which carry the round base over), so a larger Round always
	// identifies a more recent model.
	Round int
	// Iter is the per-learner iteration count the round represents
	// (Round × τ).
	Iter int
	// Epoch is the 1-based training epoch the snapshot was cut in.
	Epoch int
	// Params is the copied central average model, owned by the receiver.
	Params []float32
}

// snapshotPublisher cuts snapshots of a training run's central model every
// publishEvery rounds, from inside the runtime's Publish window. It holds
// the pieces that survive an online-autotuning resize: the round base (the
// runtime's round counter restarts per phase) and the consumer callback.
type snapshotPublisher struct {
	cfg       *TrainConfig
	onSnap    func(Snapshot)
	everyRnds int
	roundBase int // rounds folded by completed runtime phases
	epoch     int // current epoch; written between RunEpochs (quiescence)
}

// newSnapshotPublisher resolves PublishEvery (iterations, rounded up to the
// enclosing τ boundary — snapshots are only cut where the model is stable)
// into a round period. Returns nil when publishing is off.
func newSnapshotPublisher(cfg *TrainConfig) *snapshotPublisher {
	if cfg.PublishEvery <= 0 || cfg.OnSnapshot == nil {
		return nil
	}
	every := (cfg.PublishEvery + cfg.Tau - 1) / cfg.Tau
	if every < 1 {
		every = 1
	}
	return &snapshotPublisher{cfg: cfg, onSnap: cfg.OnSnapshot, everyRnds: every}
}

// hook returns the engine Publish closure for one runtime phase over opt.
// round arrives 1-based and phase-local; the publisher rebases it.
func (sp *snapshotPublisher) hook(opt stepper) func(round int) {
	if sp == nil {
		return nil
	}
	return func(round int) {
		r := sp.roundBase + round
		if r%sp.everyRnds != 0 {
			return
		}
		sp.publish(opt, r)
	}
}

// publish cuts one snapshot. Called from the runtime's Publish window (or
// at quiescence); the model copy is the only non-trivial work, so a
// publication costs one memcpy and publishing every K rounds amortises it.
func (sp *snapshotPublisher) publish(opt stepper, round int) {
	// An overlapped global exchange launched by this round's Step is folded
	// before the model is copied: the Publish window runs on the same
	// goroutine as Step under lockstep, so the published bytes match the
	// synchronous path's exactly.
	drainExchange(opt)
	s := Snapshot{
		Model: sp.cfg.Model,
		Round: round,
		Iter:  round * sp.cfg.Tau,
		Epoch: sp.epoch,
	}
	if sma, ok := opt.(*SMA); ok {
		s.Params = make([]float32, len(sma.Average()))
		sma.SnapshotCentral(s.Params)
	} else {
		s.Params = append([]float32(nil), centralModel(opt)...)
	}
	sp.onSnap(s)
}

// rebase accounts a completed runtime phase's rounds before a resize, so
// snapshot versions stay monotone across learner-count changes.
func (sp *snapshotPublisher) rebase(rounds int) {
	if sp != nil {
		sp.roundBase += rounds
	}
}

// setEpoch records the epoch subsequent snapshots are tagged with. Call at
// quiescence (between RunEpochs).
func (sp *snapshotPublisher) setEpoch(e int) {
	if sp != nil {
		sp.epoch = e
	}
}
