package core

import (
	"math"
	"testing"
)

// Snapshot-consistency pins: a snapshot cut mid-training must be
// bit-identical to the central average model as it stood at the round
// boundary it was cut from — never a torn mixture of two rounds, under
// either scheduler.

// snapshotCfg is a small multi-learner run with mid-epoch round boundaries
// (iterations per epoch is a multiple of τ but snapshots land inside
// epochs too).
func snapshotCfg(sched SchedulerMode) TrainConfig {
	cfg := determinismCfg() // ResNet-32, k=2, b=8, 128 samples ⇒ 8 iters/epoch
	cfg.Scheduler = sched
	return cfg
}

func collectSnapshots(cfg *TrainConfig, every int) *[]Snapshot {
	snaps := new([]Snapshot)
	cfg.PublishEvery = every
	cfg.OnSnapshot = func(s Snapshot) { *snaps = append(*snaps, s) }
	return snaps
}

func modelsBitIdentical(t *testing.T, label string, a, b []float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: model length %d != %d", label, len(a), len(b))
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("%s: weight %d differs: %v vs %v", label, i, a[i], b[i])
		}
	}
}

// TestSnapshotConsistencyLockstep cross-checks two lockstep runs of the
// same config publishing at different cadences: rounds published by both
// must carry bit-identical models (lockstep is deterministic, so any
// mismatch means a snapshot was not cut exactly at its round boundary),
// and the final snapshot must equal the run's final central model.
func TestSnapshotConsistencyLockstep(t *testing.T) {
	cfgA := snapshotCfg(SchedLockstep)
	snapsP := collectSnapshots(&cfgA, 1) // every round
	resA := Train(cfgA)
	snapsA := *snapsP

	cfgB := snapshotCfg(SchedLockstep)
	snapsBP := collectSnapshots(&cfgB, 3) // every 3rd round, mid-epoch
	Train(cfgB)
	snapsB := *snapsBP

	if len(snapsA) != 16 { // 8 iters/epoch × 2 epochs at τ=1
		t.Fatalf("publish-every-round run cut %d snapshots, want 16", len(snapsA))
	}
	if len(snapsB) != 5 { // rounds 3, 6, 9, 12, 15
		t.Fatalf("publish-every-3 run cut %d snapshots, want 5", len(snapsB))
	}
	byRound := map[int][]float32{}
	for _, s := range snapsA {
		byRound[s.Round] = s.Params
	}
	for _, s := range snapsB {
		want, ok := byRound[s.Round]
		if !ok {
			t.Fatalf("round %d published by the every-3 run but not the every-round run", s.Round)
		}
		modelsBitIdentical(t, "lockstep cadence cross-check", s.Params, want)
	}
	modelsBitIdentical(t, "final snapshot vs final model", snapsA[len(snapsA)-1].Params, resA.Model)
}

// TestSnapshotConsistencyLockstepEpochBoundary pins absolute correctness at
// epoch-boundary rounds: a snapshot cut mid-run at the end of epoch 1 must
// equal the final model of an identical run trained for exactly one epoch.
func TestSnapshotConsistencyLockstepEpochBoundary(t *testing.T) {
	cfg := snapshotCfg(SchedLockstep)
	snapsP := collectSnapshots(&cfg, 1)
	Train(cfg)
	snaps := *snapsP

	one := snapshotCfg(SchedLockstep)
	one.MaxEpochs = 1
	resOne := Train(one)

	const epochRounds = 8 // 8 iterations per epoch at τ=1
	var cut []float32
	for _, s := range snaps {
		if s.Round == epochRounds {
			if s.Epoch != 1 {
				t.Fatalf("round %d tagged epoch %d, want 1", s.Round, s.Epoch)
			}
			cut = s.Params
		}
	}
	if cut == nil {
		t.Fatalf("no snapshot at round %d", epochRounds)
	}
	modelsBitIdentical(t, "mid-run snapshot vs one-epoch run", cut, resOne.Model)
}

// TestSnapshotConsistencyFCFS is the concurrent-cut pin: a live FCFS run
// publishes snapshots from inside the round-completion window while other
// learners keep training barrier-free; replaying the run's assignment log
// (which re-executes the trajectory serially and deterministically) must
// produce bit-identical snapshots at the same rounds. A torn or mis-timed
// live snapshot cannot match the replay's round-boundary model.
func TestSnapshotConsistencyFCFS(t *testing.T) {
	for _, tau := range []int{1, 2} {
		cfg := snapshotCfg(SchedFCFS)
		cfg.Tau = tau
		liveP := collectSnapshots(&cfg, tau) // every round
		res := Train(cfg)
		live := *liveP

		replayCfg := snapshotCfg(SchedFCFS)
		replayCfg.Tau = tau
		replayedP := collectSnapshots(&replayCfg, tau)
		ReplayFCFS(replayCfg, res.SeqLog)
		replayed := *replayedP

		if len(live) == 0 || len(live) != len(replayed) {
			t.Fatalf("τ=%d: live run cut %d snapshots, replay %d", tau, len(live), len(replayed))
		}
		for i := range live {
			if live[i].Round != replayed[i].Round {
				t.Fatalf("τ=%d: snapshot %d at round %d live vs %d replayed",
					tau, i, live[i].Round, replayed[i].Round)
			}
			if live[i].Iter != live[i].Round*tau {
				t.Fatalf("τ=%d: round %d reports iter %d, want %d",
					tau, live[i].Round, live[i].Iter, live[i].Round*tau)
			}
			modelsBitIdentical(t, "live-vs-replay", live[i].Params, replayed[i].Params)
		}
		modelsBitIdentical(t, "final snapshot vs final model", live[len(live)-1].Params, res.Model)
	}
}

// TestSMASnapshotCentralVersion pins the optimiser-level API: the round
// counter advances once per consensus exchange under both the lockstep Step
// path and the FCFS contribute/apply pair, and SnapshotCentral copies z
// exactly.
func TestSMASnapshotCentralVersion(t *testing.T) {
	w0 := []float32{1, 2, 3, 4}
	k := 2
	cfg := SMAConfig{LearnRate: 0.1, Momentum: 0.9, Tau: 2}
	s := NewSMA(cfg, w0, k)
	ws := [][]float32{append([]float32(nil), w0...), append([]float32(nil), w0...)}
	gs := [][]float32{{1, 1, 1, 1}, {2, 2, 2, 2}}

	dst := make([]float32, len(w0))
	if r := s.SnapshotCentral(dst); r != 0 {
		t.Fatalf("fresh optimiser at round %d, want 0", r)
	}
	s.Step(ws, gs) // iter 1: no sync at τ=2
	if r := s.Rounds(); r != 0 {
		t.Fatalf("non-boundary Step advanced the round to %d", r)
	}
	s.Step(ws, gs) // iter 2: sync
	if r := s.SnapshotCentral(dst); r != 1 {
		t.Fatalf("after one exchange, round %d, want 1", r)
	}
	modelsBitIdentical(t, "SnapshotCentral copy", dst, s.Average())

	// FCFS path: one fused contribute per learner, then the fold.
	corr := [][]float32{make([]float32, len(w0)), make([]float32, len(w0))}
	s.ContributeStep(0, ws[0], gs[0], corr[0])
	s.ContributeStep(1, ws[1], gs[1], corr[1])
	s.ApplyContributions(corr)
	if r := s.SnapshotCentral(dst); r != 2 {
		t.Fatalf("after ApplyContributions, round %d, want 2", r)
	}
	modelsBitIdentical(t, "SnapshotCentral copy after apply", dst, s.Average())

	if err := func() (err error) {
		defer func() {
			if recover() == nil {
				err = errNoPanic
			}
		}()
		s.SnapshotCentral(make([]float32, 2))
		return nil
	}(); err != nil {
		t.Fatal("SnapshotCentral accepted a wrong-sized destination")
	}
}

var errNoPanic = errorString("expected panic")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestSnapshotVersionsMonotoneAcrossResize pins round-version monotonicity
// through an online-autotuning resize, which rebuilds the optimiser (and
// its phase-local round counter) mid-run.
func TestSnapshotVersionsMonotoneAcrossResize(t *testing.T) {
	var rounds []int
	cfg := TrainConfig{
		Model: snapshotCfg(SchedFCFS).Model, Algo: AlgoSMA,
		GPUs: 1, BatchPerLearner: 8, Momentum: 0.9,
		MaxEpochs: 3, Seed: 42,
		TrainSamples: 128, TestSamples: 64,
		Scheduler:        SchedFCFS,
		AutoTuneLearners: true, MaxLearnersPerGPU: 2,
		PublishEvery: 1,
		OnSnapshot:   func(s Snapshot) { rounds = append(rounds, s.Round) },
	}
	Train(cfg)
	if len(rounds) == 0 {
		t.Fatal("no snapshots published")
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i] <= rounds[i-1] {
			t.Fatalf("snapshot rounds not strictly increasing across resize: %v", rounds)
		}
	}
}
