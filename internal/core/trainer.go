package core

import (
	"fmt"
	"runtime"
	"time"

	"crossbow/internal/autotune"
	"crossbow/internal/data"
	"crossbow/internal/engine"
	"crossbow/internal/memplan"
	"crossbow/internal/metrics"
	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// Algorithm selects the training/synchronisation algorithm.
type Algorithm string

// Available algorithms.
const (
	AlgoSMA        Algorithm = "sma"         // Algorithm 1 (flat)
	AlgoSMAHier    Algorithm = "sma-hier"    // §3.3 two-level SMA
	AlgoSMACluster Algorithm = "sma-cluster" // cluster plane: intra-/inter-server SMA
	AlgoSSGD       Algorithm = "ssgd"        // TensorFlow-style parallel S-SGD
	AlgoEASGD      Algorithm = "easgd"       // elastic averaging SGD
	AlgoASGD       Algorithm = "asgd"        // asynchronous SGD
)

// SchedulerMode selects the wall-clock task runtime's scheduling
// discipline (see internal/engine's Runtime).
type SchedulerMode string

// Scheduler modes.
const (
	// SchedLockstep joins all learners behind a barrier every iteration and
	// steps the optimiser single-threaded — the paper's baseline execution
	// model and this trainer's bit-deterministic oracle.
	SchedLockstep SchedulerMode = "lockstep"
	// SchedFCFS is Crossbow's barrier-free schedule: learners bind staged
	// batches first-come-first-served, run ahead of the average model by up
	// to τ iterations, and synchronise through index-ordered contribution
	// rounds. Flat SMA, single server.
	SchedFCFS SchedulerMode = "fcfs"
)

// Schedule maps an epoch (1-based) to the learning rate for that epoch.
// Nil means the base rate throughout.
type Schedule func(epoch int, base float32) float32

// DefaultLearnRate returns a stable per-model base learning rate for the
// scaled benchmarks. The paper likewise uses per-model rates (§5.1,
// Figure 9: γ=0.1 for the ResNets and VGG, γ=0.001 for LeNet).
func DefaultLearnRate(id nn.ModelID) float32 {
	switch id {
	case nn.LeNet:
		return 0.02
	case nn.VGG16:
		return 0.05
	default:
		return 0.1
	}
}

// StepDecay returns a schedule multiplying the rate by factor at each of
// the given epochs (the §5.1 recipes: ResNet-32 ×0.1 at epochs 80 and 120;
// VGG ×0.5 every 20 epochs is MultiStep with period).
func StepDecay(factor float32, at ...int) Schedule {
	return func(epoch int, base float32) float32 {
		lr := base
		for _, e := range at {
			if epoch >= e {
				lr *= factor
			}
		}
		return lr
	}
}

// PeriodicDecay halves-style decay: multiply by factor every period epochs.
func PeriodicDecay(factor float32, period int) Schedule {
	return func(epoch int, base float32) float32 {
		lr := base
		for e := period; e <= epoch; e += period {
			lr *= factor
		}
		return lr
	}
}

// TrainConfig configures a statistical-efficiency training run.
type TrainConfig struct {
	Model nn.ModelID
	Algo  Algorithm
	// Servers is the number of servers n for AlgoSMACluster; each server
	// holds GPUs×LearnersPerGPU learners. Zero or one keeps the paper's
	// single-server setting.
	Servers         int
	GPUs            int // g, per server
	LearnersPerGPU  int // m
	BatchPerLearner int // b
	LearnRate       float32
	Momentum        float32 // µ (SMA: on the average model; S-SGD: Eq. 3)
	// LocalMomentum is momentum inside SMA/EA-SGD learners. Algorithm 1
	// applies momentum to the central average model only, so the default
	// is 0; the released system also supports momentum in the solver.
	LocalMomentum float32
	Alpha         float32 // SMA/EA-SGD correction constant; 0 → 1/k
	Tau           int     // synchronisation period; 0 → 1
	// TauGlobal is the cluster plane's inter-server averaging period in
	// units of intra-server synchronisations (AlgoSMACluster only; 0 → 1).
	TauGlobal int
	// ExchangeRetries bounds back-to-back retries of a fault-aborted
	// global exchange (networked cluster plane only; 0 → 2, negative →
	// no retries). See ClusterSMAConfig.ExchangeRetries.
	ExchangeRetries int
	MaxEpochs       int
	TargetAcc       float64 // stop once the TTA window clears this; 0 → run MaxEpochs
	Seed            uint64
	DataNoise       float64 // 0 → benchmark default
	Schedule        Schedule
	// RestartOnLRChange applies the §3.2 SMA restart whenever the
	// schedule changes the learning rate.
	RestartOnLRChange bool
	// EpochSeconds, if set, supplies the duration of one epoch (e.g. from
	// the hardware simulator) so the result's time axis is hardware time;
	// otherwise epochs are timestamped by index.
	EpochSeconds float64
	// TrainSamples/TestSamples override the benchmark dataset sizes
	// (needed when the aggregate batch k×b approaches the default 2048-
	// sample training set). Zero keeps the defaults.
	TrainSamples int
	TestSamples  int
	// Scheduler selects the task runtime's scheduling mode: SchedLockstep
	// (default, bit-deterministic) or SchedFCFS (barrier-free; flat SMA on
	// a single server only).
	Scheduler SchedulerMode
	// KernelMode selects the GEMM kernel mode for every learner and the
	// evaluation network: tensor.Deterministic (the zero value — bit-
	// reproducible, the contract every determinism test pins) or
	// tensor.Fast (FMA micro-kernels and fused epilogues where the CPU
	// supports them; see DESIGN.md §14).
	KernelMode tensor.KernelMode
	// Prefetch is the staged-batch depth per learner in the input
	// pipeline's circular buffer; minimum 1 (0 → 2, double buffering as
	// in §4.5).
	Prefetch int
	// AutoTuneLearners runs Algorithm 2 online: the run starts with one
	// learner per GPU and the learner count adapts to measured wall-clock
	// throughput between epochs, resizing the replica pool with the §3.2
	// restart semantics. Requires AlgoSMA on a single server;
	// LearnersPerGPU is ignored.
	AutoTuneLearners bool
	// MaxLearnersPerGPU caps online tuning (0 → 4).
	MaxLearnersPerGPU int
	// MemoryBudget bounds the shared activation pool (§4.5) in bytes:
	// learners block for task buffers when granting another planned arena
	// would exceed it (one task is always admitted, so any budget makes
	// progress — surplus learners trade waiting for footprint). Zero
	// selects the default, (kernel worker budget + 1) planned arenas:
	// demand beyond available compute parallelism is waste, so the pool
	// never needs to grow past it.
	MemoryBudget int64
	// PublishEvery, with OnSnapshot set, publishes a versioned snapshot of
	// the central model every PublishEvery iterations, rounded up to the
	// enclosing synchronisation round — snapshots are cut only at round
	// boundaries, where the model is stable in both scheduling modes (see
	// Snapshot). Zero disables publishing.
	PublishEvery int
	// OnSnapshot receives each published snapshot. It runs inside the
	// runtime's Publish window — on the main goroutine under lockstep, on
	// the round-completing learner's goroutine under FCFS — so it must be
	// quick and must not call back into the trainer; hand the snapshot off
	// (e.g. to a serving engine's UpdateModel) and return.
	OnSnapshot func(Snapshot)
	// GlobalExchange, with AlgoSMACluster, switches the inter-server tier
	// from the in-process simulation to a real network: this process runs
	// ONE server's GPUs×LearnersPerGPU learners, and every τ_global local
	// synchronisations the server reference model is all-reduced across
	// the cluster through this exchanger (see DistClusterSMA). Servers
	// then describes the cluster size for reporting only — each process
	// contributes one server.
	GlobalExchange GlobalExchanger
	// OverlapGlobal launches each global exchange asynchronously at the
	// τ_global boundary and folds the completed sum in one iteration
	// later, hiding the network round-trip behind the next iteration's
	// forward/backward computation. The trajectory is bit-identical to
	// the synchronous exchange (the fold happens before any state the
	// exchange touches is read again; see DistClusterSMA.Drain). Requires
	// GlobalExchange; exchangers without an asynchronous path fall back
	// to the synchronous round.
	OverlapGlobal bool
	// InitModel, if non-nil, overrides the seed-derived initial model w0
	// (it must match the model's parameter count). A node rejoining a
	// cluster warm-starts from a peer's snapshot this way.
	InitModel []float32
	// ShuffleSeed, if non-zero, overrides the input pipeline's shuffle
	// seed (default Seed+21). Distributed nodes derive it from their rank
	// so every server trains on a differently-ordered batch stream while
	// sharing the same model seed.
	ShuffleSeed uint64
}

// K returns this process's learner count: n×g×m with the simulated
// cluster plane (all servers live in one process), g×m with a real
// GlobalExchange (each process runs exactly one server).
func (c TrainConfig) K() int {
	if c.GlobalExchange != nil {
		return c.GPUs * c.LearnersPerGPU
	}
	return max(1, c.Servers) * c.GPUs * c.LearnersPerGPU
}

func (c *TrainConfig) fillDefaults() {
	if c.Servers == 0 {
		c.Servers = 1
	}
	if c.GPUs == 0 {
		c.GPUs = 1
	}
	if c.LearnersPerGPU == 0 {
		c.LearnersPerGPU = 1
	}
	if c.BatchPerLearner == 0 {
		c.BatchPerLearner = 16
	}
	if c.LearnRate == 0 {
		c.LearnRate = DefaultLearnRate(c.Model)
	}
	if c.Tau == 0 {
		c.Tau = 1
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 30
	}
	if c.Algo == "" {
		c.Algo = AlgoSMA
	}
	if c.EpochSeconds == 0 {
		c.EpochSeconds = 1
	}
	if c.Scheduler == "" {
		c.Scheduler = SchedLockstep
	}
	if c.Prefetch < 1 {
		c.Prefetch = 2
	}
	if c.MaxLearnersPerGPU < 1 {
		c.MaxLearnersPerGPU = 4
	}
}

// validate rejects scheduler/algorithm combinations the runtime cannot
// honour. Called after fillDefaults.
func (c *TrainConfig) validate() {
	if c.Scheduler != SchedLockstep && c.Scheduler != SchedFCFS {
		panic(fmt.Sprintf("core: unknown scheduler %q", c.Scheduler))
	}
	if c.Scheduler == SchedFCFS {
		if c.Algo != AlgoSMA {
			panic(fmt.Sprintf("core: the fcfs scheduler requires AlgoSMA (got %q)", c.Algo))
		}
		if c.Servers > 1 {
			panic("core: the fcfs scheduler is single-server (the cluster plane is simulated)")
		}
	}
	if c.AutoTuneLearners {
		if c.Algo != AlgoSMA {
			panic(fmt.Sprintf("core: online learner tuning requires AlgoSMA (got %q)", c.Algo))
		}
		if c.Servers > 1 {
			panic("core: online learner tuning is single-server")
		}
	}
	if c.GlobalExchange != nil {
		if c.Algo != AlgoSMACluster {
			panic(fmt.Sprintf("core: a GlobalExchange requires AlgoSMACluster (got %q)", c.Algo))
		}
		if c.Scheduler != SchedLockstep {
			panic("core: the network cluster plane requires the lockstep scheduler")
		}
		if c.AutoTuneLearners {
			panic("core: online learner tuning cannot resize a networked cluster node")
		}
	}
	if c.InitModel != nil && c.GlobalExchange == nil {
		panic("core: InitModel is only meaningful with a GlobalExchange (snapshot-seeded rejoin)")
	}
	if c.OverlapGlobal && c.GlobalExchange == nil {
		panic("core: OverlapGlobal requires a GlobalExchange (the simulated cluster plane has nothing to overlap)")
	}
}

// Result is the outcome of a training run.
type Result struct {
	Series         []metrics.EpochPoint
	K              int
	EpochsToTarget int // -1 if the target was not reached
	FinalAccuracy  float64
	Model          []float32 // the trained (central/global) model
	// Sched is the scheduling mode the run executed with.
	Sched SchedulerMode
	// Wall records each epoch's measured wall-clock duration and training
	// throughput. The Series time axis stays simulator-driven
	// (EpochSeconds) so statistical results remain comparable across
	// schedulers; Wall is the real hardware-efficiency measurement.
	Wall []metrics.WallPoint
	// RuntimeStats reports the task runtime's scheduling statistics for
	// the final learner-count phase.
	RuntimeStats engine.RuntimeStats
	// SeqLog is the assignment log of the final phase: per learner, the
	// staged-batch sequence numbers it consumed, in consumption order.
	// Under FCFS this is the run's only timing-dependent artefact — the
	// trajectory is bit-reproducible given the log (see ReplayFCFS).
	SeqLog [][]int
	// TuneHistory lists the online Algorithm 2 decisions when
	// AutoTuneLearners was set. Decision.M is learners per GPU, the same
	// unit the offline tuner reports.
	TuneHistory []autotune.Decision
	// Mem reports the live memory plane: the planned per-task arena, the
	// shared pool's behaviour, and GC/allocation deltas over the epoch
	// loop.
	Mem metrics.MemoryStats
}

// stepper abstracts the per-iteration optimiser update.
type stepper interface {
	Step(ws, gs [][]float32)
}

// centralModel returns the model a given optimiser trains.
func centralModel(s stepper) []float32 {
	switch o := s.(type) {
	case *SMA:
		return o.Average()
	case *HierarchicalSMA:
		return o.Average()
	case *ClusterSMA:
		return o.Average()
	case *DistClusterSMA:
		return o.Average()
	case *EASGD:
		return o.Average()
	case *SSGD:
		return o.Model()
	case *ASGD:
		return o.Model()
	}
	panic("core: unknown optimiser")
}

// trainEnv carries one training run's long-lived pieces: datasets, the
// replica pool (networks, weights, gradients), the evaluation network and
// the input pipeline. The optimiser and task runtime are phase-scoped —
// online tuning rebuilds them when the learner count changes.
type trainEnv struct {
	cfg         *TrainConfig
	train, test *data.Dataset
	masterRNG   *tensor.RNG
	nets        []*nn.Network
	ws, gs      [][]float32
	w0          []float32
	pipe        *data.Pipeline
	evalNet     *nn.Network
	evalGrad    []float32
	evalBatch   int
	es          *evalScratch

	// The live memory plane (§4.5): all learners draw their task arenas
	// from one shared pool, keyed by the networks' identical plan layout;
	// taskBufs[j] is learner j's checked-out arena while its task runs.
	memPool    *memplan.OnlinePlanner
	taskBufs   []*memplan.Buffer
	planKey    string
	arenaElems int

	// pub cuts versioned model snapshots from the runtime's Publish
	// window (nil when TrainConfig.PublishEvery is unset).
	pub *snapshotPublisher
}

// newTrainEnv builds a run's long-lived pieces for k learners: datasets,
// the replica pool initialised from the seed-derived w0, and the
// evaluation network. Both Train and ReplayFCFS construct their runs
// through this one function, so the RNG streams (masterRNG seed+7, w0
// seed+13, eval seed+99) and build order can never diverge between a live
// run and its replay.
func newTrainEnv(cfg *TrainConfig, k int) *trainEnv {
	dataCfg := data.ForModel(cfg.Model, cfg.Seed, cfg.DataNoise)
	if cfg.TrainSamples > 0 {
		dataCfg.Train = cfg.TrainSamples
	}
	if cfg.TestSamples > 0 {
		dataCfg.Test = cfg.TestSamples
	}
	e := &trainEnv{cfg: cfg, masterRNG: tensor.NewRNG(cfg.Seed + 7)}
	e.train, e.test = data.Synthesize(dataCfg)

	// Learner networks and replicas (the replica pool).
	for j := 0; j < k; j++ {
		net := nn.BuildScaled(cfg.Model, cfg.BatchPerLearner, e.masterRNG.Split())
		net.SetKernelMode(cfg.KernelMode)
		e.nets = append(e.nets, net)
	}
	e.w0 = e.nets[0].Init(tensor.NewRNG(cfg.Seed + 13))
	if cfg.InitModel != nil {
		if len(cfg.InitModel) != len(e.w0) {
			panic(fmt.Sprintf("core: InitModel has %d parameters, model needs %d", len(cfg.InitModel), len(e.w0)))
		}
		copy(e.w0, cfg.InitModel)
	}
	for j := 0; j < k; j++ {
		e.ws = append(e.ws, append([]float32(nil), e.w0...))
		e.gs = append(e.gs, make([]float32, len(e.w0)))
		e.nets[j].Bind(e.ws[j], e.gs[j])
	}

	// Evaluation network over the central model. It evaluates at quiescence
	// with a different batch size (different plan key), so it keeps a
	// private arena instead of cycling through the task pool.
	e.evalBatch = 128
	if e.test.Len() < e.evalBatch {
		e.evalBatch = e.test.Len()
	}
	e.evalNet = nn.BuildScaled(cfg.Model, e.evalBatch, tensor.NewRNG(cfg.Seed+99))
	e.evalNet.SetKernelMode(cfg.KernelMode)
	if cfg.KernelMode == tensor.Fast {
		// The evaluation net never trains, so in Fast mode it can run the
		// fused conv→BN→ReLU epilogues (bit-identical to the unfused
		// forward, smaller arena, fewer memory passes). Deterministic mode
		// keeps the exact unfused walk the reproducibility suite pins.
		e.evalNet.FuseInference()
		e.evalNet.AttachInferenceArena(tensor.NewArena(e.evalNet.InferPlan().ArenaElems))
	} else {
		e.evalNet.AttachArena(tensor.NewArena(e.evalNet.MemPlan().ArenaElems))
	}
	e.evalGrad = make([]float32, len(e.w0))
	e.es = newEvalScratch(e.evalBatch, e.test.Shape)

	// Shared task-arena pool: every learner network has the identical
	// layer stack and batch size, hence the identical plan key, so their
	// task arenas are interchangeable (§4.5 sharing). Plans are computed
	// up front for the whole pool — planning is setup work, and keeping it
	// out of the epoch loop keeps the steady-state allocation count clean.
	for _, net := range e.nets {
		net.MemPlan()
	}
	plan := e.nets[0].MemPlan()
	e.planKey = plan.Key()
	e.arenaElems = plan.ArenaElems
	e.memPool = memplan.NewOnlinePlanner()
	e.memPool.SetBudget(e.poolBudget())
	e.taskBufs = make([]*memplan.Buffer, k)
	return e
}

// poolBudget resolves the activation-pool budget: the configured
// MemoryBudget, or (worker budget + 1) planned arenas by default.
func (e *trainEnv) poolBudget() int64 {
	if e.cfg.MemoryBudget > 0 {
		return e.cfg.MemoryBudget
	}
	return int64(tensor.WorkerBudget()+1) * int64(e.arenaElems) * 4
}

// growLearners extends the replica pool to k learners, initialising new
// replicas from model (§3.2 restart semantics: new learners start at the
// central average model). Grown learners share the existing task-arena
// pool — resizing never replicates activation memory up front.
func (e *trainEnv) growLearners(k int, model []float32) {
	for j := len(e.nets); j < k; j++ {
		net := nn.BuildScaled(e.cfg.Model, e.cfg.BatchPerLearner, e.masterRNG.Split())
		net.SetKernelMode(e.cfg.KernelMode)
		e.nets = append(e.nets, net)
		e.ws = append(e.ws, append([]float32(nil), model...))
		e.gs = append(e.gs, make([]float32, len(model)))
		e.nets[j].Bind(e.ws[j], e.gs[j])
		e.nets[j].MemPlan() // plan at resize time, not on the first task
	}
	for len(e.taskBufs) < k {
		e.taskBufs = append(e.taskBufs, nil)
	}
}

// iterPerEpoch returns the joined iterations per epoch at k learners (each
// iteration consumes k batches).
func (e *trainEnv) iterPerEpoch(k int) int {
	it := (e.train.Len() / e.cfg.BatchPerLearner) / k
	if it == 0 {
		it = 1
	}
	return it
}

// buildOpt constructs the optimiser for k learners from initial model w0.
func buildOpt(cfg *TrainConfig, w0 []float32, k int, stateRanges [][2]int) stepper {
	smaCfg := SMAConfig{
		LearnRate: cfg.LearnRate, Momentum: cfg.Momentum,
		LocalMomentum: cfg.LocalMomentum,
		Alpha:         cfg.Alpha, Tau: cfg.Tau,
		StateRanges: stateRanges,
	}
	switch cfg.Algo {
	case AlgoSMA:
		return NewSMA(smaCfg, w0, k)
	case AlgoSMAHier:
		return NewHierarchicalSMA(smaCfg, w0, GroupsFor(cfg.GPUs, cfg.LearnersPerGPU))
	case AlgoSMACluster:
		if cfg.GlobalExchange != nil {
			// Real cluster plane: this process is one server; the global
			// tier runs over the network.
			return NewDistClusterSMA(ClusterSMAConfig{
				SMAConfig: smaCfg, TauGlobal: cfg.TauGlobal,
				ExchangeRetries: cfg.ExchangeRetries,
				OverlapGlobal:   cfg.OverlapGlobal,
			}, w0, k, cfg.GlobalExchange)
		}
		// Contiguous learner partition: server s owns g×m learners; within
		// a server the intra-server tier is flat SMA.
		return NewClusterSMA(ClusterSMAConfig{
			SMAConfig: smaCfg, TauGlobal: cfg.TauGlobal,
		}, w0, GroupsFor(cfg.Servers, cfg.GPUs*cfg.LearnersPerGPU))
	case AlgoSSGD:
		s := NewSSGD(cfg.LearnRate, cfg.Momentum, w0)
		s.StateRanges = stateRanges
		return s
	case AlgoEASGD:
		ea := NewEASGD(cfg.LearnRate, cfg.Alpha, cfg.Tau, k, w0)
		ea.LocalMomentum = cfg.LocalMomentum
		return ea
	case AlgoASGD:
		a := NewASGD(cfg.LearnRate, w0)
		a.StateRanges = stateRanges
		return a
	}
	panic(fmt.Sprintf("core: unknown algorithm %q", cfg.Algo))
}

// buildRuntime wires the task runtime for one learner-count phase.
// firstSeq is the pipeline position the phase starts at (non-zero after an
// online-autotuning resize). The runtime owns scheduling only; all
// optimiser math stays here, expressed as the closures the two modes
// need.
func (e *trainEnv) buildRuntime(opt stepper, k, firstSeq int, held map[int]*data.Slot) *engine.Runtime {
	rc := engine.RuntimeConfig{
		Learners: k,
		Tau:      e.cfg.Tau,
		Pipeline: e.pipe,
		FirstSeq: firstSeq,
		Held:     held,
		Task: func(j int, s *data.Slot) float64 {
			tensor.ZeroSlice(e.gs[j])
			return e.nets[j].LossAndGrad(s.X, s.Labels)
		},
		// Each task executes against a planned arena checked out of the
		// shared pool for exactly the task's duration (§4.5): learners
		// waiting at barriers, round gates or the budget hold no task
		// memory, so the pool's footprint tracks concurrency, not k.
		AcquireTask: func(j int) {
			b := e.memPool.Acquire(e.planKey, int64(e.arenaElems)*4, 1)
			e.taskBufs[j] = b
			e.nets[j].AttachArena(tensor.ArenaOf(b.Data))
		},
		ReleaseTask: func(j int) {
			e.memPool.Release(e.taskBufs[j])
			e.taskBufs[j] = nil
		},
		Publish: e.pub.hook(opt),
	}
	switch e.cfg.Scheduler {
	case SchedFCFS:
		sma := opt.(*SMA) // validate() guarantees AlgoSMA
		corr := make([][]float32, k)
		for j := range corr {
			corr[j] = make([]float32, len(e.w0))
		}
		rc.Mode = engine.ModeFCFS
		rc.LocalStep = func(j int) { sma.LocalStep(j, e.ws[j], e.gs[j]) }
		rc.Contribute = func(j int) { sma.ContributeStep(j, e.ws[j], e.gs[j], corr[j]) }
		rc.Apply = func() { sma.ApplyContributions(corr) }
	default:
		ws, gs := e.ws[:k], e.gs[:k]
		rc.Mode = engine.ModeLockstep
		rc.Step = func() {
			// The step runs with every learner parked at the barrier, so
			// it may use the whole kernel budget, not a 1/k share.
			prev := tensor.SetActiveLearners(1)
			opt.Step(ws, gs)
			tensor.SetActiveLearners(prev)
		}
	}
	return engine.NewRuntime(rc)
}

// Train runs a full training experiment on the scaled benchmark model and
// synthetic dataset, returning the per-epoch accuracy series. It is a thin
// driver over the engine's task runtime: the replica pool executes real
// forward/backward passes over batches staged by the data pipeline's
// circular buffer, under the configured scheduling mode. With the default
// lockstep scheduler the run is deterministic given the config, bit for
// bit at any kernel worker count.
func Train(cfg TrainConfig) *Result {
	cfg.fillDefaults()
	cfg.validate()

	k := cfg.K()
	maxK := k
	if cfg.AutoTuneLearners {
		k = cfg.GPUs // Alg 2 line 1: start with one learner per GPU
		maxK = cfg.GPUs * cfg.MaxLearnersPerGPU
	}

	e := newTrainEnv(&cfg, k)
	e.pub = newSnapshotPublisher(&cfg)
	test := e.test
	opt := buildOpt(&cfg, e.w0, k, e.nets[0].StateRanges())

	// Input pipeline: pre-processors stage shuffled batches into the
	// circular buffer; sized for the largest pool the run may grow to.
	shuffleSeed := cfg.Seed + 21
	if cfg.ShuffleSeed != 0 {
		shuffleSeed = cfg.ShuffleSeed
	}
	e.pipe = data.NewPipeline(e.train, data.PipelineConfig{
		Batch:   cfg.BatchPerLearner,
		Slots:   maxK * cfg.Prefetch,
		Workers: min(4, max(1, maxK/2)),
		Seed:    shuffleSeed,
	})
	defer e.pipe.Close()

	// Learner goroutines share the kernel-thread budget: k learners ×
	// ParallelFor workers never oversubscribe it.
	defer tensor.SetActiveLearners(tensor.SetActiveLearners(k))

	rt := e.buildRuntime(opt, k, 0, nil)
	defer func() { rt.Close() }()

	// The online tuner works in Algorithm 2's unit — learners per GPU —
	// so its Decision history reads like the offline tuner's; the driver
	// scales by GPUs to the pool size.
	var tuner *autotune.Online
	if cfg.AutoTuneLearners {
		tuner = autotune.NewOnline(autotune.OnlineConfig{
			Start: 1, Max: cfg.MaxLearnersPerGPU,
		})
	}

	res := &Result{K: k, EpochsToTarget: -1, Sched: cfg.Scheduler}
	lr := cfg.LearnRate

	// Steady-state memory accounting: deltas across the epoch loop, so
	// setup (datasets, replicas, pipeline) is excluded.
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	totalIters := 0

	for epoch := 1; epoch <= cfg.MaxEpochs; epoch++ {
		if cfg.Schedule != nil {
			nlr := cfg.Schedule(epoch, cfg.LearnRate)
			if nlr != lr {
				lr = nlr
				setLearnRate(opt, lr)
				if cfg.RestartOnLRChange {
					restart(opt, e.ws[:k])
				}
			}
		}

		iters := e.iterPerEpoch(k)
		totalIters += iters
		e.pub.setEpoch(epoch)
		start := time.Now()
		rt.RunEpoch(iters)
		wall := time.Since(start).Seconds()
		lossSum, lossCount := rt.TakeEpochLoss()
		images := float64(iters * k * cfg.BatchPerLearner)
		wp := metrics.WallPoint{Epoch: epoch, Sec: wall}
		if wall > 0 {
			wp.ImagesPerSec = images / wall
		}
		res.Wall = append(res.Wall, wp)

		// Evaluation runs at quiescence (the epoch join), so it too gets
		// the whole kernel budget. An overlapped global exchange launched
		// by the epoch's last iteration is folded first, so the model read
		// here matches the synchronous path's byte for byte.
		drainExchange(opt)
		prevL := tensor.SetActiveLearners(1)
		acc := evaluate(e.evalNet, centralModel(opt), e.evalGrad, test, e.evalBatch, e.es)
		tensor.SetActiveLearners(prevL)
		res.Series = append(res.Series, metrics.EpochPoint{
			Epoch:   epoch,
			TimeSec: float64(epoch) * cfg.EpochSeconds,
			TestAcc: acc,
			Loss:    lossSum / float64(max(1, lossCount)),
		})
		if cfg.TargetAcc > 0 {
			if ep, ok := metrics.EpochsToAccuracy(res.Series, cfg.TargetAcc); ok {
				res.EpochsToTarget = ep
				break
			}
		}

		// Online Algorithm 2: adapt the learner count to the measured
		// wall-clock throughput, resizing the replica pool between epochs.
		if tuner != nil && epoch < cfg.MaxEpochs {
			if nextK := cfg.GPUs * tuner.Observe(wp.ImagesPerSec); nextK != k {
				firstSeq, held := rt.Handoff()  // pipeline position carries over
				e.pub.rebase(rt.Stats().Rounds) // keep snapshot versions monotone
				rt.Close()
				z := append([]float32(nil), centralModel(opt)...)
				e.growLearners(nextK, z)
				for j := 0; j < nextK; j++ { // §3.2 restart: replicas ← z
					tensor.Copy(e.ws[j], z)
				}
				k = nextK
				opt = buildOpt(&cfg, z, k, e.nets[0].StateRanges())
				if lr != cfg.LearnRate {
					// buildOpt starts from the base rate; a schedule may
					// already have moved it.
					setLearnRate(opt, lr)
				}
				tensor.SetActiveLearners(k)
				rt = e.buildRuntime(opt, k, firstSeq, held)
			}
		}
	}

	if res.EpochsToTarget < 0 && cfg.TargetAcc > 0 {
		if ep, ok := metrics.EpochsToAccuracy(res.Series, cfg.TargetAcc); ok {
			res.EpochsToTarget = ep
		}
	}
	res.K = k
	res.FinalAccuracy = metrics.BestAccuracy(res.Series)
	drainExchange(opt)
	res.Model = append([]float32(nil), centralModel(opt)...)
	res.RuntimeStats = rt.Stats()
	res.SeqLog = rt.SeqLog()
	if tuner != nil {
		res.TuneHistory = tuner.History()
	}
	res.Mem = e.memoryStats(k, totalIters, &memBefore)
	return res
}

// memoryStats assembles the run's memory-plane report from the network
// plan, the shared pool's accounting and MemStats deltas over the epoch
// loop.
func (e *trainEnv) memoryStats(k, iters int, before *runtime.MemStats) metrics.MemoryStats {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	plan := e.nets[0].MemPlan()
	ps := e.memPool.PoolStats()
	m := metrics.MemoryStats{
		ArenaBytesPerTask:  plan.ArenaBytes(),
		NaiveBytesPerTask:  plan.NaiveBytes(),
		Learners:           k,
		PoolAllocatedBytes: ps.AllocatedBytes,
		PoolPeakBytes:      ps.PeakBytes,
		PoolAllocs:         ps.Allocs,
		PoolReuses:         ps.Reuses,
		PoolBudgetWaits:    ps.BudgetWaits,
		GCPauseNs:          after.PauseTotalNs - before.PauseTotalNs,
		NumGC:              after.NumGC - before.NumGC,
		HeapAllocBytes:     after.HeapAlloc,
	}
	if iters > 0 {
		m.AllocsPerIter = float64(after.Mallocs-before.Mallocs) / float64(iters)
	}
	return m
}

func setLearnRate(s stepper, lr float32) {
	switch o := s.(type) {
	case *SMA:
		o.SetLearnRate(lr)
	case *HierarchicalSMA:
		o.SetLearnRate(lr)
	case *ClusterSMA:
		o.SetLearnRate(lr)
	case *DistClusterSMA:
		o.SetLearnRate(lr)
	case *EASGD:
		o.SetLearnRate(lr)
	case *SSGD:
		o.LearnRate = lr
	case *ASGD:
		o.LearnRate = lr
	}
}

func restart(s stepper, ws [][]float32) {
	switch o := s.(type) {
	case *SMA:
		o.Restart(ws)
	case *HierarchicalSMA:
		o.Restart(ws)
	case *ClusterSMA:
		o.Restart(ws)
	case *DistClusterSMA:
		o.Restart(ws)
	}
}

// drainExchange folds any in-flight overlapped global exchange before the
// central model is read (evaluation, snapshots, the final result). A no-op
// for every optimiser but DistClusterSMA with OverlapGlobal.
func drainExchange(s stepper) {
	if d, ok := s.(*DistClusterSMA); ok {
		d.Drain()
	}
}

// evalScratch holds the evaluation input buffers, allocated once per run
// instead of once per epoch.
type evalScratch struct {
	x      *tensor.Tensor
	labels []int
	idx    []int
}

func newEvalScratch(batch int, shape []int) *evalScratch {
	return &evalScratch{
		x:      tensor.New(append([]int{batch}, shape...)...),
		labels: make([]int, batch),
		idx:    make([]int, batch),
	}
}

// evaluate measures test accuracy of model w using the given evaluation
// network (whose gradient buffer is scratch). Trailing samples that do not
// fill a batch are dropped, matching fixed-shape learner evaluation.
func evaluate(net *nn.Network, w, scratch []float32, test *data.Dataset, batch int, es *evalScratch) float64 {
	net.Bind(w, scratch)
	correct, total := 0, 0
	for start := 0; start+batch <= test.Len(); start += batch {
		for i := 0; i < batch; i++ {
			es.idx[i] = start + i
		}
		test.Gather(es.idx, es.x, es.labels)
		correct += net.Evaluate(es.x, es.labels)
		total += batch
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
