package core

import (
	"fmt"
	"sync"

	"crossbow/internal/data"
	"crossbow/internal/metrics"
	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// Algorithm selects the training/synchronisation algorithm.
type Algorithm string

// Available algorithms.
const (
	AlgoSMA        Algorithm = "sma"         // Algorithm 1 (flat)
	AlgoSMAHier    Algorithm = "sma-hier"    // §3.3 two-level SMA
	AlgoSMACluster Algorithm = "sma-cluster" // cluster plane: intra-/inter-server SMA
	AlgoSSGD       Algorithm = "ssgd"        // TensorFlow-style parallel S-SGD
	AlgoEASGD      Algorithm = "easgd"       // elastic averaging SGD
	AlgoASGD       Algorithm = "asgd"        // asynchronous SGD
)

// Schedule maps an epoch (1-based) to the learning rate for that epoch.
// Nil means the base rate throughout.
type Schedule func(epoch int, base float32) float32

// DefaultLearnRate returns a stable per-model base learning rate for the
// scaled benchmarks. The paper likewise uses per-model rates (§5.1,
// Figure 9: γ=0.1 for the ResNets and VGG, γ=0.001 for LeNet).
func DefaultLearnRate(id nn.ModelID) float32 {
	switch id {
	case nn.LeNet:
		return 0.02
	case nn.VGG16:
		return 0.05
	default:
		return 0.1
	}
}

// StepDecay returns a schedule multiplying the rate by factor at each of
// the given epochs (the §5.1 recipes: ResNet-32 ×0.1 at epochs 80 and 120;
// VGG ×0.5 every 20 epochs is MultiStep with period).
func StepDecay(factor float32, at ...int) Schedule {
	return func(epoch int, base float32) float32 {
		lr := base
		for _, e := range at {
			if epoch >= e {
				lr *= factor
			}
		}
		return lr
	}
}

// PeriodicDecay halves-style decay: multiply by factor every period epochs.
func PeriodicDecay(factor float32, period int) Schedule {
	return func(epoch int, base float32) float32 {
		lr := base
		for e := period; e <= epoch; e += period {
			lr *= factor
		}
		return lr
	}
}

// TrainConfig configures a statistical-efficiency training run.
type TrainConfig struct {
	Model nn.ModelID
	Algo  Algorithm
	// Servers is the number of servers n for AlgoSMACluster; each server
	// holds GPUs×LearnersPerGPU learners. Zero or one keeps the paper's
	// single-server setting.
	Servers         int
	GPUs            int // g, per server
	LearnersPerGPU  int // m
	BatchPerLearner int // b
	LearnRate       float32
	Momentum        float32 // µ (SMA: on the average model; S-SGD: Eq. 3)
	// LocalMomentum is momentum inside SMA/EA-SGD learners. Algorithm 1
	// applies momentum to the central average model only, so the default
	// is 0; the released system also supports momentum in the solver.
	LocalMomentum float32
	Alpha         float32 // SMA/EA-SGD correction constant; 0 → 1/k
	Tau           int     // synchronisation period; 0 → 1
	// TauGlobal is the cluster plane's inter-server averaging period in
	// units of intra-server synchronisations (AlgoSMACluster only; 0 → 1).
	TauGlobal int
	MaxEpochs int
	TargetAcc float64 // stop once the TTA window clears this; 0 → run MaxEpochs
	Seed      uint64
	DataNoise float64 // 0 → benchmark default
	Schedule  Schedule
	// RestartOnLRChange applies the §3.2 SMA restart whenever the
	// schedule changes the learning rate.
	RestartOnLRChange bool
	// EpochSeconds, if set, supplies the duration of one epoch (e.g. from
	// the hardware simulator) so the result's time axis is hardware time;
	// otherwise epochs are timestamped by index.
	EpochSeconds float64
	// TrainSamples/TestSamples override the benchmark dataset sizes
	// (needed when the aggregate batch k×b approaches the default 2048-
	// sample training set). Zero keeps the defaults.
	TrainSamples int
	TestSamples  int
}

// K returns the total learner count n×g×m.
func (c TrainConfig) K() int { return max(1, c.Servers) * c.GPUs * c.LearnersPerGPU }

func (c *TrainConfig) fillDefaults() {
	if c.Servers == 0 {
		c.Servers = 1
	}
	if c.GPUs == 0 {
		c.GPUs = 1
	}
	if c.LearnersPerGPU == 0 {
		c.LearnersPerGPU = 1
	}
	if c.BatchPerLearner == 0 {
		c.BatchPerLearner = 16
	}
	if c.LearnRate == 0 {
		c.LearnRate = DefaultLearnRate(c.Model)
	}
	if c.Tau == 0 {
		c.Tau = 1
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 30
	}
	if c.Algo == "" {
		c.Algo = AlgoSMA
	}
	if c.EpochSeconds == 0 {
		c.EpochSeconds = 1
	}
}

// Result is the outcome of a training run.
type Result struct {
	Series         []metrics.EpochPoint
	K              int
	EpochsToTarget int // -1 if the target was not reached
	FinalAccuracy  float64
	Model          []float32 // the trained (central/global) model
}

// stepper abstracts the per-iteration optimiser update.
type stepper interface {
	Step(ws, gs [][]float32)
}

// centralModel returns the model a given optimiser trains.
func centralModel(s stepper) []float32 {
	switch o := s.(type) {
	case *SMA:
		return o.Average()
	case *HierarchicalSMA:
		return o.Average()
	case *ClusterSMA:
		return o.Average()
	case *EASGD:
		return o.Average()
	case *SSGD:
		return o.Model()
	case *ASGD:
		return o.Model()
	}
	panic("core: unknown optimiser")
}

// Train runs a full training experiment on the scaled benchmark model and
// synthetic dataset, returning the per-epoch accuracy series. The run is
// deterministic given the config.
func Train(cfg TrainConfig) *Result {
	cfg.fillDefaults()
	k := cfg.K()

	dataCfg := data.ForModel(cfg.Model, cfg.Seed, cfg.DataNoise)
	if cfg.TrainSamples > 0 {
		dataCfg.Train = cfg.TrainSamples
	}
	if cfg.TestSamples > 0 {
		dataCfg.Test = cfg.TestSamples
	}
	train, test := data.Synthesize(dataCfg)

	// Learner networks and replicas.
	masterRNG := tensor.NewRNG(cfg.Seed + 7)
	nets := make([]*nn.Network, k)
	ws := make([][]float32, k)
	gs := make([][]float32, k)
	for j := 0; j < k; j++ {
		nets[j] = nn.BuildScaled(cfg.Model, cfg.BatchPerLearner, masterRNG.Split())
	}
	w0 := nets[0].Init(tensor.NewRNG(cfg.Seed + 13))
	for j := 0; j < k; j++ {
		ws[j] = append([]float32(nil), w0...)
		gs[j] = make([]float32, len(w0))
		nets[j].Bind(ws[j], gs[j])
	}

	var opt stepper
	smaCfg := SMAConfig{
		LearnRate: cfg.LearnRate, Momentum: cfg.Momentum,
		LocalMomentum: cfg.LocalMomentum,
		Alpha:         cfg.Alpha, Tau: cfg.Tau,
		StateRanges: nets[0].StateRanges(),
	}
	switch cfg.Algo {
	case AlgoSMA:
		opt = NewSMA(smaCfg, w0, k)
	case AlgoSMAHier:
		opt = NewHierarchicalSMA(smaCfg, w0, GroupsFor(cfg.GPUs, cfg.LearnersPerGPU))
	case AlgoSMACluster:
		// Contiguous learner partition: server s owns g×m learners; within
		// a server the intra-server tier is flat SMA.
		opt = NewClusterSMA(ClusterSMAConfig{
			SMAConfig: smaCfg, TauGlobal: cfg.TauGlobal,
		}, w0, GroupsFor(cfg.Servers, cfg.GPUs*cfg.LearnersPerGPU))
	case AlgoSSGD:
		s := NewSSGD(cfg.LearnRate, cfg.Momentum, w0)
		s.StateRanges = nets[0].StateRanges()
		opt = s
	case AlgoEASGD:
		ea := NewEASGD(cfg.LearnRate, cfg.Alpha, cfg.Tau, k, w0)
		ea.LocalMomentum = cfg.LocalMomentum
		opt = ea
	case AlgoASGD:
		a := NewASGD(cfg.LearnRate, w0)
		a.StateRanges = nets[0].StateRanges()
		opt = a
	default:
		panic(fmt.Sprintf("core: unknown algorithm %q", cfg.Algo))
	}

	// Evaluation network over the central model.
	evalBatch := 128
	if test.Len() < evalBatch {
		evalBatch = test.Len()
	}
	evalNet := nn.BuildScaled(cfg.Model, evalBatch, tensor.NewRNG(cfg.Seed+99))
	evalGrad := make([]float32, len(w0))
	evalScratch := newEvalScratch(evalBatch, test.Shape)

	batcher := data.NewBatcher(train.Len(), cfg.BatchPerLearner, cfg.Seed+21)
	inputs := make([]*tensor.Tensor, k)
	labels := make([][]int, k)
	batchIdx := make([][]int, k)
	for j := 0; j < k; j++ {
		inputs[j] = tensor.New(append([]int{cfg.BatchPerLearner}, train.Shape...)...)
		labels[j] = make([]int, cfg.BatchPerLearner)
		batchIdx[j] = make([]int, cfg.BatchPerLearner)
	}

	res := &Result{K: k, EpochsToTarget: -1}
	iterPerEpoch := batcher.BatchesPerEpoch() / k
	if iterPerEpoch == 0 {
		iterPerEpoch = 1
	}
	lr := cfg.LearnRate
	var lossSum float64
	var lossCount int
	losses := make([]float64, k) // per-learner losses, reused every iteration

	for epoch := 1; epoch <= cfg.MaxEpochs; epoch++ {
		if cfg.Schedule != nil {
			nlr := cfg.Schedule(epoch, cfg.LearnRate)
			if nlr != lr {
				lr = nlr
				setLearnRate(opt, lr)
				if cfg.RestartOnLRChange {
					restart(opt, ws)
				}
			}
		}
		lossSum, lossCount = 0, 0
		for it := 0; it < iterPerEpoch; it++ {
			// Assign batches deterministically before the parallel phase.
			for j := 0; j < k; j++ {
				copy(batchIdx[j], batcher.Next())
			}
			var wg sync.WaitGroup
			for j := 0; j < k; j++ {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					train.Gather(batchIdx[j], inputs[j], labels[j])
					tensor.ZeroSlice(gs[j])
					losses[j] = nets[j].LossAndGrad(inputs[j], labels[j])
				}(j)
			}
			wg.Wait()
			for _, l := range losses {
				lossSum += l
			}
			lossCount += k
			opt.Step(ws, gs)
		}

		acc := evaluate(evalNet, centralModel(opt), evalGrad, test, evalBatch, evalScratch)
		res.Series = append(res.Series, metrics.EpochPoint{
			Epoch:   epoch,
			TimeSec: float64(epoch) * cfg.EpochSeconds,
			TestAcc: acc,
			Loss:    lossSum / float64(max(1, lossCount)),
		})
		if cfg.TargetAcc > 0 {
			if e, ok := metrics.EpochsToAccuracy(res.Series, cfg.TargetAcc); ok {
				res.EpochsToTarget = e
				break
			}
		}
	}
	if res.EpochsToTarget < 0 && cfg.TargetAcc > 0 {
		if e, ok := metrics.EpochsToAccuracy(res.Series, cfg.TargetAcc); ok {
			res.EpochsToTarget = e
		}
	}
	res.FinalAccuracy = metrics.BestAccuracy(res.Series)
	res.Model = append([]float32(nil), centralModel(opt)...)
	return res
}

func setLearnRate(s stepper, lr float32) {
	switch o := s.(type) {
	case *SMA:
		o.SetLearnRate(lr)
	case *HierarchicalSMA:
		o.SetLearnRate(lr)
	case *ClusterSMA:
		o.SetLearnRate(lr)
	case *EASGD:
		o.SetLearnRate(lr)
	case *SSGD:
		o.LearnRate = lr
	case *ASGD:
		o.LearnRate = lr
	}
}

func restart(s stepper, ws [][]float32) {
	switch o := s.(type) {
	case *SMA:
		o.Restart(ws)
	case *HierarchicalSMA:
		o.Restart(ws)
	case *ClusterSMA:
		o.Restart(ws)
	}
}

// evalScratch holds the evaluation input buffers, allocated once per run
// instead of once per epoch.
type evalScratch struct {
	x      *tensor.Tensor
	labels []int
	idx    []int
}

func newEvalScratch(batch int, shape []int) *evalScratch {
	return &evalScratch{
		x:      tensor.New(append([]int{batch}, shape...)...),
		labels: make([]int, batch),
		idx:    make([]int, batch),
	}
}

// evaluate measures test accuracy of model w using the given evaluation
// network (whose gradient buffer is scratch). Trailing samples that do not
// fill a batch are dropped, matching fixed-shape learner evaluation.
func evaluate(net *nn.Network, w, scratch []float32, test *data.Dataset, batch int, es *evalScratch) float64 {
	net.Bind(w, scratch)
	correct, total := 0, 0
	for start := 0; start+batch <= test.Len(); start += batch {
		for i := 0; i < batch; i++ {
			es.idx[i] = start + i
		}
		test.Gather(es.idx, es.x, es.labels)
		correct += net.Evaluate(es.x, es.labels)
		total += batch
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
