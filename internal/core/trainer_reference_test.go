package core

import (
	"sync"
	"testing"

	"crossbow/internal/data"
	"crossbow/internal/metrics"
	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// referenceTrain is the pre-runtime trainer, kept verbatim as the oracle
// the lockstep scheduler is pinned against: per-iteration goroutine spawn,
// synchronous batch materialisation, a global barrier, and a single-
// threaded optimiser step. Any numerical divergence between Train (which
// now drives the engine's task runtime and the staged-batch pipeline) and
// this loop is a regression.
func referenceTrain(cfg TrainConfig) *Result {
	cfg.fillDefaults()
	k := cfg.K()

	dataCfg := data.ForModel(cfg.Model, cfg.Seed, cfg.DataNoise)
	if cfg.TrainSamples > 0 {
		dataCfg.Train = cfg.TrainSamples
	}
	if cfg.TestSamples > 0 {
		dataCfg.Test = cfg.TestSamples
	}
	train, test := data.Synthesize(dataCfg)

	masterRNG := tensor.NewRNG(cfg.Seed + 7)
	nets := make([]*nn.Network, k)
	ws := make([][]float32, k)
	gs := make([][]float32, k)
	for j := 0; j < k; j++ {
		nets[j] = nn.BuildScaled(cfg.Model, cfg.BatchPerLearner, masterRNG.Split())
	}
	w0 := nets[0].Init(tensor.NewRNG(cfg.Seed + 13))
	for j := 0; j < k; j++ {
		ws[j] = append([]float32(nil), w0...)
		gs[j] = make([]float32, len(w0))
		nets[j].Bind(ws[j], gs[j])
	}

	opt := buildOpt(&cfg, w0, k, nets[0].StateRanges())

	evalBatch := 128
	if test.Len() < evalBatch {
		evalBatch = test.Len()
	}
	evalNet := nn.BuildScaled(cfg.Model, evalBatch, tensor.NewRNG(cfg.Seed+99))
	evalGrad := make([]float32, len(w0))
	evalScratch := newEvalScratch(evalBatch, test.Shape)

	batcher := data.NewBatcher(train.Len(), cfg.BatchPerLearner, cfg.Seed+21)
	inputs := make([]*tensor.Tensor, k)
	labels := make([][]int, k)
	batchIdx := make([][]int, k)
	for j := 0; j < k; j++ {
		inputs[j] = tensor.New(append([]int{cfg.BatchPerLearner}, train.Shape...)...)
		labels[j] = make([]int, cfg.BatchPerLearner)
		batchIdx[j] = make([]int, cfg.BatchPerLearner)
	}

	res := &Result{K: k, EpochsToTarget: -1}
	iterPerEpoch := batcher.BatchesPerEpoch() / k
	if iterPerEpoch == 0 {
		iterPerEpoch = 1
	}
	lr := cfg.LearnRate
	var lossSum float64
	var lossCount int
	losses := make([]float64, k)

	for epoch := 1; epoch <= cfg.MaxEpochs; epoch++ {
		if cfg.Schedule != nil {
			nlr := cfg.Schedule(epoch, cfg.LearnRate)
			if nlr != lr {
				lr = nlr
				setLearnRate(opt, lr)
				if cfg.RestartOnLRChange {
					restart(opt, ws)
				}
			}
		}
		lossSum, lossCount = 0, 0
		for it := 0; it < iterPerEpoch; it++ {
			for j := 0; j < k; j++ {
				copy(batchIdx[j], batcher.Next())
			}
			var wg sync.WaitGroup
			for j := 0; j < k; j++ {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					train.Gather(batchIdx[j], inputs[j], labels[j])
					tensor.ZeroSlice(gs[j])
					losses[j] = nets[j].LossAndGrad(inputs[j], labels[j])
				}(j)
			}
			wg.Wait()
			for _, l := range losses {
				lossSum += l
			}
			lossCount += k
			opt.Step(ws, gs)
		}

		acc := evaluate(evalNet, centralModel(opt), evalGrad, test, evalBatch, evalScratch)
		res.Series = append(res.Series, metrics.EpochPoint{
			Epoch:   epoch,
			TimeSec: float64(epoch) * cfg.EpochSeconds,
			TestAcc: acc,
			Loss:    lossSum / float64(max(1, lossCount)),
		})
		if cfg.TargetAcc > 0 {
			if e, ok := metrics.EpochsToAccuracy(res.Series, cfg.TargetAcc); ok {
				res.EpochsToTarget = e
				break
			}
		}
	}
	if res.EpochsToTarget < 0 && cfg.TargetAcc > 0 {
		if e, ok := metrics.EpochsToAccuracy(res.Series, cfg.TargetAcc); ok {
			res.EpochsToTarget = e
		}
	}
	res.FinalAccuracy = metrics.BestAccuracy(res.Series)
	res.Model = append([]float32(nil), centralModel(opt)...)
	return res
}

// TestLockstepBitIdenticalToReference is the refactor's determinism pin:
// Scheduler: SchedLockstep through the task runtime (staged batches,
// persistent replica-pool workers) reproduces the pre-refactor trainer bit
// for bit — same losses, accuracies and weights — at every kernel worker
// setting (the programmatic form of CROSSBOW_PARALLELISM).
func TestLockstepBitIdenticalToReference(t *testing.T) {
	prev := tensor.WorkerBudget()
	defer tensor.SetWorkerBudget(prev)

	cfg := determinismCfg()
	for _, workers := range []int{1, 4, 16} {
		tensor.SetParallelism(workers)
		ref := referenceTrain(cfg)
		got := Train(cfg)
		resultsBitIdentical(t, "lockstep-vs-reference", ref, got)
	}
}

// TestLockstepReferencePinAllAlgorithms extends the pin across every
// optimiser the lockstep runtime schedules, including the hierarchical and
// cluster tiers.
func TestLockstepReferencePinAllAlgorithms(t *testing.T) {
	for _, algo := range []Algorithm{AlgoSMAHier, AlgoSSGD, AlgoEASGD, AlgoASGD} {
		cfg := determinismCfg()
		cfg.Algo = algo
		if algo == AlgoSMAHier {
			cfg.GPUs, cfg.LearnersPerGPU = 2, 2
		}
		ref := referenceTrain(cfg)
		got := Train(cfg)
		resultsBitIdentical(t, string(algo), ref, got)
	}
	cfg := determinismCfg()
	cfg.Algo = AlgoSMACluster
	cfg.Servers, cfg.GPUs, cfg.LearnersPerGPU = 2, 1, 2
	ref := referenceTrain(cfg)
	got := Train(cfg)
	resultsBitIdentical(t, "sma-cluster", ref, got)
}

// TestLockstepPinWithScheduleRestart pins the learning-rate schedule and
// §3.2 restart path through the runtime driver.
func TestLockstepPinWithScheduleRestart(t *testing.T) {
	cfg := determinismCfg()
	cfg.MaxEpochs = 3
	cfg.Schedule = StepDecay(0.1, 2)
	cfg.RestartOnLRChange = true
	ref := referenceTrain(cfg)
	got := Train(cfg)
	resultsBitIdentical(t, "schedule-restart", ref, got)
}
