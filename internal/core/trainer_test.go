package core

import (
	"testing"

	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// Trainer tests run micro configurations (LeNet/ResNet-50 scaled, few
// epochs) so the suite stays fast while still exercising the full loop:
// parallel learners, optimiser steps, evaluation, schedules, restarts.

func TestTrainLeNetConverges(t *testing.T) {
	res := Train(TrainConfig{
		Model: nn.LeNet, Algo: AlgoSSGD,
		GPUs: 1, LearnersPerGPU: 1, BatchPerLearner: 16,
		Momentum: 0.9, MaxEpochs: 8, Seed: 1,
	})
	if len(res.Series) != 8 {
		t.Fatalf("series has %d epochs, want 8", len(res.Series))
	}
	first, last := res.Series[0].TestAcc, res.Series[len(res.Series)-1].TestAcc
	if last <= first {
		t.Fatalf("no learning: %.3f -> %.3f", first, last)
	}
	if res.FinalAccuracy < 0.3 {
		t.Fatalf("best accuracy %.3f too low", res.FinalAccuracy)
	}
}

func TestTrainDeterministic(t *testing.T) {
	cfg := TrainConfig{
		Model: nn.LeNet, Algo: AlgoSMA,
		GPUs: 1, LearnersPerGPU: 2, BatchPerLearner: 8,
		Momentum: 0.9, MaxEpochs: 3, Seed: 7,
	}
	a := Train(cfg)
	b := Train(cfg)
	if len(a.Series) != len(b.Series) {
		t.Fatal("series lengths differ")
	}
	for i := range a.Series {
		if a.Series[i].TestAcc != b.Series[i].TestAcc || a.Series[i].Loss != b.Series[i].Loss {
			t.Fatalf("epoch %d differs: %+v vs %+v", i, a.Series[i], b.Series[i])
		}
	}
	if tensor.MaxAbsDiff(a.Model, b.Model) != 0 {
		t.Fatal("final models differ between identical runs")
	}
}

func TestTrainSeedsChangeOutcome(t *testing.T) {
	cfg := TrainConfig{
		Model: nn.LeNet, Algo: AlgoSMA,
		GPUs: 1, LearnersPerGPU: 1, BatchPerLearner: 8,
		Momentum: 0.9, MaxEpochs: 2, Seed: 1,
	}
	a := Train(cfg)
	cfg.Seed = 2
	b := Train(cfg)
	if tensor.MaxAbsDiff(a.Model, b.Model) == 0 {
		t.Fatal("different seeds should change the trained model")
	}
}

func TestTrainAllAlgorithms(t *testing.T) {
	for _, algo := range []Algorithm{AlgoSMA, AlgoSMAHier, AlgoSSGD, AlgoEASGD, AlgoASGD} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			res := Train(TrainConfig{
				Model: nn.LeNet, Algo: algo,
				GPUs: 2, LearnersPerGPU: 2, BatchPerLearner: 8,
				Momentum: 0.9, MaxEpochs: 4, Seed: 1,
			})
			if res.K != 4 {
				t.Fatalf("K = %d, want 4", res.K)
			}
			if res.FinalAccuracy <= 0.12 {
				t.Fatalf("%s: accuracy %.3f barely above chance", algo, res.FinalAccuracy)
			}
		})
	}
}

func TestTrainTargetStopsEarly(t *testing.T) {
	res := Train(TrainConfig{
		Model: nn.LeNet, Algo: AlgoSSGD,
		GPUs: 1, LearnersPerGPU: 1, BatchPerLearner: 16,
		Momentum: 0.9, MaxEpochs: 40, TargetAcc: 0.30, Seed: 1,
	})
	if res.EpochsToTarget <= 0 {
		t.Fatal("target should be reached")
	}
	if len(res.Series) >= 40 {
		t.Fatalf("run did not stop early: %d epochs", len(res.Series))
	}
}

func TestTrainScheduleAndRestart(t *testing.T) {
	res := Train(TrainConfig{
		Model: nn.LeNet, Algo: AlgoSMA,
		GPUs: 1, LearnersPerGPU: 2, BatchPerLearner: 8,
		Momentum: 0.9, MaxEpochs: 6, Seed: 1,
		Schedule:          StepDecay(0.1, 3),
		RestartOnLRChange: true,
	})
	// The run must survive the mid-training restart and keep learning.
	if res.FinalAccuracy <= 0.12 {
		t.Fatalf("accuracy %.3f after schedule+restart", res.FinalAccuracy)
	}
}

func TestTrainEpochSecondsStampsTime(t *testing.T) {
	res := Train(TrainConfig{
		Model: nn.LeNet, Algo: AlgoSSGD,
		GPUs: 1, LearnersPerGPU: 1, BatchPerLearner: 16,
		Momentum: 0.9, MaxEpochs: 3, Seed: 1, EpochSeconds: 2.5,
	})
	for i, p := range res.Series {
		want := 2.5 * float64(i+1)
		if p.TimeSec != want {
			t.Fatalf("epoch %d time %.2f, want %.2f", i+1, p.TimeSec, want)
		}
	}
}

func TestTrainSampleOverride(t *testing.T) {
	res := Train(TrainConfig{
		Model: nn.LeNet, Algo: AlgoSSGD,
		GPUs: 1, LearnersPerGPU: 1, BatchPerLearner: 16,
		Momentum: 0.9, MaxEpochs: 1, Seed: 1,
		TrainSamples: 512, TestSamples: 128,
	})
	if len(res.Series) != 1 {
		t.Fatal("expected one epoch")
	}
}

func TestDefaultLearnRates(t *testing.T) {
	if DefaultLearnRate(nn.LeNet) >= DefaultLearnRate(nn.ResNet32) {
		t.Fatal("LeNet should use a smaller rate than ResNet-32 (Figure 9)")
	}
	for _, id := range nn.AllModels {
		if DefaultLearnRate(id) <= 0 {
			t.Fatalf("%s: non-positive default learn rate", id)
		}
	}
}

func TestSchedules(t *testing.T) {
	s := StepDecay(0.1, 10, 20)
	if got := s(5, 1); got != 1 {
		t.Fatalf("epoch 5 lr = %v", got)
	}
	if got := s(10, 1); got != 0.1 {
		t.Fatalf("epoch 10 lr = %v", got)
	}
	if got := s(25, 1); got > 0.011 || got < 0.009 {
		t.Fatalf("epoch 25 lr = %v", got)
	}
	p := PeriodicDecay(0.5, 20)
	if got := p(19, 1); got != 1 {
		t.Fatalf("epoch 19 lr = %v", got)
	}
	if got := p(40, 1); got != 0.25 {
		t.Fatalf("epoch 40 lr = %v", got)
	}
}

func TestCentralModelPerAlgorithm(t *testing.T) {
	w0 := []float32{1, 2}
	if centralModel(NewSMA(SMAConfig{LearnRate: 0.1}, w0, 1)) == nil {
		t.Fatal("nil central model for SMA")
	}
	if centralModel(NewSSGD(0.1, 0, w0)) == nil {
		t.Fatal("nil central model for SSGD")
	}
	if centralModel(NewEASGD(0.1, 0, 1, 1, w0)) == nil {
		t.Fatal("nil central model for EASGD")
	}
	if centralModel(NewASGD(0.1, w0)) == nil {
		t.Fatal("nil central model for ASGD")
	}
	if centralModel(NewHierarchicalSMA(SMAConfig{LearnRate: 0.1}, w0, [][]int{{0}})) == nil {
		t.Fatal("nil central model for hierarchical SMA")
	}
}

func TestSSGDCarriesBatchNormState(t *testing.T) {
	// Regression test: batch-norm running statistics live in the model
	// vector but have zero gradient; S-SGD must carry them from replicas
	// into the global model or evaluation normalises with initial stats.
	res := Train(TrainConfig{
		Model: nn.ResNet50, Algo: AlgoSSGD,
		GPUs: 1, LearnersPerGPU: 1, BatchPerLearner: 16,
		Momentum: 0.9, MaxEpochs: 4, Seed: 1,
	})
	net := nn.BuildScaled(nn.ResNet50, 1, tensor.NewRNG(1))
	ranges := net.StateRanges()
	if len(ranges) == 0 {
		t.Fatal("ResNet-50 must expose batch-norm state ranges")
	}
	changed := false
	fresh := net.Init(tensor.NewRNG(1 + 13))
	for _, rg := range ranges {
		for i := rg[0]; i < rg[1]; i++ {
			if res.Model[i] != fresh[i] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("running statistics never updated in the global model")
	}
}
