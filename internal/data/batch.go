package data

import "crossbow/internal/tensor"

// Batcher yields shuffled mini-batch index sets over a dataset, epoch after
// epoch. Shuffling is deterministic given the seed, and batches never span
// epoch boundaries (a trailing partial batch is dropped, as the paper's
// fixed-batch-shape learners require).
type Batcher struct {
	n     int
	batch int
	rng   *tensor.RNG
	perm  []int
	pos   int
	epoch int
}

// NewBatcher creates a batcher over n samples with the given batch size.
func NewBatcher(n, batch int, seed uint64) *Batcher {
	if batch <= 0 || batch > n {
		panic("data: batch size out of range")
	}
	b := &Batcher{n: n, batch: batch, rng: tensor.NewRNG(seed), perm: make([]int, n)}
	b.rng.Perm(b.perm)
	return b
}

// Epoch returns the zero-based epoch of the batch the next Next call yields.
func (b *Batcher) Epoch() int { return b.epoch }

// BatchesPerEpoch returns the number of full batches in one epoch.
func (b *Batcher) BatchesPerEpoch() int { return b.n / b.batch }

// Next returns the next batch's sample indices. The returned slice is valid
// until the following Next call.
func (b *Batcher) Next() []int {
	if b.pos+b.batch > b.n {
		b.rng.Perm(b.perm)
		b.pos = 0
		b.epoch++
	}
	out := b.perm[b.pos : b.pos+b.batch]
	b.pos += b.batch
	return out
}

// SamplesSeen returns the total number of samples handed out so far.
func (b *Batcher) SamplesSeen() int {
	return b.epoch*b.BatchesPerEpoch()*b.batch + b.pos
}
