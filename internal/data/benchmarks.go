package data

import "crossbow/internal/nn"

// BenchmarkConfig describes the synthetic stand-in dataset for one of the
// paper's benchmarks at trainable scale. Sizes are chosen so that a full
// training run to the paper's accuracy targets completes in seconds on a
// CPU while preserving the redundancy structure (many noisy samples per
// class) that drives the batch-size/statistical-efficiency trade-off.
type BenchmarkConfig struct {
	Model nn.ModelID
	Synth SynthConfig
}

// ForModel returns the benchmark dataset configuration for a model. noise
// tunes task difficulty; pass 0 for the default.
func ForModel(id nn.ModelID, seed uint64, noise float64) SynthConfig {
	cfg := nn.ScaledConfigs[id]
	n := noise
	scale := 1.0
	if n == 0 {
		// Noise and prototype scale are picked per benchmark so that the
		// baseline (S-SGD, small batch) reaches its accuracy target in
		// tens of epochs rather than one — the regime of Figure 9 — while
		// leaving headroom for the batch-size effects of Figure 3.
		switch id {
		case nn.LeNet:
			n, scale = 1.0, 0.50
		case nn.ResNet32:
			n, scale = 1.0, 0.31
		case nn.VGG16:
			n, scale = 1.0, 0.45
		case nn.ResNet50:
			n, scale = 1.0, 0.31
		default:
			n = 1.0
		}
	}
	return SynthConfig{
		Shape:      cfg.Input,
		Classes:    cfg.Classes,
		Train:      2048,
		Test:       512,
		Noise:      n,
		ProtoScale: scale,
		Seed:       seed,
	}
}

// Load synthesises the train/test pair for a benchmark model.
func Load(id nn.ModelID, seed uint64) (train, test *Dataset) {
	return Synthesize(ForModel(id, seed, 0))
}
