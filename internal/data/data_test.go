package data

import (
	"testing"
	"testing/quick"

	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := SynthConfig{Shape: []int{2, 4, 4}, Classes: 3, Train: 30, Test: 9, Noise: 0.5, Seed: 42}
	a, at := Synthesize(cfg)
	b, bt := Synthesize(cfg)
	if tensor.MaxAbsDiff(a.X, b.X) != 0 || tensor.MaxAbsDiff(at.X, bt.X) != 0 {
		t.Fatal("same seed must give identical datasets")
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ")
		}
	}
}

func TestSynthesizeSeedsDiffer(t *testing.T) {
	cfg := SynthConfig{Shape: []int{4}, Classes: 2, Train: 10, Test: 2, Noise: 0.5, Seed: 1}
	a, _ := Synthesize(cfg)
	cfg.Seed = 2
	b, _ := Synthesize(cfg)
	if tensor.MaxAbsDiff(a.X, b.X) == 0 {
		t.Fatal("different seeds should give different data")
	}
}

func TestSynthesizeBalancedClasses(t *testing.T) {
	cfg := SynthConfig{Shape: []int{4}, Classes: 4, Train: 100, Test: 20, Noise: 0.5, Seed: 3}
	tr, _ := Synthesize(cfg)
	counts := make([]int, 4)
	for _, y := range tr.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 25 {
			t.Fatalf("class %d has %d samples, want 25", c, n)
		}
	}
}

func TestSynthesizeSeparable(t *testing.T) {
	// With low noise, nearest-prototype classification on the train set
	// must be far better than chance — the datasets must actually encode
	// their labels.
	cfg := SynthConfig{Shape: []int{8}, Classes: 2, Train: 200, Test: 50, Noise: 0.3, Seed: 7}
	tr, te := Synthesize(cfg)
	// Estimate prototypes from train means.
	vol := tr.SampleVol()
	protos := make([][]float64, cfg.Classes)
	counts := make([]int, cfg.Classes)
	for c := range protos {
		protos[c] = make([]float64, vol)
	}
	for i := 0; i < tr.Len(); i++ {
		c := tr.Y[i]
		counts[c]++
		for j, v := range tr.Sample(i) {
			protos[c][j] += float64(v)
		}
	}
	for c := range protos {
		for j := range protos[c] {
			protos[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i := 0; i < te.Len(); i++ {
		s := te.Sample(i)
		best, bi := 0.0, -1
		for c := range protos {
			var d float64
			for j, v := range s {
				diff := float64(v) - protos[c][j]
				d += diff * diff
			}
			if bi < 0 || d < best {
				best, bi = d, c
			}
		}
		if bi == te.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(te.Len()); acc < 0.9 {
		t.Fatalf("nearest-prototype accuracy = %v, want > 0.9", acc)
	}
}

func TestGather(t *testing.T) {
	cfg := SynthConfig{Shape: []int{3}, Classes: 2, Train: 10, Test: 2, Noise: 0.5, Seed: 5}
	tr, _ := Synthesize(cfg)
	x := tensor.New(2, 3)
	labels := make([]int, 2)
	tr.Gather([]int{4, 7}, x, labels)
	if labels[0] != tr.Y[4] || labels[1] != tr.Y[7] {
		t.Fatal("gathered labels wrong")
	}
	for j := 0; j < 3; j++ {
		if x.At(0, j) != tr.Sample(4)[j] || x.At(1, j) != tr.Sample(7)[j] {
			t.Fatal("gathered samples wrong")
		}
	}
}

func TestLoadAllBenchmarks(t *testing.T) {
	for _, id := range nn.AllModels {
		tr, te := Load(id, 1)
		cfg := nn.ScaledConfigs[id]
		if tr.Classes != cfg.Classes || te.Classes != cfg.Classes {
			t.Fatalf("%s: class mismatch", id)
		}
		if tr.Len() == 0 || te.Len() == 0 {
			t.Fatalf("%s: empty dataset", id)
		}
		if tr.SampleVol() != tensor.Volume(cfg.Input) {
			t.Fatalf("%s: sample shape mismatch", id)
		}
	}
}

func TestBatcherCoversEpochExactly(t *testing.T) {
	b := NewBatcher(20, 4, 9)
	seen := map[int]int{}
	for i := 0; i < b.BatchesPerEpoch(); i++ {
		for _, idx := range b.Next() {
			seen[idx]++
		}
	}
	if len(seen) != 20 {
		t.Fatalf("epoch covered %d distinct samples, want 20", len(seen))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("sample %d seen %d times", idx, n)
		}
	}
	if b.Epoch() != 0 {
		t.Fatalf("epoch advanced early: %d", b.Epoch())
	}
	b.Next()
	if b.Epoch() != 1 {
		t.Fatalf("epoch = %d after rollover, want 1", b.Epoch())
	}
}

func TestBatcherDropsPartialBatch(t *testing.T) {
	b := NewBatcher(10, 4, 1)
	if b.BatchesPerEpoch() != 2 {
		t.Fatalf("BatchesPerEpoch = %d, want 2", b.BatchesPerEpoch())
	}
	b.Next()
	b.Next()
	b.Next() // must reshuffle rather than yield a short batch
	if b.Epoch() != 1 {
		t.Fatal("expected epoch rollover")
	}
}

func TestBatcherDeterminism(t *testing.T) {
	a, b := NewBatcher(50, 5, 3), NewBatcher(50, 5, 3)
	for i := 0; i < 30; i++ {
		x, y := a.Next(), b.Next()
		for j := range x {
			if x[j] != y[j] {
				t.Fatal("batchers with same seed diverged")
			}
		}
	}
}

// Property: every batch's indices are in range and distinct within an epoch.
func TestBatcherProperty(t *testing.T) {
	f := func(seed uint64, nRaw, bRaw uint8) bool {
		n := int(nRaw%50) + 10
		batch := int(bRaw%5) + 1
		b := NewBatcher(n, batch, seed)
		seen := map[int]bool{}
		for i := 0; i < b.BatchesPerEpoch(); i++ {
			for _, idx := range b.Next() {
				if idx < 0 || idx >= n || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineDeliversBatches(t *testing.T) {
	cfg := SynthConfig{Shape: []int{1, 4, 4}, Classes: 2, Train: 64, Test: 8, Noise: 0.5, Seed: 11}
	tr, _ := Synthesize(cfg)
	p := NewPipeline(tr, PipelineConfig{Batch: 8, Slots: 4, Workers: 3, Seed: 13})
	defer p.Close()
	for i := 0; i < 32; i++ {
		s, ok := p.Acquire()
		if !ok {
			t.Fatal("pipeline closed early")
		}
		if s.X.Dim(0) != 8 || len(s.Labels) != 8 {
			t.Fatalf("bad slot shape %v / %d labels", s.X.Shape(), len(s.Labels))
		}
		for _, y := range s.Labels {
			if y < 0 || y >= 2 {
				t.Fatalf("bad label %d", y)
			}
		}
		p.Release(s)
	}
}

func TestPipelineCloseUnblocks(t *testing.T) {
	cfg := SynthConfig{Shape: []int{4}, Classes: 2, Train: 16, Test: 4, Noise: 0.5, Seed: 1}
	tr, _ := Synthesize(cfg)
	p := NewPipeline(tr, PipelineConfig{Batch: 4, Slots: 2, Workers: 2, Seed: 1})
	done := make(chan struct{})
	go func() {
		for {
			s, ok := p.Acquire()
			if !ok {
				close(done)
				return
			}
			p.Release(s)
		}
	}()
	p.Close()
	<-done
}

func TestAugmentFlipsPreserveValues(t *testing.T) {
	// Flipping only permutes pixels within a row: multiset of values per
	// row must be preserved.
	cfg := SynthConfig{Shape: []int{1, 2, 4}, Classes: 2, Train: 8, Test: 2, Noise: 0.5, Seed: 21}
	tr, _ := Synthesize(cfg)
	x := tensor.New(8, 1, 2, 4)
	labels := make([]int, 8)
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	tr.Gather(idx, x, labels)
	before := x.Clone()
	augmentBatch(x, tr.Shape, tensor.NewRNG(2))
	for n := 0; n < 8; n++ {
		for row := 0; row < 2; row++ {
			var sumA, sumB float64
			for col := 0; col < 4; col++ {
				sumA += float64(before.At(n, 0, row, col))
				sumB += float64(x.At(n, 0, row, col))
			}
			if sumA != sumB {
				t.Fatalf("augmentation changed row content at sample %d row %d", n, row)
			}
		}
	}
}
