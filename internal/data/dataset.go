package data

import (
	"fmt"

	"crossbow/internal/tensor"
)

// Dataset is an in-memory labelled sample collection. Samples are stored
// flattened and contiguous: sample i occupies X[i*SampleVol() : (i+1)*SampleVol()].
type Dataset struct {
	Shape   []int // per-sample shape, e.g. [3, 8, 8]
	Classes int
	X       []float32
	Y       []int
}

// SampleVol returns the number of elements in one sample.
func (d *Dataset) SampleVol() int { return tensor.Volume(d.Shape) }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Sample returns the flat view of sample i.
func (d *Dataset) Sample(i int) []float32 {
	v := d.SampleVol()
	return d.X[i*v : (i+1)*v]
}

// Gather copies the samples at the given indices into x (shape
// [len(idx), Shape...]) and their labels into labels.
func (d *Dataset) Gather(idx []int, x *tensor.Tensor, labels []int) {
	v := d.SampleVol()
	xd := x.Data()
	if len(xd) < len(idx)*v || len(labels) < len(idx) {
		panic("data: Gather destination too small")
	}
	for bi, si := range idx {
		copy(xd[bi*v:(bi+1)*v], d.Sample(si))
		labels[bi] = d.Y[si]
	}
}

// SynthConfig controls synthetic dataset generation. Samples of class c are
// prototype[c] + Noise·N(0,1): a redundant, clustered distribution with the
// property the paper's statistical-efficiency argument relies on — a few
// small batches suffice to capture the problem's dimensionality, while
// gradient noise still regularises.
type SynthConfig struct {
	Shape   []int
	Classes int
	Train   int // training samples
	Test    int // test samples
	Noise   float64
	// ProtoScale scales the class prototypes relative to the noise; it is
	// the task-difficulty knob. Class separation grows with
	// ProtoScale·√dim / Noise, so small values give a genuinely hard
	// decision boundary that takes many SGD updates to learn — the regime
	// where the paper's batch-size/statistical-efficiency trade-off shows.
	// Zero selects 1.
	ProtoScale float64
	Seed       uint64
}

// Synthesize generates train and test datasets from cfg. Generation is
// fully determined by cfg.Seed.
func Synthesize(cfg SynthConfig) (train, test *Dataset) {
	if cfg.Classes < 2 {
		panic(fmt.Sprintf("data: need at least 2 classes, got %d", cfg.Classes))
	}
	if cfg.Noise <= 0 {
		cfg.Noise = 0.5
	}
	if cfg.ProtoScale <= 0 {
		cfg.ProtoScale = 1
	}
	r := tensor.NewRNG(cfg.Seed)
	vol := tensor.Volume(cfg.Shape)
	protos := make([][]float32, cfg.Classes)
	for c := range protos {
		p := make([]float32, vol)
		for i := range p {
			p[i] = float32(r.NormFloat64() * cfg.ProtoScale)
		}
		protos[c] = p
	}
	gen := func(n int, rng *tensor.RNG) *Dataset {
		d := &Dataset{
			Shape:   append([]int(nil), cfg.Shape...),
			Classes: cfg.Classes,
			X:       make([]float32, n*vol),
			Y:       make([]int, n),
		}
		for i := 0; i < n; i++ {
			c := i % cfg.Classes // balanced classes
			d.Y[i] = c
			s := d.X[i*vol : (i+1)*vol]
			p := protos[c]
			for j := range s {
				s[j] = p[j] + float32(rng.NormFloat64()*cfg.Noise)
			}
		}
		return d
	}
	train = gen(cfg.Train, r.Split())
	test = gen(cfg.Test, r.Split())
	return train, test
}
