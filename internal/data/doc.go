// Package data provides the training-data substrate (DESIGN.md §2):
// deterministic synthetic image datasets standing in for
// MNIST/CIFAR-10/CIFAR-100/ILSVRC (the originals are unavailable offline;
// see DESIGN.md §1), epoch batch iterators, and the multi-threaded
// pre-processor pipeline with a circular buffer described in §4.5 of the
// paper — the staging layer both the task runtime's learners (DESIGN.md
// §9) and the replayable assignment log are built on.
package data
