package data

import (
	"sync"

	"crossbow/internal/tensor"
)

// Slot is one entry of the pipeline's circular input-batch buffer: a staged
// batch tensor plus its labels (paper §4.5: a page-aligned, page-locked
// circular buffer written by data pre-processors and read by the GPU; here
// the buffer is plain memory shared with the simulated devices).
type Slot struct {
	X      *tensor.Tensor
	Labels []int
	// Seq is the batch's position in the batcher's deterministic draw
	// sequence (0-based). Consumers that need the oracle batch order — the
	// runtime's lockstep mode — reorder staged slots by Seq; barrier-free
	// consumers use it to log which learner a batch was bound to.
	Seq int
	idx int
}

// Pipeline is the data pre-processor stage of §4.5: a pool of worker
// goroutines gathers shuffled samples into the slots of a circular buffer
// (double buffering by default: capacity ≥ 2 batches per consumer), applying
// optional augmentation. Consumers acquire filled slots and release them
// back once the learning task has consumed the batch.
type Pipeline struct {
	ds      *Dataset
	batch   int
	augment bool

	slots []*Slot
	free  chan int
	full  chan int
	work  chan workItem

	// claimMu pairs each worker's (work item, free slot) claim atomically:
	// the worker staging batch seq n holds a slot before any worker staging
	// seq > n can claim one, so the lowest outstanding sequence is always
	// being filled and consumers draining slots in Seq order cannot starve.
	claimMu  sync.Mutex
	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// PipelineConfig configures a pre-processor pipeline.
type PipelineConfig struct {
	Batch   int
	Slots   int // circular-buffer capacity in batches; ≥ 2 recommended (double buffering)
	Workers int // pre-processor threads
	Augment bool
	Seed    uint64
}

// NewPipeline starts the pre-processor workers over ds.
func NewPipeline(ds *Dataset, cfg PipelineConfig) *Pipeline {
	if cfg.Slots < 1 {
		cfg.Slots = 2
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	p := &Pipeline{
		ds:      ds,
		batch:   cfg.Batch,
		augment: cfg.Augment,
		slots:   make([]*Slot, cfg.Slots),
		free:    make(chan int, cfg.Slots),
		full:    make(chan int, cfg.Slots),
		work:    make(chan workItem, cfg.Slots),
		stop:    make(chan struct{}),
	}
	for i := range p.slots {
		p.slots[i] = &Slot{
			X:      tensor.New(append([]int{cfg.Batch}, ds.Shape...)...),
			Labels: make([]int, cfg.Batch),
			idx:    i,
		}
		p.free <- i
	}
	// Dispatcher: the batcher is single-threaded, so one goroutine draws
	// index sets, stamps them with their sequence position, and fans them
	// out to the workers.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(p.work)
		b := NewBatcher(ds.Len(), cfg.Batch, cfg.Seed)
		for seq := 0; ; seq++ {
			item := workItem{seq: seq, idx: append([]int(nil), b.Next()...)}
			select {
			case p.work <- item:
			case <-p.stop:
				return
			}
		}
	}()
	for w := 0; w < cfg.Workers; w++ {
		p.wg.Add(1)
		rng := tensor.NewRNG(cfg.Seed + 1000 + uint64(w))
		go func(rng *tensor.RNG) {
			defer p.wg.Done()
			for {
				p.claimMu.Lock()
				var item workItem
				var ok bool
				select {
				case item, ok = <-p.work:
					if !ok {
						p.claimMu.Unlock()
						return
					}
				case <-p.stop:
					p.claimMu.Unlock()
					return
				}
				var si int
				select {
				case si = <-p.free:
				case <-p.stop:
					p.claimMu.Unlock()
					return
				}
				p.claimMu.Unlock()
				slot := p.slots[si]
				slot.Seq = item.seq
				p.ds.Gather(item.idx, slot.X, slot.Labels)
				if p.augment {
					augmentBatch(slot.X, p.ds.Shape, rng)
				}
				select {
				case p.full <- si:
				case <-p.stop:
					return
				}
			}
		}(rng)
	}
	return p
}

// workItem is one dispatched batch: its draw-sequence position and the
// sample indices to gather.
type workItem struct {
	seq int
	idx []int
}

// Acquire blocks until a filled slot is available and returns it. The
// caller must call Release exactly once when done with the slot. ok is
// false after Close.
func (p *Pipeline) Acquire() (s *Slot, ok bool) {
	select {
	case si := <-p.full:
		return p.slots[si], true
	case <-p.stop:
		return nil, false
	}
}

// Release returns a consumed slot to the free pool.
func (p *Pipeline) Release(s *Slot) {
	select {
	case p.free <- s.idx:
	case <-p.stop:
	}
}

// Close stops the workers and waits for them to exit.
func (p *Pipeline) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	// Drain work so the dispatcher (blocked on send) can observe stop.
	p.wg.Wait()
}

// augmentBatch applies the light augmentation pre-processors perform
// (standing in for decode/crop/flip): a horizontal flip of each image with
// probability 1/2. Non-image (flat) samples are left untouched.
func augmentBatch(x *tensor.Tensor, shape []int, rng *tensor.RNG) {
	if len(shape) != 3 {
		return
	}
	c, h, w := shape[0], shape[1], shape[2]
	vol := c * h * w
	batch := x.Dim(0)
	xd := x.Data()
	for n := 0; n < batch; n++ {
		if rng.Float64() >= 0.5 {
			continue
		}
		img := xd[n*vol : (n+1)*vol]
		for ch := 0; ch < c; ch++ {
			for row := 0; row < h; row++ {
				base := ch*h*w + row*w
				for a, b := 0, w-1; a < b; a, b = a+1, b-1 {
					img[base+a], img[base+b] = img[base+b], img[base+a]
				}
			}
		}
	}
}
