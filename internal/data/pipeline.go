package data

import (
	"sync"

	"crossbow/internal/tensor"
)

// Slot is one entry of the pipeline's circular input-batch buffer: a staged
// batch tensor plus its labels (paper §4.5: a page-aligned, page-locked
// circular buffer written by data pre-processors and read by the GPU; here
// the buffer is plain memory shared with the simulated devices).
type Slot struct {
	X      *tensor.Tensor
	Labels []int
	idx    int
}

// Pipeline is the data pre-processor stage of §4.5: a pool of worker
// goroutines gathers shuffled samples into the slots of a circular buffer
// (double buffering by default: capacity ≥ 2 batches per consumer), applying
// optional augmentation. Consumers acquire filled slots and release them
// back once the learning task has consumed the batch.
type Pipeline struct {
	ds      *Dataset
	batch   int
	augment bool

	slots []*Slot
	free  chan int
	full  chan int
	work  chan []int

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// PipelineConfig configures a pre-processor pipeline.
type PipelineConfig struct {
	Batch   int
	Slots   int // circular-buffer capacity in batches; ≥ 2 recommended (double buffering)
	Workers int // pre-processor threads
	Augment bool
	Seed    uint64
}

// NewPipeline starts the pre-processor workers over ds.
func NewPipeline(ds *Dataset, cfg PipelineConfig) *Pipeline {
	if cfg.Slots < 1 {
		cfg.Slots = 2
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	p := &Pipeline{
		ds:      ds,
		batch:   cfg.Batch,
		augment: cfg.Augment,
		slots:   make([]*Slot, cfg.Slots),
		free:    make(chan int, cfg.Slots),
		full:    make(chan int, cfg.Slots),
		work:    make(chan []int, cfg.Slots),
		stop:    make(chan struct{}),
	}
	for i := range p.slots {
		p.slots[i] = &Slot{
			X:      tensor.New(append([]int{cfg.Batch}, ds.Shape...)...),
			Labels: make([]int, cfg.Batch),
			idx:    i,
		}
		p.free <- i
	}
	// Dispatcher: the batcher is single-threaded, so one goroutine draws
	// index sets and fans them out to the workers.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(p.work)
		b := NewBatcher(ds.Len(), cfg.Batch, cfg.Seed)
		for {
			idx := append([]int(nil), b.Next()...)
			select {
			case p.work <- idx:
			case <-p.stop:
				return
			}
		}
	}()
	for w := 0; w < cfg.Workers; w++ {
		p.wg.Add(1)
		rng := tensor.NewRNG(cfg.Seed + 1000 + uint64(w))
		go func(rng *tensor.RNG) {
			defer p.wg.Done()
			for idx := range p.work {
				var si int
				select {
				case si = <-p.free:
				case <-p.stop:
					return
				}
				slot := p.slots[si]
				p.ds.Gather(idx, slot.X, slot.Labels)
				if p.augment {
					augmentBatch(slot.X, p.ds.Shape, rng)
				}
				select {
				case p.full <- si:
				case <-p.stop:
					return
				}
			}
		}(rng)
	}
	return p
}

// Acquire blocks until a filled slot is available and returns it. The
// caller must call Release exactly once when done with the slot. ok is
// false after Close.
func (p *Pipeline) Acquire() (s *Slot, ok bool) {
	select {
	case si := <-p.full:
		return p.slots[si], true
	case <-p.stop:
		return nil, false
	}
}

// Release returns a consumed slot to the free pool.
func (p *Pipeline) Release(s *Slot) {
	select {
	case p.free <- s.idx:
	case <-p.stop:
	}
}

// Close stops the workers and waits for them to exit.
func (p *Pipeline) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	// Drain work so the dispatcher (blocked on send) can observe stop.
	p.wg.Wait()
}

// augmentBatch applies the light augmentation pre-processors perform
// (standing in for decode/crop/flip): a horizontal flip of each image with
// probability 1/2. Non-image (flat) samples are left untouched.
func augmentBatch(x *tensor.Tensor, shape []int, rng *tensor.RNG) {
	if len(shape) != 3 {
		return
	}
	c, h, w := shape[0], shape[1], shape[2]
	vol := c * h * w
	batch := x.Dim(0)
	xd := x.Data()
	for n := 0; n < batch; n++ {
		if rng.Float64() >= 0.5 {
			continue
		}
		img := xd[n*vol : (n+1)*vol]
		for ch := 0; ch < c; ch++ {
			for row := 0; row < h; row++ {
				base := ch*h*w + row*w
				for a, b := 0, w-1; a < b; a, b = a+1, b-1 {
					img[base+a], img[base+b] = img[base+b], img[base+a]
				}
			}
		}
	}
}
