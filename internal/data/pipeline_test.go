package data

import (
	"runtime"
	"testing"
	"time"
)

func pipelineDataset(n int) *Dataset {
	tr, _ := Synthesize(SynthConfig{
		Shape: []int{2, 4, 4}, Classes: 4, Train: n, Test: 8, Seed: 9,
	})
	return tr
}

// waitGoroutines polls until the goroutine count drops back to at most want,
// giving exiting goroutines time to be reaped.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d alive, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPipelineCloseNoGoroutineLeak proves Close reaps the dispatcher and
// every worker in each of the states they can be blocked in: filling, blocked
// sending a full slot, and blocked waiting for a free slot. This guards the
// runtime's hot path, which opens and closes a pipeline per training run.
func TestPipelineCloseNoGoroutineLeak(t *testing.T) {
	ds := pipelineDataset(64)
	before := runtime.NumGoroutine()

	for trial := 0; trial < 20; trial++ {
		p := NewPipeline(ds, PipelineConfig{Batch: 4, Slots: 3, Workers: 3, Seed: uint64(trial + 1)})
		// Vary the consumption point so Close lands with workers in
		// different blocked states (including holding acquired slots that
		// are never released).
		for i := 0; i < trial%4; i++ {
			if s, ok := p.Acquire(); ok && trial%2 == 0 {
				p.Release(s)
			} else {
				_ = s
			}
		}
		p.Close()
	}
	waitGoroutines(t, before)

	// Acquire after Close reports shutdown rather than blocking.
	p := NewPipeline(ds, PipelineConfig{Batch: 4, Slots: 2, Workers: 2, Seed: 1})
	p.Close()
	if s, ok := p.Acquire(); ok {
		t.Fatalf("Acquire after Close returned a slot: %+v", s)
	}
	waitGoroutines(t, before)
}

// TestPipelineHeldSlotNotReused pins the circular buffer's ownership
// contract: while a consumer holds an acquired slot, the pre-processors must
// not overwrite it, even when every other slot cycles many times. The
// runtime's learners depend on this — a staged batch must stay stable for
// the whole forward/backward pass.
func TestPipelineHeldSlotNotReused(t *testing.T) {
	ds := pipelineDataset(64)
	p := NewPipeline(ds, PipelineConfig{Batch: 4, Slots: 3, Workers: 2, Seed: 7})
	defer p.Close()

	held, ok := p.Acquire()
	if !ok {
		t.Fatal("Acquire failed")
	}
	heldSeq := held.Seq
	snapshot := append([]float32(nil), held.X.Data()...)
	heldLabels := append([]int(nil), held.Labels...)

	// Cycle the remaining slots through many reuses while the held slot
	// stays checked out.
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		s, ok := p.Acquire()
		if !ok {
			t.Fatal("Acquire failed mid-cycle")
		}
		if s == held {
			t.Fatalf("pipeline handed out the held slot again (seq %d)", s.Seq)
		}
		seen[s.idx] = true
		p.Release(s)
	}
	if len(seen) == 0 {
		t.Fatal("no other slots cycled")
	}

	if held.Seq != heldSeq {
		t.Fatalf("held slot reseq'd: %d -> %d", heldSeq, held.Seq)
	}
	for i, v := range held.X.Data() {
		if v != snapshot[i] {
			t.Fatalf("held slot data overwritten at %d: %v -> %v", i, snapshot[i], v)
		}
	}
	for i, l := range held.Labels {
		if l != heldLabels[i] {
			t.Fatalf("held slot label overwritten at %d: %d -> %d", i, heldLabels[i], l)
		}
	}
	p.Release(held)
}

// TestPipelineSeqContiguous: staged slots carry the batcher's draw-sequence
// positions; draining the pipeline yields every sequence number exactly once
// (in some order), which is what the runtime's reorder buffer and the FCFS
// assignment log both rely on.
func TestPipelineSeqContiguous(t *testing.T) {
	ds := pipelineDataset(64)
	p := NewPipeline(ds, PipelineConfig{Batch: 4, Slots: 4, Workers: 3, Seed: 3})
	defer p.Close()

	const n = 100
	got := map[int]bool{}
	for i := 0; i < n; i++ {
		s, ok := p.Acquire()
		if !ok {
			t.Fatal("Acquire failed")
		}
		if got[s.Seq] {
			t.Fatalf("sequence %d delivered twice", s.Seq)
		}
		got[s.Seq] = true
		p.Release(s)
	}
	// Sequences arrive without duplication and nearly in order: an
	// undelivered sequence holds a buffer slot until it is filled (the
	// atomic claim pairing), so at most Slots-1 sequences below the highest
	// delivered one can still be in flight.
	const slots = 4
	for seq := 0; seq <= n-slots; seq++ {
		if !got[seq] {
			t.Fatalf("sequence %d not among first %d acquires (window > Slots)", seq, n)
		}
	}
}
