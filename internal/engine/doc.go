// Package engine implements Crossbow's concurrent task engine (§4) twice
// over, at two levels of reality.
//
// The simulated engine (engine.go, live.go, ssgd.go; DESIGN.md §3) runs on
// the internal/gpusim simulator: learner streams and synchronisation
// streams per device, learning / local-synchronisation /
// global-synchronisation tasks wired by events exactly as in the paper's
// Figure 8 dataflow, with global synchronisation overlapping the next
// iteration's learning tasks. It is the hardware-efficiency plane,
// yielding iteration timing and throughput for any (model, g, m, b, τ)
// configuration.
//
// The wall-clock Runtime (runtime.go; DESIGN.md §9) executes the same
// architecture for real: a pool of learner workers bound to model
// replicas, staged batches from internal/data's pipeline, and two
// scheduling modes — Lockstep (per-iteration barrier, the bit-deterministic
// oracle) and FCFS (barrier-free, learners run ahead of the central
// average model by up to τ iterations and synchronise through
// index-ordered contribution rounds). The runtime contains no optimiser
// math: drivers (internal/core) supply task and synchronisation closures,
// including the Publish hook that cuts consistent model snapshots at round
// boundaries for the serving plane (DESIGN.md §11).
package engine
