package engine

import (
	"fmt"

	"crossbow/internal/gpusim"
	"crossbow/internal/metrics"
	"crossbow/internal/nn"
)

// Config describes a simulated training configuration.
type Config struct {
	Model          nn.ModelID
	GPUs           int // g
	LearnersPerGPU int // m
	Batch          int // b, per learner
	// Tau synchronises every Tau iterations; 0 → 1; TauNever disables
	// synchronisation entirely (the τ=∞ column of Figure 17).
	Tau int
	// Overlap lets global synchronisation tasks of iteration N run
	// concurrently with learning tasks of iteration N+1 (Figure 8 f).
	// Disabling it inserts the global execution barrier the paper argues
	// against (§4.2).
	Overlap bool
	// Cost and Topo default to the paper-calibrated models when zero.
	Cost gpusim.CostModel
	Topo gpusim.Topology
	// Sim optionally supplies an external simulator to schedule on. The
	// cluster plane (internal/cluster) builds one simulator spanning every
	// server's devices and constructs one engine per server on it, so all
	// servers share a single virtual clock. Nil creates a private simulator.
	Sim *gpusim.Sim
	// DeviceOffset is the index of this engine's first device within Sim
	// (only meaningful with an external Sim).
	DeviceOffset int
}

// TauNever disables synchronisation (τ = ∞).
const TauNever = -1

func (c *Config) fillDefaults() {
	if c.GPUs == 0 {
		c.GPUs = 1
	}
	if c.LearnersPerGPU == 0 {
		c.LearnersPerGPU = 1
	}
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.Tau == 0 {
		c.Tau = 1
	}
	if c.Cost == (gpusim.CostModel{}) {
		c.Cost = gpusim.DefaultCostModel()
	}
	if c.Topo == (gpusim.Topology{}) {
		c.Topo = gpusim.DefaultTopology(c.GPUs)
	}
}

// Engine executes SMA iterations on the simulated server.
type Engine struct {
	cfg  Config
	sim  *gpusim.Sim
	spec *nn.ModelSpec
	plan *gpusim.LearningTaskPlan

	learnStreams [][]*gpusim.Stream // [gpu][learner]
	syncStreams  []*gpusim.Stream   // [gpu]
	copyStreams  []*gpusim.Stream   // [gpu] DMA engine

	// globalSyncDone[g] is the event fired when GPU g's view of the
	// central average model is consistent for the current iteration.
	globalSyncDone []*gpusim.Event

	// gate, when set, delays the next read of the average model until the
	// event fires — the hook the cluster plane uses to chain cross-server
	// average tasks after this server's global synchronisation.
	gate *gpusim.Event

	iter       int
	modelElems int64

	// Completions feeds the auto-tuner's throughput estimator.
	Completions *metrics.Throughput
}

// New builds an engine for the configuration.
func New(cfg Config) *Engine {
	cfg.fillDefaults()
	spec := nn.FullSpec(cfg.Model)
	sim := cfg.Sim
	if sim == nil {
		sim = gpusim.NewSim(cfg.GPUs, cfg.Cost.SMsPerDevice)
	}
	e := &Engine{
		cfg:         cfg,
		sim:         sim,
		spec:        spec,
		plan:        cfg.Cost.PlanLearningTask(spec, cfg.Batch),
		modelElems:  spec.ParamCount(),
		Completions: metrics.NewThroughput(2e6), // 2-second window (µs)
	}
	for g := 0; g < cfg.GPUs; g++ {
		dev := e.sim.Device(cfg.DeviceOffset + g)
		var ls []*gpusim.Stream
		for m := 0; m < cfg.LearnersPerGPU; m++ {
			ls = append(ls, dev.NewStream(fmt.Sprintf("gpu%d/learn%d", cfg.DeviceOffset+g, m)))
		}
		e.learnStreams = append(e.learnStreams, ls)
		e.syncStreams = append(e.syncStreams, dev.NewStream(fmt.Sprintf("gpu%d/sync", cfg.DeviceOffset+g)))
		e.copyStreams = append(e.copyStreams, dev.NewStream(fmt.Sprintf("gpu%d/copy", cfg.DeviceOffset+g)))
	}
	return e
}

// Sim exposes the underlying simulator (for utilisation inspection).
func (e *Engine) Sim() *gpusim.Sim { return e.sim }

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// K returns the total learner count.
func (e *Engine) K() int { return e.cfg.GPUs * e.cfg.LearnersPerGPU }

// modelBytes returns the model size in bytes (float32).
func (e *Engine) modelBytes() int64 { return e.modelElems * 4 }

// ScheduleIteration wires one SMA iteration's tasks (Figure 8):
//
//   - per learner: input-batch DMA, then the learning task's kernels on the
//     learner stream, then the local synchronisation task (difference with
//     the GPU-local average model + replica update) on the same stream,
//     gated on the previous iteration's global synchronisation;
//   - per GPU: the global synchronisation task on the sync stream — intra-
//     GPU aggregation once all local syncs complete, then the inter-GPU
//     ring all-reduce;
//   - learning tasks of the next iteration start right after their
//     learner's local sync (overlap), or after global sync when Overlap is
//     off.
//
// It reports whether the iteration included global synchronisation, so an
// outer plane (internal/cluster) can chain cross-server average tasks.
func (e *Engine) ScheduleIteration() bool {
	cfg := e.cfg
	e.iter++
	syncing := cfg.Tau != TauNever && e.iter%max(1, cfg.Tau) == 0

	prevGlobal := e.globalSyncDone
	// The cluster gate is consumed by whichever tasks next read the average
	// model: this iteration's learning tasks without overlap, this
	// iteration's local synchronisation with overlap (non-sync iterations
	// never read it, so the gate survives until the next sync).
	gate := e.gate
	if !cfg.Overlap || syncing {
		e.gate = nil
	}
	var localDone [][]*gpusim.Event
	batchBytes := e.spec.SampleBytes() * int64(cfg.Batch)

	for g := 0; g < cfg.GPUs; g++ {
		var dones []*gpusim.Event
		for _, st := range e.learnStreams[g] {
			// Input batch DMA on the copy engine, overlapped with compute
			// (§2.2); the learning task waits for its own batch only.
			inReady := e.sim.NewEvent()
			e.copyStreams[g].Kernel("h2d_batch", 1, e.cfg.Cost.TransferUS(batchBytes))
			e.copyStreams[g].Record(inReady)

			// Host-side dispatch cost of the task scheduler (§4.3).
			st.Kernel("dispatch", 1, cfg.Cost.SchedulerOverheadUS)
			st.Wait(inReady)
			if !cfg.Overlap {
				if prevGlobal != nil {
					st.Wait(prevGlobal[g])
				}
				if gate != nil {
					st.Wait(gate)
				}
			}
			gpusim.EnqueueLearningTask(st, e.plan)

			if syncing {
				// Local synchronisation task (Figure 8 b): reads the
				// GPU-local average model — consistent only after the
				// previous iteration's global sync (Figure 8 d) and, on a
				// cluster, after the cross-server average that follows it.
				if cfg.Overlap {
					if prevGlobal != nil {
						st.Wait(prevGlobal[g])
					}
					if gate != nil {
						st.Wait(gate)
					}
				}
				st.Kernel("local_diff", 2, cfg.Cost.VectorKernelUS(e.modelElems))
				st.Kernel("update_replica", 2, cfg.Cost.VectorKernelUS(e.modelElems))
				st.Kernel("sync_coordination", 1, cfg.Cost.SyncPerOpUS*float64(e.spec.NumOps()))
				done := e.sim.NewEvent()
				st.Record(done)
				dones = append(dones, done)
			}
			// Task-completion event to the task manager: the learning
			// task's batch is processed (feeds the throughput signal the
			// auto-tuner consumes, §4.4).
			b := cfg.Batch
			st.OnComplete(func(now float64) {
				e.Completions.Record(now, float64(b))
			})
		}
		localDone = append(localDone, dones)
	}

	if !syncing {
		e.globalSyncDone = nil
		return false
	}

	// Global synchronisation tasks (Figure 8 c): per GPU, aggregate the
	// local differences once all the GPU's local syncs are done, then the
	// GPUs jointly all-reduce; each GPU's average model becomes consistent
	// when its share of the ring completes.
	newGlobal := make([]*gpusim.Event, cfg.GPUs)
	// The ring cannot start before every GPU finished local aggregation:
	// collect per-GPU aggregation-done events and make every sync stream
	// wait on all of them.
	aggDone := make([]*gpusim.Event, cfg.GPUs)
	for g := 0; g < cfg.GPUs; g++ {
		ss := e.syncStreams[g]
		for _, ev := range localDone[g] {
			ss.Wait(ev)
		}
		ss.Kernel("intra_gpu_reduce", 2, cfg.Cost.VectorKernelUS(e.modelElems))
		aggDone[g] = e.sim.NewEvent()
		ss.Record(aggDone[g])
	}
	allReduce := e.cfg.Topo.AllReduceUS(e.modelBytes(), cfg.GPUs, cfg.Cost.TransferLatencyUS)
	for g := 0; g < cfg.GPUs; g++ {
		ss := e.syncStreams[g]
		for _, ev := range aggDone {
			ss.Wait(ev)
		}
		if allReduce > 0 {
			ss.Kernel("ring_allreduce", 1, allReduce)
		}
		ss.Kernel("update_avg_model", 2, cfg.Cost.VectorKernelUS(e.modelElems))
		newGlobal[g] = e.sim.NewEvent()
		ss.Record(newGlobal[g])
	}
	e.globalSyncDone = newGlobal
	return true
}

// GlobalSyncDone returns the per-GPU events of the most recently scheduled
// global synchronisation (nil when the last iteration did not synchronise).
// Each event fires when that GPU's view of the server's average model is
// consistent.
func (e *Engine) GlobalSyncDone() []*gpusim.Event { return e.globalSyncDone }

// Gate delays the next read of the average model — the next iteration's
// learning tasks without overlap, its local synchronisation tasks with
// overlap — until ev fires. The cluster plane gates each server on the
// completion of the cross-server average, mirroring at the server tier how
// learning tasks gate on the previous global synchronisation (Figure 8).
func (e *Engine) Gate(ev *gpusim.Event) { e.gate = ev }

// RunIterations schedules and executes n SMA iterations, returning the
// virtual time in microseconds from the engine's current clock to
// completion of all scheduled work.
func (e *Engine) RunIterations(n int) float64 {
	start := e.sim.Now()
	for i := 0; i < n; i++ {
		e.ScheduleIteration()
	}
	e.sim.Run()
	return e.sim.Now() - start
}

// Throughput runs n iterations and returns training throughput in images
// per second.
func (e *Engine) Throughput(n int) float64 {
	us := e.RunIterations(n)
	if us <= 0 {
		return 0
	}
	images := float64(n * e.K() * e.cfg.Batch)
	return images / (us / 1e6)
}

// EpochSeconds returns the virtual duration of one epoch over nSamples
// training samples at the engine's measured steady-state throughput,
// composing hardware time with the statistical plane's epoch counts.
func (e *Engine) EpochSeconds(nSamples int, measureIters int) float64 {
	tp := e.Throughput(measureIters)
	if tp <= 0 {
		return 0
	}
	return float64(nSamples) / tp
}
