package engine

import (
	"testing"

	"crossbow/internal/nn"
)

func TestEngineRunsIterations(t *testing.T) {
	e := New(Config{Model: nn.ResNet32, GPUs: 2, LearnersPerGPU: 2, Batch: 16, Overlap: true})
	us := e.RunIterations(5)
	if us <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if e.K() != 4 {
		t.Fatalf("K = %d", e.K())
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() float64 {
		e := New(Config{Model: nn.ResNet32, GPUs: 4, LearnersPerGPU: 2, Batch: 16, Overlap: true})
		return e.RunIterations(10)
	}
	if run() != run() {
		t.Fatal("engine must be deterministic")
	}
}

func TestOverlapBeatsBarrier(t *testing.T) {
	// Figure 8/§4.2: overlapping global sync with the next iteration's
	// learning tasks must not be slower than a global barrier.
	base := Config{Model: nn.ResNet32, GPUs: 4, LearnersPerGPU: 2, Batch: 16}
	withOverlap := base
	withOverlap.Overlap = true
	noOverlap := base
	noOverlap.Overlap = false
	tOn := New(withOverlap).RunIterations(20)
	tOff := New(noOverlap).RunIterations(20)
	if tOn > tOff {
		t.Fatalf("overlap (%v µs) slower than barrier (%v µs)", tOn, tOff)
	}
}

func TestMoreLearnersRaiseThroughputAtSmallBatch(t *testing.T) {
	// §3.3/Figure 12a: at small batch, one learner under-utilises a GPU;
	// adding learners raises throughput.
	t1 := New(Config{Model: nn.ResNet32, GPUs: 1, LearnersPerGPU: 1, Batch: 4, Overlap: true}).Throughput(30)
	t4 := New(Config{Model: nn.ResNet32, GPUs: 1, LearnersPerGPU: 4, Batch: 4, Overlap: true}).Throughput(30)
	if t4 <= t1*1.2 {
		t.Fatalf("m=4 throughput %v not clearly above m=1 %v", t4, t1)
	}
}

func TestLearnerThroughputSaturates(t *testing.T) {
	// Figure 14: throughput gains flatten (or reverse) once the GPU is
	// full — the auto-tuner's stopping signal.
	prev := 0.0
	gains := []float64{}
	for m := 1; m <= 8; m++ {
		tp := New(Config{Model: nn.ResNet32, GPUs: 1, LearnersPerGPU: m, Batch: 16, Overlap: true}).Throughput(20)
		if prev > 0 {
			gains = append(gains, tp/prev)
		}
		prev = tp
	}
	last := gains[len(gains)-1]
	first := gains[0]
	if last > first {
		t.Fatalf("throughput gain should shrink with m: first ratio %v, last %v", first, last)
	}
	if last > 1.10 {
		t.Fatalf("throughput still growing strongly at m=8 (ratio %v); expected saturation", last)
	}
}

func TestTauReducesSyncCost(t *testing.T) {
	// Figures 16/17: less frequent synchronisation raises throughput, but
	// only modestly — the sync implementation is off the critical path.
	cfgTau := func(tau int) Config {
		return Config{Model: nn.ResNet32, GPUs: 8, LearnersPerGPU: 1, Batch: 64, Overlap: true, Tau: tau}
	}
	t1 := New(cfgTau(1)).Throughput(40)
	t4 := New(cfgTau(4)).Throughput(40)
	tInf := New(cfgTau(TauNever)).Throughput(40)
	if !(t1 <= t4 && t4 <= tInf) {
		t.Fatalf("throughput should not decrease with τ: τ1=%v τ4=%v τ∞=%v", t1, t4, tInf)
	}
	if tInf > 2*t1 {
		t.Fatalf("no-sync throughput %v more than doubles τ=1 %v — sync too expensive", tInf, t1)
	}
}

func TestSSGDBaselineScalesWithConstantPerGPUBatch(t *testing.T) {
	// Figure 2: holding the per-GPU batch constant (aggregate grows with
	// g) gives near-linear speed-up.
	tp1 := NewSSGD(SSGDConfig{Model: nn.ResNet32, GPUs: 1, AggregateBatch: 128}).Throughput(20)
	tp8 := NewSSGD(SSGDConfig{Model: nn.ResNet32, GPUs: 8, AggregateBatch: 1024}).Throughput(20)
	speedup := tp8 / tp1
	if speedup < 4 {
		t.Fatalf("8-GPU speed-up with constant per-GPU batch = %.2f, want ≥ 4", speedup)
	}
}

func TestSSGDBaselinePoorScalingWithConstantAggregate(t *testing.T) {
	// Figure 2: a constant aggregate batch (per-GPU batch shrinks) scales
	// sub-linearly.
	tp1 := NewSSGD(SSGDConfig{Model: nn.ResNet32, GPUs: 1, AggregateBatch: 64}).Throughput(20)
	tp8 := NewSSGD(SSGDConfig{Model: nn.ResNet32, GPUs: 8, AggregateBatch: 64}).Throughput(20)
	speedup := tp8 / tp1
	constantPerGPU := NewSSGD(SSGDConfig{Model: nn.ResNet32, GPUs: 8, AggregateBatch: 512}).Throughput(20) /
		NewSSGD(SSGDConfig{Model: nn.ResNet32, GPUs: 1, AggregateBatch: 64}).Throughput(20)
	if speedup >= constantPerGPU {
		t.Fatalf("constant-aggregate speed-up %.2f should trail constant-per-GPU %.2f", speedup, constantPerGPU)
	}
}

func TestCrossbowBeatsBaselineDispatchOnSmallModels(t *testing.T) {
	// §5.2/Figure 10d: for LeNet (~1 ms tasks) the task engine's low
	// dispatch cost matters: Crossbow m=1 on one GPU beats the baseline.
	cb := New(Config{Model: nn.LeNet, GPUs: 1, LearnersPerGPU: 1, Batch: 4, Overlap: true}).Throughput(50)
	tf := NewSSGD(SSGDConfig{Model: nn.LeNet, GPUs: 1, AggregateBatch: 4}).Throughput(50)
	if cb <= tf {
		t.Fatalf("Crossbow LeNet throughput %v should beat baseline %v", cb, tf)
	}
}

func TestEpochSeconds(t *testing.T) {
	e := New(Config{Model: nn.ResNet32, GPUs: 8, LearnersPerGPU: 2, Batch: 16, Overlap: true})
	sec := e.EpochSeconds(50000, 20)
	if sec <= 0 {
		t.Fatal("epoch duration must be positive")
	}
}

func TestThroughputPositiveAllModels(t *testing.T) {
	for _, id := range nn.AllModels {
		tp := New(Config{Model: id, GPUs: 2, LearnersPerGPU: 2, Batch: 8, Overlap: true}).Throughput(5)
		if tp <= 0 {
			t.Fatalf("%s: throughput %v", id, tp)
		}
	}
}
