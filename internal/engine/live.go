package engine

import (
	"fmt"

	"crossbow/internal/gpusim"
	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// This file implements the *live* task engine of §4.1/§4.3: an explicit
// task scheduler and task manager operating over resource pools (model
// replicas, learner streams, input-batch slots). Unlike the iteration-
// batched Engine, the live engine makes scheduling decisions as tasks
// complete: the task manager returns a replica and stream to the pool, and
// the scheduler immediately assigns the next input batch first-come,
// first-served — the policy the paper credits for higher hardware
// efficiency than the round-robin assignment of TensorFlow/PyTorch.
//
// The components run inside the simulator's event loop (completion
// callbacks play the role of the task manager's handler threads), keeping
// the execution deterministic while preserving the paper's structure.

// SchedPolicy selects how the task scheduler binds input batches to model
// replicas.
type SchedPolicy int

// Scheduling policies (§4.3).
const (
	// FCFS assigns the next batch to whichever replica becomes available
	// first (Crossbow's policy).
	FCFS SchedPolicy = iota
	// RoundRobin pre-assigns batch i to replica i mod k, so a slow
	// replica stalls its share of the queue (the baseline policy).
	RoundRobin
)

func (p SchedPolicy) String() string {
	if p == FCFS {
		return "fcfs"
	}
	return "round-robin"
}

// LiveConfig configures a live-engine run.
type LiveConfig struct {
	Model          nn.ModelID
	GPUs           int
	LearnersPerGPU int
	Batch          int
	// Batches is the total number of input batches to process.
	Batches int
	// Policy selects the scheduler's batch-to-replica binding.
	Policy SchedPolicy
	// JitterPct adds deterministic per-task duration noise (0.2 = ±20%):
	// data-dependent kernels, augmentation cost and PCIe contention make
	// real learning tasks non-uniform, which is what separates FCFS from
	// round-robin.
	JitterPct float64
	// Seed drives the jitter.
	Seed uint64
	Cost gpusim.CostModel
}

func (c *LiveConfig) fillDefaults() {
	if c.GPUs == 0 {
		c.GPUs = 1
	}
	if c.LearnersPerGPU == 0 {
		c.LearnersPerGPU = 1
	}
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.Batches == 0 {
		c.Batches = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Cost == (gpusim.CostModel{}) {
		c.Cost = gpusim.DefaultCostModel()
	}
}

// replica is a pooled model replica bound to its learner stream.
type replica struct {
	id     int
	gpu    int
	stream *gpusim.Stream
	// tasksDone counts learning tasks this replica processed.
	tasksDone int
}

// LiveStats reports a live-engine run.
type LiveStats struct {
	// MakespanUS is the virtual time to drain the batch queue.
	MakespanUS float64
	// ThroughputImgSec is Batches×Batch over the makespan.
	ThroughputImgSec float64
	// TasksPerReplica records load balance; under FCFS with jitter the
	// counts differ (fast replicas take more), under round-robin they are
	// equal by construction.
	TasksPerReplica []int
	// IdleWaits counts scheduler decisions where the policy forced a
	// ready batch to wait for a specific busy replica.
	IdleWaits int
}

// liveEngine wires scheduler, manager and pools.
type liveEngine struct {
	cfg      LiveConfig
	sim      *gpusim.Sim
	replicas []*replica
	freePool []*replica // task manager returns replicas here (§4.1 step 4)
	plan     *gpusim.LearningTaskPlan
	rng      *tensor.RNG

	nextBatch int // next batch index to assign
	inFlight  int
	stats     LiveStats
}

// RunLive processes cfg.Batches learning tasks under the configured
// scheduling policy and returns the run statistics.
func RunLive(cfg LiveConfig) LiveStats {
	cfg.fillDefaults()
	spec := nn.FullSpec(cfg.Model)
	e := &liveEngine{
		cfg:  cfg,
		sim:  gpusim.NewSim(cfg.GPUs, cfg.Cost.SMsPerDevice),
		plan: cfg.Cost.PlanLearningTask(spec, cfg.Batch),
		rng:  tensor.NewRNG(cfg.Seed),
	}
	id := 0
	for g := 0; g < cfg.GPUs; g++ {
		dev := e.sim.Device(g)
		for m := 0; m < cfg.LearnersPerGPU; m++ {
			r := &replica{
				id: id, gpu: g,
				stream: dev.NewStream(fmt.Sprintf("gpu%d/learner%d", g, m)),
			}
			e.replicas = append(e.replicas, r)
			e.freePool = append(e.freePool, r)
			id++
		}
	}
	// Initial scheduling wave: one task per replica (§4.3: "the task
	// scheduler schedules one learning task for each model replica in the
	// pool").
	e.schedule()
	e.sim.Run()
	e.stats.MakespanUS = e.sim.Now()
	if e.stats.MakespanUS > 0 {
		images := float64(cfg.Batches * cfg.Batch)
		e.stats.ThroughputImgSec = images / (e.stats.MakespanUS / 1e6)
	}
	for _, r := range e.replicas {
		e.stats.TasksPerReplica = append(e.stats.TasksPerReplica, r.tasksDone)
	}
	return e.stats
}

// schedule drains the free pool, binding batches to replicas per policy.
func (e *liveEngine) schedule() {
	for e.nextBatch < e.cfg.Batches && len(e.freePool) > 0 {
		var r *replica
		switch e.cfg.Policy {
		case FCFS:
			// Any free replica takes the next batch; pool order is
			// completion order, i.e. first-come, first-served.
			r = e.freePool[0]
			e.freePool = e.freePool[1:]
		case RoundRobin:
			// Batch i is bound to replica i mod k; if that replica is
			// busy, the queue head waits even though others are free.
			want := e.nextBatch % len(e.replicas)
			idx := -1
			for i, fr := range e.freePool {
				if fr.id == want {
					idx = i
					break
				}
			}
			if idx < 0 {
				e.stats.IdleWaits++
				return // head-of-line blocking until `want` completes
			}
			r = e.freePool[idx]
			e.freePool = append(e.freePool[:idx], e.freePool[idx+1:]...)
		}
		e.issue(r, e.nextBatch)
		e.nextBatch++
		e.inFlight++
	}
}

// issue enqueues one learning task (plus its local synchronisation) on the
// replica's stream and registers the task-manager completion handler.
func (e *liveEngine) issue(r *replica, batchIdx int) {
	// Deterministic per-task jitter (hash of seed, replica, batch).
	jit := 1.0
	if e.cfg.JitterPct > 0 {
		h := tensor.NewRNG(e.cfg.Seed ^ (uint64(batchIdx+1) * 0x9e37) ^ (uint64(r.id+1) << 32))
		jit = 1 + e.cfg.JitterPct*(2*h.Float64()-1)
	}
	r.stream.Kernel("dispatch", 1, e.cfg.Cost.SchedulerOverheadUS)
	for _, k := range e.plan.Kernels {
		r.stream.Kernel(k.Name, k.SMs, k.DurUS*jit)
	}
	// Local synchronisation on the same stream (Figure 8 b).
	modelElems := nn.FullSpec(e.cfg.Model).ParamCount()
	r.stream.Kernel("local_sync", 2, e.cfg.Cost.VectorKernelUS(modelElems))
	r.stream.OnComplete(func(now float64) {
		// Task manager (§4.1 step 4): return the replica and stream to
		// the pool, free the input slot, and let the scheduler run.
		r.tasksDone++
		e.inFlight--
		e.freePool = append(e.freePool, r)
		e.schedule()
	})
}
