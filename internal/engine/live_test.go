package engine

import (
	"testing"

	"crossbow/internal/nn"
)

func TestLiveProcessesAllBatches(t *testing.T) {
	st := RunLive(LiveConfig{
		Model: nn.ResNet32, GPUs: 2, LearnersPerGPU: 2, Batch: 16, Batches: 40,
	})
	total := 0
	for _, n := range st.TasksPerReplica {
		total += n
	}
	if total != 40 {
		t.Fatalf("processed %d tasks, want 40", total)
	}
	if st.MakespanUS <= 0 || st.ThroughputImgSec <= 0 {
		t.Fatalf("bad stats: %+v", st)
	}
}

func TestLiveDeterministic(t *testing.T) {
	cfg := LiveConfig{
		Model: nn.ResNet32, GPUs: 2, LearnersPerGPU: 2, Batch: 16,
		Batches: 30, JitterPct: 0.3, Seed: 5,
	}
	a := RunLive(cfg)
	b := RunLive(cfg)
	if a.MakespanUS != b.MakespanUS {
		t.Fatalf("nondeterministic makespan: %v vs %v", a.MakespanUS, b.MakespanUS)
	}
}

func TestRoundRobinBalancesTasksExactly(t *testing.T) {
	st := RunLive(LiveConfig{
		Model: nn.ResNet32, GPUs: 1, LearnersPerGPU: 4, Batch: 16,
		Batches: 32, Policy: RoundRobin, JitterPct: 0.4,
	})
	for i, n := range st.TasksPerReplica {
		if n != 8 {
			t.Fatalf("replica %d did %d tasks, want 8 under round-robin", i, n)
		}
	}
}

func TestFCFSBalancesLoadNotCounts(t *testing.T) {
	st := RunLive(LiveConfig{
		Model: nn.ResNet32, GPUs: 1, LearnersPerGPU: 4, Batch: 16,
		Batches: 64, Policy: FCFS, JitterPct: 0.4,
	})
	uneven := false
	for _, n := range st.TasksPerReplica {
		if n != 16 {
			uneven = true
		}
	}
	if !uneven {
		t.Log("FCFS distributed tasks evenly despite jitter (acceptable but unusual)")
	}
	total := 0
	for _, n := range st.TasksPerReplica {
		total += n
	}
	if total != 64 {
		t.Fatalf("processed %d of 64", total)
	}
}

func TestFCFSBeatsRoundRobinUnderJitter(t *testing.T) {
	// §4.3: compared to round-robin scheduling, FCFS improves hardware
	// efficiency because the scheduler never waits for a specific replica.
	base := LiveConfig{
		Model: nn.ResNet32, GPUs: 2, LearnersPerGPU: 4, Batch: 16,
		Batches: 96, JitterPct: 0.5, Seed: 3,
	}
	f := base
	f.Policy = FCFS
	r := base
	r.Policy = RoundRobin
	fs := RunLive(f)
	rs := RunLive(r)
	if fs.MakespanUS > rs.MakespanUS {
		t.Fatalf("FCFS makespan %v worse than round-robin %v", fs.MakespanUS, rs.MakespanUS)
	}
	if rs.IdleWaits == 0 {
		t.Fatal("round-robin under jitter should exhibit head-of-line blocking")
	}
	if fs.IdleWaits != 0 {
		t.Fatalf("FCFS recorded %d idle waits", fs.IdleWaits)
	}
}

func TestPoliciesEquivalentWithoutJitter(t *testing.T) {
	// With uniform task durations the two policies schedule identically
	// up to replica identity, so makespans match.
	base := LiveConfig{
		Model: nn.LeNet, GPUs: 1, LearnersPerGPU: 2, Batch: 8, Batches: 20,
	}
	f := base
	f.Policy = FCFS
	r := base
	r.Policy = RoundRobin
	fm, rm := RunLive(f).MakespanUS, RunLive(r).MakespanUS
	ratio := fm / rm
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("uniform-duration makespans diverge: %v vs %v", fm, rm)
	}
}
