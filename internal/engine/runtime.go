package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"crossbow/internal/data"
)

// This file implements the *wall-clock* task runtime: the live engine's
// architecture (a pool of learner workers bound to model replicas, a task
// manager that reacts to completions, batches staged by the §4.5 data
// pre-processors) executing real forward/backward passes on the blocked
// kernels instead of simulated costs. The structure mirrors live.go — the
// timing simulator remains the design oracle — but here scheduling decisions
// play out in real time on real hardware.
//
// Two scheduling modes (§4.3):
//
//   - Lockstep: every iteration binds batch i·k+j to learner j, joins all k
//     tasks behind a barrier, and runs the optimiser step single-threaded.
//     These are the pre-runtime trainer's semantics, kept as the
//     bit-deterministic oracle: for a fixed config the whole trajectory is
//     reproducible bit for bit at any worker count.
//
//   - FCFS: barrier-free. Learners pull whichever staged batch becomes
//     available first (the binding is first-come, first-served and recorded
//     in an assignment log), run ahead of the central average model by up to
//     τ iterations, and synchronise through per-learner contributions that
//     the round applier folds in learner-index order. Floating-point
//     accumulation order therefore depends only on the assignment log: a
//     run is reproducible given the log, and the log is the only
//     timing-dependent artefact.
//
// The runtime deliberately contains no optimiser math: the driver
// (internal/core) supplies closures for the forward/backward task, the
// lockstep optimiser step, and the FCFS contribution/application halves.
// This keeps the engine layer a pure scheduler, like the simulator.

// Mode selects the runtime's scheduling discipline.
type Mode string

// Runtime scheduling modes.
const (
	// ModeLockstep joins all learners every iteration (oracle semantics).
	ModeLockstep Mode = "lockstep"
	// ModeFCFS lets learners run barrier-free with FCFS batch binding.
	ModeFCFS Mode = "fcfs"
)

// RuntimeConfig wires a Runtime to its driver.
type RuntimeConfig struct {
	// Learners is the replica-pool size k.
	Learners int
	// Tau is the synchronisation period in iterations (≥ 1).
	Tau int
	// Mode selects Lockstep or FCFS scheduling.
	Mode Mode
	// Pipeline stages input batches (owned by the driver; the runtime never
	// closes it).
	Pipeline *data.Pipeline
	// Task runs learner j's forward/backward pass over a staged batch and
	// returns the loss. It must leave the gradient wherever the sync
	// closures below expect it; the runtime only schedules.
	Task func(j int, s *data.Slot) float64
	// AcquireTask, if set, runs on the learner's worker goroutine
	// immediately before each learning task: the driver uses it to check
	// learner j's planned task buffers out of the shared §4.5 pool
	// (memplan.OnlinePlanner) and attach them to the learner's network.
	// ReleaseTask returns them right after the task, before any
	// synchronisation work, so parked or waiting learners never hold task
	// memory — which is what lets the pool's footprint track actual
	// concurrency instead of learner count.
	AcquireTask func(j int)
	ReleaseTask func(j int)
	// Step applies the optimiser across all learners after a joined
	// iteration (Lockstep mode only).
	Step func()
	// Contribute is learner j's τ-boundary update (FCFS mode only): it
	// must compute the learner's correction against the central average
	// model AND apply the iteration's gradient step (drivers fuse the two
	// into one pass over the replica; the runtime does not call LocalStep
	// on boundary iterations). The runtime guarantees the average model is
	// stable for the duration of the call.
	Contribute func(j int)
	// Apply folds all k contributions of a round into the central average
	// model (FCFS mode only). Called exactly once per round, in a critical
	// section, after every learner's Contribute for that round returned;
	// implementations must fold in learner-index order for reproducibility.
	Apply func()
	// LocalStep applies learner j's gradient to its own replica on
	// non-boundary iterations (FCFS mode only; in Lockstep mode Step
	// covers it, and on boundary iterations Contribute does).
	LocalStep func(j int)
	// Publish, if set, runs once per synchronisation round, immediately
	// after the round is folded into the central average model and at a
	// point where the model is guaranteed stable: in lockstep mode on the
	// main goroutine right after a τ-boundary Step (every learner is parked
	// at the barrier), in FCFS mode on the round-completing learner's
	// goroutine after Apply and *before* the round is published — no
	// learner can contribute to the next round until Publish returns, so a
	// driver may snapshot the average model without tearing. round counts
	// folded rounds, 1-based. Keep the body short (a version check and, on
	// publication rounds, one model copy): in FCFS mode it delays learners
	// parked at the round gate.
	Publish func(round int)
	// FirstSeq and Held resume consumption of a pipeline a predecessor
	// runtime already drew from (an online-autotuning resize): FirstSeq is
	// the predecessor's next sequence number and Held its still-checked-out
	// out-of-order slots. Both come from Handoff; zero values mean a fresh
	// pipeline.
	FirstSeq int
	Held     map[int]*data.Slot
}

// RuntimeStats describes one runtime's execution so far.
type RuntimeStats struct {
	// Rounds is the number of synchronisation rounds applied to the
	// central average model.
	Rounds int
	// RoundWaits counts contributions that had to block for a straggler's
	// previous round (FCFS; a lockstep iteration always joins, so the
	// counter stays zero there).
	RoundWaits int
	// MaxLeadIters is the largest observed lead, in iterations, of a
	// learner over the last applied round boundary (FCFS run-ahead; at most
	// 2τ by construction).
	MaxLeadIters int
	// Tasks counts learning tasks executed per learner.
	Tasks []int
}

// Runtime executes learning tasks over a replica pool of worker goroutines.
type Runtime struct {
	cfg  RuntimeConfig
	k    int
	tau  int
	work []chan func()
	done chan struct{}
	wg   sync.WaitGroup

	// Epoch-scoped loss accounting. Lockstep folds on the main goroutine;
	// FCFS folds per learner and sums in index order at the join.
	epochLoss float64
	epochN    int
	lossSum   []float64
	lossN     []int
	losses    []float64

	// Lockstep reorder buffer: staged slots held until their turn in the
	// batcher's draw sequence. taskFns are the per-learner dispatch
	// closures, built once so the per-iteration hot loop allocates nothing.
	held    map[int]*data.Slot
	nextSeq int
	slots   []*data.Slot
	taskFns []func()

	// FCFS round state. zRound is the number of rounds folded into the
	// central average model (its version); contrib counts contributions to
	// the in-flight round. Both are atomics so the common case — the round
	// a learner wants is already published — costs one load and one add;
	// the mutex/cond pair only backs the slow path where a learner is a
	// full round ahead of a straggler and must park.
	mu      sync.Mutex
	cond    *sync.Cond
	zRound  atomic.Int64
	contrib atomic.Int64

	// iters[j] is learner j's lifetime iteration count; seqLog[j] the
	// sequence numbers of the batches it consumed, in consumption order.
	// Together they are the assignment log.
	iters  []int
	seqLog [][]int

	stats RuntimeStats
}

// NewRuntime validates cfg, builds the replica pool, and starts its worker
// goroutines. Callers must Close the runtime when done.
func NewRuntime(cfg RuntimeConfig) *Runtime {
	if cfg.Learners < 1 {
		panic("engine: Runtime needs at least one learner")
	}
	if cfg.Tau < 1 {
		cfg.Tau = 1
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeLockstep
	}
	if cfg.Pipeline == nil || cfg.Task == nil {
		panic("engine: Runtime needs a pipeline and a task")
	}
	switch cfg.Mode {
	case ModeLockstep:
		if cfg.Step == nil {
			panic("engine: lockstep mode needs a Step closure")
		}
	case ModeFCFS:
		if cfg.Contribute == nil || cfg.Apply == nil || cfg.LocalStep == nil {
			panic("engine: fcfs mode needs Contribute, Apply and LocalStep closures")
		}
	default:
		panic(fmt.Sprintf("engine: unknown runtime mode %q", cfg.Mode))
	}
	k := cfg.Learners
	r := &Runtime{
		cfg:     cfg,
		k:       k,
		tau:     cfg.Tau,
		work:    make([]chan func(), k),
		done:    make(chan struct{}, k),
		lossSum: make([]float64, k),
		lossN:   make([]int, k),
		losses:  make([]float64, k),
		held:    cfg.Held,
		nextSeq: cfg.FirstSeq,
		slots:   make([]*data.Slot, k),
		iters:   make([]int, k),
		seqLog:  make([][]int, k),
	}
	if r.held == nil {
		r.held = make(map[int]*data.Slot)
	}
	r.cond = sync.NewCond(&r.mu)
	r.stats.Tasks = make([]int, k)
	r.taskFns = make([]func(), k)
	for j := 0; j < k; j++ {
		j := j
		r.taskFns[j] = func() {
			r.losses[j] = r.runTask(j, r.slots[j])
			r.done <- struct{}{}
		}
	}
	for j := 0; j < k; j++ {
		r.work[j] = make(chan func())
		r.wg.Add(1)
		go func(ch chan func()) {
			defer r.wg.Done()
			for fn := range ch {
				fn()
			}
		}(r.work[j])
	}
	return r
}

// Close retires the replica pool. The pipeline stays with the driver.
func (r *Runtime) Close() {
	for _, ch := range r.work {
		close(ch)
	}
	r.wg.Wait()
}

// RunEpoch executes iters iterations per learner under the configured mode
// and blocks until every learner has finished them. On return all completed
// rounds are folded into the central model and no task is in flight, so the
// driver may evaluate, adapt hyper-parameters, or resize.
func (r *Runtime) RunEpoch(iters int) {
	if r.cfg.Mode == ModeLockstep {
		r.lockstepEpoch(iters)
		return
	}
	for j := 0; j < r.k; j++ {
		j := j
		r.work[j] <- func() {
			r.fcfsEpoch(j, iters)
			r.done <- struct{}{}
		}
	}
	for j := 0; j < r.k; j++ {
		<-r.done
	}
	// Fold per-learner losses in index order so the epoch loss depends only
	// on the assignment log.
	for j := 0; j < r.k; j++ {
		r.epochLoss += r.lossSum[j]
		r.epochN += r.lossN[j]
		r.lossSum[j], r.lossN[j] = 0, 0
	}
}

// TakeEpochLoss returns the loss sum and task count accumulated since the
// previous call, and resets them.
func (r *Runtime) TakeEpochLoss() (sum float64, n int) {
	sum, n = r.epochLoss, r.epochN
	r.epochLoss, r.epochN = 0, 0
	return sum, n
}

// Stats returns a snapshot of the runtime's execution statistics. Call at
// quiescence (no RunEpoch in flight).
func (r *Runtime) Stats() RuntimeStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Tasks = append([]int(nil), r.stats.Tasks...)
	// A fast-path contribution (no park) runs exactly τ iterations ahead of
	// the model it corrects against; parked ones ran 2τ ahead.
	if s.Rounds > 0 && s.MaxLeadIters < r.tau && r.cfg.Mode == ModeFCFS {
		s.MaxLeadIters = r.tau
	}
	return s
}

// NextSeq returns the next staged-batch sequence number this runtime
// would consume. In lockstep mode that is the reorder buffer's position;
// in FCFS mode learners race for slots directly, so the position is the
// total task count plus FirstSeq.
func (r *Runtime) NextSeq() int {
	if r.cfg.Mode == ModeLockstep {
		return r.nextSeq
	}
	n := r.cfg.FirstSeq
	for _, t := range r.stats.Tasks {
		n += t
	}
	return n
}

// Handoff surrenders the runtime's pipeline position and any out-of-order
// staged slots its reorder buffer still holds, for transfer (as FirstSeq/
// Held) to a successor runtime over the same pipeline. Call at quiescence,
// before Close — without the transfer, held slots would never return to
// the pipeline and the successor would wait forever for their sequence
// numbers.
func (r *Runtime) Handoff() (firstSeq int, held map[int]*data.Slot) {
	held, r.held = r.held, make(map[int]*data.Slot)
	return r.NextSeq(), held
}

// SeqLog returns, per learner, the staged-batch sequence numbers it
// consumed, in consumption order: the assignment log that makes an FCFS run
// replayable. The returned slices are copies.
func (r *Runtime) SeqLog() [][]int {
	out := make([][]int, r.k)
	for j := range out {
		out[j] = append([]int(nil), r.seqLog[j]...)
	}
	return out
}

// lockstepEpoch is the oracle schedule: bind batches in draw order, join,
// step.
func (r *Runtime) lockstepEpoch(iters int) {
	for it := 0; it < iters; it++ {
		for j := 0; j < r.k; j++ {
			r.slots[j] = r.nextOrdered()
			r.seqLog[j] = append(r.seqLog[j], r.slots[j].Seq)
		}
		for j := 0; j < r.k; j++ {
			r.work[j] <- r.taskFns[j]
		}
		for j := 0; j < r.k; j++ {
			<-r.done
		}
		for j := 0; j < r.k; j++ {
			r.cfg.Pipeline.Release(r.slots[j])
			r.epochLoss += r.losses[j]
			r.stats.Tasks[j]++
			r.iters[j]++
		}
		r.epochN += r.k
		r.cfg.Step()
		if r.iters[0]%r.tau == 0 {
			r.stats.Rounds++
			if r.cfg.Publish != nil {
				r.cfg.Publish(r.stats.Rounds)
			}
		}
	}
}

// runTask brackets one learning task with the driver's buffer-pool hooks:
// planned task memory is checked out for exactly the task's duration, on the
// worker goroutine, in both scheduling modes.
func (r *Runtime) runTask(j int, s *data.Slot) float64 {
	if r.cfg.AcquireTask != nil {
		r.cfg.AcquireTask(j)
	}
	loss := r.cfg.Task(j, s)
	if r.cfg.ReleaseTask != nil {
		r.cfg.ReleaseTask(j)
	}
	return loss
}

// nextOrdered returns staged slots in draw-sequence order, holding
// out-of-order arrivals until their turn.
func (r *Runtime) nextOrdered() *data.Slot {
	if s, ok := r.held[r.nextSeq]; ok {
		delete(r.held, r.nextSeq)
		r.nextSeq++
		return s
	}
	for {
		s, ok := r.cfg.Pipeline.Acquire()
		if !ok {
			panic("engine: pipeline closed during epoch")
		}
		if s.Seq == r.nextSeq {
			r.nextSeq++
			return s
		}
		r.held[s.Seq] = s
	}
}

// fcfsEpoch is learner j's barrier-free epoch: pull the next staged batch
// first-come-first-served, compute, contribute at τ-boundaries, step.
func (r *Runtime) fcfsEpoch(j, iters int) {
	for t := 0; t < iters; t++ {
		s, ok := r.cfg.Pipeline.Acquire()
		if !ok {
			panic("engine: pipeline closed during epoch")
		}
		r.seqLog[j] = append(r.seqLog[j], s.Seq)
		loss := r.runTask(j, s)
		r.cfg.Pipeline.Release(s)
		r.lossSum[j] += loss
		r.lossN[j]++
		i := r.iters[j] + 1
		if i%r.tau == 0 {
			// The τ-boundary exchange of Alg 1: correction (computed on
			// the replica as it stood at iteration start) fused with the
			// gradient step.
			r.contribute(j, i/r.tau-1)
		} else {
			r.cfg.LocalStep(j)
		}
		r.iters[j] = i
		r.stats.Tasks[j]++
	}
}

// contribute is the task-manager half of FCFS synchronisation: learner j
// deposits its round-c correction, and whichever learner completes a round
// folds it into the central model — in learner-index order via Apply — and
// wakes the pool. Learners park here only when a straggler is still a full
// round behind; the happens-before chain (atomic add by every contributor
// → the completing add observed by the applier → atomic round publish
// observed by the next round's contributors) keeps the average model
// race-free without a lock on the fast path.
func (r *Runtime) contribute(j, c int) {
	if r.zRound.Load() != int64(c) {
		r.waitRound(c)
	}
	// The central model is stable here: every learner of round c has passed
	// the gate above, and the round-c apply runs only after all k
	// contributions below.
	r.cfg.Contribute(j)
	if r.contrib.Add(1) == int64(r.k) {
		r.contrib.Store(0)
		r.cfg.Apply()
		r.stats.Rounds++
		// The snapshot window: round c is folded, round c+1 is not yet
		// open (its contributors are gated on the store below), so the
		// central model is stable for the duration of the hook.
		if r.cfg.Publish != nil {
			r.cfg.Publish(c + 1)
		}
		r.mu.Lock()
		r.zRound.Store(int64(c + 1))
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

// waitRound parks learner j until round c's predecessor is folded.
func (r *Runtime) waitRound(c int) {
	r.mu.Lock()
	r.stats.RoundWaits++
	if lead := 2 * r.tau; lead > r.stats.MaxLeadIters {
		r.stats.MaxLeadIters = lead // waiting ⇒ a full round ahead
	}
	for r.zRound.Load() != int64(c) {
		r.cond.Wait()
	}
	r.mu.Unlock()
}
