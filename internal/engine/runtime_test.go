package engine

import (
	"testing"

	"crossbow/internal/data"
)

func runtimeDataset(t *testing.T) *data.Dataset {
	t.Helper()
	tr, _ := data.Synthesize(data.SynthConfig{
		Shape: []int{2, 4, 4}, Classes: 4, Train: 64, Test: 8, Seed: 5,
	})
	return tr
}

// TestRuntimeLockstepOrdering: the oracle mode binds batch i·k+j to learner
// j in draw order, joins every iteration, and steps once per iteration.
func TestRuntimeLockstepOrdering(t *testing.T) {
	ds := runtimeDataset(t)
	p := data.NewPipeline(ds, data.PipelineConfig{Batch: 4, Slots: 6, Workers: 2, Seed: 11})
	defer p.Close()

	const k, iters, tau = 3, 10, 2
	steps := 0
	rt := NewRuntime(RuntimeConfig{
		Learners: k, Tau: tau, Mode: ModeLockstep, Pipeline: p,
		Task: func(j int, s *data.Slot) float64 { return float64(s.Seq) },
		Step: func() { steps++ },
	})
	defer rt.Close()

	rt.RunEpoch(iters)
	if steps != iters {
		t.Fatalf("Step called %d times, want %d", steps, iters)
	}
	log := rt.SeqLog()
	for j := 0; j < k; j++ {
		if len(log[j]) != iters {
			t.Fatalf("learner %d consumed %d batches, want %d", j, len(log[j]), iters)
		}
		for it, seq := range log[j] {
			if want := it*k + j; seq != want {
				t.Fatalf("learner %d iteration %d got seq %d, want %d", j, it, seq, want)
			}
		}
	}
	// Loss fold order is learner-index order within each iteration: the sum
	// of seq values of all consumed batches.
	sum, n := rt.TakeEpochLoss()
	wantSum := float64(iters * k * (iters*k - 1) / 2)
	if sum != wantSum || n != iters*k {
		t.Fatalf("epoch loss (%v, %d), want (%v, %d)", sum, n, wantSum, iters*k)
	}
	st := rt.Stats()
	if st.Rounds != iters/tau {
		t.Fatalf("rounds %d, want %d", st.Rounds, iters/tau)
	}
}

// TestRuntimeFCFSRounds: barrier-free mode consumes every staged batch
// exactly once, gives every learner the same iteration count, folds every
// complete round exactly once with all contributions in, and bounds
// run-ahead by 2τ.
func TestRuntimeFCFSRounds(t *testing.T) {
	ds := runtimeDataset(t)
	p := data.NewPipeline(ds, data.PipelineConfig{Batch: 4, Slots: 8, Workers: 2, Seed: 11})
	defer p.Close()

	const k, iters, tau = 4, 25, 3
	contribs := make([]int, k)
	applies := 0
	rt := NewRuntime(RuntimeConfig{
		Learners: k, Tau: tau, Mode: ModeFCFS, Pipeline: p,
		Task:      func(j int, s *data.Slot) float64 { return 1 },
		LocalStep: func(j int) {},
		Contribute: func(j int) {
			contribs[j]++ // only safe because Apply gates rounds
		},
		Apply: func() {
			applies++
			for j := 1; j < k; j++ {
				if contribs[j] != contribs[0] {
					t.Errorf("apply %d: contribution counts diverge: %v", applies, contribs)
				}
				if contribs[0] != applies {
					t.Errorf("apply %d ran with %d contributions", applies, contribs[0])
				}
			}
		},
	})
	defer rt.Close()

	// Two "epochs" whose boundary falls mid-round (25 % 3 != 0): rounds
	// must carry across the join.
	rt.RunEpoch(iters)
	if sum, n := rt.TakeEpochLoss(); sum != float64(k*iters) || n != k*iters {
		t.Fatalf("first epoch loss (%v, %d), want (%d, %d)", sum, n, k*iters, k*iters)
	}
	rt.RunEpoch(iters)

	totalIters := 2 * iters
	wantRounds := totalIters / tau
	st := rt.Stats()
	if applies != wantRounds || st.Rounds != wantRounds {
		t.Fatalf("applies %d stats.Rounds %d, want %d", applies, st.Rounds, wantRounds)
	}
	if st.MaxLeadIters > 2*tau {
		t.Fatalf("run-ahead %d exceeds 2τ=%d", st.MaxLeadIters, 2*tau)
	}
	seen := map[int]int{}
	log := rt.SeqLog()
	for j := 0; j < k; j++ {
		if len(log[j]) != totalIters {
			t.Fatalf("learner %d consumed %d batches, want %d", j, len(log[j]), totalIters)
		}
		for _, seq := range log[j] {
			seen[seq]++
		}
	}
	for seq, c := range seen {
		if c != 1 {
			t.Fatalf("seq %d consumed %d times", seq, c)
		}
	}
	if len(seen) != k*totalIters {
		t.Fatalf("consumed %d distinct batches, want %d", len(seen), k*totalIters)
	}
	if sum, n := rt.TakeEpochLoss(); sum != float64(k*iters) || n != k*iters {
		t.Fatalf("second epoch loss (%v, %d), want (%d, %d)", sum, n, k*iters, k*iters)
	}
}

// TestRuntimeFCFSOrderedApply: the central model update is applied by
// exactly one goroutine per round while no contribution is concurrent, so a
// driver folding corrections in learner-index order gets a result that
// depends only on the assignment log. The test shuttles a shared counter
// through Contribute/Apply in a way the race detector would flag if the
// runtime's critical sections overlapped.
func TestRuntimeFCFSOrderedApply(t *testing.T) {
	ds := runtimeDataset(t)
	p := data.NewPipeline(ds, data.PipelineConfig{Batch: 4, Slots: 8, Workers: 3, Seed: 3})
	defer p.Close()

	const k, iters, tau = 3, 30, 1
	// z is deliberately unsynchronised: the runtime's contract (stable
	// central model during Contribute, exclusive Apply) is what keeps the
	// race detector quiet.
	z := 0
	pending := make([]int, k)
	rt := NewRuntime(RuntimeConfig{
		Learners: k, Tau: tau, Mode: ModeFCFS, Pipeline: p,
		Task:       func(j int, s *data.Slot) float64 { return 0 },
		LocalStep:  func(j int) {},
		Contribute: func(j int) { pending[j] = z + 1 },
		Apply: func() {
			for j := 0; j < k; j++ {
				z += pending[j] - z // index-ordered fold
			}
		},
	})
	defer rt.Close()
	rt.RunEpoch(iters)
	if z != iters {
		t.Fatalf("z = %d after %d rounds, want %d", z, iters, iters)
	}
}
