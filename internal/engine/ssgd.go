package engine

import (
	"fmt"

	"crossbow/internal/gpusim"
	"crossbow/internal/nn"
)

// SSGDEngine simulates the TensorFlow-style baseline (§2.3, Figure 1): one
// model replica per GPU, the aggregate batch partitioned across GPUs, a
// gradient all-reduce with a global barrier before every model update, and
// the heavier host-side dispatch of a general dataflow engine.
type SSGDEngine struct {
	cfg  SSGDConfig
	sim  *gpusim.Sim
	spec *nn.ModelSpec
	plan *gpusim.LearningTaskPlan

	streams []*gpusim.Stream
	copies  []*gpusim.Stream
	barrier []*gpusim.Event // previous iteration's update-done per GPU
}

// SSGDConfig configures the baseline simulation.
type SSGDConfig struct {
	Model nn.ModelID
	GPUs  int
	// AggregateBatch is the total batch per iteration, partitioned
	// equally across GPUs (Figure 2's parameter).
	AggregateBatch int
	// DispatchOverheadUS is the per-iteration host-side cost of the
	// baseline's dataflow dispatch. TensorFlow's per-step session overhead
	// is in the high hundreds of microseconds — the effect behind the
	// paper's LeNet result (§5.2), where ~1 ms learning tasks leave the
	// scheduler on the critical path. Zero selects the default.
	DispatchOverheadUS float64
	Cost               gpusim.CostModel
	Topo               gpusim.Topology
}

// DefaultDispatchOverheadUS is the baseline's per-iteration host dispatch
// cost. Crossbow's task engine pays CostModel.SchedulerOverheadUS (a few
// µs) per task instead.
const DefaultDispatchOverheadUS = 550

func (c *SSGDConfig) fillDefaults() {
	if c.GPUs == 0 {
		c.GPUs = 1
	}
	if c.AggregateBatch == 0 {
		c.AggregateBatch = 64 * c.GPUs
	}
	if c.DispatchOverheadUS == 0 {
		c.DispatchOverheadUS = DefaultDispatchOverheadUS
	}
	if c.Cost == (gpusim.CostModel{}) {
		c.Cost = gpusim.DefaultCostModel()
	}
	if c.Topo == (gpusim.Topology{}) {
		c.Topo = gpusim.DefaultTopology(c.GPUs)
	}
}

// NewSSGD builds the baseline engine.
func NewSSGD(cfg SSGDConfig) *SSGDEngine {
	cfg.fillDefaults()
	spec := nn.FullSpec(cfg.Model)
	perGPU := cfg.AggregateBatch / cfg.GPUs
	if perGPU < 1 {
		perGPU = 1
	}
	e := &SSGDEngine{
		cfg:  cfg,
		sim:  gpusim.NewSim(cfg.GPUs, cfg.Cost.SMsPerDevice),
		spec: spec,
		plan: cfg.Cost.PlanLearningTask(spec, perGPU),
	}
	for g := 0; g < cfg.GPUs; g++ {
		dev := e.sim.Device(g)
		e.streams = append(e.streams, dev.NewStream(fmt.Sprintf("gpu%d/work", g)))
		e.copies = append(e.copies, dev.NewStream(fmt.Sprintf("gpu%d/copy", g)))
	}
	return e
}

// PerGPUBatch returns the batch partition size each GPU processes.
func (e *SSGDEngine) PerGPUBatch() int {
	b := e.cfg.AggregateBatch / e.cfg.GPUs
	if b < 1 {
		b = 1
	}
	return b
}

// scheduleIteration wires one S-SGD iteration: partition compute, gradient
// all-reduce (with barrier), replica update.
func (e *SSGDEngine) scheduleIteration() {
	cfg := e.cfg
	batchBytes := e.spec.SampleBytes() * int64(e.PerGPUBatch())
	modelBytes := e.spec.ParamCount() * 4

	gradDone := make([]*gpusim.Event, cfg.GPUs)
	for g := 0; g < cfg.GPUs; g++ {
		st := e.streams[g]
		// Baseline dispatch overhead on the critical path each iteration.
		st.Kernel("dispatch", 1, cfg.DispatchOverheadUS)
		if e.barrier != nil {
			// S-SGD lockstep: no GPU may start iteration N+1 before every
			// replica finished applying iteration N's aggregate gradient.
			for _, ev := range e.barrier {
				st.Wait(ev)
			}
		}
		inReady := e.sim.NewEvent()
		e.copies[g].Kernel("h2d_batch", 1, cfg.Cost.TransferUS(batchBytes))
		e.copies[g].Record(inReady)
		st.Wait(inReady)
		gpusim.EnqueueLearningTask(st, e.plan)
		gradDone[g] = e.sim.NewEvent()
		st.Record(gradDone[g])
	}
	allReduce := cfg.Topo.AllReduceUS(modelBytes, cfg.GPUs, cfg.Cost.TransferLatencyUS)
	newBarrier := make([]*gpusim.Event, cfg.GPUs)
	for g := 0; g < cfg.GPUs; g++ {
		st := e.streams[g]
		for _, ev := range gradDone {
			st.Wait(ev)
		}
		if allReduce > 0 {
			st.Kernel("allreduce_grads", 1, allReduce)
		}
		st.Kernel("apply_update", 2, cfg.Cost.VectorKernelUS(e.spec.ParamCount()))
		newBarrier[g] = e.sim.NewEvent()
		st.Record(newBarrier[g])
	}
	e.barrier = newBarrier
}

// RunIterations executes n iterations and returns elapsed virtual µs.
func (e *SSGDEngine) RunIterations(n int) float64 {
	start := e.sim.Now()
	for i := 0; i < n; i++ {
		e.scheduleIteration()
	}
	e.sim.Run()
	return e.sim.Now() - start
}

// Throughput runs n iterations and returns images per second.
func (e *SSGDEngine) Throughput(n int) float64 {
	us := e.RunIterations(n)
	if us <= 0 {
		return 0
	}
	images := float64(n * cfgBatch(e))
	return images / (us / 1e6)
}

// EpochSeconds returns the virtual duration of one epoch over nSamples.
func (e *SSGDEngine) EpochSeconds(nSamples, measureIters int) float64 {
	tp := e.Throughput(measureIters)
	if tp <= 0 {
		return 0
	}
	return float64(nSamples) / tp
}

func cfgBatch(e *SSGDEngine) int { return e.PerGPUBatch() * e.cfg.GPUs }
