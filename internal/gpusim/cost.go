package gpusim

import (
	"math"

	"crossbow/internal/nn"
)

// CostModel converts full-scale model operators (nn.OpSpec) into simulated
// kernel launches: how many SMs a kernel occupies and how long it runs.
// Constants are calibrated to the paper's testbed — 8× Titan X (Pascal
// cards with the 3,072-core configuration the paper reports, i.e. 24 SMs)
// on PCIe 3.0 ×16 — but only *relative* behaviour matters for reproducing
// the figures: small batches occupy few SMs (so concurrent learners pay no
// penalty), large batches fill the device (so they scale only across GPUs).
type CostModel struct {
	// SMsPerDevice is the multiprocessor count per GPU.
	SMsPerDevice int
	// FLOPsPerSMPerUS is effective per-SM throughput (FLOPs per µs).
	FLOPsPerSMPerUS float64
	// ElemsPerSM is the number of output elements one SM covers at full
	// occupancy; kernels request ceil(outputElems/ElemsPerSM) SMs.
	ElemsPerSM int
	// KernelOverheadUS is fixed per-kernel launch latency.
	KernelOverheadUS float64
	// PCIeBytesPerUS is effective host↔device / device↔device bandwidth.
	PCIeBytesPerUS float64
	// TransferLatencyUS is fixed per-transfer latency.
	TransferLatencyUS float64
	// SchedulerOverheadUS is the host-side cost of dispatching one task;
	// Crossbow's concurrent task engine keeps this small, baseline engines
	// pay more per iteration (§5.2: LeNet's 1 ms tasks make this visible).
	SchedulerOverheadUS float64
	// SyncPerOpUS is the per-operator host coordination cost of one
	// learner's synchronisation (event wiring, launch serialisation),
	// charged once per synchronised iteration as #ops × SyncPerOpUS.
	// Calibrated to Figure 17: disabling synchronisation entirely buys
	// only ~20% throughput on ResNet-32.
	SyncPerOpUS float64
}

// DefaultCostModel returns the calibration used throughout the benchmarks.
func DefaultCostModel() CostModel {
	return CostModel{
		SMsPerDevice:        24,
		FLOPsPerSMPerUS:     80_000, // ~6.1 TFLOPs peak × ~30% efficiency / 24 SMs
		ElemsPerSM:          16384,
		KernelOverheadUS:    4,
		PCIeBytesPerUS:      12_000, // ~12 GB/s effective PCIe 3.0 ×16
		TransferLatencyUS:   10,
		SchedulerOverheadUS: 6,
		SyncPerOpUS:         12,
	}
}

// KernelCost returns the SM demand and duration of one operator applied to
// a batch of the given size, for one pass. passFLOPs scales the operator's
// forward FLOPs (1 for forward, 2 for backward, which runs the two GEMMs).
func (c CostModel) KernelCost(op nn.OpSpec, batch int, passFLOPs float64) (sms int, durUS float64) {
	elems := float64(op.OutElems) * float64(batch)
	sms = int(math.Ceil(elems / float64(c.ElemsPerSM)))
	if sms < 1 {
		sms = 1
	}
	if sms > c.SMsPerDevice {
		sms = c.SMsPerDevice
	}
	flops := float64(op.FLOPs) * float64(batch) * passFLOPs
	durUS = c.KernelOverheadUS + flops/(float64(sms)*c.FLOPsPerSMPerUS)
	return sms, durUS
}

// TransferUS returns the duration of moving n bytes over one PCIe link.
func (c CostModel) TransferUS(bytes int64) float64 {
	return c.TransferLatencyUS + float64(bytes)/c.PCIeBytesPerUS
}

// VectorKernelUS returns the duration of a flat model-vector kernel
// (corrections, averaging, momentum): bandwidth-bound at roughly one
// element per FLOP.
func (c CostModel) VectorKernelUS(elems int64) float64 {
	return c.KernelOverheadUS + float64(elems)/(float64(c.SMsPerDevice)*c.FLOPsPerSMPerUS/4)
}

// LearningTaskPlan is the kernel sequence of one learning task (forward and
// backward over every operator), ready to enqueue on a learner stream.
type LearningTaskPlan struct {
	Kernels []PlannedKernel
	// TotalUS is the sum of kernel durations: the task's execution time
	// when it runs alone on an otherwise idle device.
	TotalUS float64
}

// PlannedKernel is one kernel launch of a learning task.
type PlannedKernel struct {
	Name  string
	SMs   int
	DurUS float64
}

// PlanLearningTask lowers a full-scale model spec at the given batch size
// into the forward+backward kernel sequence (paper §4.2: "a learning task
// encapsulates multiple operators").
func (c CostModel) PlanLearningTask(spec *nn.ModelSpec, batch int) *LearningTaskPlan {
	p := &LearningTaskPlan{}
	add := func(name string, sms int, dur float64) {
		p.Kernels = append(p.Kernels, PlannedKernel{Name: name, SMs: sms, DurUS: dur})
		p.TotalUS += dur
	}
	for _, op := range spec.Ops {
		sms, dur := c.KernelCost(op, batch, 1)
		add(op.Kind+"_fwd", sms, dur)
	}
	for i := len(spec.Ops) - 1; i >= 0; i-- {
		op := spec.Ops[i]
		sms, dur := c.KernelCost(op, batch, 2)
		add(op.Kind+"_bwd", sms, dur)
	}
	return p
}

// EnqueueLearningTask pushes the plan's kernels onto a stream.
func EnqueueLearningTask(st *Stream, plan *LearningTaskPlan) {
	for _, k := range plan.Kernels {
		st.Kernel(k.Name, k.SMs, k.DurUS)
	}
}
