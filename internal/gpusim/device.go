package gpusim

// ThrashPenalty is the fractional slow-down a kernel suffers when granted
// none of its requested SMs (linearly interpolated above that): the cost of
// oversubscribing a device with more concurrent work than it has
// multiprocessors.
const ThrashPenalty = 0.35

// Device is a simulated GPU: a pool of streaming multiprocessors shared by
// any number of streams. Kernels request SMs; while SMs remain, kernels
// from different streams execute concurrently — the property Crossbow's
// task engine exploits to co-locate learners on one GPU (§4.3).
type Device struct {
	sim *Sim
	// ID is the device index.
	ID int
	// SMs is the total number of streaming multiprocessors.
	SMs     int
	freeSMs int
	streams []*Stream

	// Busy accumulates SM-microseconds of executed kernel work, for
	// utilisation accounting: utilisation = Busy / (SMs × elapsed).
	Busy float64

	tracer *Tracer
}

// NewStream creates an in-order command stream on the device. name is for
// debugging.
func (d *Device) NewStream(name string) *Stream {
	st := &Stream{dev: d, name: name}
	d.streams = append(d.streams, st)
	return st
}

// FreeSMs returns the currently unallocated SM count.
func (d *Device) FreeSMs() int { return d.freeSMs }

// Utilisation returns the fraction of SM time spent executing kernels over
// the elapsed virtual time.
func (d *Device) Utilisation() float64 {
	if d.sim.now == 0 {
		return 0
	}
	return d.Busy / (float64(d.SMs) * d.sim.now)
}

// drain advances every stream as far as possible at the current instant.
// Returns whether any progress was made.
func (d *Device) drain() bool {
	progress := false
	for _, st := range d.streams {
		for st.step() {
			progress = true
		}
	}
	return progress
}

// opKind discriminates stream operations.
type opKind int

const (
	opKernel opKind = iota
	opRecord
	opWait
	opCallback
)

type op struct {
	kind opKind
	name string
	sms  int
	dur  float64
	ev   *Event
	fn   func(now float64)
}

// Stream is an in-order queue of device work. Ops on one stream execute
// sequentially; ops on different streams may execute concurrently when SMs
// allow (mirroring CUDA stream semantics, §2.2).
type Stream struct {
	dev     *Device
	name    string
	queue   []op
	running bool // head kernel currently executing
}

// Name returns the stream's debug name.
func (st *Stream) Name() string { return st.name }

// Device returns the stream's device.
func (st *Stream) Device() *Device { return st.dev }

// Pending returns the number of queued (not yet retired) ops.
func (st *Stream) Pending() int { return len(st.queue) }

// Kernel enqueues a compute kernel needing sms multiprocessors for dur
// microseconds. sms is clamped to the device size; non-positive durations
// retire instantly.
func (st *Stream) Kernel(name string, sms int, dur float64) {
	if sms < 1 {
		sms = 1
	}
	if sms > st.dev.SMs {
		sms = st.dev.SMs
	}
	if dur < 0 {
		dur = 0
	}
	st.queue = append(st.queue, op{kind: opKernel, name: name, sms: sms, dur: dur})
}

// Record enqueues an event-record: the event fires when all prior ops on
// this stream have completed.
func (st *Stream) Record(ev *Event) {
	st.queue = append(st.queue, op{kind: opRecord, ev: ev})
}

// Wait enqueues an event-wait: subsequent ops on this stream stall until
// the event has fired.
func (st *Stream) Wait(ev *Event) {
	st.queue = append(st.queue, op{kind: opWait, ev: ev})
}

// OnComplete enqueues a host callback invoked (in virtual time) when all
// prior ops on this stream have completed. The task manager uses these as
// task-completion events (§4.1 step 4).
func (st *Stream) OnComplete(fn func(now float64)) {
	st.queue = append(st.queue, op{kind: opCallback, fn: fn})
}

// step tries to retire or start the head op. Returns true on progress.
func (st *Stream) step() bool {
	if st.running || len(st.queue) == 0 {
		return false
	}
	head := &st.queue[0]
	switch head.kind {
	case opWait:
		if !head.ev.fired {
			head.ev.subscribe(st)
			return false
		}
		st.queue = st.queue[1:]
		return true
	case opRecord:
		ev := head.ev
		st.queue = st.queue[1:]
		ev.fire()
		return true
	case opCallback:
		fn := head.fn
		st.queue = st.queue[1:]
		fn(st.dev.sim.now)
		return true
	case opKernel:
		if st.dev.freeSMs < 1 {
			return false
		}
		// Elastic SM grant: a kernel takes as many of its requested SMs
		// as are free and runs proportionally longer on fewer — modelling
		// the GPU's intra-kernel time-slicing. This keeps the device
		// work-conserving: at saturation, aggregate FLOP throughput
		// equals capacity regardless of how kernels pack.
		grant := head.sms
		if grant > st.dev.freeSMs {
			grant = st.dev.freeSMs
		}
		dur := head.dur * float64(head.sms) / float64(grant)
		if grant < head.sms {
			// Oversubscription is not free: squeezed kernels lose cache
			// locality and scheduling efficiency, so a device packed past
			// its capacity slows down slightly — the over-parallelisation
			// regime of Alg 2 line 7 / Figure 14, where adding learners
			// reduces throughput.
			dur *= 1 + ThrashPenalty*(1-float64(grant)/float64(head.sms))
		}
		st.dev.freeSMs -= grant
		st.running = true
		start := st.dev.sim.now
		name := head.name
		st.dev.sim.after(dur, func() {
			st.dev.freeSMs += grant
			st.dev.Busy += float64(grant) * dur
			st.running = false
			st.queue = st.queue[1:]
			st.dev.tracer.record(TraceEvent{
				Device: st.dev.ID, Stream: st.name, Name: name,
				StartUS: start, EndUS: st.dev.sim.now, SMs: grant,
			})
		})
		return true
	}
	return false
}

// Event is a cross-stream synchronisation primitive (publish/subscribe, as
// in CUDA events): Record on one stream fires it; Wait on other streams
// blocks until fired. Events are single-shot.
type Event struct {
	fired   bool
	waiters []*Stream
}

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

func (e *Event) subscribe(st *Stream) {
	for _, w := range e.waiters {
		if w == st {
			return
		}
	}
	e.waiters = append(e.waiters, st)
}

func (e *Event) fire() {
	if e.fired {
		return
	}
	e.fired = true
	e.waiters = nil // drain() revisits all streams anyway
}
