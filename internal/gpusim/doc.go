// Package gpusim is a discrete-event simulator of a single-server
// multi-GPU machine (DESIGN.md §1): devices with a fixed pool of streaming
// multiprocessors (SMs), in-order streams, cross-stream events, DMA copy
// transfers and a PCIe interconnect with ring all-reduce.
//
// It stands in for the CUDA substrate the paper runs on. The simulator
// models the three quantities hardware efficiency depends on: occupancy
// (kernels request SMs; a device runs concurrent kernels only while SMs
// remain), serialisation (ops on one stream run in order; ops on different
// streams may overlap) and transfer cost (bytes over PCIe links). Virtual
// time is in microseconds.
package gpusim
