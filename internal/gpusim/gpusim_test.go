package gpusim

import (
	"math"
	"testing"

	"crossbow/internal/nn"
)

func TestSingleKernelDuration(t *testing.T) {
	s := NewSim(1, 24)
	st := s.Device(0).NewStream("s0")
	st.Kernel("k", 4, 100)
	end := s.Run()
	if end != 100 {
		t.Fatalf("end = %v, want 100", end)
	}
}

func TestStreamSerialisesOps(t *testing.T) {
	s := NewSim(1, 24)
	st := s.Device(0).NewStream("s0")
	st.Kernel("a", 1, 50)
	st.Kernel("b", 1, 70)
	if end := s.Run(); end != 120 {
		t.Fatalf("end = %v, want 120 (in-order execution)", end)
	}
}

func TestStreamsOverlapWhenSMsAllow(t *testing.T) {
	s := NewSim(1, 24)
	a := s.Device(0).NewStream("a")
	b := s.Device(0).NewStream("b")
	a.Kernel("ka", 8, 100)
	b.Kernel("kb", 8, 100)
	if end := s.Run(); end != 100 {
		t.Fatalf("end = %v, want 100 (concurrent execution)", end)
	}
}

func TestStreamsSerialiseWhenSMsExhausted(t *testing.T) {
	s := NewSim(1, 24)
	a := s.Device(0).NewStream("a")
	b := s.Device(0).NewStream("b")
	a.Kernel("ka", 24, 100) // fills the device
	b.Kernel("kb", 24, 100)
	if end := s.Run(); end != 200 {
		t.Fatalf("end = %v, want 200 (SM contention serialises)", end)
	}
}

func TestPartialOverlapWithMixedDemand(t *testing.T) {
	s := NewSim(1, 24)
	a := s.Device(0).NewStream("a")
	b := s.Device(0).NewStream("b")
	c := s.Device(0).NewStream("c")
	a.Kernel("ka", 12, 100)
	b.Kernel("kb", 12, 100)
	c.Kernel("kc", 12, 100) // must wait for a slot
	if end := s.Run(); end != 200 {
		t.Fatalf("end = %v, want 200", end)
	}
}

func TestEventOrdersAcrossStreams(t *testing.T) {
	s := NewSim(1, 24)
	a := s.Device(0).NewStream("a")
	b := s.Device(0).NewStream("b")
	ev := s.NewEvent()
	a.Kernel("producer", 1, 80)
	a.Record(ev)
	b.Wait(ev)
	b.Kernel("consumer", 1, 20)
	if end := s.Run(); end != 100 {
		t.Fatalf("end = %v, want 100 (b waits for a)", end)
	}
	if !ev.Fired() {
		t.Fatal("event not fired")
	}
}

func TestEventAlreadyFiredDoesNotBlock(t *testing.T) {
	s := NewSim(1, 24)
	a := s.Device(0).NewStream("a")
	ev := s.NewEvent()
	a.Record(ev)
	s.Run()
	b := s.Device(0).NewStream("b")
	b.Wait(ev)
	b.Kernel("k", 1, 10)
	if end := s.Run(); end != 10 {
		t.Fatalf("end = %v, want 10", end)
	}
}

func TestCallbackSeesVirtualTime(t *testing.T) {
	s := NewSim(1, 24)
	st := s.Device(0).NewStream("s")
	st.Kernel("k", 1, 42)
	var at float64 = -1
	st.OnComplete(func(now float64) { at = now })
	s.Run()
	if at != 42 {
		t.Fatalf("callback at %v, want 42", at)
	}
}

func TestCallbackCanEnqueueMoreWork(t *testing.T) {
	s := NewSim(1, 24)
	st := s.Device(0).NewStream("s")
	st.Kernel("k1", 1, 10)
	st.OnComplete(func(now float64) {
		st.Kernel("k2", 1, 15)
	})
	if end := s.Run(); end != 25 {
		t.Fatalf("end = %v, want 25", end)
	}
}

func TestMultiDeviceIndependence(t *testing.T) {
	s := NewSim(2, 24)
	a := s.Device(0).NewStream("a")
	b := s.Device(1).NewStream("b")
	a.Kernel("ka", 24, 100)
	b.Kernel("kb", 24, 100)
	if end := s.Run(); end != 100 {
		t.Fatalf("end = %v, want 100 (devices are independent)", end)
	}
}

func TestUtilisationAccounting(t *testing.T) {
	s := NewSim(1, 24)
	st := s.Device(0).NewStream("s")
	st.Kernel("k", 12, 100)
	s.Run()
	if u := s.Device(0).Utilisation(); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilisation = %v, want 0.5", u)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() float64 {
		s := NewSim(2, 24)
		ev := s.NewEvent()
		a := s.Device(0).NewStream("a")
		b := s.Device(0).NewStream("b")
		c := s.Device(1).NewStream("c")
		a.Kernel("ka", 10, 33)
		a.Record(ev)
		b.Kernel("kb", 20, 21)
		c.Wait(ev)
		c.Kernel("kc", 24, 11)
		return s.Run()
	}
	if run() != run() {
		t.Fatal("simulation must be deterministic")
	}
}

func TestKernelCostScalesWithBatch(t *testing.T) {
	c := DefaultCostModel()
	op := nn.OpSpec{Kind: "conv", FLOPs: 1e6, OutElems: 16384}
	smsSmall, durSmall := c.KernelCost(op, 2, 1)
	smsBig, durBig := c.KernelCost(op, 64, 1)
	if smsSmall >= smsBig {
		t.Fatalf("small batch should need fewer SMs: %d vs %d", smsSmall, smsBig)
	}
	if durBig <= durSmall {
		t.Fatal("larger batch must take longer")
	}
	if smsBig != c.SMsPerDevice {
		t.Fatalf("big batch should fill the device: %d SMs", smsBig)
	}
}

func TestSmallBatchKernelLeavesRoomForConcurrency(t *testing.T) {
	// The core §3.3 premise: at batch 2-4, kernels need only a few SMs,
	// so several learners fit on one device.
	c := DefaultCostModel()
	spec := nn.FullSpec(nn.ResNet32)
	var maxSMs int
	for _, op := range spec.Ops {
		sms, _ := c.KernelCost(op, 4, 1)
		if sms > maxSMs {
			maxSMs = sms
		}
	}
	if maxSMs > c.SMsPerDevice/2 {
		t.Fatalf("batch-4 ResNet-32 kernels use up to %d of %d SMs; expected ≤ half",
			maxSMs, c.SMsPerDevice)
	}
}

func TestPlanLearningTaskShape(t *testing.T) {
	c := DefaultCostModel()
	spec := nn.FullSpec(nn.ResNet32)
	plan := c.PlanLearningTask(spec, 32)
	if len(plan.Kernels) != 2*len(spec.Ops) {
		t.Fatalf("plan has %d kernels, want %d", len(plan.Kernels), 2*len(spec.Ops))
	}
	if plan.TotalUS <= 0 {
		t.Fatal("plan must have positive duration")
	}
	// Backward costs about twice the forward.
	var fwd, bwd float64
	for i, k := range plan.Kernels {
		if i < len(spec.Ops) {
			fwd += k.DurUS
		} else {
			bwd += k.DurUS
		}
	}
	if bwd < fwd {
		t.Fatalf("backward (%v) should cost more than forward (%v)", bwd, fwd)
	}
}

func TestResNet50TaskNearPaperScale(t *testing.T) {
	// §5.2: a ResNet-50 learning task takes ~220 ms at batch 32 on one
	// Titan X. The calibration should land within a small factor.
	c := DefaultCostModel()
	plan := c.PlanLearningTask(nn.FullSpec(nn.ResNet50), 32)
	ms := plan.TotalUS / 1000
	if ms < 70 || ms > 700 {
		t.Fatalf("ResNet-50 b=32 learning task = %.1f ms, want the ~220 ms scale", ms)
	}
}

func TestLeNetTaskNearPaperScale(t *testing.T) {
	// §5.2: a LeNet learning task takes ~1 ms or less.
	c := DefaultCostModel()
	plan := c.PlanLearningTask(nn.FullSpec(nn.LeNet), 4)
	ms := plan.TotalUS / 1000
	if ms > 3 {
		t.Fatalf("LeNet learning task = %.2f ms, want ~1 ms or less", ms)
	}
}

func TestAllReduceScaling(t *testing.T) {
	top := DefaultTopology(8)
	bytes := int64(1_790_000) // ResNet-32 model
	t2 := top.AllReduceUS(bytes, 2, 10)
	t4 := top.AllReduceUS(bytes, 4, 10)
	t8 := top.AllReduceUS(bytes, 8, 10)
	if !(t2 < t4 && t4 < t8) {
		t.Fatalf("all-reduce should cost more with more GPUs: %v %v %v", t2, t4, t8)
	}
	if top.AllReduceUS(bytes, 1, 10) != 0 {
		t.Fatal("single-GPU all-reduce must be free")
	}
	// Ring all-reduce volume is 2(k-1)/k·n: cost grows sub-linearly in k
	// for fixed n on a uniform link, so t8 < 4× t2 even with the slower
	// cross-socket links.
	if t8 > 4*t2 {
		t.Fatalf("t8 = %v too large relative to t2 = %v", t8, t2)
	}
}

func TestTransferCost(t *testing.T) {
	c := DefaultCostModel()
	small := c.TransferUS(1024)
	big := c.TransferUS(12_000_000)
	if small >= big {
		t.Fatal("bigger transfers must take longer")
	}
	// 12 MB at 12 GB/s ≈ 1000 µs + latency.
	if math.Abs(big-(10+1000)) > 1 {
		t.Fatalf("12 MB transfer = %v µs, want ~1010", big)
	}
}
