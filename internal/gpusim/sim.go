package gpusim

import "container/heap"

// completion is a scheduled future event in virtual time.
type completion struct {
	t     float64
	seq   uint64 // tie-breaker for determinism
	apply func()
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Sim is a deterministic discrete-event simulation of a multi-GPU server.
type Sim struct {
	now     float64
	seq     uint64
	heap    completionHeap
	devices []*Device
}

// NewSim creates a simulator with n identical devices of smsPerDevice
// streaming multiprocessors each.
func NewSim(n, smsPerDevice int) *Sim {
	s := &Sim{}
	for i := 0; i < n; i++ {
		s.devices = append(s.devices, &Device{
			sim: s, ID: i, SMs: smsPerDevice, freeSMs: smsPerDevice,
		})
	}
	return s
}

// Now returns the current virtual time in microseconds.
func (s *Sim) Now() float64 { return s.now }

// NumDevices returns the device count.
func (s *Sim) NumDevices() int { return len(s.devices) }

// Device returns device i.
func (s *Sim) Device(i int) *Device { return s.devices[i] }

// NewEvent creates an unfired cross-stream synchronisation event.
func (s *Sim) NewEvent() *Event { return &Event{} }

// after schedules fn at now+d.
func (s *Sim) after(d float64, fn func()) {
	s.seq++
	heap.Push(&s.heap, completion{t: s.now + d, seq: s.seq, apply: fn})
}

// Run executes queued work until the simulation is quiescent (no stream can
// make progress and no completion is pending) and returns the virtual time.
func (s *Sim) Run() float64 {
	s.drain()
	for s.heap.Len() > 0 {
		c := heap.Pop(&s.heap).(completion)
		s.now = c.t
		c.apply()
		s.drain()
	}
	return s.now
}

// drain starts every op that can start at the current instant, looping
// until no further progress is possible (zero-duration ops such as event
// records and waits retire inline).
func (s *Sim) drain() {
	for {
		progress := false
		for _, d := range s.devices {
			if d.drain() {
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}
