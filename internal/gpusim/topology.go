package gpusim

// Topology models the PCIe interconnect of the paper's testbed (§2.2): GPU
// pairs hang off PCIe switches, two switches per host bridge, one bridge
// per CPU socket. Transfers crossing higher levels of the tree contend for
// shared links, so effective all-reduce bandwidth degrades as the ring
// spans more of the tree.
type Topology struct {
	// NumGPUs in the server.
	NumGPUs int
	// SwitchBytesPerUS is pair-local bandwidth (two GPUs on one switch).
	SwitchBytesPerUS float64
	// BridgeBytesPerUS is bandwidth through a host bridge (shared by the
	// two switches below it).
	BridgeBytesPerUS float64
	// SocketBytesPerUS is cross-socket bandwidth (QPI).
	SocketBytesPerUS float64
}

// DefaultTopology returns the 8-GPU, two-socket tree of the paper's server.
func DefaultTopology(numGPUs int) Topology {
	return Topology{
		NumGPUs:          numGPUs,
		SwitchBytesPerUS: 12_000,
		BridgeBytesPerUS: 10_000,
		SocketBytesPerUS: 8_000,
	}
}

// ringStepBandwidth returns the effective per-step bandwidth of a ring
// all-reduce over k GPUs laid out in tree order: the tightest link the ring
// must cross, accounting for sharing.
func (t Topology) ringStepBandwidth(k int) float64 {
	switch {
	case k <= 1:
		return t.SwitchBytesPerUS
	case k == 2:
		return t.SwitchBytesPerUS
	case k <= 4:
		return t.BridgeBytesPerUS
	default:
		return t.SocketBytesPerUS
	}
}

// AllReduceUS returns the duration of a ring all-reduce of n bytes across k
// GPUs: 2(k−1) pipeline steps of n/k bytes each (§4.2: "all-reduce creates
// a ring topology … evenly distributes the computation"), plus a fixed
// per-step latency.
func (t Topology) AllReduceUS(bytes int64, k int, stepLatencyUS float64) float64 {
	if k <= 1 {
		return 0
	}
	steps := 2 * (k - 1)
	chunk := float64(bytes) / float64(k)
	bw := t.ringStepBandwidth(k)
	return float64(steps) * (stepLatencyUS + chunk/bw)
}
