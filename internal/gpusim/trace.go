package gpusim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceEvent records one kernel execution on a simulated stream.
type TraceEvent struct {
	Device  int
	Stream  string
	Name    string
	StartUS float64
	EndUS   float64
	SMs     int
}

// Tracer collects kernel-level execution events for timeline inspection —
// the simulator's analogue of nvprof. Attach with Sim.SetTracer before
// enqueueing work.
type Tracer struct {
	Events []TraceEvent
}

// SetTracer attaches (or, with nil, detaches) a tracer.
func (s *Sim) SetTracer(t *Tracer) {
	for _, d := range s.devices {
		d.tracer = t
	}
}

// record appends an event.
func (t *Tracer) record(ev TraceEvent) {
	if t == nil {
		return
	}
	t.Events = append(t.Events, ev)
}

// TotalKernelUS sums kernel wall time (not SM time).
func (t *Tracer) TotalKernelUS() float64 {
	var sum float64
	for _, ev := range t.Events {
		sum += ev.EndUS - ev.StartUS
	}
	return sum
}

// ByName aggregates total duration per kernel name, sorted descending.
func (t *Tracer) ByName() []struct {
	Name  string
	DurUS float64
	Count int
} {
	agg := map[string]*struct {
		dur   float64
		count int
	}{}
	for _, ev := range t.Events {
		a := agg[ev.Name]
		if a == nil {
			a = &struct {
				dur   float64
				count int
			}{}
			agg[ev.Name] = a
		}
		a.dur += ev.EndUS - ev.StartUS
		a.count++
	}
	var out []struct {
		Name  string
		DurUS float64
		Count int
	}
	for name, a := range agg {
		out = append(out, struct {
			Name  string
			DurUS float64
			Count int
		}{name, a.dur, a.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DurUS != out[j].DurUS {
			return out[i].DurUS > out[j].DurUS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events with microsecond timestamps), loadable in chrome://tracing or
// Perfetto.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  string  `json:"tid"`
	Args any     `json:"args,omitempty"`
}

// WriteChromeTrace serialises the timeline in the Chrome trace-event JSON
// format: devices map to processes, streams to threads.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := make([]chromeEvent, 0, len(t.Events))
	for _, ev := range t.Events {
		evs = append(evs, chromeEvent{
			Name: ev.Name,
			Cat:  "kernel",
			Ph:   "X",
			Ts:   ev.StartUS,
			Dur:  ev.EndUS - ev.StartUS,
			Pid:  ev.Device,
			Tid:  ev.Stream,
			Args: map[string]any{"sms": ev.SMs},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": evs})
}

// Summary renders a per-kernel aggregate table.
func (t *Tracer) Summary(w io.Writer) {
	fmt.Fprintf(w, "%-24s %10s %8s\n", "kernel", "total(us)", "count")
	for _, row := range t.ByName() {
		fmt.Fprintf(w, "%-24s %10.1f %8d\n", row.Name, row.DurUS, row.Count)
	}
}
