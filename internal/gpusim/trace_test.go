package gpusim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerRecordsKernels(t *testing.T) {
	s := NewSim(1, 24)
	tr := &Tracer{}
	s.SetTracer(tr)
	st := s.Device(0).NewStream("s0")
	st.Kernel("a", 4, 10)
	st.Kernel("b", 4, 20)
	s.Run()
	if len(tr.Events) != 2 {
		t.Fatalf("%d events, want 2", len(tr.Events))
	}
	if tr.Events[0].Name != "a" || tr.Events[0].StartUS != 0 || tr.Events[0].EndUS != 10 {
		t.Fatalf("event 0: %+v", tr.Events[0])
	}
	if tr.Events[1].StartUS != 10 || tr.Events[1].EndUS != 30 {
		t.Fatalf("event 1: %+v", tr.Events[1])
	}
	if tr.TotalKernelUS() != 30 {
		t.Fatalf("total = %v", tr.TotalKernelUS())
	}
}

func TestTracerNilSafe(t *testing.T) {
	s := NewSim(1, 24)
	st := s.Device(0).NewStream("s0")
	st.Kernel("a", 1, 5)
	s.Run() // must not panic without a tracer
}

func TestTracerByName(t *testing.T) {
	s := NewSim(1, 24)
	tr := &Tracer{}
	s.SetTracer(tr)
	st := s.Device(0).NewStream("s0")
	st.Kernel("conv", 4, 50)
	st.Kernel("relu", 4, 5)
	st.Kernel("conv", 4, 60)
	s.Run()
	rows := tr.ByName()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Name != "conv" || rows[0].DurUS != 110 || rows[0].Count != 2 {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	s := NewSim(2, 24)
	tr := &Tracer{}
	s.SetTracer(tr)
	s.Device(0).NewStream("a").Kernel("k0", 2, 10)
	s.Device(1).NewStream("b").Kernel("k1", 2, 15)
	s.Run()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("%d trace events", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			t.Fatalf("phase %v", ev["ph"])
		}
	}
}

func TestTracerSummary(t *testing.T) {
	s := NewSim(1, 24)
	tr := &Tracer{}
	s.SetTracer(tr)
	s.Device(0).NewStream("a").Kernel("gemm", 2, 100)
	s.Run()
	var buf bytes.Buffer
	tr.Summary(&buf)
	if !strings.Contains(buf.String(), "gemm") {
		t.Fatal("summary missing kernel name")
	}
}
