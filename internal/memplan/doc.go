// Package memplan implements Crossbow's memory management (§4.5; DESIGN.md
// §10): an offline, reference-count-driven plan that reuses operator
// output buffers within one task, and an online planner with per-operator
// buffer pools shared by all learners on a GPU, backed by real memory and
// bounded by an optional byte budget.
//
// Deep-learning models need far more memory for operator outputs than for
// weights (the paper's ResNet-50: 97.5 MB of weights vs 7.5 GB of
// outputs), so training multiple learners per GPU — and serving multiple
// replicas per machine (DESIGN.md §11) — is only feasible with aggressive
// buffer reuse. internal/nn lowers each network's exact task dataflow into
// this package's Graph; PlanOffline assigns buffers to arena slots;
// OnlinePlanner circulates whole arenas between learners so the footprint
// tracks actual task concurrency rather than learner count.
package memplan
