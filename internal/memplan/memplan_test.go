package memplan

import (
	"sync"
	"testing"
	"testing/quick"

	"crossbow/internal/tensor"
)

func chain(sizes ...int64) *Graph {
	g := &Graph{}
	for i, s := range sizes {
		var in []int
		if i > 0 {
			in = []int{i - 1}
		}
		g.Ops = append(g.Ops, Op{Name: "op", OutBytes: s, Inputs: in})
	}
	return g
}

func TestPlanChainUsesTwoBuffers(t *testing.T) {
	// In a pure chain, op i+1 reads op i; outputs i−1 and earlier are
	// dead, so two alternating buffers suffice from op 2 onwards.
	g := chain(100, 100, 100, 100, 100, 100)
	p, err := PlanOffline(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Buffers) > 3 {
		t.Fatalf("chain plan used %d buffers, want ≤ 3", len(p.Buffers))
	}
	if err := CheckNoLiveOverlap(g, p); err != nil {
		t.Fatal(err)
	}
}

func TestPlanRespectsFanOut(t *testing.T) {
	// Op 0 feeds ops 1, 2 and 3: its buffer must not be reused before op 3.
	g := &Graph{Ops: []Op{
		{Name: "a", OutBytes: 10},
		{Name: "b", OutBytes: 10, Inputs: []int{0}},
		{Name: "c", OutBytes: 10, Inputs: []int{0, 1}},
		{Name: "d", OutBytes: 10, Inputs: []int{0, 2}},
	}}
	p, err := PlanOffline(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckNoLiveOverlap(g, p); err != nil {
		t.Fatal(err)
	}
}

func TestPlanGrowsBufferWhenNeeded(t *testing.T) {
	g := chain(10, 10, 500, 10)
	p, err := PlanOffline(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckNoLiveOverlap(g, p); err != nil {
		t.Fatal(err)
	}
	if p.PlannedBytes() >= g.TotalOutBytes() {
		t.Fatalf("plan %d bytes, naive %d: no saving", p.PlannedBytes(), g.TotalOutBytes())
	}
}

func TestValidateRejectsForwardEdges(t *testing.T) {
	g := &Graph{Ops: []Op{{Name: "a", OutBytes: 1, Inputs: []int{1}}, {Name: "b", OutBytes: 1}}}
	if err := g.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := PlanOffline(g); err == nil {
		t.Fatal("expected plan error")
	}
}

// Property: random DAGs plan without overlapping lifetimes and never exceed
// the naive allocation.
func TestPlanOfflineProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		r := tensor.NewRNG(seed)
		g := &Graph{}
		for i := 0; i < n; i++ {
			op := Op{Name: "op", OutBytes: int64(r.Intn(1000) + 1)}
			if i > 0 {
				// 1-2 random inputs from earlier ops.
				op.Inputs = []int{r.Intn(i)}
				if r.Float64() < 0.4 {
					op.Inputs = append(op.Inputs, r.Intn(i))
				}
			}
			g.Ops = append(g.Ops, op)
		}
		p, err := PlanOffline(g)
		if err != nil {
			return false
		}
		if CheckNoLiveOverlap(g, p) != nil {
			return false
		}
		return p.PlannedBytes() <= g.TotalOutBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingGraphChainShape(t *testing.T) {
	// The spec-level lowering keeps its dependency structure: forward op i
	// reads i−1, backward op of layer i reads the incoming gradient and the
	// layer's forward input. (The full-scale benchmark-model savings tests
	// live in internal/autotune, which owns the spec adapter.)
	ops := []SpecOp{{Kind: "conv", OutElems: 100}, {Kind: "relu", OutElems: 100}, {Kind: "dense", OutElems: 10}}
	g := TrainingGraph(ops, 64, 8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Ops) != 6 {
		t.Fatalf("graph has %d ops, want 6", len(g.Ops))
	}
	p, err := PlanOffline(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckNoLiveOverlap(g, p); err != nil {
		t.Fatal(err)
	}
	if p.PlannedBytes() >= g.TotalOutBytes() {
		t.Fatalf("plan %d bytes, naive %d: backward reuse missing", p.PlannedBytes(), g.TotalOutBytes())
	}
}

func TestOnlineAcquireReuse(t *testing.T) {
	p := NewOnlinePlanner()
	b1 := p.Acquire("conv1", 100, 1)
	p.Release(b1)
	b2 := p.Acquire("conv1", 80, 1)
	if b2 != b1 {
		t.Fatal("expected pooled buffer reuse")
	}
	bytes, allocs, reuses := p.Stats()
	if allocs != 1 || reuses != 1 || bytes != 100 {
		t.Fatalf("stats = %d bytes, %d allocs, %d reuses", bytes, allocs, reuses)
	}
}

func TestOnlineGrowsPooledBuffer(t *testing.T) {
	p := NewOnlinePlanner()
	b1 := p.Acquire("op", 100, 1)
	p.Release(b1)
	b2 := p.Acquire("op", 150, 1)
	if b2.Size != 150 {
		t.Fatalf("buffer size = %d, want grown to 150", b2.Size)
	}
	bytes, _, _ := p.Stats()
	if bytes != 150 {
		t.Fatalf("allocated = %d, want 150", bytes)
	}
}

func TestOnlineRefCounting(t *testing.T) {
	p := NewOnlinePlanner()
	b := p.Acquire("op", 10, 2)
	p.Release(b)
	// One reference remains; buffer must not be reusable yet.
	b2 := p.Acquire("op", 10, 1)
	if b2 == b {
		t.Fatal("buffer reused while still referenced")
	}
	p.Release(b)
	b3 := p.Acquire("op", 10, 1)
	if b3 != b {
		t.Fatal("buffer not reused after last release")
	}
}

func TestOnlineReleasePanicsWhenOverReleased(t *testing.T) {
	p := NewOnlinePlanner()
	b := p.Acquire("op", 10, 1)
	p.Release(b)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Release(b)
}

func TestOnlineSharedAcrossLearnersConcurrently(t *testing.T) {
	// Several learner goroutines acquiring/releasing the same operator
	// pools: with staggered execution the planner should allocate far
	// fewer buffers than learners×ops.
	p := NewOnlinePlanner()
	const learners = 8
	const iters = 200
	var wg sync.WaitGroup
	for l := 0; l < learners; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				a := p.Acquire("conv", 1000, 1)
				b := p.Acquire("bn", 500, 1)
				p.Release(a)
				p.Release(b)
			}
		}()
	}
	wg.Wait()
	bytes, allocs, reuses := p.Stats()
	if allocs > 2*learners {
		t.Fatalf("allocs = %d, want ≤ %d", allocs, 2*learners)
	}
	if reuses == 0 {
		t.Fatal("expected reuse")
	}
	if bytes > int64(2*learners)*1500 {
		t.Fatalf("allocated %d bytes, too much", bytes)
	}
}
