package memplan

import "fmt"

// Op is one dataflow operator in a learning task's execution order. Inputs
// lists the indices of the ops whose outputs this op consumes; an op's
// output buffer can be recycled once all its consumers have executed.
type Op struct {
	Name     string
	OutBytes int64
	Inputs   []int
}

// Graph is a learning task's operator graph in execution order: every
// input index must be smaller than the consuming op's index.
type Graph struct {
	Ops []Op
}

// Validate checks topological ordering of the graph.
func (g *Graph) Validate() error {
	for i, op := range g.Ops {
		for _, in := range op.Inputs {
			if in < 0 || in >= i {
				return fmt.Errorf("memplan: op %d (%s) has invalid input %d", i, op.Name, in)
			}
		}
	}
	return nil
}

// TotalOutBytes returns the naive allocation: one buffer per operator.
func (g *Graph) TotalOutBytes() int64 {
	var n int64
	for _, op := range g.Ops {
		n += op.OutBytes
	}
	return n
}

// Plan is an offline buffer assignment: Assign[i] is the buffer index that
// holds op i's output, and Buffers[b] is buffer b's byte size.
type Plan struct {
	Assign  []int
	Buffers []int64
}

// PlannedBytes returns the planned allocation size.
func (p *Plan) PlannedBytes() int64 {
	var n int64
	for _, b := range p.Buffers {
		n += b
	}
	return n
}

// Savings returns the fraction of the naive allocation the plan avoids.
func (p *Plan) Savings(g *Graph) float64 {
	naive := g.TotalOutBytes()
	if naive == 0 {
		return 0
	}
	return 1 - float64(p.PlannedBytes())/float64(naive)
}

// PlanOffline computes the reference-count buffer plan of §4.5: visiting
// operators in execution order, it assigns each output the first buffer
// whose reference count has dropped to zero (growing it if too small) or
// creates a new buffer; it then decrements the reference counters of the
// op's inputs and sets the output's counter to its consumer count.
func PlanOffline(g *Graph) (*Plan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(g.Ops)
	// consumers[i] = number of ops that read op i's output. Outputs nobody
	// reads (the final op) keep one artificial reference so they survive.
	consumers := make([]int, n)
	for _, op := range g.Ops {
		for _, in := range op.Inputs {
			consumers[in]++
		}
	}
	refs := make([]int, n) // live references to op i's output
	plan := &Plan{Assign: make([]int, n)}
	bufFree := []bool{}

	for i, op := range g.Ops {
		// Find a free buffer (reference count zero), preferring the
		// smallest one that fits to limit growth; grow the smallest free
		// buffer if none fits.
		chosen := -1
		for b, free := range bufFree {
			if !free {
				continue
			}
			if plan.Buffers[b] >= op.OutBytes {
				if chosen < 0 || plan.Buffers[b] < plan.Buffers[chosen] {
					chosen = b
				}
			}
		}
		if chosen < 0 {
			// Any free buffer can be grown; pick the largest to minimise
			// the growth delta.
			for b, free := range bufFree {
				if free && (chosen < 0 || plan.Buffers[b] > plan.Buffers[chosen]) {
					chosen = b
				}
			}
			if chosen >= 0 && plan.Buffers[chosen] < op.OutBytes {
				plan.Buffers[chosen] = op.OutBytes
			}
		}
		if chosen < 0 {
			plan.Buffers = append(plan.Buffers, op.OutBytes)
			bufFree = append(bufFree, false)
			chosen = len(plan.Buffers) - 1
		}
		bufFree[chosen] = false
		plan.Assign[i] = chosen

		c := consumers[i]
		if c == 0 {
			c = 1 // terminal output stays live
		}
		refs[i] = c
		// Account for data dependencies: this op has consumed its inputs.
		for _, in := range op.Inputs {
			refs[in]--
			if refs[in] == 0 {
				bufFree[plan.Assign[in]] = true
			}
		}
	}
	return plan, nil
}

// CheckNoLiveOverlap verifies the defining safety invariant of a plan: two
// ops may share a buffer only if their output lifetimes do not overlap. Op
// i's output is live from step i until the last step that reads it (or
// forever if unread). Returns an error describing the first violation.
func CheckNoLiveOverlap(g *Graph, p *Plan) error {
	n := len(g.Ops)
	lastUse := make([]int, n)
	for i := range lastUse {
		lastUse[i] = n // unread outputs live to the end
	}
	for i, op := range g.Ops {
		for _, in := range op.Inputs {
			lastUse[in] = i
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if p.Assign[a] != p.Assign[b] {
				continue
			}
			// a live on [a, lastUse[a]], b live on [b, lastUse[b]]; b > a.
			// b may write into a's buffer only strictly after a's last
			// reader has executed.
			if b <= lastUse[a] {
				return fmt.Errorf("memplan: ops %d (%s) and %d (%s) share buffer %d with overlapping lifetimes",
					a, g.Ops[a].Name, b, g.Ops[b].Name, p.Assign[a])
			}
		}
	}
	return nil
}
