package memplan

import (
	"sync"
)

// Buffer is one output buffer managed by the online planner. Since PR 4 the
// planner manages real memory, not just byte accounting: Data is the backing
// float32 block handed to whichever learner checks the buffer out.
type Buffer struct {
	Size    int64     // bytes (len(Data)*4 once backed)
	Data    []float32 // backing storage, sized Size/4 elements
	pool    *opPool
	refs    int
	charged int64 // bytes charged against the budget while checked out
}

// opPool is the per-operator pool of output buffers (§4.5: "for each
// operator, the task scheduler maintains a pool of output buffer pointers
// to GPU memory; pools are shared by all learners on the same GPU").
type opPool struct {
	free []*Buffer
}

// OnlinePlanner manages shared per-operator buffer pools for all learners
// on one GPU. Because in practice not all instances of the same operator
// execute concurrently, learners can share output buffers instead of each
// replicating the offline plan — the over-allocation §4.5 avoids.
//
// An optional budget bounds the bytes checked out concurrently: Acquire
// blocks until enough buffers return when granting the request would exceed
// it. A request is always admitted when nothing is checked out, so progress
// is guaranteed under any budget; the effect of a tight budget is that
// surplus learners wait for task buffers instead of growing the footprint —
// memory is sized by actual concurrency, not by learner count.
//
// All methods are safe for concurrent use by learner goroutines.
type OnlinePlanner struct {
	mu    sync.Mutex
	cond  *sync.Cond
	pools map[string]*opPool

	budget int64 // max concurrently checked-out bytes; 0 = unlimited

	// Stats. allocated tracks the bytes *currently backing* the pools (a
	// grow replaces a buffer's block, so the delta is what changes hands);
	// inUse/peak track requested demand — the budget bounds demand, since
	// an incidentally oversized pooled buffer costs a small request
	// nothing extra.
	allocated int64
	inUse     int64
	peak      int64
	allocs    int // number of fresh allocations
	reuses    int // number of pool hits
	waits     int // acquisitions that blocked on the budget
}

// NewOnlinePlanner creates an empty planner with no budget.
func NewOnlinePlanner() *OnlinePlanner {
	p := &OnlinePlanner{pools: map[string]*opPool{}}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// SetBudget bounds the bytes that may be checked out concurrently; 0 removes
// the bound. Lowering the budget never strands a waiter: one request is
// always admitted when the planner is idle.
func (p *OnlinePlanner) SetBudget(bytes int64) {
	p.mu.Lock()
	p.budget = bytes
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Acquire returns an output buffer for the given operator, reusing the
// first available pooled buffer or allocating a new one (growing a pooled
// buffer counts as reuse of its slot). The buffer starts with the given
// reference count (its consumer count in the dataflow). Acquire blocks while
// granting the request would exceed the planner's budget and other buffers
// are checked out.
func (p *OnlinePlanner) Acquire(opID string, size int64, refs int) *Buffer {
	if refs < 1 {
		refs = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	waited := false
	for p.budget > 0 && p.inUse > 0 && p.inUse+size > p.budget {
		if !waited {
			waited = true
			p.waits++
		}
		p.cond.Wait()
	}
	pool, ok := p.pools[opID]
	if !ok {
		pool = &opPool{}
		p.pools[opID] = pool
	}
	var b *Buffer
	if n := len(pool.free); n > 0 {
		b = pool.free[n-1]
		pool.free = pool.free[:n-1]
		if b.Size < size {
			p.allocated += size - b.Size
			b.Size = size
			b.Data = make([]float32, (size+3)/4)
		}
		b.refs = refs
		p.reuses++
	} else {
		p.allocated += size
		p.allocs++
		b = &Buffer{Size: size, Data: make([]float32, (size+3)/4), pool: pool, refs: refs}
	}
	b.charged = size
	p.inUse += size
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
	return b
}

// Release decrements a buffer's reference count (the task manager does this
// as operators complete); at zero the buffer returns to its pool and any
// learner blocked on the budget is woken.
func (p *OnlinePlanner) Release(b *Buffer) {
	p.mu.Lock()
	if b.refs <= 0 {
		p.mu.Unlock()
		panic("memplan: Release of buffer with no references")
	}
	b.refs--
	done := b.refs == 0
	if done {
		b.pool.free = append(b.pool.free, b)
		p.inUse -= b.charged
	}
	p.mu.Unlock()
	if done {
		p.cond.Broadcast()
	}
}

// AddRef adds an extra reference (a newly discovered consumer).
func (p *OnlinePlanner) AddRef(b *Buffer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b.refs <= 0 {
		panic("memplan: AddRef on a released buffer")
	}
	b.refs++
}

// Stats returns (bytes allocated, fresh allocations, pool reuses).
func (p *OnlinePlanner) Stats() (bytes int64, allocs, reuses int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocated, p.allocs, p.reuses
}

// PoolStats is a full snapshot of the planner's accounting. (The derived
// hit rate lives on metrics.MemoryStats, which consumers read.)
type PoolStats struct {
	// AllocatedBytes is the memory currently backing the pools (the
	// footprint; a grown buffer's replaced block counts at its new size).
	AllocatedBytes int64
	// InUseBytes / PeakBytes are the current and high-water *requested*
	// checked-out bytes — peak concurrent demand, which under sharing
	// stays below learners × task size.
	InUseBytes, PeakBytes int64
	// Allocs and Reuses count fresh allocations vs pool hits.
	Allocs, Reuses int
	// BudgetWaits counts acquisitions that blocked on the budget.
	BudgetWaits int
}

// PoolStats returns a full snapshot of the planner's accounting.
func (p *OnlinePlanner) PoolStats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		AllocatedBytes: p.allocated,
		InUseBytes:     p.inUse,
		PeakBytes:      p.peak,
		Allocs:         p.allocs,
		Reuses:         p.reuses,
		BudgetWaits:    p.waits,
	}
}
