package memplan

import (
	"sync"
)

// Buffer is one GPU output buffer managed by the online planner.
type Buffer struct {
	Size int64
	pool *opPool
	refs int
}

// opPool is the per-operator pool of output buffers (§4.5: "for each
// operator, the task scheduler maintains a pool of output buffer pointers
// to GPU memory; pools are shared by all learners on the same GPU").
type opPool struct {
	free []*Buffer
}

// OnlinePlanner manages shared per-operator buffer pools for all learners
// on one GPU. Because in practice not all instances of the same operator
// execute concurrently, learners can share output buffers instead of each
// replicating the offline plan — the over-allocation §4.5 avoids.
//
// All methods are safe for concurrent use by learner goroutines.
type OnlinePlanner struct {
	mu    sync.Mutex
	pools map[string]*opPool

	// Stats.
	allocated int64 // total bytes ever allocated
	allocs    int   // number of fresh allocations
	reuses    int   // number of pool hits
}

// NewOnlinePlanner creates an empty planner.
func NewOnlinePlanner() *OnlinePlanner {
	return &OnlinePlanner{pools: map[string]*opPool{}}
}

// Acquire returns an output buffer for the given operator, reusing the
// first available pooled buffer or allocating a new one (growing a pooled
// buffer counts as reuse of its slot). The buffer starts with the given
// reference count (its consumer count in the dataflow).
func (p *OnlinePlanner) Acquire(opID string, size int64, refs int) *Buffer {
	if refs < 1 {
		refs = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pool, ok := p.pools[opID]
	if !ok {
		pool = &opPool{}
		p.pools[opID] = pool
	}
	if n := len(pool.free); n > 0 {
		b := pool.free[n-1]
		pool.free = pool.free[:n-1]
		if b.Size < size {
			p.allocated += size - b.Size
			b.Size = size
		}
		b.refs = refs
		p.reuses++
		return b
	}
	p.allocated += size
	p.allocs++
	b := &Buffer{Size: size, pool: pool, refs: refs}
	return b
}

// Release decrements a buffer's reference count (the task manager does this
// as operators complete); at zero the buffer returns to its pool.
func (p *OnlinePlanner) Release(b *Buffer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b.refs <= 0 {
		panic("memplan: Release of buffer with no references")
	}
	b.refs--
	if b.refs == 0 {
		b.pool.free = append(b.pool.free, b)
	}
}

// AddRef adds an extra reference (a newly discovered consumer).
func (p *OnlinePlanner) AddRef(b *Buffer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b.refs <= 0 {
		panic("memplan: AddRef on a released buffer")
	}
	b.refs++
}

// Stats returns (bytes allocated, fresh allocations, pool reuses).
func (p *OnlinePlanner) Stats() (bytes int64, allocs, reuses int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocated, p.allocs, p.reuses
}
