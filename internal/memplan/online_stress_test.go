package memplan

import (
	"sync"
	"sync/atomic"
	"testing"

	"crossbow/internal/tensor"
)

// TestOnlinePlannerConcurrentAccounting hammers Acquire/Release from k
// goroutines (run under -race in CI) and asserts the planner's accounting
// stays consistent: at quiescence nothing is checked out, every acquisition
// was either a fresh allocation or a pool hit, allocated bytes equal the
// bytes backing the pools, and the peak never exceeded what the goroutines
// could concurrently hold.
func TestOnlinePlannerConcurrentAccounting(t *testing.T) {
	p := NewOnlinePlanner()
	const (
		goroutines = 8
		iters      = 500
	)
	ops := []struct {
		id   string
		size int64
	}{{"conv.col", 4096}, {"bn.xhat", 1024}, {"task-arena", 16384}}

	var acquires atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := tensor.NewRNG(uint64(g) + 1)
			// held carries one outstanding reference per buffer across loop
			// iterations, so concurrent-hold accounting (inUse spanning
			// acquisitions, multi-buffer peaks, regrowth of a held buffer's
			// pool twin) is genuinely exercised.
			held := make([]*Buffer, 0, 4)
			for i := 0; i < iters; i++ {
				op := ops[rng.Intn(len(ops))]
				refs := 1 + rng.Intn(3)
				b := p.Acquire(op.id, op.size, refs)
				acquires.Add(1)
				if int64(len(b.Data))*4 < op.size {
					t.Errorf("buffer %s backed by %d bytes, want ≥ %d", op.id, len(b.Data)*4, op.size)
					return
				}
				if rng.Float64() < 0.3 {
					p.AddRef(b)
					refs++
				}
				// Drop all but one reference now; the last is held.
				for r := 0; r < refs-1; r++ {
					p.Release(b)
				}
				held = append(held, b)
				if len(held) > 3 {
					for _, h := range held {
						p.Release(h)
					}
					held = held[:0]
				}
			}
			for _, h := range held {
				p.Release(h)
			}
		}(g)
	}
	wg.Wait()

	ps := p.PoolStats()
	if ps.InUseBytes != 0 {
		t.Fatalf("quiescent planner has %d bytes checked out", ps.InUseBytes)
	}
	if got := int64(ps.Allocs + ps.Reuses); got != acquires.Load() {
		t.Fatalf("allocs(%d)+reuses(%d) = %d, want %d acquisitions", ps.Allocs, ps.Reuses, got, acquires.Load())
	}
	// Every live buffer sits in some pool; allocated bytes must equal the
	// sum of pooled buffer sizes.
	var pooled int64
	for _, pool := range p.pools {
		for _, b := range pool.free {
			pooled += b.Size
		}
	}
	if pooled != ps.AllocatedBytes {
		t.Fatalf("pools hold %d bytes, stats say %d allocated", pooled, ps.AllocatedBytes)
	}
	// Peak demand cannot exceed goroutines × the largest working set one
	// goroutine holds (up to 4 held buffers of the largest op).
	if maxPeak := int64(goroutines) * 4 * 16384; ps.PeakBytes > maxPeak {
		t.Fatalf("peak %d bytes exceeds concurrency bound %d", ps.PeakBytes, maxPeak)
	}
	if ps.Reuses == 0 {
		t.Fatal("expected pool hits under contention")
	}
}

// TestOnlinePlannerBudgetBlocks runs learners against a budget that admits
// exactly two task arenas: the footprint must stay capped at the budget,
// waiters must be accounted, and the run must complete (no deadlock —
// one admission is always possible).
func TestOnlinePlannerBudgetBlocks(t *testing.T) {
	p := NewOnlinePlanner()
	const arena = int64(1 << 12)
	p.SetBudget(2 * arena)

	const learners = 6
	var wg sync.WaitGroup
	for l := 0; l < learners; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := p.Acquire("task-arena", arena, 1)
				p.Release(b)
			}
		}()
	}
	wg.Wait()

	ps := p.PoolStats()
	if ps.PeakBytes > 2*arena {
		t.Fatalf("peak %d bytes exceeds the %d budget", ps.PeakBytes, 2*arena)
	}
	if ps.AllocatedBytes > 2*arena {
		t.Fatalf("allocated %d bytes under a %d budget", ps.AllocatedBytes, 2*arena)
	}
	if ps.InUseBytes != 0 {
		t.Fatalf("%d bytes still checked out", ps.InUseBytes)
	}
}

// TestOnlinePlannerOversizedRequestAdmittedWhenIdle: a request larger than
// the whole budget must still be admitted once the planner is idle.
func TestOnlinePlannerOversizedRequestAdmittedWhenIdle(t *testing.T) {
	p := NewOnlinePlanner()
	p.SetBudget(100)
	b := p.Acquire("big", 1000, 1)
	if b == nil || int64(len(b.Data))*4 < 1000 {
		t.Fatal("oversized request not admitted on idle planner")
	}
	p.Release(b)
}
