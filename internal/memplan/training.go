package memplan

// SpecOp is one operator of a model described by per-operator metadata — a
// dependency-free mirror of nn's full-scale OpSpec, so the planner stays
// importable from the layer library itself (which plans its real dataflow
// through a Graph; see internal/nn's memory planner).
type SpecOp struct {
	Kind     string
	OutElems int64 // output activation elements per sample
}

// TrainingGraph lowers a sequential model spec into the operator graph of
// one learning task: the forward pass followed by the backward pass.
// sampleBytes is the byte size of one input sample (the first backward op's
// output has the input's shape).
//
// Dependency structure: forward op i reads forward op i−1's output; the
// backward op of layer i reads (a) the incoming gradient — the previous
// backward op's output — and (b) layer i's forward activation. This is why
// forward outputs stay live across the whole forward pass but are released
// one by one as the backward pass retires them — the effect §4.5 exploits
// ("outputs are mostly reused during the backwards phase", up to 50%
// footprint reduction).
//
// This spec-level lowering remains the coarse model for synthetic studies;
// the live runtime plans the layer library's real dataflow instead (conv
// lowering scratch, batch-norm statistics, residual joins), which internal/nn
// builds as a Graph at sub-operator granularity.
func TrainingGraph(ops []SpecOp, sampleBytes int64, batch int) *Graph {
	n := len(ops)
	g := &Graph{Ops: make([]Op, 0, 2*n)}
	b := int64(batch)
	for i, op := range ops {
		var in []int
		if i > 0 {
			in = []int{i - 1}
		}
		g.Ops = append(g.Ops, Op{
			Name:     op.Kind + "_fwd",
			OutBytes: op.OutElems * 4 * b,
			Inputs:   in,
		})
	}
	for j := 0; j < n; j++ {
		layer := n - 1 - j // backward visits layers in reverse
		idx := n + j
		in := []int{idx - 1} // incoming gradient (for j==0 this is the loss output)
		if layer > 0 {
			in = append(in, layer-1) // the layer's forward input activation
		}
		// The gradient w.r.t. a layer's input has the shape of that input.
		var outBytes int64
		if layer > 0 {
			outBytes = ops[layer-1].OutElems * 4 * b
		} else {
			outBytes = sampleBytes * b
		}
		g.Ops = append(g.Ops, Op{
			Name:     ops[layer].Kind + "_bwd",
			OutBytes: outBytes,
			Inputs:   in,
		})
	}
	return g
}
