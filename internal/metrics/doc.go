// Package metrics implements the evaluation metrics of the paper and the
// runtime's observability types (DESIGN.md §6): test-accuracy series,
// epochs-to-accuracy (ETA, statistical efficiency), time-to-accuracy (TTA,
// §5.1), the windowed throughput estimator the auto-tuner consumes,
// wall-clock epoch measurements (WallPoint), cluster scaling points,
// memory-plane statistics (MemoryStats, DESIGN.md §10) and serving-plane
// statistics (ServingStats with the lock-free LatencyRecorder, DESIGN.md
// §11).
package metrics
