package metrics

// MemoryStats describes the live memory plane of one training run (§4.5):
// how much task memory the offline plan needs, how the shared online pools
// behaved, and what the Go runtime paid in garbage collection while the
// learners trained. The core trainer fills it from the network's MemPlan,
// the memplan.OnlinePlanner accounting, and runtime.MemStats deltas across
// the epoch loop.
type MemoryStats struct {
	// ArenaBytesPerTask is the planned footprint of one learning task (the
	// arena the offline planner lays out: activations, lowering scratch and
	// gradients with reference-count reuse applied).
	ArenaBytesPerTask int64
	// NaiveBytesPerTask is the same task without buffer reuse (one slot per
	// operator buffer).
	NaiveBytesPerTask int64
	// Learners is the learner count the pools served (the final phase's k).
	Learners int

	// PoolAllocatedBytes is the memory backing the shared per-operator
	// pools — the run's actual activation footprint. Under §4.5 sharing it
	// grows with peak task concurrency, not with learner count.
	PoolAllocatedBytes int64
	// PoolPeakBytes is the high-water mark of concurrently checked-out
	// bytes.
	PoolPeakBytes int64
	// PoolAllocs / PoolReuses count fresh pool allocations vs pool hits;
	// PoolBudgetWaits counts acquisitions that blocked on the memory
	// budget.
	PoolAllocs, PoolReuses int
	PoolBudgetWaits        int

	// GCPauseNs is the total stop-the-world pause accumulated during the
	// epoch loop, and NumGC the collections that ran.
	GCPauseNs uint64
	NumGC     uint32
	// AllocsPerIter is the mean heap allocations per joined iteration over
	// the epoch loop (steady state: setup and teardown excluded).
	AllocsPerIter float64
	// HeapAllocBytes is the live heap at the end of the run.
	HeapAllocBytes uint64
}

// PlanSavings returns the fraction of the naive task footprint the offline
// plan avoids.
func (m MemoryStats) PlanSavings() float64 {
	if m.NaiveBytesPerTask == 0 {
		return 0
	}
	return 1 - float64(m.ArenaBytesPerTask)/float64(m.NaiveBytesPerTask)
}

// PoolHitRate returns the fraction of task-buffer acquisitions served from
// a shared pool rather than a fresh allocation.
func (m MemoryStats) PoolHitRate() float64 {
	total := m.PoolAllocs + m.PoolReuses
	if total == 0 {
		return 0
	}
	return float64(m.PoolReuses) / float64(total)
}

// ActivationBytesPerLearner returns the pool footprint amortised over the
// learner count — the quantity whose sub-linear growth in m is the point of
// buffer sharing.
func (m MemoryStats) ActivationBytesPerLearner() float64 {
	if m.Learners == 0 {
		return 0
	}
	return float64(m.PoolAllocatedBytes) / float64(m.Learners)
}
