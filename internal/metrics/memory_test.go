package metrics

import "testing"

func TestMemoryStatsDerived(t *testing.T) {
	m := MemoryStats{
		ArenaBytesPerTask:  600,
		NaiveBytesPerTask:  1000,
		Learners:           4,
		PoolAllocatedBytes: 1200,
		PoolAllocs:         2,
		PoolReuses:         6,
	}
	if s := m.PlanSavings(); s < 0.39 || s > 0.41 {
		t.Fatalf("plan savings = %v, want 0.4", s)
	}
	if hr := m.PoolHitRate(); hr != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", hr)
	}
	if b := m.ActivationBytesPerLearner(); b != 300 {
		t.Fatalf("bytes per learner = %v, want 300", b)
	}
}

func TestMemoryStatsZeroValueSafe(t *testing.T) {
	var m MemoryStats
	if m.PlanSavings() != 0 || m.PoolHitRate() != 0 || m.ActivationBytesPerLearner() != 0 {
		t.Fatal("zero value must not divide by zero")
	}
}
