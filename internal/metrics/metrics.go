package metrics

// EpochPoint is one epoch's outcome: the (virtual or real) time at which
// the epoch completed and the test accuracy measured there.
type EpochPoint struct {
	Epoch   int
	TimeSec float64
	TestAcc float64 // in [0, 1]
	Loss    float64
}

// TTAWindow is the smoothing window of the TTA metric (§5.1: "the median
// test accuracy of the last 5 epochs").
const TTAWindow = 5

// TTA returns the time at which the median test accuracy over the trailing
// TTAWindow epochs first reaches target, per the paper's TTA(x) definition.
// Early epochs use the shorter prefix window. ok is false if the target was
// never reached.
func TTA(series []EpochPoint, target float64) (timeSec float64, ok bool) {
	for i := range series {
		lo := i - TTAWindow + 1
		if lo < 0 {
			lo = 0
		}
		accs := make([]float64, 0, TTAWindow)
		for _, p := range series[lo : i+1] {
			accs = append(accs, p.TestAcc)
		}
		if Median(accs) >= target {
			return series[i].TimeSec, true
		}
	}
	return 0, false
}

// EpochsToAccuracy returns the 1-based epoch count needed for the median-
// windowed test accuracy to reach target (the statistical-efficiency metric
// of Figures 3, 12b, 13b). ok is false if never reached.
func EpochsToAccuracy(series []EpochPoint, target float64) (epochs int, ok bool) {
	for i := range series {
		lo := i - TTAWindow + 1
		if lo < 0 {
			lo = 0
		}
		accs := make([]float64, 0, TTAWindow)
		for _, p := range series[lo : i+1] {
			accs = append(accs, p.TestAcc)
		}
		if Median(accs) >= target {
			return i + 1, true
		}
	}
	return 0, false
}

// BestAccuracy returns the highest test accuracy in the series.
func BestAccuracy(series []EpochPoint) float64 {
	best := 0.0
	for _, p := range series {
		if p.TestAcc > best {
			best = p.TestAcc
		}
	}
	return best
}

// Throughput measures a processing rate over a sliding window of
// completion timestamps — the auto-tuner's input signal (§4.4: "the rate
// at which learning tasks complete, as recorded by the task manager").
// Times are arbitrary but monotone units (the engine feeds virtual
// microseconds).
type Throughput struct {
	window  float64
	stamps  []float64
	weights []float64 // items per completion (e.g. batch size)
}

// NewThroughput creates an estimator with the given window span.
func NewThroughput(window float64) *Throughput {
	return &Throughput{window: window}
}

// Record notes a completion of weight items (e.g. images) at time t.
func (t *Throughput) Record(now float64, weight float64) {
	t.stamps = append(t.stamps, now)
	t.weights = append(t.weights, weight)
	t.evict(now)
}

func (t *Throughput) evict(now float64) {
	cut := 0
	for cut < len(t.stamps) && t.stamps[cut] < now-t.window {
		cut++
	}
	if cut > 0 {
		t.stamps = t.stamps[cut:]
		t.weights = t.weights[cut:]
	}
}

// Rate returns items per time unit over the window ending at now.
func (t *Throughput) Rate(now float64) float64 {
	t.evict(now)
	if len(t.stamps) == 0 {
		return 0
	}
	var total float64
	for _, w := range t.weights {
		total += w
	}
	span := t.window
	if now-t.stamps[0] < span {
		span = now - t.stamps[0]
	}
	if span <= 0 {
		return 0
	}
	return total / span
}
