package metrics

import (
	"math"
	"testing"
)

func series(accs ...float64) []EpochPoint {
	s := make([]EpochPoint, len(accs))
	for i, a := range accs {
		s[i] = EpochPoint{Epoch: i + 1, TimeSec: float64(i+1) * 10, TestAcc: a}
	}
	return s
}

func TestTTAMedianWindow(t *testing.T) {
	// A single spike must not trigger TTA: the median of the window has
	// to clear the target.
	s := series(0.1, 0.9, 0.1, 0.1, 0.1, 0.1, 0.85, 0.86, 0.9, 0.88, 0.9)
	tt, ok := TTA(s, 0.8)
	if !ok {
		t.Fatal("target never reached")
	}
	// Windows ending at epoch 9 hold {0.1,0.85,0.86,0.9,0.88} → median
	// 0.86 ≥ 0.8, so TTA is epoch 9's time.
	if tt != 90 {
		t.Fatalf("TTA = %v, want 90", tt)
	}
}

func TestTTAEarlyPrefixWindow(t *testing.T) {
	s := series(0.9, 0.92)
	tt, ok := TTA(s, 0.8)
	if !ok || tt != 10 {
		t.Fatalf("TTA = %v ok=%v, want 10", tt, ok)
	}
}

func TestTTANeverReached(t *testing.T) {
	if _, ok := TTA(series(0.1, 0.2, 0.3), 0.9); ok {
		t.Fatal("should not reach target")
	}
}

func TestEpochsToAccuracy(t *testing.T) {
	s := series(0.5, 0.7, 0.81, 0.82, 0.83, 0.84, 0.85)
	e, ok := EpochsToAccuracy(s, 0.8)
	if !ok {
		t.Fatal("not reached")
	}
	// Window at epoch 5: {0.5,0.7,0.81,0.82,0.83} → median 0.81 ≥ 0.8.
	if e != 5 {
		t.Fatalf("epochs = %d, want 5", e)
	}
}

func TestBestAccuracy(t *testing.T) {
	if b := BestAccuracy(series(0.1, 0.7, 0.4)); b != 0.7 {
		t.Fatalf("best = %v", b)
	}
	if b := BestAccuracy(nil); b != 0 {
		t.Fatalf("best of empty = %v", b)
	}
}

func TestThroughputRate(t *testing.T) {
	tp := NewThroughput(100)
	for i := 1; i <= 10; i++ {
		tp.Record(float64(i*10), 32)
	}
	// 10 records of 32 items over the 90-unit span observed.
	r := tp.Rate(100)
	if math.Abs(r-320.0/90.0) > 1e-9 {
		t.Fatalf("rate = %v", r)
	}
}

func TestThroughputEvictsOldSamples(t *testing.T) {
	tp := NewThroughput(50)
	tp.Record(0, 100)
	tp.Record(100, 10)
	r := tp.Rate(100)
	// The t=0 record is outside the window; only the t=100 one remains,
	// but with zero span the estimator reports 0 conservatively.
	if r != 0 {
		t.Fatalf("rate = %v, want 0 for zero-span window", r)
	}
	tp.Record(120, 10)
	if r := tp.Rate(120); r <= 0 {
		t.Fatalf("rate = %v, want positive", r)
	}
}

func TestThroughputEmpty(t *testing.T) {
	tp := NewThroughput(10)
	if tp.Rate(5) != 0 {
		t.Fatal("empty estimator must report 0")
	}
}

func TestMedianEvenWindow(t *testing.T) {
	if m := Median([]float64{0.2, 0.4}); math.Abs(m-0.3) > 1e-12 {
		t.Fatalf("median = %v", m)
	}
}
