package metrics

// ScalingPoint is one entry of a scale-out sweep: the cluster size, its
// measured training throughput, and the derived efficiency against perfect
// linear scaling of the sweep's smallest configuration.
type ScalingPoint struct {
	// Servers is the cluster size of this measurement.
	Servers int
	// ThroughputImgSec is the aggregate training throughput.
	ThroughputImgSec float64
	// Efficiency is ThroughputImgSec relative to linear scaling of the
	// baseline point: 1 means perfect scaling, below 1 sub-linear.
	Efficiency float64
	// EpochSeconds is the simulated duration of one paper-scale epoch.
	EpochSeconds float64
}

// FillScalingEfficiency derives each point's Efficiency from the point
// with the smallest server count (the baseline, efficiency 1 by
// definition). Points with a non-positive baseline are left at zero.
func FillScalingEfficiency(points []ScalingPoint) {
	if len(points) == 0 {
		return
	}
	base := points[0]
	for _, p := range points[1:] {
		if p.Servers < base.Servers {
			base = p
		}
	}
	if base.Servers <= 0 || base.ThroughputImgSec <= 0 {
		return
	}
	perServer := base.ThroughputImgSec / float64(base.Servers)
	for i := range points {
		points[i].Efficiency = points[i].ThroughputImgSec / (perServer * float64(points[i].Servers))
	}
}

// Speedup returns the throughput ratio of p over base (0 when base is not
// positive).
func (p ScalingPoint) Speedup(base ScalingPoint) float64 {
	if base.ThroughputImgSec <= 0 {
		return 0
	}
	return p.ThroughputImgSec / base.ThroughputImgSec
}
