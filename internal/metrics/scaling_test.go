package metrics

import "testing"

func TestFillScalingEfficiency(t *testing.T) {
	pts := []ScalingPoint{
		{Servers: 1, ThroughputImgSec: 100},
		{Servers: 2, ThroughputImgSec: 190},
		{Servers: 4, ThroughputImgSec: 360},
	}
	FillScalingEfficiency(pts)
	if pts[0].Efficiency != 1 {
		t.Errorf("baseline efficiency %v, want 1", pts[0].Efficiency)
	}
	if got := pts[1].Efficiency; got != 0.95 {
		t.Errorf("2-server efficiency %v, want 0.95", got)
	}
	if got := pts[2].Efficiency; got != 0.9 {
		t.Errorf("4-server efficiency %v, want 0.9", got)
	}
}

func TestFillScalingEfficiencyUnordered(t *testing.T) {
	pts := []ScalingPoint{
		{Servers: 4, ThroughputImgSec: 300},
		{Servers: 2, ThroughputImgSec: 150},
	}
	FillScalingEfficiency(pts)
	// Baseline is the smallest cluster (2 servers, 75/server).
	if pts[1].Efficiency != 1 {
		t.Errorf("baseline efficiency %v, want 1", pts[1].Efficiency)
	}
	if pts[0].Efficiency != 1 {
		t.Errorf("4-server efficiency %v, want 1 (linear here)", pts[0].Efficiency)
	}
}

func TestFillScalingEfficiencyDegenerate(t *testing.T) {
	FillScalingEfficiency(nil) // must not panic
	pts := []ScalingPoint{{Servers: 1, ThroughputImgSec: 0}}
	FillScalingEfficiency(pts)
	if pts[0].Efficiency != 0 {
		t.Errorf("efficiency with zero baseline = %v, want 0", pts[0].Efficiency)
	}
}

func TestSpeedup(t *testing.T) {
	base := ScalingPoint{Servers: 1, ThroughputImgSec: 100}
	p := ScalingPoint{Servers: 4, ThroughputImgSec: 350}
	if got := p.Speedup(base); got != 3.5 {
		t.Errorf("speedup %v, want 3.5", got)
	}
	if got := p.Speedup(ScalingPoint{}); got != 0 {
		t.Errorf("speedup over zero baseline %v, want 0", got)
	}
}
