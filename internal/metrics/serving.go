package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Serving-side metrics: per-request latency quantiles and the batching
// scheduler's occupancy/queue statistics (DESIGN.md §11). The recorder is
// built for the prediction hot path — Record is lock-free and
// allocation-free, so instrumenting every request costs a few atomic adds.

// latSubBits sub-divides each power-of-two latency octave into 2^latSubBits
// buckets, bounding the quantile estimation error at ~1/2^latSubBits of the
// value (±12.5% at 3 bits) — plenty for p50/p99 reporting without the
// memory or coordination cost of exact percentile tracking.
const latSubBits = 3

const latBuckets = 64 << latSubBits

// LatencyRecorder accumulates a latency distribution in fixed exponential
// buckets. All methods are safe for concurrent use; Record never allocates
// and never blocks, so it can sit on a serving engine's per-request path.
// The zero value is ready to use.
type LatencyRecorder struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [latBuckets]atomic.Int64
}

// bucketOf maps a nanosecond latency to its bucket: the high latSubBits
// bits after the leading one sub-divide the value's power-of-two octave.
func bucketOf(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	n := bits.Len64(uint64(ns)) // octave + 1
	if n <= latSubBits {
		return int(ns)
	}
	sub := (uint64(ns) >> (n - 1 - latSubBits)) & (1<<latSubBits - 1)
	b := (n-latSubBits)<<latSubBits + int(sub)
	if b >= latBuckets {
		b = latBuckets - 1
	}
	return b
}

// bucketUpper returns the inclusive upper bound of a bucket in nanoseconds.
func bucketUpper(b int) int64 {
	if b < 1<<latSubBits {
		return int64(b)
	}
	oct := b>>latSubBits + latSubBits - 1
	if oct >= 62 { // 2^62ns ≈ 146 years: unreachable, avoid overflow
		return 1<<63 - 1
	}
	sub := int64(b&(1<<latSubBits-1)) + 1
	return (1<<oct + sub<<(oct-latSubBits)) - 1
}

// Record notes one observation.
func (l *LatencyRecorder) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	l.count.Add(1)
	l.sumNs.Add(ns)
	for {
		cur := l.maxNs.Load()
		if ns <= cur || l.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
	l.buckets[bucketOf(ns)].Add(1)
}

// Count returns the number of observations so far.
func (l *LatencyRecorder) Count() int64 { return l.count.Load() }

// Reset clears the distribution. Resets racing concurrent Records are not
// atomic — a Record in flight may land partly before and partly after — so
// Reset is for windowed control/benchmark reads (the adaptive batching
// controller, the serving bench's warmup cut), where an off-by-one
// observation is noise, not for exact accounting.
func (l *LatencyRecorder) Reset() {
	l.count.Store(0)
	l.sumNs.Store(0)
	l.maxNs.Store(0)
	for i := range l.buckets {
		l.buckets[i].Store(0)
	}
}

// Mean returns the mean observed latency (zero before any observation).
func (l *LatencyRecorder) Mean() time.Duration {
	n := l.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(l.sumNs.Load() / n)
}

// Max returns the largest observed latency.
func (l *LatencyRecorder) Max() time.Duration { return time.Duration(l.maxNs.Load()) }

// Quantile returns an upper estimate of the q-quantile (q in [0, 1]): the
// upper bound of the bucket containing the q·count-th observation, so the
// true quantile is never under-reported and over-reporting is bounded by
// the bucket width (~12.5%). Zero before any observation. Concurrent
// Records move the distribution while it is read; the estimate is then
// correct for some interleaving, which is all a monitoring read needs.
func (l *LatencyRecorder) Quantile(q float64) time.Duration {
	total := l.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for b := 0; b < latBuckets; b++ {
		seen += l.buckets[b].Load()
		if seen > rank {
			up := bucketUpper(b)
			if m := l.maxNs.Load(); up > m {
				up = m // the last occupied bucket never exceeds the max
			}
			return time.Duration(up)
		}
	}
	return time.Duration(l.maxNs.Load())
}

// ServingStats is a point-in-time snapshot of a prediction runtime's
// behaviour: request/batch counts, the dynamic batcher's achieved
// occupancy, queueing pressure, and latency quantiles. Durations are
// reported in milliseconds for direct JSON/dashboard use.
type ServingStats struct {
	// Requests and Batches count completed work; Rejected counts requests
	// refused because the runtime was shutting down; Shed counts requests
	// refused under overload (full queue with ShedOnFull, or a request
	// that could not meet AdmitDeadline).
	Requests int64 `json:"requests"`
	Batches  int64 `json:"batches"`
	Rejected int64 `json:"rejected"`
	Shed     int64 `json:"shed"`
	// BatchOccupancy is mean requests per dispatched batch — the dynamic
	// batcher's efficiency, in (0, MaxBatch].
	BatchOccupancy float64 `json:"batch_occupancy"`
	// QueueDepth and QueuePeak are the current and high-water number of
	// requests waiting to be batched.
	QueueDepth int `json:"queue_depth"`
	QueuePeak  int `json:"queue_peak"`
	// Request latency (enqueue to reply) quantiles.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
	// Batch service time (replica forward pass) quantiles: the latency
	// floor one full batch adds ahead of a request.
	ServiceP50Ms float64 `json:"service_p50_ms"`
	ServiceP99Ms float64 `json:"service_p99_ms"`
	// ModelVersion is the snapshot round of the model replicas currently
	// serve (see core.Snapshot).
	ModelVersion int64 `json:"model_version"`
	// ModelSwaps counts hot model updates applied since start.
	ModelSwaps int64 `json:"model_swaps"`
	// KernelMode names the replicas' GEMM kernel mode ("deterministic" or
	// "fast"); Quantized reports whether they serve the int8 weight path,
	// and QuantAgree the top-1 agreement the publish-time gate measured
	// against f32 (zero when quantization was never requested).
	KernelMode string  `json:"kernel_mode"`
	Quantized  bool    `json:"quantized"`
	QuantAgree float64 `json:"quant_agreement"`
	// Replicas is the live replica count (equal to the configured count
	// unless autoscaling is on); Resizes counts autoscaler replica-count
	// changes applied since start.
	Replicas int   `json:"replicas"`
	Resizes  int64 `json:"resizes"`
	// Adaptive batching state (zero/false when no SLO is configured):
	// SLOMs is the p99 target, CurMaxBatch/CurMaxDelayMs the controller's
	// current batch ceiling and straggler wait, and SLOBreaches the number
	// of decision windows whose measured p99 exceeded the SLO.
	SLOMs         float64 `json:"slo_ms,omitempty"`
	CurMaxBatch   int     `json:"cur_max_batch,omitempty"`
	CurMaxDelayMs float64 `json:"cur_max_delay_ms,omitempty"`
	SLOBreaches   int64   `json:"slo_breaches,omitempty"`
}

// FeedStats describes a snapshot feed — the delta-distribution channel
// between one publisher and its follower fleet (DESIGN.md §16). The same
// struct serves both ends: a publisher counts what it sent, a follower what
// it received and applied.
type FeedStats struct {
	// Subscribers is the publisher's current follower count (zero on the
	// follower side).
	Subscribers int `json:"subscribers"`
	// Published counts snapshots offered to the feed; Rounds is the latest
	// round published or applied.
	Published int64 `json:"published"`
	Round     int64 `json:"round"`
	// FullSent/DeltaSent count per-subscriber transmissions by kind, and
	// FullBytes/DeltaBytes their payload volume. On the follower side the
	// same fields count receptions.
	FullSent   int64 `json:"full_sent"`
	DeltaSent  int64 `json:"delta_sent"`
	FullBytes  int64 `json:"full_bytes"`
	DeltaBytes int64 `json:"delta_bytes"`
	// Resyncs counts full snapshots forced by divergence (a subscriber
	// whose acknowledged CRC stopped matching the published round, or a
	// delta the follower had to reject at the base check).
	Resyncs int64 `json:"resyncs"`
	// Redials counts follower reconnection attempts after a lost feed.
	Redials int64 `json:"redials"`
}

// Ms converts a duration to float milliseconds (the ServingStats unit).
func Ms(d time.Duration) float64 { return float64(d) / 1e6 }
