package metrics

import (
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip pins the bucket mapping's defining property: every
// latency lands in a bucket whose bounds contain it, and the relative
// over-estimate of the upper bound is within one sub-bucket (~12.5%).
func TestBucketRoundTrip(t *testing.T) {
	for _, ns := range []int64{1, 2, 7, 8, 15, 16, 17, 100, 1023, 1024, 4097,
		1e6, 12345678, 1e9, 5e12} {
		b := bucketOf(ns)
		up := bucketUpper(b)
		if up < ns {
			t.Errorf("ns=%d: bucket %d upper %d below the value", ns, b, up)
		}
		if float64(up) > float64(ns)*1.13+1 {
			t.Errorf("ns=%d: bucket %d upper %d overestimates by more than a sub-bucket", ns, b, up)
		}
		if b > 0 && bucketUpper(b-1) >= ns {
			t.Errorf("ns=%d: previous bucket %d upper %d already covers it", ns, b-1, bucketUpper(b-1))
		}
	}
}

// TestLatencyRecorderQuantiles feeds a known distribution and checks the
// quantile estimates bracket the true values.
func TestLatencyRecorderQuantiles(t *testing.T) {
	var l LatencyRecorder
	// 1..1000 µs, uniformly.
	for i := 1; i <= 1000; i++ {
		l.Record(time.Duration(i) * time.Microsecond)
	}
	if l.Count() != 1000 {
		t.Fatalf("count %d, want 1000", l.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Microsecond}, {0.99, 990 * time.Microsecond}}
	for _, c := range checks {
		got := l.Quantile(c.q)
		if got < c.want {
			t.Errorf("q=%v: %v under-reports true quantile %v", c.q, got, c.want)
		}
		if float64(got) > float64(c.want)*1.15 {
			t.Errorf("q=%v: %v over-reports true quantile %v by more than the bucket bound", c.q, got, c.want)
		}
	}
	if max := l.Max(); max != time.Millisecond {
		t.Errorf("max %v, want 1ms", max)
	}
	if l.Quantile(1) != time.Millisecond {
		t.Errorf("q=1 is %v, want the max 1ms", l.Quantile(1))
	}
	if mean := l.Mean(); mean < 400*time.Microsecond || mean > 600*time.Microsecond {
		t.Errorf("mean %v outside [400µs, 600µs]", mean)
	}
}

// TestLatencyRecorderConcurrent hammers Record from many goroutines (run
// under -race by CI) and checks the totals add up.
func TestLatencyRecorderConcurrent(t *testing.T) {
	var l LatencyRecorder
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Record(time.Duration(g*per+i) * time.Nanosecond)
				if i%100 == 0 {
					l.Quantile(0.99) // concurrent reads must not disturb writes
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Count() != goroutines*per {
		t.Fatalf("count %d, want %d", l.Count(), goroutines*per)
	}
	var bucketSum int64
	for i := range l.buckets {
		bucketSum += l.buckets[i].Load()
	}
	if bucketSum != goroutines*per {
		t.Fatalf("bucket sum %d, want %d", bucketSum, goroutines*per)
	}
}

// TestLatencyRecorderConcurrentAccuracy is the quantile-accuracy-under-
// concurrency pin (run under -race by CI): goroutines record a known sample
// set while a reader hammers Quantile; afterwards every quantile estimate
// must bracket the exact quantile of the same samples computed from a sorted
// reference — lower-bounded by the true value, upper-bounded by one bucket
// width (~12.5%). Mid-flight reads must stay within the distribution's
// global envelope even while the distribution moves under them.
func TestLatencyRecorderConcurrentAccuracy(t *testing.T) {
	var l LatencyRecorder
	const writers, per = 8, 4000
	// Deterministic per-writer samples spanning several octaves, heavy-ish
	// tail — the shape a serving latency distribution actually has.
	samples := make([]time.Duration, writers*per)
	for g := 0; g < writers; g++ {
		x := uint64(g*2654435761 + 12345)
		for i := 0; i < per; i++ {
			x = x*6364136223846793005 + 1442695040888963407 // LCG, deterministic
			d := time.Duration(100+x%100_000) * time.Microsecond / 100
			if x%97 == 0 {
				d *= 50 // tail spikes
			}
			samples[g*per+i] = d
		}
	}

	stopRead := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
				got := l.Quantile(q)
				if got < 0 || (l.Max() > 0 && got > l.Max()) {
					t.Errorf("mid-flight Quantile(%v) = %v outside [0, max]", q, got)
					return
				}
			}
			l.Mean()
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, d := range samples[g*per : (g+1)*per] {
				l.Record(d)
			}
		}(g)
	}
	wg.Wait()
	close(stopRead)
	readerWG.Wait()

	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if l.Count() != int64(len(sorted)) {
		t.Fatalf("count %d, want %d", l.Count(), len(sorted))
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		ref := sorted[int(q*float64(len(sorted)))]
		got := l.Quantile(q)
		if got < ref {
			t.Errorf("q=%v: %v under-reports sorted reference %v", q, got, ref)
		}
		if float64(got) > float64(ref)*1.13+1 {
			t.Errorf("q=%v: %v over-reports sorted reference %v beyond one bucket width", q, got, ref)
		}
	}
	if l.Max() != sorted[len(sorted)-1] {
		t.Errorf("max %v, want %v", l.Max(), sorted[len(sorted)-1])
	}
}

// TestLatencyRecorderReset pins the windowed-read contract.
func TestLatencyRecorderReset(t *testing.T) {
	var l LatencyRecorder
	for i := 0; i < 100; i++ {
		l.Record(time.Millisecond)
	}
	l.Reset()
	if l.Count() != 0 || l.Max() != 0 || l.Quantile(0.99) != 0 {
		t.Fatalf("after Reset: count=%d max=%v q99=%v, want zeros", l.Count(), l.Max(), l.Quantile(0.99))
	}
	l.Record(2 * time.Millisecond)
	if l.Count() != 1 || l.Mean() != 2*time.Millisecond {
		t.Fatalf("recorder unusable after Reset: count=%d mean=%v", l.Count(), l.Mean())
	}
}

// TestLatencyRecorderZeroAlloc pins Record's hot-path contract.
func TestLatencyRecorderZeroAlloc(t *testing.T) {
	var l LatencyRecorder
	if avg := testing.AllocsPerRun(100, func() { l.Record(time.Millisecond) }); avg > 0 {
		t.Errorf("Record allocates %.1f times per call, want 0", avg)
	}
}
