package metrics

import "time"

// TransportStats is one node's view of the TCP cluster transport: traffic
// volume, membership churn, and the per-round synchronisation wall time
// distribution. The transport records round times into a LatencyRecorder
// and snapshots its quantiles here, so reading stats never perturbs the
// hot path.
type TransportStats struct {
	Rank      int   `json:"rank"`
	Peers     int   `json:"peers"`      // static cluster size
	LivePeers int   `json:"live_peers"` // currently alive (excluding self)
	Epoch     int64 `json:"epoch"`      // membership epoch (flips so far)

	BytesSent  int64 `json:"bytes_sent"`
	BytesRecv  int64 `json:"bytes_recv"`
	FramesSent int64 `json:"frames_sent"`
	FramesRecv int64 `json:"frames_recv"`

	Rounds        int64 `json:"rounds"`         // completed all-reduce rounds
	RestartRounds int64 `json:"restart_rounds"` // rounds begun with a changed view
	Aborts        int64 `json:"aborts"`         // collectives cut short by churn
	Reconnects    int64 `json:"reconnects"`     // live connections replaced
	PeerDeaths    int64 `json:"peer_deaths"`    // alive→dead transitions observed

	// Fault-handling counters: rounds cut by the per-step watchdog, frames
	// rejected as corrupt (bad checksum or framing), and peers barred from
	// reconnecting after being caught corrupting or stalling.
	WatchdogFires int64 `json:"watchdog_fires"`
	CorruptFrames int64 `json:"corrupt_frames"`
	Quarantines   int64 `json:"quarantines"`

	SnapshotsServed  int64 `json:"snapshots_served"`
	SnapshotsFetched int64 `json:"snapshots_fetched"`

	// Round sync wall time (barrier wait + collective), from the
	// lock-free recorder.
	RoundMean time.Duration `json:"round_mean_ns"`
	RoundP50  time.Duration `json:"round_p50_ns"`
	RoundP99  time.Duration `json:"round_p99_ns"`
	RoundMax  time.Duration `json:"round_max_ns"`

	// CollectiveMean isolates the data phase — the quantity the simulated
	// interconnect's AllReduceUS predicts.
	CollectiveMean time.Duration `json:"collective_mean_ns"`

	// Per-phase totals across all rounds: time at the round barrier, in
	// the reduce-scatter half (tree: reduce toward the root), and in the
	// all-gather half (tree: broadcast down).
	BarrierWaitNs   int64 `json:"barrier_wait_ns"`
	ReduceScatterNs int64 `json:"reduce_scatter_ns"`
	AllGatherNs     int64 `json:"all_gather_ns"`

	// Asynchronous (overlapped) rounds: how many ran through
	// BeginAllReduce, how much of their wall time proceeded concurrently
	// with computation (hidden), and how much still stalled the caller in
	// Wait (blocked — the exposed cost of the exchange).
	AsyncRounds      int64 `json:"async_rounds"`
	OverlapHiddenNs  int64 `json:"overlap_hidden_ns"`
	OverlapBlockedNs int64 `json:"overlap_blocked_ns"`
}
