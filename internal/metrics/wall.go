package metrics

import "sort"

// WallPoint records one epoch of real (wall-clock) execution by the task
// runtime: its measured duration and training throughput. It complements
// EpochPoint, whose time axis is the simulator's; the runtime produces both
// so statistical series stay comparable across schedulers while hardware
// efficiency is measured for real.
type WallPoint struct {
	Epoch        int
	Sec          float64
	ImagesPerSec float64
}

// Median returns the median of s (zero for an empty slice). The input is
// not modified.
func Median(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	c := append([]float64(nil), s...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Min returns the smallest element of s (zero for an empty slice).
func Min(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func epochSecs(pts []WallPoint) []float64 {
	s := make([]float64, len(pts))
	for i, p := range pts {
		s[i] = p.Sec
	}
	return s
}

// MedianEpochSec returns the median epoch duration of the series — the
// robust per-epoch cost estimator the scheduler benchmarks report (the
// median discards warm-up and scheduler-noise outliers). Zero for an empty
// series.
func MedianEpochSec(pts []WallPoint) float64 { return Median(epochSecs(pts)) }

// MinEpochSec returns the fastest observed epoch — the classical
// noise-floor estimator for benchmark comparisons. Zero for an empty
// series.
func MinEpochSec(pts []WallPoint) float64 { return Min(epochSecs(pts)) }

// MeanImagesPerSec returns total images over total wall-clock seconds
// across the series (each point's image count is recovered from its rate ×
// duration). Zero for an empty or zero-duration series.
func MeanImagesPerSec(pts []WallPoint) float64 {
	var images, secs float64
	for _, p := range pts {
		images += p.ImagesPerSec * p.Sec
		secs += p.Sec
	}
	if secs == 0 {
		return 0
	}
	return images / secs
}
