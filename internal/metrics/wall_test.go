package metrics

import (
	"math"
	"testing"
)

func TestWallSummaries(t *testing.T) {
	pts := []WallPoint{
		{Epoch: 1, Sec: 4, ImagesPerSec: 100}, // warm-up outlier
		{Epoch: 2, Sec: 2, ImagesPerSec: 200},
		{Epoch: 3, Sec: 1, ImagesPerSec: 400},
	}
	if got := MedianEpochSec(pts); got != 2 {
		t.Errorf("MedianEpochSec = %v, want 2", got)
	}
	if got := MinEpochSec(pts); got != 1 {
		t.Errorf("MinEpochSec = %v, want 1", got)
	}
	// 400+400+400 images over 7 seconds.
	if got := MeanImagesPerSec(pts); math.Abs(got-1200.0/7) > 1e-12 {
		t.Errorf("MeanImagesPerSec = %v, want %v", got, 1200.0/7)
	}

	even := []WallPoint{{Sec: 1}, {Sec: 3}}
	if got := MedianEpochSec(even); got != 2 {
		t.Errorf("even MedianEpochSec = %v, want 2", got)
	}
	if MedianEpochSec(nil) != 0 || MinEpochSec(nil) != 0 || MeanImagesPerSec(nil) != 0 {
		t.Error("empty series must summarise to zero")
	}
}
