package nn

import "crossbow/internal/tensor"

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	stateless
	shape []int // per-sample shape
	batch int

	y  *tensor.Tensor
	dx *tensor.Tensor
}

// NewReLU constructs a ReLU over per-sample shape inShape.
func NewReLU(batch int, inShape []int) *ReLU {
	full := append([]int{batch}, inShape...)
	return &ReLU{
		shape: append([]int(nil), inShape...),
		batch: batch,
		y:     tensor.New(full...),
		dx:    tensor.New(full...),
	}
}

func (r *ReLU) Name() string    { return "relu" }
func (r *ReLU) OutShape() []int { return r.shape }

func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	xd, yd := x.Data(), r.y.Data()
	tensor.ParallelFor(len(xd), 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := xd[i]; v > 0 {
				yd[i] = v
			} else {
				yd[i] = 0
			}
		}
	})
	return r.y
}

func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	// y > 0 ⇔ the forward input was positive, so the cached output doubles
	// as the gradient mask.
	dyd, dxd, yd := dy.Data(), r.dx.Data(), r.y.Data()
	tensor.ParallelFor(len(yd), 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if yd[i] > 0 {
				dxd[i] = dyd[i]
			} else {
				dxd[i] = 0
			}
		}
	})
	return r.dx
}

// Dropout zeroes activations with probability P during training and scales
// the survivors by 1/(1-P) (inverted dropout); it is the identity at
// evaluation time. VGG-16's classifier head uses it.
type Dropout struct {
	stateless
	P     float64
	shape []int
	batch int
	rng   *tensor.RNG

	keep []float32
	y    *tensor.Tensor
	dx   *tensor.Tensor
}

// NewDropout constructs a dropout layer with drop probability p.
func NewDropout(batch int, inShape []int, p float64, rng *tensor.RNG) *Dropout {
	full := append([]int{batch}, inShape...)
	n := tensor.Volume(full)
	return &Dropout{
		P: p, shape: append([]int(nil), inShape...), batch: batch, rng: rng,
		keep: make([]float32, n),
		y:    tensor.New(full...),
		dx:   tensor.New(full...),
	}
}

func (d *Dropout) Name() string    { return "dropout" }
func (d *Dropout) OutShape() []int { return d.shape }

func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	xd, yd := x.Data(), d.y.Data()
	if !train || d.P <= 0 {
		copy(yd, xd)
		for i := range d.keep {
			d.keep[i] = 1
		}
		return d.y
	}
	scale := float32(1 / (1 - d.P))
	for i, v := range xd {
		if d.rng.Float64() < d.P {
			d.keep[i] = 0
			yd[i] = 0
		} else {
			d.keep[i] = scale
			yd[i] = v * scale
		}
	}
	return d.y
}

func (d *Dropout) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dyd, dxd := dy.Data(), d.dx.Data()
	for i, k := range d.keep {
		dxd[i] = dyd[i] * k
	}
	return d.dx
}

// Flatten reshapes [B, ...] to [B, V]. It shares data with its input, so
// Backward likewise just reshapes.
type Flatten struct {
	stateless
	in    []int
	vol   int
	batch int
}

// NewFlatten constructs a flatten layer.
func NewFlatten(batch int, inShape []int) *Flatten {
	return &Flatten{in: append([]int(nil), inShape...), vol: tensor.Volume(inShape), batch: batch}
}

func (f *Flatten) Name() string    { return "flatten" }
func (f *Flatten) OutShape() []int { return []int{f.vol} }

func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return x.Reshape(f.batch, f.vol)
}

func (f *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(append([]int{f.batch}, f.in...)...)
}
