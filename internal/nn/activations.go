package nn

import "crossbow/internal/tensor"

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	stateless
	shape []int // per-sample shape
	batch int

	y  *tensor.Tensor
	dx *tensor.Tensor

	fwdLoop func(lo, hi int)
	bwdLoop func(lo, hi int)
	xd, dyd []float32

	// absorbed: fused into the preceding layer's GEMM epilogue
	// (Network.FuseInference); forward is the identity.
	absorbed bool

	pbY, pbDx *plannedBuf
}

// NewReLU constructs a ReLU over per-sample shape inShape.
func NewReLU(batch int, inShape []int) *ReLU {
	full := append([]int{batch}, inShape...)
	r := &ReLU{
		shape: append([]int(nil), inShape...),
		batch: batch,
		y:     tensor.NewShell(full...),
		dx:    tensor.NewShell(full...),
	}
	r.fwdLoop = r.forwardChunk
	r.bwdLoop = r.backwardChunk
	return r
}

func (r *ReLU) ensure() {
	if r.y.HasData() {
		return
	}
	n := tensor.Volume(r.y.Shape())
	r.y.SetData(make([]float32, n))
	r.dx.SetData(make([]float32, n))
}

func (r *ReLU) planFwd(p *taskPlanner, in *plannedBuf) *plannedBuf {
	if r.absorbed {
		return in // fused into the upstream epilogue: no buffers, pass-through
	}
	r.pbY = p.shell("relu.y", r.y, bufActivation)
	p.touch(in)
	return r.pbY
}

func (r *ReLU) planBwd(p *taskPlanner, dout *plannedBuf) *plannedBuf {
	r.pbDx = p.shell("relu.dx", r.dx, bufGradient)
	p.touch(dout, r.pbY) // the cached output doubles as the gradient mask
	return r.pbDx
}

func (r *ReLU) Name() string    { return "relu" }
func (r *ReLU) OutShape() []int { return r.shape }

func (r *ReLU) forwardChunk(lo, hi int) {
	tensor.ReluFwd(r.y.Data()[lo:hi], r.xd[lo:hi])
}

func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if r.absorbed {
		if train {
			panic("nn: training forward through a fused (inference-only) network")
		}
		return x
	}
	r.ensure()
	r.xd = x.Data()
	tensor.ParallelFor(len(r.xd), 8192, r.fwdLoop)
	return r.y
}

func (r *ReLU) backwardChunk(lo, hi int) {
	// y > 0 ⇔ the forward input was positive, so the cached output doubles
	// as the gradient mask.
	tensor.ReluBwd(r.dx.Data()[lo:hi], r.dyd[lo:hi], r.y.Data()[lo:hi])
}

func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	r.dyd = dy.Data()
	tensor.ParallelFor(r.y.Len(), 8192, r.bwdLoop)
	return r.dx
}

// Dropout zeroes activations with probability P during training and scales
// the survivors by 1/(1-P) (inverted dropout); it is the identity at
// evaluation time. VGG-16's classifier head uses it.
type Dropout struct {
	stateless
	P     float64
	shape []int
	batch int
	rng   *tensor.RNG

	keep []float32
	y    *tensor.Tensor
	dx   *tensor.Tensor

	pbKeep, pbY, pbDx *plannedBuf
}

// NewDropout constructs a dropout layer with drop probability p.
func NewDropout(batch int, inShape []int, p float64, rng *tensor.RNG) *Dropout {
	full := append([]int{batch}, inShape...)
	return &Dropout{
		P: p, shape: append([]int(nil), inShape...), batch: batch, rng: rng,
		y:  tensor.NewShell(full...),
		dx: tensor.NewShell(full...),
	}
}

func (d *Dropout) ensure() {
	if d.keep != nil {
		return
	}
	n := tensor.Volume(d.y.Shape())
	d.keep = make([]float32, n)
	d.y.SetData(make([]float32, n))
	d.dx.SetData(make([]float32, n))
}

func (d *Dropout) planFwd(p *taskPlanner, in *plannedBuf) *plannedBuf {
	// keep is written interleaved with y, so the closing touch keeps it
	// live across the step even in the forward-only plan (memory.go's
	// sub-op rule — siblings of one kernel step must not share slots).
	d.pbKeep = p.slice("dropout.keep", &d.keep, tensor.Volume(d.y.Shape()), bufActivation)
	d.pbY = p.shell("dropout.y", d.y, bufActivation)
	p.touch(in, d.pbKeep)
	return d.pbY
}

func (d *Dropout) planBwd(p *taskPlanner, dout *plannedBuf) *plannedBuf {
	d.pbDx = p.shell("dropout.dx", d.dx, bufGradient)
	p.touch(dout, d.pbKeep)
	return d.pbDx
}

func (d *Dropout) Name() string    { return "dropout" }
func (d *Dropout) OutShape() []int { return d.shape }

func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.ensure()
	xd, yd := x.Data(), d.y.Data()
	if !train || d.P <= 0 {
		copy(yd, xd)
		for i := range d.keep {
			d.keep[i] = 1
		}
		return d.y
	}
	scale := float32(1 / (1 - d.P))
	for i, v := range xd {
		if d.rng.Float64() < d.P {
			d.keep[i] = 0
			yd[i] = 0
		} else {
			d.keep[i] = scale
			yd[i] = v * scale
		}
	}
	return d.y
}

func (d *Dropout) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dyd, dxd := dy.Data(), d.dx.Data()
	for i, k := range d.keep {
		dxd[i] = dyd[i] * k
	}
	return d.dx
}

// Flatten reshapes [B, ...] to [B, V]. It shares data with its input — the
// shell tensors y and dx are rebound to the caller's storage per pass, so
// no reshape allocation happens on the hot path, and the memory planner
// sees the buffer pass straight through.
type Flatten struct {
	stateless
	in    []int
	vol   int
	batch int

	y  *tensor.Tensor // [B, V] view of the forward input
	dx *tensor.Tensor // [B, ...] view of the backward input
}

// NewFlatten constructs a flatten layer.
func NewFlatten(batch int, inShape []int) *Flatten {
	return &Flatten{
		in: append([]int(nil), inShape...), vol: tensor.Volume(inShape), batch: batch,
		y:  tensor.NewShell(batch, tensor.Volume(inShape)),
		dx: tensor.NewShell(append([]int{batch}, inShape...)...),
	}
}

func (f *Flatten) Name() string    { return "flatten" }
func (f *Flatten) OutShape() []int { return []int{f.vol} }

// planFwd/planBwd: flatten owns no buffers; the input buffer passes through.
func (f *Flatten) planFwd(p *taskPlanner, in *plannedBuf) *plannedBuf   { return in }
func (f *Flatten) planBwd(p *taskPlanner, dout *plannedBuf) *plannedBuf { return dout }

func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.y.SetData(x.Data())
	return f.y
}

func (f *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	f.dx.SetData(dy.Data())
	return f.dx
}
