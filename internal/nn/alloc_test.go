package nn

import (
	"testing"

	"crossbow/internal/memplan"
	"crossbow/internal/tensor"
)

// Allocation-regression smoke (CI): steady-state training iterations must
// perform ~0 heap allocations on the forward/backward hot path. Measured at
// kernel worker budget 1, where every kernel takes its serial path — at
// higher budgets ParallelFor's spawned chunks intrinsically allocate their
// goroutine closures, which the memory benchmark reports separately.
//
// The thresholds are deliberately tight (0 today, 0.5 to absorb measurement
// jitter): a regression here means some per-call allocation crept back into
// a layer, a kernel or the arena attach path.

const hotPathAllocThreshold = 0.5

func measureTaskAllocs(t *testing.T, id ModelID, attach bool) float64 {
	t.Helper()
	const batch = 4
	net := BuildScaled(id, batch, tensor.NewRNG(1))
	w := net.Init(tensor.NewRNG(2))
	g := make([]float32, net.ParamSize())
	net.Bind(w, g)
	if attach {
		net.AttachArena(tensor.NewArena(net.MemPlan().ArenaElems))
	}
	x := tensor.New(append([]int{batch}, net.InShape...)...)
	r := tensor.NewRNG(3)
	for i := range x.Data() {
		x.Data()[i] = float32(r.NormFloat64())
	}
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = r.Intn(net.Classes)
	}
	net.LossAndGrad(x, labels) // warm up (lazy buffers, gemm pools)
	return testing.AllocsPerRun(20, func() {
		tensor.ZeroSlice(g)
		net.LossAndGrad(x, labels)
	})
}

func TestHotPathAllocsArena(t *testing.T) {
	prev := tensor.WorkerBudget()
	defer tensor.SetWorkerBudget(prev)
	tensor.SetWorkerBudget(1)
	for _, id := range AllModels {
		if avg := measureTaskAllocs(t, id, true); avg > hotPathAllocThreshold {
			t.Errorf("%s (arena): %.2f allocs/iteration, want ~0", id, avg)
		}
	}
}

func TestHotPathAllocsPrivate(t *testing.T) {
	// The lazy-private path (reference trainer, replay) must be just as
	// clean once its buffers exist.
	prev := tensor.WorkerBudget()
	defer tensor.SetWorkerBudget(prev)
	tensor.SetWorkerBudget(1)
	if avg := measureTaskAllocs(t, ResNet32, false); avg > hotPathAllocThreshold {
		t.Errorf("resnet32 (private): %.2f allocs/iteration, want ~0", avg)
	}
}

func TestHotPathAllocsPooledAttach(t *testing.T) {
	// The full per-task sequence the runtime executes: check an arena out
	// of the shared pool, attach, train, release. Steady state must stay
	// allocation-free even as arenas migrate between pool slots.
	prev := tensor.WorkerBudget()
	defer tensor.SetWorkerBudget(prev)
	tensor.SetWorkerBudget(1)

	const batch = 4
	net := BuildScaled(ResNet32, batch, tensor.NewRNG(1))
	w := net.Init(tensor.NewRNG(2))
	g := make([]float32, net.ParamSize())
	net.Bind(w, g)
	m := net.MemPlan()
	pool := memplan.NewOnlinePlanner()
	x := tensor.New(append([]int{batch}, net.InShape...)...)
	labels := make([]int, batch)

	task := func() {
		b := pool.Acquire(m.Key(), m.ArenaBytes(), 1)
		net.AttachArena(tensor.ArenaOf(b.Data))
		tensor.ZeroSlice(g)
		net.LossAndGrad(x, labels)
		pool.Release(b)
	}
	// Warm twice with two buffers in flight so the pool's free list has
	// reached its steady capacity.
	b1 := pool.Acquire(m.Key(), m.ArenaBytes(), 1)
	b2 := pool.Acquire(m.Key(), m.ArenaBytes(), 1)
	pool.Release(b1)
	pool.Release(b2)
	task()
	if avg := testing.AllocsPerRun(20, task); avg > hotPathAllocThreshold {
		t.Errorf("pooled task sequence: %.2f allocs/iteration, want ~0", avg)
	}
}

func TestEvaluatePathAllocs(t *testing.T) {
	prev := tensor.WorkerBudget()
	defer tensor.SetWorkerBudget(prev)
	tensor.SetWorkerBudget(1)

	const batch = 8
	net := BuildScaled(ResNet32, batch, tensor.NewRNG(1))
	w := net.Init(tensor.NewRNG(2))
	g := make([]float32, net.ParamSize())
	net.Bind(w, g)
	net.AttachArena(tensor.NewArena(net.MemPlan().ArenaElems))
	x := tensor.New(append([]int{batch}, net.InShape...)...)
	labels := make([]int, batch)
	net.Evaluate(x, labels) // warm (preds scratch)
	if avg := testing.AllocsPerRun(20, func() { net.Evaluate(x, labels) }); avg > hotPathAllocThreshold {
		t.Errorf("evaluate: %.2f allocs/batch, want ~0", avg)
	}
}
