package nn

import (
	"math"

	"crossbow/internal/tensor"
)

// BatchNorm normalises each channel over the batch and spatial dimensions,
// then applies a learned scale (gamma) and shift (beta).
//
// Parameter layout (all inside the model's contiguous vector, paper §4.4):
// [gamma | beta | runMean | runVar]. The running statistics are
// non-learnable — their gradients stay zero — but keeping them in the model
// vector makes every replica fully self-contained: averaging replicas (SMA)
// averages their statistics too, and binding the central average model to a
// network for evaluation needs no side state.
//
// The batch statistics (mean, invStd) and the normalised activations (xhat)
// are planned buffers: they are written in the training-mode forward pass
// and read back in backward, so the task planner keeps them live from the
// layer's forward to its backward step.
type BatchNorm struct {
	C     int // channels
	batch int
	h, w  int // spatial dims (1×1 for dense inputs)
	// Momentum for the running statistics update.
	Momentum float32
	Eps      float32

	gamma, beta     []float32
	runMean, runVar []float32
	gGamma, gBeta   []float32

	x      *tensor.Tensor
	xhat   []float32
	mean   []float32
	invStd []float32
	y      *tensor.Tensor
	dx     *tensor.Tensor
	train  bool

	// absorbed: this layer's eval-mode transform was fused into the
	// preceding convolution's GEMM epilogue (Network.FuseInference); the
	// forward pass is the identity and the layer owns no planned buffers.
	absorbed bool

	fwdLoop func(lo, hi int)
	bwdLoop func(lo, hi int)
	xd, dyd []float32 // per-call kernel inputs for the hoisted loops

	pbXhat, pbMean, pbInv, pbY, pbDx *plannedBuf
}

// NewBatchNorm constructs a batch-norm layer over inShape = [C, H, W] or [C].
// Buffers are declared to the memory planner, not allocated here.
func NewBatchNorm(batch int, inShape []int) *BatchNorm {
	c := inShape[0]
	h, w := 1, 1
	if len(inShape) == 3 {
		h, w = inShape[1], inShape[2]
	}
	full := []int{batch, c, h, w}
	if len(inShape) == 1 {
		full = []int{batch, c}
	}
	b := &BatchNorm{
		C: c, batch: batch, h: h, w: w,
		Momentum: 0.9, Eps: 1e-5,
		y:  tensor.NewShell(full...),
		dx: tensor.NewShell(full...),
	}
	b.fwdLoop = b.forwardChunk
	b.bwdLoop = b.backwardChunk
	return b
}

func (b *BatchNorm) ensure() {
	if b.xhat != nil {
		return
	}
	n := tensor.Volume(b.y.Shape())
	b.xhat = make([]float32, n)
	b.mean = make([]float32, b.C)
	b.invStd = make([]float32, b.C)
	b.y.SetData(make([]float32, n))
	b.dx.SetData(make([]float32, n))
}

func (b *BatchNorm) planFwd(p *taskPlanner, in *plannedBuf) *plannedBuf {
	if b.absorbed {
		return in // fused into the upstream epilogue: no buffers, pass-through
	}
	// Outputs first, inputs after (memory.go's sub-op rule): the channel
	// loop reads x throughout while writing statistics, xhat and y. The
	// closing touch includes the secondary outputs so they stay live for
	// the whole kernel step even when no backward walk follows (the
	// forward-only plan): the loop writes them interleaved with y, so none
	// may share y's slot.
	b.pbMean = p.slice("bn.mean", &b.mean, b.C, bufActivation)
	b.pbInv = p.slice("bn.invstd", &b.invStd, b.C, bufActivation)
	b.pbXhat = p.slice("bn.xhat", &b.xhat, tensor.Volume(b.y.Shape()), bufActivation)
	b.pbY = p.shell("bn.y", b.y, bufActivation)
	p.touch(in, b.pbMean, b.pbInv, b.pbXhat)
	return b.pbY
}

func (b *BatchNorm) planBwd(p *taskPlanner, dout *plannedBuf) *plannedBuf {
	b.pbDx = p.shell("bn.dx", b.dx, bufGradient)
	p.touch(dout, b.pbXhat, b.pbMean, b.pbInv)
	return b.pbDx
}

func (b *BatchNorm) Name() string { return "batchnorm" }

func (b *BatchNorm) OutShape() []int {
	if b.h == 1 && b.w == 1 && b.y.Rank() == 2 {
		return []int{b.C}
	}
	return []int{b.C, b.h, b.w}
}

func (b *BatchNorm) NumParams() int { return 4 * b.C }

func (b *BatchNorm) Bind(w, g []float32) {
	c := b.C
	b.gamma, b.beta = w[:c], w[c:2*c]
	b.runMean, b.runVar = w[2*c:3*c], w[3*c:4*c]
	b.gGamma, b.gBeta = g[:c], g[c:2*c]
}

func (b *BatchNorm) InitParams(r *tensor.RNG, w []float32) {
	c := b.C
	tensor.InitConst(w[:c], 1)      // gamma
	tensor.InitConst(w[c:2*c], 0)   // beta
	tensor.InitConst(w[2*c:3*c], 0) // running mean
	tensor.InitConst(w[3*c:4*c], 1) // running var
}

// channelAt returns the flat offset of (n, c) and the per-channel plane size.
func (b *BatchNorm) plane() int { return b.h * b.w }

func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if b.absorbed {
		if train {
			panic("nn: training forward through a fused (inference-only) network")
		}
		return x
	}
	b.ensure()
	b.x = x
	b.train = train
	b.xd = x.Data()
	plane := b.plane()
	count := b.batch * plane

	// Channels are fully independent (statistics, outputs and the
	// per-channel parameter entries), so channel-parallel execution is
	// bit-deterministic at any worker count.
	tensor.ParallelFor(b.C, 1+(1<<12)/max(1, count), b.fwdLoop)
	return b.y
}

func (b *BatchNorm) forwardChunk(cLo, cHi int) {
	b.forwardChannels(b.xd, b.y.Data(), b.plane(), b.batch*b.plane(), b.train, cLo, cHi)
}

func (b *BatchNorm) forwardChannels(xd, yd []float32, plane, count int, train bool, cLo, cHi int) {
	for c := cLo; c < cHi; c++ {
		var mean, invStd float32
		if train {
			var s float64
			for n := 0; n < b.batch; n++ {
				off := (n*b.C + c) * plane
				for _, v := range xd[off : off+plane] {
					s += float64(v)
				}
			}
			mean = float32(s / float64(count))
			var sq float64
			for n := 0; n < b.batch; n++ {
				off := (n*b.C + c) * plane
				for _, v := range xd[off : off+plane] {
					d := float64(v - mean)
					sq += d * d
				}
			}
			variance := float32(sq / float64(count))
			invStd = 1 / float32(math.Sqrt(float64(variance)+float64(b.Eps)))
			// Update running statistics in the model vector.
			b.runMean[c] = b.Momentum*b.runMean[c] + (1-b.Momentum)*mean
			b.runVar[c] = b.Momentum*b.runVar[c] + (1-b.Momentum)*variance
		} else {
			mean = b.runMean[c]
			invStd = 1 / float32(math.Sqrt(float64(b.runVar[c])+float64(b.Eps)))
		}
		b.mean[c], b.invStd[c] = mean, invStd
		g, bt := b.gamma[c], b.beta[c]
		for n := 0; n < b.batch; n++ {
			off := (n*b.C + c) * plane
			for i := off; i < off+plane; i++ {
				xh := (xd[i] - mean) * invStd
				b.xhat[i] = xh
				yd[i] = g*xh + bt
			}
		}
	}
}

func (b *BatchNorm) Backward(dy *tensor.Tensor) *tensor.Tensor {
	b.dyd = dy.Data()
	plane := b.plane()

	tensor.ParallelFor(b.C, 1+(1<<12)/max(1, b.batch*plane), b.bwdLoop)
	return b.dx
}

func (b *BatchNorm) backwardChunk(cLo, cHi int) {
	b.backwardChannels(b.dyd, b.dx.Data(), b.plane(), float32(b.batch*b.plane()), cLo, cHi)
}

func (b *BatchNorm) backwardChannels(dyd, dxd []float32, plane int, count float32, cLo, cHi int) {
	for c := cLo; c < cHi; c++ {
		var sumDy, sumDyXhat float64
		for n := 0; n < b.batch; n++ {
			off := (n*b.C + c) * plane
			for i := off; i < off+plane; i++ {
				sumDy += float64(dyd[i])
				sumDyXhat += float64(dyd[i]) * float64(b.xhat[i])
			}
		}
		b.gBeta[c] += float32(sumDy)
		b.gGamma[c] += float32(sumDyXhat)

		g := b.gamma[c]
		invStd := b.invStd[c]
		if !b.train {
			// Evaluation-mode backward (used only in gradient tests):
			// statistics are constants.
			for n := 0; n < b.batch; n++ {
				off := (n*b.C + c) * plane
				for i := off; i < off+plane; i++ {
					dxd[i] = dyd[i] * g * invStd
				}
			}
			continue
		}
		mDy := float32(sumDy) / count
		mDyXhat := float32(sumDyXhat) / count
		for n := 0; n < b.batch; n++ {
			off := (n*b.C + c) * plane
			for i := off; i < off+plane; i++ {
				dxd[i] = g * invStd * (dyd[i] - mDy - b.xhat[i]*mDyXhat)
			}
		}
	}
}
