package nn

import "crossbow/internal/tensor"

// Conv2D is a 2-D convolution over NCHW inputs with OIHW filters, lowered to
// GEMM via im2col. Padding and stride are symmetric per axis.
type Conv2D struct {
	Geom  tensor.ConvGeom
	batch int

	w, b   []float32
	gw, gb []float32

	x    *tensor.Tensor
	y    *tensor.Tensor
	dx   *tensor.Tensor
	col  []float32 // im2col scratch, reused across samples
	dcol []float32
}

// NewConv2D constructs a convolution layer. inShape is [C, H, W].
func NewConv2D(batch int, inShape []int, outC, k, stride, pad int) *Conv2D {
	g := tensor.ConvGeom{
		InC: inShape[0], InH: inShape[1], InW: inShape[2],
		OutC: outC, KH: k, KW: k,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
	}
	return &Conv2D{
		Geom:  g,
		batch: batch,
		y:     tensor.New(batch, outC, g.OutH(), g.OutW()),
		dx:    tensor.New(batch, g.InC, g.InH, g.InW),
		col:   make([]float32, g.ColRows()*g.ColCols()),
		dcol:  make([]float32, g.ColRows()*g.ColCols()),
	}
}

func (c *Conv2D) Name() string { return "conv2d" }

func (c *Conv2D) OutShape() []int {
	return []int{c.Geom.OutC, c.Geom.OutH(), c.Geom.OutW()}
}

func (c *Conv2D) NumParams() int {
	g := c.Geom
	return g.OutC*g.InC*g.KH*g.KW + g.OutC
}

func (c *Conv2D) Bind(w, g []float32) {
	nw := c.Geom.OutC * c.Geom.InC * c.Geom.KH * c.Geom.KW
	c.w, c.b = w[:nw], w[nw:nw+c.Geom.OutC]
	c.gw, c.gb = g[:nw], g[nw:nw+c.Geom.OutC]
}

func (c *Conv2D) InitParams(r *tensor.RNG, w []float32) {
	nw := c.Geom.OutC * c.Geom.InC * c.Geom.KH * c.Geom.KW
	fanIn := c.Geom.InC * c.Geom.KH * c.Geom.KW
	tensor.InitHe(r, w[:nw], fanIn)
	tensor.InitConst(w[nw:nw+c.Geom.OutC], 0)
}

func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.Geom
	checkIn("conv2d", x, c.batch, []int{g.InC, g.InH, g.InW})
	c.x = x
	inVol := g.InC * g.InH * g.InW
	outSpatial := g.ColCols()
	outVol := g.OutC * outSpatial
	xd, yd := x.Data(), c.y.Data()
	for n := 0; n < c.batch; n++ {
		tensor.Im2col(g, xd[n*inVol:(n+1)*inVol], c.col)
		out := yd[n*outVol : (n+1)*outVol]
		tensor.Gemm(1, c.w, g.OutC, g.ColRows(), c.col, outSpatial, 0, out)
		for oc := 0; oc < g.OutC; oc++ {
			bias := c.b[oc]
			row := out[oc*outSpatial : (oc+1)*outSpatial]
			for i := range row {
				row[i] += bias
			}
		}
	}
	return c.y
}

func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	g := c.Geom
	inVol := g.InC * g.InH * g.InW
	outSpatial := g.ColCols()
	outVol := g.OutC * outSpatial
	xd, dyd, dxd := c.x.Data(), dy.Data(), c.dx.Data()
	c.dx.Zero()
	for n := 0; n < c.batch; n++ {
		dout := dyd[n*outVol : (n+1)*outVol]
		// Bias gradient: per-channel sums.
		for oc := 0; oc < g.OutC; oc++ {
			row := dout[oc*outSpatial : (oc+1)*outSpatial]
			var s float32
			for _, v := range row {
				s += v
			}
			c.gb[oc] += s
		}
		// Weight gradient: dW += dout (OutC×S) * colᵀ (S×ColRows).
		tensor.Im2col(g, xd[n*inVol:(n+1)*inVol], c.col)
		tensor.GemmTB(1, dout, g.OutC, outSpatial, c.col, g.ColRows(), 1, c.gw)
		// Input gradient: dcol = Wᵀ (ColRows×OutC) * dout (OutC×S).
		tensor.GemmTA(1, c.w, g.OutC, g.ColRows(), dout, outSpatial, 0, c.dcol)
		tensor.Col2im(g, c.dcol, dxd[n*inVol:(n+1)*inVol])
	}
	return c.dx
}
