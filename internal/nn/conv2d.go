package nn

import "crossbow/internal/tensor"

// Conv2D is a 2-D convolution over NCHW inputs with OIHW filters, lowered to
// GEMM via batched im2col: the whole mini-batch is expanded into one
// ColRows × batch·S column matrix and each pass (forward, weight gradient,
// input gradient) runs a single large GEMM per layer instead of batch small
// ones. Padding and stride are symmetric per axis.
//
// The batched lowering keeps the forward activations, input gradients and
// bias gradients bit-identical to the per-sample reference path (each output
// element's dot product runs in the same order); only the weight gradient
// sums the batch in one accumulation instead of batch partial sums, which
// regroups the reduction — see DESIGN.md §8 and TestConv2DBatchedMatchesReference.
type Conv2D struct {
	Geom  tensor.ConvGeom
	batch int

	w, b   []float32
	gw, gb []float32

	x  *tensor.Tensor
	y  *tensor.Tensor
	dx *tensor.Tensor

	// Reusable batched scratch, allocated once for the layer's batch size:
	// col/dcol hold the ColRows × batch·S column matrices, pack stages the
	// OutC × batch·S GEMM operand (forward output, then dY in backward).
	// col still holds im2col(x) from Forward when Backward runs, so the
	// weight-gradient pass never recomputes it.
	col      []float32
	dcol     []float32
	pack     []float32 // OutC × NS staging (forward output / dY for the input grad)
	packT    []float32 // NS × OutC staging of dY for the weight-grad GEMM
	gwT      []float32 // ColRows × OutC staging for the transposed weight-grad GEMM
	colFresh bool      // col currently holds im2col of c.x
	colInit  bool      // col's static padding zeros are in place
}

// NewConv2D constructs a convolution layer. inShape is [C, H, W].
func NewConv2D(batch int, inShape []int, outC, k, stride, pad int) *Conv2D {
	g := tensor.ConvGeom{
		InC: inShape[0], InH: inShape[1], InW: inShape[2],
		OutC: outC, KH: k, KW: k,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
	}
	ns := batch * g.ColCols()
	return &Conv2D{
		Geom:  g,
		batch: batch,
		y:     tensor.New(batch, outC, g.OutH(), g.OutW()),
		dx:    tensor.New(batch, g.InC, g.InH, g.InW),
		col:   make([]float32, g.ColRows()*ns),
		dcol:  make([]float32, g.ColRows()*ns),
		pack:  make([]float32, g.OutC*ns),
		packT: make([]float32, ns*g.OutC),
		gwT:   make([]float32, g.ColRows()*g.OutC),
	}
}

func (c *Conv2D) Name() string { return "conv2d" }

func (c *Conv2D) OutShape() []int {
	return []int{c.Geom.OutC, c.Geom.OutH(), c.Geom.OutW()}
}

func (c *Conv2D) NumParams() int {
	g := c.Geom
	return g.OutC*g.InC*g.KH*g.KW + g.OutC
}

func (c *Conv2D) Bind(w, g []float32) {
	nw := c.Geom.OutC * c.Geom.InC * c.Geom.KH * c.Geom.KW
	c.w, c.b = w[:nw], w[nw:nw+c.Geom.OutC]
	c.gw, c.gb = g[:nw], g[nw:nw+c.Geom.OutC]
}

func (c *Conv2D) InitParams(r *tensor.RNG, w []float32) {
	nw := c.Geom.OutC * c.Geom.InC * c.Geom.KH * c.Geom.KW
	fanIn := c.Geom.InC * c.Geom.KH * c.Geom.KW
	tensor.InitHe(r, w[:nw], fanIn)
	tensor.InitConst(w[nw:nw+c.Geom.OutC], 0)
}

func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.Geom
	checkIn("conv2d", x, c.batch, []int{g.InC, g.InH, g.InW})
	c.x = x
	s := g.ColCols()
	ns := c.batch * s
	outVol := g.OutC * s
	// One batched lowering + one GEMM for the whole mini-batch:
	// pack(OutC × NS) = W(OutC × ColRows) · col(ColRows × NS).
	tensor.Im2colBatch(g, c.batch, x.Data(), c.col, c.colInit)
	c.colInit = true
	c.colFresh = true
	tensor.Gemm(1, c.w, g.OutC, g.ColRows(), c.col, ns, 0, c.pack)
	// Un-stage into NCHW and add the bias.
	yd := c.y.Data()
	tensor.ParallelFor(c.batch, 1+(1<<14)/max(1, outVol), func(lo, hi int) {
		for n := lo; n < hi; n++ {
			for oc := 0; oc < g.OutC; oc++ {
				src := c.pack[oc*ns+n*s : oc*ns+n*s+s]
				dst := yd[n*outVol+oc*s : n*outVol+oc*s+s]
				bias := c.b[oc]
				for i, v := range src {
					dst[i] = v + bias
				}
			}
		}
	})
	return c.y
}

func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	g := c.Geom
	s := g.ColCols()
	ns := c.batch * s
	outVol := g.OutC * s
	dyd := dy.Data()
	// Bias gradient: per-channel sums, samples in order (matches the
	// per-sample reference accumulation order exactly).
	for n := 0; n < c.batch; n++ {
		for oc := 0; oc < g.OutC; oc++ {
			row := dyd[n*outVol+oc*s : n*outVol+oc*s+s]
			var sum float32
			for _, v := range row {
				sum += v
			}
			c.gb[oc] += sum
		}
	}
	// Stage dY twice: pack (OutC × NS) feeds the input-grad GEMM, packT
	// (NS × OutC) feeds the weight-grad GEMM as a directly streamable
	// row-major operand.
	tensor.ParallelFor(c.batch, 1+(1<<14)/max(1, outVol), func(lo, hi int) {
		for n := lo; n < hi; n++ {
			for oc := 0; oc < g.OutC; oc++ {
				dst := c.pack[oc*ns+n*s : oc*ns+n*s+s]
				src := dyd[n*outVol+oc*s : n*outVol+oc*s+s]
				if s < 16 {
					for i := range dst {
						dst[i] = src[i]
					}
				} else {
					copy(dst, src)
				}
				ti := (n*s)*g.OutC + oc
				for i := range src {
					c.packT[ti] = src[i]
					ti += g.OutC
				}
			}
		}
	})
	// Weight gradient: dW(OutC × ColRows) += dY(OutC × NS) · colᵀ. The
	// forward pass already lowered x into col; recompute only if another
	// forward ran since (shared-layer safety). The GEMM runs transposed —
	// gwT(ColRows × OutC) = col · dYᵀ with dYᵀ staged as packT — so both
	// operands stream directly (no panel packing); the transposed add into
	// gw performs the same single `+= Σ` per element, so bits match the
	// direct formulation.
	if !c.colFresh {
		tensor.Im2colBatch(g, c.batch, c.x.Data(), c.col, c.colInit)
	}
	c.colFresh = false
	tensor.Gemm(1, c.col, g.ColRows(), ns, c.packT, g.OutC, 0, c.gwT)
	for oc := 0; oc < g.OutC; oc++ {
		grow := c.gw[oc*g.ColRows() : (oc+1)*g.ColRows()]
		for r := range grow {
			grow[r] += c.gwT[r*g.OutC+oc]
		}
	}
	// Input gradient: dcol(ColRows × NS) = Wᵀ · dY, then scatter per sample.
	tensor.GemmTA(1, c.w, g.OutC, g.ColRows(), c.pack, ns, 0, c.dcol)
	tensor.Col2imBatch(g, c.batch, c.dcol, c.dx.Data())
	return c.dx
}
