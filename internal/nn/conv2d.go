package nn

import (
	"math"

	"crossbow/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs with OIHW filters, lowered to
// GEMM via batched im2col: the whole mini-batch is expanded into one
// ColRows × batch·S column matrix and each pass (forward, weight gradient,
// input gradient) runs a single large GEMM per layer instead of batch small
// ones. Padding and stride are symmetric per axis.
//
// The batched lowering keeps the forward activations, input gradients and
// bias gradients bit-identical to the per-sample reference path (each output
// element's dot product runs in the same order); only the weight gradient
// sums the batch in one accumulation instead of batch partial sums, which
// regroups the reduction — see DESIGN.md §8 and TestConv2DBatchedMatchesReference.
//
// Buffers are declared to the memory planner, not allocated here: a network
// attaches them to slices of one planned arena (memory.go), and standalone
// layers fall back to private allocation on first use. col is planned as a
// pinned range because its static padding zeros are the one piece of
// cross-task buffer state; pinning keeps the zeros valid as arenas migrate
// between learners.
type Conv2D struct {
	Geom  tensor.ConvGeom
	batch int

	w, b   []float32
	gw, gb []float32

	x  *tensor.Tensor
	y  *tensor.Tensor
	dx *tensor.Tensor

	// Reusable batched scratch, planned for the layer's batch size: col/dcol
	// hold the ColRows × batch·S column matrices, pack stages the
	// OutC × batch·S GEMM operand (forward output, then dY in backward).
	// col still holds im2col(x) from Forward when Backward runs, so the
	// weight-gradient pass never recomputes it.
	col      []float32
	dcol     []float32
	pack     []float32 // OutC × NS staging (forward output / dY for the input grad)
	packT    []float32 // NS × OutC staging of dY for the weight-grad GEMM
	gwT      []float32 // ColRows × OutC staging for the transposed weight-grad GEMM
	colFresh bool      // col currently holds im2col of c.x
	colInit  bool      // col's static padding zeros are in place

	mode tensor.KernelMode // GEMM kernel mode (Network.SetKernelMode)

	// Inference fusion (Network.FuseInference): the following BN/ReLU are
	// absorbed into a GEMM epilogue applied to pack while it is cache-hot;
	// the bias moves from un-staging into the epilogue. fusedBN's parameter
	// views are re-read every forward, so model hot-swaps stay correct.
	epi     *tensor.Epilogue
	fusedBN *BatchNorm
	epiInv  []float32 // OutC per-channel 1/sqrt(runVar+eps) scratch

	// Quantized inference (Network.QuantizeWeights): int8 weights with
	// symmetric per-output-channel scales, activations quantized per tensor
	// at run time, exact int32 accumulation (DESIGN.md §14).
	qw      []int8
	qscales []float32
	qcol    []int8
	qacc    []int32

	// Hoisted kernel-loop closures (one allocation at construction instead
	// of one per Forward/Backward call); dyd feeds the backward stage loop.
	fwdLoop func(lo, hi int)
	bwdLoop func(lo, hi int)
	dyd     []float32

	pbIn, pbCol, pbPack, pbPackT, pbGwT, pbDcol, pbY, pbDx *plannedBuf
}

// NewConv2D constructs a convolution layer. inShape is [C, H, W]. No
// activation or scratch memory is allocated here — buffers are declared to
// the network's memory planner (or lazily self-allocated on standalone use).
func NewConv2D(batch int, inShape []int, outC, k, stride, pad int) *Conv2D {
	g := tensor.ConvGeom{
		InC: inShape[0], InH: inShape[1], InW: inShape[2],
		OutC: outC, KH: k, KW: k,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
	}
	c := &Conv2D{
		Geom:  g,
		batch: batch,
		y:     tensor.NewShell(batch, outC, g.OutH(), g.OutW()),
		dx:    tensor.NewShell(batch, g.InC, g.InH, g.InW),
	}
	c.fwdLoop = c.unstageChunk
	c.bwdLoop = c.stageChunk
	return c
}

// ensure lazily allocates private buffers for standalone (arena-less) use.
func (c *Conv2D) ensure() {
	if c.col != nil {
		return
	}
	g := c.Geom
	ns := c.batch * g.ColCols()
	c.col = make([]float32, g.ColRows()*ns)
	c.dcol = make([]float32, g.ColRows()*ns)
	c.pack = make([]float32, g.OutC*ns)
	c.packT = make([]float32, ns*g.OutC)
	c.gwT = make([]float32, g.ColRows()*g.OutC)
	c.y.SetData(make([]float32, tensor.Volume(c.y.Shape())))
	c.dx.SetData(make([]float32, tensor.Volume(c.dx.Shape())))
	c.colInit, c.colFresh = false, false
}

func (c *Conv2D) planFwd(p *taskPlanner, in *plannedBuf) *plannedBuf {
	g := c.Geom
	ns := c.batch * g.ColCols()
	c.pbIn = in
	// im2col writes col (pinned: padding zeros are cross-task state), reading x.
	c.pbCol = p.pin(p.slice("conv.col", &c.col, g.ColRows()*ns, bufActivation))
	p.touch(in)
	// Forward GEMM reads col, writes pack.
	c.pbPack = p.slice("conv.pack", &c.pack, g.OutC*ns, bufScratch)
	p.touch(c.pbCol)
	// Un-staging reads pack, writes y.
	c.pbY = p.shell("conv.y", c.y, bufActivation)
	p.touch(c.pbPack)
	return c.pbY
}

func (c *Conv2D) planBwd(p *taskPlanner, dout *plannedBuf) *plannedBuf {
	g := c.Geom
	ns := c.batch * g.ColCols()
	// Sub-op rule (see memory.go): declare an op's outputs before touching
	// its inputs, so an input's lifetime overlaps every output's and the
	// planner can never overlay them.
	p.touch(dout) // bias gradient reads dY
	// Staging writes packT (and rewrites pack) while reading dY.
	c.pbPackT = p.slice("conv.packT", &c.packT, ns*g.OutC, bufScratch)
	p.touch(dout, c.pbPack)
	// Weight-grad GEMM writes gwT reading col and packT; a stale col would
	// re-read x first (shared-layer safety).
	c.pbGwT = p.slice("conv.gwT", &c.gwT, g.ColRows()*g.OutC, bufScratch)
	p.touch(c.pbIn)
	p.touch(c.pbCol, c.pbPackT)
	p.touch(c.pbGwT) // transposed accumulate into gw reads gwT
	// Input-grad GEMM writes dcol reading pack (and w).
	c.pbDcol = p.slice("conv.dcol", &c.dcol, g.ColRows()*ns, bufScratch)
	p.touch(c.pbPack)
	// col2im writes dx reading dcol.
	c.pbDx = p.shell("conv.dx", c.dx, bufGradient)
	p.touch(c.pbDcol)
	return c.pbDx
}

// arenaReset revalidates col's cross-task state after an arena attach: every
// arena pooled under this plan key has col's static padding zeros in place
// (fresh blocks are zero-filled, used blocks were zeroed by this same layer
// geometry, and AttachArena zeroes pinned ranges on first sight of any other
// base), so the padding pass can be skipped from the first forward. col's
// *interior* holds another task's values, so it is never fresh for this
// layer's input.
func (c *Conv2D) arenaReset() {
	c.colInit = true
	c.colFresh = false
}

func (c *Conv2D) Name() string { return "conv2d" }

func (c *Conv2D) OutShape() []int {
	return []int{c.Geom.OutC, c.Geom.OutH(), c.Geom.OutW()}
}

func (c *Conv2D) NumParams() int {
	g := c.Geom
	return g.OutC*g.InC*g.KH*g.KW + g.OutC
}

func (c *Conv2D) Bind(w, g []float32) {
	nw := c.Geom.OutC * c.Geom.InC * c.Geom.KH * c.Geom.KW
	c.w, c.b = w[:nw], w[nw:nw+c.Geom.OutC]
	c.gw, c.gb = g[:nw], g[nw:nw+c.Geom.OutC]
}

func (c *Conv2D) InitParams(r *tensor.RNG, w []float32) {
	nw := c.Geom.OutC * c.Geom.InC * c.Geom.KH * c.Geom.KW
	fanIn := c.Geom.InC * c.Geom.KH * c.Geom.KW
	tensor.InitHe(r, w[:nw], fanIn)
	tensor.InitConst(w[nw:nw+c.Geom.OutC], 0)
}

// unstageChunk copies pack rows [lo, hi) of the batch into NCHW order and
// adds the bias (the forward un-staging loop). When the layer is fused the
// bias (and BN/ReLU) were already applied to pack by the GEMM epilogue, so
// un-staging degenerates to a pure copy.
func (c *Conv2D) unstageChunk(lo, hi int) {
	g := c.Geom
	s := g.ColCols()
	ns := c.batch * s
	outVol := g.OutC * s
	yd := c.y.Data()
	for n := lo; n < hi; n++ {
		for oc := 0; oc < g.OutC; oc++ {
			src := c.pack[oc*ns+n*s : oc*ns+n*s+s]
			dst := yd[n*outVol+oc*s : n*outVol+oc*s+s]
			if c.epi != nil {
				copy(dst, src)
				continue
			}
			bias := c.b[oc]
			for i, v := range src {
				dst[i] = v + bias
			}
		}
	}
}

// fuse absorbs the given BN (may be nil) and trailing ReLU into this
// layer's GEMM epilogue. pack's rows are output channels, so the epilogue
// indexes its vectors by row; the parameter views are refreshed every
// forward (refreshEpi) because Bind re-slices them.
func (c *Conv2D) fuse(bn *BatchNorm, relu bool) {
	c.fusedBN = bn
	c.epi = &tensor.Epilogue{ReLU: relu}
	if bn != nil {
		c.epiInv = make([]float32, c.Geom.OutC)
	}
}

func (c *Conv2D) refreshEpi() {
	c.epi.Bias = c.b
	if bn := c.fusedBN; bn != nil {
		c.epi.Gamma = bn.gamma
		c.epi.Beta = bn.beta
		c.epi.Mean = bn.runMean
		for i := range c.epiInv {
			c.epiInv[i] = 1 / float32(math.Sqrt(float64(bn.runVar[i])+float64(bn.Eps)))
		}
		c.epi.InvStd = c.epiInv
	}
}

func (c *Conv2D) setKernelMode(m tensor.KernelMode) { c.mode = m }

// quantize (re)builds the int8 weight copy and its per-output-channel
// scales from the currently bound parameters, enabling the quantized
// forward path. Call again after a model hot-swap.
func (c *Conv2D) quantize() {
	g := c.Geom
	rows := g.ColRows()
	if c.qw == nil {
		c.qw = make([]int8, g.OutC*rows)
		c.qscales = make([]float32, g.OutC)
		c.qcol = make([]int8, rows*c.batch*g.ColCols())
		c.qacc = make([]int32, g.OutC*c.batch*g.ColCols())
	}
	tensor.QuantizeRows(c.w, g.OutC, rows, c.qw, c.qscales)
}

func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.Geom
	checkIn("conv2d", x, c.batch, []int{g.InC, g.InH, g.InW})
	c.ensure()
	c.x = x
	s := g.ColCols()
	ns := c.batch * s
	outVol := g.OutC * s
	// One batched lowering + one GEMM for the whole mini-batch:
	// pack(OutC × NS) = W(OutC × ColRows) · col(ColRows × NS).
	tensor.Im2colBatch(g, c.batch, x.Data(), c.col, c.colInit)
	c.colInit = true
	c.colFresh = true
	if c.epi != nil {
		c.refreshEpi()
	}
	switch {
	case c.qw != nil && !train:
		// Quantized path: int8·int8 → exact int32, dequantized into pack
		// (per-channel weight scale × per-tensor activation scale), fused
		// epilogue applied as a separate cache-warm pass.
		rows := g.ColRows()
		sx := tensor.QuantizeSym(c.col[:rows*ns], c.qcol)
		tensor.GemmInt8(c.qw, g.OutC, rows, c.qcol, ns, c.qacc)
		for oc := 0; oc < g.OutC; oc++ {
			s := c.qscales[oc] * sx
			row := c.pack[oc*ns : (oc+1)*ns]
			acc := c.qacc[oc*ns : (oc+1)*ns]
			for i, v := range acc {
				row[i] = float32(v) * s
			}
		}
		if c.epi != nil {
			tensor.ApplyEpilogue(c.epi, c.pack, g.OutC, ns)
		}
	case c.epi != nil:
		tensor.GemmEpi(c.mode, 1, c.w, g.OutC, g.ColRows(), c.col, ns, 0, c.pack, c.epi)
	default:
		tensor.GemmMode(c.mode, 1, c.w, g.OutC, g.ColRows(), c.col, ns, 0, c.pack)
	}
	// Un-stage into NCHW (adding the bias on the unfused path).
	tensor.ParallelFor(c.batch, 1+(1<<14)/max(1, outVol), c.fwdLoop)
	return c.y
}

// stageChunk stages dY rows [lo, hi) of the batch into pack (OutC × NS, for
// the input-grad GEMM) and packT (NS × OutC, for the weight-grad GEMM).
func (c *Conv2D) stageChunk(lo, hi int) {
	g := c.Geom
	s := g.ColCols()
	ns := c.batch * s
	outVol := g.OutC * s
	dyd := c.dyd
	for n := lo; n < hi; n++ {
		for oc := 0; oc < g.OutC; oc++ {
			dst := c.pack[oc*ns+n*s : oc*ns+n*s+s]
			src := dyd[n*outVol+oc*s : n*outVol+oc*s+s]
			if s < 16 {
				for i := range dst {
					dst[i] = src[i]
				}
			} else {
				copy(dst, src)
			}
			ti := (n*s)*g.OutC + oc
			for i := range src {
				c.packT[ti] = src[i]
				ti += g.OutC
			}
		}
	}
}

func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	g := c.Geom
	s := g.ColCols()
	ns := c.batch * s
	outVol := g.OutC * s
	dyd := dy.Data()
	// Bias gradient: per-channel sums, samples in order (matches the
	// per-sample reference accumulation order exactly).
	for n := 0; n < c.batch; n++ {
		for oc := 0; oc < g.OutC; oc++ {
			row := dyd[n*outVol+oc*s : n*outVol+oc*s+s]
			var sum float32
			for _, v := range row {
				sum += v
			}
			c.gb[oc] += sum
		}
	}
	// Stage dY twice: pack (OutC × NS) feeds the input-grad GEMM, packT
	// (NS × OutC) feeds the weight-grad GEMM as a directly streamable
	// row-major operand.
	c.dyd = dyd
	tensor.ParallelFor(c.batch, 1+(1<<14)/max(1, outVol), c.bwdLoop)
	// Weight gradient: dW(OutC × ColRows) += dY(OutC × NS) · colᵀ. The
	// forward pass already lowered x into col; recompute only if another
	// forward ran since (shared-layer safety). The GEMM runs transposed —
	// gwT(ColRows × OutC) = col · dYᵀ with dYᵀ staged as packT — so both
	// operands stream directly (no panel packing); the transposed add into
	// gw performs the same single `+= Σ` per element, so bits match the
	// direct formulation.
	if !c.colFresh {
		tensor.Im2colBatch(g, c.batch, c.x.Data(), c.col, c.colInit)
	}
	c.colFresh = false
	tensor.GemmMode(c.mode, 1, c.col, g.ColRows(), ns, c.packT, g.OutC, 0, c.gwT)
	for oc := 0; oc < g.OutC; oc++ {
		grow := c.gw[oc*g.ColRows() : (oc+1)*g.ColRows()]
		for r := range grow {
			grow[r] += c.gwT[r*g.OutC+oc]
		}
	}
	// Input gradient: dcol(ColRows × NS) = Wᵀ · dY, then scatter per sample.
	tensor.GemmTAMode(c.mode, 1, c.w, g.OutC, g.ColRows(), c.pack, ns, 0, c.dcol)
	tensor.Col2imBatch(g, c.batch, c.dcol, c.dx.Data())
	return c.dx
}
