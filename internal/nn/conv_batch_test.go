package nn

import (
	"math"
	"testing"

	"crossbow/internal/tensor"
)

// refConv is the original per-sample Conv2D algorithm (one im2col + three
// small GEMMs per sample), kept as the oracle for the batched lowering.
type refConv struct {
	g         tensor.ConvGeom
	batch     int
	w, b      []float32
	col, dcol []float32
	y, dx     []float32
	gw, gb    []float32
}

func newRefConv(c *Conv2D, w []float32) *refConv {
	g := c.Geom
	nw := g.OutC * g.InC * g.KH * g.KW
	return &refConv{
		g: g, batch: c.batch,
		w: w[:nw], b: w[nw : nw+g.OutC],
		col:  make([]float32, g.ColRows()*g.ColCols()),
		dcol: make([]float32, g.ColRows()*g.ColCols()),
		y:    make([]float32, c.batch*g.OutVol()),
		dx:   make([]float32, c.batch*g.InVol()),
		gw:   make([]float32, nw),
		gb:   make([]float32, g.OutC),
	}
}

func (r *refConv) forward(x []float32) {
	g := r.g
	s := g.ColCols()
	for n := 0; n < r.batch; n++ {
		tensor.Im2col(g, x[n*g.InVol():(n+1)*g.InVol()], r.col)
		out := r.y[n*g.OutVol() : (n+1)*g.OutVol()]
		tensor.Gemm(1, r.w, g.OutC, g.ColRows(), r.col, s, 0, out)
		for oc := 0; oc < g.OutC; oc++ {
			bias := r.b[oc]
			row := out[oc*s : (oc+1)*s]
			for i := range row {
				row[i] += bias
			}
		}
	}
}

func (r *refConv) backward(x, dy []float32) {
	g := r.g
	s := g.ColCols()
	for i := range r.dx {
		r.dx[i] = 0
	}
	for n := 0; n < r.batch; n++ {
		dout := dy[n*g.OutVol() : (n+1)*g.OutVol()]
		for oc := 0; oc < g.OutC; oc++ {
			row := dout[oc*s : (oc+1)*s]
			var sum float32
			for _, v := range row {
				sum += v
			}
			r.gb[oc] += sum
		}
		tensor.Im2col(g, x[n*g.InVol():(n+1)*g.InVol()], r.col)
		tensor.GemmTB(1, dout, g.OutC, s, r.col, g.ColRows(), 1, r.gw)
		tensor.GemmTA(1, r.w, g.OutC, g.ColRows(), dout, s, 0, r.dcol)
		tensor.Col2im(g, r.dcol, r.dx[n*g.InVol():(n+1)*g.InVol()])
	}
}

// TestConv2DBatchedMatchesReference pins the batched lowering against the
// per-sample reference: forward activations, input gradients and bias
// gradients are bit-identical (same per-element accumulation order); the
// weight gradient sums the whole batch in one reduction instead of
// per-sample partial sums, so it is compared under a forward-error bound
// (see DESIGN.md §8).
func TestConv2DBatchedMatchesReference(t *testing.T) {
	configs := []struct {
		batch, inC, inH, inW, outC, k, stride, pad int
	}{
		{4, 3, 8, 8, 8, 3, 1, 1},
		{3, 8, 8, 8, 16, 3, 2, 1},
		{5, 4, 7, 9, 2, 3, 2, 1},
		{2, 6, 6, 6, 4, 1, 1, 0},
		{1, 2, 5, 5, 3, 5, 1, 2},
	}
	rng := tensor.NewRNG(7)
	for ci, cfg := range configs {
		c := NewConv2D(cfg.batch, []int{cfg.inC, cfg.inH, cfg.inW}, cfg.outC, cfg.k, cfg.stride, cfg.pad)
		nw := c.NumParams()
		w := make([]float32, nw)
		gvec := make([]float32, nw)
		c.InitParams(rng, w)
		c.Bind(w, gvec)

		x := tensor.New(cfg.batch, cfg.inC, cfg.inH, cfg.inW)
		for i, xd := 0, x.Data(); i < len(xd); i++ {
			xd[i] = float32(rng.NormFloat64())
		}
		y := c.Forward(x, true)

		ref := newRefConv(c, w)
		ref.forward(x.Data())
		for i, v := range y.Data() {
			if math.Float32bits(v) != math.Float32bits(ref.y[i]) {
				t.Fatalf("config %d: forward element %d: %v != %v", ci, i, v, ref.y[i])
			}
		}

		dy := tensor.New(cfg.batch, cfg.outC, c.Geom.OutH(), c.Geom.OutW())
		for i, dyd := 0, dy.Data(); i < len(dyd); i++ {
			dyd[i] = float32(rng.NormFloat64())
		}
		dx := c.Backward(dy)
		ref.backward(x.Data(), dy.Data())

		for i, v := range dx.Data() {
			if math.Float32bits(v) != math.Float32bits(ref.dx[i]) {
				t.Fatalf("config %d: dx element %d: %v != %v", ci, i, v, ref.dx[i])
			}
		}
		nwOnly := c.Geom.OutC * c.Geom.InC * c.Geom.KH * c.Geom.KW
		gw, gb := gvec[:nwOnly], gvec[nwOnly:nwOnly+c.Geom.OutC]
		for i, v := range gb {
			if math.Float32bits(v) != math.Float32bits(ref.gb[i]) {
				t.Fatalf("config %d: gb element %d: %v != %v", ci, i, v, ref.gb[i])
			}
		}
		// Weight gradient: reduction regrouped across the batch. Bound by
		// k·eps·Σ|terms| with k = batch·S summands.
		const eps = 1.0 / (1 << 24)
		k := float64(cfg.batch * c.Geom.ColCols())
		for i, v := range gw {
			mag := math.Max(math.Abs(float64(v)), math.Abs(float64(ref.gw[i]))) + 1
			bound := 4 * (k + 2) * eps * mag * 8
			if d := math.Abs(float64(v) - float64(ref.gw[i])); d > bound {
				t.Fatalf("config %d: gw element %d: |%v-%v| = %g exceeds %g", ci, i, v, ref.gw[i], d, bound)
			}
		}
	}
}

// TestConv2DBackwardWithoutForwardRefresh covers the colFresh fallback: two
// backward passes against the same forward must agree.
func TestConv2DBackwardWithoutForwardRefresh(t *testing.T) {
	rng := tensor.NewRNG(11)
	c := NewConv2D(2, []int{3, 6, 6}, 4, 3, 1, 1)
	w := make([]float32, c.NumParams())
	g := make([]float32, c.NumParams())
	c.InitParams(rng, w)
	c.Bind(w, g)
	x := tensor.New(2, 3, 6, 6)
	for i, xd := 0, x.Data(); i < len(xd); i++ {
		xd[i] = float32(rng.NormFloat64())
	}
	dy := tensor.New(2, 4, 6, 6)
	for i, dyd := 0, dy.Data(); i < len(dyd); i++ {
		dyd[i] = float32(rng.NormFloat64())
	}
	c.Forward(x, true)
	dx1 := append([]float32(nil), c.Backward(dy).Data()...)
	g1 := append([]float32(nil), g...)
	// Second backward without a fresh forward: col must be recomputed.
	for i := range g {
		g[i] = 0
	}
	dx2 := c.Backward(dy).Data()
	for i := range dx1 {
		if math.Float32bits(dx1[i]) != math.Float32bits(dx2[i]) {
			t.Fatalf("dx diverged at %d: %v != %v", i, dx1[i], dx2[i])
		}
	}
	for i := range g {
		if math.Float32bits(g1[i]) != math.Float32bits(g[i]) {
			t.Fatalf("grad diverged at %d: %v != %v", i, g1[i], g[i])
		}
	}
}
