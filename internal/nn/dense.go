package nn

import "crossbow/internal/tensor"

// Dense is a fully connected layer: y = x*Wᵀ + b, with x of shape [B, In]
// and y of shape [B, Out]. W is stored Out×In so each output neuron's
// weights are contiguous.
type Dense struct {
	In, Out int
	batch   int

	w, b   []float32 // views into the bound parameter vector
	gw, gb []float32 // views into the bound gradient vector

	x  *tensor.Tensor // cached input for backward
	y  *tensor.Tensor
	dx *tensor.Tensor

	mode tensor.KernelMode // GEMM kernel mode (Network.SetKernelMode)

	// Inference fusion: the bias (and an absorbed trailing ReLU) are
	// applied by the GEMM epilogue, per output column.
	epi *tensor.Epilogue

	// Quantized inference: int8 weights with per-output-row scales,
	// per-tensor activation quantization, exact int32 accumulation.
	qw      []int8
	qscales []float32
	qx      []int8
	qacc    []int32

	pbIn, pbY, pbDx *plannedBuf
}

// NewDense constructs a dense layer for a fixed batch size.
func NewDense(batch, in, out int) *Dense {
	return &Dense{
		In: in, Out: out, batch: batch,
		y:  tensor.NewShell(batch, out),
		dx: tensor.NewShell(batch, in),
	}
}

func (d *Dense) ensure() {
	if d.y.HasData() {
		return
	}
	d.y.SetData(make([]float32, tensor.Volume(d.y.Shape())))
	d.dx.SetData(make([]float32, tensor.Volume(d.dx.Shape())))
}

func (d *Dense) planFwd(p *taskPlanner, in *plannedBuf) *plannedBuf {
	d.pbIn = in
	d.pbY = p.shell("dense.y", d.y, bufActivation)
	p.touch(in) // forward GEMM reads x
	return d.pbY
}

func (d *Dense) planBwd(p *taskPlanner, dout *plannedBuf) *plannedBuf {
	// Weight/bias gradients read dY and the cached input; the input-grad
	// GEMM reads dY and W while writing dx.
	d.pbDx = p.shell("dense.dx", d.dx, bufGradient)
	p.touch(dout, d.pbIn)
	return d.pbDx
}

func (d *Dense) Name() string    { return "dense" }
func (d *Dense) OutShape() []int { return []int{d.Out} }
func (d *Dense) NumParams() int  { return d.In*d.Out + d.Out }

func (d *Dense) Bind(w, g []float32) {
	nw := d.In * d.Out
	d.w, d.b = w[:nw], w[nw:nw+d.Out]
	d.gw, d.gb = g[:nw], g[nw:nw+d.Out]
}

func (d *Dense) InitParams(r *tensor.RNG, w []float32) {
	nw := d.In * d.Out
	tensor.InitXavier(r, w[:nw], d.In, d.Out)
	tensor.InitConst(w[nw:nw+d.Out], 0)
}

// fuse absorbs the bias (and a trailing ReLU, when absorbed by the fusion
// pass) into the GEMM epilogue, indexed per output column.
func (d *Dense) fuse(relu bool) {
	d.epi = &tensor.Epilogue{ReLU: relu, PerColumn: true}
}

func (d *Dense) setKernelMode(m tensor.KernelMode) { d.mode = m }

// quantize (re)builds the int8 weight copy and per-output-row scales from
// the currently bound parameters. Call again after a model hot-swap.
func (d *Dense) quantize() {
	if d.qw == nil {
		d.qw = make([]int8, d.In*d.Out)
		d.qscales = make([]float32, d.Out)
		d.qx = make([]int8, d.batch*d.In)
		d.qacc = make([]int32, d.batch*d.Out)
	}
	tensor.QuantizeRows(d.w, d.Out, d.In, d.qw, d.qscales)
}

func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkIn("dense", x, d.batch, []int{d.In})
	d.ensure()
	d.x = x
	yd := d.y.Data()
	if d.qw != nil && !train {
		// Quantized path: W is Out×In so each output column is one int8 dot
		// product; dequantize with per-row weight scale × activation scale,
		// then run the epilogue (or the plain bias add) over y.
		sx := tensor.QuantizeSym(x.Data(), d.qx)
		tensor.GemmInt8TB(d.qx, d.batch, d.In, d.qw, d.Out, d.qacc)
		for i := 0; i < d.batch; i++ {
			row := yd[i*d.Out : (i+1)*d.Out]
			acc := d.qacc[i*d.Out : (i+1)*d.Out]
			for j, v := range acc {
				row[j] = float32(v) * (d.qscales[j] * sx)
			}
		}
		if d.epi != nil {
			d.epi.Bias = d.b
			tensor.ApplyEpilogue(d.epi, yd, d.batch, d.Out)
			return d.y
		}
	} else if d.epi != nil {
		// y = x (B×In) * Wᵀ (In×Out); W stored Out×In so use GemmTB.
		d.epi.Bias = d.b
		tensor.GemmTBEpi(d.mode, 1, x.Data(), d.batch, d.In, d.w, d.Out, 0, yd, d.epi)
		return d.y
	} else {
		tensor.GemmTBMode(d.mode, 1, x.Data(), d.batch, d.In, d.w, d.Out, 0, yd)
	}
	for i := 0; i < d.batch; i++ {
		row := yd[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += d.b[j]
		}
	}
	return d.y
}

func (d *Dense) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dyd := dy.Data()
	// dW (Out×In) += dyᵀ (Out×B) * x (B×In)  — accumulate across batch.
	tensor.GemmTAMode(d.mode, 1, dyd, d.batch, d.Out, d.x.Data(), d.In, 1, d.gw)
	// db += column sums of dy.
	for i := 0; i < d.batch; i++ {
		row := dyd[i*d.Out : (i+1)*d.Out]
		for j := range row {
			d.gb[j] += row[j]
		}
	}
	// dx (B×In) = dy (B×Out) * W (Out×In).
	tensor.GemmMode(d.mode, 1, dyd, d.batch, d.Out, d.w, d.In, 0, d.dx.Data())
	return d.dx
}
