package nn

import "crossbow/internal/tensor"

// Dense is a fully connected layer: y = x*Wᵀ + b, with x of shape [B, In]
// and y of shape [B, Out]. W is stored Out×In so each output neuron's
// weights are contiguous.
type Dense struct {
	In, Out int
	batch   int

	w, b   []float32 // views into the bound parameter vector
	gw, gb []float32 // views into the bound gradient vector

	x  *tensor.Tensor // cached input for backward
	y  *tensor.Tensor
	dx *tensor.Tensor

	pbIn, pbY, pbDx *plannedBuf
}

// NewDense constructs a dense layer for a fixed batch size.
func NewDense(batch, in, out int) *Dense {
	return &Dense{
		In: in, Out: out, batch: batch,
		y:  tensor.NewShell(batch, out),
		dx: tensor.NewShell(batch, in),
	}
}

func (d *Dense) ensure() {
	if d.y.HasData() {
		return
	}
	d.y.SetData(make([]float32, tensor.Volume(d.y.Shape())))
	d.dx.SetData(make([]float32, tensor.Volume(d.dx.Shape())))
}

func (d *Dense) planFwd(p *taskPlanner, in *plannedBuf) *plannedBuf {
	d.pbIn = in
	d.pbY = p.shell("dense.y", d.y, bufActivation)
	p.touch(in) // forward GEMM reads x
	return d.pbY
}

func (d *Dense) planBwd(p *taskPlanner, dout *plannedBuf) *plannedBuf {
	// Weight/bias gradients read dY and the cached input; the input-grad
	// GEMM reads dY and W while writing dx.
	d.pbDx = p.shell("dense.dx", d.dx, bufGradient)
	p.touch(dout, d.pbIn)
	return d.pbDx
}

func (d *Dense) Name() string    { return "dense" }
func (d *Dense) OutShape() []int { return []int{d.Out} }
func (d *Dense) NumParams() int  { return d.In*d.Out + d.Out }

func (d *Dense) Bind(w, g []float32) {
	nw := d.In * d.Out
	d.w, d.b = w[:nw], w[nw:nw+d.Out]
	d.gw, d.gb = g[:nw], g[nw:nw+d.Out]
}

func (d *Dense) InitParams(r *tensor.RNG, w []float32) {
	nw := d.In * d.Out
	tensor.InitXavier(r, w[:nw], d.In, d.Out)
	tensor.InitConst(w[nw:nw+d.Out], 0)
}

func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkIn("dense", x, d.batch, []int{d.In})
	d.ensure()
	d.x = x
	// y = x (B×In) * Wᵀ (In×Out); W stored Out×In so use GemmTB.
	tensor.GemmTB(1, x.Data(), d.batch, d.In, d.w, d.Out, 0, d.y.Data())
	yd := d.y.Data()
	for i := 0; i < d.batch; i++ {
		row := yd[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += d.b[j]
		}
	}
	return d.y
}

func (d *Dense) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dyd := dy.Data()
	// dW (Out×In) += dyᵀ (Out×B) * x (B×In)  — accumulate across batch.
	tensor.GemmTA(1, dyd, d.batch, d.Out, d.x.Data(), d.In, 1, d.gw)
	// db += column sums of dy.
	for i := 0; i < d.batch; i++ {
		row := dyd[i*d.Out : (i+1)*d.Out]
		for j := range row {
			d.gb[j] += row[j]
		}
	}
	// dx (B×In) = dy (B×Out) * W (Out×In).
	tensor.Gemm(1, dyd, d.batch, d.Out, d.w, d.In, 0, d.dx.Data())
	return d.dx
}
