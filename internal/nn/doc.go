// Package nn implements the neural-network layer library used by
// Crossbow's learners: convolution, dense, ReLU, pooling, batch
// normalisation, residual blocks and a softmax cross-entropy loss, with
// builders for the four benchmark models of the paper (LeNet, ResNet-32,
// VGG-16, ResNet-50) at two scales — trainable scaled variants (DESIGN.md
// §2) and the full Table 1 architectures for planning and cost modelling.
//
// A model's weights and gradients live in a single contiguous []float32
// (paper §4.4), owned by the replica, not by the layers; layers are bound
// to a (w, g) vector pair with Bind before use, and rebinding is cheap, so
// one network structure can evaluate any replica or the central average
// model. Layers do not allocate activations either: they declare buffers to
// the §4.5 task planner (memory.go, DESIGN.md §10), which lowers one
// learning task's exact dataflow into a memplan graph and lays out a
// per-task arena that AttachArena rebinds allocation-free. The forward-only
// variant (InferPlan/AttachInferenceArena, DESIGN.md §11) plans just the
// Predict walk for the serving plane, where backward-only caches die young
// and the arena shrinks accordingly. Compute lowers onto the blocked
// kernels of internal/tensor (DESIGN.md §8).
package nn
