package nn

import "crossbow/internal/tensor"

// Inference operator fusion and the quantized serving path (DESIGN.md §14).
//
// FuseInference rewrites the stack for forward-only execution: every
// conv→BN→ReLU (and dense→ReLU) run collapses into the leading GEMM's
// epilogue, applied while the output slab is still cache-resident. The
// absorbed layers become identity pass-throughs and declare no buffers, so
// the inference arena shrinks with them. The epilogue performs the exact
// per-element operation sequence of the unfused chain (bias add, eval-mode
// BN, ReLU), so fusion is a pure memory/locality optimisation — results
// are bit-identical in either kernel mode, which TestFusedForwardBitIdentical
// pins. A fused network is inference-only: training walks panic.

// kernelModeLayer is implemented by layers that dispatch GEMMs.
type kernelModeLayer interface{ setKernelMode(tensor.KernelMode) }

// quantLayer is implemented by layers with an int8 weight path.
type quantLayer interface{ quantize() }

// SetKernelMode selects the GEMM kernel mode for every layer in the stack
// (descending into residual blocks). Deterministic is the zero value and
// the default; Fast enables the FMA micro-kernels where the CPU supports
// them (tensor.KernelMode).
func (n *Network) SetKernelMode(m tensor.KernelMode) {
	n.mode = m
	walkLayers(n.layers, func(l Layer) {
		if ml, ok := l.(kernelModeLayer); ok {
			ml.setKernelMode(m)
		}
	})
}

// KernelMode returns the network's current kernel mode.
func (n *Network) KernelMode() tensor.KernelMode { return n.mode }

// FuseInference absorbs conv→BN→ReLU and dense→ReLU chains into GEMM
// epilogues for forward-only execution. It must run before the first
// memory-planning walk (the plans reflect the fused dataflow), and it
// makes the network inference-only. Idempotent.
func (n *Network) FuseInference() {
	if n.fused {
		return
	}
	if n.memPlan != nil || n.inferPlan != nil {
		panic("nn: FuseInference after memory planning")
	}
	n.fused = true
	fuseChain(n.layers)
}

// Fused reports whether FuseInference has run.
func (n *Network) Fused() bool { return n.fused }

// QuantizeWeights (re)builds every conv/dense layer's int8 weight copy and
// scales from the currently bound parameters, enabling the quantized
// evaluation-mode forward path. Call after Bind, and again after rebinding
// a hot-swapped model.
func (n *Network) QuantizeWeights() {
	if n.boundW == nil {
		panic("nn: QuantizeWeights before Bind")
	}
	n.quantized = true
	walkLayers(n.layers, func(l Layer) {
		if ql, ok := l.(quantLayer); ok {
			ql.quantize()
		}
	})
}

// Quantized reports whether QuantizeWeights has run.
func (n *Network) Quantized() bool { return n.quantized }

// walkLayers visits every primitive layer, descending into residual blocks.
func walkLayers(ls []Layer, f func(Layer)) {
	for _, l := range ls {
		if r, ok := l.(*Residual); ok {
			walkLayers(r.branch, f)
			walkLayers(r.shortcut, f)
			continue
		}
		f(l)
	}
}

// fuseChain absorbs fusible runs within one sequential layer list. A
// residual branch ends the same way (its trailing BN fuses into the last
// conv; the join's own add+ReLU stays in the join kernel).
func fuseChain(ls []Layer) {
	for i := 0; i < len(ls); i++ {
		switch l := ls[i].(type) {
		case *Residual:
			fuseChain(l.branch)
			fuseChain(l.shortcut)
		case *Conv2D:
			var bn *BatchNorm
			j := i + 1
			if j < len(ls) {
				if b, ok := ls[j].(*BatchNorm); ok {
					bn = b
					j++
				}
			}
			var relu *ReLU
			if j < len(ls) {
				if r, ok := ls[j].(*ReLU); ok {
					relu = r
					j++
				}
			}
			l.fuse(bn, relu != nil)
			if bn != nil {
				bn.absorbed = true
			}
			if relu != nil {
				relu.absorbed = true
			}
			i = j - 1
		case *Dense:
			var relu *ReLU
			if i+1 < len(ls) {
				if r, ok := ls[i+1].(*ReLU); ok {
					relu = r
				}
			}
			l.fuse(relu != nil)
			if relu != nil {
				relu.absorbed = true
				i++
			}
		}
	}
}
