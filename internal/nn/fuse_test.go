package nn

import (
	"math"
	"testing"

	"crossbow/internal/tensor"
)

// TestFusedPredictBitIdentical pins the fusion contract: absorbing
// conv→BN→ReLU (and dense→ReLU) chains into GEMM epilogues is a pure
// memory/locality optimisation — Predict must return bit-identical
// probabilities and classes to the unfused network, in both kernel modes,
// for every benchmark model.
func TestFusedPredictBitIdentical(t *testing.T) {
	const batch = 8
	for _, mode := range []tensor.KernelMode{tensor.Deterministic, tensor.Fast} {
		for _, id := range AllModels {
			ref, x := buildPredictFixture(t, id, batch)
			ref.SetKernelMode(mode)
			refPreds := make([]int, batch)
			refConf := make([]float32, batch)
			ref.Predict(x, refPreds, refConf)

			net, _ := buildPredictFixture(t, id, batch)
			net.SetKernelMode(mode)
			net.FuseInference()
			net.AttachInferenceArena(tensor.NewArena(net.InferPlan().ArenaElems))
			preds := make([]int, batch)
			conf := make([]float32, batch)
			net.Predict(x, preds, conf)

			for i := 0; i < batch; i++ {
				if preds[i] != refPreds[i] {
					t.Fatalf("%s/%s: sample %d class %d != %d (unfused)", id, mode, i, preds[i], refPreds[i])
				}
				if math.Float32bits(conf[i]) != math.Float32bits(refConf[i]) {
					t.Fatalf("%s/%s: sample %d confidence %v != %v (unfused)", id, mode, i, conf[i], refConf[i])
				}
			}
		}
	}
}

// TestFusedInferPlanSmaller: absorbed layers declare no buffers, so the
// fused walk's declared footprint must be strictly smaller and its planned
// arena never larger. (The arena peak itself may not move when a conv's
// im2col scratch sets it, as in VGG-16.)
func TestFusedInferPlanSmaller(t *testing.T) {
	for _, id := range AllModels {
		plain := BuildScaled(id, 8, tensor.NewRNG(1))
		fused := BuildScaled(id, 8, tensor.NewRNG(1))
		fused.FuseInference()
		p, f := plain.InferPlan(), fused.InferPlan()
		if f.NaiveElems >= p.NaiveElems {
			t.Errorf("%s: fused walk declares %d elems, unfused %d — want strictly smaller",
				id, f.NaiveElems, p.NaiveElems)
		}
		if f.ArenaElems > p.ArenaElems {
			t.Errorf("%s: fused inference arena %d elems, unfused %d — fusion may never grow the arena",
				id, f.ArenaElems, p.ArenaElems)
		}
	}
}

// TestFusedNetworkIsInferenceOnly: a fused network must refuse training
// walks — both the training memory plan and a training-mode forward.
func TestFusedNetworkIsInferenceOnly(t *testing.T) {
	net, x := buildPredictFixture(t, ResNet32, 8)
	net.FuseInference()
	mustPanic(t, "MemPlan", func() { net.MemPlan() })
	mustPanic(t, "train forward", func() { net.Forward(x, true) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s on a fused network did not panic", what)
		}
	}()
	f()
}

// synthClassData fills x with samples drawn from per-class template
// patterns plus noise, returning the labels — linearly separable enough
// that a briefly trained network becomes confident.
func synthClassData(r *tensor.RNG, templates [][]float32, x *tensor.Tensor, labels []int, classes int) {
	vol := x.Len() / len(labels)
	xd := x.Data()
	for i := range labels {
		c := r.Intn(classes)
		labels[i] = c
		tpl := templates[c]
		for j := 0; j < vol; j++ {
			xd[i*vol+j] = tpl[j] + 0.3*float32(r.NormFloat64())
		}
	}
}

// TestQuantizedTopOneAgreement is the acceptance gate for the int8 path:
// on a briefly trained ResNet-32, the quantized+fused network must agree
// with the f32 network on ≥99% of top-1 predictions over a synthesized
// evaluation set — the same gate the serving plane applies before
// publishing a quantized replica.
func TestQuantizedTopOneAgreement(t *testing.T) {
	const (
		batch    = 16
		classes  = 10
		steps    = 40
		lr       = 0.05
		evalN    = 16 // eval batches: 256 samples
		minAgree = 0.99
	)
	train := BuildScaled(ResNet32, batch, tensor.NewRNG(1))
	w := train.Init(tensor.NewRNG(2))
	g := make([]float32, train.ParamSize())
	train.Bind(w, g)

	vol := tensor.Volume(train.InShape)
	tr := tensor.NewRNG(5)
	templates := make([][]float32, classes)
	for c := range templates {
		templates[c] = make([]float32, vol)
		for j := range templates[c] {
			templates[c][j] = float32(tr.NormFloat64())
		}
	}
	x := tensor.New(append([]int{batch}, train.InShape...)...)
	labels := make([]int, batch)
	for s := 0; s < steps; s++ {
		synthClassData(tr, templates, x, labels, classes)
		clear(g)
		train.LossAndGrad(x, labels)
		for i, gi := range g {
			w[i] -= lr * gi
		}
	}

	f32 := BuildScaled(ResNet32, batch, tensor.NewRNG(1))
	f32.Bind(w, make([]float32, f32.ParamSize()))
	q := BuildScaled(ResNet32, batch, tensor.NewRNG(1))
	q.FuseInference()
	q.Bind(w, make([]float32, q.ParamSize()))
	q.QuantizeWeights()

	er := tensor.NewRNG(7)
	fp := make([]int, batch)
	qp := make([]int, batch)
	agree, total := 0, 0
	for b := 0; b < evalN; b++ {
		synthClassData(er, templates, x, labels, classes)
		f32.Predict(x, fp, nil)
		q.Predict(x, qp, nil)
		for i := range fp {
			if fp[i] == qp[i] {
				agree++
			}
			total++
		}
	}
	if frac := float64(agree) / float64(total); frac < minAgree {
		t.Fatalf("quantized top-1 agreement %.4f (%d/%d) below %.2f", frac, agree, total, minAgree)
	} else {
		t.Logf("quantized top-1 agreement %.4f (%d/%d)", frac, agree, total)
	}
}
