package nn

import (
	"math"
	"testing"

	"crossbow/internal/tensor"
)

// gradCheck verifies analytic parameter and input gradients of a network
// against central finite differences. Networks are small so float32 noise
// stays manageable; we use a relative-error criterion with an absolute
// floor.
func gradCheck(t *testing.T, net *Network, batch int, seed uint64, tol float64) {
	t.Helper()
	r := tensor.NewRNG(seed)
	w := net.Init(r)
	g := make([]float32, net.ParamSize())
	net.Bind(w, g)

	x := tensor.New(append([]int{batch}, net.InShape...)...)
	xd := x.Data()
	for i := range xd {
		xd[i] = float32(r.NormFloat64())
	}
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = r.Intn(net.Classes)
	}

	// Analytic gradient. Evaluation mode for batch-norm inside the loss
	// path would change statistics; LossAndGrad uses train=true, so the
	// finite-difference probes below must also run train=true forward
	// passes. Dropout must be disabled for determinism (nets under test
	// use no dropout).
	tensor.ZeroSlice(g)
	net.LossAndGrad(x, labels)
	analytic := append([]float32(nil), g...)

	lossAt := func() float64 {
		logits := net.Forward(x, true)
		l, _ := net.loss.Loss(logits, labels)
		return l
	}

	// Probe a deterministic subset of parameters (checking all would be
	// slow for conv nets). eps must stay small: ReLU kinks bias central
	// differences at larger steps. Gradients whose magnitude is below the
	// finite-difference noise floor are skipped rather than compared.
	const eps = 2e-4
	const noiseFloor = 1e-2
	n := net.ParamSize()
	stride := n/60 + 1
	checked := 0
	for i := 0; i < n; i += stride {
		orig := w[i]
		w[i] = orig + eps
		lp := lossAt()
		w[i] = orig - eps
		lm := lossAt()
		w[i] = orig
		numeric := (lp - lm) / (2 * eps)
		a := float64(analytic[i])
		if math.Abs(a)+math.Abs(numeric) < noiseFloor {
			continue
		}
		denom := math.Abs(a) + math.Abs(numeric)
		if math.Abs(a-numeric)/denom > tol {
			t.Errorf("param %d: analytic %v vs numeric %v", i, a, numeric)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no parameters checked")
	}
}

func TestGradCheckDense(t *testing.T) {
	r := tensor.NewRNG(1)
	net := NewBuilder(4, []int{6}, 3, r).Dense(5).ReLU().Dense(3).Build()
	gradCheck(t, net, 4, 2, 0.05)
}

func TestGradCheckConv(t *testing.T) {
	r := tensor.NewRNG(1)
	net := NewBuilder(3, []int{2, 6, 6}, 4, r).
		Conv(3, 3, 1, 1).ReLU().MaxPool(2).
		Flatten().Dense(4).Build()
	gradCheck(t, net, 3, 3, 0.05)
}

func TestGradCheckStridedConv(t *testing.T) {
	r := tensor.NewRNG(1)
	net := NewBuilder(2, []int{2, 7, 7}, 3, r).
		Conv(3, 3, 2, 1).ReLU().
		Flatten().Dense(3).Build()
	gradCheck(t, net, 2, 4, 0.05)
}

func TestGradCheckBatchNorm(t *testing.T) {
	r := tensor.NewRNG(1)
	net := NewBuilder(6, []int{2, 4, 4}, 3, r).
		Conv(3, 3, 1, 1).BN().ReLU().
		GlobalAvgPool().Dense(3).Build()
	gradCheck(t, net, 6, 5, 0.08)
}

func TestGradCheckBasicBlock(t *testing.T) {
	r := tensor.NewRNG(1)
	b := NewBuilder(4, []int{2, 6, 6}, 3, r)
	b.Conv(4, 3, 1, 1).BN().ReLU()
	b.BasicBlock(4, 1) // identity shortcut
	b.BasicBlock(6, 2) // projection shortcut
	net := b.GlobalAvgPool().Dense(3).Build()
	gradCheck(t, net, 4, 6, 0.1)
}

func TestGradCheckBottleneck(t *testing.T) {
	r := tensor.NewRNG(1)
	b := NewBuilder(4, []int{2, 6, 6}, 3, r)
	b.Conv(4, 3, 1, 1).BN().ReLU()
	b.BottleneckBlock(2, 8, 1)
	b.BottleneckBlock(3, 8, 2)
	net := b.GlobalAvgPool().Dense(3).Build()
	gradCheck(t, net, 4, 7, 0.1)
}

func TestGradCheckGlobalAvgPool(t *testing.T) {
	r := tensor.NewRNG(1)
	net := NewBuilder(3, []int{3, 4, 4}, 3, r).
		GlobalAvgPool().Dense(3).Build()
	gradCheck(t, net, 3, 8, 0.05)
}
