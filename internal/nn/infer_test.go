package nn

import (
	"math"
	"testing"

	"crossbow/internal/tensor"
)

// buildPredictFixture returns a bound network plus a deterministic input
// batch and expected labels drawn from a sibling network running on the
// full training plan.
func buildPredictFixture(t *testing.T, id ModelID, batch int) (*Network, *tensor.Tensor) {
	t.Helper()
	net := BuildScaled(id, batch, tensor.NewRNG(1))
	w := net.Init(tensor.NewRNG(2))
	g := make([]float32, net.ParamSize())
	net.Bind(w, g)
	x := tensor.New(append([]int{batch}, net.InShape...)...)
	r := tensor.NewRNG(3)
	for i := range x.Data() {
		x.Data()[i] = float32(r.NormFloat64())
	}
	return net, x
}

// TestInferPlanSmallerThanTraining pins the point of the forward-only plan:
// without the backward chain, slot reuse is aggressive enough that the
// serving arena is strictly smaller than the training arena for every
// benchmark model.
func TestInferPlanSmallerThanTraining(t *testing.T) {
	for _, id := range AllModels {
		net := BuildScaled(id, 8, tensor.NewRNG(1))
		full, infer := net.MemPlan(), net.InferPlan()
		if infer.ArenaElems >= full.ArenaElems {
			t.Errorf("%s: inference arena %d elems, training arena %d — want strictly smaller",
				id, infer.ArenaElems, full.ArenaElems)
		}
		if full.Key() == infer.Key() {
			t.Errorf("%s: training and inference plans share key %q", id, full.Key())
		}
	}
}

// TestPredictBitIdenticalAcrossPlans pins the inference plan's correctness:
// Predict against a forward-only arena produces bit-identical probabilities
// and classes to the same network running on lazily allocated private
// buffers (the path every existing correctness test exercises).
func TestPredictBitIdenticalAcrossPlans(t *testing.T) {
	const batch = 8
	for _, id := range AllModels {
		ref, x := buildPredictFixture(t, id, batch)
		refPreds := make([]int, batch)
		refConf := make([]float32, batch)
		ref.Predict(x, refPreds, refConf) // private lazy buffers

		net, _ := buildPredictFixture(t, id, batch)
		net.AttachInferenceArena(tensor.NewArena(net.InferPlan().ArenaElems))
		preds := make([]int, batch)
		conf := make([]float32, batch)
		net.Predict(x, preds, conf)

		for i := 0; i < batch; i++ {
			if preds[i] != refPreds[i] {
				t.Fatalf("%s: sample %d class %d != %d (private)", id, i, preds[i], refPreds[i])
			}
			if math.Float32bits(conf[i]) != math.Float32bits(refConf[i]) {
				t.Fatalf("%s: sample %d confidence %v != %v (private)", id, i, conf[i], refConf[i])
			}
		}
	}
}

// TestPredictPathAllocs is the serving analogue of TestHotPathAllocs: the
// forward-only Predict path against an attached inference arena must be
// allocation-free in steady state at kernel worker budget 1.
func TestPredictPathAllocs(t *testing.T) {
	prev := tensor.WorkerBudget()
	defer tensor.SetWorkerBudget(prev)
	tensor.SetWorkerBudget(1)

	const batch = 8
	for _, id := range AllModels {
		net, x := buildPredictFixture(t, id, batch)
		net.AttachInferenceArena(tensor.NewArena(net.InferPlan().ArenaElems))
		preds := make([]int, batch)
		conf := make([]float32, batch)
		net.Predict(x, preds, conf) // warm up
		if avg := testing.AllocsPerRun(20, func() { net.Predict(x, preds, conf) }); avg > hotPathAllocThreshold {
			t.Errorf("%s: %.2f allocs/Predict, want ~0", id, avg)
		}
	}
}
