package nn

import (
	"fmt"

	"crossbow/internal/tensor"
)

// Layer is a differentiable operator with optional parameters.
//
// Forward consumes a batched input tensor and returns the batched output;
// Backward consumes dL/d(output) and returns dL/d(input), accumulating
// parameter gradients into the bound gradient slice. Forward must be called
// before the matching Backward (layers cache the inputs they need).
type Layer interface {
	// Name identifies the layer for debugging and operator inventories.
	Name() string
	// OutShape returns the per-sample output shape.
	OutShape() []int
	// NumParams returns the layer's parameter count (0 for stateless layers).
	NumParams() int
	// Bind attaches the layer to parameter and gradient storage. Both
	// slices have length NumParams. Stateless layers ignore the call.
	Bind(w, g []float32)
	// InitParams writes initial parameter values into w (length NumParams).
	InitParams(r *tensor.RNG, w []float32)
	// Forward computes the layer output for a batch. train selects
	// training-mode behaviour (batch statistics, dropout).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward computes the input gradient from the output gradient and
	// accumulates parameter gradients into the bound gradient slice.
	Backward(dy *tensor.Tensor) *tensor.Tensor
}

// stateless is embedded by layers without parameters.
type stateless struct{}

func (stateless) NumParams() int                        { return 0 }
func (stateless) Bind(w, g []float32)                   {}
func (stateless) InitParams(r *tensor.RNG, w []float32) {}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkIn(name string, x *tensor.Tensor, batch int, inShape []int) {
	// Allocation-free on the happy path (this runs on every layer call of
	// the training hot loop); the slice for the message is built only when
	// the check fails.
	s := x.Shape()
	ok := len(s) == len(inShape)+1 && s[0] == batch
	if ok {
		for i, d := range inShape {
			if s[i+1] != d {
				ok = false
				break
			}
		}
	}
	if !ok {
		want := append([]int{batch}, inShape...)
		panic(fmt.Sprintf("nn: %s: input shape %v, want %v", name, s, want))
	}
}
