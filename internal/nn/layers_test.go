package nn

import (
	"math"
	"testing"

	"crossbow/internal/tensor"
)

func TestDenseForwardKnownValues(t *testing.T) {
	d := NewDense(1, 2, 2)
	w := make([]float32, d.NumParams())
	g := make([]float32, d.NumParams())
	// W = [[1,2],[3,4]] (Out×In), b = [0.5, -0.5]
	copy(w, []float32{1, 2, 3, 4, 0.5, -0.5})
	d.Bind(w, g)
	x := tensor.FromSlice([]float32{10, 20}, 1, 2)
	y := d.Forward(x, true)
	if y.At(0, 0) != 50.5 || y.At(0, 1) != 109.5 {
		t.Fatalf("dense output %v %v", y.At(0, 0), y.At(0, 1))
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU(1, []int{4})
	x := tensor.FromSlice([]float32{-1, 0, 2, -3}, 1, 4)
	y := r.Forward(x, true)
	want := []float32{0, 0, 2, 0}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("relu forward %v", y.Data())
		}
	}
	dy := tensor.FromSlice([]float32{5, 6, 7, 8}, 1, 4)
	dx := r.Backward(dy)
	wantDx := []float32{0, 0, 7, 0}
	for i, v := range dx.Data() {
		if v != wantDx[i] {
			t.Fatalf("relu backward %v", dx.Data())
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool(1, []int{1, 4, 4}, 2)
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		-1, -2, 0, 0,
		-3, -4, 0, 9,
	}, 1, 1, 4, 4)
	y := p.Forward(x, true)
	want := []float32{4, 8, -1, 9}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("maxpool forward %v", y.Data())
		}
	}
	dy := tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	dx := p.Backward(dy)
	// Gradient routes to the argmax positions only.
	var nz int
	for _, v := range dx.Data() {
		if v != 0 {
			nz++
		}
	}
	if nz != 4 {
		t.Fatalf("maxpool backward nonzeros = %d, want 4", nz)
	}
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 3, 3) != 1 {
		t.Fatal("maxpool gradient not routed to maxima")
	}
}

func TestMaxPoolNegativeInputs(t *testing.T) {
	// All-negative window must still pick the true maximum, not 0.
	p := NewMaxPool(1, []int{1, 2, 2}, 2)
	x := tensor.FromSlice([]float32{-5, -3, -9, -4}, 1, 1, 2, 2)
	y := p.Forward(x, true)
	if y.Data()[0] != -3 {
		t.Fatalf("maxpool of negatives = %v, want -3", y.Data()[0])
	}
}

func TestGlobalAvgPool(t *testing.T) {
	p := NewGlobalAvgPool(1, []int{2, 2, 2})
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := p.Forward(x, true)
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 25 {
		t.Fatalf("gavg forward %v", y.Data())
	}
	dy := tensor.FromSlice([]float32{4, 8}, 1, 2)
	dx := p.Backward(dy)
	if dx.At(0, 0, 0, 0) != 1 || dx.At(0, 1, 1, 1) != 2 {
		t.Fatalf("gavg backward %v", dx.Data())
	}
}

func TestBatchNormNormalises(t *testing.T) {
	bn := NewBatchNorm(4, []int{1, 1, 1})
	w := make([]float32, bn.NumParams())
	g := make([]float32, bn.NumParams())
	bn.InitParams(tensor.NewRNG(1), w)
	bn.Bind(w, g)
	x := tensor.FromSlice([]float32{2, 4, 6, 8}, 4, 1, 1, 1)
	y := bn.Forward(x, true)
	var mean, sq float64
	for _, v := range y.Data() {
		mean += float64(v)
	}
	mean /= 4
	for _, v := range y.Data() {
		d := float64(v) - mean
		sq += d * d
	}
	if math.Abs(mean) > 1e-5 {
		t.Fatalf("bn output mean = %v", mean)
	}
	if v := sq / 4; math.Abs(v-1) > 1e-2 {
		t.Fatalf("bn output variance = %v", v)
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	bn := NewBatchNorm(8, []int{1})
	w := make([]float32, bn.NumParams())
	g := make([]float32, bn.NumParams())
	bn.InitParams(tensor.NewRNG(1), w)
	bn.Bind(w, g)
	// Feed a constant-distribution batch many times; running stats must
	// approach the batch statistics (mean 3, var 4 for values 1,5 repeated).
	vals := []float32{1, 5, 1, 5, 1, 5, 1, 5}
	x := tensor.FromSlice(vals, 8, 1)
	for i := 0; i < 200; i++ {
		bn.Forward(x, true)
	}
	if math.Abs(float64(bn.runMean[0]-3)) > 0.05 {
		t.Fatalf("running mean = %v, want ~3", bn.runMean[0])
	}
	if math.Abs(float64(bn.runVar[0]-4)) > 0.1 {
		t.Fatalf("running var = %v, want ~4", bn.runVar[0])
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(1, []int{8}, 0.5, tensor.NewRNG(1))
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 1, 8)
	y := d.Forward(x, false)
	for i, v := range y.Data() {
		if v != x.Data()[i] {
			t.Fatal("dropout at eval must be identity")
		}
	}
}

func TestDropoutTrainPreservesExpectation(t *testing.T) {
	const n = 20000
	d := NewDropout(1, []int{n}, 0.3, tensor.NewRNG(7))
	x := tensor.New(1, n)
	x.Fill(1)
	y := d.Forward(x, true)
	m := tensor.Mean(y.Data())
	if math.Abs(m-1) > 0.03 {
		t.Fatalf("dropout expectation = %v, want ~1", m)
	}
}

func TestSoftmaxCELossKnownValue(t *testing.T) {
	l := NewSoftmaxCE(1, 2)
	logits := tensor.FromSlice([]float32{0, 0}, 1, 2)
	loss, dx := l.Loss(logits, []int{0})
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	if math.Abs(float64(dx.At(0, 0)+0.5)) > 1e-6 || math.Abs(float64(dx.At(0, 1)-0.5)) > 1e-6 {
		t.Fatalf("grad = %v", dx.Data())
	}
}

func TestSoftmaxCEGradientSumsToZero(t *testing.T) {
	l := NewSoftmaxCE(3, 5)
	r := tensor.NewRNG(9)
	logits := tensor.New(3, 5)
	for i := range logits.Data() {
		logits.Data()[i] = float32(r.NormFloat64())
	}
	_, dx := l.Loss(logits, []int{0, 2, 4})
	for n := 0; n < 3; n++ {
		var s float64
		for j := 0; j < 5; j++ {
			s += float64(dx.At(n, j))
		}
		if math.Abs(s) > 1e-5 {
			t.Fatalf("row %d gradient sum = %v", n, s)
		}
	}
}

func TestSoftmaxPredictions(t *testing.T) {
	l := NewSoftmaxCE(2, 3)
	logits := tensor.FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	l.Loss(logits, []int{0, 0})
	preds := l.Predictions(nil)
	if preds[0] != 1 || preds[1] != 0 {
		t.Fatalf("predictions = %v", preds)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten(2, []int{3, 2, 2})
	x := tensor.New(2, 3, 2, 2)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 12 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	dy := tensor.New(2, 12)
	dx := f.Backward(dy)
	if dx.Rank() != 4 || dx.Dim(1) != 3 {
		t.Fatalf("flatten backward shape %v", dx.Shape())
	}
}
