package nn

import (
	"math"

	"crossbow/internal/tensor"
)

// SoftmaxCE is the softmax cross-entropy loss head used by all benchmark
// models. It consumes logits of shape [B, Classes] and integer labels.
type SoftmaxCE struct {
	Classes int
	batch   int

	probs *tensor.Tensor
	dx    *tensor.Tensor

	pbProbs, pbDx *plannedBuf
}

// NewSoftmaxCE constructs the loss for a fixed batch size. Buffers are
// declared to the memory planner, not allocated here.
func NewSoftmaxCE(batch, classes int) *SoftmaxCE {
	return &SoftmaxCE{
		Classes: classes, batch: batch,
		probs: tensor.NewShell(batch, classes),
		dx:    tensor.NewShell(batch, classes),
	}
}

func (s *SoftmaxCE) ensure() {
	if s.probs.HasData() {
		return
	}
	s.probs.SetData(make([]float32, s.batch*s.Classes))
	s.dx.SetData(make([]float32, s.batch*s.Classes))
}

// planLoss declares the head's buffers: Loss writes probs and dx row by row
// while reading the logits (so both outputs must coexist with them), and
// Predictions may read probs back after the loss returns.
func (s *SoftmaxCE) planLoss(p *taskPlanner, logits *plannedBuf) *plannedBuf {
	s.pbProbs = p.shell("loss.probs", s.probs, bufActivation)
	s.pbDx = p.shell("loss.dx", s.dx, bufGradient)
	p.touch(logits, s.pbProbs)
	return s.pbDx
}

// Loss computes the mean cross-entropy over the batch and the gradient with
// respect to the logits (already divided by the batch size, matching
// Eq. (2) of the paper: the gradient is averaged over batch samples).
func (s *SoftmaxCE) Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if len(labels) != s.batch {
		panic("nn: label count does not match batch size")
	}
	s.ensure()
	ld, pd, dd := logits.Data(), s.probs.Data(), s.dx.Data()
	var total float64
	invB := float32(1) / float32(s.batch)
	for n := 0; n < s.batch; n++ {
		row := ld[n*s.Classes : (n+1)*s.Classes]
		prow := pd[n*s.Classes : (n+1)*s.Classes]
		drow := dd[n*s.Classes : (n+1)*s.Classes]
		// Numerically stable softmax.
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			prow[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range prow {
			prow[j] *= inv
		}
		y := labels[n]
		if y < 0 || y >= s.Classes {
			panic("nn: label out of range")
		}
		p := float64(prow[y])
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
		for j := range drow {
			drow[j] = prow[j] * invB
		}
		drow[y] -= invB
	}
	return total / float64(s.batch), s.dx
}

// Predictions returns the arg-max class of the most recent Loss call's
// softmax for each sample in the batch.
func (s *SoftmaxCE) Predictions(out []int) []int {
	if out == nil {
		out = make([]int, s.batch)
	}
	pd := s.probs.Data()
	for n := 0; n < s.batch; n++ {
		row := pd[n*s.Classes : (n+1)*s.Classes]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		out[n] = bi
	}
	return out
}
