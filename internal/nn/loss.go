package nn

import (
	"math"

	"crossbow/internal/tensor"
)

// SoftmaxCE is the softmax cross-entropy loss head used by all benchmark
// models. It consumes logits of shape [B, Classes] and integer labels.
type SoftmaxCE struct {
	Classes int
	batch   int

	probs *tensor.Tensor
	dx    *tensor.Tensor

	pbProbs, pbDx *plannedBuf
}

// NewSoftmaxCE constructs the loss for a fixed batch size. Buffers are
// declared to the memory planner, not allocated here.
func NewSoftmaxCE(batch, classes int) *SoftmaxCE {
	return &SoftmaxCE{
		Classes: classes, batch: batch,
		probs: tensor.NewShell(batch, classes),
		dx:    tensor.NewShell(batch, classes),
	}
}

// ensure lazily allocates whichever buffers no arena has bound. The two are
// independent because the forward-only inference plan attaches probs but
// not dx: an Evaluate against an inference arena then self-allocates dx
// once, while the serving path (Probs) never touches it.
func (s *SoftmaxCE) ensure() {
	if !s.probs.HasData() {
		s.probs.SetData(make([]float32, s.batch*s.Classes))
	}
	if !s.dx.HasData() {
		s.dx.SetData(make([]float32, s.batch*s.Classes))
	}
}

// planLoss declares the head's buffers: Loss writes probs and dx row by row
// while reading the logits (so both outputs must coexist with them), and
// Predictions may read probs back after the loss returns.
func (s *SoftmaxCE) planLoss(p *taskPlanner, logits *plannedBuf) *plannedBuf {
	s.pbProbs = p.shell("loss.probs", s.probs, bufActivation)
	s.pbDx = p.shell("loss.dx", s.dx, bufGradient)
	p.touch(logits, s.pbProbs)
	return s.pbDx
}

// planProbs declares the head's forward-only buffer: the serving walk needs
// the softmax probabilities for Predict but neither the loss value's
// bookkeeping nor the logits gradient.
func (s *SoftmaxCE) planProbs(p *taskPlanner, logits *plannedBuf) {
	s.pbProbs = p.shell("loss.probs", s.probs, bufActivation)
	p.touch(logits, s.pbProbs)
}

// Probs computes the row-wise softmax of the logits into the probs buffer —
// the label-free half of Loss, used by the serving path. The returned
// tensor is the head's probs buffer (live until the next Loss/Probs call).
func (s *SoftmaxCE) Probs(logits *tensor.Tensor) *tensor.Tensor {
	if !s.probs.HasData() {
		s.probs.SetData(make([]float32, s.batch*s.Classes))
	}
	ld, pd := logits.Data(), s.probs.Data()
	for n := 0; n < s.batch; n++ {
		row := ld[n*s.Classes : (n+1)*s.Classes]
		prow := pd[n*s.Classes : (n+1)*s.Classes]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			prow[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range prow {
			prow[j] *= inv
		}
	}
	return s.probs
}

// Loss computes the mean cross-entropy over the batch and the gradient with
// respect to the logits (already divided by the batch size, matching
// Eq. (2) of the paper: the gradient is averaged over batch samples). The
// softmax itself is Probs — one implementation serves both the training
// and the serving path, so the two can never diverge numerically.
func (s *SoftmaxCE) Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if len(labels) != s.batch {
		panic("nn: label count does not match batch size")
	}
	s.ensure()
	s.Probs(logits)
	pd, dd := s.probs.Data(), s.dx.Data()
	var total float64
	invB := float32(1) / float32(s.batch)
	for n := 0; n < s.batch; n++ {
		prow := pd[n*s.Classes : (n+1)*s.Classes]
		drow := dd[n*s.Classes : (n+1)*s.Classes]
		y := labels[n]
		if y < 0 || y >= s.Classes {
			panic("nn: label out of range")
		}
		p := float64(prow[y])
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
		for j := range drow {
			drow[j] = prow[j] * invB
		}
		drow[y] -= invB
	}
	return total / float64(s.batch), s.dx
}

// Predictions returns the arg-max class of the most recent Loss call's
// softmax for each sample in the batch.
func (s *SoftmaxCE) Predictions(out []int) []int {
	if out == nil {
		out = make([]int, s.batch)
	}
	pd := s.probs.Data()
	for n := 0; n < s.batch; n++ {
		row := pd[n*s.Classes : (n+1)*s.Classes]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		out[n] = bi
	}
	return out
}
