package nn

import (
	"fmt"
	"hash/fnv"

	"crossbow/internal/memplan"
	"crossbow/internal/tensor"
)

// This file is the bridge between the layer library and the §4.5 memory
// planner: instead of allocating activations and scratch at construction,
// layers *declare* their buffers to a task planner that walks one learning
// task in execution order (forward layers, loss, backward layers — residual
// internals included). The walk yields the real dataflow as a memplan.Graph
// at sub-operator granularity (conv col/dcol/pack scratch, batch-norm
// statistics, residual joins), memplan.PlanOffline turns it into a per-task
// arena layout, and AttachArena binds every declared buffer to its planned
// slice of one contiguous block.
//
// Correctness invariant: a buffer may carry *cross-task* state only if that
// state is content-independent of which task wrote it. The single such
// buffer is the conv im2col matrix, whose static padding zeros depend only
// on layer geometry; it is planned as a pinned (exclusive) arena range so no
// other operator can clobber the zeros, which is what lets arenas migrate
// freely between learners through the shared online pools.

// bufKind classifies planned buffers for footprint statistics.
type bufKind uint8

// Buffer classes.
const (
	bufActivation bufKind = iota // forward outputs and caches read by backward
	bufScratch                   // lowering/staging scratch
	bufGradient                  // backward outputs (dL/dx chain)
)

// plannedBuf is one declared buffer: its size, its [produce, last-access]
// interval in the planning walk's tick order, and the layer field the
// planned slice binds to (exactly one of dst, dstI32, t is set).
type plannedBuf struct {
	name   string
	elems  int
	kind   bufKind
	pinned bool
	prod   int // tick at which the buffer is (first) written
	last   int // tick of the last access, read or write

	dst    *[]float32
	dstI32 *[]int32
	t      *tensor.Tensor

	off int // resolved arena offset, in elements
}

// taskPlanner drives one planning walk. Every declaration and every access
// advances a global tick, so declaration order is execution order and the
// lifetime intervals are exact.
type taskPlanner struct {
	tickN int
	bufs  []*plannedBuf
}

func (p *taskPlanner) tick() int { t := p.tickN; p.tickN++; return t }

func (p *taskPlanner) add(b *plannedBuf) *plannedBuf {
	b.prod = p.tick()
	b.last = b.prod
	p.bufs = append(p.bufs, b)
	return b
}

// slice declares a buffer bound to a []float32 layer field.
func (p *taskPlanner) slice(name string, dst *[]float32, elems int, kind bufKind) *plannedBuf {
	return p.add(&plannedBuf{name: name, elems: elems, kind: kind, dst: dst})
}

// int32s declares an index buffer bound to a []int32 layer field; it is
// planned as float32 elements and attached through tensor.AsInt32.
func (p *taskPlanner) int32s(name string, dst *[]int32, elems int, kind bufKind) *plannedBuf {
	return p.add(&plannedBuf{name: name, elems: elems, kind: kind, dstI32: dst})
}

// shell declares a buffer backing a shell tensor.
func (p *taskPlanner) shell(name string, t *tensor.Tensor, kind bufKind) *plannedBuf {
	return p.add(&plannedBuf{name: name, elems: tensor.Volume(t.Shape()), kind: kind, t: t})
}

// pin marks a buffer as requiring an exclusive arena range (no slot sharing
// in either direction): its cross-task content survives arena migration.
func (p *taskPlanner) pin(b *plannedBuf) *plannedBuf {
	b.pinned = true
	return b
}

// touch records an access (read or write) to already-declared buffers at the
// current point of the walk. Nil entries (buffers outside the arena, e.g.
// the network input) are ignored.
func (p *taskPlanner) touch(bufs ...*plannedBuf) {
	t := p.tick()
	for _, b := range bufs {
		if b != nil && t > b.last {
			b.last = t
		}
	}
}

// arenaLayer is implemented by every built-in layer: planFwd and planBwd
// mirror Forward and Backward at buffer granularity, declaring outputs and
// touching inputs in execution order. planFwd receives the layer's input
// buffer (nil when it lives outside the arena) and returns its output
// buffer; planBwd receives the incoming gradient buffer and returns the
// layer's input-gradient buffer.
//
// Sub-op rule: declare ALL outputs of one kernel step before touching its
// inputs, and include the step's secondary outputs in that closing touch.
// An input touched after the outputs outlives them in the interval model,
// so the planner can never hand an output the input's slot — which matters
// because kernels read their inputs interleaved with output writes
// (batch-norm scans x across the whole channel loop, GEMMs stream operands
// panel by panel). Touching the secondary outputs (batch-norm statistics,
// pool argmax, dropout keep) alongside makes the step's siblings mutually
// live too: without it, a sibling nothing later reads — which is exactly
// what happens to backward-only caches in the forward-only serving plan —
// would die at its declaration tick and could be overlaid onto the primary
// output it is written interleaved with.
type arenaLayer interface {
	planFwd(p *taskPlanner, in *plannedBuf) *plannedBuf
	planBwd(p *taskPlanner, dout *plannedBuf) *plannedBuf
}

// arenaResetter is implemented by layers with cross-task buffer state to
// revalidate when a (possibly different) arena is attached.
type arenaResetter interface {
	arenaReset()
}

// MemPlan is a network's planned task memory: the real dataflow graph, the
// offline buffer assignment, and the arena layout derived from it.
type MemPlan struct {
	// Graph is the learning task's operator graph (shareable buffers only;
	// pinned ranges are laid out after the planned region).
	Graph *memplan.Graph
	// Plan is the offline reference-count assignment over Graph.
	Plan *memplan.Plan

	bufs      []*plannedBuf
	resetters []arenaResetter

	// ArenaElems is the total arena size (planned + pinned) in elements.
	ArenaElems int
	// PlannedElems / PinnedElems split the arena into the shared-slot
	// region and the exclusive ranges.
	PlannedElems, PinnedElems int
	// NaiveElems is the unplanned footprint: one slot per declared buffer.
	NaiveElems int

	key string
}

// ArenaBytes returns the planned per-task footprint in bytes.
func (m *MemPlan) ArenaBytes() int64 { return int64(m.ArenaElems) * 4 }

// NaiveBytes returns the footprint without buffer reuse.
func (m *MemPlan) NaiveBytes() int64 { return int64(m.NaiveElems) * 4 }

// Savings returns the fraction of the naive allocation the plan avoids.
func (m *MemPlan) Savings() float64 {
	if m.NaiveElems == 0 {
		return 0
	}
	return 1 - float64(m.ArenaElems)/float64(m.NaiveElems)
}

// Buffers returns the number of declared buffers.
func (m *MemPlan) Buffers() int { return len(m.bufs) }

// Key identifies the plan's exact layout. Two networks share task arenas
// through the online pools only when their keys match, which guarantees
// every buffer sits at the same offset with the same geometry — the
// invariant that makes pooled arenas interchangeable across learners.
func (m *MemPlan) Key() string { return m.key }

// KindElems returns the total elements declared under a buffer class.
func (m *MemPlan) kindElems(k bufKind) int {
	n := 0
	for _, b := range m.bufs {
		if b.kind == k {
			n += b.elems
		}
	}
	return n
}

// ActivationElems returns elements declared as activations (outputs and
// forward caches) — the quantity §4.5's reuse attacks.
func (m *MemPlan) ActivationElems() int { return m.kindElems(bufActivation) }

// intervalsOverlap reports whether two planned buffers' lifetimes overlap.
func intervalsOverlap(a, b *plannedBuf) bool {
	return a.prod <= b.last && b.prod <= a.last
}

// checkPlan verifies the defining safety invariant against the *exact*
// lifetime intervals of the planning walk (a stronger check than the graph
// approximation): two buffers may share arena ranges only if their
// intervals are disjoint. Pinned buffers must not overlap anything.
func (m *MemPlan) checkPlan() error {
	type rng struct{ lo, hi int }
	ranges := make([]rng, len(m.bufs))
	for i, b := range m.bufs {
		ranges[i] = rng{b.off, b.off + b.elems}
	}
	for i, a := range m.bufs {
		for j := i + 1; j < len(m.bufs); j++ {
			b := m.bufs[j]
			if ranges[i].lo >= ranges[j].hi || ranges[j].lo >= ranges[i].hi {
				continue // disjoint arena ranges
			}
			if a.pinned || b.pinned {
				return fmt.Errorf("nn: pinned buffer %s overlaps %s in the arena", a.name, b.name)
			}
			if intervalsOverlap(a, b) {
				return fmt.Errorf("nn: buffers %s [%d,%d] and %s [%d,%d] share arena range with live overlap",
					a.name, a.prod, a.last, b.name, b.prod, b.last)
			}
		}
	}
	return nil
}

// planForward runs the forward half of a planning walk: every layer's
// planFwd in execution order, returning the logits buffer. The network input
// is staged by the data pipeline (or the serving batcher) and lives outside
// the arena.
func (n *Network) planForward(p *taskPlanner) *plannedBuf {
	var cur *plannedBuf
	for _, l := range n.layers {
		al, ok := l.(arenaLayer)
		if !ok {
			// Foreign layer: it manages its own buffers; its input must stay
			// live for its backward pass, which we cannot see — keep it live
			// to the end of the task.
			if cur != nil {
				cur.last = 1 << 30
			}
			cur = nil
			continue
		}
		cur = al.planFwd(p, cur)
	}
	return cur
}

// planMemory runs the full learning-task planning walk (forward, loss,
// backward) over the network and lays out the arena.
func (n *Network) planMemory() *MemPlan {
	p := &taskPlanner{}
	cur := n.planForward(p)
	// Loss head.
	dcur := n.loss.planLoss(p, cur)
	// Backward walk.
	for i := len(n.layers) - 1; i >= 0; i-- {
		al, ok := n.layers[i].(arenaLayer)
		if !ok {
			dcur = nil
			continue
		}
		dcur = al.planBwd(p, dcur)
	}
	return n.lowerPlan(p, "task")
}

// planInference runs the forward-only planning walk: every layer's planFwd
// plus the loss head's softmax probabilities (Predict's output), no
// backward. Forward caches that only backward reads (batch-norm x̂, conv
// im2col scratch lifetimes, pre-activation copies) die immediately after
// the consuming layer in this walk, so the planner reuses their slots
// aggressively — a serving arena is a fraction of the training arena for
// the same batch size, which is what lets a prediction runtime afford one
// arena per replica (DESIGN.md §11).
func (n *Network) planInference() *MemPlan {
	p := &taskPlanner{}
	cur := n.planForward(p)
	n.loss.planProbs(p, cur)
	return n.lowerPlan(p, "infer")
}

// lowerPlan turns a completed planning walk into a MemPlan: the walk is
// lowered into a memplan.Graph, PlanOffline assigns buffers, and the arena
// layout (planned slots, then pinned exclusive ranges) is derived. prefix
// namespaces the plan key, so training and inference arenas — different
// layouts over the same network — can never be confused in a shared pool.
func (n *Network) lowerPlan(p *taskPlanner, prefix string) *MemPlan {
	m := &MemPlan{bufs: p.bufs}
	for _, l := range n.layers {
		collectResetters(l, &m.resetters)
	}

	// Lower the walk into a memplan.Graph over the shareable buffers: one op
	// per buffer in declaration (= production) order; each buffer's consumer
	// is the first later op produced after its last access, so the offline
	// planner frees its slot exactly when the walk says it is dead.
	var share []*plannedBuf
	for _, b := range m.bufs {
		m.NaiveElems += b.elems
		if b.pinned {
			continue
		}
		share = append(share, b)
	}
	g := &memplan.Graph{Ops: make([]memplan.Op, len(share))}
	for i, b := range share {
		g.Ops[i] = memplan.Op{Name: b.name, OutBytes: int64(b.elems) * 4}
	}
	for i, b := range share {
		for j := i + 1; j < len(share); j++ {
			if share[j].prod > b.last {
				g.Ops[j].Inputs = append(g.Ops[j].Inputs, i)
				break
			}
		}
		// No later producer: the buffer stays live to the end (PlanOffline's
		// terminal-output rule keeps unread outputs allocated).
	}
	plan, err := memplan.PlanOffline(g)
	if err != nil {
		panic(fmt.Sprintf("nn: memory planning failed: %v", err))
	}
	m.Graph, m.Plan = g, plan

	// Arena layout: planned slots first, then the pinned exclusive ranges.
	slotOff := make([]int, len(plan.Buffers))
	off := 0
	for s, bytes := range plan.Buffers {
		slotOff[s] = off
		off += int(bytes / 4)
	}
	m.PlannedElems = off
	for i, b := range share {
		b.off = slotOff[plan.Assign[i]]
	}
	for _, b := range m.bufs {
		if !b.pinned {
			continue
		}
		b.off = off
		off += b.elems
		m.PinnedElems += b.elems
	}
	m.ArenaElems = off

	if err := m.checkPlan(); err != nil {
		panic(err)
	}

	// Layout key: batch, arena size and every (name, offset, size) triple.
	h := fnv.New64a()
	fmt.Fprintf(h, "b%d|%d", n.Batch, m.ArenaElems)
	for _, b := range m.bufs {
		fmt.Fprintf(h, "|%s@%d+%d", b.name, b.off, b.elems)
	}
	m.key = fmt.Sprintf("%s/b%d/%016x", prefix, n.Batch, h.Sum64())
	return m
}

// collectResetters flattens the layers needing arena-attach notification.
func collectResetters(l Layer, out *[]arenaResetter) {
	if r, ok := l.(*Residual); ok {
		for _, inner := range r.Operators() {
			collectResetters(inner, out)
		}
	}
	if rs, ok := l.(arenaResetter); ok {
		*out = append(*out, rs)
	}
}

// MemPlan returns the network's planned task memory, computing it on first
// use. The plan is structural: it depends only on the layer stack and batch
// size, never on parameters or data.
func (n *Network) MemPlan() *MemPlan {
	if n.fused {
		panic("nn: training memory plan on a fused (inference-only) network")
	}
	if n.memPlan == nil {
		n.memPlan = n.planMemory()
	}
	return n.memPlan
}

// InferPlan returns the network's planned forward-only (serving) memory,
// computing it on first use. Like MemPlan it is structural; unlike MemPlan
// it covers only the buffers a Predict call touches, so its arena is much
// smaller. A network executes against one plan at a time: attach either a
// training arena (AttachArena) or an inference arena
// (AttachInferenceArena), not both interleaved — serving replicas are
// inference-only networks, learner replicas training-only.
func (n *Network) InferPlan() *MemPlan {
	if n.inferPlan == nil {
		n.inferPlan = n.planInference()
	}
	return n.inferPlan
}

// AttachArena binds every planned buffer to its slice of the given arena,
// which must hold at least MemPlan().ArenaElems elements. Layers whose
// buffers were privately (lazily) allocated are rebound to the arena.
// Attaching is cheap and allocation-free in steady state, so the runtime
// re-attaches per learning task as arenas circulate through the shared
// §4.5 pools; arenas produced for the same plan key are fully
// interchangeable. Re-attaching the already-attached arena is a no-op.
//
// The first time this network sees a given arena base, the plan's pinned
// ranges are zeroed: pinned buffers (the conv im2col matrices) rely on
// their static padding zeros surviving across tasks, and zeroing on first
// sight makes even a dirty caller-supplied ArenaOf block safe — pool
// buffers and fresh arenas are already zero-filled, so for them this is a
// once-per-(network, arena) memset of memory that is about to be used
// anyway.
func (n *Network) AttachArena(a tensor.Arena) { n.attachPlan(n.MemPlan(), a) }

// AttachInferenceArena binds every buffer of the forward-only plan to its
// slice of the given arena, which must hold at least
// InferPlan().ArenaElems elements. Semantics match AttachArena (no-op
// re-attach, pinned-range zeroing on first sight, allocation-free in steady
// state); only the plan differs. Buffers outside the inference plan (the
// backward chain) are untouched and must never be exercised against an
// inference arena — Predict and Evaluate are the supported entry points.
func (n *Network) AttachInferenceArena(a tensor.Arena) { n.attachPlan(n.InferPlan(), a) }

func (n *Network) attachPlan(m *MemPlan, a tensor.Arena) {
	if a.Len() < m.ArenaElems {
		panic(fmt.Sprintf("nn: arena holds %d elements, plan needs %d", a.Len(), m.ArenaElems))
	}
	base := a.Base()
	if base != nil && base == n.arenaBase {
		return
	}
	if base != nil && !n.seenArenas[base] {
		if n.seenArenas == nil {
			n.seenArenas = make(map[*float32]bool)
		}
		for _, b := range m.bufs {
			if b.pinned {
				clear(a.Slice(b.off, b.elems))
			}
		}
		n.seenArenas[base] = true
	}
	for _, b := range m.bufs {
		s := a.Slice(b.off, b.elems)
		switch {
		case b.dst != nil:
			*b.dst = s
		case b.dstI32 != nil:
			*b.dstI32 = tensor.AsInt32(s)
		default:
			b.t.SetData(s)
		}
	}
	for _, r := range m.resetters {
		r.arenaReset()
	}
	n.arenaBase = base
}

// ArenaAttached reports whether the network currently executes against an
// attached arena (as opposed to lazily self-allocated private buffers).
func (n *Network) ArenaAttached() bool { return n.arenaBase != nil }
