package nn

import (
	"testing"

	"crossbow/internal/memplan"
	"crossbow/internal/tensor"
)

// planNet builds a scaled benchmark network without binding parameters.
func planNet(t *testing.T, id ModelID, batch int) *Network {
	t.Helper()
	return BuildScaled(id, batch, tensor.NewRNG(1))
}

func TestMemPlanValidAllModels(t *testing.T) {
	for _, id := range AllModels {
		net := planNet(t, id, 4)
		m := net.MemPlan()
		if err := m.Graph.Validate(); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := memplan.CheckNoLiveOverlap(m.Graph, m.Plan); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := m.checkPlan(); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if m.ArenaElems > m.NaiveElems {
			t.Fatalf("%s: arena %d elems exceeds naive %d", id, m.ArenaElems, m.NaiveElems)
		}
		if m.Savings() <= 0 {
			t.Fatalf("%s: no planned savings (arena %d, naive %d)", id, m.ArenaElems, m.NaiveElems)
		}
		if m.Buffers() == 0 || m.ActivationElems() == 0 {
			t.Fatalf("%s: empty plan", id)
		}
	}
}

func TestMemPlanFullScaleModels(t *testing.T) {
	// Full-scale planning must work without allocating the (multi-GB)
	// buffers themselves — this is what the auto-tuner's memory cap reads.
	for _, id := range AllModels {
		batch := 32
		if id == ResNet50 {
			batch = 8 // keep the plan walk fast
		}
		net := BuildFull(id, batch)
		m := net.MemPlan()
		if err := memplan.CheckNoLiveOverlap(m.Graph, m.Plan); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if m.Savings() <= 0.1 {
			t.Fatalf("%s: full-scale savings = %.3f, want the §4.5 backward-reuse scale", id, m.Savings())
		}
	}
}

func TestMemPlanKeyDistinguishesLayouts(t *testing.T) {
	a := planNet(t, ResNet32, 4).MemPlan().Key()
	b := planNet(t, ResNet32, 8).MemPlan().Key()
	c := planNet(t, VGG16, 4).MemPlan().Key()
	d := planNet(t, ResNet32, 4).MemPlan().Key()
	if a == b || a == c || b == c {
		t.Fatalf("distinct layouts share a key: %q %q %q", a, b, c)
	}
	if a != d {
		t.Fatalf("identical layouts must share a key: %q vs %q", a, d)
	}
}

// runTask zeroes g and runs one LossAndGrad over x/labels.
func runTask(net *Network, g []float32, x *tensor.Tensor, labels []int) float64 {
	tensor.ZeroSlice(g)
	return net.LossAndGrad(x, labels)
}

// TestArenaBitIdenticalToPrivate is the layer-level determinism pin of the
// memory plane: the same network structure produces bit-identical losses,
// gradients and activations whether its buffers are lazily private or
// planned arena slices — including when the arena is swapped for a
// different pooled arena between tasks (the online-planner migration case)
// and when a previously used arena returns with another task's stale
// contents in it.
func TestArenaBitIdenticalToPrivate(t *testing.T) {
	for _, id := range []ModelID{ResNet32, VGG16, LeNet, ResNet50} {
		const batch = 3
		ref := BuildScaled(id, batch, tensor.NewRNG(7))
		arn := BuildScaled(id, batch, tensor.NewRNG(7))

		w := ref.Init(tensor.NewRNG(11))
		gRef := make([]float32, ref.ParamSize())
		wArn := append([]float32(nil), w...)
		gArn := make([]float32, arn.ParamSize())
		ref.Bind(w, gRef)
		arn.Bind(wArn, gArn)

		arenaA := tensor.NewArena(arn.MemPlan().ArenaElems)
		arenaB := tensor.NewArena(arn.MemPlan().ArenaElems)

		r := tensor.NewRNG(23)
		shape := append([]int{batch}, ref.InShape...)
		xs := make([]*tensor.Tensor, 3)
		labels := make([][]int, 3)
		for i := range xs {
			xs[i] = tensor.New(shape...)
			for j := range xs[i].Data() {
				xs[i].Data()[j] = float32(r.NormFloat64())
			}
			labels[i] = make([]int, batch)
			for j := range labels[i] {
				labels[i][j] = r.Intn(ref.Classes)
			}
		}

		// Task sequence A, B, A: the second visit to arena A sees the stale
		// interior another task left behind, exactly like a pooled buffer.
		arenas := []tensor.Arena{arenaA, arenaB, arenaA}
		for i := range xs {
			lossRef := runTask(ref, gRef, xs[i], labels[i])
			arn.AttachArena(arenas[i])
			lossArn := runTask(arn, gArn, xs[i], labels[i])
			if lossRef != lossArn {
				t.Fatalf("%s task %d: loss %v (private) != %v (arena)", id, i, lossRef, lossArn)
			}
			for j := range gRef {
				if gRef[j] != gArn[j] {
					t.Fatalf("%s task %d: grad[%d] %v != %v", id, i, j, gRef[j], gArn[j])
				}
			}
			for j := range w {
				if w[j] != wArn[j] {
					t.Fatalf("%s task %d: weights diverged at %d", id, i, j)
				}
			}
		}

		// Evaluation path over the arena must match too.
		if cRef, cArn := ref.Evaluate(xs[0], labels[0]), arn.Evaluate(xs[0], labels[0]); cRef != cArn {
			t.Fatalf("%s: eval %d (private) != %d (arena)", id, cRef, cArn)
		}
	}
}

// TestAttachArenaToleratesDirtyArena: AttachArena zeroes pinned ranges on
// first sight of an arena base, so even a recycled, garbage-filled block
// wrapped with tensor.ArenaOf computes correctly (the conv padding-zero
// invariant is re-established rather than assumed).
func TestAttachArenaToleratesDirtyArena(t *testing.T) {
	const batch = 2
	ref := BuildScaled(ResNet32, batch, tensor.NewRNG(7))
	arn := BuildScaled(ResNet32, batch, tensor.NewRNG(7))
	w := ref.Init(tensor.NewRNG(11))
	gRef := make([]float32, ref.ParamSize())
	gArn := make([]float32, arn.ParamSize())
	wArn := append([]float32(nil), w...)
	ref.Bind(w, gRef)
	arn.Bind(wArn, gArn)

	dirty := make([]float32, arn.MemPlan().ArenaElems)
	for i := range dirty {
		dirty[i] = float32(i%17) - 8
	}
	arn.AttachArena(tensor.ArenaOf(dirty))

	x := tensor.New(append([]int{batch}, ref.InShape...)...)
	r := tensor.NewRNG(23)
	for i := range x.Data() {
		x.Data()[i] = float32(r.NormFloat64())
	}
	labels := []int{1, 3}
	if lr, la := runTask(ref, gRef, x, labels), runTask(arn, gArn, x, labels); lr != la {
		t.Fatalf("dirty arena diverged: loss %v vs %v", lr, la)
	}
	for i := range gRef {
		if gRef[i] != gArn[i] {
			t.Fatalf("dirty arena grad[%d]: %v vs %v", i, gRef[i], gArn[i])
		}
	}
}

func TestAttachArenaRejectsShortArena(t *testing.T) {
	net := planNet(t, LeNet, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for undersized arena")
		}
	}()
	net.AttachArena(tensor.NewArena(net.MemPlan().ArenaElems - 1))
}

func TestAttachArenaIdempotent(t *testing.T) {
	net := planNet(t, LeNet, 2)
	a := tensor.NewArena(net.MemPlan().ArenaElems)
	net.AttachArena(a)
	if !net.ArenaAttached() {
		t.Fatal("arena not attached")
	}
	net.AttachArena(a) // must be a cheap no-op
}
