package nn

import (
	"fmt"

	"crossbow/internal/tensor"
)

// ModelID names one of the paper's four benchmark models (Table 1).
type ModelID string

// The four deep-learning benchmarks of the paper's evaluation (Table 1).
const (
	LeNet    ModelID = "lenet"    // MNIST
	ResNet32 ModelID = "resnet32" // CIFAR-10
	VGG16    ModelID = "vgg16"    // CIFAR-100
	ResNet50 ModelID = "resnet50" // ILSVRC 2012
)

// AllModels lists the benchmark models in the paper's Table 1 order.
var AllModels = []ModelID{LeNet, ResNet32, VGG16, ResNet50}

// ScaledConfig describes the scaled-down trainable variant of a benchmark
// model: same architectural family (conv/dense mix, residual structure,
// depth pattern) at a size a CPU can train in seconds. The full-scale
// architecture — used by the hardware simulator's cost model and Table 1 —
// lives in spec.go.
type ScaledConfig struct {
	Input   []int // per-sample input shape [C, H, W]
	Classes int
}

// ScaledConfigs maps each benchmark to its scaled trainable configuration.
var ScaledConfigs = map[ModelID]ScaledConfig{
	LeNet:    {Input: []int{1, 12, 12}, Classes: 10},
	ResNet32: {Input: []int{3, 8, 8}, Classes: 10},
	VGG16:    {Input: []int{3, 8, 8}, Classes: 20},
	ResNet50: {Input: []int{3, 8, 8}, Classes: 10},
}

// BuildFull constructs the *full-scale* benchmark architecture (paper
// Table 1) as a real layer stack. Since layers declare buffers to the memory
// planner instead of allocating them, building a full-scale network is
// cheap: the result's MemPlan describes the true per-learner footprint —
// conv lowering scratch, batch-norm statistics and residual joins included —
// which the auto-tuner's memory cap is derived from (§4.5). Training it
// would require attaching a (multi-GB) arena; the planner never does.
func BuildFull(id ModelID, batch int) *Network {
	spec := FullSpec(id)
	b := NewBuilder(batch, []int{spec.Input[0], spec.Input[1], spec.Input[2]}, spec.Classes, tensor.NewRNG(1))
	switch id {
	case LeNet:
		b.Conv(32, 5, 1, 2).ReLU().MaxPool(2).
			Conv(64, 5, 1, 2).ReLU().MaxPool(2).
			Flatten().Dense(300).ReLU().Dense(10)
	case ResNet32:
		b.Conv(16, 3, 1, 1).BN().ReLU()
		for i := 0; i < 5; i++ {
			b.BasicBlock(16, 1)
		}
		b.BasicBlock(32, 2)
		for i := 0; i < 4; i++ {
			b.BasicBlock(32, 1)
		}
		b.BasicBlock(64, 2)
		for i := 0; i < 4; i++ {
			b.BasicBlock(64, 1)
		}
		b.GlobalAvgPool().Dense(10)
	case VGG16:
		widths := [][]int{{64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512}, {512, 512, 512}}
		for _, stage := range widths {
			for _, w := range stage {
				b.Conv(w, 3, 1, 1).BN().ReLU()
			}
			b.MaxPool(2)
		}
		b.Flatten().Dense(512).ReLU().Dropout(0.5).Dense(100)
	case ResNet50:
		b.Conv(64, 7, 2, 3).BN().ReLU().MaxPool(2)
		stages := []struct {
			mid, out, blocks, stride int
		}{
			{64, 256, 3, 1},
			{128, 512, 4, 2},
			{256, 1024, 6, 2},
			{512, 2048, 3, 2},
		}
		for _, st := range stages {
			b.BottleneckBlock(st.mid, st.out, st.stride)
			for i := 1; i < st.blocks; i++ {
				b.BottleneckBlock(st.mid, st.out, 1)
			}
		}
		b.GlobalAvgPool().Dense(1000)
	default:
		panic(fmt.Sprintf("nn: unknown model %q", id))
	}
	return b.Build()
}

// BuildScaled constructs the scaled trainable network for a benchmark model
// at the given batch size. rng drives stochastic layers (dropout).
func BuildScaled(id ModelID, batch int, rng *tensor.RNG) *Network {
	cfg, ok := ScaledConfigs[id]
	if !ok {
		panic(fmt.Sprintf("nn: unknown model %q", id))
	}
	b := NewBuilder(batch, cfg.Input, cfg.Classes, rng)
	switch id {
	case LeNet:
		// LeNet family: two conv+pool stages then a dense classifier.
		b.Conv(8, 3, 1, 1).ReLU().MaxPool(2). // 8×6×6
							Conv(16, 3, 1, 1).ReLU().MaxPool(2). // 16×3×3
							Flatten().Dense(32).ReLU().Dense(cfg.Classes)
	case ResNet32:
		// ResNet-32 family: conv stem, three stages of basic blocks with
		// widths doubling and stride-2 transitions, global average pool.
		b.Conv(8, 3, 1, 1).BN().ReLU()
		b.BasicBlock(8, 1).BasicBlock(8, 1)
		b.BasicBlock(16, 2).BasicBlock(16, 1)
		b.BasicBlock(32, 2).BasicBlock(32, 1)
		b.GlobalAvgPool().Dense(cfg.Classes)
	case VGG16:
		// VGG family: stacked 3×3 conv pairs with pooling, then a dense
		// classifier with dropout. The final stage keeps 2×2 spatial
		// resolution so the classifier sees 192 features.
		b.Conv(12, 3, 1, 1).ReLU().Conv(12, 3, 1, 1).ReLU().MaxPool(2). // 12×4×4
										Conv(24, 3, 1, 1).ReLU().Conv(24, 3, 1, 1).ReLU().MaxPool(2). // 24×2×2
										Conv(48, 3, 1, 1).ReLU().Conv(48, 3, 1, 1).ReLU().            // 48×2×2
										Flatten().Dense(64).ReLU().Dropout(0.2).Dense(cfg.Classes)
	case ResNet50:
		// ResNet-50 family: bottleneck residual blocks.
		b.Conv(8, 3, 1, 1).BN().ReLU()
		b.BottleneckBlock(4, 16, 1).BottleneckBlock(4, 16, 1)
		b.BottleneckBlock(8, 32, 2).BottleneckBlock(8, 32, 1)
		b.GlobalAvgPool().Dense(cfg.Classes)
	}
	return b.Build()
}
