package nn

import (
	"fmt"

	"crossbow/internal/tensor"
)

// ModelID names one of the paper's four benchmark models (Table 1).
type ModelID string

// The four deep-learning benchmarks of the paper's evaluation (Table 1).
const (
	LeNet    ModelID = "lenet"    // MNIST
	ResNet32 ModelID = "resnet32" // CIFAR-10
	VGG16    ModelID = "vgg16"    // CIFAR-100
	ResNet50 ModelID = "resnet50" // ILSVRC 2012
)

// AllModels lists the benchmark models in the paper's Table 1 order.
var AllModels = []ModelID{LeNet, ResNet32, VGG16, ResNet50}

// ScaledConfig describes the scaled-down trainable variant of a benchmark
// model: same architectural family (conv/dense mix, residual structure,
// depth pattern) at a size a CPU can train in seconds. The full-scale
// architecture — used by the hardware simulator's cost model and Table 1 —
// lives in spec.go.
type ScaledConfig struct {
	Input   []int // per-sample input shape [C, H, W]
	Classes int
}

// ScaledConfigs maps each benchmark to its scaled trainable configuration.
var ScaledConfigs = map[ModelID]ScaledConfig{
	LeNet:    {Input: []int{1, 12, 12}, Classes: 10},
	ResNet32: {Input: []int{3, 8, 8}, Classes: 10},
	VGG16:    {Input: []int{3, 8, 8}, Classes: 20},
	ResNet50: {Input: []int{3, 8, 8}, Classes: 10},
}

// BuildScaled constructs the scaled trainable network for a benchmark model
// at the given batch size. rng drives stochastic layers (dropout).
func BuildScaled(id ModelID, batch int, rng *tensor.RNG) *Network {
	cfg, ok := ScaledConfigs[id]
	if !ok {
		panic(fmt.Sprintf("nn: unknown model %q", id))
	}
	b := NewBuilder(batch, cfg.Input, cfg.Classes, rng)
	switch id {
	case LeNet:
		// LeNet family: two conv+pool stages then a dense classifier.
		b.Conv(8, 3, 1, 1).ReLU().MaxPool(2). // 8×6×6
							Conv(16, 3, 1, 1).ReLU().MaxPool(2). // 16×3×3
							Flatten().Dense(32).ReLU().Dense(cfg.Classes)
	case ResNet32:
		// ResNet-32 family: conv stem, three stages of basic blocks with
		// widths doubling and stride-2 transitions, global average pool.
		b.Conv(8, 3, 1, 1).BN().ReLU()
		b.BasicBlock(8, 1).BasicBlock(8, 1)
		b.BasicBlock(16, 2).BasicBlock(16, 1)
		b.BasicBlock(32, 2).BasicBlock(32, 1)
		b.GlobalAvgPool().Dense(cfg.Classes)
	case VGG16:
		// VGG family: stacked 3×3 conv pairs with pooling, then a dense
		// classifier with dropout. The final stage keeps 2×2 spatial
		// resolution so the classifier sees 192 features.
		b.Conv(12, 3, 1, 1).ReLU().Conv(12, 3, 1, 1).ReLU().MaxPool(2). // 12×4×4
										Conv(24, 3, 1, 1).ReLU().Conv(24, 3, 1, 1).ReLU().MaxPool(2). // 24×2×2
										Conv(48, 3, 1, 1).ReLU().Conv(48, 3, 1, 1).ReLU().            // 48×2×2
										Flatten().Dense(64).ReLU().Dropout(0.2).Dense(cfg.Classes)
	case ResNet50:
		// ResNet-50 family: bottleneck residual blocks.
		b.Conv(8, 3, 1, 1).BN().ReLU()
		b.BottleneckBlock(4, 16, 1).BottleneckBlock(4, 16, 1)
		b.BottleneckBlock(8, 32, 2).BottleneckBlock(8, 32, 1)
		b.GlobalAvgPool().Dense(cfg.Classes)
	}
	return b.Build()
}
