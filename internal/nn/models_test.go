package nn

import (
	"testing"

	"crossbow/internal/tensor"
)

func TestBuildScaledAllModels(t *testing.T) {
	for _, id := range AllModels {
		id := id
		t.Run(string(id), func(t *testing.T) {
			r := tensor.NewRNG(1)
			net := BuildScaled(id, 4, r)
			if net.ParamSize() == 0 {
				t.Fatal("no parameters")
			}
			w := net.Init(r)
			g := make([]float32, net.ParamSize())
			net.Bind(w, g)
			cfg := ScaledConfigs[id]
			x := tensor.New(append([]int{4}, cfg.Input...)...)
			for i := range x.Data() {
				x.Data()[i] = float32(r.NormFloat64())
			}
			labels := []int{0, 1, 0, 1}
			loss := net.LossAndGrad(x, labels)
			if loss <= 0 || loss > 50 {
				t.Fatalf("initial loss %v out of range", loss)
			}
			var nz int
			for _, v := range g {
				if v != 0 {
					nz++
				}
			}
			if nz == 0 {
				t.Fatal("no gradient produced")
			}
		})
	}
}

func TestBuildScaledUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildScaled(ModelID("nope"), 1, tensor.NewRNG(1))
}

func TestInitDeterministic(t *testing.T) {
	n1 := BuildScaled(ResNet32, 2, tensor.NewRNG(5))
	n2 := BuildScaled(ResNet32, 2, tensor.NewRNG(5))
	w1 := n1.Init(tensor.NewRNG(9))
	w2 := n2.Init(tensor.NewRNG(9))
	if tensor.MaxAbsDiff(w1, w2) != 0 {
		t.Fatal("same seed must give identical initial models")
	}
}

// TestTrainingReducesLoss trains the scaled LeNet on a separable toy batch
// with plain SGD and asserts the loss falls — the end-to-end smoke test
// that forward, backward and the contiguous parameter store compose.
func TestTrainingReducesLoss(t *testing.T) {
	r := tensor.NewRNG(3)
	batch := 8
	net := BuildScaled(LeNet, batch, r)
	w := net.Init(r)
	g := make([]float32, net.ParamSize())
	net.Bind(w, g)

	cfg := ScaledConfigs[LeNet]
	x := tensor.New(append([]int{batch}, cfg.Input...)...)
	labels := make([]int, batch)
	for i := 0; i < batch; i++ {
		labels[i] = i % 2
		base := float32(labels[i]) * 2
		vol := tensor.Volume(cfg.Input)
		for j := 0; j < vol; j++ {
			x.Data()[i*vol+j] = base + float32(r.NormFloat64())*0.1
		}
	}

	first := net.LossAndGrad(x, labels)
	loss := first
	for it := 0; it < 60; it++ {
		tensor.ZeroSlice(g)
		loss = net.LossAndGrad(x, labels)
		tensor.Axpy(-0.05, g, w)
	}
	if loss >= first*0.5 {
		t.Fatalf("loss did not drop: first %v, last %v", first, loss)
	}
}

func TestNumOperatorsCountsResidualInternals(t *testing.T) {
	r := tensor.NewRNG(1)
	plain := NewBuilder(2, []int{2, 4, 4}, 2, r).
		Conv(2, 3, 1, 1).ReLU().GlobalAvgPool().Dense(2).Build()
	if got := plain.NumOperators(); got != 5 {
		t.Fatalf("plain ops = %d, want 5 (4 layers + loss)", got)
	}
	b := NewBuilder(2, []int{2, 4, 4}, 2, r)
	b.BasicBlock(2, 1)
	res := b.GlobalAvgPool().Dense(2).Build()
	// Basic block: 5 branch ops + add/relu, plus gavg, dense, loss.
	if got := res.NumOperators(); got != 9 {
		t.Fatalf("residual ops = %d, want 9", got)
	}
}

func TestFullSpecTable1Shape(t *testing.T) {
	// The full-scale specs must reproduce the magnitude ordering of the
	// paper's Table 1: ResNet-32 is the smallest model, ResNet-50 the
	// largest; ResNet-50 has the most operators; LeNet the fewest.
	sizes := map[ModelID]float64{}
	ops := map[ModelID]int{}
	for _, id := range AllModels {
		s := FullSpec(id)
		sizes[id] = s.ModelMB()
		ops[id] = s.NumOps()
	}
	if !(sizes[ResNet32] < sizes[LeNet] && sizes[LeNet] < sizes[VGG16] && sizes[VGG16] < sizes[ResNet50]) {
		t.Fatalf("model size ordering broken: %v", sizes)
	}
	if !(ops[LeNet] < ops[VGG16] && ops[VGG16] < ops[ResNet32] && ops[ResNet32] < ops[ResNet50]) {
		t.Fatalf("operator count ordering broken: %v", ops)
	}
	// Magnitudes within a factor ~2 of Table 1.
	checks := []struct {
		id    ModelID
		paper float64
	}{
		{LeNet, 4.24}, {ResNet32, 1.79}, {VGG16, 57.37}, {ResNet50, 97.49},
	}
	for _, c := range checks {
		got := sizes[c.id]
		if got < c.paper/2.5 || got > c.paper*2.5 {
			t.Errorf("%s model size %.2f MB too far from paper's %.2f MB", c.id, got, c.paper)
		}
	}
}

func TestFullSpecResNet50Scale(t *testing.T) {
	s := FullSpec(ResNet50)
	p := s.ParamCount()
	if p < 23e6 || p > 28e6 {
		t.Fatalf("ResNet-50 params = %d, want ~25.5M", p)
	}
	f := s.ForwardFLOPs()
	// ~4 GMACs = ~8 GFLOPs counting multiply and add separately.
	if f < 6e9 || f > 10e9 {
		t.Fatalf("ResNet-50 forward FLOPs = %d, want ~8 GFLOPs", f)
	}
	// Paper §4.5: ResNet-50 output buffers dominate the model by ~2 orders
	// of magnitude at batch 32 (7.5 GB vs 97.5 MB → 234 MB vs ~100 MB per
	// sample).
	if s.ActivationBytes() < s.ParamCount() {
		t.Fatal("activations should outweigh parameters per sample")
	}
}

func TestFullSpecInputMB(t *testing.T) {
	if mb := FullSpec(ResNet32).InputMB(); mb < 400 || mb > 900 {
		t.Fatalf("CIFAR-10 input MB = %v, want ~614 (paper reports 703)", mb)
	}
	if mb := FullSpec(ResNet50).InputMB(); mb < 500e3 {
		t.Fatalf("ILSVRC input MB = %v, want ~1TB scale", mb)
	}
}

// TestBuildFullMatchesSpec pins the two hand-maintained encodings of the
// full-scale architectures against each other: BuildFull (the real layer
// stack the live memory plan is derived from) must agree with FullSpec (the
// Table-1 metadata the simulator costs) parameter-for-parameter. A width,
// stage or block-count edit to one without the other breaks this.
func TestBuildFullMatchesSpec(t *testing.T) {
	for _, id := range AllModels {
		spec := FullSpec(id)
		net := BuildFull(id, 2)
		if got, want := int64(net.ParamSize()), spec.ParamCount(); got != want {
			t.Errorf("%s: BuildFull has %d params, FullSpec says %d", id, got, want)
		}
		if net.Classes != spec.Classes {
			t.Errorf("%s: BuildFull classes %d, spec %d", id, net.Classes, spec.Classes)
		}
		if in := net.InShape; in[0] != spec.Input[0] || in[1] != spec.Input[1] || in[2] != spec.Input[2] {
			t.Errorf("%s: BuildFull input %v, spec %v", id, in, spec.Input)
		}
	}
}
