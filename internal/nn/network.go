package nn

import (
	"fmt"

	"crossbow/internal/tensor"
)

// Network is a feed-forward stack of layers plus a softmax cross-entropy
// head. One Network instance owns the activation buffers for one learner at
// a fixed batch size; parameters are external and bound per call site, so
// the same instance can evaluate any replica or the central average model.
type Network struct {
	InShape []int
	Classes int
	Batch   int

	layers []Layer
	loss   *SoftmaxCE
	size   int

	mode      tensor.KernelMode // GEMM kernel mode for every layer (fuse.go)
	fused     bool              // FuseInference ran: inference-only network
	quantized bool              // QuantizeWeights ran: int8 eval forward

	boundW []float32 // currently bound parameter vector (for sanity checks)

	// Planned task memory (computed lazily; see memory.go): memPlan covers
	// a full learning task, inferPlan the forward-only serving walk.
	// arenaBase identifies the currently attached arena so re-attachment
	// is a no-op; seenArenas tracks bases whose pinned ranges this network
	// has zeroed.
	memPlan    *MemPlan
	inferPlan  *MemPlan
	arenaBase  *float32
	seenArenas map[*float32]bool

	preds []int // Evaluate's prediction scratch, allocated once
}

// Builder accumulates layers, threading the evolving per-sample shape so
// model definitions read top-to-bottom like the paper's architecture tables.
type Builder struct {
	batch   int
	in0     []int
	shape   []int
	classes int
	layers  []Layer
	rng     *tensor.RNG
}

// NewBuilder starts a network definition for the given batch size and
// per-sample input shape. rng is used only by stochastic layers (dropout).
func NewBuilder(batch int, inShape []int, classes int, rng *tensor.RNG) *Builder {
	return &Builder{
		batch:   batch,
		in0:     append([]int(nil), inShape...),
		shape:   append([]int(nil), inShape...),
		classes: classes, rng: rng,
	}
}

// Shape returns the current per-sample shape.
func (b *Builder) Shape() []int { return b.shape }

// Add appends a pre-constructed layer and advances the shape.
func (b *Builder) Add(l Layer) *Builder {
	b.layers = append(b.layers, l)
	b.shape = append([]int(nil), l.OutShape()...)
	return b
}

// Conv appends a Conv2D (square kernel k, stride s, padding p).
func (b *Builder) Conv(outC, k, s, p int) *Builder {
	return b.Add(NewConv2D(b.batch, b.shape, outC, k, s, p))
}

// BN appends a batch-norm layer.
func (b *Builder) BN() *Builder { return b.Add(NewBatchNorm(b.batch, b.shape)) }

// ReLU appends a ReLU.
func (b *Builder) ReLU() *Builder { return b.Add(NewReLU(b.batch, b.shape)) }

// MaxPool appends a k×k max pool with stride k.
func (b *Builder) MaxPool(k int) *Builder { return b.Add(NewMaxPool(b.batch, b.shape, k)) }

// GlobalAvgPool appends a global average pool.
func (b *Builder) GlobalAvgPool() *Builder { return b.Add(NewGlobalAvgPool(b.batch, b.shape)) }

// Flatten appends a flatten layer.
func (b *Builder) Flatten() *Builder { return b.Add(NewFlatten(b.batch, b.shape)) }

// Dense appends a fully connected layer; the current shape must be flat.
func (b *Builder) Dense(out int) *Builder {
	if len(b.shape) != 1 {
		panic(fmt.Sprintf("nn: Dense on non-flat shape %v (insert Flatten)", b.shape))
	}
	return b.Add(NewDense(b.batch, b.shape[0], out))
}

// Dropout appends a dropout layer with drop probability p.
func (b *Builder) Dropout(p float64) *Builder {
	return b.Add(NewDropout(b.batch, b.shape, p, b.rng))
}

// BasicBlock appends a ResNet basic residual block (3×3 conv, BN, ReLU,
// 3×3 conv, BN; projection shortcut when stride ≠ 1 or channels change).
func (b *Builder) BasicBlock(outC, stride int) *Builder {
	in := b.shape
	batch := b.batch
	c1 := NewConv2D(batch, in, outC, 3, stride, 1)
	bn1 := NewBatchNorm(batch, c1.OutShape())
	r1 := NewReLU(batch, bn1.OutShape())
	c2 := NewConv2D(batch, r1.OutShape(), outC, 3, 1, 1)
	bn2 := NewBatchNorm(batch, c2.OutShape())
	branch := []Layer{c1, bn1, r1, c2, bn2}
	var shortcut []Layer
	if stride != 1 || in[0] != outC {
		sc := NewConv2D(batch, in, outC, 1, stride, 0)
		sbn := NewBatchNorm(batch, sc.OutShape())
		shortcut = []Layer{sc, sbn}
	}
	return b.Add(NewResidual(batch, in, branch, shortcut))
}

// BottleneckBlock appends a ResNet bottleneck block (1×1 reduce, 3×3,
// 1×1 expand, each followed by BN; ReLU between; projection shortcut on
// shape change). outC is the expanded (output) width; midC the bottleneck.
func (b *Builder) BottleneckBlock(midC, outC, stride int) *Builder {
	in := b.shape
	batch := b.batch
	c1 := NewConv2D(batch, in, midC, 1, 1, 0)
	bn1 := NewBatchNorm(batch, c1.OutShape())
	r1 := NewReLU(batch, bn1.OutShape())
	c2 := NewConv2D(batch, r1.OutShape(), midC, 3, stride, 1)
	bn2 := NewBatchNorm(batch, c2.OutShape())
	r2 := NewReLU(batch, bn2.OutShape())
	c3 := NewConv2D(batch, r2.OutShape(), outC, 1, 1, 0)
	bn3 := NewBatchNorm(batch, c3.OutShape())
	branch := []Layer{c1, bn1, r1, c2, bn2, r2, c3, bn3}
	var shortcut []Layer
	if stride != 1 || in[0] != outC {
		sc := NewConv2D(batch, in, outC, 1, stride, 0)
		sbn := NewBatchNorm(batch, sc.OutShape())
		shortcut = []Layer{sc, sbn}
	}
	return b.Add(NewResidual(batch, in, branch, shortcut))
}

// Build finalises the network. The last layer's output must be flat with
// width equal to the class count.
func (b *Builder) Build() *Network {
	if len(b.shape) != 1 || b.shape[0] != b.classes {
		panic(fmt.Sprintf("nn: network output shape %v does not match %d classes", b.shape, b.classes))
	}
	n := &Network{
		InShape: b.in0, Classes: b.classes, Batch: b.batch,
		layers: b.layers,
		loss:   NewSoftmaxCE(b.batch, b.classes),
	}
	for _, l := range b.layers {
		n.size += l.NumParams()
	}
	return n
}

// ParamSize returns the total number of parameters (including batch-norm
// running statistics, which live in the model vector).
func (n *Network) ParamSize() int { return n.size }

// Layers returns the layer list (read-only use).
func (n *Network) Layers() []Layer { return n.layers }

// NumOperators counts primitive operators, descending into residual blocks
// and counting the block's sum+ReLU as one combined operator — the paper's
// Table 1 "# Ops" counts dataflow operators the same way.
func (n *Network) NumOperators() int {
	count := 0
	for _, l := range n.layers {
		if r, ok := l.(*Residual); ok {
			count += len(r.Operators()) + 1
			continue
		}
		count++
	}
	return count + 1 // loss head
}

// Bind attaches parameter and gradient vectors to every layer. Both must
// have length ParamSize.
func (n *Network) Bind(w, g []float32) {
	if len(w) != n.size || len(g) != n.size {
		panic(fmt.Sprintf("nn: Bind with %d/%d values, want %d", len(w), len(g), n.size))
	}
	off := 0
	for _, l := range n.layers {
		p := l.NumParams()
		l.Bind(w[off:off+p], g[off:off+p])
		off += p
	}
	n.boundW = w
}

// Init returns a freshly initialised parameter vector.
func (n *Network) Init(r *tensor.RNG) []float32 {
	w := make([]float32, n.size)
	off := 0
	for _, l := range n.layers {
		p := l.NumParams()
		l.InitParams(r, w[off:off+p])
		off += p
	}
	return w
}

// Forward runs the stack and returns the logits tensor.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if n.boundW == nil {
		panic("nn: Forward before Bind")
	}
	h := x
	for _, l := range n.layers {
		h = l.Forward(h, train)
	}
	return h
}

// LossAndGrad runs forward in training mode, computes the loss and runs the
// full backward pass, accumulating parameter gradients into the bound
// gradient vector (callers zero it between iterations). It returns the mean
// batch loss.
func (n *Network) LossAndGrad(x *tensor.Tensor, labels []int) float64 {
	logits := n.Forward(x, true)
	loss, dy := n.loss.Loss(logits, labels)
	var d *tensor.Tensor = dy
	for i := len(n.layers) - 1; i >= 0; i-- {
		d = n.layers[i].Backward(d)
	}
	return loss
}

// Predict runs forward in evaluation mode and classifies the batch: preds[i]
// receives sample i's arg-max class and conf[i] (when non-nil) the winning
// softmax probability. Unlike Evaluate it needs no labels and touches no
// gradient state, so it runs against a forward-only inference arena
// (AttachInferenceArena) — the serving engine's hot path — and is
// allocation-free in steady state. preds must hold Batch entries; conf, if
// given, likewise.
func (n *Network) Predict(x *tensor.Tensor, preds []int, conf []float32) {
	if len(preds) < n.Batch {
		panic(fmt.Sprintf("nn: Predict with %d prediction slots, want %d", len(preds), n.Batch))
	}
	if conf != nil && len(conf) < n.Batch {
		panic(fmt.Sprintf("nn: Predict with %d confidence slots, want %d", len(conf), n.Batch))
	}
	logits := n.Forward(x, false)
	probs := n.loss.Probs(logits).Data()
	c := n.Classes
	for i := 0; i < n.Batch; i++ {
		row := probs[i*c : (i+1)*c]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		preds[i] = bi
		if conf != nil {
			conf[i] = best
		}
	}
}

// Evaluate runs forward in evaluation mode and returns the number of
// correctly classified samples in the batch.
func (n *Network) Evaluate(x *tensor.Tensor, labels []int) int {
	logits := n.Forward(x, false)
	_, _ = n.loss.Loss(logits, labels)
	if n.preds == nil {
		n.preds = make([]int, n.Batch) // once per network, not per batch
	}
	preds := n.loss.Predictions(n.preds)
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return correct
}
