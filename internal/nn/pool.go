package nn

import "crossbow/internal/tensor"

// MaxPool is a 2-D max pooling layer over NCHW inputs with square window and
// stride equal to the window size (the configuration the benchmark models
// use).
type MaxPool struct {
	stateless
	K             int
	batch         int
	inC, inH, inW int
	outH, outW    int

	argmax []int32 // flat input index of each output's max (planned as float32 storage)
	y      *tensor.Tensor
	dx     *tensor.Tensor

	fwdLoop func(lo, hi int)
	bwdLoop func(lo, hi int)
	xd, dyd []float32

	pbArg, pbY, pbDx *plannedBuf
}

// NewMaxPool constructs a max-pool layer with window and stride k.
func NewMaxPool(batch int, inShape []int, k int) *MaxPool {
	c, h, w := inShape[0], inShape[1], inShape[2]
	oh, ow := h/k, w/k
	p := &MaxPool{
		K: k, batch: batch, inC: c, inH: h, inW: w, outH: oh, outW: ow,
		y:  tensor.NewShell(batch, c, oh, ow),
		dx: tensor.NewShell(batch, c, h, w),
	}
	p.fwdLoop = p.forwardChunk
	p.bwdLoop = p.backwardChunk
	return p
}

func (p *MaxPool) ensure() {
	if p.argmax != nil {
		return
	}
	p.argmax = make([]int32, p.batch*p.inC*p.outH*p.outW)
	p.y.SetData(make([]float32, tensor.Volume(p.y.Shape())))
	p.dx.SetData(make([]float32, tensor.Volume(p.dx.Shape())))
}

func (p *MaxPool) planFwd(pl *taskPlanner, in *plannedBuf) *plannedBuf {
	// argmax is written interleaved with y, so the closing touch keeps it
	// live across the step even in the forward-only plan (memory.go's
	// sub-op rule — siblings of one kernel step must not share slots).
	p.pbArg = pl.int32s("maxpool.argmax", &p.argmax, p.batch*p.inC*p.outH*p.outW, bufActivation)
	p.pbY = pl.shell("maxpool.y", p.y, bufActivation)
	pl.touch(in, p.pbArg)
	return p.pbY
}

func (p *MaxPool) planBwd(pl *taskPlanner, dout *plannedBuf) *plannedBuf {
	p.pbDx = pl.shell("maxpool.dx", p.dx, bufGradient)
	pl.touch(dout, p.pbArg)
	return p.pbDx
}

func (p *MaxPool) Name() string    { return "maxpool" }
func (p *MaxPool) OutShape() []int { return []int{p.inC, p.outH, p.outW} }

func (p *MaxPool) forwardChunk(lo, hi int) {
	xd, yd := p.xd, p.y.Data()
	planeOut := p.outH * p.outW
	for n := lo; n < hi; n++ {
		oi := n * p.inC * planeOut
		for c := 0; c < p.inC; c++ {
			base := (n*p.inC + c) * p.inH * p.inW
			for oh := 0; oh < p.outH; oh++ {
				for ow := 0; ow < p.outW; ow++ {
					best := float32(0)
					bi := -1
					for kh := 0; kh < p.K; kh++ {
						row := base + (oh*p.K+kh)*p.inW + ow*p.K
						for kw := 0; kw < p.K; kw++ {
							if v := xd[row+kw]; bi < 0 || v > best {
								best, bi = v, row+kw
							}
						}
					}
					yd[oi] = best
					p.argmax[oi] = int32(bi)
					oi++
				}
			}
		}
	}
}

func (p *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkIn("maxpool", x, p.batch, []int{p.inC, p.inH, p.inW})
	p.ensure()
	p.xd = x.Data()
	planeOut := p.outH * p.outW
	// Samples write disjoint output ranges, so batch-parallel execution is
	// bit-deterministic at any worker count.
	tensor.ParallelFor(p.batch, 1+(1<<13)/max(1, p.inC*planeOut), p.fwdLoop)
	return p.y
}

func (p *MaxPool) backwardChunk(lo, hi int) {
	dyd, dxd := p.dyd, p.dx.Data()
	planeOut := p.outH * p.outW
	inVol := p.inC * p.inH * p.inW
	for n := lo; n < hi; n++ {
		dst := dxd[n*inVol : (n+1)*inVol]
		for i := range dst {
			dst[i] = 0
		}
		o0 := n * p.inC * planeOut
		for i := o0; i < o0+p.inC*planeOut; i++ {
			dxd[p.argmax[i]] += dyd[i]
		}
	}
}

func (p *MaxPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	p.dyd = dy.Data()
	inVol := p.inC * p.inH * p.inW
	// Pooling windows are disjoint (stride == window), so each sample's
	// argmax entries scatter into its own dx block only.
	tensor.ParallelFor(p.batch, 1+(1<<13)/max(1, inVol), p.bwdLoop)
	return p.dx
}

// GlobalAvgPool averages each channel's spatial plane, producing [B, C].
// ResNet uses it before the classifier.
type GlobalAvgPool struct {
	stateless
	batch, c, h, w int
	y              *tensor.Tensor
	dx             *tensor.Tensor

	fwdLoop func(lo, hi int)
	bwdLoop func(lo, hi int)
	xd, dyd []float32

	pbY, pbDx *plannedBuf
}

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool(batch int, inShape []int) *GlobalAvgPool {
	c, h, w := inShape[0], inShape[1], inShape[2]
	p := &GlobalAvgPool{
		batch: batch, c: c, h: h, w: w,
		y:  tensor.NewShell(batch, c),
		dx: tensor.NewShell(batch, c, h, w),
	}
	p.fwdLoop = p.forwardChunk
	p.bwdLoop = p.backwardChunk
	return p
}

func (p *GlobalAvgPool) ensure() {
	if p.y.HasData() {
		return
	}
	p.y.SetData(make([]float32, tensor.Volume(p.y.Shape())))
	p.dx.SetData(make([]float32, tensor.Volume(p.dx.Shape())))
}

func (p *GlobalAvgPool) planFwd(pl *taskPlanner, in *plannedBuf) *plannedBuf {
	p.pbY = pl.shell("gavgpool.y", p.y, bufActivation)
	pl.touch(in)
	return p.pbY
}

func (p *GlobalAvgPool) planBwd(pl *taskPlanner, dout *plannedBuf) *plannedBuf {
	p.pbDx = pl.shell("gavgpool.dx", p.dx, bufGradient)
	pl.touch(dout)
	return p.pbDx
}

func (p *GlobalAvgPool) Name() string    { return "gavgpool" }
func (p *GlobalAvgPool) OutShape() []int { return []int{p.c} }

func (p *GlobalAvgPool) forwardChunk(lo, hi int) {
	xd, yd := p.xd, p.y.Data()
	plane := p.h * p.w
	inv := 1 / float32(plane)
	for i := lo; i < hi; i++ {
		var s float32
		for _, v := range xd[i*plane : (i+1)*plane] {
			s += v
		}
		yd[i] = s * inv
	}
}

func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkIn("gavgpool", x, p.batch, []int{p.c, p.h, p.w})
	p.ensure()
	p.xd = x.Data()
	plane := p.h * p.w
	tensor.ParallelFor(p.batch*p.c, 1+(1<<13)/max(1, plane), p.fwdLoop)
	return p.y
}

func (p *GlobalAvgPool) backwardChunk(lo, hi int) {
	dyd, dxd := p.dyd, p.dx.Data()
	plane := p.h * p.w
	inv := 1 / float32(plane)
	for i := lo; i < hi; i++ {
		g := dyd[i] * inv
		row := dxd[i*plane : (i+1)*plane]
		for j := range row {
			row[j] = g
		}
	}
}

func (p *GlobalAvgPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	p.dyd = dy.Data()
	plane := p.h * p.w
	tensor.ParallelFor(p.batch*p.c, 1+(1<<13)/max(1, plane), p.bwdLoop)
	return p.dx
}
