package nn

import "crossbow/internal/tensor"

// MaxPool is a 2-D max pooling layer over NCHW inputs with square window and
// stride equal to the window size (the configuration the benchmark models
// use).
type MaxPool struct {
	stateless
	K             int
	batch         int
	inC, inH, inW int
	outH, outW    int

	argmax []int32 // flat input index of each output's max
	y      *tensor.Tensor
	dx     *tensor.Tensor
}

// NewMaxPool constructs a max-pool layer with window and stride k.
func NewMaxPool(batch int, inShape []int, k int) *MaxPool {
	c, h, w := inShape[0], inShape[1], inShape[2]
	oh, ow := h/k, w/k
	return &MaxPool{
		K: k, batch: batch, inC: c, inH: h, inW: w, outH: oh, outW: ow,
		argmax: make([]int32, batch*c*oh*ow),
		y:      tensor.New(batch, c, oh, ow),
		dx:     tensor.New(batch, c, h, w),
	}
}

func (p *MaxPool) Name() string    { return "maxpool" }
func (p *MaxPool) OutShape() []int { return []int{p.inC, p.outH, p.outW} }

func (p *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkIn("maxpool", x, p.batch, []int{p.inC, p.inH, p.inW})
	xd, yd := x.Data(), p.y.Data()
	planeOut := p.outH * p.outW
	// Samples write disjoint output ranges, so batch-parallel execution is
	// bit-deterministic at any worker count.
	tensor.ParallelFor(p.batch, 1+(1<<13)/max(1, p.inC*planeOut), func(lo, hi int) {
		for n := lo; n < hi; n++ {
			oi := n * p.inC * planeOut
			for c := 0; c < p.inC; c++ {
				base := (n*p.inC + c) * p.inH * p.inW
				for oh := 0; oh < p.outH; oh++ {
					for ow := 0; ow < p.outW; ow++ {
						best := float32(0)
						bi := -1
						for kh := 0; kh < p.K; kh++ {
							row := base + (oh*p.K+kh)*p.inW + ow*p.K
							for kw := 0; kw < p.K; kw++ {
								if v := xd[row+kw]; bi < 0 || v > best {
									best, bi = v, row+kw
								}
							}
						}
						yd[oi] = best
						p.argmax[oi] = int32(bi)
						oi++
					}
				}
			}
		}
	})
	return p.y
}

func (p *MaxPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dyd, dxd := dy.Data(), p.dx.Data()
	planeOut := p.outH * p.outW
	inVol := p.inC * p.inH * p.inW
	// Pooling windows are disjoint (stride == window), so each sample's
	// argmax entries scatter into its own dx block only.
	tensor.ParallelFor(p.batch, 1+(1<<13)/max(1, inVol), func(lo, hi int) {
		for n := lo; n < hi; n++ {
			dst := dxd[n*inVol : (n+1)*inVol]
			for i := range dst {
				dst[i] = 0
			}
			o0 := n * p.inC * planeOut
			for i := o0; i < o0+p.inC*planeOut; i++ {
				dxd[p.argmax[i]] += dyd[i]
			}
		}
	})
	return p.dx
}

// GlobalAvgPool averages each channel's spatial plane, producing [B, C].
// ResNet uses it before the classifier.
type GlobalAvgPool struct {
	stateless
	batch, c, h, w int
	y              *tensor.Tensor
	dx             *tensor.Tensor
}

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool(batch int, inShape []int) *GlobalAvgPool {
	c, h, w := inShape[0], inShape[1], inShape[2]
	return &GlobalAvgPool{
		batch: batch, c: c, h: h, w: w,
		y:  tensor.New(batch, c),
		dx: tensor.New(batch, c, h, w),
	}
}

func (p *GlobalAvgPool) Name() string    { return "gavgpool" }
func (p *GlobalAvgPool) OutShape() []int { return []int{p.c} }

func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkIn("gavgpool", x, p.batch, []int{p.c, p.h, p.w})
	xd, yd := x.Data(), p.y.Data()
	plane := p.h * p.w
	inv := 1 / float32(plane)
	tensor.ParallelFor(p.batch*p.c, 1+(1<<13)/max(1, plane), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float32
			for _, v := range xd[i*plane : (i+1)*plane] {
				s += v
			}
			yd[i] = s * inv
		}
	})
	return p.y
}

func (p *GlobalAvgPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dyd, dxd := dy.Data(), p.dx.Data()
	plane := p.h * p.w
	inv := 1 / float32(plane)
	tensor.ParallelFor(p.batch*p.c, 1+(1<<13)/max(1, plane), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g := dyd[i] * inv
			row := dxd[i*plane : (i+1)*plane]
			for j := range row {
				row[j] = g
			}
		}
	})
	return p.dx
}
