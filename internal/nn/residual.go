package nn

import (
	"fmt"

	"crossbow/internal/tensor"
)

// Residual implements a residual block: y = ReLU(F(x) + S(x)), where F is
// the main branch (a sequence of layers) and S is either the identity or a
// projection shortcut (1×1 convolution, optionally batch-normalised) when
// the branch changes shape. ResNet-32 uses two-conv basic blocks; ResNet-50
// uses three-conv bottleneck blocks; both are expressed with this type.
type Residual struct {
	branch   []Layer
	shortcut []Layer // empty => identity
	batch    int
	outShape []int

	sum  *tensor.Tensor
	y    *tensor.Tensor
	dsum *tensor.Tensor
	dx   *tensor.Tensor
}

// NewResidual builds a residual block. branch must be non-empty; shortcut
// may be nil for an identity skip, in which case the branch's output shape
// must equal inShape.
func NewResidual(batch int, inShape []int, branch, shortcut []Layer) *Residual {
	if len(branch) == 0 {
		panic("nn: residual block needs a non-empty branch")
	}
	out := branch[len(branch)-1].OutShape()
	if len(shortcut) == 0 && !shapeEq(out, inShape) {
		panic(fmt.Sprintf("nn: identity residual with shape change %v -> %v", inShape, out))
	}
	if len(shortcut) > 0 {
		sOut := shortcut[len(shortcut)-1].OutShape()
		if !shapeEq(sOut, out) {
			panic(fmt.Sprintf("nn: residual branch %v vs shortcut %v shape mismatch", out, sOut))
		}
	}
	full := append([]int{batch}, out...)
	return &Residual{
		branch: branch, shortcut: shortcut, batch: batch,
		outShape: append([]int(nil), out...),
		sum:      tensor.New(full...),
		y:        tensor.New(full...),
		dsum:     tensor.New(full...),
		dx:       tensor.New(append([]int{batch}, inShape...)...),
	}
}

func (r *Residual) Name() string    { return "residual" }
func (r *Residual) OutShape() []int { return r.outShape }

func (r *Residual) NumParams() int {
	n := 0
	for _, l := range r.branch {
		n += l.NumParams()
	}
	for _, l := range r.shortcut {
		n += l.NumParams()
	}
	return n
}

func (r *Residual) Bind(w, g []float32) {
	off := 0
	for _, l := range r.branch {
		n := l.NumParams()
		l.Bind(w[off:off+n], g[off:off+n])
		off += n
	}
	for _, l := range r.shortcut {
		n := l.NumParams()
		l.Bind(w[off:off+n], g[off:off+n])
		off += n
	}
}

func (r *Residual) InitParams(rng *tensor.RNG, w []float32) {
	off := 0
	for _, l := range r.branch {
		n := l.NumParams()
		l.InitParams(rng, w[off:off+n])
		off += n
	}
	for _, l := range r.shortcut {
		n := l.NumParams()
		l.InitParams(rng, w[off:off+n])
		off += n
	}
}

func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f := x
	for _, l := range r.branch {
		f = l.Forward(f, train)
	}
	s := x
	for _, l := range r.shortcut {
		s = l.Forward(s, train)
	}
	sd, fd, sumd, yd := s.Data(), f.Data(), r.sum.Data(), r.y.Data()
	tensor.ParallelFor(len(sumd), 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := fd[i] + sd[i]
			sumd[i] = v
			if v > 0 {
				yd[i] = v
			} else {
				yd[i] = 0
			}
		}
	})
	return r.y
}

func (r *Residual) Backward(dy *tensor.Tensor) *tensor.Tensor {
	// y > 0 ⇔ the pre-activation sum was positive: the cached output is the
	// gradient mask.
	dyd, dsumd, yd := dy.Data(), r.dsum.Data(), r.y.Data()
	tensor.ParallelFor(len(dsumd), 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if yd[i] > 0 {
				dsumd[i] = dyd[i]
			} else {
				dsumd[i] = 0
			}
		}
	})
	// Branch path.
	db := r.dsum
	for i := len(r.branch) - 1; i >= 0; i-- {
		db = r.branch[i].Backward(db)
	}
	// Shortcut path.
	ds := r.dsum
	for i := len(r.shortcut) - 1; i >= 0; i-- {
		ds = r.shortcut[i].Backward(ds)
	}
	dbd, dsd, dxd := db.Data(), ds.Data(), r.dx.Data()
	if len(r.shortcut) == 0 {
		// Identity skip: ds is dsum itself, shaped like the output, which
		// equals the input shape in this case.
		dsd = r.dsum.Data()
	}
	tensor.ParallelFor(len(dxd), 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dxd[i] = dbd[i] + dsd[i]
		}
	})
	return r.dx
}

// Operators returns the layers inside the block, branch first, for operator
// inventories.
func (r *Residual) Operators() []Layer {
	ops := append([]Layer(nil), r.branch...)
	return append(ops, r.shortcut...)
}
