package nn

import (
	"fmt"

	"crossbow/internal/tensor"
)

// Residual implements a residual block: y = ReLU(F(x) + S(x)), where F is
// the main branch (a sequence of layers) and S is either the identity or a
// projection shortcut (1×1 convolution, optionally batch-normalised) when
// the branch changes shape. ResNet-32 uses two-conv basic blocks; ResNet-50
// uses three-conv bottleneck blocks; both are expressed with this type.
type Residual struct {
	branch   []Layer
	shortcut []Layer // empty => identity
	batch    int
	outShape []int

	y    *tensor.Tensor
	dsum *tensor.Tensor
	dx   *tensor.Tensor

	fwdLoop  func(lo, hi int)
	maskLoop func(lo, hi int)
	combLoop func(lo, hi int)
	fd, sd   []float32 // branch/shortcut outputs for the join loop
	dyd      []float32 // incoming gradient for the mask loop
	dbd, dsd []float32 // branch/shortcut input-gradients for the combine loop

	pbIn, pbY, pbDsum, pbDx *plannedBuf
}

// NewResidual builds a residual block. branch must be non-empty; shortcut
// may be nil for an identity skip, in which case the branch's output shape
// must equal inShape.
func NewResidual(batch int, inShape []int, branch, shortcut []Layer) *Residual {
	if len(branch) == 0 {
		panic("nn: residual block needs a non-empty branch")
	}
	out := branch[len(branch)-1].OutShape()
	if len(shortcut) == 0 && !shapeEq(out, inShape) {
		panic(fmt.Sprintf("nn: identity residual with shape change %v -> %v", inShape, out))
	}
	if len(shortcut) > 0 {
		sOut := shortcut[len(shortcut)-1].OutShape()
		if !shapeEq(sOut, out) {
			panic(fmt.Sprintf("nn: residual branch %v vs shortcut %v shape mismatch", out, sOut))
		}
	}
	full := append([]int{batch}, out...)
	r := &Residual{
		branch: branch, shortcut: shortcut, batch: batch,
		outShape: append([]int(nil), out...),
		y:        tensor.NewShell(full...),
		dsum:     tensor.NewShell(full...),
		dx:       tensor.NewShell(append([]int{batch}, inShape...)...),
	}
	r.fwdLoop = r.joinChunk
	r.maskLoop = r.maskChunk
	r.combLoop = r.combineChunk
	return r
}

func (r *Residual) ensure() {
	if r.y.HasData() {
		return
	}
	n := tensor.Volume(r.y.Shape())
	r.y.SetData(make([]float32, n))
	r.dsum.SetData(make([]float32, n))
	r.dx.SetData(make([]float32, tensor.Volume(r.dx.Shape())))
}

// planFwd walks the branch and shortcut forward passes, then declares the
// join's masked output — the residual-join buffer the §4.5 graph must see
// explicitly, because both inner outputs stay live until the join.
func (r *Residual) planFwd(p *taskPlanner, in *plannedBuf) *plannedBuf {
	r.pbIn = in
	f := in
	for _, l := range r.branch {
		f = planLayerFwd(p, l, f)
	}
	s := in
	for _, l := range r.shortcut {
		s = planLayerFwd(p, l, s)
	}
	// Join reads both paths' outputs (the identity skip reads the block
	// input directly) and writes y. Outputs declared before the input
	// touches (memory.go's sub-op rule).
	r.pbY = p.shell("residual.y", r.y, bufActivation)
	p.touch(f, s)
	if len(r.shortcut) == 0 {
		p.touch(in)
	}
	return r.pbY
}

func (r *Residual) planBwd(p *taskPlanner, dout *plannedBuf) *plannedBuf {
	// Mask: reads dY and the cached output, writes dsum.
	r.pbDsum = p.shell("residual.dsum", r.dsum, bufGradient)
	p.touch(dout, r.pbY)
	// Branch backward chain, seeded by dsum, then the shortcut chain —
	// dsum must stay live across both, which the walk records naturally.
	db := r.pbDsum
	for i := len(r.branch) - 1; i >= 0; i-- {
		db = planLayerBwd(p, r.branch[i], db)
	}
	ds := r.pbDsum
	for i := len(r.shortcut) - 1; i >= 0; i-- {
		ds = planLayerBwd(p, r.shortcut[i], ds)
	}
	// Combine reads both input-gradients (the identity case reads dsum)
	// while writing dx.
	r.pbDx = p.shell("residual.dx", r.dx, bufGradient)
	p.touch(db, ds)
	if len(r.shortcut) == 0 {
		p.touch(r.pbDsum)
	}
	return r.pbDx
}

// planLayerFwd/planLayerBwd plan one inner layer, treating non-planning
// layers like the network planner does (input pinned live, output opaque).
func planLayerFwd(p *taskPlanner, l Layer, in *plannedBuf) *plannedBuf {
	if al, ok := l.(arenaLayer); ok {
		return al.planFwd(p, in)
	}
	if in != nil {
		in.last = 1 << 30
	}
	return nil
}

func planLayerBwd(p *taskPlanner, l Layer, dout *plannedBuf) *plannedBuf {
	if al, ok := l.(arenaLayer); ok {
		return al.planBwd(p, dout)
	}
	return nil
}

func (r *Residual) Name() string    { return "residual" }
func (r *Residual) OutShape() []int { return r.outShape }

func (r *Residual) NumParams() int {
	n := 0
	for _, l := range r.branch {
		n += l.NumParams()
	}
	for _, l := range r.shortcut {
		n += l.NumParams()
	}
	return n
}

func (r *Residual) Bind(w, g []float32) {
	off := 0
	for _, l := range r.branch {
		n := l.NumParams()
		l.Bind(w[off:off+n], g[off:off+n])
		off += n
	}
	for _, l := range r.shortcut {
		n := l.NumParams()
		l.Bind(w[off:off+n], g[off:off+n])
		off += n
	}
}

func (r *Residual) InitParams(rng *tensor.RNG, w []float32) {
	off := 0
	for _, l := range r.branch {
		n := l.NumParams()
		l.InitParams(rng, w[off:off+n])
		off += n
	}
	for _, l := range r.shortcut {
		n := l.NumParams()
		l.InitParams(rng, w[off:off+n])
		off += n
	}
}

// joinChunk fuses the residual add with the ReLU. Only the masked output is
// kept: y > 0 ⇔ the pre-activation sum was positive, so backward needs no
// separate sum buffer.
func (r *Residual) joinChunk(lo, hi int) {
	tensor.AddRelu(r.y.Data()[lo:hi], r.fd[lo:hi], r.sd[lo:hi])
}

func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.ensure()
	f := x
	for _, l := range r.branch {
		f = l.Forward(f, train)
	}
	s := x
	for _, l := range r.shortcut {
		s = l.Forward(s, train)
	}
	r.fd, r.sd = f.Data(), s.Data()
	tensor.ParallelFor(r.y.Len(), 8192, r.fwdLoop)
	return r.y
}

func (r *Residual) maskChunk(lo, hi int) {
	// y > 0 ⇔ the pre-activation sum was positive: the cached output is the
	// gradient mask.
	tensor.ReluBwd(r.dsum.Data()[lo:hi], r.dyd[lo:hi], r.y.Data()[lo:hi])
}

func (r *Residual) combineChunk(lo, hi int) {
	dbd, dsd, dxd := r.dbd, r.dsd, r.dx.Data()
	for i := lo; i < hi; i++ {
		dxd[i] = dbd[i] + dsd[i]
	}
}

func (r *Residual) Backward(dy *tensor.Tensor) *tensor.Tensor {
	r.dyd = dy.Data()
	tensor.ParallelFor(r.dsum.Len(), 8192, r.maskLoop)
	// Branch path.
	db := r.dsum
	for i := len(r.branch) - 1; i >= 0; i-- {
		db = r.branch[i].Backward(db)
	}
	// Shortcut path.
	ds := r.dsum
	for i := len(r.shortcut) - 1; i >= 0; i-- {
		ds = r.shortcut[i].Backward(ds)
	}
	r.dbd, r.dsd = db.Data(), ds.Data()
	if len(r.shortcut) == 0 {
		// Identity skip: ds is dsum itself, shaped like the output, which
		// equals the input shape in this case.
		r.dsd = r.dsum.Data()
	}
	tensor.ParallelFor(r.dx.Len(), 8192, r.combLoop)
	return r.dx
}

// Operators returns the layers inside the block, branch first, for operator
// inventories.
func (r *Residual) Operators() []Layer {
	ops := append([]Layer(nil), r.branch...)
	return append(ops, r.shortcut...)
}
