package nn

import "fmt"

// This file defines the *full-scale* architectures of the four benchmark
// models as pure metadata: per-operator parameter counts, forward FLOPs and
// activation sizes. The hardware simulator (internal/gpusim) costs kernels
// from these specs, and the Table 1 reproduction prints their inventory.
// The numbers are per sample; callers scale by batch size.

// OpSpec describes one dataflow operator of a full-scale model.
type OpSpec struct {
	Kind     string // conv, bn, relu, pool, gavgpool, dense, add, dropout, loss
	Params   int64  // learnable + stored parameters
	FLOPs    int64  // forward floating-point operations per sample
	OutElems int64  // output activation elements per sample
}

// ModelSpec is the full-scale description of a benchmark model and its
// dataset (paper Table 1).
type ModelSpec struct {
	Model        ModelID
	Dataset      string
	Input        [3]int // C, H, W
	Classes      int
	TrainSamples int
	TestSamples  int
	Ops          []OpSpec
}

// NumOps returns the operator count (Table 1 "# Ops"). The paper counts
// the dataflow operators of a learning task, which spans the forward and
// the backward pass, so each operator contributes twice.
func (s *ModelSpec) NumOps() int { return 2 * len(s.Ops) }

// ParamCount returns the total parameter count.
func (s *ModelSpec) ParamCount() int64 {
	var n int64
	for _, op := range s.Ops {
		n += op.Params
	}
	return n
}

// ModelMB returns the model size in MB (float32 parameters), Table 1
// "Model size (MB)".
func (s *ModelSpec) ModelMB() float64 { return float64(s.ParamCount()) * 4 / 1e6 }

// InputMB returns the training-set size in MB (float32 pixels), Table 1
// "Input size (MB)".
func (s *ModelSpec) InputMB() float64 {
	perSample := int64(s.Input[0]) * int64(s.Input[1]) * int64(s.Input[2]) * 4
	return float64(perSample*int64(s.TrainSamples)) / 1e6
}

// SampleBytes returns the bytes of one input sample.
func (s *ModelSpec) SampleBytes() int64 {
	return int64(s.Input[0]) * int64(s.Input[1]) * int64(s.Input[2]) * 4
}

// ForwardFLOPs returns total forward FLOPs per sample.
func (s *ModelSpec) ForwardFLOPs() int64 {
	var n int64
	for _, op := range s.Ops {
		n += op.FLOPs
	}
	return n
}

// TrainFLOPs returns total training FLOPs per sample. The backward pass
// costs roughly twice the forward pass (one GEMM for input gradients, one
// for weight gradients), the standard 3× rule of thumb overall.
func (s *ModelSpec) TrainFLOPs() int64 { return 3 * s.ForwardFLOPs() }

// ActivationBytes returns the per-sample bytes of all operator outputs —
// the quantity the memory planner (internal/memplan) reduces by buffer
// reuse (paper §4.5: ResNet-50 needs 7.5 GB of operator outputs at b=32
// against a 97.5 MB model).
func (s *ModelSpec) ActivationBytes() int64 {
	var n int64
	for _, op := range s.Ops {
		n += op.OutElems * 4
	}
	return n
}

// specBuilder accumulates operators while tracking the activation shape.
type specBuilder struct {
	c, h, w int
	ops     []OpSpec
}

func (b *specBuilder) out() int64 { return int64(b.c) * int64(b.h) * int64(b.w) }

func (b *specBuilder) conv(outC, k, stride, pad int) *specBuilder {
	oh := (b.h+2*pad-k)/stride + 1
	ow := (b.w+2*pad-k)/stride + 1
	params := int64(outC)*int64(b.c)*int64(k)*int64(k) + int64(outC)
	flops := 2 * int64(k) * int64(k) * int64(b.c) * int64(outC) * int64(oh) * int64(ow)
	b.c, b.h, b.w = outC, oh, ow
	b.ops = append(b.ops, OpSpec{Kind: "conv", Params: params, FLOPs: flops, OutElems: b.out()})
	return b
}

func (b *specBuilder) bn() *specBuilder {
	b.ops = append(b.ops, OpSpec{Kind: "bn", Params: 4 * int64(b.c), FLOPs: 4 * b.out(), OutElems: b.out()})
	return b
}

func (b *specBuilder) relu() *specBuilder {
	b.ops = append(b.ops, OpSpec{Kind: "relu", FLOPs: b.out(), OutElems: b.out()})
	return b
}

func (b *specBuilder) pool(k int) *specBuilder {
	b.h /= k
	b.w /= k
	b.ops = append(b.ops, OpSpec{Kind: "pool", FLOPs: int64(k*k) * b.out(), OutElems: b.out()})
	return b
}

func (b *specBuilder) gavg() *specBuilder {
	flops := b.out()
	b.h, b.w = 1, 1
	b.ops = append(b.ops, OpSpec{Kind: "gavgpool", FLOPs: flops, OutElems: int64(b.c)})
	return b
}

func (b *specBuilder) dense(out int) *specBuilder {
	in := b.out()
	params := in*int64(out) + int64(out)
	b.c, b.h, b.w = out, 1, 1
	b.ops = append(b.ops, OpSpec{Kind: "dense", Params: params, FLOPs: 2 * in * int64(out), OutElems: int64(out)})
	return b
}

func (b *specBuilder) dropout() *specBuilder {
	b.ops = append(b.ops, OpSpec{Kind: "dropout", FLOPs: b.out(), OutElems: b.out()})
	return b
}

func (b *specBuilder) add() *specBuilder {
	b.ops = append(b.ops, OpSpec{Kind: "add", FLOPs: b.out(), OutElems: b.out()})
	return b
}

func (b *specBuilder) loss(classes int) *specBuilder {
	b.ops = append(b.ops, OpSpec{Kind: "loss", FLOPs: 3 * int64(classes), OutElems: int64(classes)})
	return b
}

// basicBlock adds a full-scale ResNet basic block's operators.
func (b *specBuilder) basicBlock(outC, stride int) *specBuilder {
	inC := b.c
	inH, inW := b.h, b.w
	b.conv(outC, 3, stride, 1).bn().relu().conv(outC, 3, 1, 1).bn()
	if stride != 1 || inC != outC {
		// Projection shortcut costed on the block input shape.
		sb := specBuilder{c: inC, h: inH, w: inW}
		sb.conv(outC, 1, stride, 0).bn()
		b.ops = append(b.ops, sb.ops...)
	}
	return b.add().relu()
}

// bottleneck adds a full-scale ResNet bottleneck block's operators.
func (b *specBuilder) bottleneck(midC, outC, stride int) *specBuilder {
	inC := b.c
	inH, inW := b.h, b.w
	b.conv(midC, 1, 1, 0).bn().relu().
		conv(midC, 3, stride, 1).bn().relu().
		conv(outC, 1, 1, 0).bn()
	if stride != 1 || inC != outC {
		sb := specBuilder{c: inC, h: inH, w: inW}
		sb.conv(outC, 1, stride, 0).bn()
		b.ops = append(b.ops, sb.ops...)
	}
	return b.add().relu()
}

// FullSpec returns the full-scale specification of a benchmark model.
func FullSpec(id ModelID) *ModelSpec {
	switch id {
	case LeNet:
		b := &specBuilder{c: 1, h: 28, w: 28}
		b.conv(32, 5, 1, 2).relu().pool(2).
			conv(64, 5, 1, 2).relu().pool(2).
			dense(300).relu().dense(10).loss(10)
		return &ModelSpec{
			Model: LeNet, Dataset: "MNIST", Input: [3]int{1, 28, 28}, Classes: 10,
			TrainSamples: 60000, TestSamples: 10000, Ops: b.ops,
		}
	case ResNet32:
		b := &specBuilder{c: 3, h: 32, w: 32}
		b.conv(16, 3, 1, 1).bn().relu()
		for i := 0; i < 5; i++ {
			b.basicBlock(16, 1)
		}
		b.basicBlock(32, 2)
		for i := 0; i < 4; i++ {
			b.basicBlock(32, 1)
		}
		b.basicBlock(64, 2)
		for i := 0; i < 4; i++ {
			b.basicBlock(64, 1)
		}
		b.gavg().dense(10).loss(10)
		return &ModelSpec{
			Model: ResNet32, Dataset: "CIFAR-10", Input: [3]int{3, 32, 32}, Classes: 10,
			TrainSamples: 50000, TestSamples: 10000, Ops: b.ops,
		}
	case VGG16:
		b := &specBuilder{c: 3, h: 32, w: 32}
		widths := [][]int{{64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512}, {512, 512, 512}}
		for _, stage := range widths {
			for _, w := range stage {
				b.conv(w, 3, 1, 1).bn().relu()
			}
			b.pool(2)
		}
		b.dense(512).relu().dropout().dense(100).loss(100)
		return &ModelSpec{
			Model: VGG16, Dataset: "CIFAR-100", Input: [3]int{3, 32, 32}, Classes: 100,
			TrainSamples: 50000, TestSamples: 10000, Ops: b.ops,
		}
	case ResNet50:
		b := &specBuilder{c: 3, h: 224, w: 224}
		b.conv(64, 7, 2, 3).bn().relu().pool(2)
		stages := []struct {
			mid, out, blocks, stride int
		}{
			{64, 256, 3, 1},
			{128, 512, 4, 2},
			{256, 1024, 6, 2},
			{512, 2048, 3, 2},
		}
		for _, st := range stages {
			b.bottleneck(st.mid, st.out, st.stride)
			for i := 1; i < st.blocks; i++ {
				b.bottleneck(st.mid, st.out, 1)
			}
		}
		b.gavg().dense(1000).loss(1000)
		return &ModelSpec{
			Model: ResNet50, Dataset: "ILSVRC 2012", Input: [3]int{3, 224, 224}, Classes: 1000,
			TrainSamples: 1281167, TestSamples: 50000, Ops: b.ops,
		}
	}
	panic(fmt.Sprintf("nn: unknown model %q", id))
}
