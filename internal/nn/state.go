package nn

// Layer state vs learnable weights: batch-norm running statistics live in
// the model's contiguous parameter vector (see BatchNorm), but they are not
// driven by gradients — the layer writes them during training-mode forward
// passes. Optimisers that overwrite replicas with a separately maintained
// global model (S-SGD, A-SGD) must carry this state across explicitly, or
// the global model evaluates with stale initial statistics.

// stateful is implemented by layers holding non-learnable state inside
// their parameter block; ranges are [start, end) offsets relative to the
// layer's own block.
type stateful interface {
	stateRanges() [][2]int
}

func (b *BatchNorm) stateRanges() [][2]int {
	// [gamma | beta | runMean | runVar] — the trailing half is state.
	return [][2]int{{2 * b.C, 4 * b.C}}
}

func (r *Residual) stateRanges() [][2]int {
	var out [][2]int
	off := 0
	collect := func(layers []Layer) {
		for _, l := range layers {
			if s, ok := l.(stateful); ok {
				for _, rg := range s.stateRanges() {
					out = append(out, [2]int{off + rg[0], off + rg[1]})
				}
			}
			off += l.NumParams()
		}
	}
	collect(r.branch)
	collect(r.shortcut)
	return out
}

// StateRanges returns the [start, end) ranges of the network's parameter
// vector that hold layer state (batch-norm running statistics) rather than
// gradient-trained weights.
func (n *Network) StateRanges() [][2]int {
	var out [][2]int
	off := 0
	for _, l := range n.layers {
		if s, ok := l.(stateful); ok {
			for _, rg := range s.stateRanges() {
				out = append(out, [2]int{off + rg[0], off + rg[1]})
			}
		}
		off += l.NumParams()
	}
	return out
}
