package serve

import (
	"time"
)

// SLO-driven adaptive batching (DESIGN.md §16). The static MaxBatch/MaxDelay
// knobs force a deployment-time guess: too small wastes the amortization
// larger batches buy, too large blows the latency budget — and on this
// runner's profile a fixed batch 32 actually serves FEWER requests per
// second than batch 8 (per-sample service time degrades past the L2-friendly
// tile, and partial batches still pay the full fixed-batch forward pass).
// The controller replaces the guess with a measurement loop: it learns the
// per-class batch service time ŝ(b), derives each class's capacity
// replicas·b/ŝ(b), and picks the SMALLEST feasible class whose capacity
// covers the measured arrival rate with headroom. Small batch at low load
// (minimum latency), bigger batch only when the load demands it, and never a
// class whose own service time cannot meet the SLO. Because the class table
// is rate-independent and scanned smallest-first, the chosen batch size is
// monotone in offered load by construction — and a class past the machine's
// capacity peak (the batch-32 trap) is simply never the first to satisfy
// demand.

// controlInput is one decision window's measurements.
type controlInput struct {
	// Rate is the measured arrival rate over the window in requests/second
	// (offered load: admitted + shed).
	Rate float64
	// P99 is the measured end-to-end request p99 over the window (zero when
	// the window saw no completions).
	P99 time.Duration
	// Replicas is the live replica count the capacity model should use.
	Replicas int
	// QueueDepth is the request queue depth at window end — the overload
	// discriminator: a deep queue means breaches are an admission problem,
	// a shallow one means the service estimate lied.
	QueueDepth int
	// ClassService carries the window's mean batch service time per class
	// (zero where the class ran no batches), indexed like the controller's
	// class table.
	ClassService []time.Duration
}

// controlOutput is the controller's decision: the batch ceiling and
// straggler wait the dispatcher should use next window.
type controlOutput struct {
	MaxBatch int
	MaxDelay time.Duration
}

// svcGrowth is the optimistic extrapolation factor for unvisited classes:
// doubling the batch is assumed to cost ×1.7 in service time (sublinear —
// batching amortizes) until a measurement says otherwise. Optimism matters:
// a pessimistic guess would make every larger class look infeasible and the
// controller could never justify visiting one.
const svcGrowth = 1.7

// svcEWMAAlpha smooths per-class service measurements. One window moves the
// estimate 40% toward the new value: fast enough to track a model hot-swap,
// slow enough that one noisy window cannot flap the class choice.
const svcEWMAAlpha = 0.4

// controller carries the adaptive batching state. It is a pure decision
// kernel — measurements in, (MaxBatch, MaxDelay) out, no clocks, no
// goroutines — so the property tests can drive it with synthetic arrival
// traces and a simulated service model.
type controller struct {
	slo      time.Duration
	classes  []int     // batch size ladder: powers of two up to the ceiling
	svcNs    []float64 // EWMA of measured service time per class (0: unvisited)
	headroom float64   // capacity must exceed rate by this factor
	cur      int       // current class index
}

// batchClasses builds the ladder: 1, 2, 4, ... up to and including maxBatch
// (appending maxBatch itself when it is not a power of two).
func batchClasses(maxBatch int) []int {
	var cs []int
	for b := 1; b < maxBatch; b *= 2 {
		cs = append(cs, b)
	}
	return append(cs, maxBatch)
}

func newController(slo time.Duration, maxBatch int) *controller {
	return &controller{
		slo:      slo,
		classes:  batchClasses(maxBatch),
		svcNs:    make([]float64, len(batchClasses(maxBatch))),
		headroom: 1.2,
	}
}

// estimate returns ŝ(class i) in nanoseconds: the EWMA where measured,
// extrapolated from the nearest measured class by svcGrowth per doubling
// otherwise, and zero when nothing is measured yet.
func (c *controller) estimate(i int) float64 {
	if c.svcNs[i] > 0 {
		return c.svcNs[i]
	}
	// Nearest measured anchor below, then above.
	for d := 1; d < len(c.classes); d++ {
		if j := i - d; j >= 0 && c.svcNs[j] > 0 {
			return c.svcNs[j] * pow(svcGrowth, float64(d))
		}
		if j := i + d; j < len(c.classes) && c.svcNs[j] > 0 {
			return c.svcNs[j] / pow(svcGrowth, float64(d))
		}
	}
	return 0
}

func pow(base float64, n float64) float64 {
	r := 1.0
	for ; n >= 1; n-- {
		r *= base
	}
	return r
}

// delayFor bounds the straggler wait for class i: long enough to fill the
// batch at the current rate, never more than the SLO slack left after two
// service times (one queued batch ahead plus our own), never more than a
// quarter of the SLO, and zero for single-sample batches (nothing to wait
// for).
func (c *controller) delayFor(i int, rate, svcNs float64) time.Duration {
	if i == 0 || c.classes[i] <= 1 {
		return 0
	}
	fill := 0.0
	if rate > 0 {
		fill = float64(c.classes[i]) / rate * float64(time.Second)
	}
	slack := (float64(c.slo) - 2*svcNs) / 2
	quarter := float64(c.slo) / 4
	d := fill
	if d > slack {
		d = slack
	}
	if d > quarter {
		d = quarter
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// step ingests one window's measurements and returns the next window's
// batching policy.
func (c *controller) step(in controlInput) controlOutput {
	// Fold the window's per-class service observations into the EWMAs.
	for i, s := range in.ClassService {
		if i >= len(c.svcNs) || s <= 0 {
			continue
		}
		if c.svcNs[i] == 0 {
			c.svcNs[i] = float64(s)
		} else {
			c.svcNs[i] += svcEWMAAlpha * (float64(s) - c.svcNs[i])
		}
	}

	// Safety override: a breached SLO with a shallow queue means the
	// current class's service estimate is too rosy (the queue-deep case is
	// overload — admission control's problem, and shrinking the batch would
	// only cut capacity further). Inflate the estimate; if the class truly
	// cannot meet the SLO it turns infeasible within a few windows and the
	// selection below steps off it.
	if in.P99 > c.slo && c.svcNs[c.cur] > 0 &&
		in.QueueDepth < in.Replicas*c.classes[c.cur] {
		c.svcNs[c.cur] *= 1.25
	}

	replicas := in.Replicas
	if replicas < 1 {
		replicas = 1
	}
	need := in.Rate * c.headroom

	// Target: the smallest feasible class whose capacity covers demand,
	// falling back to the highest-capacity feasible class under saturation
	// (the excess is load shedding's job), and to the smallest class when
	// nothing is feasible. The selection scans a rate-independent capacity
	// table smallest-first, so the target is monotone in offered load.
	best, bestCap := -1, 0.0
	chosen := -1
	for i := range c.classes {
		s := c.estimate(i)
		if s <= 0 {
			// Nothing measured anywhere yet (cold start): stay put until
			// the first window reports.
			return c.output(in.Rate)
		}
		if 2*s > float64(c.slo) {
			continue // the class alone blows the budget
		}
		capacity := float64(replicas) * float64(c.classes[i]) / s * float64(time.Second)
		if capacity > bestCap {
			best, bestCap = i, capacity
		}
		if chosen < 0 && capacity >= need {
			chosen = i
		}
	}
	target := 0
	switch {
	case chosen >= 0:
		target = chosen
	case best >= 0:
		target = best
	}
	// Move ONE class per window, not straight to the target. Distant
	// classes are known only by extrapolation — optimistic by design — so
	// jumping to one would bet a whole window on a guess (the batch-32 trap
	// wears exactly this disguise: extrapolated capacity keeps growing past
	// the real peak). Climbing measures every rung on the way, replacing
	// the guess with data before the next step commits further.
	if target > c.cur {
		c.cur++
	} else if target < c.cur {
		c.cur--
	}
	return c.output(in.Rate)
}

func (c *controller) output(rate float64) controlOutput {
	return controlOutput{
		MaxBatch: c.classes[c.cur],
		MaxDelay: c.delayFor(c.cur, rate, c.estimate(c.cur)),
	}
}
