package serve

import (
	"sync"
	"testing"
	"time"

	"crossbow/internal/nn"
)

// The controller property tests drive the pure decision kernel with
// synthetic arrival traces over a simulated service model shaped like the
// real machine's profile (BENCH_serving.json): per-sample service improves
// with batch size up to 8, then degrades — capacity peaks at batch 8. The
// simulator closes the loop: each window it derives the batch size the
// dispatcher would actually run under the controller's policy, the service
// time that batch costs, and a queueing-theory p99, and feeds them back.

// simService is the ground-truth batch service time: amortization up to
// batch 8, falloff beyond (the batch-32 trap).
func simService(b int) time.Duration {
	if b <= 8 {
		return time.Duration(210+90*b) * time.Microsecond
	}
	s := float64(simService(8))
	for k := 8; k < b; k *= 2 {
		s *= 2.6 // doubling past the peak costs ×2.6: capacity falls
	}
	return time.Duration(s)
}

// sim is a closed-loop window simulator for one engine.
type sim struct {
	ctrl     *controller
	classes  []int
	replicas int
	out      controlOutput
}

func newSim(slo time.Duration, maxBatch, replicas int) *sim {
	s := &sim{
		ctrl:     newController(slo, maxBatch),
		classes:  batchClasses(maxBatch),
		replicas: replicas,
	}
	s.out = controlOutput{MaxBatch: s.classes[0]}
	return s
}

// classOf returns the smallest class index fitting k requests.
func (s *sim) classOf(k int) int {
	for i, c := range s.classes {
		if c >= k {
			return i
		}
	}
	return len(s.classes) - 1
}

// window simulates one control window at arrival rate λ under the current
// policy and steps the controller. It returns the window's simulated p99 and
// the padded batch size the dispatcher ran.
func (s *sim) window(rate float64) (p99 time.Duration, ranBatch int) {
	// Fixpoint for the typical coalesced batch size: requests accumulate
	// while the previous batch is in service (plus the straggler wait).
	k := 1
	for it := 0; it < 4; it++ {
		svc := simService(s.classes[s.classOf(k)])
		kNew := int(rate*(s.out.MaxDelay+svc).Seconds()/float64(s.replicas) + 0.5)
		if kNew < 1 {
			kNew = 1
		}
		if kNew > s.out.MaxBatch {
			kNew = s.out.MaxBatch
		}
		if kNew == k {
			break
		}
		k = kNew
	}
	ci := s.classOf(k)
	padded := s.classes[ci]
	svc := simService(padded)
	capacity := float64(s.replicas) * float64(padded) / svc.Seconds()
	util := rate / capacity
	queue := 0
	if util >= 0.98 {
		// Saturated: the queue grows without bound; the window's p99 blows
		// through any SLO (the real engine sheds here).
		p99 = 10 * svc * time.Duration(s.replicas*4)
		queue = 1000
	} else {
		// M/D/1-flavoured wait plus the straggler delay plus service.
		wait := time.Duration(float64(svc) * util / (2 * (1 - util)))
		p99 = s.out.MaxDelay + wait + svc + svc/8
	}

	in := controlInput{
		Rate:       rate,
		P99:        p99,
		Replicas:   s.replicas,
		QueueDepth: queue,
	}
	in.ClassService = make([]time.Duration, len(s.classes))
	in.ClassService[ci] = svc + svc/50 // measurement jitter
	s.out = s.ctrl.step(in)
	return p99, padded
}

// settle runs the simulator to steady state at a constant rate and returns
// the controller's settled batch ceiling.
func settle(t *testing.T, slo time.Duration, rate float64) int {
	t.Helper()
	s := newSim(slo, 32, 1)
	for w := 0; w < 120; w++ {
		s.window(rate)
	}
	return s.out.MaxBatch
}

// TestControllerMonotoneInLoad is the ISSUE's monotonicity property: at
// steady state the chosen batch size is non-decreasing in offered load —
// the smallest-feasible-class rule scans a rate-independent capacity table
// smallest-first, so more load can only move the choice up the ladder.
func TestControllerMonotoneInLoad(t *testing.T) {
	const slo = 10 * time.Millisecond
	rates := []float64{50, 200, 800, 1500, 2500, 3500, 4500, 5500, 6500, 7500}
	prev, prevRate := 0, 0.0
	for _, rate := range rates {
		got := settle(t, slo, rate)
		if got < prev {
			t.Errorf("settled batch fell from %d (at %.0f req/s) to %d (at %.0f req/s)",
				prev, prevRate, got, rate)
		}
		prev, prevRate = got, rate
	}
	if prev < 8 {
		t.Errorf("highest load settled at batch %d, want the capacity peak 8", prev)
	}
	// And the capacity cliff: no load can make the controller pick a class
	// past the peak — batch 16/32 have LOWER capacity, so they never become
	// the first class to satisfy demand.
	for _, rate := range []float64{8000, 12000, 50000} {
		if got := settle(t, slo, rate); got > 8 {
			t.Errorf("overload %.0f req/s drove batch to %d, past the capacity peak 8", rate, got)
		}
	}
}

// TestControllerFeasibility: a tight SLO excludes classes whose own service
// time cannot meet it, no matter the load.
func TestControllerFeasibility(t *testing.T) {
	// 2·s(8) = 1.86ms fits a 2ms SLO; 2·s(16) ≈ 4.8ms does not.
	const slo = 2 * time.Millisecond
	for _, rate := range []float64{100, 3000, 20000} {
		s := newSim(slo, 32, 1)
		for w := 0; w < 120; w++ {
			s.window(rate)
			if w > 40 && s.out.MaxBatch > 8 {
				t.Fatalf("rate %.0f: window %d chose batch %d whose service alone breaks the %v SLO",
					rate, w, s.out.MaxBatch, slo)
			}
		}
	}
}

// traceWindows asserts the SLO property over a trace: after the controller
// has had grace windows to observe a phase, every simulated window p99 stays
// within SLO + one batch service time.
func traceWindows(t *testing.T, name string, slo time.Duration, rates []float64, grace int) {
	t.Helper()
	s := newSim(slo, 32, 1)
	sincePhase := 0
	for w, rate := range rates {
		if w > 0 && rates[w-1] != rate {
			sincePhase = 0
		}
		p99, ran := s.window(rate)
		sincePhase++
		if w < 20 || sincePhase <= grace {
			continue // measurement warmup / phase transition
		}
		if bound := slo + simService(ran); p99 > bound {
			t.Errorf("%s: window %d (rate %.0f, batch %d): p99 %v exceeds SLO+service bound %v",
				name, w, rate, ran, p99, bound)
		}
	}
}

// TestControllerTraces is the ISSUE's p99 property across the three
// canonical arrival shapes.
func TestControllerTraces(t *testing.T) {
	const slo = 10 * time.Millisecond

	uniform := make([]float64, 100)
	for i := range uniform {
		uniform[i] = 2500
	}
	traceWindows(t, "uniform", slo, uniform, 1)

	// Bursty: alternating 12-window phases of light and heavy load (the
	// heavy phase within the batch-8 capacity so a correct controller CAN
	// hold the SLO).
	bursty := make([]float64, 120)
	for i := range bursty {
		if (i/12)%2 == 0 {
			bursty[i] = 400
		} else {
			bursty[i] = 6000
		}
	}
	traceWindows(t, "bursty", slo, bursty, 3)

	// Ramp: 200 → 6455 req/s over 140 windows, topping out inside batch-8
	// capacity (right AT the capacity peak the controller probes one class
	// up, measures, and steps back — correct behaviour, but not the steady
	// state this trace is about).
	ramp := make([]float64, 140)
	for i := range ramp {
		ramp[i] = 200 + float64(i)*45
	}
	traceWindows(t, "ramp", slo, ramp, 2)

	// The ramp's batch choice must grow, never oscillate downward, once
	// estimates are in: replay and track.
	s := newSim(slo, 32, 1)
	prevBatch := 0
	for w, rate := range ramp {
		s.window(rate)
		if w > 30 {
			if s.out.MaxBatch < prevBatch {
				t.Errorf("ramp: batch fell from %d to %d at window %d under rising load",
					prevBatch, s.out.MaxBatch, w)
			}
			prevBatch = s.out.MaxBatch
		}
	}
}

// TestControllerDelayBounds pins the straggler-wait rule: zero for
// single-sample batches, never more than a quarter of the SLO, and never
// more than the slack two service times leave.
func TestControllerDelayBounds(t *testing.T) {
	const slo = 10 * time.Millisecond
	s := newSim(slo, 32, 1)
	for w := 0; w < 120; w++ {
		s.window(3000)
		if s.out.MaxBatch == 1 && s.out.MaxDelay != 0 {
			t.Fatalf("window %d: batch 1 with non-zero delay %v", w, s.out.MaxDelay)
		}
		if s.out.MaxDelay > slo/4 {
			t.Fatalf("window %d: delay %v exceeds SLO/4", w, s.out.MaxDelay)
		}
		if est := s.ctrl.estimate(s.ctrl.cur); est > 0 {
			if float64(s.out.MaxDelay) > (float64(slo)-2*est)/2+1 {
				t.Fatalf("window %d: delay %v exceeds the slack after 2×service %v",
					w, s.out.MaxDelay, time.Duration(est))
			}
		}
	}
}

// TestAdaptiveEngineServes is the end-to-end smoke for SLO mode on the real
// engine: a mixed single/burst workload is answered correctly (bit-equal to
// the static engine's answers), the controller state shows up in Stats, and
// the engine shuts down cleanly with the control loop running.
func TestAdaptiveEngineServes(t *testing.T) {
	e, w := newTestEngine(t, Config{
		Model:        nn.LeNet,
		MaxBatch:     8,
		SLO:          250 * time.Millisecond, // generous: correctness test, not perf
		ControlEvery: 20 * time.Millisecond,
		Version:      3,
	})
	defer e.Close()

	ref, _ := New(Config{Model: nn.LeNet, Params: append([]float32(nil), w...), MaxBatch: 1, Version: 3})
	defer ref.Close()

	// Single requests exercise class 1; concurrent bursts exercise larger
	// lazily-built classes.
	for i := 0; i < 6; i++ {
		sample := randomSample(e.SampleVol(), uint64(40+i))
		got, err := e.Predict(sample)
		if err != nil {
			t.Fatalf("single %d: %v", i, err)
		}
		want, _ := ref.Predict(sample)
		if got.Class != want.Class || got.Confidence != want.Confidence {
			t.Fatalf("single %d: adaptive answered (%d, %v), static (%d, %v)",
				i, got.Class, got.Confidence, want.Class, want.Confidence)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sample := randomSample(e.SampleVol(), uint64(200+i))
			got, err := e.Predict(sample)
			if err != nil {
				errs <- err
				return
			}
			want, _ := ref.Predict(sample)
			if got.Class != want.Class {
				t.Errorf("burst %d: adaptive class %d, static %d", i, got.Class, want.Class)
			}
			if got.Version != 3 {
				t.Errorf("burst %d: version %d, want 3", i, got.Version)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("burst Predict: %v", err)
	}

	time.Sleep(50 * time.Millisecond) // let a control window close
	s := e.Stats()
	if s.SLOMs != 250 {
		t.Errorf("Stats.SLOMs = %v, want 250", s.SLOMs)
	}
	if s.CurMaxBatch < 1 || s.CurMaxBatch > 8 {
		t.Errorf("Stats.CurMaxBatch = %d, want within [1, 8]", s.CurMaxBatch)
	}
	if s.Requests != 70 {
		t.Errorf("Stats.Requests = %d, want 70", s.Requests)
	}
	if s.Replicas != 1 {
		t.Errorf("Stats.Replicas = %d, want 1", s.Replicas)
	}
}
