package serve

import (
	"testing"
	"time"

	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// Serving-plane allocation smoke (CI): the per-request hot path — free-list
// checkout, enqueue, dynamic batching, replica staging, forward-only
// inference against the planned arena, reply — must perform zero heap
// allocations per request in steady state. Measured at kernel worker
// budget 1, like the training-side TestHotPathAllocs: at higher budgets
// ParallelFor's chunk closures intrinsically allocate.

const servingAllocThreshold = 0.5

func measureServeAllocs(t *testing.T, id nn.ModelID, maxBatch int) float64 {
	t.Helper()
	net := nn.BuildScaled(id, 1, tensor.NewRNG(1))
	e, err := New(Config{
		Model:    id,
		Params:   net.Init(tensor.NewRNG(2)),
		MaxBatch: maxBatch,
		MaxDelay: 0, // dispatch immediately: a lone sequential client never waits
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(e.Close)
	sample := randomSample(e.SampleVol(), 3)
	for i := 0; i < 5; i++ { // warm the free lists and kernel pools
		if _, err := e.Predict(sample); err != nil {
			t.Fatalf("warm-up Predict: %v", err)
		}
	}
	return testing.AllocsPerRun(50, func() {
		if _, err := e.Predict(sample); err != nil {
			t.Fatalf("Predict: %v", err)
		}
	})
}

func TestServeHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on the instrumented path")
	}
	prev := tensor.WorkerBudget()
	defer tensor.SetWorkerBudget(prev)
	tensor.SetWorkerBudget(1)
	for _, id := range nn.AllModels {
		if avg := measureServeAllocs(t, id, 4); avg > servingAllocThreshold {
			t.Errorf("%s: %.2f allocs/request, want ~0", id, avg)
		}
	}
}

// TestServeHotPathAllocsBatched repeats the check with the batcher actually
// coalescing (MaxDelay > 0, several in-flight clients): the shared path —
// timer resets, partial batches, multi-request replies — must stay
// allocation-free too. Allocations are measured process-wide while worker
// goroutines run, so the threshold tolerates scheduler noise.
func TestServeHotPathAllocsBatched(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on the instrumented path")
	}
	prev := tensor.WorkerBudget()
	defer tensor.SetWorkerBudget(prev)
	tensor.SetWorkerBudget(1)

	net := nn.BuildScaled(nn.LeNet, 1, tensor.NewRNG(1))
	e, err := New(Config{
		Model:    nn.LeNet,
		Params:   net.Init(tensor.NewRNG(2)),
		MaxBatch: 4,
		MaxDelay: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	sample := randomSample(e.SampleVol(), 3)

	issue := func() {
		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, err := e.Predict(sample); err != nil {
				t.Errorf("Predict: %v", err)
			}
		}()
		if _, err := e.Predict(sample); err != nil {
			t.Errorf("Predict: %v", err)
		}
		<-done
	}
	issue() // warm
	// The spawned goroutine + its done channel cost a handful of allocs per
	// run; everything else (requests, batches, replies) must be free. The
	// bound is the harness cost with no per-request term.
	if avg := testing.AllocsPerRun(30, issue); avg > 6 {
		t.Errorf("batched path: %.2f allocs per 2-request run — serving objects are leaking out of the free lists", avg)
	}
}
