package serve

import (
	"crossbow/internal/autotune"
	"crossbow/internal/tensor"
)

// Replica autoscaling (DESIGN.md §16). With Config.AutoScale set the engine
// sizes its own replica pool: the training-side autotune.Online hill-climb —
// the paper's Algorithm 2, which finds the learner count where measured
// throughput stops improving — is pointed at serving replicas instead of
// learners. Replicas divide the same process-global worker budget learners
// do (tensor.SetActiveLearners), so more replicas means more concurrent
// batches each computed with fewer workers; whether that trades up or down
// depends on the machine and the load, which is exactly why it is measured
// rather than configured.
//
// Online settles permanently — the right behaviour for a training run whose
// workload never changes, the wrong one for a serving fleet whose load does.
// The scaler adds the serving-side hysteresis around it:
//
//   - Demand-drift restart: once settled, a sustained rise of the offered
//     rate well past the rate the search settled at restarts the hill-climb
//     from the current count.
//   - Idle scale-in: a sustained offered rate that one-fewer replicas could
//     carry with headroom steps the pool down one replica at a time, down
//     to the configured floor.
//
// Both require consecutive qualifying windows (not one noisy spike), and
// every change moves by a single replica — the same one-rung-at-a-time rule
// the batching controller follows, for the same reason: each step is
// measured before the next commits.

// scaleEvery is how many control windows make one autoscaler window. The
// scaler needs to see the throughput consequence of its last move, which
// takes longer than a batching decision.
const scaleEvery = 5

// driftFactor is the sustained rate growth (×settled rate) that restarts
// the hill-climb; idleHeadroom is the capacity margin one-fewer replicas
// must offer before scale-in; stableWindows is the consecutive-window
// hysteresis for either move.
const (
	driftFactor   = 1.3
	idleHeadroom  = 1.3
	stableWindows = 3
)

// scaler sizes the replica pool from measured throughput and offered rate.
// It is a pure decision kernel like the batching controller: observations
// in, replica count out, so tests drive it with synthetic load histories.
type scaler struct {
	min, max int
	tuner    *autotune.Online
	cur      int

	settledRate float64 // offered rate when the search settled
	perCap      float64 // high-water per-replica throughput (slowly decayed)
	driftRun    int     // consecutive windows of demand drift
	idleRun     int     // consecutive windows of idle excess
	resizes     int
}

func newScaler(min, max int) *scaler {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return &scaler{
		min:   min,
		max:   max,
		cur:   min,
		tuner: autotune.NewOnline(autotune.OnlineConfig{Start: min, Max: max}),
	}
}

// step ingests one scaling window — the offered request rate and the
// completed throughput, both in requests/second — and returns the replica
// count for the next window.
func (s *scaler) step(rate, throughput float64) int {
	// Per-replica capacity high-water: a demand-limited window's throughput
	// equals the offered rate and says nothing about what a replica CAN do,
	// so capacity is remembered from the busiest windows seen, with a slow
	// decay so a hot-swapped (slower) model cannot coast on stale glory.
	s.perCap *= 0.98
	if throughput > 0 && s.cur > 0 {
		if per := throughput / float64(s.cur); per > s.perCap {
			s.perCap = per
		}
	}
	if !s.tuner.Settled() {
		next := s.tuner.Observe(throughput)
		if next != s.cur {
			s.resizes++
		}
		s.cur = next
		if s.tuner.Settled() {
			s.settledRate = rate
			s.driftRun, s.idleRun = 0, 0
		}
		return s.cur
	}

	// Idle scale-in: if one-fewer replicas would still cover the offered
	// rate with headroom (judged by the per-replica capacity high-water),
	// shed a replica — after stableWindows consecutive such windows.
	if s.cur > s.min && s.perCap > 0 {
		if rate*idleHeadroom < s.perCap*float64(s.cur-1) {
			if s.idleRun++; s.idleRun >= stableWindows {
				s.cur--
				s.resizes++
				s.settledRate = rate
				s.idleRun = 0
			}
			return s.cur
		}
	}
	s.idleRun = 0

	// Demand-drift restart: sustained load well past the settled point
	// re-opens the search from the current count (warmup 0: the first
	// post-restart window is already a valid baseline, we have been
	// serving throughout).
	if s.cur < s.max && rate > s.settledRate*driftFactor {
		if s.driftRun++; s.driftRun >= stableWindows {
			s.tuner = autotune.NewOnline(autotune.OnlineConfig{
				Start:  s.cur,
				Max:    s.max,
				Warmup: 1,
			})
			s.driftRun = 0
		}
		return s.cur
	}
	s.driftRun = 0
	return s.cur
}

// applyScale publishes a new replica count: replica goroutines with ids at
// or above the target park within a poll tick, and the process worker
// budget is re-divided so the live replicas share it evenly — the serving
// analogue of resizing the learner count mid-run.
func (e *Engine) applyScale(n int) {
	if n == int(e.liveReplicas.Load()) {
		return
	}
	e.desiredReplicas.Store(int64(n))
	e.liveReplicas.Store(int64(n))
	e.resizes.Add(1)
	tensor.SetActiveLearners(n)
}
