package serve

import (
	"sync"
	"testing"
	"time"

	"crossbow/internal/nn"
)

// scalerSim drives the pure scaler with a synthetic machine: per-replica
// capacity perCap, so throughput at m replicas under offered rate λ is
// min(λ, m·perCap·eff(m)) with mild efficiency loss per extra replica (they
// split a fixed worker budget).
func scalerSim(s *scaler, rate float64, perCap float64, windows int) []int {
	counts := make([]int, 0, windows)
	for w := 0; w < windows; w++ {
		m := float64(s.cur)
		eff := 1.0 - 0.04*(m-1) // splitting the budget isn't free
		tput := m * perCap * eff
		if tput > rate {
			tput = rate
		}
		counts = append(counts, s.step(rate, tput))
	}
	return counts
}

// TestScalerClimbsUnderLoad: saturated offered load drives the hill-climb
// up until adding a replica stops paying, never past the ceiling.
func TestScalerClimbsUnderLoad(t *testing.T) {
	s := newScaler(1, 6)
	counts := scalerSim(s, 10_000, 1000, 20)
	final := counts[len(counts)-1]
	if final < 4 || final > 6 {
		t.Fatalf("saturated scaler settled at %d replicas, want within [4, 6] (history %v)", final, counts)
	}
	if !s.tuner.Settled() {
		t.Fatal("scaler never settled under constant load")
	}
	// Monotone climb: the search only ever moves by one.
	for i := 1; i < len(counts); i++ {
		if d := counts[i] - counts[i-1]; d > 1 || d < -1 {
			t.Fatalf("replica count jumped by %d at window %d: %v", d, i, counts)
		}
	}
}

// TestScalerIdleScaleIn: when load falls away, the pool steps back down —
// but only after the hysteresis, and never below the floor.
func TestScalerIdleScaleIn(t *testing.T) {
	s := newScaler(1, 6)
	scalerSim(s, 10_000, 1000, 20) // climb and settle high
	high := s.cur
	counts := scalerSim(s, 300, 1000, 30) // load collapses
	final := counts[len(counts)-1]
	if final >= high {
		t.Fatalf("idle pool stayed at %d replicas (was %d)", final, high)
	}
	if final < 1 {
		t.Fatalf("scaled below the floor: %d", final)
	}
	// Hysteresis: the first stableWindows windows must not move.
	for i := 0; i < stableWindows-1; i++ {
		if counts[i] != high {
			t.Fatalf("scaled in after only %d windows: %v", i+1, counts)
		}
	}
	// And a single idle window amid load must not (counters reset).
	s2 := newScaler(1, 6)
	scalerSim(s2, 10_000, 1000, 20)
	before := s2.cur
	scalerSim(s2, 300, 1000, stableWindows-1) // not enough idle windows
	scalerSim(s2, 10_000, 1000, 1)
	if s2.cur != before {
		t.Fatalf("short idle blip resized the pool: %d → %d", before, s2.cur)
	}
}

// TestScalerDriftRestart: sustained demand growth after settling re-opens
// the search; a short spike does not.
func TestScalerDriftRestart(t *testing.T) {
	s := newScaler(1, 6)
	scalerSim(s, 1500, 1000, 20) // settles low: ~2 replicas cover it
	low := s.cur
	if low >= 4 {
		t.Fatalf("low-load search settled at %d replicas", low)
	}
	// One spike window: no restart.
	scalerSim(s, 8000, 1000, 1)
	if !s.tuner.Settled() {
		t.Fatal("single spike window re-opened the search")
	}
	// Sustained growth: restart and climb.
	counts := scalerSim(s, 8000, 1000, 25)
	if final := counts[len(counts)-1]; final <= low {
		t.Fatalf("sustained demand growth never scaled out: stayed at %d (history %v)", final, counts)
	}
}

// TestAutoScaleEngine is the end-to-end pin: an engine with AutoScale
// reports live replica state in Stats, serves a burst correctly, and shuts
// down cleanly with parked replicas.
func TestAutoScaleEngine(t *testing.T) {
	e, _ := newTestEngine(t, Config{
		Model:        nn.LeNet,
		Replicas:     1,
		AutoScale:    3,
		MaxBatch:     8,
		SLO:          250 * time.Millisecond,
		ControlEvery: 10 * time.Millisecond,
	})
	var wg sync.WaitGroup
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.Predict(randomSample(e.SampleVol(), uint64(i))); err != nil {
				t.Errorf("Predict: %v", err)
			}
		}(i)
	}
	wg.Wait()
	s := e.Stats()
	if s.Replicas < 1 || s.Replicas > 3 {
		t.Errorf("Stats.Replicas = %d, want within [1, 3]", s.Replicas)
	}
	if s.Requests != 48 {
		t.Errorf("Stats.Requests = %d, want 48", s.Requests)
	}
	e.Close() // must not hang with replicas parked beyond desired
}
