// Package serve is the inference plane: a forward-only prediction runtime
// over snapshots of the central average model (DESIGN.md §11).
//
// Training and serving want different execution disciplines over the same
// state. Training runs k small-batch learners that own mutable replicas and
// synchronise through SMA; serving runs R read-only replicas of one
// published snapshot and cares about request latency and throughput. The
// engine here reuses the training stack's fast substrate — the blocked
// GEMM/conv kernels (DESIGN.md §8) and the §4.5 memory planner, in its
// forward-only form (nn.InferPlan) — so prediction is fast and
// allocation-free from the first request.
//
// Three pieces:
//
//   - Requests enter through Engine.Predict, which parks the caller on a
//     bounded queue. Request objects come from a fixed free list, so the
//     steady-state hot path performs zero heap allocations per request
//     (enforced by an AllocsPerRun test).
//
//   - A dispatcher coalesces queued requests into batches of up to MaxBatch,
//     waiting at most MaxDelay for stragglers once a batch has an occupant —
//     the dynamic micro-batching trade between occupancy (throughput) and
//     tail latency.
//
//   - R replicas claim batches first-come-first-served from a shared channel
//     (the same FCFS claim discipline the training runtime uses for staged
//     batches), copy the samples into their fixed-batch input tensor, run
//     the forward-only network against a per-replica planned arena, and
//     answer each request with its arg-max class and softmax confidence.
//
// Snapshots version the model: UpdateModel hot-swaps all replicas onto a
// newer published snapshot between batches, so a serving engine can trail a
// live training run (core.Snapshot, Config.PublishEvery) without dropping
// requests. metrics.ServingStats reports latency quantiles, batch occupancy
// and queue pressure.
//
// Fleet mode (DESIGN.md §16) replaces the static MaxBatch/MaxDelay knobs
// with measured control loops:
//
//   - Config.SLO enables the adaptive batching controller (adaptive.go): it
//     walks a power-of-two ladder of batch classes, tracks an EWMA of the
//     measured service time per class, and each control window picks the
//     smallest class whose extrapolated service time still fits the p99
//     target — one rung per window, so batch size is monotone in offered
//     load by construction and the batch-32 throughput falloff cannot be
//     configured into existence.
//
//   - Config.AutoScale enables the replica autoscaler (autoscale.go): it
//     reuses the training plane's Algorithm 2 tuner (autotune.Online) over
//     the replica count, with a decayed per-replica throughput high-water
//     mark for idle scale-in and a drift detector that restarts the probe
//     when load outgrows the settled configuration. Parked replicas keep
//     their arenas and resume without warm-up.
//
// Both loops leave the static path untouched: without SLO/AutoScale the
// engine behaves exactly as described above.
package serve
