package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// flood hammers the engine with `clients` goroutines sending `per`
// requests each, and returns the served / shed counts. Any error other
// than ErrOverloaded fails the test.
//
// The engines under test use a deliberately expensive batch (a large
// MaxBatch on a deep model — partial batches compute every row, so each
// batch costs the same ~tens of ms regardless of occupancy). That makes
// the overload real on any machine: the pipeline's capacity is a fixed
// request count, its drain time is scheduler-visible, and a flood of more
// clients than capacity MUST overflow the queue.
func flood(t *testing.T, e *Engine, clients, per int) (served, shed int64) {
	t.Helper()
	sample := randomSample(e.SampleVol(), 42)
	var okCount, shedCount atomic.Int64
	var fail atomic.Value
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_, err := e.Predict(sample)
				switch {
				case err == nil:
					okCount.Add(1)
				case errors.Is(err, ErrOverloaded):
					shedCount.Add(1)
				default:
					fail.Store(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := fail.Load(); err != nil {
		t.Fatalf("Predict failed with a non-shed error: %v", err)
	}
	return okCount.Load(), shedCount.Load()
}

// TestShedOnFullKeepsLatencyBounded offers far more concurrent load than
// the engine's bounded pipeline can hold: the pipeline absorbs at most
// QueueDepth + one gathering batch + one queued batch + one executing
// batch ≈ 200 requests, and 256 clients stay saturating it for many batch
// times. With ShedOnFull the excess must be refused immediately
// (ErrOverloaded, counted in Stats.Shed) instead of queueing, so the
// requests that ARE admitted keep a drain-time-bounded latency — the
// graceful-degradation contract.
func TestShedOnFullKeepsLatencyBounded(t *testing.T) {
	e, _ := newTestEngine(t, Config{
		Model: nn.VGG16, MaxBatch: 64, QueueDepth: 8, ShedOnFull: true,
	})
	defer e.Close()

	served, shed := flood(t, e, 256, 2)
	if served == 0 {
		t.Fatal("overloaded engine served nothing")
	}
	if shed == 0 {
		t.Fatal("sustained overload beyond pipeline capacity shed nothing — queue must have been unbounded")
	}
	s := e.Stats()
	if s.Shed != shed {
		t.Fatalf("Stats.Shed = %d, clients counted %d", s.Shed, shed)
	}
	if s.Requests != served {
		t.Fatalf("Stats.Requests = %d, clients counted %d served", s.Requests, served)
	}
	// An admitted request waits at most the bounded pipeline's drain
	// (a few batch times), not the offered load's. Two seconds is far
	// above the honest bound — this guards against regressions back to
	// unbounded queueing, where p99 would be the whole flood's runtime.
	if s.P99Ms > 2000 {
		t.Fatalf("served p99 = %.1fms under shedding, want drain-bounded", s.P99Ms)
	}
}

// TestAdmitDeadlineShedsLateRequests floods an engine whose answer budget
// covers only ~2 queued batches while the flood stacks up many more.
// Requests that would miss the budget must be refused — at admission once
// the service-time estimate exists, or at dispatch when they aged out
// while queued — and every request the engine does answer must have
// dispatched within its budget.
func TestAdmitDeadlineShedsLateRequests(t *testing.T) {
	// Pin the kernels to two workers for the duration of the test. At full
	// parallelism a batch's ParallelFor occupies every P, so the flood's
	// client goroutines are starved off the scheduler and arrivals trickle
	// in at the batch gap rate — the backlog this test is about never
	// forms, and each kernel speedup widens that escape hatch. With the
	// kernels capped, clients run concurrently with compute and the queue
	// genuinely stacks many batch-times against the 2-batch budget.
	prevPar := tensor.Parallelism()
	tensor.SetParallelism(2)
	t.Cleanup(func() { tensor.SetParallelism(prevPar) })

	// Calibrate the budget to this machine: measure one batch's service
	// time on a throwaway engine, then grant the real engine ~2 batch
	// times. The queue is deep enough to stack dozens of batches, so
	// without deadline admission nothing would ever be refused.
	probe, w := newTestEngine(t, Config{Model: nn.VGG16, MaxBatch: 64})
	// Several sequential probes, not one: the first batch pays lazy bind
	// and page-fault costs, and a budget calibrated to that cold outlier
	// alone is loose enough to let a whole backlog drain inside it.
	for i := 0; i < 5; i++ {
		if _, err := probe.Predict(randomSample(probe.SampleVol(), 1)); err != nil {
			t.Fatalf("calibration Predict: %v", err)
		}
	}
	batchTime := probe.service.Mean()
	probe.Close()

	e, err := New(Config{
		Model: nn.VGG16, Params: w, MaxBatch: 64, QueueDepth: 1024,
		AdmitDeadline: 2 * batchTime,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()

	served, shed := flood(t, e, 512, 2)
	if served == 0 {
		t.Fatal("deadline admission starved the engine completely")
	}
	if shed == 0 {
		t.Fatal("a backlog of many batch-times against a 2-batch budget shed nothing")
	}
	s := e.Stats()
	if s.Shed != shed {
		t.Fatalf("Stats.Shed = %d, clients counted %d", s.Shed, shed)
	}
	// Latency is recorded only for answered requests; each of those passed
	// the dispatch-time age check, so its queue wait sat within the budget
	// and served p99 ≈ budget + a few batch times — not the backlog's full
	// drain. The slack absorbs single-core scheduling noise.
	bound := float64(2*batchTime+4*e.service.Max())/1e6 + 250
	if s.P99Ms > bound {
		t.Fatalf("served p99 = %.1fms, want <= %.1fms (budget + slack)", s.P99Ms, bound)
	}
}

// TestLapsedRequestAccounting unit-tests the dispatch-time age check
// directly: a request older than the budget is answered ErrOverloaded and
// counted shed, a fresh one passes untouched, and with no budget the check
// is inert.
func TestLapsedRequestAccounting(t *testing.T) {
	e, _ := newTestEngine(t, Config{Model: nn.LeNet, AdmitDeadline: 10 * time.Millisecond})
	defer e.Close()

	old := e.getReq()
	old.enq = time.Now().Add(-20 * time.Millisecond)
	if !e.lapsed(old) {
		t.Fatal("request 2x past its budget not lapsed")
	}
	if p := <-old.resp; p != (Prediction{}) || !errors.Is(old.err, ErrOverloaded) {
		t.Fatalf("lapsed answer = %+v err %v, want zero prediction + ErrOverloaded", p, old.err)
	}
	old.err = nil
	e.putReq(old)

	fresh := e.getReq()
	fresh.enq = time.Now()
	if e.lapsed(fresh) {
		t.Fatal("fresh request lapsed")
	}
	e.putReq(fresh)
	if got := e.Stats().Shed; got != 1 {
		t.Fatalf("Stats.Shed = %d after one lapse, want 1", got)
	}
}
