package serve

import (
	"testing"
	"time"

	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// TestFastModeMatchesDeterministicFusion pins the serving-side fusion
// contract: a Fast-mode engine (which serves fused replicas) answers with
// exactly the classes an unfused Fast-mode network computes directly —
// fusion is a memory optimisation, never an accuracy change.
func TestFastModeMatchesDirectForward(t *testing.T) {
	const maxBatch = 4
	e, w := newTestEngine(t, Config{
		Model: nn.LeNet, MaxBatch: maxBatch,
		MaxDelay: time.Millisecond, KernelMode: tensor.Fast,
	})
	defer e.Close()

	ref := nn.BuildScaled(nn.LeNet, 1, tensor.NewRNG(9))
	ref.SetKernelMode(tensor.Fast)
	ref.Bind(w, make([]float32, ref.ParamSize()))
	x := tensor.New(append([]int{1}, ref.InShape...)...)
	preds := make([]int, 1)
	conf := make([]float32, 1)

	for i := 0; i < 8; i++ {
		sample := randomSample(e.SampleVol(), uint64(300+i))
		got, err := e.Predict(sample)
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		copy(x.Data(), sample)
		ref.Predict(x, preds, conf)
		if got.Class != preds[0] {
			t.Fatalf("sample %d: class %d, direct fast forward says %d", i, got.Class, preds[0])
		}
	}
	if s := e.Stats(); s.KernelMode != "fast" {
		t.Fatalf("Stats.KernelMode = %q, want \"fast\"", s.KernelMode)
	}
}

// TestQuantizedServing forces the gate open (tiny threshold) and checks the
// int8 path answers every request with a valid class, reports itself in
// Stats, and survives a model hot-swap (which must re-quantize).
func TestQuantizedServing(t *testing.T) {
	const maxBatch = 4
	e, w := newTestEngine(t, Config{
		Model: nn.LeNet, MaxBatch: maxBatch, MaxDelay: time.Millisecond,
		Quantize: true, QuantMinAgreement: 0.01, Version: 1,
	})
	defer e.Close()

	if !e.Quantized() {
		t.Fatal("gate with threshold 0.01 did not admit quantization")
	}
	if a := e.QuantAgreement(); a < 0.01 || a > 1 {
		t.Fatalf("QuantAgreement() = %v, want a fraction in [0.01, 1]", a)
	}
	probe := nn.BuildScaled(nn.LeNet, 1, tensor.NewRNG(1))
	classes := probe.Classes
	ask := func(wantVersion int64) {
		t.Helper()
		for i := 0; i < 8; i++ {
			p, err := e.Predict(randomSample(e.SampleVol(), uint64(500+i)))
			if err != nil {
				t.Fatalf("Predict: %v", err)
			}
			if p.Class < 0 || p.Class >= classes {
				t.Fatalf("class %d out of range [0, %d)", p.Class, classes)
			}
			if p.Version != wantVersion {
				t.Fatalf("version %d, want %d", p.Version, wantVersion)
			}
		}
	}
	ask(1)

	// Hot-swap to perturbed parameters: replicas must rebind AND rebuild
	// their int8 copies before answering under the new version.
	w2 := make([]float32, len(w))
	for i, v := range w {
		w2[i] = v * 1.25
	}
	if err := e.UpdateModel(w2, 2); err != nil {
		t.Fatalf("UpdateModel: %v", err)
	}
	ask(2)

	s := e.Stats()
	if !s.Quantized || s.QuantAgree != e.QuantAgreement() {
		t.Fatalf("Stats quantization fields %+v do not match engine state", s)
	}
}

// TestQuantizeGateFallback: an unreachable agreement threshold must leave
// the engine serving f32 — bit-identical to a plain engine — while still
// reporting the measured agreement.
func TestQuantizeGateFallback(t *testing.T) {
	const maxBatch = 4
	e, w := newTestEngine(t, Config{
		Model: nn.LeNet, MaxBatch: maxBatch, MaxDelay: time.Millisecond,
		Quantize: true, QuantMinAgreement: 1.1,
	})
	defer e.Close()

	if e.Quantized() {
		t.Fatal("gate admitted quantization past an impossible threshold")
	}
	if a := e.QuantAgreement(); a < 0 || a > 1 {
		t.Fatalf("QuantAgreement() = %v, want a fraction", a)
	}
	ref := nn.BuildScaled(nn.LeNet, 1, tensor.NewRNG(9))
	ref.Bind(w, make([]float32, ref.ParamSize()))
	x := tensor.New(append([]int{1}, ref.InShape...)...)
	preds := make([]int, 1)
	for i := 0; i < 8; i++ {
		sample := randomSample(e.SampleVol(), uint64(700+i))
		got, err := e.Predict(sample)
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		copy(x.Data(), sample)
		ref.Predict(x, preds, nil)
		if got.Class != preds[0] {
			t.Fatalf("fallback sample %d: class %d, f32 forward says %d", i, got.Class, preds[0])
		}
	}
	if s := e.Stats(); s.Quantized {
		t.Fatal("Stats.Quantized true after gate fallback")
	}
}
