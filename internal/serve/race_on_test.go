//go:build race

package serve

// raceEnabled reports whether the race detector instruments this build; its
// shadow allocations would fail the zero-alloc assertions, so those tests
// skip themselves (CI runs them in a separate non-race step).
const raceEnabled = true
