package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crossbow/internal/data"
	"crossbow/internal/metrics"
	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// ErrClosed is returned by Predict once the engine has been closed.
var ErrClosed = errors.New("serve: engine closed")

// ErrOverloaded is returned by Predict when the engine sheds the request
// instead of queueing it: the queue is full (ShedOnFull) or the request
// cannot be answered within AdmitDeadline. Shedding is the graceful-
// degradation contract — a fast, cheap refusal the caller can convert to
// a 503 and retry elsewhere, instead of an unbounded queue wait that takes
// the whole latency distribution down with it.
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// Config configures a prediction engine.
type Config struct {
	// Model names the architecture Params belongs to. Required.
	Model nn.ModelID
	// Params is the model to serve — a published training snapshot
	// (core.Snapshot.Params) or a loaded checkpoint. The engine takes
	// ownership; do not modify after New. Required.
	Params []float32
	// Version tags the initial model (the snapshot round); reported with
	// every prediction and in Stats.
	Version int64
	// Replicas is the number of forward-only model replicas serving
	// batches concurrently, each with its own planned inference arena
	// (default 1). Replicas claim batches first-come-first-served.
	Replicas int
	// MaxBatch is the micro-batching ceiling: the dispatcher coalesces at
	// most MaxBatch queued requests into one forward pass (default 8).
	// Replicas are built at this batch size, so it also fixes the
	// per-replica arena.
	MaxBatch int
	// MaxDelay bounds how long a non-full batch waits for stragglers
	// after its first request arrives. Zero — the zero value, hence the
	// default — dispatches immediately with whatever is queued: minimum
	// latency, lower occupancy. Set a small positive delay (the binaries
	// default to 2ms) to trade per-request latency for batch occupancy.
	MaxDelay time.Duration
	// QueueDepth bounds the request queue; Predict blocks while it is
	// full — backpressure, not load shedding (default Replicas×MaxBatch×4).
	QueueDepth int
	// ShedOnFull flips the full-queue behaviour from backpressure to load
	// shedding: Predict returns ErrOverloaded immediately instead of
	// blocking. Under sustained overload this keeps the latency of the
	// requests that ARE admitted bounded by the queue's drain time, at the
	// price of refusing the excess (counted in ServingStats.Shed).
	ShedOnFull bool
	// AdmitDeadline, when positive, is the per-request answer budget: a
	// request is shed at admission when the queue's estimated drain time
	// already exceeds it, and again at dispatch if it aged past the budget
	// while queued (both return ErrOverloaded). This is deadline-aware
	// admission — work that would miss its deadline anyway is refused
	// before it wastes a replica's forward pass.
	AdmitDeadline time.Duration
	// KernelMode selects the replicas' GEMM kernel mode:
	// tensor.Deterministic (the zero value — bit-reproducible) or
	// tensor.Fast (FMA micro-kernels where the CPU supports them;
	// DESIGN.md §14). Fast-mode replicas also run with conv→BN→ReLU
	// chains fused into GEMM epilogues, which is bit-identical and only
	// shrinks the inference arenas.
	KernelMode tensor.KernelMode
	// Quantize asks for the int8 serving path: replica weights are
	// quantized per output channel at model-publish time and forward
	// passes accumulate in int32. The request is gated — see
	// QuantMinAgreement — and re-applied on every UpdateModel hot-swap.
	Quantize bool
	// QuantMinAgreement is the top-1 agreement fraction the quantized
	// network must reach against the f32 network over a synthesized
	// evaluation set before the engine serves int8; below it the engine
	// falls back to f32 (Quantized() reports which side won, and
	// ServingStats carries the measured agreement). Zero selects 0.99.
	QuantMinAgreement float64
	// SLO, when positive, turns on adaptive batching (DESIGN.md §16): the
	// engine targets this end-to-end p99 latency, treating MaxBatch as a
	// ceiling and MaxDelay as irrelevant — a measurement-driven controller
	// picks the batch size and straggler wait each control window from the
	// observed arrival rate and per-class service times. Zero (the default)
	// keeps the static MaxBatch/MaxDelay policy exactly as before.
	SLO time.Duration
	// ControlEvery is the adaptive controller's decision window (default
	// 100ms). Only meaningful with SLO set.
	ControlEvery time.Duration
	// AutoScale, when positive with SLO set, lets the engine resize its own
	// replica pool between MinReplicas(=Replicas) and AutoScale replicas,
	// tracking measured throughput-per-replica under the process worker
	// budget (the serving analogue of tensor.SetActiveLearners). Zero keeps
	// the fixed Replicas count.
	AutoScale int
}

func (c *Config) fillDefaults() error {
	if c.Model == "" {
		return errors.New("serve: Config.Model is required")
	}
	if _, ok := nn.ScaledConfigs[c.Model]; !ok {
		return fmt.Errorf("serve: unknown model %q", c.Model)
	}
	if len(c.Params) == 0 {
		return errors.New("serve: Config.Params is required (train a model or load a checkpoint)")
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = c.Replicas * c.MaxBatch * 4
	}
	if c.QuantMinAgreement <= 0 {
		c.QuantMinAgreement = 0.99
	}
	if c.ControlEvery <= 0 {
		c.ControlEvery = 100 * time.Millisecond
	}
	if c.AutoScale > 0 && c.SLO <= 0 {
		return errors.New("serve: AutoScale requires an SLO (the autoscaler is driven by the same measurement windows)")
	}
	if c.AutoScale > 0 && c.AutoScale < c.Replicas {
		return fmt.Errorf("serve: AutoScale ceiling %d below Replicas %d", c.AutoScale, c.Replicas)
	}
	return nil
}

// Prediction is one request's answer.
type Prediction struct {
	// Class is the arg-max class index.
	Class int
	// Confidence is the winning class's softmax probability.
	Confidence float32
	// Version identifies the model snapshot that produced the answer.
	Version int64
}

// request is the internal unit of work. Requests are recycled through a
// fixed free list so the steady-state hot path allocates nothing.
type request struct {
	sample []float32 // caller's slice; read until the reply is sent
	enq    time.Time
	resp   chan Prediction // buffered(1); reused across checkouts
	// err is set (to ErrOverloaded) by the dispatcher before answering a
	// shed request; the resp channel send/receive gives the happens-before
	// edge that makes the plain field safe to read in Predict.
	err error
}

// batch is a dispatched group of requests, recycled like requests.
type batch struct {
	reqs []*request
}

// modelState is the immutable (params, version) pair replicas serve;
// UpdateModel swaps the pointer, replicas rebind lazily between batches.
type modelState struct {
	w       []float32
	version int64
}

// replicaSlot is one forward-only copy of the network at one batch class,
// with its planned inference arena and fixed-batch staging buffers.
type replicaSlot struct {
	net   *nn.Network
	x     *tensor.Tensor
	vol   int // per-sample volume
	preds []int
	conf  []float32
	bound *modelState // model the net is currently bound to
}

// replica is one serving replica: in static mode a single slot at MaxBatch,
// in adaptive mode one slot per batch class, built lazily the first time the
// controller's chosen class actually runs (each slot owns a planned arena,
// so an unvisited class costs nothing). A partial batch runs on the smallest
// class that fits it instead of paying the full-MaxBatch forward pass — half
// of what made the fixed batch-32 configuration fall off. Slots are touched
// only by the replica's own goroutine.
type replica struct {
	id    int
	slots []*replicaSlot
}

// Engine is the batched prediction runtime. Create with New, submit with
// Predict from any number of goroutines, retire with Close.
type Engine struct {
	cfg   Config
	model atomic.Pointer[modelState]

	queue       chan *request
	batches     chan *batch
	freeReqs    chan *request
	freeBatches chan *batch
	stop        chan struct{} // tells the dispatcher to drain and exit

	mu     sync.RWMutex // guards closed against in-flight enqueues
	closed bool
	wg     sync.WaitGroup

	sampleVol   int
	gradScratch []float32 // shared Bind scratch; forward passes never write it

	// Quantization gate outcome, fixed at New: quantOn says whether
	// replicas serve the int8 path; quantAgreement is the measured top-1
	// agreement (zero when quantization was not requested).
	quantOn        bool
	quantAgreement float64

	// Adaptive batching state (SLO > 0). classes is the batch-size ladder
	// (a single MaxBatch entry in static mode); curBatch/curDelayNs are the
	// controller's live policy, read by the dispatcher per batch; the
	// window meters feed the next decision and are swapped out each
	// control tick.
	adaptive    bool
	classes     []int
	curBatch    atomic.Int64
	curDelayNs  atomic.Int64
	winLatency  metrics.LatencyRecorder
	arrivals    atomic.Int64
	classMeters []classMeter
	sloBreaches atomic.Int64

	// Replica pool sizing. liveReplicas is how many replica goroutines
	// currently claim batches (== cfg.Replicas unless autoscaling);
	// desiredReplicas is the autoscaler's target — a replica goroutine
	// whose id exceeds it parks until scaled up again.
	liveReplicas    atomic.Int64
	desiredReplicas atomic.Int64
	resizes         atomic.Int64

	// Stats. occupancy = requests/batches; queuePeak is a CAS-maxed gauge.
	requests  atomic.Int64
	nbatches  atomic.Int64
	rejected  atomic.Int64
	shed      atomic.Int64
	swaps     atomic.Int64
	queuePeak atomic.Int64
	latency   metrics.LatencyRecorder
	service   metrics.LatencyRecorder
}

// classMeter accumulates one batch class's service time over a control
// window (lock-free; swapped out by the controller each tick).
type classMeter struct {
	sumNs atomic.Int64
	n     atomic.Int64
}

// New validates cfg, builds the replica pool (each replica plans and
// attaches its forward-only arena up front, so no allocation is left for
// the hot path) and starts the dispatcher and replica goroutines.
func New(cfg Config) (*Engine, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	probe := nn.BuildScaled(cfg.Model, cfg.MaxBatch, tensor.NewRNG(1))
	if len(cfg.Params) != probe.ParamSize() {
		return nil, fmt.Errorf("serve: %q takes %d parameters, got %d",
			cfg.Model, probe.ParamSize(), len(cfg.Params))
	}
	maxReplicas := cfg.Replicas
	if cfg.AutoScale > maxReplicas {
		maxReplicas = cfg.AutoScale
	}
	e := &Engine{
		cfg:         cfg,
		queue:       make(chan *request, cfg.QueueDepth),
		batches:     make(chan *batch, maxReplicas),
		freeReqs:    make(chan *request, cfg.QueueDepth+maxReplicas*cfg.MaxBatch),
		freeBatches: make(chan *batch, maxReplicas+2),
		stop:        make(chan struct{}),
		sampleVol:   tensor.Volume(probe.InShape),
		gradScratch: make([]float32, probe.ParamSize()),
	}
	e.model.Store(&modelState{w: cfg.Params, version: cfg.Version})
	if cfg.Quantize {
		e.quantOn, e.quantAgreement = quantGate(&cfg)
	}
	e.adaptive = cfg.SLO > 0
	e.classes = []int{cfg.MaxBatch}
	if e.adaptive {
		e.classes = batchClasses(cfg.MaxBatch)
	}
	e.classMeters = make([]classMeter, len(e.classes))
	// The controller starts at the smallest class — the lowest-latency
	// answer to an unknown load — and grows within a window or two when the
	// measured rate demands it. Static mode pins the configured policy.
	e.curBatch.Store(int64(e.classes[0]))
	e.liveReplicas.Store(int64(cfg.Replicas))
	e.desiredReplicas.Store(int64(cfg.Replicas))

	probeSlot := e.makeSlot(probe, cfg.MaxBatch)
	for i := 0; i < maxReplicas; i++ {
		r := &replica{id: i, slots: make([]*replicaSlot, len(e.classes))}
		if i == 0 {
			// The validation probe is a fully built MaxBatch net; keep it as
			// replica 0's MaxBatch slot instead of throwing it away.
			r.slots[len(e.classes)-1] = probeSlot
		} else if !e.adaptive {
			// Static mode keeps its original contract: every replica fully
			// built before New returns, nothing left for the hot path.
			r.slots[0] = e.buildSlot(cfg.MaxBatch)
		}
		e.wg.Add(1)
		go e.replicaLoop(r)
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.dispatch()
	}()
	if e.adaptive {
		e.wg.Add(1)
		go e.control()
	}
	return e, nil
}

// makeSlot wraps an already-built forward network into a replica slot,
// binding it to the current model.
func (e *Engine) makeSlot(net *nn.Network, batchSize int) *replicaSlot {
	ms := e.model.Load()
	net.SetKernelMode(e.cfg.KernelMode)
	// Fusion is bit-identical (TestFusedPredictBitIdentical) and only
	// shrinks the inference walk, but the deterministic default stays
	// on the exact layer-by-layer path the determinism suite pins.
	if e.quantOn || e.cfg.KernelMode == tensor.Fast {
		net.FuseInference()
	}
	net.Bind(ms.w, e.gradScratch)
	if e.quantOn {
		net.QuantizeWeights()
	}
	net.AttachInferenceArena(tensor.NewArena(net.InferPlan().ArenaElems))
	return &replicaSlot{
		net:   net,
		x:     tensor.New(append([]int{batchSize}, net.InShape...)...),
		vol:   tensor.Volume(net.InShape),
		preds: make([]int, batchSize),
		conf:  make([]float32, batchSize),
		bound: ms,
	}
}

// buildSlot builds a replica slot at the given batch size from scratch.
func (e *Engine) buildSlot(batchSize int) *replicaSlot {
	return e.makeSlot(nn.BuildScaled(e.cfg.Model, batchSize, tensor.NewRNG(1)), batchSize)
}

// replicaLoop claims batches first-come-first-served until the batch
// channel closes. A replica whose id is at or above the autoscaler's target
// parks — polling rather than claiming, so scaled-away capacity stops
// pulling work within a poll tick but its built slots survive for the next
// scale-up.
func (e *Engine) replicaLoop(r *replica) {
	defer e.wg.Done()
	for {
		if int64(r.id) >= e.desiredReplicas.Load() {
			select {
			case <-e.stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		b, ok := <-e.batches
		if !ok {
			return
		}
		e.runBatch(r, b)
	}
}

// quantGate decides whether the int8 path may serve cfg.Params: it builds
// an f32 reference network and a fused+quantized candidate, classifies a
// synthesized evaluation set with both (the model's benchmark distribution,
// so the gate sees realistically clustered inputs rather than white noise)
// and admits quantization only when top-1 agreement reaches
// cfg.QuantMinAgreement. This runs once, at publish time — the same place
// the quantized weights themselves are derived — so a snapshot that
// quantizes badly is served in f32 instead of degrading answers silently.
func quantGate(cfg *Config) (ok bool, agreement float64) {
	const evalBatches = 8
	f32 := nn.BuildScaled(cfg.Model, cfg.MaxBatch, tensor.NewRNG(1))
	f32.SetKernelMode(cfg.KernelMode)
	f32.Bind(cfg.Params, make([]float32, f32.ParamSize()))
	f32.AttachInferenceArena(tensor.NewArena(f32.InferPlan().ArenaElems))

	q := nn.BuildScaled(cfg.Model, cfg.MaxBatch, tensor.NewRNG(1))
	q.SetKernelMode(cfg.KernelMode)
	q.FuseInference()
	q.Bind(cfg.Params, make([]float32, q.ParamSize()))
	q.QuantizeWeights()
	q.AttachInferenceArena(tensor.NewArena(q.InferPlan().ArenaElems))

	sc := data.ForModel(cfg.Model, 1789, 0)
	sc.Train, sc.Test = 0, evalBatches*cfg.MaxBatch
	_, eval := data.Synthesize(sc)

	x := tensor.New(append([]int{cfg.MaxBatch}, f32.InShape...)...)
	idx := make([]int, cfg.MaxBatch)
	labels := make([]int, cfg.MaxBatch)
	fp := make([]int, cfg.MaxBatch)
	qp := make([]int, cfg.MaxBatch)
	agree, total := 0, 0
	for b := 0; b < evalBatches; b++ {
		for i := range idx {
			idx[i] = b*cfg.MaxBatch + i
		}
		eval.Gather(idx, x, labels)
		f32.Predict(x, fp, nil)
		q.Predict(x, qp, nil)
		for i := range fp {
			if fp[i] == qp[i] {
				agree++
			}
			total++
		}
	}
	agreement = float64(agree) / float64(total)
	return agreement >= cfg.QuantMinAgreement, agreement
}

// SampleVol returns the expected per-sample element count of Predict inputs.
func (e *Engine) SampleVol() int { return e.sampleVol }

// Quantized reports whether replicas serve the int8 weight path. False
// either when Config.Quantize was off or when the publish-time agreement
// gate rejected the model (QuantAgreement tells which).
func (e *Engine) Quantized() bool { return e.quantOn }

// QuantAgreement returns the top-1 agreement the quantization gate measured
// (zero when quantization was never requested).
func (e *Engine) QuantAgreement() float64 { return e.quantAgreement }

// Model returns the served architecture.
func (e *Engine) Model() nn.ModelID { return e.cfg.Model }

// Version returns the currently served model version.
func (e *Engine) Version() int64 { return e.model.Load().version }

// UpdateModel hot-swaps the served model: replicas rebind to the new
// parameters before their next batch, without dropping or delaying queued
// requests. The engine takes ownership of params (hand it a snapshot's
// Params directly). In-flight batches answer with the version they were
// computed under.
func (e *Engine) UpdateModel(params []float32, version int64) error {
	if len(params) != len(e.gradScratch) {
		return fmt.Errorf("serve: UpdateModel with %d parameters, want %d",
			len(params), len(e.gradScratch))
	}
	e.model.Store(&modelState{w: params, version: version})
	e.swaps.Add(1)
	return nil
}

// Predict classifies one sample (len must equal SampleVol; the slice is
// read until Predict returns). It blocks while the request queue is full —
// backpressure — and through batching and execution; the answer carries the
// class, its softmax confidence and the model version that computed it.
// Safe for concurrent use; zero heap allocations per call in steady state.
func (e *Engine) Predict(sample []float32) (Prediction, error) {
	if len(sample) != e.sampleVol {
		// A short sample would silently classify a hybrid of this request
		// and stale staging data; reject it like every other shape
		// mismatch in the codebase.
		return Prediction{}, fmt.Errorf("serve: sample has %d values, %q takes %d",
			len(sample), e.cfg.Model, e.sampleVol)
	}
	if e.adaptive {
		e.arrivals.Add(1) // offered load: every well-formed request, shed or not
	}
	// Deadline-aware admission: estimate how long the queue already ahead
	// of us takes to drain (batches ahead × mean batch service time) and
	// refuse on arrival if the answer would miss the budget anyway. The
	// estimate is deliberately cheap — a few atomic reads — because it runs
	// on every request of an overloaded server.
	if e.cfg.AdmitDeadline > 0 {
		if mean := e.service.Mean(); mean > 0 {
			maxB, _ := e.policy()
			ahead := int64(len(e.queue)/(maxB*int(e.liveReplicas.Load())) + 1)
			if time.Duration(ahead*int64(mean)) > e.cfg.AdmitDeadline {
				e.shed.Add(1)
				return Prediction{}, ErrOverloaded
			}
		}
	}

	req := e.getReq()
	req.sample = sample
	req.enq = time.Now()

	// The closed flag is checked under a read lock held across the
	// enqueue, and Close flips it under the write lock *before* telling
	// the dispatcher to drain: every request that passes this gate is
	// therefore enqueued before the drain starts and will be served, and
	// no request can slip into the queue after it.
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		e.putReq(req)
		e.rejected.Add(1)
		return Prediction{}, ErrClosed
	}
	if e.cfg.ShedOnFull {
		select {
		case e.queue <- req:
		default:
			e.mu.RUnlock()
			e.putReq(req)
			e.shed.Add(1)
			return Prediction{}, ErrOverloaded
		}
	} else {
		e.queue <- req
	}
	e.mu.RUnlock()

	for d := int64(len(e.queue)); ; {
		cur := e.queuePeak.Load()
		if d <= cur || e.queuePeak.CompareAndSwap(cur, d) {
			break
		}
	}
	p := <-req.resp
	err := req.err
	req.err = nil
	e.putReq(req)
	if err != nil {
		return Prediction{}, err
	}
	return p, nil
}

// Close stops accepting requests, serves everything already queued, waits
// for the dispatcher and replicas to finish, and returns. Safe to call
// once; Predict calls racing Close either complete normally or return
// ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stop)
	e.wg.Wait()
}

// Stats returns a point-in-time snapshot of the runtime's behaviour.
func (e *Engine) Stats() metrics.ServingStats {
	reqs, bat := e.requests.Load(), e.nbatches.Load()
	s := metrics.ServingStats{
		Requests:     reqs,
		Batches:      bat,
		Rejected:     e.rejected.Load(),
		Shed:         e.shed.Load(),
		QueueDepth:   len(e.queue),
		QueuePeak:    int(e.queuePeak.Load()),
		P50Ms:        metrics.Ms(e.latency.Quantile(0.50)),
		P95Ms:        metrics.Ms(e.latency.Quantile(0.95)),
		P99Ms:        metrics.Ms(e.latency.Quantile(0.99)),
		MaxMs:        metrics.Ms(e.latency.Max()),
		MeanMs:       metrics.Ms(e.latency.Mean()),
		ServiceP50Ms: metrics.Ms(e.service.Quantile(0.50)),
		ServiceP99Ms: metrics.Ms(e.service.Quantile(0.99)),
		ModelVersion: e.model.Load().version,
		ModelSwaps:   e.swaps.Load(),
		KernelMode:   e.cfg.KernelMode.String(),
		Quantized:    e.quantOn,
		QuantAgree:   e.quantAgreement,
		Replicas:     int(e.liveReplicas.Load()),
		Resizes:      e.resizes.Load(),
	}
	if bat > 0 {
		s.BatchOccupancy = float64(reqs) / float64(bat)
	}
	if e.adaptive {
		s.SLOMs = metrics.Ms(e.cfg.SLO)
		maxB, maxD := e.policy()
		s.CurMaxBatch = maxB
		s.CurMaxDelayMs = metrics.Ms(maxD)
		s.SLOBreaches = e.sloBreaches.Load()
	}
	return s
}

// dispatch is the micro-batching scheduler: it blocks for a first request,
// then coalesces up to MaxBatch-1 more, waiting at most MaxDelay once the
// batch has an occupant (a full batch dispatches immediately; MaxDelay 0
// takes only what is already queued). On stop it keeps batching — without
// the delay — until the queue is drained, so every accepted request is
// answered.
func (e *Engine) dispatch() {
	defer close(e.batches)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var first *request
		select {
		case first = <-e.queue:
		case <-e.stop:
			e.drain()
			return
		}
		if e.lapsed(first) {
			continue
		}
		// The policy is read once per batch: in static mode the configured
		// constants, in adaptive mode whatever the controller decided at the
		// last window boundary.
		maxBatch, maxDelay := e.policy()
		b := e.getBatch()
		b.reqs = append(b.reqs[:0], first)
		if maxDelay > 0 {
			timer.Reset(maxDelay)
			expired := false
			for !expired && len(b.reqs) < maxBatch {
				select {
				case r := <-e.queue:
					if !e.lapsed(r) {
						b.reqs = append(b.reqs, r)
					}
				case <-timer.C:
					expired = true
				case <-e.stop:
					expired = true // drain after this batch ships
				}
			}
			if !expired && !timer.Stop() {
				<-timer.C
			}
		} else {
		gather:
			for len(b.reqs) < maxBatch {
				select {
				case r := <-e.queue:
					if !e.lapsed(r) {
						b.reqs = append(b.reqs, r)
					}
				default:
					break gather
				}
			}
		}
		e.batches <- b
	}
}

// policy returns the batching policy in force: the configured constants in
// static mode, the controller's latest decision in adaptive mode.
func (e *Engine) policy() (maxBatch int, maxDelay time.Duration) {
	if !e.adaptive {
		return e.cfg.MaxBatch, e.cfg.MaxDelay
	}
	return int(e.curBatch.Load()), time.Duration(e.curDelayNs.Load())
}

// lapsed sheds a dequeued request that aged past AdmitDeadline while
// queued, answering ErrOverloaded without spending a replica on it. The
// drain path deliberately skips this check: every request accepted before
// Close is answered, deadline or not.
func (e *Engine) lapsed(r *request) bool {
	if e.cfg.AdmitDeadline <= 0 || time.Since(r.enq) <= e.cfg.AdmitDeadline {
		return false
	}
	e.shed.Add(1)
	r.err = ErrOverloaded
	r.resp <- Prediction{}
	return true
}

// drain batches the queue's remnant after stop, with no straggler waits.
func (e *Engine) drain() {
	for {
		var b *batch
	fill:
		for b == nil || len(b.reqs) < e.cfg.MaxBatch {
			select {
			case r := <-e.queue:
				if b == nil {
					b = e.getBatch()
					b.reqs = b.reqs[:0]
				}
				b.reqs = append(b.reqs, r)
			default:
				break fill
			}
		}
		if b == nil {
			return
		}
		e.batches <- b
	}
}

// runBatch executes one batch on a replica: pick the smallest batch class
// that fits it (building the slot on first use in adaptive mode), rebind if
// the model was swapped, stage the samples into the slot's fixed-batch
// input, run the forward-only network, answer every request. Tail rows of a
// partial batch compute over stale staging data and are ignored.
func (e *Engine) runBatch(r *replica, b *batch) {
	start := time.Now()
	ms := e.model.Load()
	ci := 0
	if e.adaptive {
		for e.classes[ci] < len(b.reqs) {
			ci++
		}
	}
	slot := r.slots[ci]
	if slot == nil {
		slot = e.buildSlot(e.classes[ci])
		r.slots[ci] = slot
	}
	if ms != slot.bound {
		slot.net.Bind(ms.w, e.gradScratch)
		if e.quantOn {
			// Quantization happens at publish time: the hot-swapped
			// parameters need a fresh int8 copy and scales before this
			// slot's next forward pass.
			slot.net.QuantizeWeights()
		}
		slot.bound = ms
	}
	xd := slot.x.Data()
	for i, req := range b.reqs {
		copy(xd[i*slot.vol:(i+1)*slot.vol], req.sample)
	}
	slot.net.Predict(slot.x, slot.preds, slot.conf)
	svc := time.Since(start)
	e.service.Record(svc)
	if e.adaptive {
		e.classMeters[ci].sumNs.Add(int64(svc))
		e.classMeters[ci].n.Add(1)
	}

	now := time.Now()
	for i, req := range b.reqs {
		lat := now.Sub(req.enq)
		e.latency.Record(lat)
		if e.adaptive {
			e.winLatency.Record(lat)
		}
		req.resp <- Prediction{Class: slot.preds[i], Confidence: slot.conf[i], Version: ms.version}
	}
	e.requests.Add(int64(len(b.reqs)))
	e.nbatches.Add(1)
	e.putBatch(b)
}

// control is the adaptive batching decision loop: every ControlEvery it
// swaps out the window meters (arrival count, request-latency distribution,
// per-class service sums), asks the controller for the next policy and
// publishes it for the dispatcher. Runs only with SLO set.
func (e *Engine) control() {
	defer e.wg.Done()
	tick := time.NewTicker(e.cfg.ControlEvery)
	defer tick.Stop()
	ctrl := newController(e.cfg.SLO, e.cfg.MaxBatch)
	svc := make([]time.Duration, len(e.classes))
	last := time.Now()

	// Autoscaler state: decisions every scaleEvery control windows, over
	// the arrivals and completions accumulated meanwhile.
	var sc *scaler
	var scArrived, scDone int64
	var scLast time.Time
	ticks := 0
	if e.cfg.AutoScale > 0 {
		sc = newScaler(e.cfg.Replicas, e.cfg.AutoScale)
		scDone = e.requests.Load()
		scLast = last
		// An autoscaling engine owns the process's learner-count division
		// of the worker budget (it is a dedicated serving process).
		tensor.SetActiveLearners(e.cfg.Replicas)
	}
	for {
		var now time.Time
		select {
		case <-e.stop:
			return
		case now = <-tick.C:
		}
		elapsed := now.Sub(last)
		last = now
		if elapsed <= 0 {
			elapsed = e.cfg.ControlEvery
		}
		arrived := e.arrivals.Swap(0)
		count := e.winLatency.Count()
		var p99 time.Duration
		if count > 0 {
			p99 = e.winLatency.Quantile(0.99)
		}
		e.winLatency.Reset()
		for i := range e.classMeters {
			n := e.classMeters[i].n.Swap(0)
			sum := e.classMeters[i].sumNs.Swap(0)
			svc[i] = 0
			if n > 0 {
				svc[i] = time.Duration(sum / n)
			}
		}
		if count > 0 && p99 > e.cfg.SLO {
			e.sloBreaches.Add(1)
		}
		out := ctrl.step(controlInput{
			Rate:         float64(arrived) / elapsed.Seconds(),
			P99:          p99,
			Replicas:     int(e.liveReplicas.Load()),
			QueueDepth:   len(e.queue),
			ClassService: svc,
		})
		e.curBatch.Store(int64(out.MaxBatch))
		e.curDelayNs.Store(int64(out.MaxDelay))

		if sc != nil {
			scArrived += arrived
			if ticks++; ticks%scaleEvery == 0 {
				window := now.Sub(scLast).Seconds()
				scLast = now
				done := e.requests.Load()
				if window > 0 {
					n := sc.step(float64(scArrived)/window, float64(done-scDone)/window)
					e.applyScale(n)
				}
				scArrived, scDone = 0, done
			}
		}
	}
}

// getReq / putReq recycle request objects through a fixed free list (a
// channel, not a sync.Pool: pool entries can be dropped by GC, which would
// re-introduce steady-state allocations). Under burst the list may run dry;
// the fresh allocations feed back into it afterwards.
func (e *Engine) getReq() *request {
	select {
	case r := <-e.freeReqs:
		return r
	default:
		return &request{resp: make(chan Prediction, 1)}
	}
}

func (e *Engine) putReq(r *request) {
	r.sample = nil
	select {
	case e.freeReqs <- r:
	default:
	}
}

func (e *Engine) getBatch() *batch {
	select {
	case b := <-e.freeBatches:
		return b
	default:
		return &batch{reqs: make([]*request, 0, e.cfg.MaxBatch)}
	}
}

func (e *Engine) putBatch(b *batch) {
	b.reqs = b.reqs[:0]
	select {
	case e.freeBatches <- b:
	default:
	}
}
