package serve

import (
	"sync"
	"testing"
	"time"

	"crossbow/internal/nn"
	"crossbow/internal/tensor"
)

// newTestEngine builds an engine over a freshly initialised model.
func newTestEngine(t *testing.T, cfg Config) (*Engine, []float32) {
	t.Helper()
	if cfg.Model == "" {
		cfg.Model = nn.LeNet
	}
	probe := nn.BuildScaled(cfg.Model, 1, tensor.NewRNG(1))
	w := probe.Init(tensor.NewRNG(2))
	cfg.Params = w
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, w
}

// randomSample returns a deterministic pseudo-random sample for the model.
func randomSample(vol int, seed uint64) []float32 {
	r := tensor.NewRNG(seed)
	s := make([]float32, vol)
	for i := range s {
		s[i] = float32(r.NormFloat64())
	}
	return s
}

// TestPredictMatchesDirectForward pins end-to-end correctness: a prediction
// through the queue/batcher/replica path equals running the same sample
// through the network directly, for full and partial batches.
func TestPredictMatchesDirectForward(t *testing.T) {
	const maxBatch = 4
	e, w := newTestEngine(t, Config{Model: nn.LeNet, MaxBatch: maxBatch, MaxDelay: time.Millisecond, Version: 7})
	defer e.Close()

	ref := nn.BuildScaled(nn.LeNet, 1, tensor.NewRNG(9))
	g := make([]float32, ref.ParamSize())
	ref.Bind(w, g)
	x := tensor.New(append([]int{1}, ref.InShape...)...)
	preds := make([]int, 1)
	conf := make([]float32, 1)

	for i := 0; i < 10; i++ {
		sample := randomSample(e.SampleVol(), uint64(100+i))
		got, err := e.Predict(sample)
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		copy(x.Data(), sample)
		ref.Predict(x, preds, conf)
		if got.Class != preds[0] {
			t.Fatalf("sample %d: class %d, direct forward says %d", i, got.Class, preds[0])
		}
		if got.Version != 7 {
			t.Fatalf("sample %d: version %d, want 7", i, got.Version)
		}
	}
}

// TestConcurrentClientsAllBatches hammers the engine from many goroutines
// across several replicas and checks every request is answered correctly
// and the batcher actually coalesces.
func TestConcurrentClientsAllBatches(t *testing.T) {
	const (
		clients  = 16
		perEach  = 25
		maxBatch = 8
	)
	e, w := newTestEngine(t, Config{Model: nn.LeNet, Replicas: 2, MaxBatch: maxBatch, MaxDelay: 2 * time.Millisecond})
	defer e.Close()

	ref := nn.BuildScaled(nn.LeNet, 1, tensor.NewRNG(9))
	ref.Bind(w, make([]float32, ref.ParamSize()))
	x := tensor.New(append([]int{1}, ref.InShape...)...)
	expect := make([]int, clients)
	samples := make([][]float32, clients)
	preds := make([]int, 1)
	for c := range samples {
		samples[c] = randomSample(e.SampleVol(), uint64(500+c))
		copy(x.Data(), samples[c])
		ref.Predict(x, preds, nil)
		expect[c] = preds[0]
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perEach; i++ {
				p, err := e.Predict(samples[c])
				if err != nil {
					errs <- err
					return
				}
				if p.Class != expect[c] {
					t.Errorf("client %d: class %d, want %d", c, p.Class, expect[c])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("client error: %v", err)
	}

	s := e.Stats()
	if s.Requests != clients*perEach {
		t.Fatalf("stats report %d requests, want %d", s.Requests, clients*perEach)
	}
	if s.Batches == 0 || s.Batches > s.Requests {
		t.Fatalf("implausible batch count %d for %d requests", s.Batches, s.Requests)
	}
	if s.BatchOccupancy <= 1 {
		t.Errorf("batch occupancy %.2f — the dispatcher never coalesced under %d concurrent clients",
			s.BatchOccupancy, clients)
	}
	if s.P50Ms <= 0 || s.P99Ms < s.P50Ms || s.MaxMs < s.P99Ms {
		t.Errorf("latency quantiles not ordered: p50=%v p99=%v max=%v", s.P50Ms, s.P99Ms, s.MaxMs)
	}
}

// TestHotModelSwap serves while swapping snapshots and checks every answer
// is tagged with a version that was live at the time, and that the swap
// becomes visible to subsequent predictions.
func TestHotModelSwap(t *testing.T) {
	e, w := newTestEngine(t, Config{Model: nn.LeNet, MaxBatch: 2, MaxDelay: time.Millisecond, Version: 1})
	defer e.Close()
	sample := randomSample(e.SampleVol(), 1)

	if p, err := e.Predict(sample); err != nil || p.Version != 1 {
		t.Fatalf("before swap: %+v, %v (want version 1)", p, err)
	}
	w2 := append([]float32(nil), w...)
	for i := range w2 {
		w2[i] *= 0.5
	}
	if err := e.UpdateModel(w2, 2); err != nil {
		t.Fatalf("UpdateModel: %v", err)
	}
	if p, err := e.Predict(sample); err != nil || p.Version != 2 {
		t.Fatalf("after swap: %+v, %v (want version 2)", p, err)
	}
	if err := e.UpdateModel(w2[:3], 3); err == nil {
		t.Fatal("UpdateModel accepted a truncated parameter vector")
	}
	if s := e.Stats(); s.ModelVersion != 2 || s.ModelSwaps != 1 {
		t.Fatalf("stats version/swaps = %d/%d, want 2/1", s.ModelVersion, s.ModelSwaps)
	}
}

// TestCloseDrainsQueue closes the engine under load: every Predict either
// completes with a real answer or reports ErrClosed; none hang.
func TestCloseDrainsQueue(t *testing.T) {
	e, _ := newTestEngine(t, Config{Model: nn.LeNet, Replicas: 2, MaxBatch: 4, MaxDelay: 500 * time.Microsecond})
	sample := randomSample(e.SampleVol(), 1)

	const clients = 12
	var wg sync.WaitGroup
	var served, closed atomic64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := e.Predict(sample)
				switch err {
				case nil:
					served.add(1)
				case ErrClosed:
					closed.add(1)
					return
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	e.Close()
	wg.Wait()
	if served.load() == 0 {
		t.Error("no request was served before Close")
	}
	if _, err := e.Predict(sample); err != ErrClosed {
		t.Errorf("Predict after Close returned %v, want ErrClosed", err)
	}
	// Close is idempotent.
	e.Close()
}

// TestPredictRejectsWrongSampleSize pins the shape contract: a wrong-sized
// sample must error, never silently classify a hybrid of this request and
// stale staging data.
func TestPredictRejectsWrongSampleSize(t *testing.T) {
	e, _ := newTestEngine(t, Config{Model: nn.LeNet, MaxDelay: 0})
	defer e.Close()
	for _, n := range []int{0, 1, e.SampleVol() - 1, e.SampleVol() + 1} {
		if _, err := e.Predict(make([]float32, n)); err == nil {
			t.Errorf("Predict accepted a %d-element sample (want %d)", n, e.SampleVol())
		}
	}
	if _, err := e.Predict(make([]float32, e.SampleVol())); err != nil {
		t.Fatalf("Predict rejected a correctly sized sample: %v", err)
	}
}

// TestMaxDelayZeroDispatchesImmediately pins the MaxDelay: 0 contract — a
// lone request does not wait for a batch to fill.
func TestMaxDelayZeroDispatchesImmediately(t *testing.T) {
	e, _ := newTestEngine(t, Config{Model: nn.LeNet, MaxBatch: 64, MaxDelay: 0})
	defer e.Close()
	sample := randomSample(e.SampleVol(), 1)
	start := time.Now()
	if _, err := e.Predict(sample); err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("lone request took %v — the dispatcher waited for a full batch", d)
	}
	if s := e.Stats(); s.Batches != 1 || s.Requests != 1 {
		t.Fatalf("stats %d/%d, want 1 batch / 1 request", s.Batches, s.Requests)
	}
}

// atomic64 is a tiny test helper avoiding sync/atomic imports noise.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(n int64) { a.mu.Lock(); a.v += n; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
