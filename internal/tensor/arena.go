package tensor

import "fmt"

// Arena is a contiguous block of float32 memory from which planned buffers
// are carved at fixed offsets (§4.5: one learning task executes against one
// planned allocation instead of per-operator mallocs). Arena is a value type
// wrapping the backing slice, so passing and re-wrapping arenas never
// allocates; the zero value is an empty arena.
//
// The arena itself is policy-free: the memory planner (internal/memplan via
// internal/nn's task planner) decides which sub-range each buffer occupies,
// and Slice hands the range out with a full-slice expression so out-of-plan
// writes past a buffer's end fault instead of corrupting a neighbour.
type Arena struct {
	data []float32
}

// NewArena allocates a zero-filled arena of the given element count.
func NewArena(elems int) Arena {
	if elems < 0 {
		panic(fmt.Sprintf("tensor: NewArena(%d)", elems))
	}
	return Arena{data: make([]float32, elems)}
}

// ArenaOf wraps an existing block (e.g. a pooled buffer) as an arena. The
// slice is used directly, not copied.
func ArenaOf(data []float32) Arena { return Arena{data: data} }

// Len returns the arena's element count.
func (a Arena) Len() int { return len(a.data) }

// Data returns the backing slice.
func (a Arena) Data() []float32 { return a.data }

// Base returns a pointer to the arena's first element (nil when empty), the
// cheap identity test callers use to skip re-binding an already-attached
// arena.
func (a Arena) Base() *float32 {
	if len(a.data) == 0 {
		return nil
	}
	return &a.data[0]
}

// Slice returns the planned sub-buffer [off, off+elems). The result's
// capacity is clipped to its length, so a kernel overrunning one buffer
// cannot silently scribble on the next planned range.
func (a Arena) Slice(off, elems int) []float32 {
	if off < 0 || elems < 0 || off+elems > len(a.data) {
		panic(fmt.Sprintf("tensor: arena slice [%d, %d+%d) outside %d elements",
			off, off, elems, len(a.data)))
	}
	return a.data[off : off+elems : off+elems]
}
