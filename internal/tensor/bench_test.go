package tensor

import (
	"fmt"
	"testing"
)

// Kernel microbenchmarks at the shapes the scaled benchmark models actually
// run: conv-lowered GEMMs (M=OutC, K=InC·KH·KW, N=batch·OutH·OutW for the
// batched path), plus square shapes that stress the micro-kernel, and the
// flat vector ops at model-vector sizes. `cmd/crossbow-bench -exp kernels`
// runs the same shapes outside the test harness and records BENCH_kernels.json.

type gemmShape struct {
	name    string
	m, k, n int
}

// gemmShapes: resnet32-s1/s2/s3 are the three ResNet-32 stages' batched
// forward GEMMs at b=16; dense-bwd is LeNet's classifier weight gradient;
// sq128/sq256 stress blocking on square operands.
var gemmShapes = []gemmShape{
	{"resnet32-s1", 8, 72, 1024},
	{"resnet32-s2", 16, 144, 256},
	{"resnet32-s3", 32, 288, 64},
	{"dense-bwd", 32, 144, 16},
	{"sq128", 128, 128, 128},
	{"sq256", 256, 256, 256},
}

func benchGemm(b *testing.B, f func(a []float32, m, k int, bm []float32, n int, c []float32), m, k, n int) {
	r := NewRNG(1)
	a := randSlice(r, m*k)
	bm := randSlice(r, k*n)
	c := make([]float32, m*n)
	b.SetBytes(int64(2 * m * k * n * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(a, m, k, bm, n, c)
	}
}

func BenchmarkGemm(b *testing.B) {
	for _, s := range gemmShapes {
		b.Run(s.name, func(b *testing.B) {
			benchGemm(b, func(a []float32, m, k int, bm []float32, n int, c []float32) {
				Gemm(1, a, m, k, bm, n, 0, c)
			}, s.m, s.k, s.n)
		})
	}
}

func BenchmarkGemmTA(b *testing.B) {
	for _, s := range gemmShapes {
		b.Run(s.name, func(b *testing.B) {
			// A stored k×m, logical Aᵀ.
			benchGemm(b, func(a []float32, m, k int, bm []float32, n int, c []float32) {
				GemmTA(1, a, k, m, bm, n, 0, c)
			}, s.m, s.k, s.n)
		})
	}
}

func BenchmarkGemmTB(b *testing.B) {
	for _, s := range gemmShapes {
		b.Run(s.name, func(b *testing.B) {
			r := NewRNG(1)
			a := randSlice(r, s.m*s.k)
			bm := randSlice(r, s.n*s.k) // stored n×k, logical Bᵀ
			c := make([]float32, s.m*s.n)
			b.SetBytes(int64(2 * s.m * s.k * s.n * 4))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				GemmTB(1, a, s.m, s.k, bm, s.n, 0, c)
			}
		})
	}
}

// convGeoms are the ResNet-32 stage geometries at the scaled 8×8 input.
var convGeoms = []ConvGeom{
	{InC: 8, InH: 8, InW: 8, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
	{InC: 16, InH: 4, InW: 4, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
	{InC: 32, InH: 2, InW: 2, OutC: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
}

func BenchmarkIm2col(b *testing.B) {
	for _, g := range convGeoms {
		b.Run(fmt.Sprintf("c%dh%d", g.InC, g.InH), func(b *testing.B) {
			r := NewRNG(1)
			img := randSlice(r, g.InC*g.InH*g.InW)
			col := make([]float32, g.ColRows()*g.ColCols())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Im2col(g, img, col)
			}
		})
	}
}

func BenchmarkIm2colBatch(b *testing.B) {
	const batch = 16
	for _, g := range convGeoms {
		b.Run(fmt.Sprintf("c%dh%db%d", g.InC, g.InH, batch), func(b *testing.B) {
			r := NewRNG(1)
			x := randSlice(r, batch*g.InVol())
			col := make([]float32, g.ColRows()*batch*g.ColCols())
			Im2colBatch(g, batch, x, col, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Im2colBatch(g, batch, x, col, true)
			}
		})
	}
}

func BenchmarkCol2imBatch(b *testing.B) {
	const batch = 16
	for _, g := range convGeoms {
		b.Run(fmt.Sprintf("c%dh%db%d", g.InC, g.InH, batch), func(b *testing.B) {
			r := NewRNG(1)
			col := randSlice(r, g.ColRows()*batch*g.ColCols())
			x := make([]float32, batch*g.InVol())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Col2imBatch(g, batch, col, x)
			}
		})
	}
}

func BenchmarkCol2im(b *testing.B) {
	for _, g := range convGeoms {
		b.Run(fmt.Sprintf("c%dh%d", g.InC, g.InH), func(b *testing.B) {
			r := NewRNG(1)
			col := randSlice(r, g.ColRows()*g.ColCols())
			img := make([]float32, g.InC*g.InH*g.InW)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Col2im(g, col, img)
			}
		})
	}
}

// Model-vector sizes for the flat ops: the scaled ResNet-32 is ~20k
// parameters; 500k matches the optimiser-path benchmark in the root package.
var vecSizes = []int{20_000, 500_000}

func BenchmarkAxpy(b *testing.B) {
	for _, n := range vecSizes {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			r := NewRNG(1)
			x := randSlice(r, n)
			y := randSlice(r, n)
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Axpy(0.5, x, y)
			}
		})
	}
}

// benchSink keeps pure-function results observable so the inliner cannot
// hollow out the benchmark loop.
var benchSink float64

func BenchmarkDot(b *testing.B) {
	for _, n := range vecSizes {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			r := NewRNG(1)
			x := randSlice(r, n)
			y := randSlice(r, n)
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink = Dot(x, y)
			}
		})
	}
}
