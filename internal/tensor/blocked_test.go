package tensor

import (
	"math"
	"testing"
)

// Property tests pinning the blocked/parallel/SIMD kernels against the
// scalar reference kernels (gemm_ref.go). The determinism contract they
// verify, per DESIGN.md §8:
//
//   - Gemm and GemmTA are bit-identical to the reference for every alpha,
//     beta and shape: each output element accumulates in ascending-p order
//     with the accumulator preloaded from beta-scaled C, exactly like the
//     reference loops.
//   - GemmTB is bit-identical while k ≤ gemmKC (every shape the scaled
//     models produce). For k > gemmKC the per-panel `c += alpha*Σ`
//     regrouping can differ from the reference's single sum in the last
//     bits, bounded by standard forward-error analysis — asserted with an
//     explicit error bound rather than equality.
//   - Results are bit-identical at any worker count and between the SIMD
//     and pure-Go micro-kernels.

// gemmCase enumerates odd shapes, panel-crossing k, alpha/beta variants.
type gemmCase struct {
	m, k, n     int
	alpha, beta float32
}

func gemmCases() []gemmCase {
	shapes := [][3]int{
		{1, 1, 1}, {1, 7, 3}, {3, 2, 9}, {4, 8, 8}, {5, 5, 5},
		{7, 13, 11}, {8, 72, 33}, {9, 300, 17}, {13, 517, 21},
		{16, 144, 64}, {31, 3, 31}, {33, 260, 40}, {64, 64, 64},
	}
	var cases []gemmCase
	for _, s := range shapes {
		for _, ab := range [][2]float32{{1, 0}, {1, 1}, {0.5, 0.7}, {1.3, 1}, {0, 0.5}} {
			cases = append(cases, gemmCase{s[0], s[1], s[2], ab[0], ab[1]})
		}
	}
	return cases
}

func bitsEqual(t *testing.T, name string, got, want []float32) {
	t.Helper()
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d differs: got %v (%#x) want %v (%#x)",
				name, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

func TestGemmBitIdenticalToReference(t *testing.T) {
	r := NewRNG(101)
	for _, tc := range gemmCases() {
		a := randSlice(r, tc.m*tc.k)
		b := randSlice(r, tc.k*tc.n)
		c0 := randSlice(r, tc.m*tc.n)
		got := append([]float32(nil), c0...)
		want := append([]float32(nil), c0...)
		Gemm(tc.alpha, a, tc.m, tc.k, b, tc.n, tc.beta, got)
		gemmRef(tc.alpha, a, tc.m, tc.k, b, tc.n, tc.beta, want)
		bitsEqual(t, "Gemm", got, want)
	}
}

func TestGemmTABitIdenticalToReference(t *testing.T) {
	r := NewRNG(103)
	for _, tc := range gemmCases() {
		a := randSlice(r, tc.k*tc.m) // stored k×m
		b := randSlice(r, tc.k*tc.n)
		c0 := randSlice(r, tc.m*tc.n)
		got := append([]float32(nil), c0...)
		want := append([]float32(nil), c0...)
		GemmTA(tc.alpha, a, tc.k, tc.m, b, tc.n, tc.beta, got)
		gemmTARef(tc.alpha, a, tc.k, tc.m, b, tc.n, tc.beta, want)
		bitsEqual(t, "GemmTA", got, want)
	}
}

func TestGemmTBReference(t *testing.T) {
	r := NewRNG(107)
	for _, tc := range gemmCases() {
		a := randSlice(r, tc.m*tc.k)
		b := randSlice(r, tc.n*tc.k) // stored n×k
		c0 := randSlice(r, tc.m*tc.n)
		got := append([]float32(nil), c0...)
		want := append([]float32(nil), c0...)
		GemmTB(tc.alpha, a, tc.m, tc.k, b, tc.n, tc.beta, got)
		gemmTBRef(tc.alpha, a, tc.m, tc.k, b, tc.n, tc.beta, want)
		if tc.k <= gemmKC {
			bitsEqual(t, "GemmTB", got, want)
			continue
		}
		// k crosses a panel boundary: summation regroups. Any two orderings
		// of Σ alpha·a·b + beta·c differ by at most 2(k+2)·eps·(Σ|alpha·a·b|
		// + |beta·c|).
		const eps = 1.0 / (1 << 24)
		for i := 0; i < tc.m; i++ {
			for j := 0; j < tc.n; j++ {
				var mag float64
				for p := 0; p < tc.k; p++ {
					mag += math.Abs(float64(tc.alpha) * float64(a[i*tc.k+p]) * float64(b[j*tc.k+p]))
				}
				mag += math.Abs(float64(tc.beta) * float64(c0[i*tc.n+j]))
				bound := 2 * float64(tc.k+2) * eps * mag
				d := math.Abs(float64(got[i*tc.n+j]) - float64(want[i*tc.n+j]))
				if d > bound {
					t.Fatalf("GemmTB k=%d element (%d,%d): |%v-%v| = %g exceeds bound %g",
						tc.k, i, j, got[i*tc.n+j], want[i*tc.n+j], d, bound)
				}
			}
		}
	}
}

// TestGemmSIMDMatchesGeneric pins the assembly micro-kernels against the
// pure-Go ones bit-for-bit (no-op on architectures without assembly).
func TestGemmSIMDMatchesGeneric(t *testing.T) {
	r := NewRNG(109)
	for _, tc := range gemmCases() {
		a := randSlice(r, tc.m*tc.k)
		at := randSlice(r, tc.k*tc.m)
		b := randSlice(r, tc.k*tc.n)
		bt := randSlice(r, tc.n*tc.k)
		c0 := randSlice(r, tc.m*tc.n)

		run := func() [3][]float32 {
			var out [3][]float32
			for v := range out {
				out[v] = append([]float32(nil), c0...)
			}
			Gemm(tc.alpha, a, tc.m, tc.k, b, tc.n, tc.beta, out[0])
			GemmTA(tc.alpha, at, tc.k, tc.m, b, tc.n, tc.beta, out[1])
			GemmTB(tc.alpha, a, tc.m, tc.k, bt, tc.n, tc.beta, out[2])
			return out
		}
		simd := run()
		prevAVX := setGemmAVX2(false) // SSE2 kernels (no-op off amd64)
		sse := run()
		setGemmAVX2(prevAVX)
		prev := setGemmASM(false)
		generic := run()
		setGemmASM(prev)
		for v, name := range []string{"Gemm", "GemmTA", "GemmTB"} {
			bitsEqual(t, name+" simd-vs-generic", simd[v], generic[v])
			bitsEqual(t, name+" sse-vs-generic", sse[v], generic[v])
		}
	}
}

// TestGemmParallelBitIdentical verifies the worker-count independence half
// of the determinism contract: disjoint output bands at any parallelism
// level produce the same bits.
func TestGemmParallelBitIdentical(t *testing.T) {
	r := NewRNG(113)
	m, k, n := 67, 130, 259 // odd everything, large enough to split
	a := randSlice(r, m*k)
	b := randSlice(r, k*n)
	c0 := randSlice(r, m*n)

	prev := Parallelism()
	defer SetParallelism(prev)

	var want []float32
	for _, workers := range []int{1, 2, 4, 13} {
		SetParallelism(workers)
		got := append([]float32(nil), c0...)
		Gemm(1.1, a, m, k, b, n, 0.9, got)
		if want == nil {
			want = got
			continue
		}
		bitsEqual(t, "Gemm parallel", got, want)
	}
}

func TestParallelForPartition(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	for _, workers := range []int{1, 3, 8} {
		SetParallelism(workers)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, grain := range []int{1, 10, 4096} {
				var mu = make([]int32, n)
				done := make(chan struct{})
				go func() {
					defer close(done)
					ParallelFor(n, grain, func(lo, hi int) {
						// Nested use must not deadlock.
						ParallelFor(hi-lo, 8, func(l2, h2 int) {
							for i := lo + l2; i < lo+h2; i++ {
								mu[i]++
							}
						})
					})
				}()
				<-done
				for i, v := range mu {
					if v != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d covered %d times", workers, n, grain, i, v)
					}
				}
			}
		}
	}
}

// TestIm2colBatchMatchesPerSample: the batched lowering is the per-sample
// kernel at a column offset — bit-identical, including the skipPad
// steady-state path that reuses a buffer's padding zeros.
func TestIm2colBatchMatchesPerSample(t *testing.T) {
	geoms := []ConvGeom{
		{InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 2, InH: 7, InW: 9, OutC: 3, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{InC: 2, InH: 6, InW: 6, OutC: 5, KH: 1, KW: 1, StrideH: 1, StrideW: 1, PadH: 0, PadW: 0},
		{InC: 1, InH: 5, InW: 4, OutC: 1, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2},
		{InC: 2, InH: 8, InW: 8, OutC: 2, KH: 1, KW: 1, StrideH: 2, StrideW: 2, PadH: 0, PadW: 0},
	}
	r := NewRNG(127)
	const batch = 5
	for gi, g := range geoms {
		s := g.ColCols()
		x := randSlice(r, batch*g.InVol())
		col := make([]float32, g.ColRows()*batch*s)
		Im2colBatch(g, batch, x, col, false)

		want := make([]float32, g.ColRows()*s)
		for n := 0; n < batch; n++ {
			Im2col(g, x[n*g.InVol():(n+1)*g.InVol()], want)
			for row := 0; row < g.ColRows(); row++ {
				for i := 0; i < s; i++ {
					got := col[row*batch*s+n*s+i]
					if math.Float32bits(got) != math.Float32bits(want[row*s+i]) {
						t.Fatalf("geom %d sample %d row %d col %d: %v != %v", gi, n, row, i, got, want[row*s+i])
					}
				}
			}
		}

		// Steady state: new data into the same buffer with skipPad.
		x2 := randSlice(r, batch*g.InVol())
		Im2colBatch(g, batch, x2, col, true)
		fresh := make([]float32, len(col))
		Im2colBatch(g, batch, x2, fresh, false)
		bitsEqual(t, "Im2colBatch skipPad", col, fresh)
	}
}

func TestCol2imBatchMatchesPerSample(t *testing.T) {
	geoms := []ConvGeom{
		{InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 2, InH: 7, InW: 9, OutC: 3, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{InC: 2, InH: 6, InW: 6, OutC: 5, KH: 1, KW: 1, StrideH: 1, StrideW: 1, PadH: 0, PadW: 0},
	}
	r := NewRNG(131)
	const batch = 4
	for gi, g := range geoms {
		s := g.ColCols()
		col := randSlice(r, g.ColRows()*batch*s)
		x := make([]float32, batch*g.InVol())
		Col2imBatch(g, batch, col, x)

		sample := make([]float32, g.ColRows()*s)
		want := make([]float32, g.InVol())
		for n := 0; n < batch; n++ {
			for row := 0; row < g.ColRows(); row++ {
				copy(sample[row*s:(row+1)*s], col[row*batch*s+n*s:row*batch*s+(n+1)*s])
			}
			for i := range want {
				want[i] = 0
			}
			Col2im(g, sample, want)
			got := x[n*g.InVol() : (n+1)*g.InVol()]
			bitsEqual(t, "Col2imBatch", got, want)
			_ = gi
		}
	}
}
