package tensor

// Convolution support: im2col/col2im lowering so that Conv2D forward and
// both backward passes reduce to GEMM. Layout conventions are NCHW for
// activations and OIHW for filters, matching the paper's cuDNN substrate.
//
// Two granularities are provided. The per-sample kernels (Im2col, Col2im)
// are the original reference lowering; the batched kernels (Im2colBatch,
// Col2imBatch) expand a whole mini-batch into one ColRows × batch·S column
// matrix so each conv layer runs a single large GEMM per pass instead of
// batch small ones. Sample n owns columns [n·S, (n+1)·S), so the batched
// kernels are exactly the per-sample kernels applied at a column offset —
// bit-identical output, any worker count.

// ConvGeom describes a 2-D convolution's geometry.
type ConvGeom struct {
	InC, InH, InW    int // input channels, height, width
	OutC             int // output channels
	KH, KW           int // kernel height, width
	StrideH, StrideW int
	PadH, PadW       int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// ColRows returns the number of rows of the im2col matrix (one per input
// patch element): InC*KH*KW.
func (g ConvGeom) ColRows() int { return g.InC * g.KH * g.KW }

// ColCols returns the number of columns of the im2col matrix (one per output
// spatial position): OutH*OutW.
func (g ConvGeom) ColCols() int { return g.OutH() * g.OutW() }

// InVol returns the per-sample input volume InC*InH*InW.
func (g ConvGeom) InVol() int { return g.InC * g.InH * g.InW }

// OutVol returns the per-sample output volume OutC*OutH*OutW.
func (g ConvGeom) OutVol() int { return g.OutC * g.OutH() * g.OutW() }

// Im2col expands one image (InC×InH×InW, flat) into the column matrix col
// (ColRows×ColCols, flat) so that filterMatrix(OutC×ColRows) * col yields the
// convolution output (OutC×OutH*OutW).
func Im2col(g ConvGeom, img, col []float32) {
	if len(img) < g.InVol() || len(col) < g.ColRows()*g.ColCols() {
		panic("tensor: Im2col buffer too small")
	}
	im2colStrided(g, img, col, g.ColCols(), 0)
}

// Im2colBatch expands a whole NCHW mini-batch x (batch×InC×InH×InW, flat)
// into one column matrix col of shape ColRows × batch·ColCols, with sample
// n occupying columns [n·ColCols, (n+1)·ColCols).
//
// skipPad declares that col already holds this geometry's padding zeros
// (from a previous Im2colBatch over the same buffer): the zero positions
// are data-independent, so steady-state calls write only the interior
// spans. Pass false the first time a buffer is used.
func Im2colBatch(g ConvGeom, batch int, x, col []float32, skipPad bool) {
	s, inVol := g.ColCols(), g.InVol()
	if len(x) < batch*inVol || len(col) < g.ColRows()*batch*s {
		panic("tensor: Im2colBatch buffer too small")
	}
	ld := batch * s
	if Parallelism() == 1 {
		// Serial fast path: same loop, no closure materialised — the
		// single-worker hot path stays allocation-free.
		for n := 0; n < batch; n++ {
			if skipPad {
				im2colInterior(g, x[n*inVol:(n+1)*inVol], col, ld, n*s)
			} else {
				im2colStrided(g, x[n*inVol:(n+1)*inVol], col, ld, n*s)
			}
		}
		return
	}
	grain := 1 + (1 << 14 / max(1, g.ColRows()*s))
	ParallelFor(batch, grain, func(lo, hi int) {
		for n := lo; n < hi; n++ {
			if skipPad {
				im2colInterior(g, x[n*inVol:(n+1)*inVol], col, ld, n*s)
			} else {
				im2colStrided(g, x[n*inVol:(n+1)*inVol], col, ld, n*s)
			}
		}
	})
}

// im2colInterior writes only the in-bounds spans of one sample's column
// block, assuming the padding zeros are already in place.
func im2colInterior(g ConvGeom, img, col []float32, ld, off int) {
	outH, outW := g.OutH(), g.OutW()
	var owbBuf owBoundsBuf
	owb := owbBuf[:]
	if 2*g.KW > len(owb) {
		owb = make([]int, 2*g.KW)
	}
	owBounds(g, owb)
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := (c*g.KH+kh)*g.KW + kw
				dst := col[row*ld+off : row*ld+off+outH*outW]
				owLo, owHi := owb[2*kw], owb[2*kw+1]
				w := owHi - owLo
				if w <= 0 {
					continue
				}
				if g.StrideW == 1 && g.StrideH == 1 && owLo == 0 && owHi == outW && outW == g.InW {
					// Full-width stride-1 rows (kw == PadW): the valid
					// vertical block is contiguous in src and dst.
					ohLo, ohHi := 0, outH
					if g.PadH > kh {
						ohLo = g.PadH - kh
					}
					if t := g.InH + g.PadH - kh; t < ohHi {
						ohHi = t
					}
					if ohLo < ohHi {
						src0 := chOff + (ohLo+kh-g.PadH)*g.InW
						copy(dst[ohLo*outW:ohHi*outW], img[src0:src0+(ohHi-ohLo)*outW])
					}
					continue
				}
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						continue
					}
					rowOff := chOff + ih*g.InW
					di := oh * outW
					if g.StrideW == 1 {
						lo := owLo - g.PadW + kw
						d := dst[di+owLo : di+owLo+w]
						s := img[rowOff+lo : rowOff+lo+w]
						if w < 16 {
							for i := range d {
								d[i] = s[i]
							}
						} else {
							copy(d, s)
						}
					} else {
						iw := owLo*g.StrideW - g.PadW + kw
						for ow := owLo; ow < owHi; ow++ {
							dst[di+ow] = img[rowOff+iw]
							iw += g.StrideW
						}
					}
				}
			}
		}
	}
}

// owBoundsBuf is the stack scratch for owBounds; kernels up to 8 wide (all
// the benchmark models) avoid any allocation.
type owBoundsBuf [16]int

// owBounds fills owb with owRange for every kw of the geometry (flattened
// [owLo₀, owHi₀, owLo₁, …]) so the division-heavy bounds run once per kernel
// call, not once per channel row. owb needs 2·KW entries.
func owBounds(g ConvGeom, owb []int) {
	for kw := 0; kw < g.KW; kw++ {
		owb[2*kw], owb[2*kw+1] = owRange(g.OutW(), g.StrideW, g.PadW, kw, g.InW)
	}
}

// owRange returns the [owLo, owHi) range of output columns whose input
// column iw = ow*strideW - padW + kw lands inside [0, inW).
func owRange(outW, strideW, padW, kw, inW int) (int, int) {
	owLo := 0
	if padW > kw {
		owLo = (padW - kw + strideW - 1) / strideW
	}
	owHi := 0
	if t := inW + padW - kw - 1; t >= 0 {
		owHi = t/strideW + 1
	}
	if owHi > outW {
		owHi = outW
	}
	if owLo > owHi {
		owLo = owHi
	}
	return owLo, owHi
}

// im2colStrided writes one sample's column block: row r of the patch matrix
// lands at col[r*ld+off : r*ld+off+ColCols]. Horizontal bounds are hoisted
// out of the inner loop, so interior spans run branch-free (contiguous copy
// at stride 1).
func im2colStrided(g ConvGeom, img, col []float32, ld, off int) {
	outH, outW := g.OutH(), g.OutW()
	var owbBuf owBoundsBuf
	owb := owbBuf[:]
	if 2*g.KW > len(owb) {
		owb = make([]int, 2*g.KW)
	}
	owBounds(g, owb)
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := (c*g.KH+kh)*g.KW + kw
				dst := col[row*ld+off : row*ld+off+outH*outW]
				owLo, owHi := owb[2*kw], owb[2*kw+1]
				di := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						for i := di; i < di+outW; i++ {
							dst[i] = 0
						}
						di += outW
						continue
					}
					rowOff := chOff + ih*g.InW
					for i := di; i < di+owLo; i++ {
						dst[i] = 0
					}
					if g.StrideW == 1 {
						lo := owLo - g.PadW + kw
						w := owHi - owLo
						d := dst[di+owLo : di+owLo+w]
						s := img[rowOff+lo : rowOff+lo+w]
						if w < 16 {
							// Tiny spans: an inline loop beats memmove's
							// call overhead.
							for i := range d {
								d[i] = s[i]
							}
						} else {
							copy(d, s)
						}
					} else {
						iw := owLo*g.StrideW - g.PadW + kw
						for ow := owLo; ow < owHi; ow++ {
							dst[di+ow] = img[rowOff+iw]
							iw += g.StrideW
						}
					}
					for i := di + owHi; i < di+outW; i++ {
						dst[i] = 0
					}
					di += outW
				}
			}
		}
	}
}

// Col2im scatters the column matrix back into an image, accumulating
// overlapping patch contributions. It is the adjoint of Im2col and is used
// to propagate gradients to the convolution input. img must be zeroed (or
// hold a partial accumulation) on entry.
func Col2im(g ConvGeom, col, img []float32) {
	if len(img) < g.InVol() || len(col) < g.ColRows()*g.ColCols() {
		panic("tensor: Col2im buffer too small")
	}
	col2imStrided(g, col, g.ColCols(), 0, img)
}

// Col2imBatch scatters the batched column matrix col (ColRows × batch·ColCols,
// laid out as produced by Im2colBatch) into the NCHW batch x, zeroing x
// first. It is the adjoint of Im2colBatch.
func Col2imBatch(g ConvGeom, batch int, col, x []float32) {
	s, inVol := g.ColCols(), g.InVol()
	if len(x) < batch*inVol || len(col) < g.ColRows()*batch*s {
		panic("tensor: Col2imBatch buffer too small")
	}
	ld := batch * s
	if Parallelism() == 1 {
		// Serial fast path: no closure (see Im2colBatch).
		for n := 0; n < batch; n++ {
			dst := x[n*inVol : (n+1)*inVol]
			for i := range dst {
				dst[i] = 0
			}
			col2imStrided(g, col, ld, n*s, dst)
		}
		return
	}
	grain := 1 + (1 << 14 / max(1, g.ColRows()*s))
	ParallelFor(batch, grain, func(lo, hi int) {
		for n := lo; n < hi; n++ {
			dst := x[n*inVol : (n+1)*inVol]
			for i := range dst {
				dst[i] = 0
			}
			col2imStrided(g, col, ld, n*s, dst)
		}
	})
}

// col2imStrided accumulates one sample's column block (row r at
// col[r*ld+off]) into img, with horizontal bounds hoisted like
// im2colStrided's.
func col2imStrided(g ConvGeom, col []float32, ld, off int, img []float32) {
	outH, outW := g.OutH(), g.OutW()
	var owbBuf owBoundsBuf
	owb := owbBuf[:]
	if 2*g.KW > len(owb) {
		owb = make([]int, 2*g.KW)
	}
	owBounds(g, owb)
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := (c*g.KH+kh)*g.KW + kw
				src := col[row*ld+off : row*ld+off+outH*outW]
				owLo, owHi := owb[2*kw], owb[2*kw+1]
				if g.StrideW == 1 && g.StrideH == 1 && owLo == 0 && owHi == outW && outW == g.InW {
					// Full-width stride-1 rows: one contiguous accumulate
					// over the valid vertical block. Each img element still
					// receives exactly one term from this (c,kh,kw) row in
					// the same position order, so accumulation order — and
					// therefore bits — are unchanged.
					ohLo, ohHi := 0, outH
					if g.PadH > kh {
						ohLo = g.PadH - kh
					}
					if t := g.InH + g.PadH - kh; t < ohHi {
						ohHi = t
					}
					if ohLo < ohHi {
						src0 := chOff + (ohLo+kh-g.PadH)*g.InW
						AccumAdd(img[src0:src0+(ohHi-ohLo)*outW], src[ohLo*outW:ohHi*outW])
					}
					continue
				}
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						continue
					}
					rowOff := chOff + ih*g.InW
					si := oh * outW
					if g.StrideW == 1 {
						lo := owLo - g.PadW + kw
						AccumAdd(img[rowOff+lo:rowOff+lo+owHi-owLo], src[si+owLo:si+owHi])
					} else {
						iw := owLo*g.StrideW - g.PadW + kw
						for ow := owLo; ow < owHi; ow++ {
							img[rowOff+iw] += src[si+ow]
							iw += g.StrideW
						}
					}
				}
			}
		}
	}
}
