package tensor

// Convolution support: im2col/col2im lowering so that Conv2D forward and
// both backward passes reduce to GEMM. Layout conventions are NCHW for
// activations and OIHW for filters, matching the paper's cuDNN substrate.

// ConvGeom describes a 2-D convolution's geometry.
type ConvGeom struct {
	InC, InH, InW    int // input channels, height, width
	OutC             int // output channels
	KH, KW           int // kernel height, width
	StrideH, StrideW int
	PadH, PadW       int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// ColRows returns the number of rows of the im2col matrix (one per input
// patch element): InC*KH*KW.
func (g ConvGeom) ColRows() int { return g.InC * g.KH * g.KW }

// ColCols returns the number of columns of the im2col matrix (one per output
// spatial position): OutH*OutW.
func (g ConvGeom) ColCols() int { return g.OutH() * g.OutW() }

// Im2col expands one image (InC×InH×InW, flat) into the column matrix col
// (ColRows×ColCols, flat) so that filterMatrix(OutC×ColRows) * col yields the
// convolution output (OutC×OutH*OutW).
func Im2col(g ConvGeom, img, col []float32) {
	outH, outW := g.OutH(), g.OutW()
	if len(img) < g.InC*g.InH*g.InW || len(col) < g.ColRows()*g.ColCols() {
		panic("tensor: Im2col buffer too small")
	}
	cols := outH * outW
	row := 0
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				dst := col[row*cols : row*cols+cols]
				row++
				di := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < outW; ow++ {
							dst[di] = 0
							di++
						}
						continue
					}
					rowOff := chOff + ih*g.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							dst[di] = 0
						} else {
							dst[di] = img[rowOff+iw]
						}
						di++
					}
				}
			}
		}
	}
}

// Col2im scatters the column matrix back into an image, accumulating
// overlapping patch contributions. It is the adjoint of Im2col and is used
// to propagate gradients to the convolution input. img must be zeroed (or
// hold a partial accumulation) on entry.
func Col2im(g ConvGeom, col, img []float32) {
	outH, outW := g.OutH(), g.OutW()
	if len(img) < g.InC*g.InH*g.InW || len(col) < g.ColRows()*g.ColCols() {
		panic("tensor: Col2im buffer too small")
	}
	cols := outH * outW
	row := 0
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				src := col[row*cols : row*cols+cols]
				row++
				si := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						si += outW
						continue
					}
					rowOff := chOff + ih*g.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw >= 0 && iw < g.InW {
							img[rowOff+iw] += src[si]
						}
						si++
					}
				}
			}
		}
	}
}
