package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveConv computes a direct 2-D convolution of img (InC×InH×InW) with
// filters (OutC×InC×KH×KW), returning OutC×OutH×OutW.
func naiveConv(g ConvGeom, img, filters []float32) []float32 {
	outH, outW := g.OutH(), g.OutW()
	out := make([]float32, g.OutC*outH*outW)
	for oc := 0; oc < g.OutC; oc++ {
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				var s float32
				for ic := 0; ic < g.InC; ic++ {
					for kh := 0; kh < g.KH; kh++ {
						for kw := 0; kw < g.KW; kw++ {
							ih := oh*g.StrideH - g.PadH + kh
							iw := ow*g.StrideW - g.PadW + kw
							if ih < 0 || ih >= g.InH || iw < 0 || iw >= g.InW {
								continue
							}
							fv := filters[((oc*g.InC+ic)*g.KH+kh)*g.KW+kw]
							iv := img[(ic*g.InH+ih)*g.InW+iw]
							s += fv * iv
						}
					}
				}
				out[(oc*outH+oh)*outW+ow] = s
			}
		}
	}
	return out
}

func TestIm2colGemmMatchesNaiveConv(t *testing.T) {
	geoms := []ConvGeom{
		{InC: 1, InH: 5, InW: 5, OutC: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 0, PadW: 0},
		{InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 2, InH: 7, InW: 9, OutC: 3, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{InC: 2, InH: 6, InW: 6, OutC: 5, KH: 1, KW: 1, StrideH: 1, StrideW: 1, PadH: 0, PadW: 0},
		{InC: 1, InH: 4, InW: 4, OutC: 1, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2},
	}
	r := NewRNG(31)
	for gi, g := range geoms {
		img := randSlice(r, g.InC*g.InH*g.InW)
		filters := randSlice(r, g.OutC*g.InC*g.KH*g.KW)
		col := make([]float32, g.ColRows()*g.ColCols())
		Im2col(g, img, col)
		got := make([]float32, g.OutC*g.ColCols())
		Gemm(1, filters, g.OutC, g.ColRows(), col, g.ColCols(), 0, got)
		want := naiveConv(g, img, filters)
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-4 {
				t.Fatalf("geom %d element %d: got %v want %v", gi, i, got[i], want[i])
			}
		}
	}
}

// TestCol2imIsAdjoint verifies <Im2col(x), y> == <x, Col2im(y)> — the
// defining property of an adjoint pair, which is exactly what gradient
// propagation requires.
func TestCol2imIsAdjoint(t *testing.T) {
	g := ConvGeom{InC: 2, InH: 6, InW: 5, OutC: 1, KH: 3, KW: 3, StrideH: 2, StrideW: 1, PadH: 1, PadW: 1}
	r := NewRNG(37)
	x := randSlice(r, g.InC*g.InH*g.InW)
	y := randSlice(r, g.ColRows()*g.ColCols())

	colX := make([]float32, g.ColRows()*g.ColCols())
	Im2col(g, x, colX)
	lhs := Dot(colX, y)

	imgY := make([]float32, g.InC*g.InH*g.InW)
	Col2im(g, y, imgY)
	rhs := Dot(x, imgY)

	if math.Abs(lhs-rhs) > 1e-3*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

// Property: the adjoint identity holds for random geometries.
func TestCol2imAdjointProperty(t *testing.T) {
	f := func(seed uint64, hc, wc, kc, sc uint8) bool {
		g := ConvGeom{
			InC: 1 + int(hc%2), InH: 4 + int(hc%4), InW: 4 + int(wc%4),
			OutC: 1, KH: 1 + int(kc%3), KW: 1 + int(kc%3),
			StrideH: 1 + int(sc%2), StrideW: 1 + int(sc%2),
			PadH: int(kc % 2), PadW: int(kc % 2),
		}
		if g.OutH() <= 0 || g.OutW() <= 0 {
			return true
		}
		r := NewRNG(seed)
		x := randSlice(r, g.InC*g.InH*g.InW)
		y := randSlice(r, g.ColRows()*g.ColCols())
		colX := make([]float32, g.ColRows()*g.ColCols())
		Im2col(g, x, colX)
		imgY := make([]float32, g.InC*g.InH*g.InW)
		Col2im(g, y, imgY)
		lhs, rhs := Dot(colX, y), Dot(x, imgY)
		return math.Abs(lhs-rhs) <= 1e-2*math.Max(1, math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConvGeomDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if g.OutH() != 32 || g.OutW() != 32 {
		t.Fatalf("same-padding conv output %dx%d, want 32x32", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 3, InH: 32, InW: 32, OutC: 16, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	if g2.OutH() != 16 || g2.OutW() != 16 {
		t.Fatalf("strided conv output %dx%d, want 16x16", g2.OutH(), g2.OutW())
	}
	if g.ColRows() != 27 {
		t.Fatalf("ColRows = %d, want 27", g.ColRows())
	}
	if g.ColCols() != 1024 {
		t.Fatalf("ColCols = %d, want 1024", g.ColCols())
	}
}
