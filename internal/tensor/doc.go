// Package tensor provides the dense float32 tensor type and the numeric
// kernels — blocked, register-tiled GEMM with SIMD micro-kernels, batched
// im2col convolution lowering, pooling and element-wise vector ops — that
// the layer library in internal/nn is built on (DESIGN.md §8).
//
// Tensors are row-major and backed by a flat []float32; Arena carves many
// buffers out of one block for the §4.5 memory planner. The package is
// deliberately allocation-conscious: kernels write into caller-provided
// buffers, so steady-state training and serving loops perform no
// per-iteration allocation. Intra-op parallelism comes from a shared,
// bounded worker pool (ParallelFor) sized by a process-wide budget that
// concurrent learners divide between themselves; every kernel partitions
// output ranges disjointly, so results are bit-identical at any worker
// count — the determinism contract DESIGN.md §8 documents and the
// determinism tests pin.
package tensor
