// Package tensor provides the dense float32 tensor type and the numeric
// kernels — blocked, register-tiled GEMM with SIMD micro-kernels, batched
// im2col convolution lowering, pooling and element-wise vector ops — that
// the layer library in internal/nn is built on (DESIGN.md §8).
//
// Tensors are row-major and backed by a flat []float32; Arena carves many
// buffers out of one block for the §4.5 memory planner. The package is
// deliberately allocation-conscious: kernels write into caller-provided
// buffers, so steady-state training and serving loops perform no
// per-iteration allocation. Intra-op parallelism comes from a shared,
// bounded worker pool (ParallelFor) sized by a process-wide budget that
// concurrent learners divide between themselves; every kernel partitions
// output ranges disjointly, so results are bit-identical at any worker
// count — the determinism contract DESIGN.md §8 documents and the
// determinism tests pin.
//
// GEMMs come in two kernel modes (KernelMode, DESIGN.md §14).
// Deterministic — the zero value and the default — computes every element
// by the scalar rounding sequence (vector MUL then ADD, never FMA), so
// results are bit-identical across SIMD levels, machines, and worker
// counts. Fast opts into FMA3 micro-kernels (8×16 ZMM tiles under
// AVX-512F) plus shape-gated fallback for tiny GEMMs: still ascending-k
// and run-to-run reproducible on a fixed machine, but accurate only to
// the standard forward-error bound against the scalar oracle. Dispatch is
// CPUID-gated; CROSSBOW_NOSIMD, CROSSBOW_NOFMA and CROSSBOW_NOAVX512
// force the successive fallbacks. GemmInt8 supplies the per-channel
// symmetric int8 path the serving plane's quantized mode builds on, and
// Epilogue lets internal/nn fuse bias/BN/ReLU into the GEMM's output
// blocks. The exact elementwise kernels (ReluFwd, ReluBwd, AddRelu,
// AccumAdd) are SIMD in both modes — max, compare-select and a single
// add round identically to their scalar loops, so they never weaken the
// deterministic contract.
package tensor
