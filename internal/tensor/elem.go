package tensor

// Elementwise kernels for the layers around the GEMMs: ReLU forward and
// backward masking, residual add+ReLU joins, and col2im's contiguous
// accumulation. Every operation here is exact in IEEE float32 — max,
// compare-and-select, and a single addition per element — so the SIMD
// paths are bit-identical to the scalar loops and safe in BOTH kernel
// modes; the deterministic contract is untouched. The scaled benchmark
// models spend a large share of their epoch in these loops (the tensors
// are small, so the branchy scalar forms are misprediction-bound), which
// is what makes them worth vectorising alongside the GEMM micro-kernels.
//
// NaN/signed-zero contract (pinned by TestElemOracle): relu(x) follows
// MAXPS(x, 0) semantics — NaN and -0 both map to +0 — and the backward
// masks treat a NaN pre-activation as "not positive" (gradient 0), exactly
// like the scalar comparisons.

// AccumAdd computes dst[i] += src[i]. Lengths must match.
func AccumAdd(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: AccumAdd length mismatch")
	}
	n := elemAccumAddASM(dst, src)
	for i := n; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

// ReluFwd computes dst[i] = max(src[i], 0). dst may alias src.
func ReluFwd(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: ReluFwd length mismatch")
	}
	n := elemReluFwdASM(dst, src)
	for i := n; i < len(dst); i++ {
		if v := src[i]; v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// ReluBwd computes dst[i] = dy[i] where y[i] > 0, else 0 — the ReLU
// gradient mask, with the forward output doubling as the mask.
func ReluBwd(dst, dy, y []float32) {
	if len(dst) != len(dy) || len(dy) != len(y) {
		panic("tensor: ReluBwd length mismatch")
	}
	n := elemReluBwdASM(dst, dy, y)
	for i := n; i < len(dst); i++ {
		if y[i] > 0 {
			dst[i] = dy[i]
		} else {
			dst[i] = 0
		}
	}
}

// AddRelu computes dst[i] = max(a[i]+b[i], 0) — the residual join.
func AddRelu(dst, a, b []float32) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: AddRelu length mismatch")
	}
	n := elemAddReluASM(dst, a, b)
	for i := n; i < len(dst); i++ {
		if v := a[i] + b[i]; v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}
