//go:build amd64

package tensor

// AVX2 dispatch for the elementwise kernels. Each asm routine processes
// len&^7 elements (whole 8-lane vectors) and the Go caller finishes the
// tail, so the *ASM helpers return how many elements they covered: 0 when
// SIMD is off (CROSSBOW_NOSIMD or a pre-AVX2 CPU), which routes the whole
// slice through the scalar loop. The vector ops round identically to the
// scalar ones (see elem.go), so the split point never changes results.

//go:noescape
func accumAddAVX2(dst, src *float32, n int)

//go:noescape
func reluFwdAVX2(dst, src *float32, n int)

//go:noescape
func reluBwdAVX2(dst, dy, y *float32, n int)

//go:noescape
func addReluAVX2(dst, a, b *float32, n int)

func elemActive() bool { return gemmUseASM && gemmUseAVX2 }

func elemAccumAddASM(dst, src []float32) int {
	n := len(dst) &^ 7
	if n == 0 || !elemActive() {
		return 0
	}
	accumAddAVX2(&dst[0], &src[0], n)
	return n
}

func elemReluFwdASM(dst, src []float32) int {
	n := len(dst) &^ 7
	if n == 0 || !elemActive() {
		return 0
	}
	reluFwdAVX2(&dst[0], &src[0], n)
	return n
}

func elemReluBwdASM(dst, dy, y []float32) int {
	n := len(dst) &^ 7
	if n == 0 || !elemActive() {
		return 0
	}
	reluBwdAVX2(&dst[0], &dy[0], &y[0], n)
	return n
}

func elemAddReluASM(dst, a, b []float32) int {
	n := len(dst) &^ 7
	if n == 0 || !elemActive() {
		return 0
	}
	addReluAVX2(&dst[0], &a[0], &b[0], n)
	return n
}
