//go:build amd64

#include "textflag.h"

// AVX2 elementwise kernels. Callers guarantee n is a positive multiple of
// 8 (the Go wrappers mask to len&^7 and skip zero-length calls), so each
// loop body handles exactly one 8-lane YMM vector with no tail here.
//
// Operand-order note (Go asm reverses Intel order): in VMAXPS/VCMPPS the
// FIRST Go operand is Intel's second source. MAXPS returns the second
// source when the first is NaN or on a ±0 tie, so keeping the zero
// register first makes relu(NaN) = relu(-0) = +0, matching the scalar
// `if v > 0` loops bit for bit. VCMPPS $0x1E is GT_OQ: ordered
// greater-than, NaN compares false — again matching `y > 0`.

// func accumAddAVX2(dst, src *float32, n int)
TEXT ·accumAddAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $3, CX
accloop:
	VMOVUPS (SI), Y0
	VMOVUPS (DI), Y1
	VADDPS  Y0, Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     accloop
	VZEROUPPER
	RET

// func reluFwdAVX2(dst, src *float32, n int)
TEXT ·reluFwdAVX2(SB), NOSPLIT, $0-24
	MOVQ   dst+0(FP), DI
	MOVQ   src+8(FP), SI
	MOVQ   n+16(FP), CX
	SHRQ   $3, CX
	VXORPS Y2, Y2, Y2
fwdloop:
	VMOVUPS (SI), Y0
	VMAXPS  Y2, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     fwdloop
	VZEROUPPER
	RET

// func reluBwdAVX2(dst, dy, y *float32, n int)
TEXT ·reluBwdAVX2(SB), NOSPLIT, $0-32
	MOVQ   dst+0(FP), DI
	MOVQ   dy+8(FP), SI
	MOVQ   y+16(FP), DX
	MOVQ   n+24(FP), CX
	SHRQ   $3, CX
	VXORPS Y2, Y2, Y2
bwdloop:
	VMOVUPS (DX), Y0           // y (forward output, doubles as the mask)
	VMOVUPS (SI), Y1           // dy
	VCMPPS  $0x1E, Y2, Y0, Y3  // mask = y > 0 (GT_OQ)
	VANDPS  Y3, Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     bwdloop
	VZEROUPPER
	RET

// func addReluAVX2(dst, a, b *float32, n int)
TEXT ·addReluAVX2(SB), NOSPLIT, $0-32
	MOVQ   dst+0(FP), DI
	MOVQ   a+8(FP), SI
	MOVQ   b+16(FP), DX
	MOVQ   n+24(FP), CX
	SHRQ   $3, CX
	VXORPS Y2, Y2, Y2
joinloop:
	VMOVUPS (SI), Y0
	VMOVUPS (DX), Y1
	VADDPS  Y1, Y0, Y0
	VMAXPS  Y2, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     joinloop
	VZEROUPPER
	RET
