//go:build !amd64

package tensor

// Non-amd64 stubs: every elementwise kernel runs the scalar Go loop.

func elemAccumAddASM(dst, src []float32) int        { return 0 }
func elemReluFwdASM(dst, src []float32) int         { return 0 }
func elemReluBwdASM(dst, dy, y []float32) int       { return 0 }
func elemAddReluASM(dst, a, b []float32) int        { return 0 }
