package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// elemEdgeValues seeds the random fills so every run exercises the IEEE
// corners the SIMD/scalar equivalence argument rests on.
var elemEdgeValues = []float32{
	0, float32(math.Copysign(0, -1)), 1, -1,
	float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
	math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
	math.MaxFloat32, -math.MaxFloat32,
}

func elemFill(r *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		if r.Intn(4) == 0 {
			s[i] = elemEdgeValues[r.Intn(len(elemEdgeValues))]
		} else {
			s[i] = float32(r.NormFloat64())
		}
	}
	return s
}

// scalar references, written independently of elem.go's tail loops.

func refAccumAdd(dst, src []float32) {
	for i := range dst {
		dst[i] += src[i]
	}
}

func refReluFwd(dst, src []float32) {
	for i := range dst {
		if v := src[i]; v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

func refReluBwd(dst, dy, y []float32) {
	for i := range dst {
		if y[i] > 0 {
			dst[i] = dy[i]
		} else {
			dst[i] = 0
		}
	}
}

func refAddRelu(dst, a, b []float32) {
	for i := range dst {
		if v := a[i] + b[i]; v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// elemBitsEqual compares bit patterns so NaN payloads and zero signs count.
func elemBitsEqual(t *testing.T, name string, n int, got, want []float32) {
	t.Helper()
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s n=%d: [%d] = %x (%v), want %x (%v)",
				name, n, i, math.Float32bits(got[i]), got[i],
				math.Float32bits(want[i]), want[i])
		}
	}
}

// TestElemOracle checks the SIMD elementwise kernels against independent
// scalar references, bit for bit, across lengths that cover the empty,
// all-tail, vector-only, and vector+tail regimes — including the NaN and
// signed-zero corners documented in elem.go.
func TestElemOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for n := 0; n <= 40; n++ {
		src, dy, y := elemFill(r, n), elemFill(r, n), elemFill(r, n)

		dst := elemFill(r, n)
		want := append([]float32(nil), dst...)
		AccumAdd(dst, src)
		refAccumAdd(want, src)
		elemBitsEqual(t, "AccumAdd", n, dst, want)

		got, want2 := make([]float32, n), make([]float32, n)
		ReluFwd(got, src)
		refReluFwd(want2, src)
		elemBitsEqual(t, "ReluFwd", n, got, want2)

		ReluBwd(got, dy, y)
		refReluBwd(want2, dy, y)
		elemBitsEqual(t, "ReluBwd", n, got, want2)

		AddRelu(got, src, y)
		refAddRelu(want2, src, y)
		elemBitsEqual(t, "AddRelu", n, got, want2)
	}
}

// TestElemInPlace pins the aliasing contract separately (ReluFwd with
// dst == src), since the main oracle loop overwrites its inputs.
func TestElemInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, n := range []int{0, 1, 7, 8, 9, 24, 33} {
		src := elemFill(r, n)
		want := make([]float32, n)
		refReluFwd(want, src)
		ReluFwd(src, src)
		elemBitsEqual(t, "ReluFwd/inplace", n, src, want)
	}
}

// TestElemScalarFallback forces the pure-Go path and re-runs the oracle,
// so the non-amd64 route is covered on this machine too.
func TestElemScalarFallback(t *testing.T) {
	prev := setGemmASM(false)
	defer setGemmASM(prev)
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 5, 16, 31} {
		src, y := elemFill(r, n), elemFill(r, n)
		got, want := make([]float32, n), make([]float32, n)
		ReluFwd(got, src)
		refReluFwd(want, src)
		elemBitsEqual(t, "ReluFwd/fallback", n, got, want)
		AddRelu(got, src, y)
		refAddRelu(want, src, y)
		elemBitsEqual(t, "AddRelu/fallback", n, got, want)
	}
}

// TestPackATranspose pins the AVX2 8×8 transpose pack against the scalar
// pack bit for bit, across kb values spanning tail-only through multiple
// vector blocks, both alpha regimes, and all three storage kinds.
func TestPackATranspose(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for _, kind := range []gemmKind{gemmNN, gemmTB, gemmTA} {
		for _, kb := range []int{1, 7, 8, 9, 16, 40, 61} {
			for _, alpha := range []float32{1, -0.375} {
				m, k := 8, kb // one full 8-row tile
				var a []float32
				if kind == gemmTA {
					a = elemFill(r, k*m)
				} else {
					a = elemFill(r, m*k)
				}
				simd := make([]float32, kb*fmaMR)
				ref := make([]float32, kb*fmaMR)
				packAFast(kind, simd, a, m, k, 0, m, 0, kb, alpha)
				prev := setGemmASM(false)
				packAFast(kind, ref, a, m, k, 0, m, 0, kb, alpha)
				setGemmASM(prev)
				for i := range simd {
					if math.Float32bits(simd[i]) != math.Float32bits(ref[i]) {
						t.Fatalf("kind=%v kb=%d alpha=%v: packed[%d] = %v, scalar %v",
							kind, kb, alpha, i, simd[i], ref[i])
					}
				}
			}
		}
	}
}
